(** Small numeric helpers shared by the harness and the tests. *)

val mean : float array -> float
val maxf : float array -> float
val sumf : float array -> float

val percent : float -> float -> float
(** [percent num den] is [100 * num / den] (0 if [den] = 0). *)

val ratio : float -> float -> float
(** [ratio num den] is [num / den] (0 if [den] = 0). *)

val percentile : float -> float array -> float
(** [percentile p a] is the nearest-rank [p]-th percentile of [a] for
    [p] in \[0, 100\], computed on a sorted copy ([a] is not modified):
    the smallest element of [a] that is >= [p]% of the sample. [p] is
    clamped to \[0, 100\]; [percentile 0.] is the minimum, [percentile 100.]
    the maximum, and the result on an empty array is 0. *)

val log2 : float -> float

val is_power_of_two : int -> bool

val ilog2 : int -> int
(** [ilog2 n] for n >= 1 is the floor of log2 n. *)
