(* 4-ary min-heap over (priority, sequence number) pairs — the simulator's
   event queue. The sequence number breaks ties FIFO and makes the order
   total, hence deterministic: [pop] always returns the strict minimum of
   the lexicographic (prio, seq) order, so the pop sequence is independent
   of the heap's internal shape (arity, sift details). Callers may rely on
   bit-identical simulations across queue implementations.

   Layout: three parallel arrays instead of an array of boxed
   {prio; seq; value} records. [prios] is a bare [float array] (flat
   unboxed doubles in OCaml), [seqs] a bare [int array]; neither insert
   nor pop allocates. The old record layout cost one 4-word block per
   insert plus a pointer chase per comparison; sifting now touches two
   cache-resident scalar arrays. The 4-ary shape halves the tree depth,
   cutting sift-up comparisons, and keeps the 4 children of node i
   adjacent (4i+1 .. 4i+4), so a sift-down level is one cache line of
   priorities. *)

type 'a t = {
  mutable prios : float array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable len : int;
  mutable next_seq : int;
}

let create () =
  { prios = [||]; seqs = [||]; values = [||]; len = 0; next_seq = 0 }

let is_empty h = h.len = 0
let size h = h.len

let grow h v =
  let cap = max 16 (2 * Array.length h.values) in
  let prios = Array.make cap 0.0 in
  let seqs = Array.make cap 0 in
  let values = Array.make cap v in
  Array.blit h.prios 0 prios 0 h.len;
  Array.blit h.seqs 0 seqs 0 h.len;
  Array.blit h.values 0 values 0 h.len;
  h.prios <- prios;
  h.seqs <- seqs;
  h.values <- values

let insert h prio value =
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  if h.len = Array.length h.values then grow h value;
  let prios = h.prios and seqs = h.seqs and values = h.values in
  (* Hole-based sift-up: find the insertion slot first, write once. *)
  let i = ref h.len in
  h.len <- h.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 4 in
    if prio < prios.(p) || (prio = prios.(p) && seq < seqs.(p)) then begin
      prios.(!i) <- prios.(p);
      seqs.(!i) <- seqs.(p);
      values.(!i) <- values.(p);
      i := p
    end
    else continue := false
  done;
  prios.(!i) <- prio;
  seqs.(!i) <- seq;
  values.(!i) <- value

let sift_down h =
  let prios = h.prios and seqs = h.seqs and values = h.values in
  let len = h.len in
  let prio = prios.(0) and seq = seqs.(0) and value = values.(0) in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let c0 = (4 * !i) + 1 in
    if c0 >= len then continue := false
    else begin
      (* Smallest of the (up to) 4 adjacent children. *)
      let last = min (c0 + 3) (len - 1) in
      let s = ref c0 in
      for c = c0 + 1 to last do
        if
          prios.(c) < prios.(!s)
          || (prios.(c) = prios.(!s) && seqs.(c) < seqs.(!s))
        then s := c
      done;
      let s = !s in
      if
        prios.(s) < prio || (prios.(s) = prio && seqs.(s) < seq)
      then begin
        prios.(!i) <- prios.(s);
        seqs.(!i) <- seqs.(s);
        values.(!i) <- values.(s);
        i := s
      end
      else continue := false
    end
  done;
  prios.(!i) <- prio;
  seqs.(!i) <- seq;
  values.(!i) <- value

(* Non-allocating hot-path accessors: the Sim loop peeks the priority,
   then pops the value — no option, no tuple, no per-event garbage. *)

let min_priority_exn h =
  if h.len = 0 then invalid_arg "Event_queue.min_priority_exn: empty";
  h.prios.(0)

let pop_exn h =
  if h.len = 0 then invalid_arg "Event_queue.pop_exn: empty";
  let top = h.values.(0) in
  let last = h.len - 1 in
  h.len <- last;
  if last > 0 then begin
    h.prios.(0) <- h.prios.(last);
    h.seqs.(0) <- h.seqs.(last);
    h.values.(0) <- h.values.(last);
    (* Drop the stale reference so popped values can be collected. *)
    h.values.(last) <- h.values.(0);
    sift_down h
  end;
  top

let pop_min h =
  if h.len = 0 then None
  else
    let prio = h.prios.(0) in
    Some (prio, pop_exn h)

let min_priority h = if h.len = 0 then None else Some h.prios.(0)

let clear h =
  (* Release value references without shrinking capacity. *)
  if h.len > 0 then begin
    let v = h.values.(0) in
    Array.fill h.values 0 h.len v
  end;
  h.len <- 0
