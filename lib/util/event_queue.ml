(* Binary min-heap over (priority, sequence number) pairs — the simulator's
   event queue. The sequence number breaks ties FIFO and makes the order
   total, hence deterministic. *)

type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }
let is_empty h = h.len = 0
let size h = h.len

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow h =
  let cap = max 16 (2 * Array.length h.data) in
  let data = Array.make cap h.data.(0) in
  Array.blit h.data 0 data 0 h.len;
  h.data <- data

let insert h prio value =
  let e = { prio; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if h.len = Array.length h.data then
    if h.len = 0 then h.data <- Array.make 16 e else grow h;
  h.data.(h.len) <- e;
  h.len <- h.len + 1;
  (* sift up *)
  let i = ref (h.len - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    less h.data.(!i) h.data.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = h.data.(p) in
    h.data.(p) <- h.data.(!i);
    h.data.(!i) <- tmp;
    i := p
  done

let pop_min h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && less h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.len && less h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.prio, top.value)
  end

let min_priority h = if h.len = 0 then None else Some h.data.(0).prio
