(** Deterministic fork/join over OCaml 5 domains.

    [map ~domains f xs] behaves exactly like [List.map f xs] — same
    results, same order — but evaluates contiguous chunks of [xs] in up to
    [domains] domains (the calling domain counts as one). With
    [domains <= 1] it is literally [List.map]. If any [f x] raises, every
    domain is joined first and the earliest exception (by position in
    [xs]) is re-raised.

    [f] must be safe to run concurrently with itself on disjoint inputs:
    no shared mutable state, or only state guarded by the caller. The
    simulator's per-run state (networks, DSM instances, PRNG streams) is
    created inside each run, so whole-simulation runs qualify. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
