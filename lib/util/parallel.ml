(* Deterministic fork/join over OCaml 5 domains.

   The work list is split into [domains] contiguous chunks; each chunk is
   mapped in order inside one spawned domain, and the results are
   reassembled in the original order, so the output is identical to
   [List.map f xs] regardless of domain count or scheduling. Exceptions
   propagate: if any chunk raises, the first (by chunk index) exception is
   re-raised after every domain has been joined, so no domain is leaked.

   This is deliberately a one-shot pool, not a work-stealing scheduler:
   the repo's uses are run-level parallelism (chaos campaigns, rate
   sweeps, shard fan-out) where each work item is seconds of simulation
   and chunk imbalance is noise. *)

let chunks n xs =
  let len = List.length xs in
  let base = len / n and extra = len mod n in
  let rec take k xs =
    if k = 0 then ([], xs)
    else
      match xs with
      | [] -> ([], [])
      | x :: tl ->
          let got, rest = take (k - 1) tl in
          (x :: got, rest)
  in
  let rec split i xs =
    if i = n then []
    else
      let size = base + if i < extra then 1 else 0 in
      let got, rest = take size xs in
      got :: split (i + 1) rest
  in
  split 0 xs

let map ?(domains = 1) f xs =
  if domains <= 1 || List.length xs <= 1 then List.map f xs
  else
    let parts = chunks (min domains (List.length xs)) xs in
    let run part = List.map (fun x -> try Ok (f x) with e -> Error e) part in
    (* The first chunk runs on the calling domain: [domains] means total
       parallelism, not extra helper threads. *)
    match parts with
    | [] -> []
    | first :: rest ->
        let handles = List.map (fun p -> Domain.spawn (fun () -> run p)) rest in
        let r0 = run first in
        let results = r0 :: List.map Domain.join handles in
        List.concat_map
          (List.map (function Ok y -> y | Error e -> raise e))
          results
