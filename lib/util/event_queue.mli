(** Min-priority queue with [float] priorities, used as the simulator's event
    queue. Implemented as a binary min-heap. Insertion order among equal
    priorities is preserved (FIFO), which makes simulation runs
    deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val insert : 'a t -> float -> 'a -> unit
(** [insert h prio x] adds [x] with priority [prio]. *)

val pop_min : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element; FIFO among ties. *)

val min_priority : 'a t -> float option
