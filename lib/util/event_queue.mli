(** Min-priority queue with [float] priorities, used as the simulator's event
    queue. Implemented as a 4-ary min-heap over three parallel unboxed
    arrays (priorities, tie-break sequence numbers, values), so neither
    insertion nor removal allocates. Insertion order among equal priorities
    is preserved (FIFO): the pop sequence is the lexicographic
    (priority, insertion index) order — a total order — which makes
    simulation runs deterministic and independent of the heap's internal
    shape. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val insert : 'a t -> float -> 'a -> unit
(** [insert h prio x] adds [x] with priority [prio]. Does not allocate
    (outside of capacity doubling). *)

val pop_min : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element; FIFO among ties. *)

val min_priority : 'a t -> float option

val min_priority_exn : 'a t -> float
(** The minimum priority without removing it. Non-allocating hot-path
    variant of {!min_priority}; raises [Invalid_argument] when empty. *)

val pop_exn : 'a t -> 'a
(** Removes and returns the minimum element's value without allocating.
    Pair with {!min_priority_exn} to read its priority first. Raises
    [Invalid_argument] when empty. *)

val clear : 'a t -> unit
(** Empty the queue, keeping its capacity. Sequence numbers keep
    advancing, so FIFO tie-break order spans a clear. *)
