(** Deprecated alias of {!Event_queue}, kept for source compatibility. The
    module never implemented a pairing heap — it has always been a binary
    min-heap — so it was renamed to what it is. New code should use
    {!Event_queue}. *)

include module type of struct
  include Event_queue
end
