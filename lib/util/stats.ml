let sumf a = Array.fold_left ( +. ) 0.0 a

let mean a = if Array.length a = 0 then 0.0 else sumf a /. float_of_int (Array.length a)

let maxf a = Array.fold_left Float.max neg_infinity a

let percent num den = if den = 0.0 then 0.0 else 100.0 *. num /. den
let ratio num den = if den = 0.0 then 0.0 else num /. den
let log2 x = Float.log x /. Float.log 2.0

let percentile p a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let s = Array.copy a in
    Array.sort Float.compare s;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    (* The epsilon keeps float noise in p/100*n from pushing the rank past
       an exact integer product (e.g. 99.9% of 1000 must rank 999, but the
       double product lands a hair above 999 and would ceil to 1000). *)
    let rank =
      int_of_float (Float.ceil ((p /. 100.0 *. float_of_int n) -. 1e-9))
    in
    s.(max 0 (min (n - 1) (rank - 1)))
  end

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let ilog2 n =
  if n < 1 then invalid_arg "Stats.ilog2";
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n
