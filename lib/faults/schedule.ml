module Json = Diva_obs.Json
module Prng = Diva_util.Prng

type window = { t0 : float; t1 : float }

type event =
  | Link_slow of { link : int option; w : window; factor : float }
  | Link_down of { link : int option; w : window }
  | Msg_drop of { prob : float; w : window }
  | Node_pause of { node : int; w : window }
  | Node_crash of { node : int; w : window }

type t = {
  version : int;
  seed : int;
  rto_us : float;
  patience_us : float;
  events : event list;
}

let current_version = 1
let format_name = "diva-faults"

let make ?(seed = 1) ?(rto_us = 20_000.0) ?(patience_us = 100_000.0) events =
  { version = current_version; seed; rto_us; patience_us; events }

let empty = make []
let is_empty t = t.events = []

let validate t =
  let check cond msg rest = if cond then rest () else Error msg in
  let win w rest =
    check
      (Float.is_finite w.t0 && Float.is_finite w.t1 && w.t0 >= 0.0
     && w.t0 <= w.t1)
      "fault windows need finite 0 <= from <= until" rest
  in
  check (t.version <= current_version)
    (Printf.sprintf "unsupported fault-schedule version %d (max %d)" t.version
       current_version)
  @@ fun () ->
  check
    (Float.is_finite t.rto_us && t.rto_us > 0.0)
    "rto_us must be a positive number"
  @@ fun () ->
  check
    (Float.is_finite t.patience_us && t.patience_us > 0.0)
    "patience_us must be a positive number"
  @@ fun () ->
  let rec events = function
    | [] -> Ok ()
    | Link_slow { link; w; factor } :: rest ->
        win w @@ fun () ->
        check
          (Float.is_finite factor && factor >= 1.0)
          "link_slow factor must be >= 1"
        @@ fun () ->
        check (match link with Some l -> l >= 0 | None -> true)
          "link ids must be >= 0"
        @@ fun () -> events rest
    | Link_down { link; w } :: rest ->
        win w @@ fun () ->
        check (match link with Some l -> l >= 0 | None -> true)
          "link ids must be >= 0"
        @@ fun () -> events rest
    | Msg_drop { prob; w } :: rest ->
        win w @@ fun () ->
        check
          (Float.is_finite prob && prob >= 0.0 && prob <= 1.0)
          "drop prob must be in [0,1]"
        @@ fun () -> events rest
    | Node_pause { node; w } :: rest | Node_crash { node; w } :: rest ->
        win w @@ fun () ->
        check (node >= 0) "node ids must be >= 0" @@ fun () -> events rest
  in
  events t.events

(* ------------------------------------------------------------------ *)
(* Seeded generation                                                   *)
(* ------------------------------------------------------------------ *)

let generate ~seed ~num_nodes ~num_links ?(horizon = 30_000.0) () =
  let rng = Prng.create ~seed in
  let window max_len =
    let len = Prng.float rng max_len in
    let t0 = Prng.float rng (Float.max 1.0 (horizon -. len)) in
    { t0; t1 = t0 +. len }
  in
  let link () =
    (* Mostly single links; sometimes the whole network degrades. *)
    if num_links > 0 && Prng.float rng 1.0 < 0.8 then
      Some (Prng.int rng num_links)
    else None
  in
  let events = ref [] in
  let add e = events := e :: !events in
  for _ = 1 to 1 + Prng.int rng 3 do
    add
      (Link_slow
         { link = link (); w = window (horizon /. 3.0);
           factor = 2.0 +. Prng.float rng 6.0 })
  done;
  for _ = 1 to Prng.int rng 3 do
    add (Link_down { link = link (); w = window (horizon /. 10.0) })
  done;
  add
    (Msg_drop
       { prob = 0.05 +. Prng.float rng 0.2; w = window (horizon /. 2.0) });
  for _ = 1 to Prng.int rng 3 do
    add (Node_pause { node = Prng.int rng num_nodes; w = window (horizon /. 10.0) })
  done;
  if Prng.bool rng then
    add (Node_crash { node = Prng.int rng num_nodes; w = window (horizon /. 8.0) });
  make ~seed (List.rev !events)

let describe t =
  let slow = ref 0 and down = ref 0 and pause = ref 0 and crash = ref 0 in
  let drop = ref 0.0 in
  List.iter
    (function
      | Link_slow _ -> incr slow
      | Link_down _ -> incr down
      | Msg_drop { prob; _ } -> drop := Float.max !drop prob
      | Node_pause _ -> incr pause
      | Node_crash _ -> incr crash)
    t.events;
  if is_empty t then "no faults"
  else
    String.concat ", "
      (List.filter
         (fun s -> s <> "")
         [
           (if !slow > 0 then Printf.sprintf "%d slow" !slow else "");
           (if !down > 0 then Printf.sprintf "%d down" !down else "");
           (if !drop > 0.0 then Printf.sprintf "drop<=%.2f" !drop else "");
           (if !pause > 0 then Printf.sprintf "%d pause" !pause else "");
           (if !crash > 0 then Printf.sprintf "%d crash" !crash else "");
         ])

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_of_link = function Some l -> Json.Int l | None -> Json.Null

let json_of_event e =
  let base kind w rest =
    Json.Obj
      (("kind", Json.String kind)
       :: rest
      @ [ ("from", Json.Float w.t0); ("until", Json.Float w.t1) ])
  in
  match e with
  | Link_slow { link; w; factor } ->
      base "link_slow" w
        [ ("link", json_of_link link); ("factor", Json.Float factor) ]
  | Link_down { link; w } -> base "link_down" w [ ("link", json_of_link link) ]
  | Msg_drop { prob; w } -> base "drop" w [ ("prob", Json.Float prob) ]
  | Node_pause { node; w } -> base "node_pause" w [ ("node", Json.Int node) ]
  | Node_crash { node; w } -> base "node_crash" w [ ("node", Json.Int node) ]

let to_json t =
  Json.Obj
    [
      ("format", Json.String format_name);
      ("version", Json.Int t.version);
      ("seed", Json.Int t.seed);
      ("rto_us", Json.Float t.rto_us);
      ("patience_us", Json.Float t.patience_us);
      ("events", Json.List (List.map json_of_event t.events));
    ]

let to_string t = Json.to_string (to_json t)

let event_of_json j =
  let ( let* ) r f = Result.bind r f in
  let field name conv what =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "fault event needs %s %S" what name)
  in
  let* kind = field "kind" Json.to_str "a string" in
  let* t0 = field "from" Json.to_float "a numeric" in
  let* t1 = field "until" Json.to_float "a numeric" in
  let w = { t0; t1 } in
  let link () =
    match Json.member "link" j with
    | None | Some Json.Null -> Ok None
    | Some l -> (
        match Json.to_int l with
        | Some l -> Ok (Some l)
        | None -> Error "fault event field \"link\" must be an int or null")
  in
  match kind with
  | "link_slow" ->
      let* link = link () in
      let* factor = field "factor" Json.to_float "a numeric" in
      Ok (Link_slow { link; w; factor })
  | "link_down" ->
      let* link = link () in
      Ok (Link_down { link; w })
  | "drop" ->
      let* prob = field "prob" Json.to_float "a numeric" in
      Ok (Msg_drop { prob; w })
  | "node_pause" ->
      let* node = field "node" Json.to_int "an integer" in
      Ok (Node_pause { node; w })
  | "node_crash" ->
      let* node = field "node" Json.to_int "an integer" in
      Ok (Node_crash { node; w })
  | k -> Error (Printf.sprintf "unknown fault event kind %S" k)

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let* () =
    match Option.bind (Json.member "format" j) Json.to_str with
    | Some f when f = format_name -> Ok ()
    | Some f -> Error (Printf.sprintf "not a fault schedule (format %S)" f)
    | None -> Error "not a fault schedule (no \"format\" field)"
  in
  let* version =
    match Option.bind (Json.member "version" j) Json.to_int with
    | Some v when v <= current_version -> Ok v
    | Some v ->
        Error
          (Printf.sprintf "unsupported fault-schedule version %d (max %d)" v
             current_version)
    | None -> Error "fault schedule has no \"version\""
  in
  let int_field name default =
    Option.value ~default (Option.bind (Json.member name j) Json.to_int)
  in
  let float_field name default =
    Option.value ~default (Option.bind (Json.member name j) Json.to_float)
  in
  let* events =
    match Json.member "events" j with
    | Some (Json.List l) ->
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            let* e = event_of_json e in
            Ok (e :: acc))
          (Ok []) l
        |> Result.map List.rev
    | Some _ -> Error "fault schedule \"events\" must be a list"
    | None -> Ok []
  in
  let t =
    {
      version;
      seed = int_field "seed" 1;
      rto_us = float_field "rto_us" 20_000.0;
      patience_us = float_field "patience_us" 100_000.0;
      events;
    }
  in
  let* () = validate t in
  Ok t

let of_string s = Result.bind (Json.of_string s) of_json

let write path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let read path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error e -> Error e
