module Json = Diva_obs.Json
module Trace = Diva_obs.Trace
module Prng = Diva_util.Prng

type t = {
  sched : Schedule.t;
  drop_rng : Prng.t;
  mutable lost_random : int;
  mutable lost_link_down : int;
  mutable lost_crashed : int;
  mutable retransmits : int;
  mutable acks_received : int;
  mutable enveloped : int;
  mutable dsm_reissues : int;
  (* Observe-only notification on each watchdog trip; the flight recorder
     hooks this to dump on the first trip. *)
  mutable on_dsm_reissue : (unit -> unit) option;
}

let create sched =
  (match Schedule.validate sched with
  | Ok () -> ()
  | Error e -> invalid_arg ("Diva_faults.Faults.create: " ^ e));
  {
    sched;
    (* Independent of the network's root PRNG on purpose: installing a
       schedule must not perturb any other stream's draws. *)
    drop_rng = Prng.create ~seed:(sched.Schedule.seed lxor 0x5eedfa17);
    lost_random = 0;
    lost_link_down = 0;
    lost_crashed = 0;
    retransmits = 0;
    acks_received = 0;
    enveloped = 0;
    dsm_reissues = 0;
    on_dsm_reissue = None;
  }

let schedule t = t.sched
let active t = not (Schedule.is_empty t.sched)
let rto t = t.sched.Schedule.rto_us
let patience t = t.sched.Schedule.patience_us
let ack_size = 8

let in_window (w : Schedule.window) now = now >= w.Schedule.t0 && now < w.Schedule.t1

let link_matches sel link =
  match sel with None -> true | Some l -> l = link

let link_factor t ~link ~now =
  List.fold_left
    (fun acc e ->
      match e with
      | Schedule.Link_slow { link = sel; w; factor }
        when link_matches sel link && in_window w now ->
          acc *. factor
      | _ -> acc)
    1.0 t.sched.Schedule.events

let link_down t ~link ~now =
  List.exists
    (function
      | Schedule.Link_down { link = sel; w } ->
          link_matches sel link && in_window w now
      | _ -> false)
    t.sched.Schedule.events

let draw_drop t ~now =
  let survive =
    List.fold_left
      (fun acc e ->
        match e with
        | Schedule.Msg_drop { prob; w } when in_window w now && prob > 0.0 ->
            acc *. (1.0 -. prob)
        | _ -> acc)
      1.0 t.sched.Schedule.events
  in
  survive < 1.0 && Prng.float t.drop_rng 1.0 >= survive

let stall_window node time = function
  | Schedule.Node_pause { node = n; w } | Schedule.Node_crash { node = n; w } ->
      if n = node && in_window w time then Some w.Schedule.t1 else None
  | _ -> None

let defer t ~node time =
  (* Fixpoint over (possibly overlapping) pause/crash windows. *)
  let rec go time =
    let pushed =
      List.fold_left
        (fun acc e ->
          match stall_window node acc e with
          | Some t1 -> Float.max acc t1
          | None -> acc)
        time t.sched.Schedule.events
    in
    if pushed > time then go pushed else time
  in
  go time

let crashed t ~node ~now =
  List.exists
    (function
      | Schedule.Node_crash { node = n; w } -> n = node && in_window w now
      | _ -> false)
    t.sched.Schedule.events

let count_lost t = function
  | Trace.Loss_random -> t.lost_random <- t.lost_random + 1
  | Trace.Loss_link_down -> t.lost_link_down <- t.lost_link_down + 1
  | Trace.Loss_crashed -> t.lost_crashed <- t.lost_crashed + 1

let count_retransmit t = t.retransmits <- t.retransmits + 1
let count_ack t = t.acks_received <- t.acks_received + 1
let count_enveloped t = t.enveloped <- t.enveloped + 1
let count_dsm_reissue t =
  t.dsm_reissues <- t.dsm_reissues + 1;
  match t.on_dsm_reissue with Some f -> f () | None -> ()

let set_on_dsm_reissue t f = t.on_dsm_reissue <- Some f

let lost_random t = t.lost_random
let lost_link_down t = t.lost_link_down
let lost_crashed t = t.lost_crashed
let lost_total t = t.lost_random + t.lost_link_down + t.lost_crashed
let retransmits t = t.retransmits
let acks_received t = t.acks_received
let enveloped t = t.enveloped
let dsm_reissues t = t.dsm_reissues

let report_fields t =
  [
    ("schedule", Json.String (Schedule.describe t.sched));
    ("schedule_seed", Json.Int t.sched.Schedule.seed);
    ("rto_us", Json.Float (rto t));
    ("patience_us", Json.Float (patience t));
    ("enveloped_msgs", Json.Int t.enveloped);
    ("lost_random", Json.Int t.lost_random);
    ("lost_link_down", Json.Int t.lost_link_down);
    ("lost_crashed", Json.Int t.lost_crashed);
    ("lost_total", Json.Int (lost_total t));
    ("retransmits", Json.Int t.retransmits);
    ("acks_received", Json.Int t.acks_received);
    ("dsm_reissues", Json.Int t.dsm_reissues);
  ]
