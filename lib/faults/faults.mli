(** Runtime fault injector: answers the simulator's "what fails right
    now?" queries against a {!Schedule}, and accumulates the fault
    counters that feed the run report.

    One value is installed per network (see
    [Diva_simnet.Network.set_faults]); all queries are pure functions of
    (schedule, simulated time) except {!draw_drop}, which consumes the
    schedule-seeded PRNG stream — in a deterministic simulation the draws
    happen in a fixed order, so the same schedule and run seed always
    inject the same faults. *)

type t

val create : Schedule.t -> t
(** Raises [Invalid_argument] if the schedule fails {!Schedule.validate}. *)

val schedule : t -> Schedule.t

val active : t -> bool
(** [false] for an empty schedule: installing one must change nothing. *)

val rto : t -> float
(** Base retransmission timeout of the reliable envelope, microseconds.
    Attempt [n] waits [rto * 2^min(n, 6)]. *)

val patience : t -> float
(** DSM watchdog delay before a blocked transaction re-issues its
    unacknowledged messages. *)

val ack_size : int
(** Wire size of an envelope acknowledgement, bytes. *)

(** {2 Fault queries} *)

val link_factor : t -> link:int -> now:float -> float
(** Slowdown multiplier (>= 1) for a transfer entering [link] at [now];
    overlapping windows multiply. *)

val link_down : t -> link:int -> now:float -> bool
(** Is the link inside an outage window at [now]? *)

val draw_drop : t -> now:float -> bool
(** Decide probabilistic loss for one physical transmission starting at
    [now]. Consumes one PRNG draw iff a drop window with positive
    probability is active (overlapping windows combine independently). *)

val defer : t -> node:int -> float -> float
(** Earliest time at or after the argument at which the node's CPU may
    start work: pushes times inside pause/crash windows to the window
    end. *)

val crashed : t -> node:int -> now:float -> bool
(** Is the node inside a crash-stop window at [now]? Arriving messages
    are lost. *)

(** {2 Counters}

    Bumped by the network envelope and the DSM watchdog; reported per
    run. *)

val count_lost : t -> Diva_obs.Trace.loss_reason -> unit
val count_retransmit : t -> unit
val count_ack : t -> unit
val count_enveloped : t -> unit
val count_dsm_reissue : t -> unit

val set_on_dsm_reissue : t -> (unit -> unit) -> unit
(** Observe-only callback invoked on every {!count_dsm_reissue} — i.e. on
    each DSM watchdog trip. The flight recorder uses it to dump on the
    first trip; the callback must not touch simulation state. *)

val lost_random : t -> int
val lost_link_down : t -> int
val lost_crashed : t -> int
val lost_total : t -> int
val retransmits : t -> int
val acks_received : t -> int
val enveloped : t -> int
val dsm_reissues : t -> int

val report_fields : t -> (string * Diva_obs.Json.t) list
(** The run report's [faults] section: the schedule summary and every
    counter. *)
