(** Versioned, deterministic fault schedules.

    A schedule is a declarative list of fault windows keyed to the
    simulated clock: link slowdowns, transient link outages, probabilistic
    message loss, and node pause / crash-stop windows. Together with the
    schedule's [seed] (which drives the probabilistic-loss stream) it fully
    determines the injected faults, so the same schedule on the same run
    yields a bit-identical simulation.

    Schedules serialise to a single JSON document:

    {v
    {"format":"diva-faults","version":1,"seed":7,
     "rto_us":20000,"patience_us":100000,
     "events":[
       {"kind":"link_slow","link":3,"from":0,"until":5000,"factor":4},
       {"kind":"link_down","link":null,"from":2000,"until":2500},
       {"kind":"drop","prob":0.1,"from":0,"until":20000},
       {"kind":"node_pause","node":5,"from":1000,"until":3000},
       {"kind":"node_crash","node":2,"from":4000,"until":8000}]}
    v}

    Unknown top-level fields are ignored and a higher [version] is
    rejected, so the format can grow compatibly. *)

type window = { t0 : float; t1 : float }
(** Half-open activity window [\[t0, t1)] in simulated microseconds. *)

type event =
  | Link_slow of { link : int option; w : window; factor : float }
      (** Transfers crossing [link] ([None] = every link) during [w] take
          [factor] times as long. Overlapping slowdowns multiply. *)
  | Link_down of { link : int option; w : window }
      (** Messages whose route enters [link] during [w] are lost. *)
  | Msg_drop of { prob : float; w : window }
      (** Every physical transmission started during [w] is lost with
          probability [prob] (drawn from the schedule's seeded stream). *)
  | Node_pause of { node : int; w : window }
      (** The node's CPU stalls during [w]: message injection, receive
          overheads and computation scheduled inside the window start only
          after it closes. *)
  | Node_crash of { node : int; w : window }
      (** Crash-stop for the duration of [w]: additionally to pausing, all
          messages arriving at the node during the window are lost. The
          node recovers with its memory intact when the window closes. *)

type t = {
  version : int;
  seed : int;  (** seeds the probabilistic-loss stream *)
  rto_us : float;  (** base retransmission timeout of the reliable envelope *)
  patience_us : float;  (** DSM watchdog delay before a blocked op re-issues *)
  events : event list;
}

val current_version : int

val make :
  ?seed:int -> ?rto_us:float -> ?patience_us:float -> event list -> t
(** Defaults: [seed 1], [rto_us 20000.], [patience_us 100000.]. Both
    timeouts must comfortably exceed the machine's per-message overheads
    (500 us each side on the default machine) and typical congested
    latencies, or spurious retransmissions feed the congestion they are
    reacting to. *)

val empty : t
(** The no-fault schedule; installing it changes nothing. *)

val is_empty : t -> bool

val validate : t -> (unit, string) result
(** Finite non-negative windows with [t0 <= t1], factors >= 1, drop
    probabilities in [0,1], node ids >= 0, positive timeouts. *)

val generate :
  seed:int -> num_nodes:int -> num_links:int -> ?horizon:float -> unit -> t
(** A randomized but fully seed-determined chaos schedule scaled to the
    given mesh: a few link slowdowns, 0-2 transient outages, one
    probabilistic-loss window, 0-2 node pauses and at most one crash-stop
    window, all inside [\[0, horizon)] (default 30000 us, i.e. 30 sim-ms).
    The generated schedule always passes {!validate} and is never empty. *)

val describe : t -> string
(** One-line human summary, e.g. ["2 slow, 1 down, drop<=0.15, 1 crash"]. *)

val to_json : t -> Diva_obs.Json.t
val of_json : Diva_obs.Json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result
val write : string -> t -> unit
val read : string -> (t, string) result
