(** Formatting of experiment results in the shape the paper reports them:
    congestion and time of each dynamic strategy as a {e ratio} to the
    hand-optimized baseline, plus the access-tree : fixed-home quotient
    ("the access tree strategy is about a factor of 2 faster"). *)

val ratio_table :
  title:string ->
  param:string ->
  congestion:[ `Bytes | `Messages ] ->
  rows:
    (string * Runner.measurements * (string * Runner.measurements) list) list ->
  string
(** [ratio_table ~title ~param ~congestion ~rows] renders one figure-style
    table. Each row is (parameter value, baseline measurements, strategy
    measurements); columns show each strategy's congestion ratio and time
    ratio versus the baseline. *)

val workload_table :
  title:string ->
  param:string ->
  rows:
    (string
    * (string * (Runner.measurements * (float * float * float * float))) list)
    list ->
  string
(** Congestion, time and per-op latency (p50/p99) per strategy — the
    format of the workload-engine sweeps. The latency quadruple is
    (p50, p95, p99, max) in simulated microseconds; p95 and max are
    accepted so callers can pass a full report but only p50/p99 are
    printed (the table stays narrow). *)

val absolute_table :
  title:string ->
  param:string ->
  ?extra:(string * (Runner.measurements -> string)) list ->
  rows:(string * (string * Runner.measurements) list) list ->
  unit ->
  string
(** Absolute congestion (in messages) and time (in seconds) per strategy —
    the format of the Barnes-Hut figures, which have no baseline. *)
