module Network = Diva_simnet.Network
module Link_stats = Diva_simnet.Link_stats
module Dsm = Diva_core.Dsm
module Matmul = Diva_apps.Matmul
module Matmul_handopt = Diva_apps.Matmul_handopt
module Bitonic = Diva_apps.Bitonic
module Bitonic_handopt = Diva_apps.Bitonic_handopt
module Barnes_hut = Diva_apps.Barnes_hut

type measurements = {
  time : float;
  congestion_msgs : int;
  congestion_bytes : int;
  total_msgs : int;
  total_bytes : int;
  startups : int;
  max_compute : float;
  dsm_reads : int;
  dsm_read_hits : int;
  evictions : int;
}

type strategy_choice = Strategy of Dsm.strategy | Hand_optimized

let name = function
  | Hand_optimized -> "hand-optimized"
  | Strategy s -> Dsm.strategy_name s

type obs = {
  obs_trace : Diva_obs.Trace.sink;
  obs_metrics : Diva_obs.Metrics.t option;
  obs_sample_interval : float;
  obs_faults : Diva_faults.Schedule.t;
  obs_prof : Diva_obs.Prof.t option;
  obs_flight : Diva_obs.Flight.t option;
}

let null_obs =
  { obs_trace = Diva_obs.Trace.null; obs_metrics = None;
    obs_sample_interval = 1000.0; obs_faults = Diva_faults.Schedule.empty;
    obs_prof = None; obs_flight = None }

let install_obs net obs =
  (* Faults first: the gauges attach_metrics registers depend on whether
     an injector is installed. Empty schedules install nothing. *)
  Network.set_faults net (Diva_faults.Faults.create obs.obs_faults);
  Network.set_trace net obs.obs_trace;
  (match obs.obs_metrics with
  | Some m ->
      Network.attach_metrics net ~interval:obs.obs_sample_interval m;
      (* Host-side gauges ride the same registry when profiling. *)
      (match obs.obs_prof with
      | Some p -> Diva_obs.Prof.register_gauges p m
      | None -> ())
  | None -> ());
  (match obs.obs_prof with
  | Some p -> Network.attach_prof net p
  | None -> ());
  match obs.obs_flight with
  | None -> ()
  | Some fl ->
      (* The event ring was wired when the sink was built (Flight.wrap);
         here we attach the health snapshots and, per recorder policy,
         dump on the first DSM watchdog trip. *)
      Network.attach_flight net fl;
      if Diva_obs.Flight.dump_on_watchdog fl then (
        match Network.faults net with
        | Some f ->
            Diva_faults.Faults.set_on_dsm_reissue f (fun () ->
                Diva_obs.Flight.dump fl ~reason:"dsm watchdog trip")
        | None -> ())

let fault_fields net =
  match Network.faults net with
  | None -> []
  | Some f ->
      [ ("faults", Diva_obs.Json.Obj (Diva_faults.Faults.report_fields f)) ]

let measurement_fields (m : measurements) =
  let open Diva_obs.Json in
  [
    ("time_us", Float m.time);
    ("congestion_msgs", Int m.congestion_msgs);
    ("congestion_bytes", Int m.congestion_bytes);
    ("total_msgs", Int m.total_msgs);
    ("total_bytes", Int m.total_bytes);
    ("startups", Int m.startups);
    ("max_compute_us", Float m.max_compute);
    ("dsm_reads", Int m.dsm_reads);
    ("dsm_read_hits", Int m.dsm_read_hits);
    ("evictions", Int m.evictions);
  ]

let spawn_all net f =
  for p = 0 to Network.num_nodes net - 1 do
    Network.spawn net p (fun () -> f p)
  done

let collect net dsm =
  let st = Network.stats net in
  {
    time = Network.now net;
    congestion_msgs = Link_stats.congestion_msgs st;
    congestion_bytes = Link_stats.congestion_bytes st;
    total_msgs = Link_stats.total_msgs st;
    total_bytes = Link_stats.total_bytes st;
    startups = Network.startups net;
    max_compute = Network.max_compute_time net;
    dsm_reads = (match dsm with Some d -> Dsm.reads d | None -> 0);
    dsm_read_hits = (match dsm with Some d -> Dsm.read_hits d | None -> 0);
    evictions = (match dsm with Some d -> Dsm.evictions d | None -> 0);
  }

let finish ?on_net ~obs net =
  (match obs.obs_prof with
  | Some p -> Diva_obs.Prof.region p "simulate" (fun () -> Network.run net)
  | None -> Network.run net);
  (* One final row so the series always covers the full run. *)
  (match obs.obs_metrics with
  | Some m -> Diva_obs.Metrics.sample m ~ts:(Network.now net)
  | None -> ());
  match on_net with Some f -> f net | None -> ()

let run_matmul ?(seed = 17) ?(obs = null_obs) ?on_net ~rows ~cols ~block
    ?(compute = false) choice =
  let net = Network.create ~seed ~rows ~cols () in
  install_obs net obs;
  match choice with
  | Hand_optimized ->
      let app = Matmul_handopt.setup net { Matmul_handopt.block; compute } in
      spawn_all net (fun p -> Matmul_handopt.fiber app p);
      finish ?on_net ~obs net;
      collect net None
  | Strategy strategy ->
      let dsm = Dsm.create net ~strategy () in
      let app = Matmul.setup dsm { Matmul.block; compute } in
      spawn_all net (fun p -> Matmul.fiber app p);
      finish ?on_net ~obs net;
      collect net (Some dsm)

let run_bitonic ?(seed = 17) ?(obs = null_obs) ?on_net ~rows ~cols ~keys
    ?(compute = true) choice =
  let net = Network.create ~seed ~rows ~cols () in
  install_obs net obs;
  match choice with
  | Hand_optimized ->
      let app = Bitonic_handopt.setup net { Bitonic_handopt.keys; compute } in
      spawn_all net (fun p -> Bitonic_handopt.fiber app p);
      finish ?on_net ~obs net;
      collect net None
  | Strategy strategy ->
      let dsm = Dsm.create net ~strategy () in
      let app = Bitonic.setup dsm { Bitonic.keys; compute } in
      spawn_all net (fun p -> Bitonic.fiber app p);
      finish ?on_net ~obs net;
      collect net (Some dsm)

type bh_result = {
  bh_total : measurements;
  bh_phase : Barnes_hut.phase -> measurements;
}

let aggregate_intervals dsm startups ivs =
  match ivs with
  | [] ->
      {
        time = 0.0; congestion_msgs = 0; congestion_bytes = 0; total_msgs = 0;
        total_bytes = 0; startups; max_compute = 0.0;
        dsm_reads = Dsm.reads dsm; dsm_read_hits = Dsm.read_hits dsm;
        evictions = Dsm.evictions dsm;
      }
  | first :: _ ->
      let time = ref 0.0 in
      let traffic = ref (Link_stats.zero first.Barnes_hut.i_traffic) in
      let compute = Array.make (Array.length first.Barnes_hut.i_compute) 0.0 in
      List.iter
        (fun iv ->
          time := !time +. iv.Barnes_hut.i_time;
          traffic := Link_stats.add !traffic iv.Barnes_hut.i_traffic;
          Array.iteri
            (fun i v -> compute.(i) <- compute.(i) +. v)
            iv.Barnes_hut.i_compute)
        ivs;
      {
        time = !time;
        congestion_msgs = Link_stats.snap_congestion_msgs !traffic;
        congestion_bytes = Link_stats.snap_congestion_bytes !traffic;
        total_msgs = Link_stats.snap_total_msgs !traffic;
        total_bytes = Link_stats.snap_total_bytes !traffic;
        startups;
        max_compute = Array.fold_left Float.max 0.0 compute;
        dsm_reads = Dsm.reads dsm;
        dsm_read_hits = Dsm.read_hits dsm;
        evictions = Dsm.evictions dsm;
      }

let run_barnes_hut_on ?(obs = null_obs) ?on_net net ~cfg strategy =
  install_obs net obs;
  let dsm = Dsm.create net ~strategy () in
  let app = Barnes_hut.setup dsm cfg in
  spawn_all net (fun p -> Barnes_hut.fiber app p);
  finish ?on_net ~obs net;
  let ivs = Barnes_hut.intervals app in
  let startups = Network.startups net in
  {
    bh_total = aggregate_intervals dsm startups ivs;
    bh_phase =
      (fun ph ->
        aggregate_intervals dsm startups
          (List.filter (fun iv -> iv.Barnes_hut.i_phase = ph) ivs));
  }

let run_barnes_hut ?(seed = 17) ?obs ?on_net ~rows ~cols ~cfg strategy =
  run_barnes_hut_on ?obs ?on_net (Network.create ~seed ~rows ~cols ()) ~cfg
    strategy

let run_barnes_hut_nd ?(seed = 17) ?obs ?on_net ~dims ~cfg strategy =
  run_barnes_hut_on ?obs ?on_net (Network.create_nd ~seed ~dims ()) ~cfg
    strategy

let run_bitonic_nd ?(seed = 17) ?(obs = null_obs) ?on_net ~dims ~keys
    ?(compute = true) choice =
  let net = Network.create_nd ~seed ~dims () in
  install_obs net obs;
  match choice with
  | Hand_optimized ->
      let app = Bitonic_handopt.setup net { Bitonic_handopt.keys; compute } in
      spawn_all net (fun p -> Bitonic_handopt.fiber app p);
      finish ?on_net ~obs net;
      collect net None
  | Strategy strategy ->
      let dsm = Dsm.create net ~strategy () in
      let app = Bitonic.setup dsm { Bitonic.keys; compute } in
      spawn_all net (fun p -> Bitonic.fiber app p);
      finish ?on_net ~obs net;
      collect net (Some dsm)
