(** Benchmark regression gate: compare a current BENCH_diva.json-style
    document against a committed baseline.

    Every numeric leaf is compared under a per-metric {e relative}
    tolerance with a direction — more time/congestion/startups is a
    regression, fewer cache hits is a regression, improvements beyond the
    tolerance are reported but never fail. Structural drift fails both
    ways: a metric present only in the baseline ([MISSING]) or only in the
    current run ([EXTRA] — regenerate the committed baseline in the same
    change). The simulator is deterministic, so an unchanged tree
    reproduces the baseline exactly; tolerances only absorb intentional
    small shifts between PRs. *)

type status = Pass | Regressed | Improved | Missing | Extra | Mismatch

type verdict = { v_path : string; v_status : status; v_detail : string }

val status_name : status -> string

val is_failure : status -> bool
(** [Regressed], [Missing], [Extra] and [Mismatch] fail the gate. *)

val default_tolerances : (string * float) list
(** Per-metric relative tolerances (leaf key -> fraction); metrics not
    listed use 10%. *)

val compare_docs :
  ?tolerances:(string * float) list ->
  baseline:Diva_obs.Json.t ->
  current:Diva_obs.Json.t ->
  unit ->
  verdict list
(** One verdict per leaf (document order), plus one per missing/extra
    key. *)

val failures : verdict list -> verdict list

val render : verdict list -> string
(** Non-pass verdicts, one per line, plus a summary count line. *)
