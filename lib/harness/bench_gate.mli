(** Benchmark regression gate: compare a current BENCH_diva.json-style
    document against a committed baseline.

    Every numeric leaf is compared under a per-metric {e relative}
    tolerance with a direction — more time/congestion/startups is a
    regression, fewer cache hits is a regression, improvements beyond the
    tolerance are reported but never fail. Structural drift fails both
    ways: a metric present only in the baseline ([MISSING]) or only in the
    current run ([EXTRA] — regenerate the committed baseline in the same
    change). The simulator is deterministic, so an unchanged tree
    reproduces the baseline exactly; tolerances only absorb intentional
    small shifts between PRs. *)

type status = Pass | Regressed | Improved | Missing | Extra | Mismatch

type verdict = { v_path : string; v_status : status; v_detail : string }

val status_name : status -> string

val is_failure : status -> bool
(** [Regressed], [Missing], [Extra] and [Mismatch] fail the gate. *)

val default_tolerances : (string * float) list
(** Per-metric relative tolerances (leaf key -> fraction); metrics not
    listed use 10%. *)

val compare_docs :
  ?tolerances:(string * float) list ->
  baseline:Diva_obs.Json.t ->
  current:Diva_obs.Json.t ->
  unit ->
  verdict list
(** One verdict per leaf (document order), plus one per missing/extra
    key. *)

val failures : verdict list -> verdict list

(** {2 Per-commit history ring}

    A single committed baseline only sees one PR of movement, so a drift
    that stays inside the per-PR tolerance on every step compounds
    unnoticed. The ring directory keeps the last [keep] bench documents
    ([NNNN-label.json], ordered by the zero-padded sequence number);
    {!drift} compares the current run against the {e oldest} surviving
    entry under the same tolerances, giving a slow leak [keep] PRs of
    compounding to get caught in. *)

val history_entries : string -> (string * Diva_obs.Json.t) list
(** Parseable [*.json] ring entries, ascending filename (= age) order;
    an absent directory is an empty ring. *)

val drift :
  ?tolerances:(string * float) list ->
  dir:string ->
  current:Diva_obs.Json.t ->
  unit ->
  (string * verdict list) option
(** Compare against the oldest ring entry; [None] on an empty ring.
    Returns the entry's filename with the verdicts. *)

val history_append :
  ?keep:int -> dir:string -> label:string -> Diva_obs.Json.t -> string
(** Write the document as the newest ring entry (creating the directory if
    needed), prune to the newest [keep] (default 10) entries, and return
    the new entry's filename. [label] is sanitized into the filename. *)

val render : verdict list -> string
(** Non-pass verdicts, one per line, plus a summary count line. *)
