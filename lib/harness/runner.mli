(** Runs one application under one data-management strategy on one mesh and
    collects the measurements the paper reports: congestion (messages and
    bytes), execution/communication time, total communication load, startup
    counts and computation times. *)

type measurements = {
  time : float;  (** end-to-end simulated time, microseconds *)
  congestion_msgs : int;
  congestion_bytes : int;
  total_msgs : int;
  total_bytes : int;
  startups : int;
  max_compute : float;
  dsm_reads : int;
  dsm_read_hits : int;
  evictions : int;
}

type strategy_choice =
  | Strategy of Diva_core.Dsm.strategy
  | Hand_optimized

val name : strategy_choice -> string

(** Observability configuration of one run: a trace sink installed on the
    network before the application starts, and an optional metrics registry
    sampled every [obs_sample_interval] simulated microseconds (plus once
    at the end of the run). The default {!null_obs} records nothing and
    costs nothing; recording never changes the simulated execution. *)
type obs = {
  obs_trace : Diva_obs.Trace.sink;
  obs_metrics : Diva_obs.Metrics.t option;
  obs_sample_interval : float;
  obs_faults : Diva_faults.Schedule.t;
      (** fault schedule installed before the run; {!Diva_faults.Schedule.empty}
          (the default) injects nothing and leaves the run bit-identical *)
  obs_prof : Diva_obs.Prof.t option;
      (** self-profiler: armed and attached by {!install_obs}, its
          "simulate" region timed around the run by {!finish} *)
  obs_flight : Diva_obs.Flight.t option;
      (** flight recorder: health snapshots attached by {!install_obs},
          which also arms dump-on-watchdog-trip when the recorder's policy
          asks for it. The event ring must already wrap [obs_trace]
          ({!Diva_obs.Flight.wrap}) — installing the sink is the one thing
          {!install_obs} cannot retrofit. *)
}

val null_obs : obs

val fault_fields : Diva_simnet.Network.t -> (string * Diva_obs.Json.t) list
(** The run report's [faults] section: empty without an installed fault
    schedule, otherwise one ["faults"] object with the schedule summary,
    loss/retransmission counters and DSM re-issue count. *)

val measurement_fields : measurements -> (string * Diva_obs.Json.t) list
(** All measurement fields as JSON key/values (run manifests, BENCH files). *)

(** {2 Building blocks}

    The pieces every runner is made of, exposed so that other drivers (the
    workload engine's generator and trace replayer) measure runs exactly
    the way the paper's runners do. *)

val install_obs : Diva_simnet.Network.t -> obs -> unit
(** Install the trace sink and metrics sampler on a freshly created
    network, before any protocol layer or application state exists. *)

val finish :
  ?on_net:(Diva_simnet.Network.t -> unit) -> obs:obs -> Diva_simnet.Network.t -> unit
(** Run the simulation to completion, take the final metrics sample, then
    invoke [on_net]. *)

val collect :
  Diva_simnet.Network.t -> Diva_core.Dsm.t option -> measurements
(** Snapshot the paper's measurements of a completed run. *)

val run_matmul :
  ?seed:int -> ?obs:obs -> ?on_net:(Diva_simnet.Network.t -> unit) ->
  rows:int -> cols:int -> block:int -> ?compute:bool -> strategy_choice ->
  measurements
(** The paper measures matmul {e communication} time: [compute] defaults to
    false so that only read, write and synchronization calls remain. *)

val run_bitonic :
  ?seed:int -> ?obs:obs -> ?on_net:(Diva_simnet.Network.t -> unit) ->
  rows:int -> cols:int -> keys:int -> ?compute:bool -> strategy_choice ->
  measurements
(** Bitonic is measured with its (small) computation included. *)

(** Aggregated Barnes-Hut measurements over the measured steps, total or
    restricted to one phase. *)
type bh_result = {
  bh_total : measurements;
  bh_phase : Diva_apps.Barnes_hut.phase -> measurements;
}

val run_barnes_hut :
  ?seed:int -> ?obs:obs -> ?on_net:(Diva_simnet.Network.t -> unit) ->
  rows:int -> cols:int -> cfg:Diva_apps.Barnes_hut.config ->
  Diva_core.Dsm.strategy -> bh_result
(** There is no hand-optimized baseline for Barnes-Hut (the paper cannot
    construct one either). Times and congestion cover the measured
    (non-warmup) steps only, as in the paper. *)

val run_barnes_hut_nd :
  ?seed:int -> ?obs:obs -> ?on_net:(Diva_simnet.Network.t -> unit) ->
  dims:int array -> cfg:Diva_apps.Barnes_hut.config ->
  Diva_core.Dsm.strategy -> bh_result
(** Barnes-Hut on a mesh of arbitrary dimension — an extension beyond the
    paper exercising the theory's d-dimensional setting. *)

val run_bitonic_nd :
  ?seed:int -> ?obs:obs -> ?on_net:(Diva_simnet.Network.t -> unit) ->
  dims:int array -> keys:int -> ?compute:bool -> strategy_choice ->
  measurements

(** The [on_net] callback of each runner fires after the simulation
    completes, with the network still available — used e.g. for the
    {!Heatmap} rendering in the CLI. *)
