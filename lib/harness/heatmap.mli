(** Text rendering of the network's traffic distribution: a quick visual
    check of where the congestion sits (e.g. the hot row/column crossings
    of the fixed home strategy vs the spread-out access-tree traffic). *)

type mode = Bytes | Msgs

val node_traffic : ?mode:mode -> Diva_simnet.Network.t -> int array
(** Traffic (bytes by default, message crossings with [Msgs]) over the
    outgoing links of each node. *)

val hottest_link :
  ?mode:mode -> Diva_simnet.Network.t -> (int * int * int * int) option
(** The argmax congested directed link as [(link, src, dst, amount)];
    [None] when no link carried traffic. Ties keep the lowest link id. *)

val nodes_of_link_values :
  Diva_mesh.Mesh.t -> (int * float) list -> float array
(** Fold per-link values (e.g. one {!Diva_obs.Analysis.window}) into
    per-source-node totals for {!render_grid}. *)

val render_grid : Diva_mesh.Mesh.t -> ?label:string -> float array -> string
(** For a 2-D mesh: a grid of digits 0-9, each node's value normalised to
    the maximum ('.' for zero), preceded by [label] when given. Other
    dimensions fall back to a flat listing. *)

val render : ?mode:mode -> Diva_simnet.Network.t -> string
(** The per-node grid of the run's whole traffic plus a trailing line
    naming the hottest directed link — the row/column crossing the paper
    highlights for fixed home. *)
