module Network = Diva_simnet.Network
module Link_stats = Diva_simnet.Link_stats
module Mesh = Diva_mesh.Mesh

type mode = Bytes | Msgs

let mode_name = function Bytes -> "bytes" | Msgs -> "msgs"

let per_link ~mode net =
  match mode with
  | Bytes -> Link_stats.per_link_bytes (Network.stats net)
  | Msgs -> Link_stats.per_link_msgs (Network.stats net)

let nodes_of_link_values mesh link_values =
  let traffic = Array.make (Mesh.num_nodes mesh) 0.0 in
  List.iter
    (fun (l, v) ->
      if v > 0.0 then begin
        let src, _ = Mesh.link_endpoints mesh l in
        traffic.(src) <- traffic.(src) +. v
      end)
    link_values;
  traffic

let node_traffic ?(mode = Bytes) net =
  let mesh = Network.mesh net in
  let per = per_link ~mode net in
  let traffic = Array.make (Mesh.num_nodes mesh) 0 in
  Array.iteri
    (fun l v ->
      if v > 0 then begin
        let src, _ = Mesh.link_endpoints mesh l in
        traffic.(src) <- traffic.(src) + v
      end)
    per;
  traffic

let hottest_link ?(mode = Bytes) net =
  let per = per_link ~mode net in
  let best = ref None in
  Array.iteri
    (fun l v ->
      match !best with
      | Some (_, bv) when bv >= v -> ()
      | _ -> if v > 0 then best := Some (l, v))
    per;
  match !best with
  | None -> None
  | Some (l, v) ->
      let src, dst = Mesh.link_endpoints (Network.mesh net) l in
      Some (l, src, dst, v)

(* Shared digit-grid renderer, also used by [divasim analyze] for windowed
   congestion snapshots. *)
let render_grid mesh ?label values =
  let maxv = Array.fold_left Float.max 1.0 values in
  let digit v =
    if v <= 0.0 then '.'
    else
      Char.chr
        (Char.code '0' + min 9 (int_of_float (v *. 10.0 /. (maxv +. 1.0))))
  in
  let buf = Buffer.create 256 in
  (match label with
  | Some l -> Buffer.add_string buf (Printf.sprintf "%s (max %.0f):\n" l maxv)
  | None -> ());
  if Mesh.num_dims mesh = 2 then
    for r = 0 to Mesh.rows mesh - 1 do
      for c = 0 to Mesh.cols mesh - 1 do
        Buffer.add_char buf (digit values.(Mesh.node_at mesh ~row:r ~col:c))
      done;
      Buffer.add_char buf '\n'
    done
  else
    Array.iteri
      (fun v x -> Buffer.add_string buf (Printf.sprintf "node %d: %.0f\n" v x))
      values;
  Buffer.contents buf

let render ?(mode = Bytes) net =
  let mesh = Network.mesh net in
  let traffic = Array.map float_of_int (node_traffic ~mode net) in
  let label =
    Printf.sprintf "outgoing traffic per node, %s" (mode_name mode)
  in
  let grid = render_grid mesh ~label traffic in
  match hottest_link ~mode net with
  | None -> grid
  | Some (link, src, dst, v) ->
      grid
      ^ Printf.sprintf "hottest directed link: %d (%d -> %d), %d %s\n" link src
          dst v (mode_name mode)
