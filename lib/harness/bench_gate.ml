module Json = Diva_obs.Json

(* Regression gate over BENCH_diva.json-style documents: walk baseline and
   current in lockstep, compare every numeric leaf under a per-metric
   relative tolerance with a direction (more congestion is bad, fewer cache
   hits is bad), and fail on structural drift — a metric that disappears is
   as suspicious as one that regresses, and a new one means the committed
   baseline must be regenerated in the same change. *)

type status = Pass | Regressed | Improved | Missing | Extra | Mismatch

type verdict = {
  v_path : string;
  v_status : status;
  v_detail : string;
}

let status_name = function
  | Pass -> "pass"
  | Regressed -> "REGRESSED"
  | Improved -> "improved"
  | Missing -> "MISSING"
  | Extra -> "EXTRA"
  | Mismatch -> "MISMATCH"

let is_failure = function
  | Regressed | Missing | Extra | Mismatch -> true
  | Pass | Improved -> false

(* Which way is worse, by metric name (the leaf key). *)
type direction = Higher_bad | Lower_bad | Exact

let direction metric =
  match metric with
  | "dsm_read_hits" | "ops_per_sim_sec" | "goodput_per_s"
  | "completed_in_horizon" | "events_per_sec" ->
      Lower_bad
  | "dsm_reads" | "ops" | "arrivals" | "completions" | "requests"
  | "offered_per_s" | "events" | "under_3pct" ->
      Exact
  | _ -> Higher_bad

(* Deterministic simulation: identical code gives identical numbers, so
   tolerances only absorb intentional small shifts between PRs. Latency
   tails jitter more than means under scheduling changes. *)
let default_tolerance = 0.10

let default_tolerances =
  [
    ("time_us", 0.10);
    ("max_compute_us", 0.10);
    ("congestion_msgs", 0.10);
    ("congestion_bytes", 0.10);
    ("total_msgs", 0.10);
    ("total_bytes", 0.10);
    ("startups", 0.10);
    ("evictions", 0.10);
    ("dsm_reads", 0.0);
    ("dsm_read_hits", 0.05);
    ("ops", 0.0);
    ("ops_per_sim_sec", 0.10);
    ("lat_mean_us", 0.10);
    ("lat_p50_us", 0.10);
    ("lat_p95_us", 0.15);
    ("lat_p99_us", 0.20);
    ("lat_p999_us", 0.25);
    ("lat_max_us", 0.25);
    (* Service scenario: the arrival side (arrivals, offered load, request
       counts) is fixed by the seed alone, so it gates exactly; the service
       side (goodput, queue depths, makespan) moves with perf changes. *)
    ("arrivals", 0.0);
    ("completions", 0.0);
    ("requests", 0.0);
    ("offered_per_s", 0.0);
    ("goodput_per_s", 0.10);
    ("completed_in_horizon", 0.10);
    ("queue_hwm", 0.25);
    ("makespan_us", 0.10);
    (* Event-loop throughput: the event count is deterministic and gates
       exactly, but events/sec and wall-clock depend on the machine running
       the gate, so their tolerances only catch order-of-magnitude
       collapses (a 10x slowdown), not CI-runner jitter. *)
    ("events", 0.0);
    ("events_per_sec", 0.90);
    ("wall_ms", 9.0);
    (* Profiler overhead gate: the boolean verdict (computed on CPU time
       against the 3% budget on the measuring machine) gates exactly; the
       raw timings are machine-dependent like wall_ms. *)
    ("under_3pct", 0.0);
    ("base_wall_ms", 9.0);
    ("prof_wall_ms", 9.0);
    ("base_cpu_ms", 9.0);
    ("prof_cpu_ms", 9.0);
  ]

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let compare_docs ?(tolerances = default_tolerances) ~baseline ~current () =
  let verdicts = ref [] in
  let push v = verdicts := v :: !verdicts in
  let tol metric =
    match List.assoc_opt metric tolerances with
    | Some t -> t
    | None -> default_tolerance
  in
  let leaf path metric base cur =
    let t = tol metric in
    let rel =
      if base = 0.0 then if cur = 0.0 then 0.0 else Float.infinity
      else (cur -. base) /. Float.abs base
    in
    let status =
      match direction metric with
      | Higher_bad ->
          if rel > t then Regressed
          else if rel < -.t then Improved
          else Pass
      | Lower_bad ->
          if rel < -.t then Regressed
          else if rel > t then Improved
          else Pass
      | Exact -> if Float.abs rel > t then Regressed else Pass
    in
    push
      {
        v_path = path;
        v_status = status;
        v_detail =
          Printf.sprintf "baseline %g, current %g (%+.1f%%, tolerance %.0f%%)"
            base cur (100.0 *. rel) (100.0 *. t);
      }
  in
  let rec walk path base cur =
    match (base, cur) with
    | Json.Obj bs, Json.Obj cs ->
        List.iter
          (fun (k, bv) ->
            let p = if path = "" then k else path ^ "/" ^ k in
            match List.assoc_opt k cs with
            | Some cv -> walk p bv cv
            | None ->
                push
                  { v_path = p; v_status = Missing;
                    v_detail = "present in baseline, absent in current run" })
          bs;
        List.iter
          (fun (k, _) ->
            if not (List.mem_assoc k bs) then
              let p = if path = "" then k else path ^ "/" ^ k in
              push
                { v_path = p; v_status = Extra;
                  v_detail =
                    "absent in baseline: regenerate the committed baseline" })
          cs
    | bv, cv -> (
        match (number bv, number cv) with
        | Some b, Some c ->
            let metric =
              match String.rindex_opt path '/' with
              | Some i -> String.sub path (i + 1) (String.length path - i - 1)
              | None -> path
            in
            leaf path metric b c
        | _ ->
            if bv = cv then
              push { v_path = path; v_status = Pass; v_detail = "equal" }
            else
              push
                { v_path = path; v_status = Mismatch;
                  v_detail = "baseline and current values have different shapes" }
        )
  in
  walk "" baseline current;
  List.rev !verdicts

let failures vs = List.filter (fun v -> is_failure v.v_status) vs

(* ------------------------------------------------------------------ *)
(* Per-commit history ring                                             *)
(* ------------------------------------------------------------------ *)

(* A single committed baseline only sees one PR of movement: N successive
   +8% regressions each pass a 10% tolerance while compounding to far more.
   The ring keeps the last [keep] bench documents (files sort by their
   zero-padded sequence number), and [drift] compares the current run
   against the OLDEST surviving entry under the same per-metric tolerances
   — a slow leak has [keep] PRs of compounding to get caught in. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let history_entries dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.filter_map (fun f ->
           match Json.of_string (read_file (Filename.concat dir f)) with
           | Ok doc -> Some (f, doc)
           | Error _ -> None)

let drift ?tolerances ~dir ~current () =
  match history_entries dir with
  | [] -> None
  | (name, oldest) :: _ ->
      Some (name, compare_docs ?tolerances ~baseline:oldest ~current ())

let seq_of_name f =
  match String.index_opt f '-' with
  | Some i -> (
      match int_of_string_opt (String.sub f 0 i) with
      | Some n -> n
      | None -> 0)
  | None -> 0

let history_append ?(keep = 10) ~dir ~label current =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let names () =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  in
  let next = List.fold_left (fun m f -> max m (seq_of_name f)) 0 (names ()) + 1 in
  let label =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' -> c
        | _ -> '-')
      (if label = "" then "run" else label)
  in
  let name = Printf.sprintf "%04d-%s.json" next label in
  Json.to_file (Filename.concat dir name) current;
  let all = names () in
  let excess = List.length all - keep in
  if excess > 0 then
    List.iteri
      (fun i f -> if i < excess then Sys.remove (Filename.concat dir f))
      all;
  name

let render vs =
  let b = Buffer.create 1024 in
  let count s = List.length (List.filter (fun v -> v.v_status = s) vs) in
  List.iter
    (fun v ->
      if v.v_status <> Pass then
        Buffer.add_string b
          (Printf.sprintf "%-10s %s: %s\n" (status_name v.v_status) v.v_path
             v.v_detail))
    vs;
  Buffer.add_string b
    (Printf.sprintf
       "checked %d metrics: %d pass, %d improved, %d regressed, %d missing, %d extra, %d mismatched\n"
       (List.length vs) (count Pass) (count Improved) (count Regressed)
       (count Missing) (count Extra) (count Mismatch));
  Buffer.contents b
