module Table = Diva_util.Table
module Stats = Diva_util.Stats

let ratio_table ~title ~param ~congestion ~rows =
  let strat_names =
    match rows with (_, _, ss) :: _ -> List.map fst ss | [] -> []
  in
  let header =
    param
    :: List.concat_map
         (fun s -> [ s ^ " cong"; s ^ " time" ])
         strat_names
    @ [ "last/first time" ]
  in
  let table = Table.create ~header in
  List.iter
    (fun (label, (base : Runner.measurements), strats) ->
      let cong (m : Runner.measurements) =
        match congestion with
        | `Bytes -> float_of_int m.Runner.congestion_bytes
        | `Messages -> float_of_int m.Runner.congestion_msgs
      in
      let cells =
        List.concat_map
          (fun (_, (m : Runner.measurements)) ->
            [
              Table.fstr (Stats.ratio (cong m) (cong base));
              Table.fstr (Stats.ratio m.Runner.time base.Runner.time);
            ])
          strats
      in
      (* Quotient of the last strategy's time to the first's (the paper
         prints "access tree time as a percentage of fixed home time"). *)
      let quot =
        match strats with
        | (_, fh) :: _ ->
            let at = snd (List.nth strats (List.length strats - 1)) in
            Printf.sprintf "%.0f%%"
              (Stats.percent at.Runner.time fh.Runner.time)
        | [] -> "-"
      in
      Table.add_row table ((label :: cells) @ [ quot ]))
    rows;
  Printf.sprintf "%s\n%s" title (Table.render table)

let workload_table ~title ~param ~rows =
  let strat_names = match rows with (_, ss) :: _ -> List.map fst ss | [] -> [] in
  let header =
    param
    :: List.concat_map
         (fun s ->
           [ s ^ " cong(msg)"; s ^ " time(s)"; s ^ " p50(us)"; s ^ " p99(us)" ])
         strat_names
  in
  let table = Table.create ~header in
  List.iter
    (fun (label, strats) ->
      let cells =
        List.concat_map
          (fun (_, ((m : Runner.measurements), (p50, _p95, p99, _max))) ->
            [
              string_of_int m.Runner.congestion_msgs;
              Table.fstr (m.Runner.time /. 1e6);
              Table.fstr p50;
              Table.fstr p99;
            ])
          strats
      in
      Table.add_row table (label :: cells))
    rows;
  Printf.sprintf "%s\n%s" title (Table.render table)

let absolute_table ~title ~param ?(extra = []) ~rows () =
  let strat_names = match rows with (_, ss) :: _ -> List.map fst ss | [] -> [] in
  let header =
    param
    :: List.concat_map
         (fun s ->
           [ s ^ " cong(msg)"; s ^ " time(s)" ]
           @ List.map (fun (en, _) -> s ^ " " ^ en) extra)
         strat_names
  in
  let table = Table.create ~header in
  List.iter
    (fun (label, strats) ->
      let cells =
        List.concat_map
          (fun (_, (m : Runner.measurements)) ->
            [
              string_of_int m.Runner.congestion_msgs;
              Table.fstr (m.Runner.time /. 1e6);
            ]
            @ List.map (fun (_, f) -> f m) extra)
          strats
      in
      Table.add_row table (label :: cells))
    rows;
  Printf.sprintf "%s\n%s" title (Table.render table)
