(** Chaos harness: synthetic workloads under generated fault schedules,
    every run validated by the coherence {!Oracle}.

    One chaos campaign sweeps [schedules] seed-generated fault schedules
    ({!Diva_faults.Schedule.generate}, seeds [seed], [seed+1], ...) across
    a configurable list of data-management strategies — the paper's pair
    by default, or any selection from the {!Diva_core.Registry} (divasim's
    [chaos] subcommand defaults to every registered contender). Each run
    drives the {!Generator} with an oracle attached; after
    the run the recorded history is checked for per-variable
    linearizability, and — when [verify_determinism] is set — the run is
    repeated and every measurement and fault counter compared, proving
    that schedule + seed fully determine the execution. *)

type config = {
  dims : int array;  (** mesh side lengths *)
  schedules : int;  (** number of generated fault schedules (>= 1) *)
  seed : int;  (** base seed; schedule [i] uses [seed + i] *)
  ops : int;  (** data operations per processor per run *)
  num_vars : int;  (** shared key space size *)
  lock_every : int;  (** every n-th op runs under the key's lock (0 = never) *)
  read_ratio : float;  (** probability that an op is a read *)
  verify_determinism : bool;  (** re-run each case and compare *)
  strategies : (string * Diva_core.Dsm.strategy) list;
      (** contenders swept by the campaign (non-empty) *)
}

val paper_strategies : (string * Diva_core.Dsm.strategy) list
(** The paper's pair: fixed home and the 4-ary access tree. *)

val default : config
(** 4x4 mesh, 10 schedules from seed 42, 60 ops/proc over 24 keys at read
    ratio 0.7, a lock every 4th op, determinism verification on, over
    {!paper_strategies}. *)

(** Result of one (schedule, strategy) run. *)
type outcome = {
  index : int;  (** schedule index within the campaign *)
  schedule : Diva_faults.Schedule.t;
  strategy : string;
  time : float;  (** simulated end-to-end time, microseconds *)
  ops_checked : int;  (** operations recorded by the oracle *)
  lost : int;  (** messages lost to injected faults *)
  retransmits : int;
  reissues : int;  (** DSM watchdog firings *)
  oracle_error : string option;  (** [None] = history linearizable *)
  deterministic : bool option;  (** [None] when verification was off *)
}

val run :
  ?progress:(string -> unit) ->
  ?domains:int ->
  ?flight:Diva_obs.Flight.t ->
  config ->
  outcome list
(** Execute the campaign; [progress] receives one human-readable line per
    completed run. With [domains > 1] the independent (schedule x
    strategy) runs execute on that many OCaml domains; the outcome list
    (and any manifest derived from it) is identical for every [domains]
    value — only wall-clock changes. Progress lines are then emitted after
    the campaign instead of live, so they never interleave. Raises
    [Invalid_argument] on a non-positive [schedules] count or an empty
    strategy list.

    With [flight], every run records into the given flight recorder
    (ring-only — no full trace is buffered) and the first oracle
    violation dumps it; create campaign recorders with
    [~dump_on_watchdog:false], since watchdog trips are routine under
    injected faults. A shared recorder is not domain-safe, so [flight]
    forces serial evaluation regardless of [domains]. *)

val passed : outcome list -> bool
(** No oracle violation and no determinism failure in any run. *)

val manifest : config -> outcome list -> Diva_obs.Json.t
(** Machine-readable campaign report (format ["diva-chaos"], version 2):
    the configuration, every run's counters and verdicts, and the full
    fault schedules for replay. *)
