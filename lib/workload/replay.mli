(** Replay a recorded DSM access stream against any strategy, mesh
    embedding, or seed.

    Each processor's fiber re-issues its recorded operations in program
    order through the {!Diva_core.Dsm} façade, so the full protocol
    (caching, combining, invalidation, locks, barriers) runs again:

    - {b Closed loop}: each operation is issued the moment the previous
      one completes — as fast as the protocol allows. Replaying a trace
      closed-loop under the {e recording} strategy and seed reproduces a
      computation-free run (e.g. matmul measured as in the paper)
      bit for bit.
    - {b Open loop}: the recorded inter-operation gaps (think/compute
      time of the original application) are re-inserted as local
      computation, so the offered load keeps the recorded temporal shape
      even when the strategy under test changes the per-op latencies.

    Reduce operations are re-issued as all-reduces of the recorded wire
    size with a trivial combiner; distinct reducers of equal size are
    collapsed (payload values are not part of the timing model, reducer
    identity only matters when two same-size reductions overlap). *)

type mode = Closed_loop | Open_loop

val mode_name : mode -> string

val run :
  ?obs:Diva_harness.Runner.obs ->
  ?on_net:(Diva_simnet.Network.t -> unit) ->
  ?seed:int ->
  ?mode:mode ->
  strategy:Diva_core.Dsm.strategy ->
  Dsm_trace.t ->
  Generator.result
(** Defaults: the trace's recorded network seed and [Closed_loop]. The
    mesh dimensions always come from the trace header (the access stream
    is only meaningful on its recorded processor count). *)
