(** Online per-variable coherence oracle.

    The chaos harness records every completed shared-memory operation as a
    real-time interval — issue to completion on the simulated clock — and
    the oracle checks the resulting history for per-variable
    linearizability: every read must return a value some write could have
    left as the latest one under an order consistent with real time.
    Writers obtain their values from {!next_write_value}, so every write
    in a run is unique and a read identifies exactly one candidate write.

    The check is conservative: operations whose intervals overlap are
    treated as concurrent and may linearize in either order, so the oracle
    only reports {e definite} violations — histories no linearization can
    explain. Both DIVA strategies implement invalidation-based coherence
    (a write commits only after every cached copy is gone), which is
    linearizable per variable; any reported violation is therefore a
    protocol bug, not oracle noise.

    Detected violation shapes:
    - {b stale read}: read r returns the value of write w, yet some other
      write finished entirely after w finished and entirely before r
      began — w cannot have been the latest write when r ran;
    - {b unknown value}: a read returns a value never written (and not the
      variable's initial value) — lost or duplicated update;
    - {b read inversion}: two reads in disjoint real time return writes in
      the opposite real-time order, both orders disjoint. *)

type t

val create : unit -> t

val init_var : t -> var:int -> value:int -> unit
(** Declare a variable's initial value (a synthetic write preceding every
    real operation). *)

val next_write_value : t -> int
(** A run-unique value for the next write; never collides with any
    initial value registered via {!init_var} (initial values should be 0,
    unique values are positive and allocated once each). *)

val record_read :
  t -> var:int -> proc:int -> value:int -> t0:float -> t1:float -> unit

val record_write :
  t -> var:int -> proc:int -> value:int -> t0:float -> t1:float -> unit

val ops : t -> int
(** Number of operations recorded so far (excluding {!init_var}). *)

val check : t -> (unit, string) result
(** Validate the full recorded history; the error describes the first
    violation found (variable, operations, intervals). *)
