module Schedule = Diva_faults.Schedule
module Faults = Diva_faults.Faults
module Network = Diva_simnet.Network
module Dsm = Diva_core.Dsm
module Runner = Diva_harness.Runner
module Json = Diva_obs.Json
module Mesh = Diva_mesh.Mesh
module Flight = Diva_obs.Flight
module Trace = Diva_obs.Trace

type config = {
  dims : int array;
  schedules : int;
  seed : int;
  ops : int;
  num_vars : int;
  lock_every : int;
  read_ratio : float;
  verify_determinism : bool;
  strategies : (string * Dsm.strategy) list;
}

let paper_strategies =
  [ ("fixed-home", Dsm.Fixed_home); ("tree-4", Dsm.access_tree ~arity:4 ()) ]

let default =
  {
    dims = [| 4; 4 |];
    schedules = 10;
    seed = 42;
    ops = 60;
    num_vars = 24;
    lock_every = 4;
    read_ratio = 0.7;
    verify_determinism = true;
    strategies = paper_strategies;
  }

type outcome = {
  index : int;
  schedule : Schedule.t;
  strategy : string;
  time : float;
  ops_checked : int;
  lost : int;
  retransmits : int;
  reissues : int;
  oracle_error : string option;
  deterministic : bool option;
}

let spec_of cfg =
  Spec.make ~num_vars:cfg.num_vars ~lock_every:cfg.lock_every
    ~phases:[ Spec.phase ~read_ratio:cfg.read_ratio cfg.ops ]
    ~seed:cfg.seed ()

(* Everything one run exposes that a deterministic re-run must reproduce:
   the paper's measurements, the fault counters and the oracle's view of
   the history. Compared structurally (scalars only). *)
type run_stats = {
  rs_m : Runner.measurements;
  rs_lost : int;
  rs_retransmits : int;
  rs_reissues : int;
  rs_ops : int;
  rs_oracle : (unit, string) result;
}

let one_run ?flight cfg sched strategy =
  let oracle = Oracle.create () in
  let obs =
    match flight with
    | None -> { Runner.null_obs with Runner.obs_faults = sched }
    | Some fl ->
        (* Ring-only sink: the recorder sees every event without anyone
           buffering a full trace. Campaign recorders are created with
           [~dump_on_watchdog:false] — watchdog trips are routine under
           injected faults; the oracle is the failure signal here. *)
        {
          Runner.null_obs with
          Runner.obs_faults = sched;
          Runner.obs_trace = Flight.wrap fl Trace.null;
          Runner.obs_flight = Some fl;
        }
  in
  let captured = ref None in
  let on_net net = captured := Network.faults net in
  let r =
    Generator.run ~obs ~on_net ~oracle ~dims:cfg.dims ~strategy (spec_of cfg)
  in
  let lost, retransmits, reissues =
    match !captured with
    | Some f -> (Faults.lost_total f, Faults.retransmits f, Faults.dsm_reissues f)
    | None -> (0, 0, 0)
  in
  {
    rs_m = r.Generator.measurements;
    rs_lost = lost;
    rs_retransmits = retransmits;
    rs_reissues = reissues;
    rs_ops = Oracle.ops oracle;
    rs_oracle =
      (let v = Oracle.check oracle in
       (match flight with
       | Some fl -> Flight.dump_on_error fl ~label:"chaos oracle violation" v
       | None -> ());
       v);
  }

let same_run a b =
  a.rs_m = b.rs_m && a.rs_lost = b.rs_lost
  && a.rs_retransmits = b.rs_retransmits
  && a.rs_reissues = b.rs_reissues && a.rs_ops = b.rs_ops

let progress_line o =
  Printf.sprintf
    "schedule %2d [%s] x %-10s  %5d ops  %3d lost  %4d retx  oracle %s%s"
    o.index (Schedule.describe o.schedule) o.strategy o.ops_checked o.lost
    o.retransmits
    (match o.oracle_error with None -> "ok" | Some _ -> "VIOLATION")
    (match o.deterministic with
    | Some true -> ", deterministic"
    | Some false -> ", NON-DETERMINISTIC"
    | None -> "")

let run ?(progress = fun _ -> ()) ?(domains = 1) ?flight cfg =
  if cfg.schedules <= 0 then
    invalid_arg "Chaos.run: schedule count must be positive";
  if cfg.strategies = [] then
    invalid_arg "Chaos.run: strategy list must be non-empty";
  let mesh = Mesh.create_nd ~dims:cfg.dims in
  let num_nodes = Mesh.num_nodes mesh and num_links = Mesh.num_links mesh in
  (* The campaign is a flat list of (schedule x strategy) runs, each fully
     self-contained (own network, DSM, PRNG streams), so it parallelizes at
     run granularity. Diva_util.Parallel.map preserves list order, hence
     the outcome list — and every manifest derived from it — is identical
     for any [domains] value. *)
  let items =
    List.concat_map
      (fun i ->
        let sched =
          Schedule.generate ~seed:(cfg.seed + i) ~num_nodes ~num_links ()
        in
        List.map (fun (sname, strategy) -> (i, sched, sname, strategy))
          cfg.strategies)
      (List.init cfg.schedules Fun.id)
  in
  let eval (i, sched, sname, strategy) =
    let s = one_run ?flight cfg sched strategy in
    let deterministic =
      if cfg.verify_determinism then
        Some (same_run s (one_run cfg sched strategy))
      else None
    in
    {
      index = i;
      schedule = sched;
      strategy = sname;
      time = s.rs_m.Runner.time;
      ops_checked = s.rs_ops;
      lost = s.rs_lost;
      retransmits = s.rs_retransmits;
      reissues = s.rs_reissues;
      oracle_error =
        (match s.rs_oracle with Ok () -> None | Error e -> Some e);
      deterministic;
    }
  in
  (* A shared flight recorder is not domain-safe; record serially. *)
  let domains = if flight <> None then 1 else domains in
  if domains <= 1 then
    List.map
      (fun it ->
        let o = eval it in
        progress (progress_line o);
        o)
      items
  else begin
    (* Worker domains must not interleave writes into [progress]; emit the
       (identical) lines once the campaign is complete. *)
    let outcomes = Diva_util.Parallel.map ~domains eval items in
    List.iter (fun o -> progress (progress_line o)) outcomes;
    outcomes
  end

let passed outcomes =
  List.for_all
    (fun o -> o.oracle_error = None && o.deterministic <> Some false)
    outcomes

let manifest cfg outcomes =
  Json.Obj
    [
      ("format", Json.String "diva-chaos");
      ("version", Json.Int 2);
      ( "dims",
        Json.List (Array.to_list (Array.map (fun d -> Json.Int d) cfg.dims)) );
      ("seed", Json.Int cfg.seed);
      ("schedules", Json.Int cfg.schedules);
      ("ops_per_proc", Json.Int cfg.ops);
      ("num_vars", Json.Int cfg.num_vars);
      ("lock_every", Json.Int cfg.lock_every);
      ("read_ratio", Json.Float cfg.read_ratio);
      ( "strategies",
        Json.List
          (List.map (fun (n, _) -> Json.String n) cfg.strategies) );
      ("passed", Json.Bool (passed outcomes));
      ( "runs",
        Json.List
          (List.map
             (fun o ->
               Json.Obj
                 [
                   ("schedule_index", Json.Int o.index);
                   ("strategy", Json.String o.strategy);
                   ("time_us", Json.Float o.time);
                   ("ops_checked", Json.Int o.ops_checked);
                   ("lost", Json.Int o.lost);
                   ("retransmits", Json.Int o.retransmits);
                   ("dsm_reissues", Json.Int o.reissues);
                   ( "oracle",
                     match o.oracle_error with
                     | None -> Json.String "ok"
                     | Some e -> Json.String e );
                   ( "deterministic",
                     match o.deterministic with
                     | None -> Json.Null
                     | Some b -> Json.Bool b );
                   ("schedule", Schedule.to_json o.schedule);
                 ])
             outcomes) );
    ]
