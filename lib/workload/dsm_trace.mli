(** Compact, versioned JSONL record of one run's DSM access stream,
    buildable from any traced run (synthetic or real application) via the
    {!Diva_obs.Trace} sink, and replayable by {!Replay} against a
    different strategy, mesh embedding, or — open loop — the same timing.

    File layout (one JSON document per line):
    - line 1, the header:
      [{"format":"diva-dsm-trace","version":1,"dims":[4,4],"seed":17,
        "meta":{"app":"matmul", ...}}]
    - variable declarations, in creation order:
      [{"decl":0,"name":"A[0,0]","size":1024,"owner":0}]
    - operations, in completion order (per-processor program order):
      [{"p":3,"op":"r","v":7,"sz":1024,"ts":123.0,"dur":4.5,"hit":false}]
      where [op] is one of [r w l u b x] (read, write, lock, unlock,
      barrier, reduce) and [v] is [-1] for variable-less ops.

    Unknown header fields are ignored; a higher [version] is rejected, so
    the format can grow compatibly. *)

type decl = { d_var : int; d_name : string; d_size : int; d_owner : int }

type op = {
  o_proc : int;
  o_op : Diva_obs.Trace.dsm_op;
  o_var : int;  (** [-1] for barrier / reduce *)
  o_size : int;
  o_ts : float;  (** issue time, simulated microseconds *)
  o_dur : float;  (** blocking latency *)
  o_hit : bool;
}

type t = {
  version : int;
  dims : int array;
  seed : int;  (** network seed of the recorded run *)
  meta : (string * string) list;  (** free-form provenance (app, strategy) *)
  decls : decl list;  (** in variable-id (creation) order *)
  ops : op list;  (** in completion order *)
}

val current_version : int

val of_events :
  dims:int array ->
  seed:int ->
  ?meta:(string * string) list ->
  Diva_obs.Trace.event list ->
  t
(** Project the DSM events ({!Diva_obs.Trace.Var_decl} and
    {!Diva_obs.Trace.Dsm_access}) out of a trace-event stream. *)

val num_procs : t -> int

val to_string : t -> string
(** The JSONL text (ends with a newline). *)

val of_string : string -> (t, string) result

val write : string -> t -> unit

val read : string -> (t, string) result
(** [Error] covers unreadable files, malformed JSON, a missing or foreign
    header, and unsupported versions — each with a message naming the
    offending line. *)

val probe : string -> (unit, string) result
(** Cheap preflight used by the CLI: checks that the file exists and its
    header line declares a supported format and version, without parsing
    the body. *)
