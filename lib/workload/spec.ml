type popularity =
  | Uniform
  | Zipf of float
  | Hot_cold of { hot_fraction : float; hot_weight : float }

type locality = Global | Proc_local | Submesh of int

type phase = {
  ops : int;
  read_ratio : float;
  think : float;
  burst : (int * float) option;
}

type t = {
  num_vars : int;
  var_size : int;
  popularity : popularity;
  locality : locality;
  lock_every : int;
  barrier_every : int;
  phases : phase list;
  seed : int;
}

let phase ?(read_ratio = 0.9) ?(think = 0.0) ?burst ops =
  { ops; read_ratio; think; burst }

let make ?(num_vars = 256) ?(var_size = 64) ?(popularity = Uniform)
    ?(locality = Global) ?(lock_every = 0) ?(barrier_every = 0)
    ?(phases = [ phase 200 ]) ?(seed = 1) () =
  { num_vars; var_size; popularity; locality; lock_every; barrier_every;
    phases; seed }

let validate t =
  let check cond msg rest = if cond then rest () else Error msg in
  let in_unit x = x >= 0.0 && x <= 1.0 in
  check (t.num_vars >= 1) "num_vars must be >= 1" @@ fun () ->
  check (t.var_size >= 1) "var_size must be >= 1 byte" @@ fun () ->
  check (t.lock_every >= 0) "lock_every must be >= 0 (0 = never)" @@ fun () ->
  check (t.barrier_every >= 0) "barrier_every must be >= 0 (0 = never)"
  @@ fun () ->
  check (t.phases <> []) "at least one phase is required" @@ fun () ->
  check
    (match t.popularity with
    | Uniform -> true
    | Zipf s -> Float.is_finite s && s >= 0.0
    | Hot_cold _ -> true)
    "Zipf exponent must be a finite number >= 0"
  @@ fun () ->
  check
    (match t.popularity with
    | Hot_cold { hot_fraction; hot_weight } ->
        hot_fraction > 0.0 && hot_fraction < 1.0 && in_unit hot_weight
    | _ -> true)
    "hot-cold needs hot_fraction in (0,1) and hot_weight in [0,1]"
  @@ fun () ->
  check
    (match t.locality with Submesh r -> r >= 1 | _ -> true)
    "submesh locality radius must be >= 1"
  @@ fun () ->
  let rec phases i = function
    | [] -> Ok ()
    | p :: rest ->
        let err msg = Error (Printf.sprintf "phase %d: %s" i msg) in
        if p.ops < 0 then err "ops must be >= 0"
        else if not (in_unit p.read_ratio) then
          err "read_ratio must be in [0,1]"
        else if not (Float.is_finite p.think && p.think >= 0.0) then
          err "think time must be >= 0"
        else begin
          match p.burst with
          | Some (n, gap) when n < 1 || not (Float.is_finite gap && gap >= 0.0)
            ->
              err "burst needs n >= 1 ops and a gap >= 0"
          | _ -> phases (i + 1) rest
        end
  in
  phases 0 t.phases

let total_ops_per_proc t = List.fold_left (fun acc p -> acc + p.ops) 0 t.phases

let popularity_name = function
  | Uniform -> "uniform"
  | Zipf s -> Printf.sprintf "zipf %.2f" s
  | Hot_cold { hot_fraction; hot_weight } ->
      Printf.sprintf "hot-cold %.2f:%.2f" hot_fraction hot_weight

let locality_name = function
  | Global -> "global"
  | Proc_local -> "local"
  | Submesh r -> Printf.sprintf "submesh %d" r

let to_params t =
  let open Diva_obs.Json in
  [
    ("num_vars", Int t.num_vars);
    ("var_size", Int t.var_size);
    ("popularity", String (popularity_name t.popularity));
    ("locality", String (locality_name t.locality));
    ("lock_every", Int t.lock_every);
    ("barrier_every", Int t.barrier_every);
    ("phases", Int (List.length t.phases));
    ("ops_per_proc", Int (total_ops_per_proc t));
    ( "read_ratio",
      match t.phases with p :: _ -> Float p.read_ratio | [] -> Null );
  ]
