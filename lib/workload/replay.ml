module Network = Diva_simnet.Network
module Dsm = Diva_core.Dsm
module Trace = Diva_obs.Trace
module Runner = Diva_harness.Runner

type mode = Closed_loop | Open_loop

let mode_name = function Closed_loop -> "closed-loop" | Open_loop -> "open-loop"

(* Recorded inter-op gap: issue time minus the previous op's completion on
   the same processor (0 before the first op — closed loop from the start). *)
let with_gaps ops =
  let prev_end = Hashtbl.create 64 in
  List.map
    (fun (o : Dsm_trace.op) ->
      let last =
        Option.value ~default:o.Dsm_trace.o_ts
          (Hashtbl.find_opt prev_end o.Dsm_trace.o_proc)
      in
      Hashtbl.replace prev_end o.Dsm_trace.o_proc
        (o.Dsm_trace.o_ts +. o.Dsm_trace.o_dur);
      (o, Float.max 0.0 (o.Dsm_trace.o_ts -. last)))
    ops

let run ?(obs = Runner.null_obs) ?on_net ?seed ?(mode = Closed_loop) ~strategy
    (tr : Dsm_trace.t) =
  let procs = Dsm_trace.num_procs tr in
  let seed = Option.value ~default:tr.Dsm_trace.seed seed in
  let net = Network.create_nd ~seed ~dims:tr.Dsm_trace.dims () in
  Runner.install_obs net obs;
  let dsm = Dsm.create net ~strategy () in
  (* Recreate every variable up front, in recorded id order, so the ids the
     DSM assigns coincide with the recorded ones. Creation is free in the
     simulated cost model, so early creation does not perturb replay even
     for traces of applications that allocated dynamically. *)
  let vars = Hashtbl.create (List.length tr.Dsm_trace.decls) in
  List.iter
    (fun (d : Dsm_trace.decl) ->
      if d.Dsm_trace.d_owner < 0 || d.Dsm_trace.d_owner >= procs then
        invalid_arg
          (Printf.sprintf "Replay.run: variable %d has owner %d outside the %d-processor mesh"
             d.Dsm_trace.d_var d.Dsm_trace.d_owner procs);
      Hashtbl.replace vars d.Dsm_trace.d_var
        (Dsm.create_var dsm ~name:d.Dsm_trace.d_name ~owner:d.Dsm_trace.d_owner
           ~size:d.Dsm_trace.d_size 0))
    tr.Dsm_trace.decls;
  let var o =
    match Hashtbl.find_opt vars o.Dsm_trace.o_var with
    | Some v -> v
    | None ->
        invalid_arg
          (Printf.sprintf "Replay.run: op references undeclared variable %d"
             o.Dsm_trace.o_var)
  in
  (* One reducer per recorded wire size, created in deterministic order. *)
  let reduce_sizes =
    List.sort_uniq compare
      (List.filter_map
         (fun (o : Dsm_trace.op) ->
           if o.Dsm_trace.o_op = Trace.Reduce then Some o.Dsm_trace.o_size
           else None)
         tr.Dsm_trace.ops)
  in
  let reducers = Hashtbl.create 4 in
  List.iter
    (fun size ->
      Hashtbl.replace reducers size
        (Dsm.reducer dsm ~combine:(fun a _ -> (a : int)) ~size))
    reduce_sizes;
  (* Partition into per-processor programs, preserving order. *)
  let programs = Array.make procs [] in
  List.iter
    (fun ((o : Dsm_trace.op), gap) ->
      if o.Dsm_trace.o_proc < 0 || o.Dsm_trace.o_proc >= procs then
        invalid_arg
          (Printf.sprintf "Replay.run: op on processor %d outside the %d-processor mesh"
             o.Dsm_trace.o_proc procs);
      programs.(o.Dsm_trace.o_proc) <-
        (o, gap) :: programs.(o.Dsm_trace.o_proc))
    (with_gaps tr.Dsm_trace.ops);
  Array.iteri (fun p ops -> programs.(p) <- List.rev ops) programs;
  let samples =
    Array.make (max 1 (List.length tr.Dsm_trace.ops)) 0.0
  in
  let n_samples = ref 0 in
  let fiber p =
    List.iter
      (fun ((o : Dsm_trace.op), gap) ->
        (match mode with
        | Open_loop when gap > 0.0 -> Network.compute net p gap
        | _ -> ());
        let t0 = Network.now net in
        (match o.Dsm_trace.o_op with
        | Trace.Read -> ignore (Dsm.read dsm p (var o) : int)
        | Trace.Write -> Dsm.write dsm p (var o) 0
        | Trace.Lock -> Dsm.lock dsm p (var o)
        | Trace.Unlock -> Dsm.unlock dsm p (var o)
        | Trace.Barrier -> Dsm.barrier dsm p
        | Trace.Reduce ->
            ignore (Dsm.reduce dsm p (Hashtbl.find reducers o.Dsm_trace.o_size) 0 : int));
        (* Latency is reported over data operations only, matching the
           synthetic generator, so replay and generation are comparable. *)
        match o.Dsm_trace.o_op with
        | Trace.Read | Trace.Write ->
            samples.(!n_samples) <- Network.now net -. t0;
            incr n_samples
        | _ -> ())
      programs.(p)
  in
  for p = 0 to procs - 1 do
    Network.spawn net p (fun () -> fiber p)
  done;
  Runner.finish ?on_net ~obs net;
  let m = Runner.collect net (Some dsm) in
  {
    Generator.measurements = m;
    latency =
      Latency.of_samples ~duration_us:m.Runner.time
        (Array.sub samples 0 !n_samples);
  }
