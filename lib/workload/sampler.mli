(** Per-processor key sampling for the synthetic generator: combines a
    spec's key-popularity distribution with its locality model.

    A key's popularity weight is a function of its {e global} rank, so a
    hot key is hot for every processor whose candidate set contains it;
    the locality model only restricts which keys a processor may draw
    (all of them, its own, or those homed within a submesh radius), it
    does not reshape the distribution among them. *)

type t

val create : Diva_mesh.Mesh.t -> Spec.t -> t
(** Precomputes per-processor candidate key sets and cumulative weights.
    Raises [Invalid_argument] when some processor's candidate set is empty
    (e.g. [Proc_local] with fewer keys than processors). *)

val draw : t -> proc:int -> Diva_util.Prng.t -> int
(** Draw a key (index in [0 .. num_vars-1]) for processor [proc],
    consuming exactly one [Prng.float] from the given stream. *)

val weight : Spec.popularity -> n:int -> int -> float
(** [weight pop ~n k] is the unnormalized popularity weight of the key of
    global rank [k] in a key space of size [n] (exposed for tests). *)
