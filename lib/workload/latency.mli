(** Per-operation latency and throughput report of one workload run.

    Latency of an operation is the simulated time its fiber was blocked in
    the DSM call (0 for cache hits, which only charge deferred CPU time);
    percentiles are nearest-rank ({!Diva_util.Stats.percentile}).
    Throughput is completed operations per simulated second. *)

type t = {
  ops : int;  (** number of operations sampled *)
  duration_us : float;  (** end-to-end simulated run time *)
  mean : float;  (** microseconds, over all sampled ops *)
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

val of_samples : duration_us:float -> float array -> t

val ops_per_sec : t -> float
(** Operations per simulated {e second} (0 for an empty run). *)

val quad : t -> float * float * float * float
(** (p50, p95, p99, max) — the shape {!Diva_harness.Report.workload_table}
    takes. *)

val to_fields : t -> (string * Diva_obs.Json.t) list
(** Latency/throughput fields for run manifests and BENCH files. *)

val render : t -> string
(** Multi-line human-readable block, aligned with the measurement printout
    of the divasim CLI. *)
