(** Declarative description of a synthetic DSM workload.

    A spec is everything the {!Generator} needs apart from the mesh and the
    data-management strategy: the shared key space, how keys are chosen
    (popularity and locality), the read:write mix, synchronization
    frequency, and a phase structure for non-stationary (bursty) load.
    Specs are plain data; the same spec runs unchanged against any
    strategy, mesh and embedding, which is what makes strategies comparable
    under one load. All randomness is drawn from {!Diva_util.Prng} streams
    derived from [seed], so a (spec, mesh, strategy) triple determines the
    run bit for bit. *)

type popularity =
  | Uniform  (** every key equally likely *)
  | Zipf of float
      (** key of global rank [k] (0-based) has weight [(k+1){^ -s}]; [Zipf 0.]
          is [Uniform], [s] around 0.9–1.2 models web-like skew *)
  | Hot_cold of { hot_fraction : float; hot_weight : float }
      (** the first [hot_fraction] of the key space receives [hot_weight]
          of the total probability mass, uniformly within each class *)

type locality =
  | Global  (** any processor accesses any key *)
  | Proc_local  (** each processor only accesses keys homed on itself *)
  | Submesh of int
      (** keys homed on processors within the given Manhattan radius *)

(** One phase of the load: [ops] shared-memory data operations per
    processor, issued back to back except for [think] microseconds of local
    computation after each, and — when [burst] is [Some (n, gap)] — an
    extra [gap]-microsecond pause after every [n]-th operation (an on/off
    bursty arrival process). Phases are separated by global barriers. *)
type phase = {
  ops : int;
  read_ratio : float;  (** probability in \[0,1\] that an op is a read *)
  think : float;
  burst : (int * float) option;
}

type t = {
  num_vars : int;  (** key space size; key [k] is homed on processor [k mod P] *)
  var_size : int;  (** payload bytes per variable *)
  popularity : popularity;
  locality : locality;
  lock_every : int;
      (** every [lock_every]-th data op runs under the key's lock (0 = never) *)
  barrier_every : int;
      (** a global barrier after every [barrier_every]-th op (0 = phase ends only) *)
  phases : phase list;
  seed : int;
}

val phase :
  ?read_ratio:float -> ?think:float -> ?burst:int * float -> int -> phase
(** [phase ~read_ratio ~think ~burst ops] with defaults 0.9, 0., [None]. *)

val make :
  ?num_vars:int ->
  ?var_size:int ->
  ?popularity:popularity ->
  ?locality:locality ->
  ?lock_every:int ->
  ?barrier_every:int ->
  ?phases:phase list ->
  ?seed:int ->
  unit ->
  t
(** Defaults: 256 keys of 64 bytes, [Uniform], [Global], no locks, no extra
    barriers, one phase of 200 ops at read ratio 0.9, seed 1. *)

val validate : t -> (unit, string) result
(** Structural validation with actionable messages: key space and sizes
    positive, probabilities in \[0,1\], Zipf exponent and hot-cold
    parameters in range, at least one phase, non-negative frequencies. *)

val total_ops_per_proc : t -> int

val popularity_name : popularity -> string
val locality_name : locality -> string

val to_params : t -> (string * Diva_obs.Json.t) list
(** Spec as manifest / BENCH parameter fields. *)
