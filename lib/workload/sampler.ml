module Mesh = Diva_mesh.Mesh
module Prng = Diva_util.Prng

let weight pop ~n k =
  match pop with
  | Spec.Uniform -> 1.0
  | Spec.Zipf s -> Float.pow (float_of_int (k + 1)) (-.s)
  | Spec.Hot_cold { hot_fraction; hot_weight } ->
      let nh =
        max 1 (min (n - 1) (int_of_float (Float.round (hot_fraction *. float_of_int n))))
      in
      if k < nh then hot_weight /. float_of_int nh
      else (1.0 -. hot_weight) /. float_of_int (n - nh)

(* One candidate set with its cumulative weights; shared across processors
   whenever the locality model allows (always, for Global). *)
type bucket = { keys : int array; cum : float array }

type t = { buckets : bucket array (* indexed by processor *) }

let bucket_of_keys spec keys =
  let n = Spec.(spec.num_vars) in
  let cum = Array.make (Array.length keys) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i k ->
      acc := !acc +. weight Spec.(spec.popularity) ~n k;
      cum.(i) <- !acc)
    keys;
  { keys; cum }

(* All nodes within Manhattan radius [r] of [home]: enumerate coordinate
   offsets dimension by dimension with the remaining radius as budget, so
   building every ball costs O(procs x ball size) rather than a distance
   scan of the whole mesh per node. *)
let ball mesh ~r home =
  let dims = Mesh.dims mesh in
  let nd = Array.length dims in
  let c = Mesh.coords_nd mesh home in
  let cur = Array.copy c in
  let acc = ref [] in
  let rec go d budget =
    if d = nd then acc := Mesh.node_at_nd mesh cur :: !acc
    else begin
      let lo = max 0 (c.(d) - budget)
      and hi = min (dims.(d) - 1) (c.(d) + budget) in
      for x = lo to hi do
        cur.(d) <- x;
        go (d + 1) (budget - abs (x - c.(d)))
      done;
      cur.(d) <- c.(d)
    end
  in
  go 0 r;
  Array.of_list !acc

(* Candidate key sets for every processor in one pass over the key space:
   key [k] (homed on [k mod procs]) is appended to each processor whose
   candidate set contains it. Construction is O(keys x procs-per-key) —
   linear in the key space for a fixed locality radius — instead of the
   full num_vars scan per processor a filter would cost, which is what
   keeps million-key service specs cheap to instantiate. Keys end up in
   ascending order per processor, exactly as the per-processor filter
   produced them, so draws are unchanged. *)
let local_keysets mesh ~procs ~num_vars locality =
  let members =
    match locality with
    | Spec.Proc_local -> Array.init procs (fun p -> [| p |])
    | Spec.Submesh r -> Array.init procs (fun home -> ball mesh ~r home)
    | Spec.Global -> invalid_arg "Sampler.local_keysets: Global is shared"
  in
  let sizes = Array.make procs 0 in
  for k = 0 to num_vars - 1 do
    Array.iter
      (fun p -> sizes.(p) <- sizes.(p) + 1)
      members.(k mod procs)
  done;
  let keysets = Array.map (fun sz -> Array.make sz 0) sizes in
  let fill = Array.make procs 0 in
  for k = 0 to num_vars - 1 do
    Array.iter
      (fun p ->
        keysets.(p).(fill.(p)) <- k;
        fill.(p) <- fill.(p) + 1)
      members.(k mod procs)
  done;
  keysets

let create mesh spec =
  let procs = Mesh.num_nodes mesh in
  let buckets =
    match Spec.(spec.locality) with
    | Spec.Global ->
        let b = bucket_of_keys spec (Array.init Spec.(spec.num_vars) Fun.id) in
        Array.make procs b
    | (Spec.Proc_local | Spec.Submesh _) as locality ->
        Array.mapi
          (fun p keys ->
            if Array.length keys = 0 then
              invalid_arg
                (Printf.sprintf
                   "Sampler.create: processor %d has no candidate keys \
                    (locality %s needs num_vars >= %d)"
                   p
                   (Spec.locality_name locality)
                   procs);
            bucket_of_keys spec keys)
          (local_keysets mesh ~procs ~num_vars:Spec.(spec.num_vars) locality)
  in
  { buckets }

let draw t ~proc rng =
  let b = t.buckets.(proc) in
  let total = b.cum.(Array.length b.cum - 1) in
  let u = Prng.float rng total in
  (* First index whose cumulative weight exceeds u. *)
  let lo = ref 0 and hi = ref (Array.length b.cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if b.cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  b.keys.(!lo)
