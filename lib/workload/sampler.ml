module Mesh = Diva_mesh.Mesh
module Prng = Diva_util.Prng

let weight pop ~n k =
  match pop with
  | Spec.Uniform -> 1.0
  | Spec.Zipf s -> Float.pow (float_of_int (k + 1)) (-.s)
  | Spec.Hot_cold { hot_fraction; hot_weight } ->
      let nh =
        max 1 (min (n - 1) (int_of_float (Float.round (hot_fraction *. float_of_int n))))
      in
      if k < nh then hot_weight /. float_of_int nh
      else (1.0 -. hot_weight) /. float_of_int (n - nh)

(* One candidate set with its cumulative weights; shared across processors
   whenever the locality model allows (always, for Global). *)
type bucket = { keys : int array; cum : float array }

type t = { buckets : bucket array (* indexed by processor *) }

let bucket_of_keys spec keys =
  let n = Spec.(spec.num_vars) in
  let cum = Array.make (Array.length keys) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i k ->
      acc := !acc +. weight Spec.(spec.popularity) ~n k;
      cum.(i) <- !acc)
    keys;
  { keys; cum }

let create mesh spec =
  let procs = Mesh.num_nodes mesh in
  let all = Array.init Spec.(spec.num_vars) Fun.id in
  let candidates p =
    match Spec.(spec.locality) with
    | Spec.Global -> all
    | Spec.Proc_local ->
        Array.of_seq
          (Seq.filter (fun k -> k mod procs = p) (Array.to_seq all))
    | Spec.Submesh r ->
        Array.of_seq
          (Seq.filter
             (fun k -> Mesh.distance mesh p (k mod procs) <= r)
             (Array.to_seq all))
  in
  let global_bucket = lazy (bucket_of_keys spec all) in
  let buckets =
    Array.init procs (fun p ->
        match Spec.(spec.locality) with
        | Spec.Global -> Lazy.force global_bucket
        | _ ->
            let keys = candidates p in
            if Array.length keys = 0 then
              invalid_arg
                (Printf.sprintf
                   "Sampler.create: processor %d has no candidate keys \
                    (locality %s needs num_vars >= %d)"
                   p
                   (Spec.locality_name Spec.(spec.locality))
                   procs);
            bucket_of_keys spec keys)
  in
  { buckets }

let draw t ~proc rng =
  let b = t.buckets.(proc) in
  let total = b.cum.(Array.length b.cum - 1) in
  let u = Prng.float rng total in
  (* First index whose cumulative weight exceeds u. *)
  let lo = ref 0 and hi = ref (Array.length b.cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if b.cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  b.keys.(!lo)
