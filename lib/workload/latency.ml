module Stats = Diva_util.Stats

type t = {
  ops : int;
  duration_us : float;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

let of_samples ~duration_us samples =
  {
    ops = Array.length samples;
    duration_us;
    mean = Stats.mean samples;
    p50 = Stats.percentile 50.0 samples;
    p95 = Stats.percentile 95.0 samples;
    p99 = Stats.percentile 99.0 samples;
    max = (if Array.length samples = 0 then 0.0 else Stats.maxf samples);
  }

let ops_per_sec t =
  if t.duration_us <= 0.0 then 0.0
  else float_of_int t.ops /. (t.duration_us /. 1e6)

let quad t = (t.p50, t.p95, t.p99, t.max)

let to_fields t =
  let open Diva_obs.Json in
  [
    ("ops", Int t.ops);
    ("ops_per_sim_sec", Float (ops_per_sec t));
    ("lat_mean_us", Float t.mean);
    ("lat_p50_us", Float t.p50);
    ("lat_p95_us", Float t.p95);
    ("lat_p99_us", Float t.p99);
    ("lat_max_us", Float t.max);
  ]

let render t =
  Printf.sprintf
    "ops                  %d (%.0f ops/sim-second)\n\
     latency p50/p95/p99  %.1f / %.1f / %.1f us (max %.1f, mean %.1f)\n"
    t.ops (ops_per_sec t) t.p50 t.p95 t.p99 t.max t.mean
