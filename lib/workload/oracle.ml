type op = { o_proc : int; o_value : int; o_t0 : float; o_t1 : float }

type var_log = { mutable writes : op list; mutable reads : op list }
(* Both newest-first; reversed once in [check]. *)

type t = {
  vars : (int, var_log) Hashtbl.t;
  mutable next_val : int;
  mutable n_ops : int;
}

let create () = { vars = Hashtbl.create 64; next_val = 1; n_ops = 0 }

let log t var =
  match Hashtbl.find_opt t.vars var with
  | Some l -> l
  | None ->
      let l = { writes = []; reads = [] } in
      Hashtbl.add t.vars var l;
      l

let init_var t ~var ~value =
  let l = log t var in
  l.writes <-
    { o_proc = -1; o_value = value; o_t0 = Float.neg_infinity;
      o_t1 = Float.neg_infinity }
    :: l.writes

let next_write_value t =
  let v = t.next_val in
  t.next_val <- v + 1;
  v

let record t ~var ~proc ~value ~t0 ~t1 side =
  if t1 < t0 then invalid_arg "Oracle.record: interval ends before it starts";
  let l = log t var in
  let o = { o_proc = proc; o_value = value; o_t0 = t0; o_t1 = t1 } in
  (match side with `R -> l.reads <- o :: l.reads | `W -> l.writes <- o :: l.writes);
  t.n_ops <- t.n_ops + 1

let record_read t ~var ~proc ~value ~t0 ~t1 = record t ~var ~proc ~value ~t0 ~t1 `R
let record_write t ~var ~proc ~value ~t0 ~t1 = record t ~var ~proc ~value ~t0 ~t1 `W

let ops t = t.n_ops

(* Strict real-time precedence: a finished entirely before b began.
   Overlapping intervals are concurrent and never "precede". *)
let precedes a b = a.o_t1 < b.o_t0

let pp_op var what o =
  if o.o_t0 = Float.neg_infinity then
    Printf.sprintf "initial value %d of v%d" o.o_value var
  else
    Printf.sprintf "%s of %d on v%d by p%d in [%.1f, %.1f]" what o.o_value var
      o.o_proc o.o_t0 o.o_t1

let check_var var l =
  let writes = List.rev l.writes in
  let reads = List.rev l.reads in
  let exception Violation of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt in
  try
    (* Every read names its (unique-valued) candidate write; the write
       must not be definitely overwritten before the read began. *)
    let source r =
      match List.filter (fun w -> w.o_value = r.o_value) writes with
      | [] ->
          fail "%s: value was never written to this variable"
            (pp_op var "read" r)
      | ws ->
          if
            List.for_all
              (fun w ->
                List.exists
                  (fun w2 -> w2 != w && precedes w w2 && precedes w2 r)
                  writes)
              ws
          then
            fail "%s is stale: %s, but a later write finished before the read \
                  began"
              (pp_op var "read" r)
              (pp_op var "write" (List.hd ws));
          ws
    in
    let sources = List.map (fun r -> (r, source r)) reads in
    (* Read inversion: reads in disjoint real time must observe writes in
       an order consistent with real time. Only flagged when every
       candidate pair is strictly inverted. *)
    List.iter
      (fun (r1, ws1) ->
        List.iter
          (fun (r2, ws2) ->
            if precedes r1 r2 && r1.o_value <> r2.o_value then
              if
                List.for_all
                  (fun w2 -> List.for_all (fun w1 -> precedes w2 w1) ws1)
                  ws2
              then
                fail "%s, then %s: the second read observes the older write"
                  (pp_op var "read" r1) (pp_op var "read" r2))
          sources)
      sources;
    Ok ()
  with Violation msg -> Error msg

let check t =
  Hashtbl.fold
    (fun var l acc ->
      match acc with Error _ -> acc | Ok () -> check_var var l)
    t.vars (Ok ())
