(** Synthetic load generator: drives the {!Diva_core.Dsm} façade from one
    fiber per processor according to a {!Spec}.

    Every processor draws keys from its own deterministic PRNG stream
    (derived from the spec seed and the processor id), so a
    (spec, mesh, strategy) triple yields a bit-identical simulation on
    every run — including the DSM trace it records when given an enabled
    observability sink. *)

type result = {
  measurements : Diva_harness.Runner.measurements;
  latency : Latency.t;
}

val run :
  ?obs:Diva_harness.Runner.obs ->
  ?on_net:(Diva_simnet.Network.t -> unit) ->
  ?oracle:Oracle.t ->
  dims:int array ->
  strategy:Diva_core.Dsm.strategy ->
  Spec.t ->
  result
(** Build the mesh ([Spec.seed] seeds the network), install observability,
    create one shared variable per key (key [k] homed on processor
    [k mod P]), run the per-processor fibers to completion and report the
    paper's measurements plus the latency/throughput profile. Raises
    [Invalid_argument] on a spec that fails {!Spec.validate} or a
    locality model inconsistent with the mesh.

    With [oracle], every completed read and write is recorded against the
    coherence {!Oracle} as a real-time interval, and writes use
    {!Oracle.next_write_value} in place of random payloads. The PRNG draw
    still happens, so a run with an oracle issues the bit-identical
    operation sequence (keys, op kinds, timing) as the same run without
    one. *)
