module Network = Diva_simnet.Network
module Dsm = Diva_core.Dsm
module Runner = Diva_harness.Runner
module Prng = Diva_util.Prng

type result = {
  measurements : Runner.measurements;
  latency : Latency.t;
}

(* Growing sample buffer shared by all fibers (cooperative scheduling: no
   concurrency, just unknown completion interleaving). *)
type samples = { mutable buf : float array; mutable n : int }

let add_sample s x =
  if s.n = Array.length s.buf then begin
    let buf = Array.make (max 1024 (2 * Array.length s.buf)) 0.0 in
    Array.blit s.buf 0 buf 0 s.n;
    s.buf <- buf
  end;
  s.buf.(s.n) <- x;
  s.n <- s.n + 1

let proc_rng spec p =
  Prng.create ~seed:(Int64.to_int (Prng.hash2 (Int64.of_int Spec.(spec.seed)) (p + 1)))

let fiber ?oracle net dsm spec sampler vars samples p =
  let rng = proc_rng spec p in
  List.iter
    (fun (ph : Spec.phase) ->
      for i = 1 to ph.Spec.ops do
        let vi = Sampler.draw sampler ~proc:p rng in
        let v = vars.(vi) in
        let locked = Spec.(spec.lock_every) > 0 && i mod Spec.(spec.lock_every) = 0 in
        let is_read = Prng.float rng 1.0 < ph.Spec.read_ratio in
        let t0 = Network.now net in
        if locked then Dsm.lock dsm p v;
        (if is_read then begin
           let x = Dsm.read dsm p v in
           match oracle with
           | Some o ->
               Oracle.record_read o ~var:vi ~proc:p ~value:x ~t0
                 ~t1:(Network.now net)
           | None -> ()
         end
         else begin
           (* The draw happens either way, so checked and unchecked runs
              issue the identical operation sequence; the oracle only
              substitutes run-unique values for the random ones. *)
           let drawn = Prng.int rng 1_000_000 in
           match oracle with
           | Some o ->
               let value = Oracle.next_write_value o in
               let w0 = Network.now net in
               Dsm.write dsm p v value;
               Oracle.record_write o ~var:vi ~proc:p ~value ~t0:w0
                 ~t1:(Network.now net)
           | None -> Dsm.write dsm p v drawn
         end);
        if locked then Dsm.unlock dsm p v;
        add_sample samples (Network.now net -. t0);
        if Spec.(spec.barrier_every) > 0 && i mod Spec.(spec.barrier_every) = 0
        then Dsm.barrier dsm p;
        if ph.Spec.think > 0.0 then Network.compute net p ph.Spec.think;
        match ph.Spec.burst with
        | Some (n, gap) when i mod n = 0 && gap > 0.0 -> Network.compute net p gap
        | _ -> ()
      done;
      Dsm.barrier dsm p)
    Spec.(spec.phases)

let run ?(obs = Runner.null_obs) ?on_net ?oracle ~dims ~strategy spec =
  (match Spec.validate spec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Diva_workload.Generator.run: " ^ e));
  let net = Network.create_nd ~seed:Spec.(spec.seed) ~dims () in
  Runner.install_obs net obs;
  let dsm = Dsm.create net ~strategy () in
  let procs = Network.num_nodes net in
  let sampler = Sampler.create (Network.mesh net) spec in
  let vars =
    Array.init Spec.(spec.num_vars) (fun k ->
        (match oracle with
        | Some o -> Oracle.init_var o ~var:k ~value:0
        | None -> ());
        Dsm.create_var dsm
          ~name:(Printf.sprintf "w%d" k)
          ~owner:(k mod procs) ~size:Spec.(spec.var_size) 0)
  in
  let samples =
    { buf = Array.make (max 1 (procs * Spec.total_ops_per_proc spec)) 0.0; n = 0 }
  in
  for p = 0 to procs - 1 do
    Network.spawn net p (fun () ->
        fiber ?oracle net dsm spec sampler vars samples p)
  done;
  Runner.finish ?on_net ~obs net;
  let m = Runner.collect net (Some dsm) in
  {
    measurements = m;
    latency =
      Latency.of_samples ~duration_us:m.Runner.time
        (Array.sub samples.buf 0 samples.n);
  }
