module Trace = Diva_obs.Trace
module Json = Diva_obs.Json

type decl = { d_var : int; d_name : string; d_size : int; d_owner : int }

type op = {
  o_proc : int;
  o_op : Trace.dsm_op;
  o_var : int;
  o_size : int;
  o_ts : float;
  o_dur : float;
  o_hit : bool;
}

type t = {
  version : int;
  dims : int array;
  seed : int;
  meta : (string * string) list;
  decls : decl list;
  ops : op list;
}

let current_version = 1
let format_name = "diva-dsm-trace"

let of_events ~dims ~seed ?(meta = []) events =
  let decls = ref [] and ops = ref [] in
  List.iter
    (function
      | Trace.Var_decl { var; var_name; size; owner; _ } ->
          decls := { d_var = var; d_name = var_name; d_size = size; d_owner = owner } :: !decls
      | Trace.Dsm_access { ts; dur; node; var; op; size; hit; _ } ->
          ops :=
            { o_proc = node; o_op = op; o_var = var; o_size = size; o_ts = ts;
              o_dur = dur; o_hit = hit }
            :: !ops
      | _ -> ())
    events;
  {
    version = current_version;
    dims = Array.copy dims;
    seed;
    meta;
    decls = List.sort (fun a b -> compare a.d_var b.d_var) (List.rev !decls);
    ops = List.rev !ops;
  }

let num_procs t = Array.fold_left ( * ) 1 t.dims

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let op_code = function
  | Trace.Read -> "r"
  | Trace.Write -> "w"
  | Trace.Lock -> "l"
  | Trace.Unlock -> "u"
  | Trace.Barrier -> "b"
  | Trace.Reduce -> "x"

let op_of_code = function
  | "r" -> Some Trace.Read
  | "w" -> Some Trace.Write
  | "l" -> Some Trace.Lock
  | "u" -> Some Trace.Unlock
  | "b" -> Some Trace.Barrier
  | "x" -> Some Trace.Reduce
  | _ -> None

let header_json t =
  let open Json in
  Obj
    [
      ("format", String format_name);
      ("version", Int t.version);
      ("dims", List (List.map (fun d -> Int d) (Array.to_list t.dims)));
      ("seed", Int t.seed);
      ("meta", Obj (List.map (fun (k, v) -> (k, String v)) t.meta));
    ]

let decl_json d =
  let open Json in
  Obj
    [
      ("decl", Int d.d_var);
      ("name", String d.d_name);
      ("size", Int d.d_size);
      ("owner", Int d.d_owner);
    ]

let op_json o =
  let open Json in
  Obj
    [
      ("p", Int o.o_proc);
      ("op", String (op_code o.o_op));
      ("v", Int o.o_var);
      ("sz", Int o.o_size);
      ("ts", Float o.o_ts);
      ("dur", Float o.o_dur);
      ("hit", Bool o.o_hit);
    ]

let to_string t =
  let b = Buffer.create 4096 in
  let line j =
    Json.to_buffer b j;
    Buffer.add_char b '\n'
  in
  line (header_json t);
  List.iter (fun d -> line (decl_json d)) t.decls;
  List.iter (fun o -> line (op_json o)) t.ops;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field ~what ~key conv j =
  match Option.bind (Json.member key j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing or malformed %S field" what key)

let parse_header line =
  let* j =
    Result.map_error (fun e -> "header: " ^ e) (Json.of_string line)
  in
  let* fmt = field ~what:"header" ~key:"format" Json.to_str j in
  if fmt <> format_name then
    Error (Printf.sprintf "not a DSM trace (format %S, expected %S)" fmt format_name)
  else
    let* version = field ~what:"header" ~key:"version" Json.to_int j in
    if version < 1 || version > current_version then
      Error
        (Printf.sprintf
           "unsupported trace version %d (this build supports 1..%d)" version
           current_version)
    else
      let* dims =
        match Json.member "dims" j with
        | Some (Json.List ds) ->
            let ints = List.filter_map Json.to_int ds in
            if List.length ints = List.length ds && ints <> [] then
              Ok (Array.of_list ints)
            else Error "header: malformed \"dims\""
        | _ -> Error "header: missing \"dims\""
      in
      let* seed = field ~what:"header" ~key:"seed" Json.to_int j in
      let meta =
        match Json.member "meta" j with
        | Some (Json.Obj kvs) ->
            List.filter_map
              (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
              kvs
        | _ -> []
      in
      Ok { version; dims; seed; meta; decls = []; ops = [] }

let parse_body_line ~lineno line =
  let what = Printf.sprintf "line %d" lineno in
  let* j = Result.map_error (fun e -> what ^ ": " ^ e) (Json.of_string line) in
  match Json.member "decl" j with
  | Some _ ->
      let* d_var = field ~what ~key:"decl" Json.to_int j in
      let* d_name = field ~what ~key:"name" Json.to_str j in
      let* d_size = field ~what ~key:"size" Json.to_int j in
      let* d_owner = field ~what ~key:"owner" Json.to_int j in
      Ok (`Decl { d_var; d_name; d_size; d_owner })
  | None ->
      let* o_proc = field ~what ~key:"p" Json.to_int j in
      let* code = field ~what ~key:"op" Json.to_str j in
      let* o_op =
        match op_of_code code with
        | Some op -> Ok op
        | None -> Error (Printf.sprintf "%s: unknown op code %S" what code)
      in
      let* o_var = field ~what ~key:"v" Json.to_int j in
      let* o_size = field ~what ~key:"sz" Json.to_int j in
      let* o_ts = field ~what ~key:"ts" Json.to_float j in
      let* o_dur = field ~what ~key:"dur" Json.to_float j in
      let* o_hit = field ~what ~key:"hit" Json.to_bool j in
      Ok (`Op { o_proc; o_op; o_var; o_size; o_ts; o_dur; o_hit })

let of_string s =
  let lines =
    List.filteri
      (fun _ l -> String.trim l <> "")
      (String.split_on_char '\n' s)
  in
  match lines with
  | [] -> Error "empty trace file"
  | header :: body ->
      let* t = parse_header header in
      let rec go lineno decls ops = function
        | [] -> Ok { t with decls = List.rev decls; ops = List.rev ops }
        | line :: rest -> (
            let* item = parse_body_line ~lineno line in
            match item with
            | `Decl d -> go (lineno + 1) (d :: decls) ops rest
            | `Op o -> go (lineno + 1) decls (o :: ops) rest)
      in
      go 2 [] [] body

let write path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let read_file path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such file" path)
  else
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error e -> Error e

let read path =
  let* s = read_file path in
  Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) (of_string s)

let probe path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such file" path)
  else
    match
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> try Some (input_line ic) with End_of_file -> None)
    with
    | exception Sys_error e -> Error e
    | None -> Error (Printf.sprintf "%s: empty trace file" path)
    | Some header ->
        Result.map
          (fun (_ : t) -> ())
          (Result.map_error
             (fun e -> Printf.sprintf "%s: %s" path e)
             (parse_header header))
