module Network = Diva_simnet.Network
module Machine = Diva_simnet.Machine
module Deco = Diva_mesh.Decomposition
module Prng = Diva_util.Prng
module Stats = Diva_util.Stats

type config = { keys : int; compute : bool }

type Network.payload += Keys of { step : int; data : int array }

type t = {
  net : Network.t;
  cfg : config;
  nwires : int;
  logp : int;
  wire_to_proc : int array;
  proc_to_wire : int array;
  initial : int array array;
  result : int array array;
}

let setup net cfg =
  let nwires = Network.num_nodes net in
  if not (Stats.is_power_of_two nwires) then
    invalid_arg "Bitonic_handopt.setup: number of processors must be a power of two";
  let logp = Stats.ilog2 nwires in
  let wire_to_proc = Deco.snake_order (Network.mesh net) in
  let proc_to_wire = Array.make nwires 0 in
  Array.iteri (fun w p -> proc_to_wire.(p) <- w) wire_to_proc;
  let rng = Prng.create ~seed:5099 in
  let initial =
    Array.init nwires (fun _ -> Array.init cfg.keys (fun _ -> Prng.int rng 1_000_000))
  in
  { net; cfg; nwires; logp; wire_to_proc; proc_to_wire; initial;
    result = Array.make nwires [||] }

let fiber t p =
  let net = t.net in
  let machine = Network.machine net in
  let w = t.proc_to_wire.(p) in
  let m = t.cfg.keys in
  let mine = ref (Array.copy t.initial.(w)) in
  Array.sort compare !mine;
  if t.cfg.compute then begin
    let ops = m * max 1 (Stats.ilog2 (max 2 m)) in
    Network.compute net p (float_of_int ops *. machine.Machine.int_op_time)
  end;
  let step = ref 0 in
  for i = 0 to t.logp - 1 do
    for j = i downto 0 do
      let partner = w lxor (1 lsl j) in
      let ascending = w land (1 lsl (i + 1)) = 0 in
      let keep_lower = if ascending then w < partner else w > partner in
      let s = !step in
      (* Tagged send/recv: the exchange step number keys the selective
         receive, so matching is an O(1) per-tag queue pop instead of a
         predicate scan of the inbox. *)
      Network.send net ~tag:s ~src:p ~dst:t.wire_to_proc.(partner)
        ~size:((m * 4) + 16)
        (Keys { step = s; data = !mine });
      let msg = Network.recv net p ~tag:s () in
      let theirs =
        match msg.Network.m_payload with
        | Keys { data; _ } -> data
        | _ -> assert false
      in
      mine := Bitonic.merge_split ~keep_lower !mine theirs;
      if t.cfg.compute then
        Network.compute net p (float_of_int (2 * m) *. machine.Machine.int_op_time);
      incr step
    done
  done;
  t.result.(w) <- !mine

let verify t =
  let all = Array.concat (Array.to_list t.result) in
  let sorted_input = Array.concat (Array.to_list t.initial) in
  Array.sort compare sorted_input;
  all = sorted_input
