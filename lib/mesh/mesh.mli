(** d-dimensional mesh topology with dimension-order routing.

    The paper's experiments run on 2-D meshes (the Parsytec GCel), but the
    underlying theory covers meshes of arbitrary dimension, so the topology
    layer is d-dimensional; 2-D remains the primary, convenience-supported
    case. Nodes are numbered in row-major order of their coordinates (for
    2-D: [row * cols + col], as on the GCel). Every mesh edge is modelled
    as two directed links, and congestion is accounted per directed link.

    Dimension-order routing adjusts the {e last} dimension first (for 2-D:
    first within the row — column index changes — then within the column),
    matching the wormhole router assumed by the paper's analysis. *)

type t

type node = int
(** Row-major node id. *)

type link = int
(** Directed link id in [0 .. num_links - 1]. *)

val create : rows:int -> cols:int -> t
(** [create ~rows ~cols] builds a 2-D mesh. Both sides must be >= 1. *)

val create_nd : dims:int array -> t
(** [create_nd ~dims] builds a mesh with the given side lengths (at least
    one dimension, every side >= 1). [create ~rows ~cols] is
    [create_nd ~dims:[| rows; cols |]]. *)

val dims : t -> int array
(** Side lengths (a copy). *)

val num_dims : t -> int

val rows : t -> int
(** First dimension of a 2-D mesh; raises [Invalid_argument] otherwise. *)

val cols : t -> int
(** Second dimension of a 2-D mesh; raises [Invalid_argument] otherwise. *)

val num_nodes : t -> int
val num_links : t -> int

val coords : t -> node -> int * int
(** [(row, col)] of a node of a 2-D mesh. *)

val coords_nd : t -> node -> int array
(** Coordinates of a node (a fresh array). *)

val node_at : t -> row:int -> col:int -> node
val node_at_nd : t -> int array -> node

val link_endpoints : t -> link -> node * node
(** Source and destination node of a directed link. *)

val route : t -> src:node -> dst:node -> link list
(** The unique dimension-by-dimension order path from [src] to [dst],
    adjusting the last dimension first. [route ~src ~dst] with [src = dst]
    is []. *)

val iter_route : t -> src:node -> dst:node -> (link -> unit) -> unit
(** Allocation-free traversal of the same path (the simulator's hot path). *)

val route_into : t -> src:node -> dst:node -> link array -> int
(** [route_into t ~src ~dst buf] writes the route's links into [buf]
    (which must hold at least {!max_route_length} entries) and returns the
    hop count. Fully allocation-free: the simulator's send path reads the
    buffer back with a plain [for] loop instead of a closure per send. *)

val max_route_length : t -> int
(** Longest possible route: [sum (side - 1)] over all dimensions. *)

val distance : t -> node -> node -> int
(** Manhattan distance = length of [route]. *)
