type t = {
  t_dims : int array;
  strides : int array;  (* strides.(d) = product of dims.(d+1 ..) *)
  nodes : int;
}

type node = int
type link = int

(* Directed links are numbered [node * 2d + (dim * 2 + sign)] where sign 0
   moves up (+1) and sign 1 moves down (-1) in that dimension. Border
   directions exist as ids but are never produced by [route]. *)

let create_nd ~dims =
  if Array.length dims = 0 then invalid_arg "Mesh.create_nd: no dimensions";
  Array.iter
    (fun s -> if s < 1 then invalid_arg "Mesh.create_nd: sides must be >= 1")
    dims;
  let d = Array.length dims in
  let strides = Array.make d 1 in
  for k = d - 2 downto 0 do
    strides.(k) <- strides.(k + 1) * dims.(k + 1)
  done;
  { t_dims = Array.copy dims; strides; nodes = strides.(0) * dims.(0) }

let create ~rows ~cols = create_nd ~dims:[| rows; cols |]
let dims t = Array.copy t.t_dims
let num_dims t = Array.length t.t_dims

let check_2d t fn =
  if Array.length t.t_dims <> 2 then
    invalid_arg (Printf.sprintf "Mesh.%s: not a 2-D mesh" fn)

let rows t =
  check_2d t "rows";
  t.t_dims.(0)

let cols t =
  check_2d t "cols";
  t.t_dims.(1)

let num_nodes t = t.nodes
let num_links t = 2 * Array.length t.t_dims * t.nodes

let coord t v k = v / t.strides.(k) mod t.t_dims.(k)

let coords t v =
  check_2d t "coords";
  (v / t.strides.(0), v mod t.t_dims.(1))

let coords_nd t v = Array.init (Array.length t.t_dims) (coord t v)

let node_at_nd t c =
  if Array.length c <> Array.length t.t_dims then
    invalid_arg "Mesh.node_at_nd: wrong arity";
  let v = ref 0 in
  Array.iteri
    (fun k x ->
      if x < 0 || x >= t.t_dims.(k) then invalid_arg "Mesh.node_at_nd: out of range";
      v := !v + (x * t.strides.(k)))
    c;
  !v

let node_at t ~row ~col =
  check_2d t "node_at";
  node_at_nd t [| row; col |]

let nd t = 2 * Array.length t.t_dims
let link_id t node dim sign = (node * nd t) + (2 * dim) + sign

let link_endpoints t l =
  let v = l / nd t and rest = l mod nd t in
  let dim = rest / 2 and sign = rest mod 2 in
  let delta = if sign = 0 then t.strides.(dim) else -t.strides.(dim) in
  (v, v + delta)

(* Walk the dimension-order path, last dimension first. *)
let iter_route t ~src ~dst f =
  let cur = ref src in
  for dim = Array.length t.t_dims - 1 downto 0 do
    let have = coord t !cur dim and want = coord t dst dim in
    let sign = if want > have then 0 else 1 in
    let delta = if sign = 0 then t.strides.(dim) else -t.strides.(dim) in
    for _ = 1 to abs (want - have) do
      f (link_id t !cur dim sign);
      cur := !cur + delta
    done
  done

(* Same walk, but into a caller-provided buffer: the simulator's send path
   iterates the links with a plain [for] loop afterwards, so the whole
   route walk allocates nothing (no closure, no refs). *)
let route_into t ~src ~dst buf =
  let n = ref 0 in
  let cur = ref src in
  for dim = Array.length t.t_dims - 1 downto 0 do
    let have = coord t !cur dim and want = coord t dst dim in
    let sign = if want > have then 0 else 1 in
    let delta = if sign = 0 then t.strides.(dim) else -t.strides.(dim) in
    for _ = 1 to abs (want - have) do
      buf.(!n) <- link_id t !cur dim sign;
      incr n;
      cur := !cur + delta
    done
  done;
  !n

let max_route_length t =
  Array.fold_left (fun acc side -> acc + side - 1) 0 t.t_dims

let route t ~src ~dst =
  let acc = ref [] in
  iter_route t ~src ~dst (fun l -> acc := l :: !acc);
  List.rev !acc

let distance t a b =
  let d = ref 0 in
  for k = 0 to Array.length t.t_dims - 1 do
    d := !d + abs (coord t a k - coord t b k)
  done;
  !d
