(** Open-loop service engine.

    Arrivals are generated as simulator events on the {!Diva_simnet.Sim}
    clock, independent of service progress: each arrival enqueues a
    request at its client's entry node and wakes the node's server fiber
    if idle. One server fiber per node drains its queue through the DSM
    (reads and writes under the chosen strategy) and records the
    arrival-to-completion latency of every request. Because the arrival
    stream never waits for the servers, per-node queues grow without
    bound past saturation — the makespan then exceeds the arrival
    horizon, and the goodput (completions {e within} the horizon) falls
    away from the offered load.

    Runs are deterministic: a spec and seed fix the arrival timestamps,
    client-to-node mapping, key draws and the simulation itself, so a
    re-run is bit-identical. *)

type result = {
  measurements : Diva_harness.Runner.measurements;
  slo : Slo.t;
  arrivals : int;  (** requests generated within the horizon *)
  completions : int;  (** requests served in total (eventually all) *)
  in_horizon : int;  (** requests completed within the horizon *)
  offered_per_s : float;  (** arrivals per simulated second of horizon *)
  goodput_per_s : float;  (** in-horizon completions per simulated second *)
  queue_hwm : int array;  (** per-node queue depth high-water marks *)
  makespan_us : float;  (** when the last request completed *)
}

val run :
  ?obs:Diva_harness.Runner.obs ->
  ?on_net:(Diva_simnet.Network.t -> unit) ->
  dims:int array ->
  strategy:Diva_core.Dsm.strategy ->
  Spec.t ->
  result
(** Raises [Invalid_argument] when {!Spec.validate} fails. Composes with
    the full observability stack ([obs]): tracing, metrics, fault
    schedules. *)

val max_queue_hwm : result -> int
val result_fields : result -> (string * Diva_obs.Json.t) list
val render : result -> string
