module Runner = Diva_harness.Runner
module Table = Diva_util.Table
module Json = Diva_obs.Json

type row = {
  sw_rate : float;
  sw_offered : float;
  sw_goodput : float;
  sw_ratio : float;
  sw_p50 : float;
  sw_p99 : float;
  sw_p999 : float option;
  sw_qmax : int;
  sw_makespan : float;
  sw_diverged : bool;
}

type t = {
  sv_strategy : string;
  sv_threshold : float;
  sv_rows : row list;
  sv_knee : float option;
}

let default_threshold = 0.95

let run ?(threshold = default_threshold)
    ?(faults = Diva_faults.Schedule.empty) ?(domains = 1) ~dims ~strategy
    ~rates spec =
  if rates = [] then invalid_arg "Diva_service.Sweep.run: empty rate list";
  let rates = List.sort_uniq compare rates in
  (* Each rate point is an independent open-loop run; Parallel.map keeps
     the ascending-rate row order, so the sweep (knee included) is
     identical for any [domains] value. *)
  let rows =
    Diva_util.Parallel.map ~domains
      (fun rate ->
        let r =
          Engine.run
            ~obs:{ Runner.null_obs with Runner.obs_faults = faults }
            ~dims ~strategy
            { spec with Spec.rate }
        in
        let ratio =
          if r.Engine.offered_per_s <= 0.0 then 1.0
          else r.Engine.goodput_per_s /. r.Engine.offered_per_s
        in
        {
          sw_rate = rate;
          sw_offered = r.Engine.offered_per_s;
          sw_goodput = r.Engine.goodput_per_s;
          sw_ratio = ratio;
          sw_p50 = r.Engine.slo.Slo.p50_us;
          sw_p99 = r.Engine.slo.Slo.p99_us;
          sw_p999 = r.Engine.slo.Slo.p999_us;
          sw_qmax = Engine.max_queue_hwm r;
          sw_makespan = r.Engine.makespan_us;
          sw_diverged = ratio < threshold;
        })
      rates
  in
  (* The knee: the highest stepped load the strategy still sustains —
     i.e. the last ascending point whose achieved/offered ratio holds the
     threshold. Every row past it carries the divergence flag. *)
  let knee =
    List.fold_left
      (fun acc row -> if row.sw_diverged then acc else Some row.sw_rate)
      None rows
  in
  {
    sv_strategy = Diva_core.Dsm.strategy_name strategy;
    sv_threshold = threshold;
    sv_rows = rows;
    sv_knee = knee;
  }

let row_json r =
  let open Json in
  Obj
    [
      ("rate_per_s", Float r.sw_rate);
      ("offered_per_s", Float r.sw_offered);
      ("goodput_per_s", Float r.sw_goodput);
      ("achieved_ratio", Float r.sw_ratio);
      ("lat_p50_us", Float r.sw_p50);
      ("lat_p99_us", Float r.sw_p99);
      ( "lat_p999_us",
        match r.sw_p999 with Some v -> Float v | None -> Null );
      ("queue_hwm", Int r.sw_qmax);
      ("makespan_us", Float r.sw_makespan);
      ("diverged", Bool r.sw_diverged);
    ]

let sweep_json t =
  let open Json in
  Obj
    [
      ("strategy", String t.sv_strategy);
      ("threshold", Float t.sv_threshold);
      ( "knee_rate_per_s",
        match t.sv_knee with Some r -> Float r | None -> Null );
      ("rows", List (List.map row_json t.sv_rows));
    ]

let to_json ~params sweeps =
  let open Json in
  Obj
    [
      ("schema", String "diva-service-sweep/1");
      ("params", Obj params);
      ("sweeps", List (List.map sweep_json sweeps));
    ]

let render t =
  let tbl =
    Table.create
      ~header:
        [ "rate/s"; "offered/s"; "goodput/s"; "ratio"; "p50(us)"; "p99(us)";
          "p999(us)"; "qmax"; "makespan(s)"; "sat" ]
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [
          Printf.sprintf "%.0f" r.sw_rate;
          Printf.sprintf "%.0f" r.sw_offered;
          Printf.sprintf "%.0f" r.sw_goodput;
          Printf.sprintf "%.3f" r.sw_ratio;
          Table.fstr r.sw_p50;
          Table.fstr r.sw_p99;
          (match r.sw_p999 with Some v -> Table.fstr v | None -> "n/a");
          string_of_int r.sw_qmax;
          Table.fstr (r.sw_makespan /. 1e6);
          (if r.sw_diverged then "*" else "");
        ])
    t.sv_rows;
  Printf.sprintf "-- %s --\n%s%s\n" t.sv_strategy (Table.render tbl)
    (match t.sv_knee with
    | Some rate ->
        Printf.sprintf "knee: %.0f req/s (last load with goodput/offered >= \
                        %.2f; * = diverged past it)"
          rate t.sv_threshold
    | None ->
        Printf.sprintf
          "knee: none — even the lowest load diverges (goodput/offered < \
           %.2f everywhere)"
          t.sv_threshold)
