(** Service scenario description: an open-loop key-value service.

    A client population is mapped onto the mesh's entry nodes; requests
    arrive by an {!Arrival} process over a fixed horizon, and key
    popularity follows a phase schedule — each phase draws keys through
    its own {!Diva_workload.Sampler} distribution, optionally rotated
    across the mesh ([ph_shift]) to model a migrating hot spot. *)

type phase = {
  ph_frac : float;  (** share of the horizon (normalized over all phases) *)
  ph_popularity : Diva_workload.Spec.popularity;
  ph_shift : int;
      (** added to drawn key ranks mod [keys]: since a key's home is
          [key mod procs], a shift walks the phase's hot homes across
          the mesh *)
}

type t = {
  keys : int;  (** key space size (one DSM variable per key) *)
  value_size : int;  (** payload bytes per key *)
  clients : int;  (** client population mapped onto entry nodes *)
  rate : float;  (** mean offered load, requests per simulated second *)
  horizon_us : float;  (** arrivals stop after this simulated time *)
  arrival : Arrival.shape;
  read_ratio : float;  (** fraction of requests that are reads *)
  phases : phase list;
  seed : int;
}

val phase :
  ?popularity:Diva_workload.Spec.popularity -> ?shift:int -> float -> phase

val make :
  ?keys:int ->
  ?value_size:int ->
  ?clients:int ->
  ?rate:float ->
  ?horizon_us:float ->
  ?arrival:Arrival.shape ->
  ?read_ratio:float ->
  ?phases:phase list ->
  ?seed:int ->
  unit ->
  t

type scenario = Steady | Flash_crowd | Hot_migrate

val scenario_name : scenario -> string

val scenario_phases :
  scenario -> keys:int -> procs:int -> zipf:float -> phase list
(** Canned phase schedules: steady Zipf, a flash crowd onto a small
    hotset, or a hotset whose homes migrate across the mesh. *)

val validate : t -> (unit, string) result

val boundaries : t -> float array
(** Phase end times in microseconds (fractions normalized over the
    horizon); the last entry is exactly the horizon. *)

val index_at : float array -> float -> int
(** [index_at (boundaries t) time] is the phase governing an arrival at
    [time]; times at or past the horizon fall into the last phase. *)

val to_params : t -> (string * Diva_obs.Json.t) list
