module Prng = Diva_util.Prng

type shape =
  | Poisson
  | Bursty of { mult : float; mean_on_us : float; mean_off_us : float }
  | Diurnal of { trough : float; period_us : float }

let shape_name = function
  | Poisson -> "poisson"
  | Bursty { mult; mean_on_us; mean_off_us } ->
      Printf.sprintf "bursty x%g (on %g us / off %g us)" mult mean_on_us
        mean_off_us
  | Diurnal { trough; period_us } ->
      Printf.sprintf "diurnal %g:1 (period %g us)" (1.0 /. trough) period_us

let validate ~rate shape =
  let pos x = Float.is_finite x && x > 0.0 in
  if not (pos rate) then Error "arrival rate must be > 0 requests/second"
  else
    match shape with
    | Poisson -> Ok ()
    | Bursty { mult; mean_on_us; mean_off_us } ->
        if not (Float.is_finite mult && mult >= 1.0) then
          Error "bursty multiplier must be >= 1"
        else if not (pos mean_on_us && pos mean_off_us) then
          Error "bursty dwell times must be > 0 microseconds"
        else Ok ()
    | Diurnal { trough; period_us } ->
        if not (trough > 0.0 && trough <= 1.0) then
          Error "diurnal trough fraction must be in (0,1]"
        else if not (pos period_us) then
          Error "diurnal period must be > 0 microseconds"
        else Ok ()

type gen = {
  g_shape : shape;
  g_lam : float;  (* mean arrivals per microsecond *)
  g_rng : Prng.t;
  mutable g_t : float;
  (* two-state modulation (bursty only) *)
  mutable g_on : bool;
  mutable g_switch : float;
}

(* Inverse-CDF exponential draw. [Prng.float] is in [0,1), so the argument
   of [log] is in (0,1] and the draw is finite and >= 0. *)
let exp_draw rng lam = -.Float.log (1.0 -. Prng.float rng 1.0) /. lam

let make ~seed ~rate shape =
  (match validate ~rate shape with
  | Ok () -> ()
  | Error e -> invalid_arg ("Diva_service.Arrival.make: " ^ e));
  let rng = Prng.create ~seed in
  let g =
    { g_shape = shape; g_lam = rate /. 1e6; g_rng = rng; g_t = 0.0;
      g_on = false; g_switch = 0.0 }
  in
  (match shape with
  | Bursty { mean_off_us; _ } ->
      (* The stream starts in the quiet state. *)
      g.g_switch <- exp_draw rng (1.0 /. mean_off_us)
  | Poisson | Diurnal _ -> ());
  g

let pi = 4.0 *. Float.atan 1.0

let rec next g =
  match g.g_shape with
  | Poisson ->
      g.g_t <- g.g_t +. exp_draw g.g_rng g.g_lam;
      g.g_t
  | Bursty { mult; mean_on_us; mean_off_us } ->
      (* Exact simulation of the two-state modulated Poisson process: draw
         within the current state's rate; a draw that crosses the next
         state switch is discarded (memorylessness makes that exact) and
         the clock restarts at the switch under the new rate. *)
      let lam = if g.g_on then g.g_lam *. mult else g.g_lam in
      let dt = exp_draw g.g_rng lam in
      if g.g_t +. dt <= g.g_switch then begin
        g.g_t <- g.g_t +. dt;
        g.g_t
      end
      else begin
        g.g_t <- g.g_switch;
        g.g_on <- not g.g_on;
        let mean = if g.g_on then mean_on_us else mean_off_us in
        g.g_switch <- g.g_t +. exp_draw g.g_rng (1.0 /. mean);
        next g
      end
  | Diurnal { trough; period_us } ->
      (* Lewis-Shedler thinning against the peak rate: the configured rate
         is the peak, the trough is [trough] of it, and the intensity
         follows a raised cosine over [period_us]. *)
      g.g_t <- g.g_t +. exp_draw g.g_rng g.g_lam;
      let frac =
        trough
        +. (1.0 -. trough) *. 0.5
           *. (1.0 -. Float.cos (2.0 *. pi *. g.g_t /. period_us))
      in
      if Prng.float g.g_rng 1.0 < frac then g.g_t else next g
