module Wspec = Diva_workload.Spec
module Json = Diva_obs.Json

type phase = {
  ph_frac : float;
  ph_popularity : Wspec.popularity;
  ph_shift : int;
}

type t = {
  keys : int;
  value_size : int;
  clients : int;
  rate : float;
  horizon_us : float;
  arrival : Arrival.shape;
  read_ratio : float;
  phases : phase list;
  seed : int;
}

let phase ?(popularity = Wspec.Zipf 0.9) ?(shift = 0) frac =
  { ph_frac = frac; ph_popularity = popularity; ph_shift = shift }

(* Default rate/horizon are scaled to the simulator's DSM op cost (a few
   simulated milliseconds per request): ~2000 req/s saturates a 4x4 mesh,
   so the defaults load an 8x8 to roughly a quarter of capacity. *)
let make ?(keys = 4096) ?(value_size = 64) ?(clients = 1_000_000)
    ?(rate = 2_000.0) ?(horizon_us = 400_000.0) ?(arrival = Arrival.Poisson)
    ?(read_ratio = 0.95) ?(phases = [ phase 1.0 ]) ?(seed = 1) () =
  { keys; value_size; clients; rate; horizon_us; arrival; read_ratio; phases;
    seed }

type scenario = Steady | Flash_crowd | Hot_migrate

let scenario_name = function
  | Steady -> "steady"
  | Flash_crowd -> "flash-crowd"
  | Hot_migrate -> "hot-migrate"

(* A hotset of a handful of keys: ~1.5% of the key space, but never fewer
   than one key and never the whole space. *)
let hotset keys =
  let frac = Float.max (1.0 /. float_of_int keys) 0.015 in
  Wspec.Hot_cold { hot_fraction = Float.min frac 0.5; hot_weight = 0.9 }

let scenario_phases scenario ~keys ~procs ~zipf =
  let steady = Wspec.Zipf zipf in
  let hot = hotset keys in
  match scenario with
  | Steady -> [ phase ~popularity:steady 1.0 ]
  | Flash_crowd ->
      (* Normal traffic, a flash crowd piles onto the hotset, recovery. *)
      [ phase ~popularity:steady 0.4;
        phase ~popularity:hot 0.3;
        phase ~popularity:steady 0.3 ]
  | Hot_migrate ->
      (* The hotset stays hot but its keys' homes walk across the mesh:
         shifting drawn ranks by a quarter of the processor count per
         phase moves the hot homes since a key's home is [key mod procs]. *)
      List.init 4 (fun i ->
          phase ~popularity:hot ~shift:(i * max 1 (procs / 4)) 0.25)

let validate t =
  let check cond msg rest = if cond then rest () else Error msg in
  check (t.keys >= 1) "keys must be >= 1" @@ fun () ->
  check (t.value_size >= 1) "value size must be >= 1 byte" @@ fun () ->
  check (t.clients >= 1) "client population must be >= 1" @@ fun () ->
  check
    (Float.is_finite t.horizon_us && t.horizon_us > 0.0)
    "horizon must be > 0 microseconds"
  @@ fun () ->
  check
    (t.read_ratio >= 0.0 && t.read_ratio <= 1.0)
    "read ratio must be in [0,1]"
  @@ fun () ->
  check (t.phases <> []) "at least one phase is required" @@ fun () ->
  match Arrival.validate ~rate:t.rate t.arrival with
  | Error e -> Error e
  | Ok () ->
      let rec phases i = function
        | [] -> Ok ()
        | p :: rest ->
            let err msg = Error (Printf.sprintf "phase %d: %s" i msg) in
            if not (Float.is_finite p.ph_frac && p.ph_frac > 0.0) then
              err "fraction must be > 0"
            else if p.ph_shift < 0 then err "shift must be >= 0"
            else begin
              match
                Wspec.validate
                  (Wspec.make ~num_vars:t.keys ~popularity:p.ph_popularity ())
              with
              | Error e -> err e
              | Ok () -> phases (i + 1) rest
            end
      in
      phases 0 t.phases

(* Phase end times over the horizon, fractions normalized; the last
   boundary is forced to the horizon so a float rounding residue cannot
   leave the final instants unattributed. *)
let boundaries t =
  let total = List.fold_left (fun acc p -> acc +. p.ph_frac) 0.0 t.phases in
  let n = List.length t.phases in
  let ends = Array.make n t.horizon_us in
  let acc = ref 0.0 in
  List.iteri
    (fun i p ->
      acc := !acc +. p.ph_frac;
      ends.(i) <- (if i = n - 1 then t.horizon_us
                   else t.horizon_us *. !acc /. total))
    t.phases;
  ends

let index_at bounds time =
  let n = Array.length bounds in
  let rec go i = if i >= n - 1 || time < bounds.(i) then i else go (i + 1) in
  go 0

let to_params t =
  let open Json in
  [
    ("keys", Int t.keys);
    ("value_size", Int t.value_size);
    ("clients", Int t.clients);
    ("rate_per_s", Float t.rate);
    ("horizon_us", Float t.horizon_us);
    ("arrival", String (Arrival.shape_name t.arrival));
    ("read_ratio", Float t.read_ratio);
    ("phases", Int (List.length t.phases));
  ]
