module Stats = Diva_util.Stats

type t = {
  n : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float option;
  max_us : float;
}

let min_p999_samples = 1000

let of_samples samples =
  let n = Array.length samples in
  {
    n;
    mean_us = Stats.mean samples;
    p50_us = Stats.percentile 50.0 samples;
    p99_us = Stats.percentile 99.0 samples;
    (* Exact nearest-rank order statistic, never interpolation — and below
       1000 samples the 99.9th rank is just the maximum wearing a costume,
       so it is withheld entirely rather than reported as if meaningful. *)
    p999_us =
      (if n >= min_p999_samples then Some (Stats.percentile 99.9 samples)
       else None);
    max_us = (if n = 0 then 0.0 else Stats.maxf samples);
  }

let to_fields t =
  let open Diva_obs.Json in
  [
    ("requests", Int t.n);
    ("lat_mean_us", Float t.mean_us);
    ("lat_p50_us", Float t.p50_us);
    ("lat_p99_us", Float t.p99_us);
  ]
  @ (match t.p999_us with
    | Some v -> [ ("lat_p999_us", Float v) ]
    | None -> [])
  @ [ ("lat_max_us", Float t.max_us) ]

let p999_str t =
  match t.p999_us with
  | Some v -> Printf.sprintf "%.1f" v
  | None -> Printf.sprintf "n/a (<%d samples)" min_p999_samples

let render t =
  Printf.sprintf
    "requests              %d\n\
     latency p50/p99/p999  %.1f / %.1f / %s us (max %.1f, mean %.1f)\n"
    t.n t.p50_us t.p99_us (p999_str t) t.max_us t.mean_us
