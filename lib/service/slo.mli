(** SLO-style tail latency summary.

    All percentiles are exact nearest-rank order statistics on a sorted
    copy of the sample set ({!Diva_util.Stats.percentile}) — never
    interpolation. The p999 additionally carries a minimum-sample guard:
    with fewer than {!min_p999_samples} observations the 99.9th rank
    degenerates to the sample maximum, so it is reported as [None]
    instead of a number that looks more precise than it is. *)

type t = {
  n : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float option;  (** [None] when [n < min_p999_samples] *)
  max_us : float;
}

val min_p999_samples : int
(** 1000: the smallest sample set in which the 99.9th-percentile rank is
    distinct from the maximum. *)

val of_samples : float array -> t
(** The input is not modified. An empty sample set yields zeros. *)

val to_fields : t -> (string * Diva_obs.Json.t) list
(** Machine-readable fields; [lat_p999_us] is omitted (not null) when the
    guard withholds it, so downstream gates only ever see numbers. *)

val p999_str : t -> string
val render : t -> string
