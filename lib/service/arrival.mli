(** Open-loop arrival processes for the service scenario.

    A generator produces a deterministic, strictly non-decreasing stream
    of arrival timestamps (simulated microseconds) from a seed, fully
    decoupled from service completion — requests keep arriving at the
    configured rate whether or not the servers keep up, which is what
    lets queues genuinely grow past the saturation knee. *)

type shape =
  | Poisson  (** homogeneous: exponential inter-arrival times *)
  | Bursty of { mult : float; mean_on_us : float; mean_off_us : float }
      (** two-state modulated Poisson: the rate is the configured base in
          the quiet state and [mult] times it in the burst state, with
          exponentially distributed dwell times of the given means *)
  | Diurnal of { trough : float; period_us : float }
      (** raised-cosine intensity: the configured rate is the peak, the
          trough is [trough] of it, one full cycle every [period_us] *)

val shape_name : shape -> string
val validate : rate:float -> shape -> (unit, string) result

type gen

val make : seed:int -> rate:float -> shape -> gen
(** [rate] is in requests per simulated second.
    Raises [Invalid_argument] when {!validate} fails. *)

val next : gen -> float
(** The next arrival timestamp. Consecutive calls are non-decreasing; the
    stream is unbounded (the caller stops at its horizon). *)
