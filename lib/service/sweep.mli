(** Saturation-sweep driver: step the offered load, find the knee.

    Each stepped rate re-runs the {!Engine} with the same spec (same
    seed, horizon and phase schedule) at that offered load. A point is
    marked {e diverged} when its achieved/offered throughput ratio falls
    below the threshold — past saturation the open-loop arrivals outrun
    the servers, queues grow and goodput detaches from offered load. The
    {e knee} is the highest stepped load the strategy still sustains. *)

type row = {
  sw_rate : float;  (** configured rate, requests per simulated second *)
  sw_offered : float;  (** measured arrivals per second *)
  sw_goodput : float;  (** in-horizon completions per second *)
  sw_ratio : float;  (** goodput / offered *)
  sw_p50 : float;
  sw_p99 : float;
  sw_p999 : float option;  (** guarded: [None] under 1000 samples *)
  sw_qmax : int;  (** worst per-node queue depth high-water mark *)
  sw_makespan : float;
  sw_diverged : bool;  (** ratio below the threshold *)
}

type t = {
  sv_strategy : string;
  sv_threshold : float;
  sv_rows : row list;  (** ascending by rate *)
  sv_knee : float option;
      (** highest non-diverged rate; [None] when every point diverges *)
}

val default_threshold : float
(** 0.95 *)

val run :
  ?threshold:float ->
  ?faults:Diva_faults.Schedule.t ->
  ?domains:int ->
  dims:int array ->
  strategy:Diva_core.Dsm.strategy ->
  rates:float list ->
  Spec.t ->
  t
(** Sorts and dedups [rates]; the spec's own [rate] field is overridden
    point by point. With [domains > 1] the independent rate points run on
    that many OCaml domains; the result is identical for every [domains]
    value. Raises [Invalid_argument] on an empty rate list. *)

val to_json : params:(string * Diva_obs.Json.t) list -> t list -> Diva_obs.Json.t
(** The machine-readable sweep table (schema [diva-service-sweep/1]),
    one entry per strategy. *)

val render : t -> string
