module Network = Diva_simnet.Network
module Sim = Diva_simnet.Sim
module Dsm = Diva_core.Dsm
module Runner = Diva_harness.Runner
module Prng = Diva_util.Prng
module Wspec = Diva_workload.Spec
module Sampler = Diva_workload.Sampler

type result = {
  measurements : Runner.measurements;
  slo : Slo.t;
  arrivals : int;
  completions : int;
  in_horizon : int;
  offered_per_s : float;
  goodput_per_s : float;
  queue_hwm : int array;
  makespan_us : float;
}

type request = {
  rq_key : int;
  rq_read : bool;
  rq_seq : int;  (* global arrival sequence number; doubles as write value *)
  rq_arrival : float;
}

(* Growing sample buffer (cooperative scheduling: no concurrency, just
   unknown completion interleaving). *)
type samples = { mutable buf : float array; mutable n : int }

let add_sample s x =
  if s.n = Array.length s.buf then begin
    let buf = Array.make (max 1024 (2 * Array.length s.buf)) 0.0 in
    Array.blit s.buf 0 buf 0 s.n;
    s.buf <- buf
  end;
  s.buf.(s.n) <- x;
  s.n <- s.n + 1

let run ?(obs = Runner.null_obs) ?on_net ~dims ~strategy spec =
  (match Spec.validate spec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Diva_service.Engine.run: " ^ e));
  let net = Network.create_nd ~seed:Spec.(spec.seed) ~dims () in
  Runner.install_obs net obs;
  let dsm = Dsm.create net ~strategy () in
  let procs = Network.num_nodes net in
  let sim = Network.sim net in
  let mesh = Network.mesh net in
  let keys = Spec.(spec.keys) in
  let vars =
    Array.init keys (fun k ->
        Dsm.create_var dsm
          ~name:(Printf.sprintf "k%d" k)
          ~owner:(k mod procs) ~size:Spec.(spec.value_size) 0)
  in
  (* One sampler per phase: the phase schedule over key popularity reuses
     the workload sampler wholesale. *)
  let samplers =
    Array.of_list
      (List.map
         (fun (ph : Spec.phase) ->
           Sampler.create mesh
             (Wspec.make ~num_vars:keys ~var_size:Spec.(spec.value_size)
                ~popularity:ph.Spec.ph_popularity ~locality:Wspec.Global
                ~seed:Spec.(spec.seed) ()))
         Spec.(spec.phases))
  in
  let shifts =
    Array.of_list (List.map (fun p -> p.Spec.ph_shift) Spec.(spec.phases))
  in
  let bounds = Spec.boundaries spec in
  let horizon = Spec.(spec.horizon_us) in
  (* Independent deterministic streams: one for arrival timing, one for
     request content, so changing the arrival shape never perturbs which
     keys are requested at a given draw index and vice versa. *)
  let arr =
    Arrival.make
      ~seed:(Int64.to_int (Prng.hash2 (Int64.of_int Spec.(spec.seed)) 1))
      ~rate:Spec.(spec.rate) Spec.(spec.arrival)
  in
  let req_rng =
    Prng.create
      ~seed:(Int64.to_int (Prng.hash2 (Int64.of_int Spec.(spec.seed)) 2))
  in
  let queues = Array.init procs (fun _ -> Queue.create ()) in
  let waiters = Array.make procs None in
  let hwm = Array.make procs 0 in
  let closed = ref false in
  let arrivals = ref 0 in
  let completions = ref 0 in
  let in_horizon = ref 0 in
  let samples = { buf = Array.make 1024 0.0; n = 0 } in
  let wake p =
    match waiters.(p) with
    | Some w ->
        waiters.(p) <- None;
        w ()
    | None -> ()
  in
  let close () =
    closed := true;
    for p = 0 to procs - 1 do
      wake p
    done
  in
  (* The arrival chain: each event records one request, wakes the entry
     node's server if it is idle, and schedules the next arrival — fully
     decoupled from service completion, so queues can genuinely grow. *)
  let rec arrive t_arr () =
    incr arrivals;
    let c = Prng.int req_rng Spec.(spec.clients) in
    let node = Prng.hash2_int (Int64.of_int Spec.(spec.seed)) c ~bound:procs in
    let ph = Spec.index_at bounds t_arr in
    let k =
      (Sampler.draw samplers.(ph) ~proc:node req_rng + shifts.(ph)) mod keys
    in
    let is_read = Prng.float req_rng 1.0 < Spec.(spec.read_ratio) in
    Queue.push
      { rq_key = k; rq_read = is_read; rq_seq = !arrivals; rq_arrival = t_arr }
      queues.(node);
    let depth = Queue.length queues.(node) in
    if depth > hwm.(node) then hwm.(node) <- depth;
    wake node;
    schedule_next ()
  and schedule_next () =
    let t = Arrival.next arr in
    if t > horizon then close () else Sim.schedule sim t (arrive t)
  in
  (* One server fiber per node: drain the queue, block when idle, exit
     when the arrival stream has closed and the queue is dry. *)
  for p = 0 to procs - 1 do
    Network.spawn net p (fun () ->
        let rec serve () =
          if not (Queue.is_empty queues.(p)) then begin
            let rq = Queue.pop queues.(p) in
            (if rq.rq_read then ignore (Dsm.read dsm p vars.(rq.rq_key))
             else Dsm.write dsm p vars.(rq.rq_key) rq.rq_seq);
            let t_done = Network.now net in
            incr completions;
            if t_done <= horizon then incr in_horizon;
            add_sample samples (t_done -. rq.rq_arrival);
            serve ()
          end
          else if !closed then ()
          else begin
            Network.suspend (fun resume -> waiters.(p) <- Some resume);
            serve ()
          end
        in
        serve ())
  done;
  (let t0 = Arrival.next arr in
   if t0 > horizon then closed := true else Sim.schedule sim t0 (arrive t0));
  Runner.finish ?on_net ~obs net;
  let m = Runner.collect net (Some dsm) in
  let horizon_s = horizon /. 1e6 in
  {
    measurements = m;
    slo = Slo.of_samples (Array.sub samples.buf 0 samples.n);
    arrivals = !arrivals;
    completions = !completions;
    in_horizon = !in_horizon;
    offered_per_s = float_of_int !arrivals /. horizon_s;
    goodput_per_s = float_of_int !in_horizon /. horizon_s;
    queue_hwm = hwm;
    makespan_us = m.Runner.time;
  }

let max_queue_hwm r = Array.fold_left max 0 r.queue_hwm

let result_fields r =
  let open Diva_obs.Json in
  [
    ("arrivals", Int r.arrivals);
    ("completions", Int r.completions);
    ("completed_in_horizon", Int r.in_horizon);
    ("offered_per_s", Float r.offered_per_s);
    ("goodput_per_s", Float r.goodput_per_s);
    ("queue_hwm", Int (max_queue_hwm r));
    ("makespan_us", Float r.makespan_us);
  ]
  @ Slo.to_fields r.slo

let render r =
  Printf.sprintf
    "%soffered / goodput     %.0f / %.0f req/s (%d arrivals, %d served in \
     horizon)\n\
     queue high-water      %d requests\n\
     makespan              %.3f s\n"
    (Slo.render r.slo) r.offered_per_s r.goodput_per_s r.arrivals r.in_horizon
    (max_queue_hwm r)
    (r.makespan_us /. 1e6)
