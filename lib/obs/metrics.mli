(** Metrics registry: named counters and gauges sampled into a time series.

    A registry holds an ordered set of series. Counters are incremented by
    instrumentation code; gauges are callbacks evaluated at sampling time
    (e.g. "links busy right now"). {!sample} appends one row — the current
    value of every series — stamped with a simulation time. The periodic
    driver lives in {!Diva_simnet.Network.attach_metrics}, which samples on
    simulated-clock boundaries; sampling reads state only, so a metered run
    is bit-identical to an unmetered one. *)

type t

val create : unit -> t

type counter

val counter : t -> string -> counter
(** Register (or look up) a counter column. *)

val incr : counter -> ?by:float -> unit -> unit

val gauge : t -> string -> (unit -> float) -> unit
(** Register a gauge column; the callback runs at each {!sample}. *)

val sample : t -> ts:float -> unit
(** Append one row at simulated time [ts]. Rows with a timestamp equal to
    the previous row's are skipped (the final end-of-run sample may land on
    a periodic boundary). *)

val columns : t -> string list
(** Column names in registration order. *)

val rows : t -> (float * float array) list
(** Sampled rows, oldest first; each array is in {!columns} order. *)

val num_rows : t -> int

val to_csv : t -> string
(** ["ts_us,<col>,...\n"] header plus one line per row. *)

val to_json : t -> Json.t
(** [{ "columns": [...], "rows": [[ts, v, ...], ...] }]. *)

val to_prometheus :
  ?prefix:string -> ?labels:(string * string) list -> t -> string
(** Prometheus text exposition of the {e final} sample: one
    [# TYPE]-annotated line pair per series (counters as [counter], gauges
    as [gauge]), names prefixed with [prefix] (default ["diva_"]) and
    sanitized to the Prometheus charset, plus a [<prefix>sample_ts_us]
    gauge carrying the sample's simulated timestamp. Empty string when
    nothing was sampled.

    Series names containing ['-'] fold to ['_']; when two series collide
    after the fold, later ones get a deterministic numeric suffix so the
    exposition never carries a duplicate metric name. [labels] are
    rendered on every sample line ([name{k="v"} value]) with label values
    escaped per the exposition format (backslash, double quote, newline). *)
