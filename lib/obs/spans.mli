(** Causal span trees folded from a flat trace-event stream.

    {!build} groups the per-message events of one run ({!Trace.Msg_send},
    {!Trace.Link_xfer}, {!Trace.Msg_deliver}, retries and losses) into one
    {!msg} record per causal message id, and the miss-path
    {!Trace.Dsm_access} events into one {!txn} record per causal
    transaction. The [parent] links between messages (the id of the message
    whose handler issued the send) form a forest of span trees rooted at
    fiber- or timer-issued messages; {!chain} extracts the causal chain
    that completed a given transaction — its critical path through the
    protocol — which {!Analysis} turns into a cost decomposition. *)

type msg = {
  id : int;  (** unique causal id (monotone in issue order) *)
  parent : int;  (** issuing message's id; [-1] from a fiber or timer *)
  txn : int;  (** transaction served; [-1] outside any transaction *)
  src : int;
  dst : int;
  size : int;
  local : bool;  (** same-processor hop: never entered the network *)
  level : int;  (** access-tree depth of the destination; [-1] if none *)
  sent : float;  (** issue time *)
  inject : float;  (** network injection (local: handler time) *)
  delivered : float option;  (** tail arrival; [None] if lost for good *)
  handled : float option;  (** destination handler run time *)
  xfers : (int * float * float) list;
      (** per-link occupancy [(link, start, finish)] in route order; empty
          for local messages *)
  retries : int;  (** reliable-envelope retransmissions *)
  losses : int;  (** transmissions lost to injected faults *)
}

type txn = {
  t_id : int;
  t_node : int;  (** issuing processor *)
  t_op : Trace.dsm_op;
  t_var : int;  (** variable id; [-1] for barriers/reduces *)
  t_var_name : string;
  t_size : int;  (** payload size in bytes *)
  t_start : float;
  t_dur : float;  (** fiber blocking latency *)
  t_completed_by : int;  (** id of the message that unblocked the fiber *)
}

(** Snapshot of a side-branch message (a transaction message off the
    completing chain, e.g. invalidation fan-out) as of the moment the
    transaction's completion event passed in the stream: deliveries and
    link crossings emitted later are absent. The at-completion cut — not
    the final record — is canonical, so batch attribution stays
    bit-identical to the bounded-memory {!Streaming} analyzer, which has
    retired the transaction by then. *)
type side = {
  s_id : int;
  s_local : bool;
  s_sent : float;  (** issue time *)
  s_inject : float;  (** network injection (local: handler time) *)
  s_handled : float option;  (** [None] if still in flight at completion *)
  s_xfer_us : float;  (** summed link occupancy emitted by completion *)
}

type t

val build : Trace.event list -> t
(** Single pass over the event stream. Under faults, retransmission
    duplicates keep the first delivery; ack traffic ([msg = -1]) is
    dropped. *)

val msg : t -> int -> msg option
val msgs : t -> msg list
(** All messages, ascending id. *)

val num_msgs : t -> int

val txns : t -> txn list
(** All transactions, ascending id. *)

val txns_completed : t -> txn list
(** All transactions in stream-emission order. [Dsm_access] events are
    emitted at completion time, so this is completion order — the order a
    streaming analyzer retires them in, and the canonical fold order for
    float-sum reproducibility. *)

val sides : t -> txn -> side list
(** The transaction's side-branch snapshots (messages sent before its
    completion event and not on the completing chain), ascending id. *)

val msgs_of_txn : t -> int -> msg list
(** Every message tagged with the transaction (the full span tree,
    including side branches like invalidation fan-out), ascending id. *)

val chain : t -> txn -> msg list
(** The transaction's completing causal chain, oldest first: starts at the
    message whose handler unblocked the fiber and follows [parent] links
    while they stay inside the transaction. Empty for transactions
    completed synchronously. Handlers are instantaneous in simulated time,
    so consecutive chain entries satisfy [child.sent = parent.handled]. *)
