type subsystem = Host | Event_loop | Dispatch | Protocol | Strategy | Analysis

let[@inline] sub_id = function
  | Host -> 0
  | Event_loop -> 1
  | Dispatch -> 2
  | Protocol -> 3
  | Strategy -> 4
  | Analysis -> 5

let num_subs = 6

let sub_of_id = function
  | 0 -> Host
  | 1 -> Event_loop
  | 2 -> Dispatch
  | 3 -> Protocol
  | 4 -> Strategy
  | _ -> Analysis

let subsystem_name = function
  | Host -> "host"
  | Event_loop -> "event_loop"
  | Dispatch -> "dispatch"
  | Protocol -> "protocol"
  | Strategy -> "strategy"
  | Analysis -> "analysis"

(* One series row: host counters at a simulated-clock boundary. [r_rate]
   is events/sec over the window ending here (wall-clock denominator). *)
type row = {
  r_sim_us : float;
  r_wall_s : float;
  r_events : int;
  r_rate : float;
  r_minor_words : float;
  r_heap_words : int;
  r_major_cols : int;
}

type t = {
  window_us : float;
  sample_period_s : float;
  t0 : float;
  gc0 : Gc.stat;
  (* hot-path attribution: the signal handler reads [cur] and bumps
     [samples]; both are plain ints so the handler never allocates. *)
  mutable cur : int;
  samples : int array;
  mutable armed : bool;
  mutable prev_sigprof : Sys.signal_behavior option;
  (* window series (newest first) *)
  mutable rev_rows : row list;
  mutable nrows : int;
  mutable last_wall : float;
  mutable last_events : int;
  mutable heap_hw_words : int;
  (* [Gc.quick_stat] costs ~1us (it visits every domain), far too much
     for every window row; heap size and major-collection counts move
     slowly, so they are refreshed every 16th row and carried forward in
     between. [Gc.minor_words] is a 3ns primitive and stays per-row. *)
  mutable last_heap_words : int;
  mutable last_major_cols : int;
  (* region timers *)
  mutable regions : (string * float ref) list;
  (* ticker *)
  mutable ticker : (string -> unit) option;
  mutable ticker_last : float;
  (* attachments / finals *)
  mutable par : Json.t option;
  mutable final_wall_s : float option;
}

let create ?(window_us = 1000.0) ?(sample_period_s = 0.01) () =
  if not (Float.is_finite window_us) || window_us <= 0.0 then
    invalid_arg "Prof.create: window_us must be positive";
  if not (Float.is_finite sample_period_s) || sample_period_s <= 0.0 then
    invalid_arg "Prof.create: sample_period_s must be positive";
  let now = Unix.gettimeofday () in
  {
    window_us;
    sample_period_s;
    t0 = now;
    gc0 = Gc.quick_stat ();
    cur = sub_id Host;
    samples = Array.make num_subs 0;
    armed = false;
    prev_sigprof = None;
    rev_rows = [];
    nrows = 0;
    last_wall = now;
    last_events = 0;
    heap_hw_words = 0;
    last_heap_words = 0;
    last_major_cols = 0;
    regions = [];
    ticker = None;
    ticker_last = now;
    par = None;
    final_wall_s = None;
  }

let window_us t = t.window_us

(* Called with a constant constructor on the per-event path; inlining
   folds the id match away, leaving a single word store. *)
let[@inline] set_sub t s = t.cur <- sub_id s
let cur_sub t = sub_of_id t.cur

let with_sub t s f =
  let saved = t.cur in
  t.cur <- sub_id s;
  let r = f () in
  t.cur <- saved;
  r

(* ------------------------------------------------------------------ *)
(* Statistical subsystem sampler                                        *)
(* ------------------------------------------------------------------ *)

(* ITIMER_PROF is process-wide, so at most one profiler owns it. The
   handler must be async-signal-safe in the OCaml sense: no allocation, no
   I/O — one array load, one add, one store. *)
let active : t option ref = ref None

let arm t =
  if !active = None && not t.armed then begin
    active := Some t;
    t.armed <- true;
    t.prev_sigprof <-
      Some
        (Sys.signal Sys.sigprof
           (Sys.Signal_handle
              (fun _ ->
                match !active with
                | Some p -> p.samples.(p.cur) <- p.samples.(p.cur) + 1
                | None -> ())));
    ignore
      (Unix.setitimer Unix.ITIMER_PROF
         { Unix.it_interval = t.sample_period_s; it_value = t.sample_period_s }
        : Unix.interval_timer_status)
  end

let disarm t =
  if t.armed then begin
    ignore
      (Unix.setitimer Unix.ITIMER_PROF
         { Unix.it_interval = 0.0; it_value = 0.0 }
        : Unix.interval_timer_status);
    (match t.prev_sigprof with
    | Some b -> ignore (Sys.signal Sys.sigprof b : Sys.signal_behavior)
    | None -> ());
    t.prev_sigprof <- None;
    t.armed <- false;
    active := None
  end

(* ------------------------------------------------------------------ *)
(* Window series + ticker                                               *)
(* ------------------------------------------------------------------ *)

let si v =
  if Float.abs v >= 1e9 then Printf.sprintf "%.1fG" (v /. 1e9)
  else if Float.abs v >= 1e6 then Printf.sprintf "%.1fM" (v /. 1e6)
  else if Float.abs v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let ticker_line ~sim_us ~events ~rate ~heap_words =
  Printf.sprintf "sim %8.1f ms | %7s events | %7s ev/s | heap %5.1f MB"
    (sim_us /. 1e3)
    (si (float_of_int events))
    (si rate)
    (float_of_int heap_words *. 8.0 /. 1e6)

let sample t ~sim_us ~events =
  let now = Unix.gettimeofday () in
  if t.nrows land 15 = 0 then begin
    let g = Gc.quick_stat () in
    t.last_heap_words <- g.Gc.heap_words;
    t.last_major_cols <- g.Gc.major_collections - t.gc0.Gc.major_collections;
    if g.Gc.heap_words > t.heap_hw_words then
      t.heap_hw_words <- g.Gc.heap_words
  end;
  let dt = now -. t.last_wall in
  let rate =
    if dt > 0.0 then float_of_int (events - t.last_events) /. dt else 0.0
  in
  t.rev_rows <-
    {
      r_sim_us = sim_us;
      r_wall_s = now -. t.t0;
      r_events = events;
      r_rate = rate;
      r_minor_words = Gc.minor_words () -. t.gc0.Gc.minor_words;
      r_heap_words = t.last_heap_words;
      r_major_cols = t.last_major_cols;
    }
    :: t.rev_rows;
  t.nrows <- t.nrows + 1;
  t.last_wall <- now;
  t.last_events <- events;
  match t.ticker with
  | Some f when now -. t.ticker_last >= 0.2 ->
      t.ticker_last <- now;
      f (ticker_line ~sim_us ~events ~rate ~heap_words:t.last_heap_words)
  | _ -> ()

let set_ticker t f = t.ticker <- Some f
let num_samples t = t.nrows

(* ------------------------------------------------------------------ *)
(* Region timers                                                        *)
(* ------------------------------------------------------------------ *)

let region t name f =
  let cell =
    match List.assoc_opt name t.regions with
    | Some c -> c
    | None ->
        let c = ref 0.0 in
        t.regions <- t.regions @ [ (name, c) ];
        c
  in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> cell := !cell +. (Unix.gettimeofday () -. t0))
    f

let set_par t j = t.par <- Some j

let latest_row t = match t.rev_rows with r :: _ -> Some r | [] -> None

let register_gauges t m =
  Metrics.gauge m "host-events-per-sec" (fun () ->
      match latest_row t with Some r -> r.r_rate | None -> 0.0);
  Metrics.gauge m "host-heap-words" (fun () ->
      float_of_int (Gc.quick_stat ()).Gc.heap_words);
  Metrics.gauge m "host-minor-words" (fun () ->
      (Gc.quick_stat ()).Gc.minor_words -. t.gc0.Gc.minor_words)

(* ------------------------------------------------------------------ *)
(* prof.json                                                            *)
(* ------------------------------------------------------------------ *)

let schema = "diva-prof/1"

let series_columns =
  [
    "sim_us"; "wall_s"; "events"; "events_per_sec"; "minor_words";
    "heap_words"; "major_collections";
  ]

let to_json t =
  disarm t;
  let wall =
    match t.final_wall_s with
    | Some w -> w
    | None ->
        let w = Unix.gettimeofday () -. t.t0 in
        t.final_wall_s <- Some w;
        w
  in
  let g = Gc.quick_stat () in
  if g.Gc.heap_words > t.heap_hw_words then t.heap_hw_words <- g.Gc.heap_words;
  let events, rate =
    match latest_row t with
    | Some r -> (r.r_events, float_of_int r.r_events /. Float.max wall 1e-9)
    | None -> (t.last_events, 0.0)
  in
  let open Json in
  Obj
    ([
       ("schema", String schema);
       ("wall_s", Float wall);
       ("events", Int events);
       ("events_per_sec", Float rate);
       ("sample_period_s", Float t.sample_period_s);
       ("window_us", Float t.window_us);
       ( "subsystems",
         Obj
           (List.init num_subs (fun i ->
                (subsystem_name (sub_of_id i), Int t.samples.(i)))) );
       ( "regions",
         Obj (List.map (fun (n, c) -> (n, Float !c)) t.regions) );
       ( "gc",
         Obj
           [
             ("minor_words", Float (g.Gc.minor_words -. t.gc0.Gc.minor_words));
             ( "promoted_words",
               Float (g.Gc.promoted_words -. t.gc0.Gc.promoted_words) );
             ("major_words", Float (g.Gc.major_words -. t.gc0.Gc.major_words));
             ( "minor_collections",
               Int (g.Gc.minor_collections - t.gc0.Gc.minor_collections) );
             ( "major_collections",
               Int (g.Gc.major_collections - t.gc0.Gc.major_collections) );
             ("heap_words", Int g.Gc.heap_words);
             ("top_heap_words", Int g.Gc.top_heap_words);
           ] );
       ("heap_high_water_words", Int t.heap_hw_words);
       ( "series",
         Obj
           [
             ("columns", List (List.map (fun c -> String c) series_columns));
             ( "rows",
               List
                 (List.rev_map
                    (fun r ->
                      List
                        [
                          Float r.r_sim_us; Float r.r_wall_s; Int r.r_events;
                          Float r.r_rate; Float r.r_minor_words;
                          Int r.r_heap_words; Int r.r_major_cols;
                        ])
                    t.rev_rows) );
           ] );
     ]
    @ match t.par with Some p -> [ ("par", p) ] | None -> [])

(* Series rows for the Perfetto counter tracks; computed from the JSON so
   {!Chrome_trace} can also replot a prof.json read back from disk. *)
let series_rows j =
  match Option.bind (Json.member "series" j) (Json.member "rows") with
  | Some (Json.List rows) ->
      List.filter_map
        (fun r ->
          match r with
          | Json.List (sim :: _wall :: _events :: rate :: _minor :: heap :: _)
            -> (
              match
                (Json.to_float sim, Json.to_float rate, Json.to_float heap)
              with
              | Some s, Some ra, Some h -> Some (s, ra, h)
              | _ -> None)
          | _ -> None)
        rows
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Report rendering (divasim profile)                                   *)
(* ------------------------------------------------------------------ *)

let get_f j k = Option.bind (Json.member k j) Json.to_float
let get_i j k = Option.bind (Json.member k j) Json.to_int

let report j =
  match Option.bind (Json.member "schema" j) Json.to_str with
  | Some s when s = schema ->
      let b = Buffer.create 1024 in
      let wall = Option.value ~default:0.0 (get_f j "wall_s") in
      let events = Option.value ~default:0 (get_i j "events") in
      let rate = Option.value ~default:0.0 (get_f j "events_per_sec") in
      Printf.bprintf b "profile (%s)\n" schema;
      Printf.bprintf b "  wall time        %.3f s\n" wall;
      Printf.bprintf b "  events           %d (%s events/sec)\n" events
        (si rate);
      (match Json.member "heap_high_water_words" j with
      | Some hw -> (
          match Json.to_int hw with
          | Some w ->
              Printf.bprintf b "  heap high-water  %.1f MB\n"
                (float_of_int w *. 8.0 /. 1e6)
          | None -> ())
      | None -> ());
      (match Json.member "subsystems" j with
      | Some (Json.Obj subs) ->
          let total =
            List.fold_left
              (fun acc (_, v) ->
                acc + Option.value ~default:0 (Json.to_int v))
              0 subs
          in
          Printf.bprintf b "  cpu samples      %d (period %gs)\n" total
            (Option.value ~default:0.0 (get_f j "sample_period_s"));
          if total > 0 then
            List.iter
              (fun (n, v) ->
                let c = Option.value ~default:0 (Json.to_int v) in
                if c > 0 then
                  Printf.bprintf b "    %-12s %5.1f%%  (%d)\n" n
                    (100.0 *. float_of_int c /. float_of_int total)
                    c)
              subs
      | _ -> ());
      (match Json.member "regions" j with
      | Some (Json.Obj regions) when regions <> [] ->
          Printf.bprintf b "  regions\n";
          List.iter
            (fun (n, v) ->
              match Json.to_float v with
              | Some s -> Printf.bprintf b "    %-14s %8.3f s\n" n s
              | None -> ())
            regions
      | _ -> ());
      (match Json.member "gc" j with
      | Some gc ->
          Printf.bprintf b
            "  gc               %s minor words, %d minor / %d major \
             collections\n"
            (si (Option.value ~default:0.0 (get_f gc "minor_words")))
            (Option.value ~default:0 (get_i gc "minor_collections"))
            (Option.value ~default:0 (get_i gc "major_collections"))
      | None -> ());
      (match Json.member "par" j with
      | Some (Json.Obj _ as par) -> (
          Printf.bprintf b "  parallel engine\n";
          (match (get_i par "domains", get_i par "windows") with
          | Some d, Some w ->
              Printf.bprintf b "    %d domain(s), %d window(s)\n" d w
          | _ -> ());
          (match (get_f par "stall_frac", get_f par "shard_imbalance") with
          | Some s, Some im ->
              Printf.bprintf b
                "    stall fraction %.1f%%, shard imbalance %.2fx\n"
                (100.0 *. s) im
          | _ -> ());
          match Json.member "domains_detail" par with
          | Some (Json.List ds) ->
              List.iteri
                (fun i d ->
                  match
                    (get_f d "busy_s", get_f d "barrier_s", get_i d "events")
                  with
                  | Some bu, Some ba, Some ev ->
                      Printf.bprintf b
                        "    domain %d: %.3fs busy, %.3fs barrier, %d events\n"
                        i bu ba ev
                  | _ -> ())
                ds
          | _ -> ())
      | _ -> ());
      Printf.bprintf b "  series           %d window sample(s)\n"
        (List.length (series_rows j));
      Ok (Buffer.contents b)
  | Some s -> Error (Printf.sprintf "not a prof document (schema %S)" s)
  | None -> Error "not a prof document (no \"schema\" field)"
