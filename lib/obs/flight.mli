(** Crash flight recorder: a bounded ring of the most recent trace events
    plus periodic health snapshots, dumped to a JSON file when something
    goes wrong — an uncaught exception, a DSM watchdog trip, a chaos-oracle
    violation. Every crash leaves a post-mortem artifact.

    Recording is observe-only: the ring buffers events the simulator
    already emits (arming the recorder on an untraced run turns event
    {e construction} on, which is proven not to change the simulation —
    the same property the tracer relies on), snapshots read state, and
    dumping writes a file. A run with the recorder armed is byte-identical
    to one without.

    The dump is first-trigger-wins: after a dump the recorder keeps
    recording but later triggers are ignored, so the artifact describes
    the {e first} failure, not the last symptom. *)

type t

(** One periodic health snapshot (see
    [Diva_simnet.Network.attach_flight]). *)
type snapshot = {
  sn_wall : float;  (** host Unix time of the snapshot *)
  sn_sim_us : float;
  sn_events : int;  (** events executed so far *)
  sn_pending : int;  (** events still queued *)
  sn_fibers : int;  (** live (blocked or runnable) fibers *)
  sn_inflight : int;  (** unacknowledged reliable envelopes *)
  sn_reissues : int;  (** DSM watchdog trips so far *)
}

val create :
  ?events:int ->
  ?snapshots:int ->
  ?dump_on_watchdog:bool ->
  path:string ->
  unit ->
  t
(** A recorder that dumps to [path]. [events] (default 512) and
    [snapshots] (default 64) bound the two rings. [dump_on_watchdog]
    (default true) controls whether the first DSM watchdog trip triggers a
    dump — chaos campaigns disable it (watchdog trips are routine under
    injected faults there; the oracle is the failure signal). *)

val path : t -> string
val dump_on_watchdog : t -> bool

val record : t -> Trace.event -> unit
(** Append one event to the ring, evicting the oldest past capacity. *)

val wrap : t -> Trace.sink -> Trace.sink
(** A sink that records into the ring and behaves exactly like the
    argument otherwise (same buffering, same downstream callback). Wrapping
    {!Trace.null} yields a ring-only sink. *)

val snapshot : t -> snapshot -> unit

val event_count : t -> int
(** Total events recorded (not capped at the ring size). *)

val events : t -> Trace.event list
(** Ring contents, oldest first. *)

val snapshots : t -> snapshot list

val dump : t -> reason:string -> unit
(** Write the ["diva-flight/1"] dump to {!path}. Only the first dump
    writes; later calls are ignored ({!dumped} tells). Never raises — a
    recorder that cannot write its file warns on stderr rather than
    masking the failure that triggered it. *)

val dumped : t -> bool

val dump_on_error : t -> label:string -> ('a, string) result -> unit
(** [dump_on_error t ~label (Error e)] dumps with reason ["label: e"];
    [Ok _] is a no-op. The chaos driver feeds oracle verdicts through
    this. *)

val to_json : t -> reason:string -> Json.t
(** The dump document without writing it (tests). *)

val report : Json.t -> (string, string) result
(** Render a parsed ["diva-flight/1"] dump as a human-readable report
    (the [divasim profile] command accepts both artifact kinds). *)
