type dsm_op = Read | Write | Lock | Unlock | Barrier | Reduce

type drop_reason = Invalidated | Evicted

type loss_reason = Loss_random | Loss_link_down | Loss_crashed

type event =
  | Msg_send of {
      ts : float;
      id : int;
      parent : int;
      txn : int;
      inject : float;
      level : int;
      src : int;
      dst : int;
      size : int;
      local : bool;
    }
  | Msg_deliver of {
      ts : float;
      id : int;
      txn : int;
      handled : float;
      src : int;
      dst : int;
      size : int;
    }
  | Link_xfer of {
      start : float;
      finish : float;
      link : int;
      msg : int;
      txn : int;
      src : int;
      dst : int;
      size : int;
    }
  | Var_decl of {
      ts : float;
      var : int;
      var_name : string;
      size : int;
      owner : int;
    }
  | Dsm_access of {
      ts : float;
      dur : float;
      node : int;
      var : int;
      var_name : string;
      op : dsm_op;
      size : int;
      hit : bool;
      txn : int;
      completed_by : int;
    }
  | Copy_add of {
      ts : float;
      node : int;
      var : int;
      var_name : string;
      tnode : int;
      level : int;
    }
  | Copy_drop of {
      ts : float;
      node : int;
      var : int;
      var_name : string;
      tnode : int;
      level : int;
      reason : drop_reason;
    }
  | Remap of {
      ts : float;
      var : int;
      var_name : string;
      tnode : int;
      level : int;
      from_node : int;
      to_node : int;
    }
  | Msg_lost of {
      ts : float;
      msg : int;
      txn : int;
      src : int;
      dst : int;
      size : int;
      reason : loss_reason;
    }
  | Msg_retry of {
      ts : float;
      msg : int;
      txn : int;
      src : int;
      dst : int;
      size : int;
      attempt : int;
    }

let timestamp = function
  | Msg_send { ts; _ } -> ts
  | Msg_deliver { ts; _ } -> ts
  | Link_xfer { start; _ } -> start
  | Var_decl { ts; _ } -> ts
  | Dsm_access { ts; _ } -> ts
  | Copy_add { ts; _ } -> ts
  | Copy_drop { ts; _ } -> ts
  | Remap { ts; _ } -> ts
  | Msg_lost { ts; _ } -> ts
  | Msg_retry { ts; _ } -> ts

type sink = {
  on : bool;
  mutable rev_events : event list;
  mutable n : int;
}

let null = { on = false; rev_events = []; n = 0 }
let create () = { on = true; rev_events = []; n = 0 }
let enabled s = s.on

let emit s e =
  if s.on then begin
    s.rev_events <- e :: s.rev_events;
    s.n <- s.n + 1
  end

let count s = s.n
let events s = List.rev s.rev_events
