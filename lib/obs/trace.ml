type dsm_op = Read | Write | Lock | Unlock | Barrier | Reduce

type drop_reason = Invalidated | Evicted

type loss_reason = Loss_random | Loss_link_down | Loss_crashed

type event =
  | Msg_send of {
      ts : float;
      id : int;
      parent : int;
      txn : int;
      inject : float;
      level : int;
      src : int;
      dst : int;
      size : int;
      local : bool;
    }
  | Msg_deliver of {
      ts : float;
      id : int;
      txn : int;
      handled : float;
      src : int;
      dst : int;
      size : int;
    }
  | Link_xfer of {
      start : float;
      finish : float;
      link : int;
      msg : int;
      txn : int;
      level : int;
      src : int;
      dst : int;
      size : int;
    }
  | Var_decl of {
      ts : float;
      var : int;
      var_name : string;
      size : int;
      owner : int;
    }
  | Dsm_access of {
      ts : float;
      dur : float;
      node : int;
      var : int;
      var_name : string;
      op : dsm_op;
      size : int;
      hit : bool;
      txn : int;
      completed_by : int;
    }
  | Copy_add of {
      ts : float;
      node : int;
      var : int;
      var_name : string;
      tnode : int;
      level : int;
    }
  | Copy_drop of {
      ts : float;
      node : int;
      var : int;
      var_name : string;
      tnode : int;
      level : int;
      reason : drop_reason;
    }
  | Remap of {
      ts : float;
      var : int;
      var_name : string;
      tnode : int;
      level : int;
      from_node : int;
      to_node : int;
    }
  | Msg_lost of {
      ts : float;
      msg : int;
      txn : int;
      src : int;
      dst : int;
      size : int;
      reason : loss_reason;
    }
  | Msg_retry of {
      ts : float;
      msg : int;
      txn : int;
      src : int;
      dst : int;
      size : int;
      attempt : int;
    }

let timestamp = function
  | Msg_send { ts; _ } -> ts
  | Msg_deliver { ts; _ } -> ts
  | Link_xfer { start; _ } -> start
  | Var_decl { ts; _ } -> ts
  | Dsm_access { ts; _ } -> ts
  | Copy_add { ts; _ } -> ts
  | Copy_drop { ts; _ } -> ts
  | Remap { ts; _ } -> ts
  | Msg_lost { ts; _ } -> ts
  | Msg_retry { ts; _ } -> ts

type sink = {
  on : bool;
  buffer : bool;
  mutable rev_events : event list;
  mutable n : int;
  on_event : (event -> unit) option;
}

let null = { on = false; buffer = false; rev_events = []; n = 0; on_event = None }
let create () = { on = true; buffer = true; rev_events = []; n = 0; on_event = None }

let stream f =
  { on = true; buffer = false; rev_events = []; n = 0; on_event = Some f }

let tee f =
  { on = true; buffer = true; rev_events = []; n = 0; on_event = Some f }

let enabled s = s.on

let emit s e =
  if s.on then begin
    if s.buffer then s.rev_events <- e :: s.rev_events;
    s.n <- s.n + 1;
    match s.on_event with Some f -> f e | None -> ()
  end

let count s = s.n
let events s = List.rev s.rev_events

(* A sink equal to [s] except that [f] also sees every event. Forcing [on]
   makes wrapping [null] yield a listener-only sink: emission turns on, but
   emission only constructs values — it never feeds back into the
   simulation (the flight recorder's armed-vs-disarmed identity test pins
   this down). The result is a fresh record; callers replace [s] with it
   wholesale, so the original's buffer is never read. *)
let with_listener s f =
  let on_event =
    match s.on_event with
    | Some g when s.on -> Some (fun e -> f e; g e)
    | _ -> Some f
  in
  { on = true; buffer = s.on && s.buffer; rev_events = []; n = 0; on_event }

(* ------------------------------------------------------------------ *)
(* JSONL event codec (writer half; the reader lives in Streaming)      *)
(* ------------------------------------------------------------------ *)

let op_code = function
  | Read -> "r"
  | Write -> "w"
  | Lock -> "l"
  | Unlock -> "u"
  | Barrier -> "b"
  | Reduce -> "x"

let op_of_code = function
  | "r" -> Some Read
  | "w" -> Some Write
  | "l" -> Some Lock
  | "u" -> Some Unlock
  | "b" -> Some Barrier
  | "x" -> Some Reduce
  | _ -> None

let drop_code = function Invalidated -> "inv" | Evicted -> "evict"

let drop_of_code = function
  | "inv" -> Some Invalidated
  | "evict" -> Some Evicted
  | _ -> None

let loss_code = function
  | Loss_random -> "rand"
  | Loss_link_down -> "down"
  | Loss_crashed -> "crash"

let loss_of_code = function
  | "rand" -> Some Loss_random
  | "down" -> Some Loss_link_down
  | "crash" -> Some Loss_crashed
  | _ -> None

(* Compact keys keep big traces small; the ["e"] tag discriminates. The
   field order is fixed so the writer is byte-stable (a committed golden
   trace guards it). *)
let event_to_json e =
  let open Json in
  match e with
  | Msg_send { ts; id; parent; txn; inject; level; src; dst; size; local } ->
      Obj
        [ ("e", String "send"); ("ts", Float ts); ("id", Int id);
          ("par", Int parent); ("txn", Int txn); ("inj", Float inject);
          ("lv", Int level); ("src", Int src); ("dst", Int dst);
          ("sz", Int size); ("loc", Bool local) ]
  | Msg_deliver { ts; id; txn; handled; src; dst; size } ->
      Obj
        [ ("e", String "dlv"); ("ts", Float ts); ("id", Int id);
          ("txn", Int txn); ("h", Float handled); ("src", Int src);
          ("dst", Int dst); ("sz", Int size) ]
  | Link_xfer { start; finish; link; msg; txn; level; src; dst; size } ->
      Obj
        [ ("e", String "xfer"); ("s", Float start); ("f", Float finish);
          ("lk", Int link); ("msg", Int msg); ("txn", Int txn);
          ("lv", Int level); ("src", Int src); ("dst", Int dst);
          ("sz", Int size) ]
  | Var_decl { ts; var; var_name; size; owner } ->
      Obj
        [ ("e", String "var"); ("ts", Float ts); ("v", Int var);
          ("name", String var_name); ("sz", Int size); ("own", Int owner) ]
  | Dsm_access { ts; dur; node; var; var_name; op; size; hit; txn;
                 completed_by } ->
      Obj
        [ ("e", String "dsm"); ("ts", Float ts); ("dur", Float dur);
          ("n", Int node); ("v", Int var); ("name", String var_name);
          ("op", String (op_code op)); ("sz", Int size); ("hit", Bool hit);
          ("txn", Int txn); ("cb", Int completed_by) ]
  | Copy_add { ts; node; var; var_name; tnode; level } ->
      Obj
        [ ("e", String "cadd"); ("ts", Float ts); ("n", Int node);
          ("v", Int var); ("name", String var_name); ("tn", Int tnode);
          ("lv", Int level) ]
  | Copy_drop { ts; node; var; var_name; tnode; level; reason } ->
      Obj
        [ ("e", String "cdrop"); ("ts", Float ts); ("n", Int node);
          ("v", Int var); ("name", String var_name); ("tn", Int tnode);
          ("lv", Int level); ("why", String (drop_code reason)) ]
  | Remap { ts; var; var_name; tnode; level; from_node; to_node } ->
      Obj
        [ ("e", String "remap"); ("ts", Float ts); ("v", Int var);
          ("name", String var_name); ("tn", Int tnode); ("lv", Int level);
          ("from", Int from_node); ("to", Int to_node) ]
  | Msg_lost { ts; msg; txn; src; dst; size; reason } ->
      Obj
        [ ("e", String "lost"); ("ts", Float ts); ("msg", Int msg);
          ("txn", Int txn); ("src", Int src); ("dst", Int dst);
          ("sz", Int size); ("why", String (loss_code reason)) ]
  | Msg_retry { ts; msg; txn; src; dst; size; attempt } ->
      Obj
        [ ("e", String "retry"); ("ts", Float ts); ("msg", Int msg);
          ("txn", Int txn); ("src", Int src); ("dst", Int dst);
          ("sz", Int size); ("att", Int attempt) ]

let write_event oc e =
  let b = Buffer.create 160 in
  Json.to_buffer b (event_to_json e);
  Buffer.add_char b '\n';
  Buffer.output_buffer oc b
