(** Export a trace to the Chrome trace-event JSON format.

    The output is the object form [{ "traceEvents": [...], ... }] and loads
    directly in Perfetto ({{:https://ui.perfetto.dev}ui.perfetto.dev}) or
    [chrome://tracing]. Timestamps are the simulation's microseconds, which
    is the trace format's native unit.

    Layout: each mesh node becomes a process (pid = node id) with a
    "messages" row for sends/deliveries and a "dsm" row for shared-memory
    operation spans and copy-set changes; one extra "network" process
    (pid = number of nodes) holds a row per directed link whose slices are
    the link-occupancy intervals, plus three counter tracks sampled at
    every change point: "in-flight messages" (issued but not yet handled),
    "busy links" (directed links currently occupied) and "copies held"
    (live variable copies across the machine). Each causal transaction
    additionally becomes a flow arrow (id = transaction id) from its DSM
    slice through every link slice its protocol messages occupied, so
    Perfetto renders the transaction's path through the machine. Events are
    emitted sorted by timestamp and the output is byte-deterministic for a
    given event list. *)

val to_json :
  ?metadata:(string * Json.t) list ->
  ?prof:Json.t ->
  num_nodes:int ->
  Trace.event list ->
  Json.t
(** [metadata] entries (e.g. the run manifest) are attached under the
    top-level ["metadata"] key. [prof] is a {!Prof.to_json} document; when
    given, its sample series becomes two counter tracks on an extra
    "profiler" process (pid = number of nodes + 1): host events/sec and
    host heap MB, plotted against simulated time. *)

val to_string :
  ?metadata:(string * Json.t) list ->
  ?prof:Json.t ->
  num_nodes:int ->
  Trace.event list ->
  string

val write_file :
  ?metadata:(string * Json.t) list ->
  ?prof:Json.t ->
  num_nodes:int ->
  path:string ->
  Trace.event list ->
  unit
