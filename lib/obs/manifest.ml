let make ~app ~dims ~strategy ~seed ~params ~measurements =
  Json.Obj
    [
      ("schema", Json.String "diva-run-manifest/1");
      ("app", Json.String app);
      ("mesh", Json.List (List.map (fun d -> Json.Int d) (Array.to_list dims)));
      ("strategy", Json.String strategy);
      ("seed", Json.Int seed);
      ("params", Json.Obj params);
      ("measurements", Json.Obj measurements);
    ]
