type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Integral floats print without an exponent (Chrome's trace viewer rejects
   timestamps like [1e+06] in some versions); everything else keeps enough
   digits to round-trip the interesting range. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v -> Buffer.add_string b (float_repr v)
  | String s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          to_buffer b v)
        kvs;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  to_buffer b j;
  Buffer.contents b

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let b = Buffer.create 4096 in
      to_buffer b j;
      Buffer.add_char b '\n';
      Buffer.output_buffer oc b)
