type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Integral floats print without an exponent (Chrome's trace viewer rejects
   timestamps like [1e+06] in some versions); everything else uses the
   shortest %g precision in {15,16,17} that parses back to the same double,
   so writing and re-reading a trace is lossless (the offline analyzer
   depends on this for bit-identical reports). *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if f = 0.0 then "0" (* covers -0.0: one canonical spelling *)
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15
    else
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v -> Buffer.add_string b (float_repr v)
  | String s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          to_buffer b v)
        kvs;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  to_buffer b j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              (* Our writer only emits \u00xx; decode the BMP subset as
                 UTF-8 so round-trips of control characters work. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end;
              pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (Stdlib.List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ member () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := member () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (Stdlib.List.rev !items)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* Accessors used by readers of our own artifacts (trace replay). *)
let member key = function
  | Obj kvs -> Stdlib.List.assoc_opt key kvs
  | _ -> None

let to_int = function Int i -> Some i | Float f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let b = Buffer.create 4096 in
      to_buffer b j;
      Buffer.add_char b '\n';
      Buffer.output_buffer oc b)
