(** Host-side self-profiler: where does the {e simulator's} wall time,
    allocation and heap go?

    Everything else in [Diva_obs] watches the simulated system; this module
    watches the process simulating it. Three independent mechanisms, all
    observe-only (an armed profiler never schedules events, draws random
    numbers or touches simulation state, so a profiled run is byte-identical
    to an unprofiled one):

    - {b Subsystem sampling.} Instrumented layers publish "what am I
      running right now" with a one-word store ({!set_sub}); a POSIX
      interval timer ([ITIMER_PROF], CPU time) delivers a signal every few
      milliseconds whose handler increments one integer per subsystem. The
      time split is statistical — sample share approximates CPU share —
      and the steady-state cost is one store per event plus one signal per
      sampling period, far below the 3% budget the bench gate enforces.

    - {b Window series.} {!sample} is driven on simulated-clock boundaries
      (see [Diva_simnet.Network.attach_prof]) and appends one row of host
      counters per window: wall clock, events executed, events/sec over
      the window, GC words and collections, heap size. The heap high-water
      mark is folded over the same rows.

    - {b Region timers.} {!region} wraps the coarse, non-hot phases
      (simulate, analysis fold, artifact writing) in exact wall-clock
      timers.

    The result serialises as a versioned [prof.json] ({!to_json}, schema
    ["diva-prof/1"]) and renders back as a report ({!report}); the window
    series also exports as Perfetto counter tracks (see
    {!Chrome_trace.to_json}). *)

type t

(** The instrumented subsystems. [Host] is everything outside the event
    loop (setup, artifact writing); [Event_loop] is queue pop / clock
    bookkeeping / advance hooks; [Dispatch] is event bodies that reach no
    deeper instrumented layer (timers, fiber resumptions, link bookkeeping);
    [Protocol] is the network message envelope/handler layer; [Strategy] is
    a data-management strategy's protocol handler; [Analysis] is the
    streaming analysis fold and event-trace encoding. *)
type subsystem = Host | Event_loop | Dispatch | Protocol | Strategy | Analysis

val subsystem_name : subsystem -> string

val create : ?window_us:float -> ?sample_period_s:float -> unit -> t
(** [window_us] (default 1000.0) is the simulated-time width of one series
    row; [sample_period_s] (default 0.01) the CPU-time period of the
    subsystem sampler. Periods much below 10ms make OCaml's signal
    delivery itself the dominant cost and blow the 3% overhead budget the
    bench gate enforces; 10ms keeps the sampler in the noise while still
    collecting hundreds of samples on any run long enough to be worth
    profiling. *)

val window_us : t -> float

(** {2 Hot-path attribution} *)

val set_sub : t -> subsystem -> unit
(** One word store; safe (and cheap) on the per-event path. *)

val cur_sub : t -> subsystem

val with_sub : t -> subsystem -> (unit -> 'a) -> 'a
(** Set, run, restore the previous subsystem. Not exception-safe by design
    — after an uncaught exception the run is over and attribution moot. *)

(** {2 Arming the sampler} *)

val arm : t -> unit
(** Install the [SIGPROF] handler and start the interval timer. At most
    one profiler is armed per process; arming a second is a no-op (its
    subsystem histogram just stays empty). The window series and region
    timers work without arming. *)

val disarm : t -> unit
(** Stop the timer and restore the previous handler. Idempotent; called
    automatically by {!to_json}. *)

(** {2 Window series} *)

val sample : t -> sim_us:float -> events:int -> unit
(** Append one series row at simulated time [sim_us] with [events] total
    events executed so far. Reads the wall clock and GC counters only;
    the expensive [Gc.quick_stat] (heap size, major collections) is
    refreshed every 16th row and carried forward in between, keeping a
    row to ~50ns. Also drives the ticker, if one is set. *)

val set_ticker : t -> (string -> unit) -> unit
(** Install a live progress callback: at most every ~0.2 wall seconds,
    {!sample} formats a one-line health summary (sim time, events,
    events/sec, heap) and passes it to the callback. The caller decides
    where it goes (divasim writes ["\r<line>"] to stderr). *)

val num_samples : t -> int

(** {2 Region timers} *)

val region : t -> string -> (unit -> 'a) -> 'a
(** Exact wall-clock timing of one named coarse phase; nested or repeated
    regions of the same name accumulate. *)

(** {2 Attachments} *)

val set_par : t -> Json.t -> unit
(** Attach a parallel-engine telemetry report (see
    [Diva_simnet.Par_engine.telemetry_json]); it is embedded as the
    ["par"] section of {!to_json}. *)

val register_gauges : t -> Metrics.t -> unit
(** Register the host-side gauges on a metrics registry:
    [host-events-per-sec] and [host-heap-words] (latest window row), and
    [host-minor-words] (allocated this run). Names deliberately contain
    ['-'] — {!Metrics.to_prometheus} sanitizes them. *)

(** {2 Output} *)

val to_json : t -> Json.t
(** Disarms the sampler, stamps the total wall time and final GC counters,
    and renders the ["diva-prof/1"] document. *)

val report : Json.t -> (string, string) result
(** Render a parsed ["diva-prof/1"] document as a human-readable report
    (the [divasim profile] command). *)

val series_rows : Json.t -> (float * float * float) list
(** [(sim_us, events_per_sec, heap_words)] per window row of a parsed
    ["diva-prof/1"] document — the data behind the Perfetto counter
    tracks. *)
