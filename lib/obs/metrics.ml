type series = Counter of float ref | Gauge of (unit -> float)

type t = {
  mutable rev_cols : (string * series) list;
  mutable rev_rows : (float * float array) list;
  mutable nrows : int;
}

type counter = float ref

let create () = { rev_cols = []; rev_rows = []; nrows = 0 }

let counter t name =
  let rec find = function
    | (n, Counter c) :: _ when n = name -> Some c
    | _ :: rest -> find rest
    | [] -> None
  in
  match find t.rev_cols with
  | Some c -> c
  | None ->
      let c = ref 0.0 in
      t.rev_cols <- (name, Counter c) :: t.rev_cols;
      c

let incr c ?(by = 1.0) () = c := !c +. by

let gauge t name f = t.rev_cols <- (name, Gauge f) :: t.rev_cols

let cols t = List.rev t.rev_cols
let columns t = List.map fst (cols t)

let sample t ~ts =
  let stale =
    match t.rev_rows with (prev, _) :: _ -> ts <= prev | [] -> false
  in
  if not stale then begin
    let row =
      Array.of_list
        (List.map
           (fun (_, s) -> match s with Counter c -> !c | Gauge f -> f ())
           (cols t))
    in
    t.rev_rows <- (ts, row) :: t.rev_rows;
    t.nrows <- t.nrows + 1
  end

let rows t = List.rev t.rev_rows
let num_rows t = t.nrows

let cell v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (String.concat "," ("ts_us" :: columns t));
  Buffer.add_char b '\n';
  List.iter
    (fun (ts, row) ->
      Buffer.add_string b (cell ts);
      Array.iter
        (fun v ->
          Buffer.add_char b ',';
          Buffer.add_string b (cell v))
        row;
      Buffer.add_char b '\n')
    (rows t);
  Buffer.contents b

(* Prometheus metric names allow [a-zA-Z0-9_:]; everything else maps to
   '_' (and a leading digit gets one prepended). *)
let sanitize name =
  let b = Buffer.create (String.length name) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | ':' -> Buffer.add_char b c
      | '0' .. '9' ->
          if i = 0 then Buffer.add_char b '_';
          Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

(* Label values escape per the exposition format: backslash, double quote
   and newline. Label names share the metric charset minus ':'. *)
let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize k)
                 (escape_label_value v))
             labels)
      ^ "}"

let to_prometheus ?(prefix = "diva_") ?(labels = []) t =
  match t.rev_rows with
  | [] -> ""
  | (ts, row) :: _ ->
      let b = Buffer.create 1024 in
      (* Sanitizing folds '-' (and every other unsupported character) to
         '_', so distinct series names can collide after the fold — e.g.
         "host-heap-words" vs "host_heap_words" — and a duplicate metric
         name makes the whole exposition invalid. Deduplicate
         deterministically with a numeric suffix. *)
      let seen = Hashtbl.create 16 in
      let unique metric =
        match Hashtbl.find_opt seen metric with
        | None ->
            Hashtbl.add seen metric 1;
            metric
        | Some n ->
            Hashtbl.replace seen metric (n + 1);
            Printf.sprintf "%s_%d" metric (n + 1)
      in
      let lbl = render_labels labels in
      let line name kind value =
        let metric = unique (sanitize (prefix ^ name)) in
        Printf.bprintf b "# TYPE %s %s\n%s%s %s\n" metric kind metric lbl
          (cell value)
      in
      List.iteri
        (fun i (name, s) ->
          line name
            (match s with Counter _ -> "counter" | Gauge _ -> "gauge")
            row.(i))
        (cols t);
      line "sample_ts_us" "gauge" ts;
      Buffer.contents b

let to_json t =
  Json.Obj
    [
      ("columns", Json.List (List.map (fun c -> Json.String c) (columns t)));
      ( "rows",
        Json.List
          (List.map
             (fun (ts, row) ->
               Json.List
                 (Json.Float ts
                 :: Array.to_list (Array.map (fun v -> Json.Float v) row)))
             (rows t)) );
    ]
