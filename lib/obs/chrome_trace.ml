open Json

(* Thread ids inside a node's process. *)
let tid_msgs = 0
let tid_dsm = 1

let op_name = function
  | Trace.Read -> "read"
  | Trace.Write -> "write"
  | Trace.Lock -> "lock"
  | Trace.Unlock -> "unlock"
  | Trace.Barrier -> "barrier"
  | Trace.Reduce -> "reduce"

let reason_name = function
  | Trace.Invalidated -> "invalidated"
  | Trace.Evicted -> "evicted"

let loss_name = function
  | Trace.Loss_random -> "random"
  | Trace.Loss_link_down -> "link-down"
  | Trace.Loss_crashed -> "crashed"

let ev ~name ~cat ~ph ~ts ~pid ~tid extra =
  Obj
    ([
       ("name", String name);
       ("cat", String cat);
       ("ph", String ph);
       ("ts", Float ts);
       ("pid", Int pid);
       ("tid", Int tid);
     ]
    @ extra)

let instant ~name ~cat ~ts ~pid ~tid args =
  (* "s":"t" scopes the instant to its thread row. *)
  ev ~name ~cat ~ph:"i" ~ts ~pid ~tid [ ("s", String "t"); ("args", Obj args) ]

let span ~name ~cat ~ts ~dur ~pid ~tid args =
  ev ~name ~cat ~ph:"X" ~ts ~pid ~tid
    [ ("dur", Float dur); ("args", Obj args) ]

let meta ~name ~pid ~tid display =
  ev ~name ~cat:"__metadata" ~ph:"M" ~ts:0.0 ~pid ~tid
    [ ("args", Obj [ ("name", String display) ]) ]

let of_event ~net_pid = function
  | Trace.Msg_send { ts; id; parent; txn; inject; level; src; dst; size; local }
    ->
      instant
        ~name:(if local then "send (local)" else Printf.sprintf "send -> %d" dst)
        ~cat:"net" ~ts ~pid:src ~tid:tid_msgs
        [ ("id", Int id); ("parent", Int parent); ("txn", Int txn);
          ("inject", Float inject); ("level", Int level); ("dst", Int dst);
          ("size", Int size); ("local", Bool local) ]
  | Trace.Msg_deliver { ts; id; txn; handled; src; dst; size } ->
      instant
        ~name:(Printf.sprintf "recv <- %d" src)
        ~cat:"net" ~ts ~pid:dst ~tid:tid_msgs
        [ ("id", Int id); ("txn", Int txn); ("handled", Float handled);
          ("src", Int src); ("size", Int size) ]
  | Trace.Link_xfer { start; finish; link; msg; txn; level = _; src; dst; size } ->
      span
        ~name:(Printf.sprintf "%d -> %d" src dst)
        ~cat:"link" ~ts:start ~dur:(finish -. start) ~pid:net_pid ~tid:link
        [ ("msg", Int msg); ("txn", Int txn); ("size", Int size) ]
  | Trace.Var_decl { ts; var; var_name; size; owner } ->
      instant
        ~name:(Printf.sprintf "decl %s" var_name)
        ~cat:"dsm" ~ts ~pid:owner ~tid:tid_dsm
        [ ("var", Int var); ("size", Int size) ]
  | Trace.Dsm_access
      { ts; dur; node; var; var_name; op; size; hit; txn; completed_by } ->
      span
        ~name:
          (if var < 0 then op_name op
           else Printf.sprintf "%s %s%s" (op_name op) var_name
                  (if hit then " (hit)" else ""))
        ~cat:"dsm" ~ts ~dur ~pid:node ~tid:tid_dsm
        [ ("var", Int var); ("size", Int size); ("hit", Bool hit);
          ("txn", Int txn); ("completed_by", Int completed_by) ]
  | Trace.Copy_add { ts; node; var; var_name; tnode; level } ->
      instant
        ~name:(Printf.sprintf "copy+ %s" var_name)
        ~cat:"copies" ~ts ~pid:node ~tid:tid_dsm
        [ ("var", Int var); ("tnode", Int tnode); ("level", Int level) ]
  | Trace.Copy_drop { ts; node; var; var_name; tnode; level; reason } ->
      instant
        ~name:(Printf.sprintf "copy- %s (%s)" var_name (reason_name reason))
        ~cat:"copies" ~ts ~pid:node ~tid:tid_dsm
        [ ("var", Int var); ("tnode", Int tnode); ("level", Int level) ]
  | Trace.Remap { ts; var; var_name; tnode; level; from_node; to_node } ->
      instant
        ~name:(Printf.sprintf "remap %s@%d" var_name tnode)
        ~cat:"remap" ~ts ~pid:from_node ~tid:tid_dsm
        [ ("var", Int var); ("level", Int level); ("to", Int to_node) ]
  | Trace.Msg_lost { ts; msg; txn; src; dst; size; reason } ->
      instant
        ~name:(Printf.sprintf "lost -> %d (%s)" dst (loss_name reason))
        ~cat:"faults" ~ts ~pid:src ~tid:tid_msgs
        [ ("msg", Int msg); ("txn", Int txn); ("dst", Int dst);
          ("size", Int size); ("reason", String (loss_name reason)) ]
  | Trace.Msg_retry { ts; msg; txn; src; dst; size; attempt } ->
      instant
        ~name:(Printf.sprintf "retry -> %d (#%d)" dst attempt)
        ~cat:"faults" ~ts ~pid:src ~tid:tid_msgs
        [ ("msg", Int msg); ("txn", Int txn); ("dst", Int dst);
          ("size", Int size); ("attempt", Int attempt) ]

(* One Perfetto counter track: fold signed deltas into a running value and
   emit a "C" event at each distinct change point (same-timestamp deltas
   coalesce into the final value). *)
let counter_events ~name ~key ~pid deltas =
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) deltas
  in
  let rec go acc cur = function
    | [] -> List.rev acc
    | (ts, d) :: rest -> (
        let cur = cur + d in
        match rest with
        | (ts', _) :: _ when Float.equal ts' ts -> go acc cur rest
        | _ ->
            go
              (( ts,
                 ev ~name ~cat:"counter" ~ph:"C" ~ts ~pid ~tid:0
                   [ ("args", Obj [ (key, Int cur) ]) ] )
              :: acc)
              cur rest)
  in
  go [] 0 sorted

(* Host-profiler counter tracks from a prof.json document: one "C" event
   per sample row on a dedicated "profiler" process. Values are host-side
   measurements (throughput, heap) plotted against simulated time, which
   is exactly what makes a slow window visually pop in Perfetto. *)
let prof_counters ~pid prof =
  List.concat_map
    (fun (sim_us, rate, heap_words) ->
      [
        ( sim_us,
          ev ~name:"host events/sec" ~cat:"prof" ~ph:"C" ~ts:sim_us ~pid
            ~tid:0
            [ ("args", Obj [ ("events_per_sec", Float rate) ]) ] );
        ( sim_us,
          ev ~name:"host heap MB" ~cat:"prof" ~ph:"C" ~ts:sim_us ~pid ~tid:0
            [ ("args", Obj [ ("mb", Float (heap_words *. 8e-6)) ]) ] );
      ])
    (Prof.series_rows prof)

let to_json ?(metadata = []) ?prof ~num_nodes events =
  let net_pid = num_nodes in
  let prof_pid = num_nodes + 1 in
  let sorted =
    List.stable_sort
      (fun a b -> Float.compare (Trace.timestamp a) (Trace.timestamp b))
      events
  in
  (* Name only the processes/threads that actually appear. *)
  let node_used = Array.make (max 1 num_nodes) false in
  let links = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match e with
      | Trace.Link_xfer { link; _ } -> Hashtbl.replace links link ()
      | Trace.Msg_send { src; _ } -> node_used.(src) <- true
      | Trace.Msg_deliver { dst; _ } -> node_used.(dst) <- true
      | Trace.Dsm_access { node; _ }
      | Trace.Copy_add { node; _ }
      | Trace.Copy_drop { node; _ } ->
          node_used.(node) <- true
      | Trace.Var_decl { owner; _ } -> node_used.(owner) <- true
      | Trace.Remap { from_node; _ } -> node_used.(from_node) <- true
      | Trace.Msg_lost { src; _ } | Trace.Msg_retry { src; _ } ->
          node_used.(src) <- true)
    sorted;
  (* Counter tracks on the network process. In-flight counts a message from
     its issue to the time its handler ran; retransmission duplicates keep
     the first delivery, and delivers without a matching send (acks) are
     ignored so the counter cannot go negative. *)
  let send_ids = Hashtbl.create 256 in
  List.iter
    (function
      | Trace.Msg_send { id; local = false; _ } -> Hashtbl.replace send_ids id ()
      | _ -> ())
    sorted;
  let delivered = Hashtbl.create 256 in
  let msg_deltas = ref [] and link_deltas = ref [] and copy_deltas = ref [] in
  List.iter
    (fun e ->
      match e with
      | Trace.Msg_send { ts; local = false; _ } ->
          msg_deltas := (ts, 1) :: !msg_deltas
      | Trace.Msg_deliver { id; handled; _ }
        when Hashtbl.mem send_ids id && not (Hashtbl.mem delivered id) ->
          Hashtbl.add delivered id ();
          msg_deltas := (handled, -1) :: !msg_deltas
      | Trace.Link_xfer { start; finish; _ } ->
          link_deltas := (start, 1) :: (finish, -1) :: !link_deltas
      | Trace.Var_decl { ts; _ } | Trace.Copy_add { ts; _ } ->
          copy_deltas := (ts, 1) :: !copy_deltas
      | Trace.Copy_drop { ts; _ } -> copy_deltas := (ts, -1) :: !copy_deltas
      | _ -> ())
    sorted;
  let counters =
    counter_events ~name:"in-flight messages" ~key:"messages" ~pid:net_pid
      (List.rev !msg_deltas)
    @ counter_events ~name:"busy links" ~key:"links" ~pid:net_pid
        (List.rev !link_deltas)
    @ counter_events ~name:"copies held" ~key:"copies" ~pid:net_pid
        (List.rev !copy_deltas)
  in
  (* Flow arrows: one flow per causal transaction, from the issuing DSM
     slice through each link slice its messages occupied. The flow id is
     the transaction id; "s"/"t"/"f" events bind to the slice sharing their
     (pid, tid, ts). *)
  let accesses = Hashtbl.create 64 in
  List.iter
    (function
      | Trace.Dsm_access { ts; node; txn; hit = false; _ } when txn >= 0 ->
          if not (Hashtbl.mem accesses txn) then Hashtbl.add accesses txn (ts, node)
      | _ -> ())
    sorted;
  let xfers = Hashtbl.create 64 in
  List.iter
    (function
      | Trace.Link_xfer { start; link; txn; _ } when txn >= 0 ->
          Hashtbl.replace xfers txn
            ((start, link)
            :: Option.value ~default:[] (Hashtbl.find_opt xfers txn))
      | _ -> ())
    sorted;
  let txn_ids =
    List.sort compare (Hashtbl.fold (fun txn _ acc -> txn :: acc) accesses [])
  in
  let flows =
    List.concat_map
      (fun txn ->
        match Hashtbl.find_opt xfers txn with
        | None -> []
        | Some xs ->
            let t0, node = Hashtbl.find accesses txn in
            let flow ph ?(extra = []) ~ts ~pid ~tid () =
              ( ts,
                ev ~name:"txn" ~cat:"flow" ~ph ~ts ~pid ~tid
                  (("id", Int txn) :: extra) )
            in
            let rec steps = function
              | [] -> []
              | [ (ts, link) ] ->
                  [ flow "f"
                      ~extra:[ ("bp", String "e") ]
                      ~ts ~pid:net_pid ~tid:link () ]
              | (ts, link) :: rest ->
                  flow "t" ~ts ~pid:net_pid ~tid:link () :: steps rest
            in
            flow "s" ~ts:t0 ~pid:node ~tid:tid_dsm () :: steps (List.sort compare xs))
      txn_ids
  in
  let profs =
    match prof with None -> [] | Some p -> prof_counters ~pid:prof_pid p
  in
  let link_ids =
    List.sort compare (Hashtbl.fold (fun link () acc -> link :: acc) links [])
  in
  let metas =
    (if link_ids = [] && counters = [] then []
     else meta ~name:"process_name" ~pid:net_pid ~tid:0 "network" :: [])
    @ (if profs = [] then []
       else [ meta ~name:"process_name" ~pid:prof_pid ~tid:0 "profiler" ])
    @ List.map
        (fun link ->
          meta ~name:"thread_name" ~pid:net_pid ~tid:link
            (Printf.sprintf "link %d" link))
        link_ids
    @ List.concat
        (List.mapi
           (fun node used ->
             if used then
               [
                 meta ~name:"process_name" ~pid:node ~tid:0
                   (Printf.sprintf "node %d" node);
                 meta ~name:"thread_name" ~pid:node ~tid:tid_msgs "messages";
                 meta ~name:"thread_name" ~pid:node ~tid:tid_dsm "dsm";
               ]
             else [])
           (Array.to_list node_used))
  in
  (* Merge slices, counters and flows into one timestamp-sorted stream
     (stable, so same-timestamp events keep a deterministic order). *)
  let stamped =
    List.map (fun e -> (Trace.timestamp e, of_event ~net_pid e)) sorted
    @ counters @ flows @ profs
  in
  let trace_events =
    metas
    @ List.map snd
        (List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) stamped)
  in
  Obj
    ([
       ("traceEvents", List trace_events);
       ("displayTimeUnit", String "ms");
     ]
    @ if metadata = [] then [] else [ ("metadata", Obj metadata) ])

let to_string ?metadata ?prof ~num_nodes events =
  Json.to_string (to_json ?metadata ?prof ~num_nodes events)

let write_file ?metadata ?prof ~num_nodes ~path events =
  Json.to_file path (to_json ?metadata ?prof ~num_nodes events)
