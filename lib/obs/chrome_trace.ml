open Json

(* Thread ids inside a node's process. *)
let tid_msgs = 0
let tid_dsm = 1

let op_name = function
  | Trace.Read -> "read"
  | Trace.Write -> "write"
  | Trace.Lock -> "lock"
  | Trace.Unlock -> "unlock"
  | Trace.Barrier -> "barrier"
  | Trace.Reduce -> "reduce"

let reason_name = function
  | Trace.Invalidated -> "invalidated"
  | Trace.Evicted -> "evicted"

let loss_name = function
  | Trace.Loss_random -> "random"
  | Trace.Loss_link_down -> "link-down"
  | Trace.Loss_crashed -> "crashed"

let ev ~name ~cat ~ph ~ts ~pid ~tid extra =
  Obj
    ([
       ("name", String name);
       ("cat", String cat);
       ("ph", String ph);
       ("ts", Float ts);
       ("pid", Int pid);
       ("tid", Int tid);
     ]
    @ extra)

let instant ~name ~cat ~ts ~pid ~tid args =
  (* "s":"t" scopes the instant to its thread row. *)
  ev ~name ~cat ~ph:"i" ~ts ~pid ~tid [ ("s", String "t"); ("args", Obj args) ]

let span ~name ~cat ~ts ~dur ~pid ~tid args =
  ev ~name ~cat ~ph:"X" ~ts ~pid ~tid
    [ ("dur", Float dur); ("args", Obj args) ]

let meta ~name ~pid ~tid display =
  ev ~name ~cat:"__metadata" ~ph:"M" ~ts:0.0 ~pid ~tid
    [ ("args", Obj [ ("name", String display) ]) ]

let of_event ~net_pid = function
  | Trace.Msg_send { ts; src; dst; size; local } ->
      instant
        ~name:(if local then "send (local)" else Printf.sprintf "send -> %d" dst)
        ~cat:"net" ~ts ~pid:src ~tid:tid_msgs
        [ ("dst", Int dst); ("size", Int size); ("local", Bool local) ]
  | Trace.Msg_deliver { ts; src; dst; size } ->
      instant
        ~name:(Printf.sprintf "recv <- %d" src)
        ~cat:"net" ~ts ~pid:dst ~tid:tid_msgs
        [ ("src", Int src); ("size", Int size) ]
  | Trace.Link_xfer { start; finish; link; src; dst; size } ->
      span
        ~name:(Printf.sprintf "%d -> %d" src dst)
        ~cat:"link" ~ts:start ~dur:(finish -. start) ~pid:net_pid ~tid:link
        [ ("size", Int size) ]
  | Trace.Var_decl { ts; var; var_name; size; owner } ->
      instant
        ~name:(Printf.sprintf "decl %s" var_name)
        ~cat:"dsm" ~ts ~pid:owner ~tid:tid_dsm
        [ ("var", Int var); ("size", Int size) ]
  | Trace.Dsm_access { ts; dur; node; var; var_name; op; size; hit } ->
      span
        ~name:
          (if var < 0 then op_name op
           else Printf.sprintf "%s %s%s" (op_name op) var_name
                  (if hit then " (hit)" else ""))
        ~cat:"dsm" ~ts ~dur ~pid:node ~tid:tid_dsm
        [ ("var", Int var); ("size", Int size); ("hit", Bool hit) ]
  | Trace.Copy_add { ts; node; var; var_name; tnode; level } ->
      instant
        ~name:(Printf.sprintf "copy+ %s" var_name)
        ~cat:"copies" ~ts ~pid:node ~tid:tid_dsm
        [ ("var", Int var); ("tnode", Int tnode); ("level", Int level) ]
  | Trace.Copy_drop { ts; node; var; var_name; tnode; level; reason } ->
      instant
        ~name:(Printf.sprintf "copy- %s (%s)" var_name (reason_name reason))
        ~cat:"copies" ~ts ~pid:node ~tid:tid_dsm
        [ ("var", Int var); ("tnode", Int tnode); ("level", Int level) ]
  | Trace.Remap { ts; var; var_name; tnode; level; from_node; to_node } ->
      instant
        ~name:(Printf.sprintf "remap %s@%d" var_name tnode)
        ~cat:"remap" ~ts ~pid:from_node ~tid:tid_dsm
        [ ("var", Int var); ("level", Int level); ("to", Int to_node) ]
  | Trace.Msg_lost { ts; src; dst; size; reason } ->
      instant
        ~name:(Printf.sprintf "lost -> %d (%s)" dst (loss_name reason))
        ~cat:"faults" ~ts ~pid:src ~tid:tid_msgs
        [ ("dst", Int dst); ("size", Int size);
          ("reason", String (loss_name reason)) ]
  | Trace.Msg_retry { ts; src; dst; size; attempt } ->
      instant
        ~name:(Printf.sprintf "retry -> %d (#%d)" dst attempt)
        ~cat:"faults" ~ts ~pid:src ~tid:tid_msgs
        [ ("dst", Int dst); ("size", Int size); ("attempt", Int attempt) ]

let to_json ?(metadata = []) ~num_nodes events =
  let net_pid = num_nodes in
  let sorted =
    List.stable_sort
      (fun a b -> Float.compare (Trace.timestamp a) (Trace.timestamp b))
      events
  in
  (* Name only the processes/threads that actually appear. *)
  let node_used = Array.make (max 1 num_nodes) false in
  let links = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match e with
      | Trace.Link_xfer { link; _ } -> Hashtbl.replace links link ()
      | Trace.Msg_send { src; _ } -> node_used.(src) <- true
      | Trace.Msg_deliver { dst; _ } -> node_used.(dst) <- true
      | Trace.Dsm_access { node; _ }
      | Trace.Copy_add { node; _ }
      | Trace.Copy_drop { node; _ } ->
          node_used.(node) <- true
      | Trace.Var_decl { owner; _ } -> node_used.(owner) <- true
      | Trace.Remap { from_node; _ } -> node_used.(from_node) <- true
      | Trace.Msg_lost { src; _ } | Trace.Msg_retry { src; _ } ->
          node_used.(src) <- true)
    sorted;
  let metas = ref [] in
  if Hashtbl.length links > 0 then begin
    Hashtbl.iter
      (fun link () ->
        metas :=
          meta ~name:"thread_name" ~pid:net_pid ~tid:link
            (Printf.sprintf "link %d" link)
          :: !metas)
      links;
    metas := meta ~name:"process_name" ~pid:net_pid ~tid:0 "network" :: !metas
  end;
  Array.iteri
    (fun node used ->
      if used then begin
        metas :=
          meta ~name:"process_name" ~pid:node ~tid:0
            (Printf.sprintf "node %d" node)
          :: meta ~name:"thread_name" ~pid:node ~tid:tid_msgs "messages"
          :: meta ~name:"thread_name" ~pid:node ~tid:tid_dsm "dsm"
          :: !metas
      end)
    node_used;
  let trace_events = !metas @ List.map (of_event ~net_pid) sorted in
  Obj
    ([
       ("traceEvents", List trace_events);
       ("displayTimeUnit", String "ms");
     ]
    @ if metadata = [] then [] else [ ("metadata", Obj metadata) ])

let to_string ?metadata ~num_nodes events =
  Json.to_string (to_json ?metadata ~num_nodes events)

let write_file ?metadata ~num_nodes ~path events =
  Json.to_file path (to_json ?metadata ~num_nodes events)
