(** Structured trace-event stream of one simulation run.

    Every layer of the simulator emits semantic events into a {!sink}: the
    network records message sends, per-link occupancy intervals and
    deliveries; the DSM layer records read/write/lock/barrier transactions
    (with hit/miss and latency) and copy-set changes tagged with the
    access-tree node and its level. Timestamps are simulated microseconds.

    Tracing never perturbs the simulation: emission only appends to an
    in-memory buffer, so a traced run is bit-identical to an untraced one.
    The {!null} sink is disabled; instrumentation sites guard event
    construction with {!enabled}, making the disabled path a single load
    and branch (no allocation). *)

type dsm_op = Read | Write | Lock | Unlock | Barrier | Reduce

type drop_reason =
  | Invalidated  (** removed by a write's invalidation wave *)
  | Evicted  (** removed by LRU replacement under bounded memory *)

type loss_reason =
  | Loss_random  (** probabilistic message drop (fault schedule) *)
  | Loss_link_down  (** the route crossed a link during an outage window *)
  | Loss_crashed  (** the destination was inside a crash-stop window *)

type event =
  | Msg_send of {
      ts : float;  (** time the send was issued *)
      id : int;  (** unique message id, monotone in issue order *)
      parent : int;
          (** id of the message whose handler issued this send; [-1] when
              issued from a fiber (or a timer). Since handlers execute
              instantaneously in simulated time, [ts] equals the parent's
              [handled] time — causal chains are contiguous. *)
      txn : int;
          (** causal DSM transaction this message serves; [-1] outside any
              transaction (hand-optimized apps, acks). The id is threaded
              through every protocol hop, combining park and
              retransmission the message spawns. *)
      inject : float;
          (** when the message actually enters the network: issue time plus
              CPU queueing plus the send startup overhead. For [local]
              messages, the time the destination handler runs (after
              [local_overhead]). *)
      level : int;
          (** access-tree depth of the destination tree node (root 0) for
              tree-protocol and combining-tree traffic; [-1] otherwise. *)
      src : int;
      dst : int;
      size : int;
      local : bool;
    }
      (** A message send was issued at [ts]. [local] messages never occupy
          links. *)
  | Msg_deliver of {
      ts : float;
      id : int;  (** matches the {!Msg_send} with the same id *)
      txn : int;
      handled : float;
          (** when the destination handler actually ran: [ts] plus CPU
              queueing plus the receive overhead (equals [ts] for
              hardware-level acks, which cost no CPU). *)
      src : int;
      dst : int;
      size : int;
    }
      (** The message's tail arrived at the destination at [ts]. Under
          faults a retransmitted message can be delivered more than once
          (span builders keep the first). *)
  | Link_xfer of {
      start : float;
      finish : float;
      link : int;
      msg : int;
          (** id of the {!Msg_send} occupying the link; [-1] for acks
              (which have no send of their own) *)
      txn : int;
      level : int;
          (** access-tree level tag of the originating send (see
              {!Msg_send}); retransmissions keep the original's level.
              Makes per-level traffic folds self-contained in the event
              stream. *)
      src : int;
      dst : int;
      size : int;
    }
      (** One directed link was occupied by the message for
          [start, finish). Exactly one event per link crossing — per-link
          aggregation of these reproduces {!Diva_simnet.Link_stats}. *)
  | Var_decl of {
      ts : float;
      var : int;
      var_name : string;
      size : int;  (** payload size in bytes *)
      owner : int;  (** processor holding the initial (only) copy *)
    }
      (** A global variable was declared ([Dsm.create_var]). Together with
          {!Dsm_access} this makes the event stream a complete, replayable
          record of a run's shared-memory behaviour. *)
  | Dsm_access of {
      ts : float;
      dur : float;
      node : int;
      var : int;  (** variable id; [-1] for variable-less ops (barriers) *)
      var_name : string;
      op : dsm_op;
      size : int;
          (** payload size in bytes: the variable's size for data ops, the
              reducer's wire size for {!Reduce}, 0 for {!Barrier} *)
      hit : bool;  (** completed from the local copy, no transaction *)
      txn : int;
          (** causal transaction id shared with the protocol messages this
              operation spawned; [-1] for read/write hits (no messages). *)
      completed_by : int;
          (** id of the message whose handler unblocked the fiber; [-1]
              for hits and synchronously-completed operations. Walking its
              [parent] chain backwards yields the transaction's critical
              path (see {!Diva_obs.Analysis}). *)
    }
      (** One shared-memory operation issued by [node]'s fiber: [ts] is the
          issue time, [dur] the blocking latency (0 for hits). *)
  | Copy_add of {
      ts : float;
      node : int;
      var : int;
      var_name : string;
      tnode : int;  (** access-tree node id; [-1] under fixed-home *)
      level : int;  (** tree depth of [tnode] (root 0); [-1] if no tree *)
    }
  | Copy_drop of {
      ts : float;
      node : int;
      var : int;
      var_name : string;
      tnode : int;
      level : int;
      reason : drop_reason;
    }
  | Remap of {
      ts : float;
      var : int;
      var_name : string;
      tnode : int;
      level : int;
      from_node : int;
      to_node : int;
    }
      (** FOCS'97 variant: tree node [tnode] migrated to a fresh random
          processor of its submesh. *)
  | Msg_lost of {
      ts : float;
      msg : int;  (** id of the lost {!Msg_send} ([-1] for acks) *)
      txn : int;
      src : int;
      dst : int;
      size : int;
      reason : loss_reason;
    }
      (** A physical transmission was lost to an injected fault at [ts]
          (see {!Diva_faults}); the reliable envelope retransmits it. *)
  | Msg_retry of {
      ts : float;
      msg : int;  (** id of the retransmitted {!Msg_send} *)
      txn : int;
      src : int;
      dst : int;
      size : int;
      attempt : int;
    }
      (** The reliable envelope retransmitted an unacknowledged message;
          [attempt] is 1 for the first retransmission. *)

val timestamp : event -> float
(** Primary timestamp of the event ([start] for {!Link_xfer}). *)

type sink

val null : sink
(** The shared disabled sink; {!emit} on it is a no-op. *)

val create : unit -> sink
(** A fresh enabled sink with an empty buffer. *)

val stream : (event -> unit) -> sink
(** An enabled sink that forwards every event to the callback instead of
    buffering: {!events} returns [[]], memory stays O(1) no matter how
    long the run. The backbone of streaming analysis and on-disk trace
    recording (see {!Streaming}). *)

val tee : (event -> unit) -> sink
(** Buffer like {!create} and also forward to the callback — for writing
    a trace file while keeping the in-memory batch path available. *)

val enabled : sink -> bool
(** Instrumentation sites test this before constructing an event. *)

val emit : sink -> event -> unit
(** Append and/or forward; ignored on a disabled sink. Events may be
    emitted out of timestamp order (a send emits its delivery event
    eagerly); exporters sort. Emission-order sim-time is nondecreasing —
    analyzers rely on this (e.g. [Dsm_access] events arrive in completion
    order). *)

val count : sink -> int
(** Events emitted so far (buffered or streamed). *)

val events : sink -> event list
(** Buffered events in emission order; [[]] for {!stream} sinks. *)

val with_listener : sink -> (event -> unit) -> sink
(** [with_listener s f] is a sink that behaves like [s] (same buffering,
    same downstream callback) except that [f] also observes every event,
    and that it is always enabled — wrapping {!null} yields a
    listener-only sink. The result {e replaces} [s]: it has its own
    buffer, so keep only the wrapped value. Used by the flight recorder
    to ride along any existing sink configuration. *)

(** {2 JSONL event codec}

    One compact JSON object per event, discriminated by the ["e"] tag,
    with a fixed field order so the writer is byte-stable. The reader and
    the versioned file header live in {!Streaming}. *)

val op_code : dsm_op -> string
val op_of_code : string -> dsm_op option
val drop_code : drop_reason -> string
val drop_of_code : string -> drop_reason option
val loss_code : loss_reason -> string
val loss_of_code : string -> loss_reason option

val event_to_json : event -> Json.t

val write_event : out_channel -> event -> unit
(** Write one event as a single JSON line. *)
