(** Machine-readable run manifest: everything needed to reproduce and
    index one simulation run, plus its headline measurements. Embedded in
    the Chrome trace's metadata and writable as a standalone artifact. *)

val make :
  app:string ->
  dims:int array ->
  strategy:string ->
  seed:int ->
  params:(string * Json.t) list ->
  measurements:(string * Json.t) list ->
  Json.t
