(** Critical-path extraction and cost attribution over span trees.

    The paper explains the access-tree strategy's win by splitting
    execution time into per-message startup, raw transfer time, and
    congestion-induced queueing; this module makes that decomposition
    measurable per run. Machine overhead constants are passed in as
    {!overheads} ([Diva_obs] sits below the simulator and cannot read
    [Diva_simnet.Machine]). *)

type overheads = {
  send_overhead : float;
  recv_overhead : float;
  local_overhead : float;
}

type cost = {
  startup_us : float;  (** send/receive per-message overheads *)
  transfer_us : float;  (** time some link on the path was moving the data *)
  queue_us : float;
      (** waiting: CPU contention, link contention, header propagation *)
  cpu_us : float;  (** local handler cost and application compute *)
}

val zero_cost : cost
val add_cost : cost -> cost -> cost
val total_cost : cost -> float

val op_name : Trace.dsm_op -> string

(** Strategy-neutral view of one completing-chain message, detached from
    where the records live (full {!Spans} tables or a streaming analyzer's
    retained prefix). *)
type chain_link = {
  cl_local : bool;
  cl_inject : float;
  cl_handled : float option;
  cl_xfers : (float * float) list;  (** (start, finish), arrival order *)
}

val chain_link_of_msg : Spans.msg -> chain_link

val decompose_chain :
  overheads -> t0:float -> dur:float -> chain_link list -> cost
(** Core of {!decompose}: sweep the chain's labeled segments over the
    blocking window [\[t0, t0 +. dur\]]. Clipping makes the result
    insensitive to link crossings emitted after the completion event, so a
    streaming analyzer that retires transactions eagerly computes the same
    cost bit for bit. *)

val side_cost : overheads -> Spans.side -> cost
(** Attribution of one side-branch message (e.g. an invalidation fan-out
    hop the write triggered but did not block on) from its at-completion
    snapshot: overheads as startup, link occupancy as transfer, local
    handler cost as cpu, issue-to-injection dead time as queue. *)

val sides_cost : overheads -> Spans.side list -> cost
(** [side_cost] summed in list order. *)

val decompose : overheads -> Spans.t -> Spans.txn -> cost
(** Decompose one transaction's blocking latency along its completing
    causal chain ({!Spans.chain}). Every term is non-negative (up to float
    rounding) and the four sum exactly to [t_dur]: the labeled segments —
    overheads as startup, link occupancy as transfer, local handler cost as
    cpu — are clipped to the blocking window and measured as a union with
    precedence startup > transfer > cpu; the uncovered remainder is
    queueing. *)

type critical_path = {
  cp_node : int;  (** the last-finishing processor *)
  cp_end : float;  (** when its final transaction completed *)
  cp_txns : int list;  (** transaction ids along its timeline *)
  cp_cost : cost;
      (** the node's whole timeline: blocking decompositions plus
          inter-transaction gaps (application compute) as [cpu_us] *)
}

val critical_path : overheads -> Spans.t -> critical_path option
(** The makespan is decided by the last-finishing processor; its timeline
    decomposition explains where the run's wall-clock went. [None] when the
    trace holds no transactions. *)

type level_row = {
  lv_level : int;  (** access-tree depth; -1 collects untagged traffic *)
  lv_msgs : int;
  lv_bytes : int;
  lv_local : int;  (** how many of the messages were same-processor hops *)
  lv_crossings : int;  (** directed-link crossings *)
  lv_link_bytes : int;  (** bytes weighted by links crossed *)
}

val level_profile : Spans.t -> level_row list
(** Traffic grouped by the access-tree level of the destination protocol
    node, ascending level. Shows the paper's locality effect: most tree
    traffic should sit at deep (cheap, short-distance) levels. *)

type link_row = {
  lk_link : int;
  lk_msgs : int;
  lk_bytes : int;
  lk_busy_us : float;
}

val top_links : ?k:int -> Spans.t -> link_row list
(** The [k] (default 10) most congested directed links by bytes carried,
    ties broken by link id. *)

type window = {
  w_start : float;
  w_finish : float;
  w_link_bytes : (int * float) list;
      (** per-link bytes attributed to the window, overlap-proportional;
          ascending link id, zero links omitted *)
}

val windows : ?n:int -> Spans.t -> window list
(** Split the run into [n] (default 8) equal time windows and attribute
    each link occupancy's bytes proportionally to the windows it overlaps
    — the data behind time-lapse congestion heatmaps. *)

type op_row = {
  or_op : Trace.dsm_op;
  or_count : int;  (** miss-path transactions of this kind *)
  or_mean_us : float;
  or_max_us : float;
  or_cost : cost;  (** summed decomposition over all of them *)
  or_side_msgs : int;  (** side-branch messages (invalidation fan-out &c.) *)
  or_side_cost : cost;  (** summed side-branch attribution *)
}

val op_table : overheads -> Spans.t -> op_row list
(** Latency and summed cost decomposition per operation type (miss path
    only — hits never enter the protocol). Ops with no transactions are
    omitted. *)

(** {2 Canonical event folds (shared by batch and streaming)} *)

val end_time_events : Trace.event list -> float
(** End of network activity folded from the events themselves: last link
    release (acks excluded), last handler run, last local handler. Unlike
    the span-based {!windows} basis this sees every delivery of a
    retransmitted message, so batch and streaming agree by construction. *)

(** Incremental per-window per-link byte attribution (the math of
    {!windows} as a fold). Window boundaries need the run's end time up
    front, so {!Streaming} retains each crossing as four scalars during
    its single pass and replays them through this fold at finalize. *)
module Windows_fold : sig
  type t

  val create : n:int -> t_end:float -> t
  (** Inert (produces no rows) when [n <= 0] or [t_end <= 0.]. *)

  val feed : t -> Trace.event -> unit
  (** Feed one event; only non-ack link crossings contribute. *)

  val feed_xfer :
    t -> link:int -> size:int -> start:float -> finish:float -> unit
  (** Feed one already-extracted link crossing — what {!feed} does for a
      [Link_xfer] event. Zero-length crossings ([finish <= start]) are
      ignored. *)

  val rows : t -> window list
end

(** Accumulator for the per-operation table and whole-run critical path,
    fed one completed transaction at a time in completion (= stream
    emission) order. Batch ({!summarize}) and streaming ({!Streaming})
    both drive it, so their float sums see identical operand order. *)
module Txn_fold : sig
  type t

  val create : unit -> t

  val feed :
    t ->
    node:int ->
    op:Trace.dsm_op ->
    t_start:float ->
    dur:float ->
    chain_cost:cost ->
    side_msgs:int ->
    side_cost:cost ->
    unit

  val num_txns : t -> int
  val op_rows : t -> op_row list

  val critical : t -> (int * float * int * cost) option
  (** [(node, end, txns, cost)] of the last-finishing processor (first
      strict maximum in feed order); [None] before any feed. *)
end

val link_rows_events : Trace.event list -> link_row list
(** Per-link totals folded in event-emission order (the order batch and
    streaming share); ack crossings ([msg = -1]) excluded. Unordered. *)

val sort_top_links : k:int -> link_row list -> link_row list
(** Descending bytes, ties by ascending link id, truncated to [k]. *)

(** {2 Run summary} *)

type critical_summary = {
  sc_node : int;
  sc_end : float;
  sc_txns : int;
  sc_cost : cost;
}

(** Everything [divasim analyze] reports, as one value. Produced
    identically — bit for bit, floats included — by batch {!summarize}
    and by the bounded-memory {!Streaming} analyzer. *)
type summary = {
  sm_num_txns : int;
  sm_num_msgs : int;
  sm_end_us : float;  (** {!end_time_events}: the windows' time basis *)
  sm_critical : critical_summary option;
  sm_levels : level_row list;
  sm_top_links : link_row list;
  sm_windows : window list;
  sm_ops : op_row list;
}

val summarize :
  ?top_k:int -> ?num_windows:int -> overheads -> Trace.event list -> summary
(** The canonical batch analysis: full span tables in memory, folded in
    the canonical orders above. *)

val cost_json : cost -> Json.t

val to_json :
  ?meta:(string * Json.t) list ->
  ?top_k:int ->
  ?num_windows:int ->
  overheads ->
  Spans.t ->
  Json.t
(** The machine-readable [analysis.json] payload: run totals, critical
    path, level profile, top links, windowed link traffic and the
    per-operation table. [meta] entries are prepended to the object. *)

val summary_to_json : ?meta:(string * Json.t) list -> summary -> Json.t
(** The machine-readable [analysis.json] payload. [meta] entries are
    prepended to the object. *)

val render_cost : cost -> string

val render : ?top_k:int -> overheads -> Spans.t -> string
(** Human-readable report over span tables (legacy batch path). *)

val render_summary : summary -> string
(** Human-readable report (the [divasim analyze] stdout). *)
