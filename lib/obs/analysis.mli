(** Critical-path extraction and cost attribution over span trees.

    The paper explains the access-tree strategy's win by splitting
    execution time into per-message startup, raw transfer time, and
    congestion-induced queueing; this module makes that decomposition
    measurable per run. Machine overhead constants are passed in as
    {!overheads} ([Diva_obs] sits below the simulator and cannot read
    [Diva_simnet.Machine]). *)

type overheads = {
  send_overhead : float;
  recv_overhead : float;
  local_overhead : float;
}

type cost = {
  startup_us : float;  (** send/receive per-message overheads *)
  transfer_us : float;  (** time some link on the path was moving the data *)
  queue_us : float;
      (** waiting: CPU contention, link contention, header propagation *)
  cpu_us : float;  (** local handler cost and application compute *)
}

val zero_cost : cost
val add_cost : cost -> cost -> cost
val total_cost : cost -> float

val op_name : Trace.dsm_op -> string

val decompose : overheads -> Spans.t -> Spans.txn -> cost
(** Decompose one transaction's blocking latency along its completing
    causal chain ({!Spans.chain}). Every term is non-negative (up to float
    rounding) and the four sum exactly to [t_dur]: the labeled segments —
    overheads as startup, link occupancy as transfer, local handler cost as
    cpu — are clipped to the blocking window and measured as a union with
    precedence startup > transfer > cpu; the uncovered remainder is
    queueing. *)

type critical_path = {
  cp_node : int;  (** the last-finishing processor *)
  cp_end : float;  (** when its final transaction completed *)
  cp_txns : int list;  (** transaction ids along its timeline *)
  cp_cost : cost;
      (** the node's whole timeline: blocking decompositions plus
          inter-transaction gaps (application compute) as [cpu_us] *)
}

val critical_path : overheads -> Spans.t -> critical_path option
(** The makespan is decided by the last-finishing processor; its timeline
    decomposition explains where the run's wall-clock went. [None] when the
    trace holds no transactions. *)

type level_row = {
  lv_level : int;  (** access-tree depth; -1 collects untagged traffic *)
  lv_msgs : int;
  lv_bytes : int;
  lv_local : int;  (** how many of the messages were same-processor hops *)
  lv_crossings : int;  (** directed-link crossings *)
  lv_link_bytes : int;  (** bytes weighted by links crossed *)
}

val level_profile : Spans.t -> level_row list
(** Traffic grouped by the access-tree level of the destination protocol
    node, ascending level. Shows the paper's locality effect: most tree
    traffic should sit at deep (cheap, short-distance) levels. *)

type link_row = {
  lk_link : int;
  lk_msgs : int;
  lk_bytes : int;
  lk_busy_us : float;
}

val top_links : ?k:int -> Spans.t -> link_row list
(** The [k] (default 10) most congested directed links by bytes carried,
    ties broken by link id. *)

type window = {
  w_start : float;
  w_finish : float;
  w_link_bytes : (int * float) list;
      (** per-link bytes attributed to the window, overlap-proportional;
          ascending link id, zero links omitted *)
}

val windows : ?n:int -> Spans.t -> window list
(** Split the run into [n] (default 8) equal time windows and attribute
    each link occupancy's bytes proportionally to the windows it overlaps
    — the data behind time-lapse congestion heatmaps. *)

type op_row = {
  or_op : Trace.dsm_op;
  or_count : int;  (** miss-path transactions of this kind *)
  or_mean_us : float;
  or_max_us : float;
  or_cost : cost;  (** summed decomposition over all of them *)
}

val op_table : overheads -> Spans.t -> op_row list
(** Latency and summed cost decomposition per operation type (miss path
    only — hits never enter the protocol). Ops with no transactions are
    omitted. *)

val cost_json : cost -> Json.t

val to_json :
  ?meta:(string * Json.t) list ->
  ?top_k:int ->
  ?num_windows:int ->
  overheads ->
  Spans.t ->
  Json.t
(** The machine-readable [analysis.json] payload: run totals, critical
    path, level profile, top links, windowed link traffic and the
    per-operation table. [meta] entries are prepended to the object. *)

val render_cost : cost -> string

val render : ?top_k:int -> overheads -> Spans.t -> string
(** Human-readable report (the [divasim analyze] stdout). *)
