(* Critical-path extraction and cost attribution over span trees.

   The machine's overhead constants arrive as parameters: [Diva_obs] sits
   below the simulator in the dependency order, so it cannot read
   [Diva_simnet.Machine] itself. *)

type overheads = {
  send_overhead : float;
  recv_overhead : float;
  local_overhead : float;
}

type cost = {
  startup_us : float;
  transfer_us : float;
  queue_us : float;
  cpu_us : float;
}

let zero_cost = { startup_us = 0.0; transfer_us = 0.0; queue_us = 0.0; cpu_us = 0.0 }

let add_cost a b =
  {
    startup_us = a.startup_us +. b.startup_us;
    transfer_us = a.transfer_us +. b.transfer_us;
    queue_us = a.queue_us +. b.queue_us;
    cpu_us = a.cpu_us +. b.cpu_us;
  }

let total_cost c = c.startup_us +. c.transfer_us +. c.queue_us +. c.cpu_us

let op_name = function
  | Trace.Read -> "read"
  | Trace.Write -> "write"
  | Trace.Lock -> "lock"
  | Trace.Unlock -> "unlock"
  | Trace.Barrier -> "barrier"
  | Trace.Reduce -> "reduce"

let txn_end (x : Spans.txn) = x.Spans.t_start +. x.Spans.t_dur

(* Strategy-neutral view of one completing-chain message: what the
   decomposition sweep needs, detached from where the records live (full
   {!Spans} tables or a streaming analyzer's retained prefix). *)
type chain_link = {
  cl_local : bool;
  cl_inject : float;
  cl_handled : float option;
  cl_xfers : (float * float) list;  (* (start, finish), arrival order *)
}

let chain_link_of_msg (m : Spans.msg) =
  {
    cl_local = m.Spans.local;
    cl_inject = m.Spans.inject;
    cl_handled = m.Spans.handled;
    cl_xfers = List.map (fun (_, s, f) -> (s, f)) m.Spans.xfers;
  }

(* Exact decomposition of one transaction's blocking window [t0, t0+dur]:
   every message on the completing causal chain contributes labeled time
   segments (send/receive overheads -> startup, link occupancy -> transfer,
   local handler cost -> cpu), clipped to the window. A boundary sweep
   measures the union with precedence startup > transfer > cpu, and the
   uncovered remainder is queueing (CPU contention, link contention and
   header propagation). By construction every term is non-negative (up to
   float rounding) and the four sum exactly to [dur].

   The clipping makes the result insensitive to events emitted after the
   completion event: any link crossing emitted later (a post-completion
   retransmission) starts at or after [t0 +. dur] and clips to nothing, so
   a streaming analyzer that retires the transaction at its completion
   event computes the same cost bit for bit. *)
let decompose_chain ov ~t0 ~dur links =
  let t1 = t0 +. dur in
  let segs = ref [] in
  let add label a b =
    let a = Float.max a t0 and b = Float.min b t1 in
    if b > a then segs := (label, a, b) :: !segs
  in
  List.iter
    (fun l ->
      if l.cl_local then add `Cpu (l.cl_inject -. ov.local_overhead) l.cl_inject
      else begin
        add `Startup (l.cl_inject -. ov.send_overhead) l.cl_inject;
        List.iter (fun (s, f) -> add `Transfer s f) l.cl_xfers;
        match l.cl_handled with
        | Some h -> add `Startup (h -. ov.recv_overhead) h
        | None -> ()
      end)
    links;
  let pts =
    List.sort_uniq Float.compare
      (t0 :: t1 :: List.concat_map (fun (_, a, b) -> [ a; b ]) !segs)
  in
  let startup = ref 0.0 and transfer = ref 0.0 and cpu = ref 0.0 in
  let rec sweep = function
    | a :: (b :: _ as rest) ->
        let mid = (a +. b) /. 2.0 in
        let active l =
          List.exists (fun (l', x, y) -> l' = l && x <= mid && mid < y) !segs
        in
        let d = b -. a in
        if active `Startup then startup := !startup +. d
        else if active `Transfer then transfer := !transfer +. d
        else if active `Cpu then cpu := !cpu +. d;
        sweep rest
    | _ -> ()
  in
  sweep pts;
  {
    startup_us = !startup;
    transfer_us = !transfer;
    queue_us = dur -. (!startup +. !transfer +. !cpu);
    cpu_us = !cpu;
  }

let decompose ov spans (txn : Spans.txn) =
  decompose_chain ov ~t0:txn.Spans.t_start ~dur:txn.Spans.t_dur
    (List.map chain_link_of_msg (Spans.chain spans txn))

(* Cost of one side-branch message (e.g. an invalidation fan-out hop) from
   its at-completion snapshot. Side branches run concurrently with the
   blocking window, so their terms are attributed per message rather than
   swept as a timeline: overheads -> startup, link occupancy -> transfer,
   local handler cost -> cpu, and the dead time between issue and
   injection (CPU queueing) -> queue. A message still in flight at
   completion is charged for what it had consumed by then. *)
let side_cost ov (s : Spans.side) =
  if s.Spans.s_local then
    {
      startup_us = 0.0;
      transfer_us = 0.0;
      queue_us =
        Float.max 0.0 (s.Spans.s_inject -. s.Spans.s_sent -. ov.local_overhead);
      cpu_us = ov.local_overhead;
    }
  else
    match s.Spans.s_handled with
    | Some h ->
        let startup = ov.send_overhead +. ov.recv_overhead in
        {
          startup_us = startup;
          transfer_us = s.Spans.s_xfer_us;
          queue_us =
            Float.max 0.0 (h -. s.Spans.s_sent -. startup -. s.Spans.s_xfer_us);
          cpu_us = 0.0;
        }
    | None ->
        {
          startup_us = ov.send_overhead;
          transfer_us = s.Spans.s_xfer_us;
          queue_us =
            Float.max 0.0
              (s.Spans.s_inject -. s.Spans.s_sent -. ov.send_overhead);
          cpu_us = 0.0;
        }

let sides_cost ov sides =
  List.fold_left (fun a s -> add_cost a (side_cost ov s)) zero_cost sides

(* ------------------------------------------------------------------ *)
(* Whole-run critical path                                              *)
(* ------------------------------------------------------------------ *)

type critical_path = {
  cp_node : int;  (** the last-finishing processor *)
  cp_end : float;  (** when its final transaction completed *)
  cp_txns : int list;  (** transaction ids along its timeline *)
  cp_cost : cost;
      (** the node's whole timeline: blocking decompositions plus
          inter-transaction gaps (application compute) as [cpu_us] *)
}

(* The makespan is decided by the last-finishing processor; its timeline —
   application compute between transactions plus each transaction's
   blocking decomposition — explains where the run's wall-clock went. *)
let critical_path ov spans =
  match Spans.txns spans with
  | [] -> None
  | all ->
      let last =
        List.fold_left
          (fun acc t -> if txn_end t > txn_end acc then t else acc)
          (List.hd all) all
      in
      let node = last.Spans.t_node in
      let mine =
        List.filter
          (fun (t : Spans.txn) ->
            t.Spans.t_node = node && txn_end t <= txn_end last)
          all
      in
      let mine =
        List.sort (fun a b -> Float.compare a.Spans.t_start b.Spans.t_start) mine
      in
      let cost, _ =
        List.fold_left
          (fun (c, prev_end) t ->
            let gap = Float.max 0.0 (t.Spans.t_start -. prev_end) in
            let c = { c with cpu_us = c.cpu_us +. gap } in
            (add_cost c (decompose ov spans t), txn_end t))
          (zero_cost, 0.0) mine
      in
      Some
        {
          cp_node = node;
          cp_end = txn_end last;
          cp_txns = List.map (fun t -> t.Spans.t_id) mine;
          cp_cost = cost;
        }

(* ------------------------------------------------------------------ *)
(* Traffic profiles                                                     *)
(* ------------------------------------------------------------------ *)

type level_row = {
  lv_level : int;  (** access-tree depth; -1 collects untagged traffic *)
  lv_msgs : int;
  lv_bytes : int;
  lv_local : int;  (** how many of the messages were same-processor hops *)
  lv_crossings : int;  (** directed-link crossings *)
  lv_link_bytes : int;  (** bytes weighted by links crossed *)
}

let level_profile spans =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (m : Spans.msg) ->
      let r =
        match Hashtbl.find_opt tbl m.Spans.level with
        | Some r -> r
        | None ->
            let r =
              ref
                {
                  lv_level = m.Spans.level;
                  lv_msgs = 0;
                  lv_bytes = 0;
                  lv_local = 0;
                  lv_crossings = 0;
                  lv_link_bytes = 0;
                }
            in
            Hashtbl.add tbl m.Spans.level r;
            r
      in
      let nx = List.length m.Spans.xfers in
      r :=
        {
          !r with
          lv_msgs = !r.lv_msgs + 1;
          lv_bytes = !r.lv_bytes + m.Spans.size;
          lv_local = (!r.lv_local + if m.Spans.local then 1 else 0);
          lv_crossings = !r.lv_crossings + nx;
          lv_link_bytes = !r.lv_link_bytes + (nx * m.Spans.size);
        })
    (Spans.msgs spans);
  List.sort
    (fun a b -> compare a.lv_level b.lv_level)
    (Hashtbl.fold (fun _ r acc -> !r :: acc) tbl [])

type link_row = {
  lk_link : int;
  lk_msgs : int;
  lk_bytes : int;
  lk_busy_us : float;
}

let link_rows spans =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (m : Spans.msg) ->
      List.iter
        (fun (link, s, f) ->
          let msgs, bytes, busy =
            Option.value ~default:(0, 0, 0.0) (Hashtbl.find_opt tbl link)
          in
          Hashtbl.replace tbl link
            (msgs + 1, bytes + m.Spans.size, busy +. (f -. s)))
        m.Spans.xfers)
    (Spans.msgs spans);
  Hashtbl.fold
    (fun link (msgs, bytes, busy) acc ->
      { lk_link = link; lk_msgs = msgs; lk_bytes = bytes; lk_busy_us = busy }
      :: acc)
    tbl []

let top_links ?(k = 10) spans =
  let rows =
    List.sort
      (fun a b ->
        match compare b.lk_bytes a.lk_bytes with
        | 0 -> compare a.lk_link b.lk_link
        | c -> c)
      (link_rows spans)
  in
  List.filteri (fun i _ -> i < k) rows

type window = {
  w_start : float;
  w_finish : float;
  w_link_bytes : (int * float) list;
      (** per-link bytes attributed to the window, overlap-proportional;
          ascending link id, zero links omitted *)
}

let end_time spans =
  List.fold_left
    (fun acc (m : Spans.msg) ->
      let acc =
        List.fold_left (fun acc (_, _, f) -> Float.max acc f) acc m.Spans.xfers
      in
      match m.Spans.handled with Some h -> Float.max acc h | None -> acc)
    0.0 (Spans.msgs spans)

let windows ?(n = 8) spans =
  let t_end = end_time spans in
  if t_end <= 0.0 || n <= 0 then []
  else begin
    let w = t_end /. float_of_int n in
    let tables = Array.init n (fun _ -> Hashtbl.create 32) in
    List.iter
      (fun (m : Spans.msg) ->
        List.iter
          (fun (link, s, f) ->
            if f > s then
              let rate = float_of_int m.Spans.size /. (f -. s) in
              let first = max 0 (int_of_float (s /. w))
              and last = min (n - 1) (int_of_float (f /. w)) in
              for i = first to last do
                let lo = Float.max s (float_of_int i *. w)
                and hi = Float.min f (float_of_int (i + 1) *. w) in
                if hi > lo then
                  let prev =
                    Option.value ~default:0.0 (Hashtbl.find_opt tables.(i) link)
                  in
                  Hashtbl.replace tables.(i) link (prev +. (rate *. (hi -. lo)))
              done)
          m.Spans.xfers)
      (Spans.msgs spans);
    List.init n (fun i ->
        {
          w_start = float_of_int i *. w;
          w_finish = float_of_int (i + 1) *. w;
          w_link_bytes =
            List.sort compare
              (Hashtbl.fold (fun l b acc -> (l, b) :: acc) tables.(i) []);
        })
  end

(* ------------------------------------------------------------------ *)
(* Per-operation cost table                                             *)
(* ------------------------------------------------------------------ *)

type op_row = {
  or_op : Trace.dsm_op;
  or_count : int;  (** miss-path transactions of this kind *)
  or_mean_us : float;
  or_max_us : float;
  or_cost : cost;  (** summed decomposition over all of them *)
  or_side_msgs : int;  (** side-branch messages (invalidation fan-out &c.) *)
  or_side_cost : cost;  (** summed side-branch attribution *)
}

let op_order = [ Trace.Read; Write; Lock; Unlock; Barrier; Reduce ]

let op_table ov spans =
  List.filter_map
    (fun op ->
      let mine =
        List.filter (fun (t : Spans.txn) -> t.Spans.t_op = op) (Spans.txns spans)
      in
      match mine with
      | [] -> None
      | _ ->
          let n = List.length mine in
          let sum_dur =
            List.fold_left (fun a t -> a +. t.Spans.t_dur) 0.0 mine
          in
          let max_dur =
            List.fold_left (fun a t -> Float.max a t.Spans.t_dur) 0.0 mine
          in
          let cost =
            List.fold_left
              (fun a t -> add_cost a (decompose ov spans t))
              zero_cost mine
          in
          let side_msgs =
            List.fold_left
              (fun a t -> a + List.length (Spans.sides spans t))
              0 mine
          in
          let side =
            List.fold_left
              (fun a t -> add_cost a (sides_cost ov (Spans.sides spans t)))
              zero_cost mine
          in
          Some
            {
              or_op = op;
              or_count = n;
              or_mean_us = sum_dur /. float_of_int n;
              or_max_us = max_dur;
              or_cost = cost;
              or_side_msgs = side_msgs;
              or_side_cost = side;
            })
    op_order

(* ------------------------------------------------------------------ *)
(* Canonical event folds shared by batch and streaming                  *)
(* ------------------------------------------------------------------ *)

(* End of network activity, folded from the event stream itself: the last
   link release (acks excluded, matching span-based traffic accounting),
   the last handler run, the last local handler. Unlike the span-based
   {!end_time} this sees every delivery of a retransmitted message, so
   batch and streaming agree on it by construction. *)
let end_time_events events =
  List.fold_left
    (fun acc e ->
      match e with
      | Trace.Link_xfer { finish; msg; _ } when msg >= 0 -> Float.max acc finish
      | Trace.Msg_deliver { handled; id; _ } when id >= 0 -> Float.max acc handled
      | Trace.Msg_send { inject; local = true; _ } -> Float.max acc inject
      | _ -> acc)
    0.0 events

(* Incremental per-window per-link byte attribution. Needs the run's end
   time up front to place window boundaries, so streaming uses it as a
   second pass (over the saved trace file or the replayed event list). *)
module Windows_fold = struct
  type t = { n : int; w : float; tables : (int, float) Hashtbl.t array }

  let create ~n ~t_end =
    if n <= 0 || t_end <= 0.0 then { n = 0; w = 0.0; tables = [||] }
    else
      {
        n;
        w = t_end /. float_of_int n;
        tables = Array.init n (fun _ -> Hashtbl.create 32);
      }

  let feed_xfer t ~link ~size ~start:s ~finish:f =
    if t.n > 0 && f > s then begin
      let rate = float_of_int size /. (f -. s) in
      let first = max 0 (int_of_float (s /. t.w))
      and last = min (t.n - 1) (int_of_float (f /. t.w)) in
      for i = first to last do
        let lo = Float.max s (float_of_int i *. t.w)
        and hi = Float.min f (float_of_int (i + 1) *. t.w) in
        if hi > lo then
          let prev =
            Option.value ~default:0.0 (Hashtbl.find_opt t.tables.(i) link)
          in
          Hashtbl.replace t.tables.(i) link (prev +. (rate *. (hi -. lo)))
      done
    end

  let feed t e =
    match e with
    | Trace.Link_xfer { link; msg; size; start; finish; _ } when msg >= 0 ->
        feed_xfer t ~link ~size ~start ~finish
    | _ -> ()

  let rows t =
    List.init t.n (fun i ->
        {
          w_start = float_of_int i *. t.w;
          w_finish = float_of_int (i + 1) *. t.w;
          w_link_bytes =
            List.sort compare
              (Hashtbl.fold (fun l b acc -> (l, b) :: acc) t.tables.(i) []);
        })
end

(* Mutable accumulator for the per-operation table and the whole-run
   critical path, fed one completed transaction at a time in completion
   (= stream emission) order. Both the batch summarizer and the streaming
   analyzer drive it, so their float sums see identical operand order. *)
module Txn_fold = struct
  type op_acc = {
    mutable oa_count : int;
    mutable oa_sum_dur : float;
    mutable oa_max_dur : float;
    mutable oa_cost : cost;
    mutable oa_side_msgs : int;
    mutable oa_side_cost : cost;
  }

  type node_acc = {
    mutable na_cost : cost;
    mutable na_end : float;  (* previous transaction's end on this node *)
    mutable na_txns : int;
  }

  type t = {
    ops : (Trace.dsm_op, op_acc) Hashtbl.t;
    nodes : (int, node_acc) Hashtbl.t;
    mutable n_txns : int;
    mutable best : (int * float) option;  (* (node, end): first strict max *)
  }

  let create () =
    { ops = Hashtbl.create 8; nodes = Hashtbl.create 64; n_txns = 0;
      best = None }

  let feed t ~node ~op ~t_start ~dur ~chain_cost ~side_msgs ~side_cost =
    t.n_txns <- t.n_txns + 1;
    let oa =
      match Hashtbl.find_opt t.ops op with
      | Some oa -> oa
      | None ->
          let oa =
            { oa_count = 0; oa_sum_dur = 0.0; oa_max_dur = 0.0;
              oa_cost = zero_cost; oa_side_msgs = 0; oa_side_cost = zero_cost }
          in
          Hashtbl.add t.ops op oa;
          oa
    in
    oa.oa_count <- oa.oa_count + 1;
    oa.oa_sum_dur <- oa.oa_sum_dur +. dur;
    oa.oa_max_dur <- Float.max oa.oa_max_dur dur;
    oa.oa_cost <- add_cost oa.oa_cost chain_cost;
    oa.oa_side_msgs <- oa.oa_side_msgs + side_msgs;
    oa.oa_side_cost <- add_cost oa.oa_side_cost side_cost;
    let na =
      match Hashtbl.find_opt t.nodes node with
      | Some na -> na
      | None ->
          let na = { na_cost = zero_cost; na_end = 0.0; na_txns = 0 } in
          Hashtbl.add t.nodes node na;
          na
    in
    (* Same fold as {!critical_path}: gaps between a node's transactions
       are application compute (cpu), then the blocking decomposition.
       Completion order per node equals start order (a node's fiber blocks
       on one transaction at a time), so no sort is needed. *)
    let gap = Float.max 0.0 (t_start -. na.na_end) in
    na.na_cost <-
      add_cost { na.na_cost with cpu_us = na.na_cost.cpu_us +. gap } chain_cost;
    na.na_end <- t_start +. dur;
    na.na_txns <- na.na_txns + 1;
    let e = t_start +. dur in
    match t.best with
    | Some (_, best_end) when e <= best_end -> ()
    | _ -> t.best <- Some (node, e)

  let op_rows t =
    List.filter_map
      (fun op ->
        Option.map
          (fun oa ->
            {
              or_op = op;
              or_count = oa.oa_count;
              or_mean_us = oa.oa_sum_dur /. float_of_int oa.oa_count;
              or_max_us = oa.oa_max_dur;
              or_cost = oa.oa_cost;
              or_side_msgs = oa.oa_side_msgs;
              or_side_cost = oa.oa_side_cost;
            })
          (Hashtbl.find_opt t.ops op))
      op_order

  let num_txns t = t.n_txns

  let critical t =
    Option.map
      (fun (node, e) ->
        let na = Hashtbl.find t.nodes node in
        (node, e, na.na_txns, na.na_cost))
      t.best
end

(* ------------------------------------------------------------------ *)
(* Run summary                                                          *)
(* ------------------------------------------------------------------ *)

type critical_summary = {
  sc_node : int;
  sc_end : float;
  sc_txns : int;
  sc_cost : cost;
}

type summary = {
  sm_num_txns : int;
  sm_num_msgs : int;
  sm_end_us : float;
  sm_critical : critical_summary option;
  sm_levels : level_row list;
  sm_top_links : link_row list;
  sm_windows : window list;
  sm_ops : op_row list;
}

(* Per-link totals folded in event-emission order — under faults a
   retransmission's crossings interleave with other messages', and the
   emission order is the one order batch and streaming naturally share. *)
let link_rows_events events =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match e with
      | Trace.Link_xfer { link; msg; size; start; finish; _ } when msg >= 0 ->
          let msgs, bytes, busy =
            Option.value ~default:(0, 0, 0.0) (Hashtbl.find_opt tbl link)
          in
          Hashtbl.replace tbl link
            (msgs + 1, bytes + size, busy +. (finish -. start))
      | _ -> ())
    events;
  Hashtbl.fold
    (fun link (msgs, bytes, busy) acc ->
      { lk_link = link; lk_msgs = msgs; lk_bytes = bytes; lk_busy_us = busy }
      :: acc)
    tbl []

let sort_top_links ~k rows =
  let rows =
    List.sort
      (fun a b ->
        match compare b.lk_bytes a.lk_bytes with
        | 0 -> compare a.lk_link b.lk_link
        | c -> c)
      rows
  in
  List.filteri (fun i _ -> i < k) rows

(* The canonical batch analysis: full span tables in memory, folded in
   the same canonical orders the bounded-memory streaming analyzer uses
   (completion order for transactions, emission order for link traffic),
   so {!Streaming} reproduces it bit for bit. *)
let summarize ?(top_k = 10) ?(num_windows = 8) ov events =
  let spans = Spans.build events in
  let fold = Txn_fold.create () in
  List.iter
    (fun (t : Spans.txn) ->
      let sides = Spans.sides spans t in
      Txn_fold.feed fold ~node:t.Spans.t_node ~op:t.Spans.t_op
        ~t_start:t.Spans.t_start ~dur:t.Spans.t_dur
        ~chain_cost:(decompose ov spans t)
        ~side_msgs:(List.length sides) ~side_cost:(sides_cost ov sides))
    (Spans.txns_completed spans);
  let t_end = end_time_events events in
  let wf = Windows_fold.create ~n:num_windows ~t_end in
  List.iter (Windows_fold.feed wf) events;
  {
    sm_num_txns = Txn_fold.num_txns fold;
    sm_num_msgs = Spans.num_msgs spans;
    sm_end_us = t_end;
    sm_critical =
      Option.map
        (fun (node, e, n, cost) ->
          { sc_node = node; sc_end = e; sc_txns = n; sc_cost = cost })
        (Txn_fold.critical fold);
    sm_levels = level_profile spans;
    sm_top_links = sort_top_links ~k:top_k (link_rows_events events);
    sm_windows = Windows_fold.rows wf;
    sm_ops = Txn_fold.op_rows fold;
  }

(* ------------------------------------------------------------------ *)
(* Reports                                                              *)
(* ------------------------------------------------------------------ *)

let cost_json c =
  Json.Obj
    [
      ("startup_us", Json.Float c.startup_us);
      ("transfer_us", Json.Float c.transfer_us);
      ("queue_us", Json.Float c.queue_us);
      ("cpu_us", Json.Float c.cpu_us);
      ("total_us", Json.Float (total_cost c));
    ]

let level_row_json r =
  Json.Obj
    [
      ("level", Json.Int r.lv_level);
      ("msgs", Json.Int r.lv_msgs);
      ("bytes", Json.Int r.lv_bytes);
      ("local", Json.Int r.lv_local);
      ("crossings", Json.Int r.lv_crossings);
      ("link_bytes", Json.Int r.lv_link_bytes);
    ]

let link_row_json r =
  Json.Obj
    [
      ("link", Json.Int r.lk_link);
      ("msgs", Json.Int r.lk_msgs);
      ("bytes", Json.Int r.lk_bytes);
      ("busy_us", Json.Float r.lk_busy_us);
    ]

let window_json w =
  Json.Obj
    [
      ("start_us", Json.Float w.w_start);
      ("finish_us", Json.Float w.w_finish);
      ( "links",
        Json.List
          (List.map
             (fun (l, b) ->
               Json.Obj [ ("link", Json.Int l); ("bytes", Json.Float b) ])
             w.w_link_bytes) );
    ]

let op_row_json r =
  Json.Obj
    [
      ("op", Json.String (op_name r.or_op));
      ("count", Json.Int r.or_count);
      ("mean_us", Json.Float r.or_mean_us);
      ("max_us", Json.Float r.or_max_us);
      ("cost", cost_json r.or_cost);
      ("side_msgs", Json.Int r.or_side_msgs);
      ("side_cost", cost_json r.or_side_cost);
    ]

let to_json ?(meta = []) ?(top_k = 10) ?(num_windows = 8) ov spans =
  let critical =
    match critical_path ov spans with
    | None -> Json.Null
    | Some cp ->
        Json.Obj
          [
            ("node", Json.Int cp.cp_node);
            ("end_us", Json.Float cp.cp_end);
            ("txns", Json.Int (List.length cp.cp_txns));
            ("cost", cost_json cp.cp_cost);
          ]
  in
  Json.Obj
    (meta
    @ [
        ("num_txns", Json.Int (List.length (Spans.txns spans)));
        ("num_msgs", Json.Int (Spans.num_msgs spans));
        ("critical_path", critical);
        ("levels", Json.List (List.map level_row_json (level_profile spans)));
        ("top_links",
         Json.List (List.map link_row_json (top_links ~k:top_k spans)));
        ("windows",
         Json.List (List.map window_json (windows ~n:num_windows spans)));
        ("ops", Json.List (List.map op_row_json (op_table ov spans)));
      ])

let summary_to_json ?(meta = []) s =
  let critical =
    match s.sm_critical with
    | None -> Json.Null
    | Some c ->
        Json.Obj
          [
            ("node", Json.Int c.sc_node);
            ("end_us", Json.Float c.sc_end);
            ("txns", Json.Int c.sc_txns);
            ("cost", cost_json c.sc_cost);
          ]
  in
  Json.Obj
    (meta
    @ [
        ("num_txns", Json.Int s.sm_num_txns);
        ("num_msgs", Json.Int s.sm_num_msgs);
        ("end_us", Json.Float s.sm_end_us);
        ("critical_path", critical);
        ("levels", Json.List (List.map level_row_json s.sm_levels));
        ("top_links", Json.List (List.map link_row_json s.sm_top_links));
        ("windows", Json.List (List.map window_json s.sm_windows));
        ("ops", Json.List (List.map op_row_json s.sm_ops));
      ])

let pct part whole = if whole <= 0.0 then 0.0 else 100.0 *. part /. whole

let render_cost c =
  let t = total_cost c in
  Printf.sprintf
    "startup %.0f us (%.1f%%) | transfer %.0f us (%.1f%%) | queue %.0f us (%.1f%%) | cpu %.0f us (%.1f%%)"
    c.startup_us (pct c.startup_us t) c.transfer_us (pct c.transfer_us t)
    c.queue_us (pct c.queue_us t) c.cpu_us (pct c.cpu_us t)

let render_sections b ~levels ~links ~ops =
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  if levels <> [] then begin
    pf "\ntraffic by access-tree level (-1 = untagged):\n";
    pf "  %5s %8s %12s %7s %10s %12s\n" "level" "msgs" "bytes" "local"
      "crossings" "link-bytes";
    List.iter
      (fun r ->
        pf "  %5d %8d %12d %7d %10d %12d\n" r.lv_level r.lv_msgs r.lv_bytes
          r.lv_local r.lv_crossings r.lv_link_bytes)
      levels
  end;
  if links <> [] then begin
    pf "\ntop %d congested directed links:\n" (List.length links);
    pf "  %6s %8s %12s %12s\n" "link" "msgs" "bytes" "busy-us";
    List.iter
      (fun r ->
        pf "  %6d %8d %12d %12.0f\n" r.lk_link r.lk_msgs r.lk_bytes
          r.lk_busy_us)
      links
  end;
  if ops <> [] then begin
    pf "\nper-operation cost decomposition (miss path):\n";
    pf "  %-8s %7s %10s %10s   %s\n" "op" "count" "mean-us" "max-us"
      "cost decomposition";
    List.iter
      (fun r ->
        pf "  %-8s %7d %10.0f %10.0f   %s\n" (op_name r.or_op) r.or_count
          r.or_mean_us r.or_max_us (render_cost r.or_cost);
        if r.or_side_msgs > 0 then
          pf "  %-8s %7s side branches: %d msgs, %s\n" "" "" r.or_side_msgs
            (render_cost r.or_side_cost))
      ops
  end

let render ?(top_k = 10) ov spans =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "transactions: %d   messages: %d\n"
    (List.length (Spans.txns spans))
    (Spans.num_msgs spans);
  (match critical_path ov spans with
  | None -> pf "critical path: (no transactions)\n"
  | Some cp ->
      pf "critical path: node %d, makespan %.0f us over %d transactions\n"
        cp.cp_node cp.cp_end (List.length cp.cp_txns);
      pf "  %s\n" (render_cost cp.cp_cost));
  render_sections b ~levels:(level_profile spans)
    ~links:(top_links ~k:top_k spans) ~ops:(op_table ov spans);
  Buffer.contents b

let render_summary s =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "transactions: %d   messages: %d\n" s.sm_num_txns s.sm_num_msgs;
  (match s.sm_critical with
  | None -> pf "critical path: (no transactions)\n"
  | Some c ->
      pf "critical path: node %d, makespan %.0f us over %d transactions\n"
        c.sc_node c.sc_end c.sc_txns;
      pf "  %s\n" (render_cost c.sc_cost));
  render_sections b ~levels:s.sm_levels ~links:s.sm_top_links ~ops:s.sm_ops;
  Buffer.contents b
