(* Critical-path extraction and cost attribution over span trees.

   The machine's overhead constants arrive as parameters: [Diva_obs] sits
   below the simulator in the dependency order, so it cannot read
   [Diva_simnet.Machine] itself. *)

type overheads = {
  send_overhead : float;
  recv_overhead : float;
  local_overhead : float;
}

type cost = {
  startup_us : float;
  transfer_us : float;
  queue_us : float;
  cpu_us : float;
}

let zero_cost = { startup_us = 0.0; transfer_us = 0.0; queue_us = 0.0; cpu_us = 0.0 }

let add_cost a b =
  {
    startup_us = a.startup_us +. b.startup_us;
    transfer_us = a.transfer_us +. b.transfer_us;
    queue_us = a.queue_us +. b.queue_us;
    cpu_us = a.cpu_us +. b.cpu_us;
  }

let total_cost c = c.startup_us +. c.transfer_us +. c.queue_us +. c.cpu_us

let op_name = function
  | Trace.Read -> "read"
  | Trace.Write -> "write"
  | Trace.Lock -> "lock"
  | Trace.Unlock -> "unlock"
  | Trace.Barrier -> "barrier"
  | Trace.Reduce -> "reduce"

let txn_end (x : Spans.txn) = x.Spans.t_start +. x.Spans.t_dur

(* Exact decomposition of one transaction's blocking window [t0, t0+dur]:
   every message on the completing causal chain contributes labeled time
   segments (send/receive overheads -> startup, link occupancy -> transfer,
   local handler cost -> cpu), clipped to the window. A boundary sweep
   measures the union with precedence startup > transfer > cpu, and the
   uncovered remainder is queueing (CPU contention, link contention and
   header propagation). By construction every term is non-negative (up to
   float rounding) and the four sum exactly to [t_dur]. *)
let decompose ov spans (txn : Spans.txn) =
  let t0 = txn.Spans.t_start and t1 = txn_end txn in
  let segs = ref [] in
  let add label a b =
    let a = Float.max a t0 and b = Float.min b t1 in
    if b > a then segs := (label, a, b) :: !segs
  in
  List.iter
    (fun (m : Spans.msg) ->
      if m.Spans.local then
        add `Cpu (m.Spans.inject -. ov.local_overhead) m.Spans.inject
      else begin
        add `Startup (m.Spans.inject -. ov.send_overhead) m.Spans.inject;
        List.iter (fun (_, s, f) -> add `Transfer s f) m.Spans.xfers;
        match m.Spans.handled with
        | Some h -> add `Startup (h -. ov.recv_overhead) h
        | None -> ()
      end)
    (Spans.chain spans txn);
  let pts =
    List.sort_uniq Float.compare
      (t0 :: t1 :: List.concat_map (fun (_, a, b) -> [ a; b ]) !segs)
  in
  let startup = ref 0.0 and transfer = ref 0.0 and cpu = ref 0.0 in
  let rec sweep = function
    | a :: (b :: _ as rest) ->
        let mid = (a +. b) /. 2.0 in
        let active l =
          List.exists (fun (l', x, y) -> l' = l && x <= mid && mid < y) !segs
        in
        let d = b -. a in
        if active `Startup then startup := !startup +. d
        else if active `Transfer then transfer := !transfer +. d
        else if active `Cpu then cpu := !cpu +. d;
        sweep rest
    | _ -> ()
  in
  sweep pts;
  {
    startup_us = !startup;
    transfer_us = !transfer;
    queue_us = txn.Spans.t_dur -. (!startup +. !transfer +. !cpu);
    cpu_us = !cpu;
  }

(* ------------------------------------------------------------------ *)
(* Whole-run critical path                                              *)
(* ------------------------------------------------------------------ *)

type critical_path = {
  cp_node : int;  (** the last-finishing processor *)
  cp_end : float;  (** when its final transaction completed *)
  cp_txns : int list;  (** transaction ids along its timeline *)
  cp_cost : cost;
      (** the node's whole timeline: blocking decompositions plus
          inter-transaction gaps (application compute) as [cpu_us] *)
}

(* The makespan is decided by the last-finishing processor; its timeline —
   application compute between transactions plus each transaction's
   blocking decomposition — explains where the run's wall-clock went. *)
let critical_path ov spans =
  match Spans.txns spans with
  | [] -> None
  | all ->
      let last =
        List.fold_left
          (fun acc t -> if txn_end t > txn_end acc then t else acc)
          (List.hd all) all
      in
      let node = last.Spans.t_node in
      let mine =
        List.filter
          (fun (t : Spans.txn) ->
            t.Spans.t_node = node && txn_end t <= txn_end last)
          all
      in
      let mine =
        List.sort (fun a b -> Float.compare a.Spans.t_start b.Spans.t_start) mine
      in
      let cost, _ =
        List.fold_left
          (fun (c, prev_end) t ->
            let gap = Float.max 0.0 (t.Spans.t_start -. prev_end) in
            let c = { c with cpu_us = c.cpu_us +. gap } in
            (add_cost c (decompose ov spans t), txn_end t))
          (zero_cost, 0.0) mine
      in
      Some
        {
          cp_node = node;
          cp_end = txn_end last;
          cp_txns = List.map (fun t -> t.Spans.t_id) mine;
          cp_cost = cost;
        }

(* ------------------------------------------------------------------ *)
(* Traffic profiles                                                     *)
(* ------------------------------------------------------------------ *)

type level_row = {
  lv_level : int;  (** access-tree depth; -1 collects untagged traffic *)
  lv_msgs : int;
  lv_bytes : int;
  lv_local : int;  (** how many of the messages were same-processor hops *)
  lv_crossings : int;  (** directed-link crossings *)
  lv_link_bytes : int;  (** bytes weighted by links crossed *)
}

let level_profile spans =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (m : Spans.msg) ->
      let r =
        match Hashtbl.find_opt tbl m.Spans.level with
        | Some r -> r
        | None ->
            let r =
              ref
                {
                  lv_level = m.Spans.level;
                  lv_msgs = 0;
                  lv_bytes = 0;
                  lv_local = 0;
                  lv_crossings = 0;
                  lv_link_bytes = 0;
                }
            in
            Hashtbl.add tbl m.Spans.level r;
            r
      in
      let nx = List.length m.Spans.xfers in
      r :=
        {
          !r with
          lv_msgs = !r.lv_msgs + 1;
          lv_bytes = !r.lv_bytes + m.Spans.size;
          lv_local = (!r.lv_local + if m.Spans.local then 1 else 0);
          lv_crossings = !r.lv_crossings + nx;
          lv_link_bytes = !r.lv_link_bytes + (nx * m.Spans.size);
        })
    (Spans.msgs spans);
  List.sort
    (fun a b -> compare a.lv_level b.lv_level)
    (Hashtbl.fold (fun _ r acc -> !r :: acc) tbl [])

type link_row = {
  lk_link : int;
  lk_msgs : int;
  lk_bytes : int;
  lk_busy_us : float;
}

let link_rows spans =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (m : Spans.msg) ->
      List.iter
        (fun (link, s, f) ->
          let msgs, bytes, busy =
            Option.value ~default:(0, 0, 0.0) (Hashtbl.find_opt tbl link)
          in
          Hashtbl.replace tbl link
            (msgs + 1, bytes + m.Spans.size, busy +. (f -. s)))
        m.Spans.xfers)
    (Spans.msgs spans);
  Hashtbl.fold
    (fun link (msgs, bytes, busy) acc ->
      { lk_link = link; lk_msgs = msgs; lk_bytes = bytes; lk_busy_us = busy }
      :: acc)
    tbl []

let top_links ?(k = 10) spans =
  let rows =
    List.sort
      (fun a b ->
        match compare b.lk_bytes a.lk_bytes with
        | 0 -> compare a.lk_link b.lk_link
        | c -> c)
      (link_rows spans)
  in
  List.filteri (fun i _ -> i < k) rows

type window = {
  w_start : float;
  w_finish : float;
  w_link_bytes : (int * float) list;
      (** per-link bytes attributed to the window, overlap-proportional;
          ascending link id, zero links omitted *)
}

let end_time spans =
  List.fold_left
    (fun acc (m : Spans.msg) ->
      let acc =
        List.fold_left (fun acc (_, _, f) -> Float.max acc f) acc m.Spans.xfers
      in
      match m.Spans.handled with Some h -> Float.max acc h | None -> acc)
    0.0 (Spans.msgs spans)

let windows ?(n = 8) spans =
  let t_end = end_time spans in
  if t_end <= 0.0 || n <= 0 then []
  else begin
    let w = t_end /. float_of_int n in
    let tables = Array.init n (fun _ -> Hashtbl.create 32) in
    List.iter
      (fun (m : Spans.msg) ->
        List.iter
          (fun (link, s, f) ->
            if f > s then
              let rate = float_of_int m.Spans.size /. (f -. s) in
              let first = max 0 (int_of_float (s /. w))
              and last = min (n - 1) (int_of_float (f /. w)) in
              for i = first to last do
                let lo = Float.max s (float_of_int i *. w)
                and hi = Float.min f (float_of_int (i + 1) *. w) in
                if hi > lo then
                  let prev =
                    Option.value ~default:0.0 (Hashtbl.find_opt tables.(i) link)
                  in
                  Hashtbl.replace tables.(i) link (prev +. (rate *. (hi -. lo)))
              done)
          m.Spans.xfers)
      (Spans.msgs spans);
    List.init n (fun i ->
        {
          w_start = float_of_int i *. w;
          w_finish = float_of_int (i + 1) *. w;
          w_link_bytes =
            List.sort compare
              (Hashtbl.fold (fun l b acc -> (l, b) :: acc) tables.(i) []);
        })
  end

(* ------------------------------------------------------------------ *)
(* Per-operation cost table                                             *)
(* ------------------------------------------------------------------ *)

type op_row = {
  or_op : Trace.dsm_op;
  or_count : int;  (** miss-path transactions of this kind *)
  or_mean_us : float;
  or_max_us : float;
  or_cost : cost;  (** summed decomposition over all of them *)
}

let op_table ov spans =
  let order = [ Trace.Read; Write; Lock; Unlock; Barrier; Reduce ] in
  List.filter_map
    (fun op ->
      let mine =
        List.filter (fun (t : Spans.txn) -> t.Spans.t_op = op) (Spans.txns spans)
      in
      match mine with
      | [] -> None
      | _ ->
          let n = List.length mine in
          let sum_dur =
            List.fold_left (fun a t -> a +. t.Spans.t_dur) 0.0 mine
          in
          let max_dur =
            List.fold_left (fun a t -> Float.max a t.Spans.t_dur) 0.0 mine
          in
          let cost =
            List.fold_left
              (fun a t -> add_cost a (decompose ov spans t))
              zero_cost mine
          in
          Some
            {
              or_op = op;
              or_count = n;
              or_mean_us = sum_dur /. float_of_int n;
              or_max_us = max_dur;
              or_cost = cost;
            })
    order

(* ------------------------------------------------------------------ *)
(* Reports                                                              *)
(* ------------------------------------------------------------------ *)

let cost_json c =
  Json.Obj
    [
      ("startup_us", Json.Float c.startup_us);
      ("transfer_us", Json.Float c.transfer_us);
      ("queue_us", Json.Float c.queue_us);
      ("cpu_us", Json.Float c.cpu_us);
      ("total_us", Json.Float (total_cost c));
    ]

let to_json ?(meta = []) ?(top_k = 10) ?(num_windows = 8) ov spans =
  let levels =
    Json.List
      (List.map
         (fun r ->
           Json.Obj
             [
               ("level", Json.Int r.lv_level);
               ("msgs", Json.Int r.lv_msgs);
               ("bytes", Json.Int r.lv_bytes);
               ("local", Json.Int r.lv_local);
               ("crossings", Json.Int r.lv_crossings);
               ("link_bytes", Json.Int r.lv_link_bytes);
             ])
         (level_profile spans))
  in
  let links =
    Json.List
      (List.map
         (fun r ->
           Json.Obj
             [
               ("link", Json.Int r.lk_link);
               ("msgs", Json.Int r.lk_msgs);
               ("bytes", Json.Int r.lk_bytes);
               ("busy_us", Json.Float r.lk_busy_us);
             ])
         (top_links ~k:top_k spans))
  in
  let wins =
    Json.List
      (List.map
         (fun w ->
           Json.Obj
             [
               ("start_us", Json.Float w.w_start);
               ("finish_us", Json.Float w.w_finish);
               ( "links",
                 Json.List
                   (List.map
                      (fun (l, b) ->
                        Json.Obj
                          [ ("link", Json.Int l); ("bytes", Json.Float b) ])
                      w.w_link_bytes) );
             ])
         (windows ~n:num_windows spans))
  in
  let ops =
    Json.List
      (List.map
         (fun r ->
           Json.Obj
             [
               ("op", Json.String (op_name r.or_op));
               ("count", Json.Int r.or_count);
               ("mean_us", Json.Float r.or_mean_us);
               ("max_us", Json.Float r.or_max_us);
               ("cost", cost_json r.or_cost);
             ])
         (op_table ov spans))
  in
  let critical =
    match critical_path ov spans with
    | None -> Json.Null
    | Some cp ->
        Json.Obj
          [
            ("node", Json.Int cp.cp_node);
            ("end_us", Json.Float cp.cp_end);
            ("txns", Json.Int (List.length cp.cp_txns));
            ("cost", cost_json cp.cp_cost);
          ]
  in
  Json.Obj
    (meta
    @ [
        ("num_txns", Json.Int (List.length (Spans.txns spans)));
        ("num_msgs", Json.Int (Spans.num_msgs spans));
        ("critical_path", critical);
        ("levels", levels);
        ("top_links", links);
        ("windows", wins);
        ("ops", ops);
      ])

let pct part whole = if whole <= 0.0 then 0.0 else 100.0 *. part /. whole

let render_cost c =
  let t = total_cost c in
  Printf.sprintf
    "startup %.0f us (%.1f%%) | transfer %.0f us (%.1f%%) | queue %.0f us (%.1f%%) | cpu %.0f us (%.1f%%)"
    c.startup_us (pct c.startup_us t) c.transfer_us (pct c.transfer_us t)
    c.queue_us (pct c.queue_us t) c.cpu_us (pct c.cpu_us t)

let render ?(top_k = 10) ov spans =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "transactions: %d   messages: %d\n"
    (List.length (Spans.txns spans))
    (Spans.num_msgs spans);
  (match critical_path ov spans with
  | None -> pf "critical path: (no transactions)\n"
  | Some cp ->
      pf "critical path: node %d, makespan %.0f us over %d transactions\n"
        cp.cp_node cp.cp_end (List.length cp.cp_txns);
      pf "  %s\n" (render_cost cp.cp_cost));
  let levels = level_profile spans in
  if levels <> [] then begin
    pf "\ntraffic by access-tree level (-1 = untagged):\n";
    pf "  %5s %8s %12s %7s %10s %12s\n" "level" "msgs" "bytes" "local"
      "crossings" "link-bytes";
    List.iter
      (fun r ->
        pf "  %5d %8d %12d %7d %10d %12d\n" r.lv_level r.lv_msgs r.lv_bytes
          r.lv_local r.lv_crossings r.lv_link_bytes)
      levels
  end;
  let links = top_links ~k:top_k spans in
  if links <> [] then begin
    pf "\ntop %d congested directed links:\n" (List.length links);
    pf "  %6s %8s %12s %12s\n" "link" "msgs" "bytes" "busy-us";
    List.iter
      (fun r ->
        pf "  %6d %8d %12d %12.0f\n" r.lk_link r.lk_msgs r.lk_bytes
          r.lk_busy_us)
      links
  end;
  let ops = op_table ov spans in
  if ops <> [] then begin
    pf "\nper-operation cost decomposition (miss path):\n";
    pf "  %-8s %7s %10s %10s   %s\n" "op" "count" "mean-us" "max-us"
      "cost decomposition";
    List.iter
      (fun r ->
        pf "  %-8s %7d %10.0f %10.0f   %s\n" (op_name r.or_op) r.or_count
          r.or_mean_us r.or_max_us (render_cost r.or_cost))
      ops
  end;
  Buffer.contents b
