(** Minimal JSON document builder (writer only, no parser).

    The observability artifacts — Chrome traces, run manifests, benchmark
    snapshots — are plain JSON files; this module avoids a dependency on an
    external JSON library. Non-finite floats serialise as [null] so the
    output is always standard-compliant. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_buffer : Buffer.t -> t -> unit

val to_file : string -> t -> unit
(** Write the document followed by a trailing newline. *)
