(** Minimal JSON document builder (writer only, no parser).

    The observability artifacts — Chrome traces, run manifests, benchmark
    snapshots — are plain JSON files; this module avoids a dependency on an
    external JSON library. Non-finite floats serialise as [null] so the
    output is always standard-compliant. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_buffer : Buffer.t -> t -> unit

val to_file : string -> t -> unit
(** Write the document followed by a trailing newline. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (the whole string). Numbers without a
    fractional part parse as [Int], everything else as [Float]; [\u]
    escapes decode to UTF-8. Intended for reading back the artifacts this
    module writes (e.g. workload trace files), not as a general-purpose
    JSON parser. *)

(** {2 Accessors} (total: [None] on a type mismatch) *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing keys and non-objects. *)

val to_int : t -> int option
(** Also accepts integral floats (the writer prints [2.0] as [2]). *)

val to_float : t -> float option
(** Accepts [Int] too. *)

val to_str : t -> string option
val to_bool : t -> bool option
