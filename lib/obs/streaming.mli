(** Bounded-memory streaming analysis and the on-disk JSONL trace format.

    The batch pipeline ({!Spans.build} + {!Analysis}) holds every message
    record of a run in memory, which caps how big a run can be dissected
    after the fact. This engine folds the same event stream incrementally:
    traffic profiles are event-self-contained sums, and each transaction
    is decomposed — completing chain and side branches — the moment its
    completion event passes, after which its message records are freed.
    Peak residency is O(concurrent transactions x protocol fan-out),
    independent of run length, and {!peak_msgs} exposes the high-water
    mark so harnesses can assert boundedness.

    The resulting {!Analysis.summary} is bit-identical (floats included)
    to [Analysis.summarize] over the same events: both sides fold
    transactions in completion order and traffic in emission order, take
    side-branch snapshots at the completion event, and the window
    clipping of {!Analysis.decompose_chain} makes post-completion
    retransmission crossings invisible to cost attribution (tested).

    The second half of the module is a versioned JSONL trace format —
    header line plus one compact JSON event per line — written by a
    {!Trace.stream} sink during the run ({!file_sink}) and re-analyzed
    later by {!analyze_file} without re-simulating. *)

type t

val create :
  ?top_k:int -> ?num_windows:int -> ?ring:int -> Analysis.overheads -> t
(** [ring] (default 1024) bounds the set of recently-completed transaction
    ids remembered to keep stray post-completion sends from repopulating
    the record table; eviction can only delay freeing such a record until
    {!finalize}, never change computed values. *)

val feed : t -> Trace.event -> unit

val sink : t -> Trace.sink
(** [Trace.stream (feed t)]: attach the analyzer directly to a run. *)

val events_seen : t -> int
val num_msgs : t -> int

val live_msgs : t -> int
(** Message records currently retained (messages of not-yet-completed
    transactions). *)

val peak_msgs : t -> int
(** High-water mark of {!live_msgs} — the analyzer's peak residency. *)

val end_time : t -> float
(** {!Analysis.end_time_events} of the stream so far — the time basis for
    the window boundaries placed at {!finalize}. *)

val num_windows : t -> int

val finalize : ?windows:Analysis.window list -> t -> Analysis.summary
(** Non-destructive. When [windows] is omitted, the windowed link series
    is folded here from the crossings retained during the pass (four
    scalars per crossing; none retained when [num_windows <= 0]) — the
    same operands in the same order a second {!Analysis.Windows_fold}
    pass over the source would see, so the rows are bit-identical.
    Passing [windows] overrides that with externally computed rows. *)

val analyze_events :
  ?top_k:int ->
  ?num_windows:int ->
  ?ring:int ->
  Analysis.overheads ->
  Trace.event list ->
  Analysis.summary * int
(** One pass over an in-memory event list; returns the summary and the
    peak message-record residency. *)

(** {2 On-disk JSONL trace format}

    Line 1 is a header object [{"format":"diva-event-trace","version":1,
    "app":...,"dims":[...],"strategy":...,"seed":...,"overheads":
    {"send_us":...,"recv_us":...,"local_us":...},"params":{...}}]; every
    later line is one event encoded by {!Trace.event_to_json}. Floats are
    printed round-trip exactly ({!Json}), so offline analysis of a saved
    trace is bit-identical to analyzing the live run. Readers reject
    unknown formats and versions newer than {!current_version}. *)

val format_name : string
val current_version : int

type header = {
  h_version : int;
  h_app : string;
  h_dims : int array;
  h_strategy : string;
  h_seed : int;
  h_overheads : Analysis.overheads;
      (** machine overheads of the recorded run, so offline analysis needs
          no access to the simulator's machine model *)
  h_params : (string * Json.t) list;  (** free-form run parameters *)
}

val make_header :
  ?params:(string * Json.t) list ->
  app:string ->
  dims:int array ->
  strategy:string ->
  seed:int ->
  overheads:Analysis.overheads ->
  unit ->
  header

val header_json : header -> Json.t
val parse_header : string -> (header, string) result

val write_header : out_channel -> header -> unit

val file_sink : out_channel -> header -> Trace.sink
(** Write the header now and every emitted event as one line, without
    buffering — recording costs O(1) memory. The caller closes the
    channel after the run. *)

val event_of_json : Json.t -> (Trace.event, string) result

val iter_file : string -> f:(Trace.event -> unit) -> (header, string) result
(** Parse the header, then apply [f] to every event line in order,
    reading one line at a time. Blank lines are skipped. *)

val probe : string -> (unit, string) result
(** Validate that the file exists and its first line is a parseable
    header of a supported version — cheap enough for argument parsing. *)

val analyze_file :
  ?top_k:int ->
  ?num_windows:int ->
  ?ring:int ->
  string ->
  (header * Analysis.summary * int, string) result
(** Full offline post-mortem of a saved trace in a single pass: the file
    is read once, and the windowed link series folds at the end from the
    crossings retained along the way. Returns the header, a summary
    bit-identical to analyzing the live run, and the peak message-record
    residency. *)

(** {2 Multi-run merge / compaction}

    [divasim trace merge] combines several single-run trace files into
    one time-ordered stream for fleet-level analysis. The merged file is
    its own format (["diva-event-trace-merged"], version 1): the first
    line is a header carrying every input's original header, and every
    event line gains a leading ["run"] field naming the input it came
    from (0-based, in argument order). *)

val merged_format_name : string
val merged_version : int

type merge_stats = {
  ms_runs : int;  (** number of input files merged *)
  ms_events : int;  (** event lines written to the output *)
  ms_dropped : int;  (** events removed by compaction (0 when off) *)
}

val merge_files :
  ?compact:bool ->
  inputs:string list ->
  output:string ->
  unit ->
  (merge_stats, string) result
(** K-way merge of the input traces into [output], ordered by event
    timestamp with the run index as tie-break; within one run the
    original emission order is preserved exactly, so the output is
    deterministic. With [compact] (default off), each run is first
    scanned for its quiescence point — the issue time of its first DSM
    access — and events before it are dropped as setup noise, except
    {!Trace.Var_decl} declarations, which always survive. Inputs are
    validated (existing file, parseable header) before the output is
    opened. *)
