(* Fold the flat trace-event stream into causally-linked span trees: one
   record per message (with its link-occupancy intervals) and one per DSM
   transaction. Pure data reshaping — no simulation types involved. *)

type msg = {
  id : int;
  parent : int;
  txn : int;
  src : int;
  dst : int;
  size : int;
  local : bool;
  level : int;
  sent : float;
  inject : float;
  delivered : float option;
  handled : float option;
  xfers : (int * float * float) list;  (* (link, start, finish), route order *)
  retries : int;
  losses : int;
}

type txn = {
  t_id : int;
  t_node : int;
  t_op : Trace.dsm_op;
  t_var : int;
  t_var_name : string;
  t_size : int;
  t_start : float;
  t_dur : float;
  t_completed_by : int;
}

type t = { by_id : (int, msg) Hashtbl.t; txn_list : txn list }

(* Mutable build-time accumulator, frozen into [msg] at the end. *)
type acc = {
  a_parent : int;
  a_txn : int;
  a_src : int;
  a_dst : int;
  a_size : int;
  a_local : bool;
  a_level : int;
  a_sent : float;
  a_inject : float;
  mutable a_delivered : float option;
  mutable a_handled : float option;
  mutable a_xfers : (int * float * float) list;  (* reversed *)
  mutable a_retries : int;
  mutable a_losses : int;
}

let build events =
  let accs : (int, acc) Hashtbl.t = Hashtbl.create 1024 in
  let txns = ref [] in
  List.iter
    (fun e ->
      match e with
      | Trace.Msg_send
          { ts; id; parent; txn; inject; level; src; dst; size; local } ->
          Hashtbl.replace accs id
            {
              a_parent = parent;
              a_txn = txn;
              a_src = src;
              a_dst = dst;
              a_size = size;
              a_local = local;
              a_level = level;
              a_sent = ts;
              a_inject = inject;
              (* A local message's handler runs at [inject]; there is no
                 separate delivery event. *)
              a_delivered = (if local then Some inject else None);
              a_handled = (if local then Some inject else None);
              a_xfers = [];
              a_retries = 0;
              a_losses = 0;
            }
      | Trace.Link_xfer { start; finish; link; msg; _ } -> (
          (* Acks carry ids with no Msg_send; their link traffic is not part
             of any span tree. *)
          match Hashtbl.find_opt accs msg with
          | Some a -> a.a_xfers <- (link, start, finish) :: a.a_xfers
          | None -> ())
      | Trace.Msg_deliver { id; ts; handled; _ } -> (
          match Hashtbl.find_opt accs id with
          | Some a when a.a_delivered = None ->
              (* Retransmission duplicates keep the first delivery. *)
              a.a_delivered <- Some ts;
              a.a_handled <- Some handled
          | _ -> ())
      | Trace.Msg_retry { msg; _ } -> (
          match Hashtbl.find_opt accs msg with
          | Some a -> a.a_retries <- a.a_retries + 1
          | None -> ())
      | Trace.Msg_lost { msg; _ } -> (
          match Hashtbl.find_opt accs msg with
          | Some a -> a.a_losses <- a.a_losses + 1
          | None -> ())
      | Trace.Dsm_access
          { ts; dur; node; var; var_name; op; size; txn; completed_by; _ }
        when txn >= 0 ->
          txns :=
            {
              t_id = txn;
              t_node = node;
              t_op = op;
              t_var = var;
              t_var_name = var_name;
              t_size = size;
              t_start = ts;
              t_dur = dur;
              t_completed_by = completed_by;
            }
            :: !txns
      | _ -> ())
    events;
  let by_id = Hashtbl.create (Hashtbl.length accs) in
  Hashtbl.iter
    (fun id a ->
      Hashtbl.replace by_id id
        {
          id;
          parent = a.a_parent;
          txn = a.a_txn;
          src = a.a_src;
          dst = a.a_dst;
          size = a.a_size;
          local = a.a_local;
          level = a.a_level;
          sent = a.a_sent;
          inject = a.a_inject;
          delivered = a.a_delivered;
          handled = a.a_handled;
          xfers = List.rev a.a_xfers;
          retries = a.a_retries;
          losses = a.a_losses;
        })
    accs;
  let txn_list =
    List.sort (fun a b -> compare a.t_id b.t_id) (List.rev !txns)
  in
  { by_id; txn_list }

let msg t id = Hashtbl.find_opt t.by_id id
let txns t = t.txn_list
let num_msgs t = Hashtbl.length t.by_id

let msgs t =
  List.sort
    (fun a b -> compare a.id b.id)
    (Hashtbl.fold (fun _ m acc -> m :: acc) t.by_id [])

let msgs_of_txn t txn_id =
  List.filter (fun m -> m.txn = txn_id) (msgs t)

(* Critical-path chain of a transaction: from the completing message walk
   the parent links backwards while still inside the transaction. Parent
   ids are strictly smaller than child ids (issue order), so the walk
   terminates; the first message whose [txn] differs belongs to the
   operation that merely unparked this one and is excluded. Returned in
   causal (oldest-first) order. *)
let chain t (txn : txn) =
  let rec go acc prev id =
    if id < 0 || id >= prev then acc
    else
      match Hashtbl.find_opt t.by_id id with
      | Some m when m.txn = txn.t_id -> go (m :: acc) id m.parent
      | _ -> acc
  in
  go [] max_int txn.t_completed_by
