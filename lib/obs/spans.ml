(* Fold the flat trace-event stream into causally-linked span trees: one
   record per message (with its link-occupancy intervals) and one per DSM
   transaction. Pure data reshaping — no simulation types involved. *)

type msg = {
  id : int;
  parent : int;
  txn : int;
  src : int;
  dst : int;
  size : int;
  local : bool;
  level : int;
  sent : float;
  inject : float;
  delivered : float option;
  handled : float option;
  xfers : (int * float * float) list;  (* (link, start, finish), route order *)
  retries : int;
  losses : int;
}

type txn = {
  t_id : int;
  t_node : int;
  t_op : Trace.dsm_op;
  t_var : int;
  t_var_name : string;
  t_size : int;
  t_start : float;
  t_dur : float;
  t_completed_by : int;
}

(* Snapshot of a side-branch message (e.g. invalidation fan-out) as it
   looked when its transaction's completion event passed in the stream:
   deliveries and link crossings that had not yet been emitted are absent.
   This at-completion view — not the final record — is the canonical one,
   because a bounded-memory streaming analyzer retires the transaction at
   that point (see Streaming); taking the same cut here keeps batch and
   streaming attribution bit-identical. *)
type side = {
  s_id : int;
  s_local : bool;
  s_sent : float;
  s_inject : float;
  s_handled : float option;
  s_xfer_us : float;  (* summed link occupancy emitted by completion *)
}

type t = {
  by_id : (int, msg) Hashtbl.t;
  txn_list : txn list;  (* ascending id *)
  txn_seq : txn list;  (* emission (= completion) order *)
  sides_tbl : (int, side list) Hashtbl.t;  (* txn id -> ascending msg id *)
}

(* Mutable build-time accumulator, frozen into [msg] at the end. *)
type acc = {
  a_parent : int;
  a_txn : int;
  a_src : int;
  a_dst : int;
  a_size : int;
  a_local : bool;
  a_level : int;
  a_sent : float;
  a_inject : float;
  mutable a_delivered : float option;
  mutable a_handled : float option;
  mutable a_xfers : (int * float * float) list;  (* reversed *)
  mutable a_retries : int;
  mutable a_losses : int;
}

(* Walk the parent chain of [completed_by] backwards through the build-time
   accumulators while still inside [txn_id]; same guards as {!chain}. *)
let chain_ids accs txn_id completed_by =
  let rec go acc prev id =
    if id < 0 || id >= prev then acc
    else
      match Hashtbl.find_opt accs id with
      | Some a when a.a_txn = txn_id -> go (id :: acc) id a.a_parent
      | _ -> acc
  in
  go [] max_int completed_by

let side_of_acc id (a : acc) =
  {
    s_id = id;
    s_local = a.a_local;
    s_sent = a.a_sent;
    s_inject = a.a_inject;
    s_handled = a.a_handled;
    s_xfer_us =
      List.fold_left
        (fun acc (_, s, f) -> acc +. (f -. s))
        0.0 (List.rev a.a_xfers);
  }

let build events =
  let accs : (int, acc) Hashtbl.t = Hashtbl.create 1024 in
  let txns = ref [] in
  (* Per-transaction message ids (prepended, so reversed = ascending id)
     and the at-completion side snapshots. *)
  let txn_index : (int, int list ref) Hashtbl.t = Hashtbl.create 256 in
  let sides_tbl : (int, side list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun e ->
      match e with
      | Trace.Msg_send
          { ts; id; parent; txn; inject; level; src; dst; size; local } ->
          if txn >= 0 then begin
            match Hashtbl.find_opt txn_index txn with
            | Some ids -> ids := id :: !ids
            | None -> Hashtbl.add txn_index txn (ref [ id ])
          end;
          Hashtbl.replace accs id
            {
              a_parent = parent;
              a_txn = txn;
              a_src = src;
              a_dst = dst;
              a_size = size;
              a_local = local;
              a_level = level;
              a_sent = ts;
              a_inject = inject;
              (* A local message's handler runs at [inject]; there is no
                 separate delivery event. *)
              a_delivered = (if local then Some inject else None);
              a_handled = (if local then Some inject else None);
              a_xfers = [];
              a_retries = 0;
              a_losses = 0;
            }
      | Trace.Link_xfer { start; finish; link; msg; _ } -> (
          (* Acks carry ids with no Msg_send; their link traffic is not part
             of any span tree. *)
          match Hashtbl.find_opt accs msg with
          | Some a -> a.a_xfers <- (link, start, finish) :: a.a_xfers
          | None -> ())
      | Trace.Msg_deliver { id; ts; handled; _ } -> (
          match Hashtbl.find_opt accs id with
          | Some a when a.a_delivered = None ->
              (* Retransmission duplicates keep the first delivery. *)
              a.a_delivered <- Some ts;
              a.a_handled <- Some handled
          | _ -> ())
      | Trace.Msg_retry { msg; _ } -> (
          match Hashtbl.find_opt accs msg with
          | Some a -> a.a_retries <- a.a_retries + 1
          | None -> ())
      | Trace.Msg_lost { msg; _ } -> (
          match Hashtbl.find_opt accs msg with
          | Some a -> a.a_losses <- a.a_losses + 1
          | None -> ())
      | Trace.Dsm_access
          { ts; dur; node; var; var_name; op; size; txn; completed_by; _ }
        when txn >= 0 ->
          txns :=
            {
              t_id = txn;
              t_node = node;
              t_op = op;
              t_var = var;
              t_var_name = var_name;
              t_size = size;
              t_start = ts;
              t_dur = dur;
              t_completed_by = completed_by;
            }
            :: !txns;
          (* Side branches: the transaction's messages that are not on the
             completing chain, snapshotted as of this point in the stream.
             Sends emitted after completion (possible for a write's
             trailing invalidations) are deliberately excluded — a
             bounded-memory analyzer has already retired the transaction. *)
          let chain = chain_ids accs txn completed_by in
          let ids =
            match Hashtbl.find_opt txn_index txn with
            | Some ids -> List.rev !ids
            | None -> []
          in
          Hashtbl.remove txn_index txn;
          let sides =
            List.filter_map
              (fun id ->
                if List.mem id chain then None
                else
                  Option.map (side_of_acc id) (Hashtbl.find_opt accs id))
              ids
          in
          if sides <> [] then Hashtbl.replace sides_tbl txn sides
      | _ -> ())
    events;
  let by_id = Hashtbl.create (Hashtbl.length accs) in
  Hashtbl.iter
    (fun id a ->
      Hashtbl.replace by_id id
        {
          id;
          parent = a.a_parent;
          txn = a.a_txn;
          src = a.a_src;
          dst = a.a_dst;
          size = a.a_size;
          local = a.a_local;
          level = a.a_level;
          sent = a.a_sent;
          inject = a.a_inject;
          delivered = a.a_delivered;
          handled = a.a_handled;
          xfers = List.rev a.a_xfers;
          retries = a.a_retries;
          losses = a.a_losses;
        })
    accs;
  let txn_seq = List.rev !txns in
  let txn_list = List.sort (fun a b -> compare a.t_id b.t_id) txn_seq in
  { by_id; txn_list; txn_seq; sides_tbl }

let msg t id = Hashtbl.find_opt t.by_id id
let txns t = t.txn_list
let txns_completed t = t.txn_seq

let sides t (txn : txn) =
  Option.value ~default:[] (Hashtbl.find_opt t.sides_tbl txn.t_id)

let num_msgs t = Hashtbl.length t.by_id

let msgs t =
  List.sort
    (fun a b -> compare a.id b.id)
    (Hashtbl.fold (fun _ m acc -> m :: acc) t.by_id [])

let msgs_of_txn t txn_id =
  List.filter (fun m -> m.txn = txn_id) (msgs t)

(* Critical-path chain of a transaction: from the completing message walk
   the parent links backwards while still inside the transaction. Parent
   ids are strictly smaller than child ids (issue order), so the walk
   terminates; the first message whose [txn] differs belongs to the
   operation that merely unparked this one and is excluded. Returned in
   causal (oldest-first) order. *)
let chain t (txn : txn) =
  let rec go acc prev id =
    if id < 0 || id >= prev then acc
    else
      match Hashtbl.find_opt t.by_id id with
      | Some m when m.txn = txn.t_id -> go (m :: acc) id m.parent
      | _ -> acc
  in
  go [] max_int txn.t_completed_by
