type snapshot = {
  sn_wall : float;
  sn_sim_us : float;
  sn_events : int;
  sn_pending : int;
  sn_fibers : int;
  sn_inflight : int;
  sn_reissues : int;
}

(* Two independent rings (events are high-frequency, snapshots periodic)
   plus the dump-once latch. Option arrays avoid manufacturing dummy
   values for the empty slots. *)
type t = {
  f_path : string;
  f_dump_on_watchdog : bool;
  ev_ring : Trace.event option array;
  mutable ev_pos : int;
  mutable ev_total : int;
  sn_ring : snapshot option array;
  mutable sn_pos : int;
  mutable sn_total : int;
  mutable f_dumped : bool;
}

let create ?(events = 512) ?(snapshots = 64) ?(dump_on_watchdog = true) ~path
    () =
  if events <= 0 then invalid_arg "Flight.create: events must be positive";
  if snapshots <= 0 then
    invalid_arg "Flight.create: snapshots must be positive";
  {
    f_path = path;
    f_dump_on_watchdog = dump_on_watchdog;
    ev_ring = Array.make events None;
    ev_pos = 0;
    ev_total = 0;
    sn_ring = Array.make snapshots None;
    sn_pos = 0;
    sn_total = 0;
    f_dumped = false;
  }

let path t = t.f_path
let dump_on_watchdog t = t.f_dump_on_watchdog

let record t e =
  t.ev_ring.(t.ev_pos) <- Some e;
  t.ev_pos <- (t.ev_pos + 1) mod Array.length t.ev_ring;
  t.ev_total <- t.ev_total + 1

let wrap t sink = Trace.with_listener sink (record t)

let snapshot t s =
  t.sn_ring.(t.sn_pos) <- Some s;
  t.sn_pos <- (t.sn_pos + 1) mod Array.length t.sn_ring;
  t.sn_total <- t.sn_total + 1

let event_count t = t.ev_total

let ring_list ring pos =
  let n = Array.length ring in
  let out = ref [] in
  for i = n - 1 downto 0 do
    match ring.((pos + i) mod n) with
    | Some v -> out := v :: !out
    | None -> ()
  done;
  !out

let events t = ring_list t.ev_ring t.ev_pos
let snapshots t = ring_list t.sn_ring t.sn_pos
let dumped t = t.f_dumped

let schema = "diva-flight/1"

let snapshot_json s =
  let open Json in
  Obj
    [
      ("wall", Float s.sn_wall);
      ("sim_us", Float s.sn_sim_us);
      ("events", Int s.sn_events);
      ("pending", Int s.sn_pending);
      ("fibers", Int s.sn_fibers);
      ("inflight", Int s.sn_inflight);
      ("reissues", Int s.sn_reissues);
    ]

let to_json t ~reason =
  let evs = events t in
  let open Json in
  Obj
    [
      ("schema", String schema);
      ("reason", String reason);
      ("wall_unix", Float (Unix.gettimeofday ()));
      ("events_recorded", Int t.ev_total);
      ("ring_capacity", Int (Array.length t.ev_ring));
      ("events", List (List.map Trace.event_to_json evs));
      ("snapshots", List (List.map snapshot_json (snapshots t)));
    ]

let dump t ~reason =
  if not t.f_dumped then begin
    t.f_dumped <- true;
    try Json.to_file t.f_path (to_json t ~reason)
    with Sys_error e ->
      Printf.eprintf "flight recorder: cannot write %s: %s\n%!" t.f_path e
  end

let dump_on_error t ~label = function
  | Ok _ -> ()
  | Error e -> dump t ~reason:(Printf.sprintf "%s: %s" label e)

(* ------------------------------------------------------------------ *)
(* Report rendering (divasim profile)                                   *)
(* ------------------------------------------------------------------ *)

let get_i j k = Option.bind (Json.member k j) Json.to_int
let get_f j k = Option.bind (Json.member k j) Json.to_float

let report j =
  match Option.bind (Json.member "schema" j) Json.to_str with
  | Some s when s = schema ->
      let b = Buffer.create 1024 in
      Printf.bprintf b "flight recorder dump (%s)\n" schema;
      Printf.bprintf b "  reason           %s\n"
        (Option.value ~default:"?"
           (Option.bind (Json.member "reason" j) Json.to_str));
      let recorded = Option.value ~default:0 (get_i j "events_recorded") in
      let cap = Option.value ~default:0 (get_i j "ring_capacity") in
      let kept =
        match Json.member "events" j with
        | Some (Json.List l) -> List.length l
        | _ -> 0
      in
      Printf.bprintf b
        "  events           %d recorded, last %d kept (ring capacity %d)\n"
        recorded kept cap;
      (match Json.member "snapshots" j with
      | Some (Json.List snaps) ->
          Printf.bprintf b "  snapshots        %d\n" (List.length snaps);
          (* The last snapshot is the health of the system just before the
             trigger — the first thing a post-mortem wants. *)
          (match List.rev snaps with
          | last :: _ ->
              Printf.bprintf b
                "  last health      sim %.1f us: %d events, %d pending, %d \
                 fibers, %d in-flight envelopes, %d watchdog trips\n"
                (Option.value ~default:0.0 (get_f last "sim_us"))
                (Option.value ~default:0 (get_i last "events"))
                (Option.value ~default:0 (get_i last "pending"))
                (Option.value ~default:0 (get_i last "fibers"))
                (Option.value ~default:0 (get_i last "inflight"))
                (Option.value ~default:0 (get_i last "reissues"))
          | [] -> ())
      | _ -> ());
      (match Json.member "events" j with
      | Some (Json.List evs) when evs <> [] ->
          Printf.bprintf b "  tail of the event ring:\n";
          let tail =
            let n = List.length evs in
            if n <= 8 then evs
            else List.filteri (fun i _ -> i >= n - 8) evs
          in
          List.iter
            (fun e -> Printf.bprintf b "    %s\n" (Json.to_string e))
            tail
      | _ -> ());
      Ok (Buffer.contents b)
  | Some s -> Error (Printf.sprintf "not a flight dump (schema %S)" s)
  | None -> Error "not a flight dump (no \"schema\" field)"
