(* Bounded-memory streaming analysis: fold the live event stream into the
   same {!Analysis.summary} the batch path produces — bit for bit — while
   retiring each transaction's message records the moment its completion
   event passes. Peak residency is O(concurrent transactions x protocol
   fan-out), independent of run length; {!peak_msgs} exposes the
   high-water mark so harnesses can assert it.

   Why the folds agree with batch exactly (floats included):
   - The simulator emits eagerly: a transaction's chain messages have
     their sends, crossings and deliveries in the stream before the
     transaction's [Dsm_access], so the records retained at completion
     hold everything {!Analysis.decompose_chain} clips into the blocking
     window. Crossings emitted later (post-completion retransmissions)
     start at or after the window's end and clip to nothing.
   - Per-operation and critical-path sums are fed through the shared
     {!Analysis.Txn_fold} in completion order on both sides; link and
     window sums fold in emission order on both sides.
   - Side-branch snapshots are taken at the completion event on both
     sides ({!Spans.build} takes the identical cut). *)

module Ids = Set.Make (Int)

(* Retained state of one in-flight message of a pending transaction.
   Mirrors the slice of [Spans.msg] the cost math reads; freed when the
   transaction completes. *)
type srec = {
  r_id : int;
  r_parent : int;
  r_txn : int;
  r_local : bool;
  r_sent : float;
  r_inject : float;
  mutable r_handled : float option;
  mutable r_rev_xfers : (float * float) list;  (* (start, finish), newest first *)
}

type t = {
  ov : Analysis.overheads;
  top_k : int;
  num_windows : int;
  (* bounded working set *)
  msgs : (int, srec) Hashtbl.t;  (* messages of not-yet-completed txns *)
  pending : (int, int list ref) Hashtbl.t;  (* txn -> its msg ids, newest first *)
  ring : int array;  (* recently completed txn ids (circular) *)
  ring_set : (int, unit) Hashtbl.t;
  mutable ring_pos : int;
  mutable ring_len : int;
  (* event-self-contained folds *)
  levels : (int, level_acc) Hashtbl.t;
  links : (int, link_acc) Hashtbl.t;
  txn_fold : Analysis.Txn_fold.t;
  (* Every link crossing, four scalars each, in emission order: window
     boundaries need the end time, so binning must wait for [finalize].
     Replaying these through {!Analysis.Windows_fold} there performs the
     identical float operations in the identical order as a second pass
     over the file would, keeping the summary bit-identical while the
     analysis itself stays single-pass. Empty when [num_windows <= 0]. *)
  mutable x_link : int array;
  mutable x_size : int array;
  mutable x_start : float array;
  mutable x_finish : float array;
  mutable x_n : int;
  mutable n_events : int;
  mutable n_msgs : int;
  mutable t_end : float;
  mutable peak : int;
}

and level_acc = {
  mutable la_msgs : int;
  mutable la_bytes : int;
  mutable la_local : int;
  mutable la_crossings : int;
  mutable la_link_bytes : int;
}

and link_acc = {
  mutable lka_msgs : int;
  mutable lka_bytes : int;
  mutable lka_busy : float;
}

let create ?(top_k = 10) ?(num_windows = 8) ?(ring = 1024) ov =
  if ring <= 0 then invalid_arg "Streaming.create: ring must be positive";
  {
    ov;
    top_k;
    num_windows;
    msgs = Hashtbl.create 256;
    pending = Hashtbl.create 64;
    ring = Array.make ring (-1);
    ring_set = Hashtbl.create ring;
    ring_pos = 0;
    ring_len = 0;
    levels = Hashtbl.create 8;
    links = Hashtbl.create 64;
    txn_fold = Analysis.Txn_fold.create ();
    x_link = [||];
    x_size = [||];
    x_start = [||];
    x_finish = [||];
    x_n = 0;
    n_events = 0;
    n_msgs = 0;
    t_end = 0.0;
    peak = 0;
  }

let push_xfer t ~link ~size ~start ~finish =
  let cap = Array.length t.x_link in
  if t.x_n = cap then begin
    let cap' = max 1024 (2 * cap) in
    let grow mk a = let b = mk cap' in Array.blit a 0 b 0 t.x_n; b in
    t.x_link <- grow (fun n -> Array.make n 0) t.x_link;
    t.x_size <- grow (fun n -> Array.make n 0) t.x_size;
    t.x_start <- grow (fun n -> Array.make n 0.0) t.x_start;
    t.x_finish <- grow (fun n -> Array.make n 0.0) t.x_finish
  end;
  t.x_link.(t.x_n) <- link;
  t.x_size.(t.x_n) <- size;
  t.x_start.(t.x_n) <- start;
  t.x_finish.(t.x_n) <- finish;
  t.x_n <- t.x_n + 1

let ring_mem t txn = Hashtbl.mem t.ring_set txn

let ring_push t txn =
  let cap = Array.length t.ring in
  if t.ring_len = cap then Hashtbl.remove t.ring_set t.ring.(t.ring_pos)
  else t.ring_len <- t.ring_len + 1;
  t.ring.(t.ring_pos) <- txn;
  Hashtbl.replace t.ring_set txn ();
  t.ring_pos <- (t.ring_pos + 1) mod cap

let level_acc t level =
  match Hashtbl.find_opt t.levels level with
  | Some a -> a
  | None ->
      let a =
        { la_msgs = 0; la_bytes = 0; la_local = 0; la_crossings = 0;
          la_link_bytes = 0 }
      in
      Hashtbl.add t.levels level a;
      a

let link_acc t link =
  match Hashtbl.find_opt t.links link with
  | Some a -> a
  | None ->
      let a = { lka_msgs = 0; lka_bytes = 0; lka_busy = 0.0 } in
      Hashtbl.add t.links link a;
      a

(* Same snapshot {!Spans.build} takes at a completion event. *)
let side_of_rec (r : srec) : Spans.side =
  {
    Spans.s_id = r.r_id;
    s_local = r.r_local;
    s_sent = r.r_sent;
    s_inject = r.r_inject;
    s_handled = r.r_handled;
    s_xfer_us =
      List.fold_left
        (fun acc (s, f) -> acc +. (f -. s))
        0.0 (List.rev r.r_rev_xfers);
  }

let chain_link_of_rec (r : srec) : Analysis.chain_link =
  {
    Analysis.cl_local = r.r_local;
    cl_inject = r.r_inject;
    cl_handled = r.r_handled;
    cl_xfers = List.rev r.r_rev_xfers;
  }

(* Same guards as [Spans.chain]: parent ids are strictly smaller than
   child ids, and the walk stops at the first message outside the
   transaction — for us also the first retired message, which is the same
   thing (every message of a pending transaction is still live). *)
let chain_ids t txn_id completed_by =
  let rec go acc prev id =
    if id < 0 || id >= prev then acc
    else
      match Hashtbl.find_opt t.msgs id with
      | Some r when r.r_txn = txn_id -> go (Ids.add id acc) id r.r_parent
      | _ -> acc
  in
  go Ids.empty max_int completed_by

let complete t ~node ~op ~ts ~dur ~txn ~completed_by =
  let chain = chain_ids t txn completed_by in
  let ids =
    match Hashtbl.find_opt t.pending txn with
    | Some ids -> List.rev !ids
    | None -> []
  in
  let chain_cost =
    Analysis.decompose_chain t.ov ~t0:ts ~dur
      (List.filter_map
         (fun id ->
           if Ids.mem id chain then
             Option.map chain_link_of_rec (Hashtbl.find_opt t.msgs id)
           else None)
         ids)
  in
  let sides =
    List.filter_map
      (fun id ->
        if Ids.mem id chain then None
        else Option.map side_of_rec (Hashtbl.find_opt t.msgs id))
      ids
  in
  Analysis.Txn_fold.feed t.txn_fold ~node ~op ~t_start:ts ~dur ~chain_cost
    ~side_msgs:(List.length sides)
    ~side_cost:(Analysis.sides_cost t.ov sides);
  (* Retire: free every record of the transaction and remember its id so
     stray post-completion sends do not repopulate the table. *)
  List.iter (Hashtbl.remove t.msgs) ids;
  Hashtbl.remove t.pending txn;
  ring_push t txn

let feed t e =
  t.n_events <- t.n_events + 1;
  match e with
  | Trace.Msg_send { ts; id; parent; txn; inject; level; size; local; _ } ->
      t.n_msgs <- t.n_msgs + 1;
      let la = level_acc t level in
      la.la_msgs <- la.la_msgs + 1;
      la.la_bytes <- la.la_bytes + size;
      if local then begin
        la.la_local <- la.la_local + 1;
        t.t_end <- Float.max t.t_end inject
      end;
      if txn >= 0 && not (ring_mem t txn) then begin
        Hashtbl.replace t.msgs id
          {
            r_id = id;
            r_parent = parent;
            r_txn = txn;
            r_local = local;
            r_sent = ts;
            r_inject = inject;
            (* A local message's handler runs at [inject]; there is no
               separate delivery event. *)
            r_handled = (if local then Some inject else None);
            r_rev_xfers = [];
          };
        (match Hashtbl.find_opt t.pending txn with
        | Some ids -> ids := id :: !ids
        | None -> Hashtbl.add t.pending txn (ref [ id ]));
        let live = Hashtbl.length t.msgs in
        if live > t.peak then t.peak <- live
      end
  | Trace.Link_xfer { start; finish; link; msg; level; size; _ } ->
      if msg >= 0 then begin
        let la = level_acc t level in
        la.la_crossings <- la.la_crossings + 1;
        la.la_link_bytes <- la.la_link_bytes + size;
        let lk = link_acc t link in
        lk.lka_msgs <- lk.lka_msgs + 1;
        lk.lka_bytes <- lk.lka_bytes + size;
        lk.lka_busy <- lk.lka_busy +. (finish -. start);
        t.t_end <- Float.max t.t_end finish;
        if t.num_windows > 0 then push_xfer t ~link ~size ~start ~finish;
        match Hashtbl.find_opt t.msgs msg with
        | Some r -> r.r_rev_xfers <- (start, finish) :: r.r_rev_xfers
        | None -> ()
      end
  | Trace.Msg_deliver { id; handled; _ } ->
      if id >= 0 then begin
        t.t_end <- Float.max t.t_end handled;
        match Hashtbl.find_opt t.msgs id with
        | Some r when r.r_handled = None ->
            (* Retransmission duplicates keep the first delivery. *)
            r.r_handled <- Some handled
        | _ -> ()
      end
  | Trace.Dsm_access { ts; dur; node; op; txn; completed_by; _ }
    when txn >= 0 ->
      complete t ~node ~op ~ts ~dur ~txn ~completed_by
  | _ -> ()

let sink t = Trace.stream (feed t)
let events_seen t = t.n_events
let num_msgs t = t.n_msgs
let live_msgs t = Hashtbl.length t.msgs
let peak_msgs t = t.peak
let end_time t = t.t_end
let num_windows t = t.num_windows

let level_rows t =
  List.sort
    (fun (a : Analysis.level_row) b -> compare a.lv_level b.lv_level)
    (Hashtbl.fold
       (fun level a acc ->
         {
           Analysis.lv_level = level;
           lv_msgs = a.la_msgs;
           lv_bytes = a.la_bytes;
           lv_local = a.la_local;
           lv_crossings = a.la_crossings;
           lv_link_bytes = a.la_link_bytes;
         }
         :: acc)
       t.levels [])

let link_rows t =
  Hashtbl.fold
    (fun link a acc ->
      {
        Analysis.lk_link = link;
        lk_msgs = a.lka_msgs;
        lk_bytes = a.lka_bytes;
        lk_busy_us = a.lka_busy;
      }
      :: acc)
    t.links []

(* Replay the retained crossings through a fresh fold now that the end
   time is known: same operands, same order as a second pass over the
   source, so the rows are bit-identical to the batch path. *)
let fold_windows t =
  let wf = Analysis.Windows_fold.create ~n:t.num_windows ~t_end:t.t_end in
  for i = 0 to t.x_n - 1 do
    Analysis.Windows_fold.feed_xfer wf ~link:t.x_link.(i) ~size:t.x_size.(i)
      ~start:t.x_start.(i) ~finish:t.x_finish.(i)
  done;
  Analysis.Windows_fold.rows wf

let finalize ?windows t =
  let windows =
    match windows with Some ws -> ws | None -> fold_windows t
  in
  {
    Analysis.sm_num_txns = Analysis.Txn_fold.num_txns t.txn_fold;
    sm_num_msgs = t.n_msgs;
    sm_end_us = t.t_end;
    sm_critical =
      Option.map
        (fun (node, e, n, cost) ->
          { Analysis.sc_node = node; sc_end = e; sc_txns = n; sc_cost = cost })
        (Analysis.Txn_fold.critical t.txn_fold);
    sm_levels = level_rows t;
    sm_top_links = Analysis.sort_top_links ~k:t.top_k (link_rows t);
    sm_windows = windows;
    sm_ops = Analysis.Txn_fold.op_rows t.txn_fold;
  }

(* One pass over an in-memory event list — windows fold from the retained
   crossings at [finalize]. Returns the summary and the peak
   message-record residency. *)
let analyze_events ?top_k ?num_windows ?ring ov events =
  let t = create ?top_k ?num_windows ?ring ov in
  List.iter (feed t) events;
  (finalize t, t.peak)

(* ------------------------------------------------------------------ *)
(* On-disk JSONL trace format                                           *)
(* ------------------------------------------------------------------ *)

let format_name = "diva-event-trace"
let current_version = 1

type header = {
  h_version : int;
  h_app : string;
  h_dims : int array;
  h_strategy : string;
  h_seed : int;
  h_overheads : Analysis.overheads;
  h_params : (string * Json.t) list;
}

let make_header ?(params = []) ~app ~dims ~strategy ~seed ~overheads () =
  {
    h_version = current_version;
    h_app = app;
    h_dims = Array.copy dims;
    h_strategy = strategy;
    h_seed = seed;
    h_overheads = overheads;
    h_params = params;
  }

let header_json h =
  let open Json in
  Obj
    [
      ("format", String format_name);
      ("version", Int h.h_version);
      ("app", String h.h_app);
      ("dims", List (List.map (fun d -> Int d) (Array.to_list h.h_dims)));
      ("strategy", String h.h_strategy);
      ("seed", Int h.h_seed);
      ( "overheads",
        Obj
          [
            ("send_us", Float h.h_overheads.Analysis.send_overhead);
            ("recv_us", Float h.h_overheads.Analysis.recv_overhead);
            ("local_us", Float h.h_overheads.Analysis.local_overhead);
          ] );
      ("params", Obj h.h_params);
    ]

let ( let* ) = Result.bind

let field ~what ~key conv j =
  match Option.bind (Json.member key j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing or malformed %S field" what key)

let parse_header line =
  let* j = Result.map_error (fun e -> "header: " ^ e) (Json.of_string line) in
  let* fmt = field ~what:"header" ~key:"format" Json.to_str j in
  if fmt <> format_name then
    Error
      (Printf.sprintf "not an event trace (format %S, expected %S)" fmt
         format_name)
  else
    let* version = field ~what:"header" ~key:"version" Json.to_int j in
    if version < 1 || version > current_version then
      Error
        (Printf.sprintf
           "unsupported trace version %d (this build supports 1..%d)" version
           current_version)
    else
      let* app = field ~what:"header" ~key:"app" Json.to_str j in
      let* dims =
        match Json.member "dims" j with
        | Some (Json.List ds) ->
            let ints = List.filter_map Json.to_int ds in
            if List.length ints = List.length ds && ints <> [] then
              Ok (Array.of_list ints)
            else Error "header: malformed \"dims\""
        | _ -> Error "header: missing \"dims\""
      in
      let* strategy = field ~what:"header" ~key:"strategy" Json.to_str j in
      let* seed = field ~what:"header" ~key:"seed" Json.to_int j in
      let* overheads =
        match Json.member "overheads" j with
        | Some o ->
            let* send_overhead =
              field ~what:"header overheads" ~key:"send_us" Json.to_float o
            in
            let* recv_overhead =
              field ~what:"header overheads" ~key:"recv_us" Json.to_float o
            in
            let* local_overhead =
              field ~what:"header overheads" ~key:"local_us" Json.to_float o
            in
            Ok { Analysis.send_overhead; recv_overhead; local_overhead }
        | None -> Error "header: missing \"overheads\""
      in
      let params =
        match Json.member "params" j with Some (Json.Obj kvs) -> kvs | _ -> []
      in
      Ok
        {
          h_version = version;
          h_app = app;
          h_dims = dims;
          h_strategy = strategy;
          h_seed = seed;
          h_overheads = overheads;
          h_params = params;
        }

let write_header oc h =
  let b = Buffer.create 256 in
  Json.to_buffer b (header_json h);
  Buffer.add_char b '\n';
  Buffer.output_buffer oc b

let file_sink oc h =
  write_header oc h;
  Trace.stream (Trace.write_event oc)

(* ------------------------------------------------------------------ *)
(* Event decoding                                                       *)
(* ------------------------------------------------------------------ *)

let event_of_json j =
  let what = "event" in
  let int k = field ~what ~key:k Json.to_int j in
  let flt k = field ~what ~key:k Json.to_float j in
  let str k = field ~what ~key:k Json.to_str j in
  let boo k = field ~what ~key:k Json.to_bool j in
  let* tag = str "e" in
  match tag with
  | "send" ->
      let* ts = flt "ts" in
      let* id = int "id" in
      let* parent = int "par" in
      let* txn = int "txn" in
      let* inject = flt "inj" in
      let* level = int "lv" in
      let* src = int "src" in
      let* dst = int "dst" in
      let* size = int "sz" in
      let* local = boo "loc" in
      Ok
        (Trace.Msg_send
           { ts; id; parent; txn; inject; level; src; dst; size; local })
  | "dlv" ->
      let* ts = flt "ts" in
      let* id = int "id" in
      let* txn = int "txn" in
      let* handled = flt "h" in
      let* src = int "src" in
      let* dst = int "dst" in
      let* size = int "sz" in
      Ok (Trace.Msg_deliver { ts; id; txn; handled; src; dst; size })
  | "xfer" ->
      let* start = flt "s" in
      let* finish = flt "f" in
      let* link = int "lk" in
      let* msg = int "msg" in
      let* txn = int "txn" in
      let* level = int "lv" in
      let* src = int "src" in
      let* dst = int "dst" in
      let* size = int "sz" in
      Ok
        (Trace.Link_xfer
           { start; finish; link; msg; txn; level; src; dst; size })
  | "var" ->
      let* ts = flt "ts" in
      let* var = int "v" in
      let* var_name = str "name" in
      let* size = int "sz" in
      let* owner = int "own" in
      Ok (Trace.Var_decl { ts; var; var_name; size; owner })
  | "dsm" ->
      let* ts = flt "ts" in
      let* dur = flt "dur" in
      let* node = int "n" in
      let* var = int "v" in
      let* var_name = str "name" in
      let* code = str "op" in
      let* op =
        match Trace.op_of_code code with
        | Some op -> Ok op
        | None -> Error (Printf.sprintf "event: unknown op code %S" code)
      in
      let* size = int "sz" in
      let* hit = boo "hit" in
      let* txn = int "txn" in
      let* completed_by = int "cb" in
      Ok
        (Trace.Dsm_access
           { ts; dur; node; var; var_name; op; size; hit; txn; completed_by })
  | "cadd" ->
      let* ts = flt "ts" in
      let* node = int "n" in
      let* var = int "v" in
      let* var_name = str "name" in
      let* tnode = int "tn" in
      let* level = int "lv" in
      Ok (Trace.Copy_add { ts; node; var; var_name; tnode; level })
  | "cdrop" ->
      let* ts = flt "ts" in
      let* node = int "n" in
      let* var = int "v" in
      let* var_name = str "name" in
      let* tnode = int "tn" in
      let* level = int "lv" in
      let* code = str "why" in
      let* reason =
        match Trace.drop_of_code code with
        | Some r -> Ok r
        | None -> Error (Printf.sprintf "event: unknown drop reason %S" code)
      in
      Ok (Trace.Copy_drop { ts; node; var; var_name; tnode; level; reason })
  | "remap" ->
      let* ts = flt "ts" in
      let* var = int "v" in
      let* var_name = str "name" in
      let* tnode = int "tn" in
      let* level = int "lv" in
      let* from_node = int "from" in
      let* to_node = int "to" in
      Ok (Trace.Remap { ts; var; var_name; tnode; level; from_node; to_node })
  | "lost" ->
      let* ts = flt "ts" in
      let* msg = int "msg" in
      let* txn = int "txn" in
      let* src = int "src" in
      let* dst = int "dst" in
      let* size = int "sz" in
      let* code = str "why" in
      let* reason =
        match Trace.loss_of_code code with
        | Some r -> Ok r
        | None -> Error (Printf.sprintf "event: unknown loss reason %S" code)
      in
      Ok (Trace.Msg_lost { ts; msg; txn; src; dst; size; reason })
  | "retry" ->
      let* ts = flt "ts" in
      let* msg = int "msg" in
      let* txn = int "txn" in
      let* src = int "src" in
      let* dst = int "dst" in
      let* size = int "sz" in
      let* attempt = int "att" in
      Ok (Trace.Msg_retry { ts; msg; txn; src; dst; size; attempt })
  | other -> Error (Printf.sprintf "event: unknown tag %S" other)

let event_of_line ~lineno line =
  let* j =
    Result.map_error
      (fun e -> Printf.sprintf "line %d: %s" lineno e)
      (Json.of_string line)
  in
  Result.map_error
    (fun e -> Printf.sprintf "line %d: %s" lineno e)
    (event_of_json j)

(* ------------------------------------------------------------------ *)
(* File reading (line at a time — memory stays bounded)                 *)
(* ------------------------------------------------------------------ *)

let with_lines path f =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such file" path)
  else
    match
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)
    with
    | r -> Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) r
    | exception Sys_error e -> Error e

(* First non-blank line is the header; every later non-blank line is one
   event, applied in order. *)
let iter_file path ~f =
  with_lines path (fun ic ->
      let rec next_line lineno =
        match input_line ic with
        | exception End_of_file -> None
        | line when String.trim line = "" -> next_line (lineno + 1)
        | line -> Some (line, lineno)
      in
      match next_line 1 with
      | None -> Error "empty trace file"
      | Some (header_line, hline) ->
          let* header = parse_header header_line in
          let rec go lineno =
            match next_line lineno with
            | None -> Ok header
            | Some (line, lineno) ->
                let* e = event_of_line ~lineno line in
                f e;
                go (lineno + 1)
          in
          go (hline + 1))

let probe path =
  with_lines path (fun ic ->
      match input_line ic with
      | exception End_of_file -> Error "empty trace file"
      | line -> Result.map (fun (_ : header) -> ()) (parse_header line))

(* Full offline post-mortem in a single pass over the file: the analyzer
   retains each link crossing as four scalars and bins them into windows
   at [finalize], once the end time is known. Returns the header, the
   summary — bit-identical to [Analysis.summarize] over the same events —
   and the peak message-record residency. *)
let analyze_file ?top_k ?num_windows ?ring path =
  let* header =
    Result.map_error
      (fun e -> e)
      (with_lines path (fun ic ->
           match input_line ic with
           | exception End_of_file -> Error "empty trace file"
           | line -> parse_header line))
  in
  let t = create ?top_k ?num_windows ?ring header.h_overheads in
  let* _ = iter_file path ~f:(feed t) in
  Ok (header, finalize t, t.peak)


(* ------------------------------------------------------------------ *)
(* Multi-run merge / compaction                                         *)
(* ------------------------------------------------------------------ *)

let merged_format_name = "diva-event-trace-merged"
let merged_version = 1

type merge_stats = { ms_runs : int; ms_events : int; ms_dropped : int }

(* One scan of a run: its event count plus its quiescence point — the
   issue time of the first DSM access. Everything before quiescence is
   setup chatter (initial copy placement, warm-up sends) that multi-run
   analysis wants gone; [Var_decl] events survive compaction regardless
   because replay and analysis need the declarations. A run with no DSM
   accesses compacts to itself (cut at 0). *)
let scan_run path =
  let n = ref 0 and q = ref Float.infinity in
  let* _ =
    iter_file path ~f:(fun e ->
        incr n;
        match e with
        | Trace.Dsm_access { ts; _ } when ts < !q -> q := ts
        | _ -> ())
  in
  Ok (!n, if !q = Float.infinity then 0.0 else !q)

let keep_event ~quiescence e =
  match e with
  | Trace.Var_decl _ -> true
  | e -> Trace.timestamp e >= quiescence

(* One open input being merged: header already consumed, [mu_cur] holds
   the next surviving event. Only each cursor's head competes, so within
   a file the original emission order is preserved exactly; across files
   the merge is a stable k-way interleave on head timestamps with the
   run index as tie-break — the output is deterministic. *)
type cursor = {
  mu_run : int;
  mu_path : string;
  mu_ic : in_channel;
  mutable mu_lineno : int;
  mutable mu_cur : Trace.event option;
  mu_quiescence : float;
}

let cursor_advance c =
  let rec go () =
    match input_line c.mu_ic with
    | exception End_of_file ->
        c.mu_cur <- None;
        Ok ()
    | line ->
        c.mu_lineno <- c.mu_lineno + 1;
        if String.trim line = "" then go ()
        else
          let* e =
            Result.map_error
              (fun e -> Printf.sprintf "%s: %s" c.mu_path e)
              (event_of_line ~lineno:c.mu_lineno line)
          in
          if keep_event ~quiescence:c.mu_quiescence e then begin
            c.mu_cur <- Some e;
            Ok ()
          end
          else go ()
  in
  go ()

(* Open one input positioned just past its header line. *)
let open_cursor ~run ~quiescence path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let rec skip lineno =
        match input_line ic with
        | exception End_of_file -> lineno
        | line when String.trim line = "" -> skip (lineno + 1)
        | _ -> lineno + 1
      in
      let lineno = skip 0 in
      Ok
        {
          mu_run = run;
          mu_path = path;
          mu_ic = ic;
          mu_lineno = lineno;
          mu_cur = None;
          mu_quiescence = quiescence;
        }

let write_json_line oc j =
  let b = Buffer.create 256 in
  Json.to_buffer b j;
  Buffer.add_char b '\n';
  Buffer.output_buffer oc b

let merge_files ?(compact = false) ~inputs ~output () =
  if inputs = [] then Error "trace merge: no input files"
  else
    (* Pass 1: validate every header; when compacting, also scan each run
       for its size and quiescence cut. *)
    let* runs =
      List.fold_left
        (fun acc path ->
          let* acc = acc in
          let* h =
            with_lines path (fun ic ->
                match input_line ic with
                | exception End_of_file -> Error "empty trace file"
                | line -> parse_header line)
          in
          let* total, quiescence =
            if compact then scan_run path else Ok (0, 0.0)
          in
          Ok ((path, h, total, quiescence) :: acc))
        (Ok []) inputs
    in
    let runs = List.rev runs in
    match
      let oc = open_out output in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          let open Json in
          (* Merged header: the format marker plus every input's own
             header and its quiescence cut, so downstream tools can tell
             what a compacted merge dropped. *)
          write_json_line oc
            (Obj
               [
                 ("format", String merged_format_name);
                 ("version", Int merged_version);
                 ("compact", Bool compact);
                 ( "runs",
                   List
                     (List.map
                        (fun (path, h, _, q) ->
                          Obj
                            [
                              ("path", String (Filename.basename path));
                              ("header", header_json h);
                              ("quiescence_us", Float q);
                            ])
                        runs) );
               ]);
          let* cursors =
            List.fold_left
              (fun acc (run, (path, _, _, quiescence)) ->
                let* acc = acc in
                let* c = open_cursor ~run ~quiescence path in
                Ok (c :: acc))
              (Ok [])
              (List.mapi (fun i r -> (i, r)) runs)
            |> Result.map List.rev
          in
          Fun.protect
            ~finally:(fun () ->
              List.iter
                (fun c -> try close_in c.mu_ic with Sys_error _ -> ())
                cursors)
            (fun () ->
              let* () =
                List.fold_left
                  (fun acc c ->
                    let* () = acc in
                    cursor_advance c)
                  (Ok ()) cursors
              in
              let written = ref 0 in
              (* Earliest head timestamp wins; ties keep the lower run
                 index (the fold visits cursors in run order and only a
                 strictly smaller timestamp displaces the champion). *)
              let rec pump () =
                let best =
                  List.fold_left
                    (fun best c ->
                      match (c.mu_cur, best) with
                      | None, _ -> best
                      | Some _, None -> Some c
                      | Some e, Some b -> (
                          match b.mu_cur with
                          | Some be
                            when Trace.timestamp e < Trace.timestamp be ->
                              Some c
                          | _ -> best))
                    None cursors
                in
                match best with
                | None -> Ok ()
                | Some c -> (
                    match c.mu_cur with
                    | None -> Ok ()
                    | Some e ->
                        let fields =
                          match Trace.event_to_json e with
                          | Obj kvs -> kvs
                          | j -> [ ("event", j) ]
                        in
                        write_json_line oc
                          (Obj (("run", Int c.mu_run) :: fields));
                        incr written;
                        let* () = cursor_advance c in
                        pump ())
              in
              let* () = pump () in
              let total_in =
                if compact then
                  List.fold_left (fun acc (_, _, n, _) -> acc + n) 0 runs
                else !written
              in
              Ok
                {
                  ms_runs = List.length runs;
                  ms_events = !written;
                  ms_dropped = max 0 (total_in - !written);
                }))
    with
    | r -> r
    | exception Sys_error e -> Error e
