(* Conservative, windowed, domain-sharded discrete-event engine.

   The model is partitioned into a FIXED number of logical shards chosen by
   the model builder (e.g. one per mesh row), independent of how many
   domains execute them — that independence is what makes results
   bit-identical for every domain count. Each shard owns a serial event
   queue and clock. Cross-shard interactions must respect a minimum
   latency, the [lookahead]: an event posted from shard A at time [t] into
   shard B carries a timestamp [>= t + lookahead].

   Execution proceeds in global time windows of width [lookahead]. The
   window [w, w + lookahead) starts at the global minimum pending
   timestamp [w], so gaps in the timeline are skipped in one hop. Within a
   window every shard processes its local events with [t < w + lookahead]
   strictly in (time, seq) order; any event those executions post across
   shards lands at [t' >= t + lookahead >= w + lookahead], i.e. beyond the
   window, so no shard can receive work for a window it is currently
   executing — the classical conservative-synchronization argument, with
   the window doubling as the barrier period.

   Cross-shard posts are buffered in per-(src, dst) outboxes. At the
   barrier after each window, every shard drains the outboxes addressed to
   it in ascending source-shard order, each in FIFO order, into its local
   queue. Both the drain order and the serial in-window execution are
   functions of shard state alone, never of the domain layout or of OS
   scheduling, so a run with [--domains 8] produces byte-identical results
   to [--domains 1]. Domains only decide which OS thread happens to
   execute a given shard's (deterministic) work.

   The barrier itself is a sense-reversing mutex/condvar barrier crossed
   twice per window: once so every outbox is complete before drains begin,
   once so every drain is complete before the next window's execution (the
   last domain to arrive at the second crossing also computes the next
   window start, or signals termination when all queues are empty). *)

module Heap = Diva_util.Event_queue

type 'a shard = {
  s_id : int;
  s_queue : 'a Heap.t;
  mutable s_clock : float;
  mutable s_executed : int;
  s_outboxes : (float * 'a) Queue.t array; (* indexed by destination shard *)
}

type 'a t = {
  shards : 'a shard array;
  lookahead : float;
}

type 'a ctx = { c_eng : 'a t; c_shard : 'a shard }

let create ~shards ~lookahead =
  if shards < 1 then invalid_arg "Par_engine.create: shards must be >= 1";
  if not (lookahead > 0.0) then
    invalid_arg "Par_engine.create: lookahead must be > 0";
  {
    shards =
      Array.init shards (fun i ->
          {
            s_id = i;
            s_queue = Heap.create ();
            s_clock = 0.0;
            s_executed = 0;
            s_outboxes = Array.init shards (fun _ -> Queue.create ());
          });
    lookahead;
  }

let num_shards t = Array.length t.shards
let lookahead t = t.lookahead

let schedule_init t ~shard ~at msg =
  if shard < 0 || shard >= Array.length t.shards then
    invalid_arg "Par_engine.schedule_init: bad shard";
  if not (at >= 0.0) then invalid_arg "Par_engine.schedule_init: bad time";
  Heap.insert t.shards.(shard).s_queue at msg

let events_executed t =
  Array.fold_left (fun acc s -> acc + s.s_executed) 0 t.shards

let ctx_shard c = c.c_shard.s_id
let ctx_now c = c.c_shard.s_clock
let ctx_num_shards c = num_shards c.c_eng

let ctx_schedule c ~at msg =
  if not (at >= c.c_shard.s_clock) then
    invalid_arg "Par_engine.ctx_schedule: time is in the past";
  Heap.insert c.c_shard.s_queue at msg

let ctx_post c ~dst ~at msg =
  if dst < 0 || dst >= num_shards c.c_eng then
    invalid_arg "Par_engine.ctx_post: bad destination shard"
  else if dst = c.c_shard.s_id then ctx_schedule c ~at msg
  else if at < c.c_shard.s_clock +. c.c_eng.lookahead then
    invalid_arg
      "Par_engine.ctx_post: cross-shard event closer than the lookahead"
  else Queue.push (at, msg) c.c_shard.s_outboxes.(dst)

(* ------------------------------------------------------------------ *)

(* Sense-reversing barrier. [cross b f] blocks until all parties arrive;
   the LAST arriver runs [f ()] (while holding the lock) before releasing
   everyone — that is where the global reduction for the next window
   lives. *)
type barrier = {
  b_mutex : Mutex.t;
  b_cond : Condition.t;
  b_parties : int;
  mutable b_waiting : int;
  mutable b_sense : bool;
}

let barrier_create parties =
  {
    b_mutex = Mutex.create ();
    b_cond = Condition.create ();
    b_parties = parties;
    b_waiting = 0;
    b_sense = false;
  }

let cross b f =
  Mutex.lock b.b_mutex;
  let sense = b.b_sense in
  b.b_waiting <- b.b_waiting + 1;
  if b.b_waiting = b.b_parties then begin
    f ();
    b.b_waiting <- 0;
    b.b_sense <- not sense;
    Condition.broadcast b.b_cond
  end
  else
    while b.b_sense = sense do
      Condition.wait b.b_cond b.b_mutex
    done;
  Mutex.unlock b.b_mutex

(* ------------------------------------------------------------------ *)

(* Per-domain wall-clock accounting, filled by [run ?telemetry]. All
   writes are either domain-local (each domain owns its [dom_stat]) or
   made while holding the barrier lock (window count), so recording needs
   no extra synchronization — and nothing in the model reads any of it,
   so a telemetered run stays byte-identical. *)
type dom_stat = {
  mutable d_busy_s : float;  (* executing events + draining outboxes *)
  mutable d_barrier_s : float;  (* waiting at the two window barriers *)
  mutable d_events : int;
}

type telemetry = {
  mutable tl_domains : int;
  mutable tl_windows : int;
  mutable tl_wall_s : float;
  mutable tl_doms : dom_stat array;
  mutable tl_shard_events : int array;
}

let telemetry_create () =
  {
    tl_domains = 0;
    tl_windows = 0;
    tl_wall_s = 0.0;
    tl_doms = [||];
    tl_shard_events = [||];
  }

let tl_stall_frac tl =
  let busy = Array.fold_left (fun a d -> a +. d.d_busy_s) 0.0 tl.tl_doms in
  let wait = Array.fold_left (fun a d -> a +. d.d_barrier_s) 0.0 tl.tl_doms in
  if busy +. wait > 0.0 then wait /. (busy +. wait) else 0.0

(* Max shard load over mean shard load: 1.0 is a perfectly balanced
   decomposition; the window occupancy of the busiest shard bounds every
   domain layout's speedup. *)
let tl_shard_imbalance tl =
  let n = Array.length tl.tl_shard_events in
  if n = 0 then 1.0
  else
    let total = Array.fold_left ( + ) 0 tl.tl_shard_events in
    if total = 0 then 1.0
    else
      let mx = Array.fold_left max 0 tl.tl_shard_events in
      float_of_int mx /. (float_of_int total /. float_of_int n)

let telemetry_json tl =
  let open Diva_obs.Json in
  Obj
    [
      ("domains", Int tl.tl_domains);
      ("windows", Int tl.tl_windows);
      ("wall_s", Float tl.tl_wall_s);
      ("stall_frac", Float (tl_stall_frac tl));
      ("shard_imbalance", Float (tl_shard_imbalance tl));
      ( "domains_detail",
        List
          (Array.to_list
             (Array.map
                (fun d ->
                  Obj
                    [
                      ("busy_s", Float d.d_busy_s);
                      ("barrier_s", Float d.d_barrier_s);
                      ("events", Int d.d_events);
                    ])
                tl.tl_doms)) );
      ( "shard_events",
        List
          (Array.to_list
             (Array.map (fun e -> Int e) tl.tl_shard_events)) );
    ]

let min_pending t =
  Array.fold_left
    (fun acc s ->
      match Heap.min_priority s.s_queue with
      | Some p -> Float.min acc p
      | None -> acc)
    Float.infinity t.shards

let run ?(domains = 1) ?telemetry t ~handler =
  let s = Array.length t.shards in
  let domains = max 1 (min domains s) in
  let run0 = match telemetry with Some _ -> Unix.gettimeofday () | None -> 0.0 in
  let doms =
    match telemetry with
    | None -> [||]
    | Some tl ->
        let d =
          Array.init domains (fun _ ->
              { d_busy_s = 0.0; d_barrier_s = 0.0; d_events = 0 })
        in
        tl.tl_domains <- domains;
        tl.tl_windows <- 0;
        tl.tl_doms <- d;
        d
  in
  (* Contiguous shard blocks per domain, first blocks one larger. *)
  let base = s / domains and extra = s mod domains in
  let lo d = (d * base) + min d extra in
  let hi d = lo (d + 1) in
  let barrier = barrier_create domains in
  let window_end = ref Float.infinity in
  let finished = ref false in
  (* First handler exception wins; the failing domain keeps crossing
     barriers (processing nothing) so nobody deadlocks, and the exception
     is re-raised on the calling domain after all joins. *)
  let error : exn option ref = ref None in
  let record e =
    Mutex.lock barrier.b_mutex;
    if !error = None then error := Some e;
    Mutex.unlock barrier.b_mutex
  in
  (let w0 = min_pending t in
   if w0 = Float.infinity then finished := true
   else window_end := w0 +. t.lookahead);
  let drain shard =
    Array.iter
      (fun src ->
        let ob = src.s_outboxes.(shard.s_id) in
        while not (Queue.is_empty ob) do
          let at, msg = Queue.pop ob in
          Heap.insert shard.s_queue at msg
        done)
      t.shards
  in
  let exec_window d w_end =
    try
      for i = lo d to hi d - 1 do
        let shard = t.shards.(i) in
        let ctx = { c_eng = t; c_shard = shard } in
        let continue = ref true in
        while !continue do
          if Heap.is_empty shard.s_queue then continue := false
          else
            let at = Heap.min_priority_exn shard.s_queue in
            if at >= w_end then continue := false
            else begin
              let msg = Heap.pop_exn shard.s_queue in
              shard.s_clock <- at;
              shard.s_executed <- shard.s_executed + 1;
              handler ctx msg
            end
        done
      done
    with e -> record e
  in
  (* All drains are complete; the last domain picks the next window (and,
     under telemetry, counts it — it holds the barrier lock here). *)
  let pick_next () =
    (match telemetry with
    | Some tl -> tl.tl_windows <- tl.tl_windows + 1
    | None -> ());
    if !error <> None then finished := true
    else
      let m = min_pending t in
      if m = Float.infinity then finished := true
      else window_end := Float.max (m +. t.lookahead) !window_end
  in
  let worker d () =
    while not !finished do
      let w_end = !window_end in
      exec_window d w_end;
      (* All outboxes for this window are complete. *)
      cross barrier (fun () -> ());
      for i = lo d to hi d - 1 do
        drain t.shards.(i)
      done;
      cross barrier pick_next
    done
  in
  (* Telemetered twin: identical structure plus five clock reads per
     window. Busy time is event execution + outbox drains; barrier time
     is the two crossings. The plain worker stays clock-free. *)
  let worker_timed d () =
    let st = doms.(d) in
    while not !finished do
      let w_end = !window_end in
      let t0 = Unix.gettimeofday () in
      exec_window d w_end;
      let t1 = Unix.gettimeofday () in
      cross barrier (fun () -> ());
      let t2 = Unix.gettimeofday () in
      for i = lo d to hi d - 1 do
        drain t.shards.(i)
      done;
      let t3 = Unix.gettimeofday () in
      cross barrier pick_next;
      let t4 = Unix.gettimeofday () in
      st.d_busy_s <- st.d_busy_s +. (t1 -. t0) +. (t3 -. t2);
      st.d_barrier_s <- st.d_barrier_s +. (t2 -. t1) +. (t4 -. t3)
    done
  in
  let worker = match telemetry with Some _ -> worker_timed | None -> worker in
  if domains = 1 then worker 0 ()
  else begin
    let spawned =
      List.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    List.iter Domain.join spawned
  end;
  (match telemetry with
  | Some tl ->
      tl.tl_wall_s <- Unix.gettimeofday () -. run0;
      tl.tl_shard_events <- Array.map (fun sh -> sh.s_executed) t.shards;
      Array.iteri
        (fun d st ->
          let ev = ref 0 in
          for i = lo d to hi d - 1 do
            ev := !ev + t.shards.(i).s_executed
          done;
          st.d_events <- !ev)
        doms
  | None -> ());
  match !error with Some e -> raise e | None -> ()
