(** Parallel mesh traffic simulation — the {!Par_engine} showcase.

    A synthetic packet workload on a 2-D mesh: per-node Poisson injection,
    dimension-order wormhole routing with per-hop header latency and
    directed-link queueing. Unlike the DSM stack (whose eager wormhole
    model has zero lookahead and is therefore inherently serial), every
    inter-row interaction here takes at least one hop, so the model shards
    one-row-per-shard under the conservative engine and runs on any number
    of domains with {b byte-identical} results.

    Determinism: per-node PRNG streams are derived from the seed alone,
    link occupancy is owned by the source node's shard, and per-shard
    statistics are merged in shard order — nothing depends on the domain
    count or OS scheduling. *)

type pattern =
  | Uniform  (** every other node equally likely *)
  | Transpose  (** node (r, c) sends to (c, r) *)
  | Hotspot  (** 20% of traffic converges on node 0 *)

val pattern_name : pattern -> string
val pattern_of_string : string -> pattern option

type result = {
  r_injected : int;
  r_delivered : int;  (** always equals [r_injected] after drain *)
  r_lat_mean_us : float;
  r_lat_max_us : float;
  r_hops : int;
  r_events : int;  (** engine events executed *)
}

val run :
  ?domains:int ->
  ?telemetry:Par_engine.telemetry ->
  ?seed:int ->
  ?size:int ->
  ?machine:Machine.t ->
  rows:int ->
  cols:int ->
  rate:float ->
  horizon:float ->
  pattern:pattern ->
  unit ->
  result
(** [run ~rows ~cols ~rate ~horizon ~pattern ()] injects packets at
    [rate] packets/us per node until the simulated [horizon] (us), then
    drains in-flight packets. [size] is the packet payload in bytes
    (default 64); [domains] defaults to 1. The result is identical for
    every [domains] value, with or without [telemetry] (see
    {!Par_engine.run}). *)

val render : result -> string
(** One-line deterministic summary (no wall-clock), suitable for
    byte-comparing runs. *)
