(* Parallel mesh traffic simulation on top of Par_engine.

   The protocol-coupled DSM stack cannot be sharded without changing its
   results (a send reserves every link of its route and the destination
   CPU at the send instant — zero lookahead). This model is the
   shard-friendly counterpart: packets move hop by hop, each hop costing
   [hop_latency] plus queueing on the (directed) outgoing link, so all
   interactions between rows are at least one hop apart and the
   conservative engine applies with lookahead = hop_latency.

   Sharding: one logical shard per mesh row, whatever the domain count.
   Dimension-order routing adjusts the column first, so a packet's
   horizontal hops stay inside its current row's shard; each vertical hop
   crosses exactly one shard boundary. Every directed link is owned by
   the shard of its source node, so link occupancy words are only ever
   touched by their owner shard.

   Everything — per-node Poisson processes (seeded by hash2(seed, node)),
   link queueing, per-shard stats merged in shard order — is a function of
   model state alone, so results are byte-identical for any domain
   count. *)

module Prng = Diva_util.Prng

type pattern = Uniform | Transpose | Hotspot

let pattern_name = function
  | Uniform -> "uniform"
  | Transpose -> "transpose"
  | Hotspot -> "hotspot"

let pattern_of_string = function
  | "uniform" -> Some Uniform
  | "transpose" -> Some Transpose
  | "hotspot" -> Some Hotspot
  | _ -> None

type ev =
  | Inject of int (* node *)
  | Arrive of { node : int; dst : int; injected : float; hops : int }

type stats = {
  mutable st_injected : int;
  mutable st_delivered : int;
  mutable st_lat_sum : float;
  mutable st_lat_max : float;
  mutable st_hops : int;
}

type result = {
  r_injected : int;
  r_delivered : int;
  r_lat_mean_us : float;
  r_lat_max_us : float;
  r_hops : int;
  r_events : int;
}

type model = {
  rows : int;
  cols : int;
  rate : float; (* packets per microsecond per node *)
  horizon : float;
  size : int;
  pattern : pattern;
  machine : Machine.t;
  prngs : Prng.t array; (* per node, touched only by its row's shard *)
  (* Directed-link busy-until times, indexed by source node. *)
  free_e : float array;
  free_w : float array;
  free_s : float array;
  free_n : float array;
  stats : stats array; (* per shard *)
}

let draw_dst m r node =
  let n = m.rows * m.cols in
  match m.pattern with
  | Uniform ->
      let rec go () =
        let d = Prng.int r n in
        if d = node then go () else d
      in
      go ()
  | Transpose ->
      let row = node / m.cols and col = node mod m.cols in
      let d = ((col mod m.rows) * m.cols) + (row mod m.cols) in
      if d = node then (node + 1) mod n else d
  | Hotspot ->
      (* 20% of traffic converges on node 0. *)
      if Prng.float r 1.0 < 0.2 && node <> 0 then 0
      else
        let rec go () =
          let d = Prng.int r n in
          if d = node then go () else d
        in
        go ()

let exp_gap r rate = -.Float.log (1.0 -. Prng.float r 1.0) /. rate

(* One wormhole hop: queue on the directed link owned by [node], then
   surface at the neighbouring node after the header latency. *)
let hop m ctx ~node ~dst ~injected ~hops =
  let now = Par_engine.ctx_now ctx in
  let row = node / m.cols and col = node mod m.cols in
  let drow = dst / m.cols and dcol = dst mod m.cols in
  let free, next =
    if dcol > col then (m.free_e, node + 1)
    else if dcol < col then (m.free_w, node - 1)
    else if drow > row then (m.free_s, node + m.cols)
    else (m.free_n, node - m.cols)
  in
  let depart = Float.max now free.(node) in
  free.(node) <- depart +. Machine.transfer_time m.machine m.size;
  let at = depart +. m.machine.Machine.hop_latency in
  let arrive = Arrive { node = next; dst; injected; hops = hops + 1 } in
  let next_row = next / m.cols in
  if next_row = row then Par_engine.ctx_schedule ctx ~at arrive
  else Par_engine.ctx_post ctx ~dst:next_row ~at arrive

let handler m ctx ev =
  let st = m.stats.(Par_engine.ctx_shard ctx) in
  match ev with
  | Inject node ->
      let now = Par_engine.ctx_now ctx in
      let r = m.prngs.(node) in
      let dst = draw_dst m r node in
      st.st_injected <- st.st_injected + 1;
      hop m ctx ~node ~dst ~injected:now ~hops:0;
      let next = now +. exp_gap r m.rate in
      if next < m.horizon then Par_engine.ctx_schedule ctx ~at:next (Inject node)
  | Arrive { node; dst; injected; hops } ->
      if node = dst then begin
        let lat = Par_engine.ctx_now ctx -. injected in
        st.st_delivered <- st.st_delivered + 1;
        st.st_lat_sum <- st.st_lat_sum +. lat;
        st.st_lat_max <- Float.max st.st_lat_max lat;
        st.st_hops <- st.st_hops + hops
      end
      else hop m ctx ~node ~dst ~injected ~hops

let run ?(domains = 1) ?telemetry ?(seed = 17) ?(size = 64)
    ?(machine = Machine.gcel) ~rows ~cols ~rate ~horizon ~pattern () =
  if rows < 1 || cols < 1 || rows * cols < 2 then
    invalid_arg "Traffic.run: need at least 2 nodes";
  if not (rate > 0.0 && horizon > 0.0) then
    invalid_arg "Traffic.run: rate and horizon must be > 0";
  let n = rows * cols in
  let m =
    {
      rows;
      cols;
      rate;
      horizon;
      size;
      pattern;
      machine;
      prngs =
        Array.init n (fun i ->
            Prng.create
              ~seed:(Int64.to_int (Prng.hash2 (Int64.of_int seed) i)));
      free_e = Array.make n 0.0;
      free_w = Array.make n 0.0;
      free_s = Array.make n 0.0;
      free_n = Array.make n 0.0;
      stats =
        Array.init rows (fun _ ->
            {
              st_injected = 0;
              st_delivered = 0;
              st_lat_sum = 0.0;
              st_lat_max = 0.0;
              st_hops = 0;
            });
    }
  in
  let eng =
    Par_engine.create ~shards:rows ~lookahead:m.machine.Machine.hop_latency
  in
  (* First injection of every node: one deterministic exponential gap in
     node order, so the seeded queues are identical for any domain count. *)
  for node = 0 to n - 1 do
    let at = exp_gap m.prngs.(node) m.rate in
    if at < horizon then
      Par_engine.schedule_init eng ~shard:(node / cols) ~at (Inject node)
  done;
  Par_engine.run ~domains ?telemetry eng ~handler:(handler m);
  (* Merge per-shard stats in shard order: deterministic float sums. *)
  let injected = ref 0 and delivered = ref 0 and hops = ref 0 in
  let lat_sum = ref 0.0 and lat_max = ref 0.0 in
  Array.iter
    (fun st ->
      injected := !injected + st.st_injected;
      delivered := !delivered + st.st_delivered;
      hops := !hops + st.st_hops;
      lat_sum := !lat_sum +. st.st_lat_sum;
      lat_max := Float.max !lat_max st.st_lat_max)
    m.stats;
  {
    r_injected = !injected;
    r_delivered = !delivered;
    r_lat_mean_us =
      (if !delivered = 0 then 0.0
       else !lat_sum /. float_of_int !delivered);
    r_lat_max_us = !lat_max;
    r_hops = !hops;
    r_events = Par_engine.events_executed eng;
  }

let render r =
  Printf.sprintf
    "injected %d, delivered %d, mean latency %.3f us, max latency %.3f us, \
     total hops %d, events %d"
    r.r_injected r.r_delivered r.r_lat_mean_us r.r_lat_max_us r.r_hops
    r.r_events
