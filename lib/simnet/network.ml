module Prng = Diva_util.Prng
module Mesh = Diva_mesh.Mesh
module Trace = Diva_obs.Trace
module Metrics = Diva_obs.Metrics

type payload = ..
type payload += Empty

type msg = { m_src : Mesh.node; m_dst : Mesh.node; m_size : int; m_payload : payload }

type waiter = { w_filter : msg -> bool; w_resume : msg -> unit }

type mailbox = { mutable inbox : msg list (* oldest first *); mutable waiters : waiter list }

type t = {
  sim : Sim.t;
  mesh : Mesh.t;
  machine : Machine.t;
  root_rng : Prng.t;
  link_free : float array;
  stats : Link_stats.t;
  cpu_free : float array;
  pending_compute : float array;
  node_compute : float array;
  handlers : (t -> msg -> unit) array;
  mailboxes : mailbox array;
  node_startup_count : int array;
  mutable startup_count : int;
  mutable fibers : int;
  mutable trace : Trace.sink;
}

let default_handler t msg =
  let mb = t.mailboxes.(msg.m_dst) in
  let rec try_waiters acc = function
    | [] ->
        mb.waiters <- List.rev acc;
        mb.inbox <- mb.inbox @ [ msg ]
    | w :: rest ->
        if w.w_filter msg then begin
          mb.waiters <- List.rev_append acc rest;
          w.w_resume msg
        end
        else try_waiters (w :: acc) rest
  in
  try_waiters [] mb.waiters

let create_nd ?(machine = Machine.gcel) ?(seed = 42) ~dims () =
  let mesh = Mesh.create_nd ~dims in
  let n = Mesh.num_nodes mesh in
  let nl = Mesh.num_links mesh in
  {
    sim = Sim.create ();
    mesh;
    machine;
    root_rng = Prng.create ~seed;
    link_free = Array.make nl 0.0;
    stats = Link_stats.create ~num_links:nl;
    cpu_free = Array.make n 0.0;
    pending_compute = Array.make n 0.0;
    node_compute = Array.make n 0.0;
    handlers = Array.make n default_handler;
    mailboxes = Array.init n (fun _ -> { inbox = []; waiters = [] });
    node_startup_count = Array.make n 0;
    startup_count = 0;
    fibers = 0;
    trace = Trace.null;
  }

let create ?machine ?seed ~rows ~cols () =
  create_nd ?machine ?seed ~dims:[| rows; cols |] ()

let mesh t = t.mesh
let sim t = t.sim
let machine t = t.machine
let rng t = t.root_rng
let now t = Sim.now t.sim
let num_nodes t = Mesh.num_nodes t.mesh
let set_handler t node h = t.handlers.(node) <- h
let stats t = t.stats
let startups t = t.startup_count
let node_startups t node = t.node_startup_count.(node)
let compute_time t node = t.node_compute.(node)
let max_compute_time t = Array.fold_left Float.max 0.0 t.node_compute
let total_compute_time t = Array.fold_left ( +. ) 0.0 t.node_compute
let compute_times t = Array.copy t.node_compute
let live_fibers t = t.fibers
let trace t = t.trace
let set_trace t sink = t.trace <- sink

(* Standard observability gauges plus a periodic sampler on the simulated
   clock. Sampling only reads state (the Sim advance hook schedules
   nothing), so attaching metrics cannot perturb the run. *)
let attach_metrics t ?(interval = 1000.0) m =
  if not (Float.is_finite interval) || interval <= 0.0 then
    invalid_arg "Network.attach_metrics: interval must be positive";
  let busy free = float_of_int (Array.fold_left
      (fun acc f -> if f > Sim.now t.sim then acc + 1 else acc) 0 free)
  in
  Metrics.gauge m "congestion_msgs"
    (fun () -> float_of_int (Link_stats.congestion_msgs t.stats));
  Metrics.gauge m "congestion_bytes"
    (fun () -> float_of_int (Link_stats.congestion_bytes t.stats));
  Metrics.gauge m "total_msgs"
    (fun () -> float_of_int (Link_stats.total_msgs t.stats));
  Metrics.gauge m "total_bytes"
    (fun () -> float_of_int (Link_stats.total_bytes t.stats));
  Metrics.gauge m "links_busy" (fun () -> busy t.link_free);
  Metrics.gauge m "cpus_busy" (fun () -> busy t.cpu_free);
  Metrics.gauge m "startups" (fun () -> float_of_int t.startup_count);
  Metrics.gauge m "total_compute"
    (fun () -> Array.fold_left ( +. ) 0.0 t.node_compute);
  Metrics.gauge m "live_fibers" (fun () -> float_of_int t.fibers);
  let next = ref interval in
  Sim.set_advance_hook t.sim (fun _old_clock new_clock ->
      while !next <= new_clock do
        Metrics.sample m ~ts:!next;
        next := !next +. interval
      done)

(* Reserve the node's CPU for [dt] starting no earlier than [from]; returns
   the completion time. Pending charged computation is folded in first. *)
let reserve_cpu t node ~from dt =
  let pending = t.pending_compute.(node) in
  t.pending_compute.(node) <- 0.0;
  let start = Float.max from t.cpu_free.(node) in
  let fin = start +. pending +. dt in
  t.cpu_free.(node) <- fin;
  fin

let deliver t msg at =
  (* Receive overhead on the destination CPU, then the handler runs. *)
  let handle_at = reserve_cpu t msg.m_dst ~from:at t.machine.Machine.recv_overhead in
  Sim.schedule t.sim handle_at (fun () -> t.handlers.(msg.m_dst) t msg)

let send t ~src ~dst ~size payload =
  let msg = { m_src = src; m_dst = dst; m_size = size; m_payload = payload } in
  if src = dst then begin
    (* Node-local protocol hop: no startup, no network traffic. *)
    if Trace.enabled t.trace then
      Trace.emit t.trace
        (Trace.Msg_send { ts = now t; src; dst; size; local = true });
    let at = reserve_cpu t src ~from:(now t) t.machine.Machine.local_overhead in
    Sim.schedule t.sim at (fun () -> t.handlers.(dst) t msg)
  end
  else begin
    if Trace.enabled t.trace then
      Trace.emit t.trace
        (Trace.Msg_send { ts = now t; src; dst; size; local = false });
    t.startup_count <- t.startup_count + 1;
    t.node_startup_count.(src) <- t.node_startup_count.(src) + 1;
    let inject_at = reserve_cpu t src ~from:(now t) t.machine.Machine.send_overhead in
    let occupancy = Machine.transfer_time t.machine size in
    (* Eager wormhole approximation: the header advances hop by hop, each
       link is occupied for the full transfer time, the tail leaves the last
       link [occupancy] after the header entered it. *)
    let arrival = ref inject_at in
    let last_start = ref inject_at in
    Mesh.iter_route t.mesh ~src ~dst (fun link ->
        let start = Float.max !arrival t.link_free.(link) in
        t.link_free.(link) <- start +. occupancy;
        Link_stats.record t.stats ~link ~bytes:size;
        if Trace.enabled t.trace then
          Trace.emit t.trace
            (Trace.Link_xfer
               { start; finish = start +. occupancy; link; src; dst; size });
        last_start := start;
        arrival := start +. t.machine.Machine.hop_latency);
    let delivered_at = !last_start +. occupancy in
    if Trace.enabled t.trace then
      Trace.emit t.trace
        (Trace.Msg_deliver { ts = delivered_at; src; dst; size });
    deliver t msg delivered_at
  end

(* ------------------------------------------------------------------ *)
(* Fibers                                                              *)
(* ------------------------------------------------------------------ *)

type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let suspend register = Effect.perform (Suspend register)

let spawn t node f =
  t.fibers <- t.fibers + 1;
  let open Effect.Deep in
  let body () =
    match_with f ()
      {
        retc = (fun () -> t.fibers <- t.fibers - 1);
        exnc = raise;
        effc =
          (fun (type b) (eff : b Effect.t) ->
            match eff with
            | Suspend register ->
                Some
                  (fun (k : (b, _) continuation) ->
                    register (fun v -> continue k v))
            | _ -> None);
      }
  in
  ignore node;
  Sim.schedule_now t.sim body

let compute t node dt =
  if dt < 0.0 then invalid_arg "Network.compute: negative time";
  t.node_compute.(node) <- t.node_compute.(node) +. dt;
  let fin = reserve_cpu t node ~from:(now t) dt in
  suspend (fun resume -> Sim.schedule t.sim fin (fun () -> resume ()))

let charge t node dt =
  if dt < 0.0 then invalid_arg "Network.charge: negative time";
  t.node_compute.(node) <- t.node_compute.(node) +. dt;
  t.pending_compute.(node) <- t.pending_compute.(node) +. dt

let flush_charge t node =
  if t.pending_compute.(node) > 0.0 then compute t node 0.0

let recv t node ?(where = fun _ -> true) () =
  let mb = t.mailboxes.(node) in
  let rec remove_first = function
    | [] -> None
    | m :: rest ->
        if where m then Some (m, rest)
        else
          Option.map (fun (found, rest') -> (found, m :: rest')) (remove_first rest)
  in
  match remove_first mb.inbox with
  | Some (m, rest) ->
      mb.inbox <- rest;
      m
  | None ->
      suspend (fun resume ->
          mb.waiters <- mb.waiters @ [ { w_filter = where; w_resume = resume } ])

let mailbox_deliver t msg = default_handler t msg

let run t =
  Sim.run t.sim;
  if t.fibers > 0 then
    failwith
      (Printf.sprintf
         "Network.run: deadlock — %d fiber(s) still blocked at t = %.1f us"
         t.fibers (now t))
