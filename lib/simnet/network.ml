module Prng = Diva_util.Prng
module Mesh = Diva_mesh.Mesh
module Trace = Diva_obs.Trace
module Metrics = Diva_obs.Metrics
module Faults = Diva_faults.Faults
module Prof = Diva_obs.Prof
module Flight = Diva_obs.Flight

type payload = ..
type payload += Empty

type msg = {
  m_src : Mesh.node;
  m_dst : Mesh.node;
  m_size : int;
  m_tag : int;  (* selective-receive key; -1 = untagged *)
  m_payload : payload;
}

(* A blocked receive. [W_tag]/[W_any] match structurally; [W_pred] runs an
   arbitrary filter. Waiters are matched in registration (FIFO) order. *)
type wkind = W_any | W_tag of int | W_pred of (msg -> bool)
type waiter = { w_kind : wkind; w_resume : msg -> unit }

(* Mailbox entry shared between the arrival-order queue and the per-tag
   index. Consuming a message from either view marks the slot taken; the
   other view drops taken slots lazily when they reach its front, so a
   selective receive never rewrites queue contents (the old implementation
   rotated the whole inbox through a scratch queue per filtered receive —
   O(n) each; tagged receive is now O(1) amortized). *)
type slot = { sl_msg : msg; mutable sl_taken : bool }

type mailbox = {
  inbox : slot Queue.t;  (* every arrival, oldest first *)
  by_tag : (int, slot Queue.t) Hashtbl.t;  (* tagged arrivals only *)
  mutable waiters : waiter list;
}

(* Reliable-delivery envelope, used only while a fault schedule is
   installed. Payloads are wrapped in [Env] and acknowledged with [Ack];
   unacknowledged envelopes retransmit on an exponential-backoff timer.
   At-least-once transmission plus the receiver-side seen-set gives
   exactly-once handling. Both constructors are private to this module. *)
type payload += Env of { seq : int; inner : payload } | Ack of { seq : int }

type pend = {
  p_id : int;  (* causal message id; retransmissions keep it *)
  p_txn : int;
  p_level : int;  (* access-tree level tag of the original send *)
  p_src : Mesh.node;
  p_dst : Mesh.node;
  p_size : int;
  p_tag : int;
  p_inner : payload;
  mutable p_attempt : int;
  mutable p_last_tx : float;  (* start of the most recent transmission *)
}

type reliable = {
  rl_faults : Faults.t;
  mutable rl_next_seq : int;
  rl_pending : (int, pend) Hashtbl.t;  (* unacked envelopes by seq *)
  rl_seen : (int, unit) Hashtbl.t;  (* seqs already handed to a handler *)
}

(* All-float scratch record for the route walk. OCaml stores records whose
   fields are all floats flat, so these are unboxed mutable slots: the old
   per-send [float ref] accumulators boxed a fresh float on every hop.
   Safe to share per network: the walk never re-enters [send]. *)
type walk_scratch = {
  mutable wk_arrival : float;
  mutable wk_last_start : float;
  mutable wk_last_occupancy : float;
}

type t = {
  sim : Sim.t;
  mesh : Mesh.t;
  machine : Machine.t;
  root_rng : Prng.t;
  route_buf : int array;  (* scratch for [Mesh.route_into] on send paths *)
  walk : walk_scratch;
  link_free : float array;
  stats : Link_stats.t;
  cpu_free : float array;
  pending_compute : float array;
  node_compute : float array;
  handlers : (t -> msg -> unit) array;
  mailboxes : mailbox array;
  node_startup_count : int array;
  mutable startup_count : int;
  mutable fibers : int;
  mutable trace : Trace.sink;
  mutable prof : Prof.t option;
  mutable rel : reliable option;  (* Some iff an active fault schedule is installed *)
  (* Causal context. [cur_msg]/[cur_txn] identify the message (and the DSM
     transaction it serves) whose handler is currently executing; sends
     issued inside the handler inherit them. Both are [-1] at top level
     (fiber bodies, timers). The counters advance unconditionally — traced
     and untraced runs allocate the same ids — and nothing in the
     simulation reads them, so causal tracking cannot perturb a run. *)
  mutable next_msg_id : int;
  mutable next_txn_id : int;
  mutable cur_msg : int;
  mutable cur_txn : int;
  mutable next_level : int;  (* one-shot tree-level tag for the next send *)
}

let waiter_matches w msg =
  match w.w_kind with
  | W_any -> true
  | W_tag k -> msg.m_tag = k
  | W_pred f -> f msg

let default_handler t msg =
  let mb = t.mailboxes.(msg.m_dst) in
  let rec try_waiters acc = function
    | [] ->
        mb.waiters <- List.rev acc;
        let sl = { sl_msg = msg; sl_taken = false } in
        Queue.add sl mb.inbox;
        if msg.m_tag >= 0 then begin
          let q =
            match Hashtbl.find_opt mb.by_tag msg.m_tag with
            | Some q -> q
            | None ->
                let q = Queue.create () in
                Hashtbl.add mb.by_tag msg.m_tag q;
                q
          in
          Queue.add sl q
        end
    | w :: rest ->
        if waiter_matches w msg then begin
          mb.waiters <- List.rev_append acc rest;
          w.w_resume msg
        end
        else try_waiters (w :: acc) rest
  in
  try_waiters [] mb.waiters

let create_nd ?(machine = Machine.gcel) ?(seed = 42) ~dims () =
  let mesh = Mesh.create_nd ~dims in
  let n = Mesh.num_nodes mesh in
  let nl = Mesh.num_links mesh in
  {
    sim = Sim.create ();
    mesh;
    machine;
    root_rng = Prng.create ~seed;
    route_buf = Array.make (max 1 (Mesh.max_route_length mesh)) 0;
    walk = { wk_arrival = 0.0; wk_last_start = 0.0; wk_last_occupancy = 0.0 };
    link_free = Array.make nl 0.0;
    stats = Link_stats.create ~num_links:nl;
    cpu_free = Array.make n 0.0;
    pending_compute = Array.make n 0.0;
    node_compute = Array.make n 0.0;
    handlers = Array.make n default_handler;
    mailboxes =
      Array.init n (fun _ ->
          { inbox = Queue.create (); by_tag = Hashtbl.create 4; waiters = [] });
    node_startup_count = Array.make n 0;
    startup_count = 0;
    fibers = 0;
    trace = Trace.null;
    prof = None;
    rel = None;
    next_msg_id = 0;
    next_txn_id = 0;
    cur_msg = -1;
    cur_txn = -1;
    next_level = -1;
  }

let create ?machine ?seed ~rows ~cols () =
  create_nd ?machine ?seed ~dims:[| rows; cols |] ()

let mesh t = t.mesh
let sim t = t.sim
let machine t = t.machine
let rng t = t.root_rng
let now t = Sim.now t.sim
let num_nodes t = Mesh.num_nodes t.mesh
let set_handler t node h = t.handlers.(node) <- h
let stats t = t.stats
let startups t = t.startup_count
let node_startups t node = t.node_startup_count.(node)
let compute_time t node = t.node_compute.(node)
let max_compute_time t = Array.fold_left Float.max 0.0 t.node_compute
let total_compute_time t = Array.fold_left ( +. ) 0.0 t.node_compute
let compute_times t = Array.copy t.node_compute
let live_fibers t = t.fibers
let trace t = t.trace
let set_trace t sink = t.trace <- sink

(* Causal context (see the [t] field comments). *)
let fresh_txn t =
  let id = t.next_txn_id in
  t.next_txn_id <- id + 1;
  id

let set_txn t txn = t.cur_txn <- txn
let cur_txn t = t.cur_txn
let cur_msg t = t.cur_msg
let tag_level t level = t.next_level <- level

let fresh_msg_id t =
  let id = t.next_msg_id in
  t.next_msg_id <- id + 1;
  id

let set_faults t f =
  (* Installing the empty schedule is a no-op: every query degenerates to
     the identity, so the run stays bit-identical to a fault-free one and
     we keep the (cheaper, envelope-free) legacy send path. *)
  if Faults.active f then begin
    if t.rel <> None then invalid_arg "Network.set_faults: faults already installed";
    t.rel <-
      Some
        {
          rl_faults = f;
          rl_next_seq = 0;
          rl_pending = Hashtbl.create 256;
          rl_seen = Hashtbl.create 1024;
        }
  end

let faults t = Option.map (fun r -> r.rl_faults) t.rel

(* Standard observability gauges plus a periodic sampler on the simulated
   clock. Sampling only reads state (the Sim advance hook schedules
   nothing), so attaching metrics cannot perturb the run. *)
let attach_metrics t ?(interval = 1000.0) m =
  if not (Float.is_finite interval) || interval <= 0.0 then
    invalid_arg "Network.attach_metrics: interval must be positive";
  let busy free = float_of_int (Array.fold_left
      (fun acc f -> if f > Sim.now t.sim then acc + 1 else acc) 0 free)
  in
  Metrics.gauge m "congestion_msgs"
    (fun () -> float_of_int (Link_stats.congestion_msgs t.stats));
  Metrics.gauge m "congestion_bytes"
    (fun () -> float_of_int (Link_stats.congestion_bytes t.stats));
  Metrics.gauge m "total_msgs"
    (fun () -> float_of_int (Link_stats.total_msgs t.stats));
  Metrics.gauge m "total_bytes"
    (fun () -> float_of_int (Link_stats.total_bytes t.stats));
  Metrics.gauge m "links_busy" (fun () -> busy t.link_free);
  Metrics.gauge m "cpus_busy" (fun () -> busy t.cpu_free);
  Metrics.gauge m "startups" (fun () -> float_of_int t.startup_count);
  Metrics.gauge m "total_compute"
    (fun () -> Array.fold_left ( +. ) 0.0 t.node_compute);
  Metrics.gauge m "live_fibers" (fun () -> float_of_int t.fibers);
  (match t.rel with
  | None -> ()
  | Some rel ->
      let f = rel.rl_faults in
      Metrics.gauge m "faults_lost"
        (fun () -> float_of_int (Faults.lost_total f));
      Metrics.gauge m "faults_retransmits"
        (fun () -> float_of_int (Faults.retransmits f));
      Metrics.gauge m "faults_pending"
        (fun () -> float_of_int (Hashtbl.length rel.rl_pending)));
  let next = ref interval in
  Sim.add_advance_hook t.sim (fun _old_clock new_clock ->
      while !next <= new_clock do
        Metrics.sample m ~ts:!next;
        next := !next +. interval
      done)

(* Host-side self-profiling: route the event loop through its profiled
   twin and drive the window series from the same observe-only advance
   hook the metrics sampler uses. Attribution refinements below (protocol
   layer, strategy handlers) key off [t.prof]. *)
let attach_prof t p =
  t.prof <- Some p;
  Sim.set_prof t.sim p;
  Prof.arm p;
  let w = Prof.window_us p in
  let next = ref w in
  Sim.add_advance_hook t.sim (fun _old_clock new_clock ->
      while !next <= new_clock do
        Prof.sample p ~sim_us:!next ~events:(Sim.events_executed t.sim);
        next := !next +. w
      done)

let prof t = t.prof

(* Flight-recorder health snapshots on the simulated clock. Event-ring
   recording is wired where the sink is built (the recorder must wrap the
   sink before anyone keeps a reference); this attaches only the periodic
   snapshot hook. *)
let attach_flight t ?(interval = 5000.0) fl =
  if not (Float.is_finite interval) || interval <= 0.0 then
    invalid_arg "Network.attach_flight: interval must be positive";
  let next = ref interval in
  Sim.add_advance_hook t.sim (fun _old_clock new_clock ->
      while !next <= new_clock do
        Flight.snapshot fl
          {
            Flight.sn_wall = Unix.gettimeofday ();
            sn_sim_us = !next;
            sn_events = Sim.events_executed t.sim;
            sn_pending = Sim.pending t.sim;
            sn_fibers = t.fibers;
            sn_inflight =
              (match t.rel with
              | Some rel -> Hashtbl.length rel.rl_pending
              | None -> 0);
            sn_reissues =
              (match t.rel with
              | Some rel -> Faults.dsm_reissues rel.rl_faults
              | None -> 0);
          };
        next := !next +. interval
      done)

(* Reserve the node's CPU for [dt] starting no earlier than [from]; returns
   the completion time. Pending charged computation is folded in first. *)
let reserve_cpu t node ~from dt =
  let pending = t.pending_compute.(node) in
  t.pending_compute.(node) <- 0.0;
  let start = Float.max from t.cpu_free.(node) in
  let start =
    match t.rel with
    | Some r -> Faults.defer r.rl_faults ~node start
    | None -> start
  in
  let fin = start +. pending +. dt in
  t.cpu_free.(node) <- fin;
  fin

(* Packed argument for the delivery event. The hottest schedule site in the
   simulator is "run this message's handler at time T with causal context
   (id, txn)": scheduling it as [Sim.schedule_call run_dispatch dctx]
   allocates one 4-word record instead of the two closure environments the
   old [fun () -> with_ctx ... (fun () -> dispatch ...)] chain cost. *)
type dctx = { dx_net : t; dx_msg : msg; dx_id : int; dx_txn : int }

(* Schedules the handler and returns the time it runs, so the caller can
   record it in the delivery event. *)
let rec deliver t msg ~id ~txn at =
  (* Receive overhead on the destination CPU, then the handler runs. *)
  let handle_at = reserve_cpu t msg.m_dst ~from:at t.machine.Machine.recv_overhead in
  Sim.schedule_call t.sim handle_at run_dispatch
    { dx_net = t; dx_msg = msg; dx_id = id; dx_txn = txn };
  handle_at

(* Static dispatch trampoline: set the causal context, run the envelope
   layer / handler, reset. Equivalent to [with_ctx t (dispatch t msg)] but
   shared by every delivery event instead of rebuilt per message. *)
and run_dispatch dc =
  let t = dc.dx_net in
  t.cur_msg <- dc.dx_id;
  t.cur_txn <- dc.dx_txn;
  (match t.prof with
  | Some p -> Prof.set_sub p Prof.Protocol
  | None -> ());
  dispatch t dc.dx_msg;
  t.cur_msg <- -1;
  t.cur_txn <- -1

(* Envelope layer between physical delivery and the node handler. Without
   installed faults this is exactly the legacy handler call. *)
and dispatch t msg =
  match t.rel with
  | None -> t.handlers.(msg.m_dst) t msg
  | Some rel -> (
      match msg.m_payload with
      | Ack { seq } ->
          if Hashtbl.mem rel.rl_pending seq then begin
            Hashtbl.remove rel.rl_pending seq;
            Faults.count_ack rel.rl_faults
          end
      | Env { seq; inner } ->
          (* Always (re-)acknowledge — the previous ack may have been lost —
             but hand only the first copy to the handler. Acks have no
             [Msg_send] of their own, so they carry id [-1] (the sentinel
             analyzers filter on) and inherit the envelope's transaction. *)
          ignore
            (transmit t rel ~id:(-1) ~txn:t.cur_txn ~level:(-1)
               { m_src = msg.m_dst; m_dst = msg.m_src;
                 m_size = Faults.ack_size; m_tag = -1; m_payload = Ack { seq } }
              : float * float);
          if not (Hashtbl.mem rel.rl_seen seq) then begin
            Hashtbl.add rel.rl_seen seq ();
            t.handlers.(msg.m_dst) t { msg with m_payload = inner }
          end
      | _ -> t.handlers.(msg.m_dst) t msg)

(* One physical transmission attempt under an installed fault schedule:
   same wormhole model as the fault-free path, plus per-link slowdown
   factors, outage and crash-window loss, and seeded probabilistic loss.
   Lost messages are traced and counted, never delivered. Returns the
   attempt's outcome time — delivery or loss — so retry timers can be
   armed from when the attempt actually resolved rather than when it was
   injected (a message queued behind congested links must not be
   retransmitted while still in flight: that feedback loop melts the
   network). Returns [(inject_at, outcome)].

   [?inject] lets the caller reserve the sender's CPU (and account the
   startup) itself before calling, so it can emit the [Msg_send] event
   ahead of the attempt's link crossings. *)
and transmit ?inject t rel ~id ~txn ~level msg =
  let f = rel.rl_faults in
  let src = msg.m_src and dst = msg.m_dst and size = msg.m_size in
  (* Acks are modelled as hardware-level control messages: they occupy
     links like any flit but cost no CPU overhead on either side and do
     not count as startups. Charging the full 500 us send/recv overhead
     per ack doubles the CPU load of every hot protocol node, which
     inflates latencies past the retry timeout and feeds a spurious
     retransmission spiral. *)
  let is_ack = match msg.m_payload with Ack _ -> true | _ -> false in
  let inject_at =
    match inject with
    | Some at -> at
    | None ->
        if is_ack then Faults.defer f ~node:src (now t)
        else begin
          t.startup_count <- t.startup_count + 1;
          t.node_startup_count.(src) <- t.node_startup_count.(src) + 1;
          reserve_cpu t src ~from:(now t) t.machine.Machine.send_overhead
        end
  in
  if Faults.draw_drop f ~now:inject_at then begin
    Faults.count_lost f Trace.Loss_random;
    if Trace.enabled t.trace then
      Trace.emit t.trace
        (Trace.Msg_lost
           { ts = inject_at; msg = id; txn; src; dst; size;
             reason = Trace.Loss_random });
    (inject_at, inject_at)
  end
  else begin
    let hops = Mesh.route_into t.mesh ~src ~dst t.route_buf in
    let wk = t.walk in
    wk.wk_arrival <- inject_at;
    wk.wk_last_start <- inject_at;
    wk.wk_last_occupancy <- 0.0;
    let lost_at = ref None in
    let h = ref 0 in
    while !lost_at = None && !h < hops do
      let link = t.route_buf.(!h) in
      incr h;
      let start = Float.max wk.wk_arrival t.link_free.(link) in
      if Faults.link_down f ~link ~now:start then begin
        lost_at := Some start;
        Faults.count_lost f Trace.Loss_link_down;
        if Trace.enabled t.trace then
          Trace.emit t.trace
            (Trace.Msg_lost
               { ts = start; msg = id; txn; src; dst; size;
                 reason = Trace.Loss_link_down })
      end
      else begin
        let occupancy =
          Machine.transfer_time t.machine size
          *. Faults.link_factor f ~link ~now:start
        in
        t.link_free.(link) <- start +. occupancy;
        Link_stats.record t.stats ~link ~bytes:size;
        if Trace.enabled t.trace then
          Trace.emit t.trace
            (Trace.Link_xfer
               { start; finish = start +. occupancy; link; msg = id; txn;
                 level; src; dst; size });
        wk.wk_last_start <- start;
        wk.wk_last_occupancy <- occupancy;
        wk.wk_arrival <- start +. t.machine.Machine.hop_latency
      end
    done;
    match !lost_at with
    | Some ts -> (inject_at, ts)
    | None ->
        let delivered_at = wk.wk_last_start +. wk.wk_last_occupancy in
        if Faults.crashed f ~node:dst ~now:delivered_at then begin
          Faults.count_lost f Trace.Loss_crashed;
          if Trace.enabled t.trace then
            Trace.emit t.trace
              (Trace.Msg_lost
                 { ts = delivered_at; msg = id; txn; src; dst; size;
                   reason = Trace.Loss_crashed })
        end
        else begin
          let handled =
            if is_ack then begin
              (* Hardware-level control message: no receive overhead, the
                 envelope layer consumes it at arrival time. *)
              Sim.schedule_call t.sim delivered_at run_dispatch
                { dx_net = t; dx_msg = msg; dx_id = id; dx_txn = txn };
              delivered_at
            end
            else deliver t msg ~id ~txn delivered_at
          in
          if Trace.enabled t.trace then
            Trace.emit t.trace
              (Trace.Msg_deliver
                 { ts = delivered_at; id; txn; handled; src; dst; size })
        end;
        (inject_at, delivered_at)
  end

(* Retransmission timer, armed from the attempt's outcome time [from]
   (delivery or loss) with exponential backoff capped at rto * 2^6. The
   captured attempt number makes stale timers (superseded by an earlier
   retransmit, e.g. a watchdog nudge) no-ops. *)
and arm_timeout t rel seq p ~from =
  let attempt = p.p_attempt in
  let backoff = Faults.rto rel.rl_faults *. Float.of_int (1 lsl min attempt 6) in
  Sim.schedule t.sim (from +. backoff) (fun () ->
      if Hashtbl.mem rel.rl_pending seq && p.p_attempt = attempt then
        retransmit t rel seq p)

and retransmit t rel seq p =
  p.p_attempt <- p.p_attempt + 1;
  p.p_last_tx <- now t;
  Faults.count_retransmit rel.rl_faults;
  if Trace.enabled t.trace then
    Trace.emit t.trace
      (Trace.Msg_retry
         { ts = now t; msg = p.p_id; txn = p.p_txn; src = p.p_src;
           dst = p.p_dst; size = p.p_size; attempt = p.p_attempt });
  let _, outcome =
    transmit t rel ~id:p.p_id ~txn:p.p_txn ~level:p.p_level
      { m_src = p.p_src; m_dst = p.p_dst; m_size = p.p_size; m_tag = p.p_tag;
        m_payload = Env { seq; inner = p.p_inner } }
  in
  arm_timeout t rel seq p ~from:outcome

let send t ?(tag = -1) ~src ~dst ~size payload =
  let msg =
    { m_src = src; m_dst = dst; m_size = size; m_tag = tag; m_payload = payload }
  in
  let id = fresh_msg_id t in
  let txn = t.cur_txn and parent = t.cur_msg and level = t.next_level in
  t.next_level <- -1;
  let t0 = now t in
  if src = dst then begin
    (* Node-local protocol hop: no startup, no network traffic. *)
    let at = reserve_cpu t src ~from:t0 t.machine.Machine.local_overhead in
    if Trace.enabled t.trace then
      Trace.emit t.trace
        (Trace.Msg_send
           { ts = t0; id; parent; txn; inject = at; level; src; dst; size;
             local = true });
    (* [run_dispatch] rather than a direct handler call: application
       payloads never match the (private) envelope constructors, so the
       envelope layer is a no-op for local messages. *)
    Sim.schedule_call t.sim at run_dispatch
      { dx_net = t; dx_msg = msg; dx_id = id; dx_txn = txn }
  end
  else
    match t.rel with
    | Some rel ->
        let seq = rel.rl_next_seq in
        rel.rl_next_seq <- seq + 1;
        Faults.count_enveloped rel.rl_faults;
        let p = { p_id = id; p_txn = txn; p_level = level; p_src = src;
                  p_dst = dst; p_size = size; p_tag = tag; p_inner = payload;
                  p_attempt = 0; p_last_tx = t0 } in
        Hashtbl.add rel.rl_pending seq p;
        (* Reserve the CPU here so [Msg_send] can be emitted before the
           first attempt: single-pass analyzers must see the message
           record before its link crossings (and a same-instant delivery
           or loss). *)
        t.startup_count <- t.startup_count + 1;
        t.node_startup_count.(src) <- t.node_startup_count.(src) + 1;
        let inject_at =
          reserve_cpu t src ~from:t0 t.machine.Machine.send_overhead
        in
        if Trace.enabled t.trace then
          Trace.emit t.trace
            (Trace.Msg_send
               { ts = t0; id; parent; txn; inject = inject_at; level; src;
                 dst; size; local = false });
        let _, outcome =
          transmit ~inject:inject_at t rel ~id ~txn ~level
            { msg with m_payload = Env { seq; inner = payload } }
        in
        arm_timeout t rel seq p ~from:outcome
    | None -> begin
        t.startup_count <- t.startup_count + 1;
        t.node_startup_count.(src) <- t.node_startup_count.(src) + 1;
        let inject_at = reserve_cpu t src ~from:t0 t.machine.Machine.send_overhead in
        if Trace.enabled t.trace then
          Trace.emit t.trace
            (Trace.Msg_send
               { ts = t0; id; parent; txn; inject = inject_at; level; src;
                 dst; size; local = false });
        let occupancy = Machine.transfer_time t.machine size in
        (* Eager wormhole approximation: the header advances hop by hop, each
           link is occupied for the full transfer time, the tail leaves the last
           link [occupancy] after the header entered it. The route is walked
           out of a preallocated buffer with unboxed float accumulators, so
           the whole walk allocates nothing. *)
        let hops = Mesh.route_into t.mesh ~src ~dst t.route_buf in
        let wk = t.walk in
        wk.wk_arrival <- inject_at;
        wk.wk_last_start <- inject_at;
        for h = 0 to hops - 1 do
          let link = t.route_buf.(h) in
          let start = Float.max wk.wk_arrival t.link_free.(link) in
          t.link_free.(link) <- start +. occupancy;
          Link_stats.record t.stats ~link ~bytes:size;
          if Trace.enabled t.trace then
            Trace.emit t.trace
              (Trace.Link_xfer
                 { start; finish = start +. occupancy; link; msg = id; txn;
                   level; src; dst; size });
          wk.wk_last_start <- start;
          wk.wk_arrival <- start +. t.machine.Machine.hop_latency
        done;
        let delivered_at = wk.wk_last_start +. occupancy in
        let handled = deliver t msg ~id ~txn delivered_at in
        if Trace.enabled t.trace then
          Trace.emit t.trace
            (Trace.Msg_deliver
               { ts = delivered_at; id; txn; handled; src; dst; size })
      end

(* Forced early retransmission of the envelopes still pending from [src],
   in seq order for determinism. The DSM watchdog calls this when a
   transaction has been blocked longer than the schedule's patience —
   cheaper and safer than re-issuing the transaction itself, which could
   double-commit a write. Only envelopes idle for at least one rto are
   touched: retransmitting a message that is merely queued behind
   congested links would amplify the very congestion that delayed it. *)
let nudge t ~src =
  match t.rel with
  | None -> ()
  | Some rel ->
      let stale_before = now t -. Faults.rto rel.rl_faults in
      Hashtbl.fold
        (fun seq p acc ->
          if p.p_src = src && p.p_last_tx <= stale_before then (seq, p) :: acc
          else acc)
        rel.rl_pending []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.iter (fun (seq, p) -> retransmit t rel seq p)

(* ------------------------------------------------------------------ *)
(* Fibers                                                              *)
(* ------------------------------------------------------------------ *)

type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let suspend register = Effect.perform (Suspend register)

let spawn t node f =
  t.fibers <- t.fibers + 1;
  let open Effect.Deep in
  let body () =
    match_with f ()
      {
        retc = (fun () -> t.fibers <- t.fibers - 1);
        exnc = raise;
        effc =
          (fun (type b) (eff : b Effect.t) ->
            match eff with
            | Suspend register ->
                Some
                  (fun (k : (b, _) continuation) ->
                    register (fun v -> continue k v))
            | _ -> None);
      }
  in
  ignore node;
  (* Fiber bodies start at top level, outside any message's causal extent. *)
  Sim.schedule_now t.sim (fun () ->
      t.cur_msg <- -1;
      t.cur_txn <- -1;
      body ())

let compute t node dt =
  if dt < 0.0 then invalid_arg "Network.compute: negative time";
  t.node_compute.(node) <- t.node_compute.(node) +. dt;
  let fin = reserve_cpu t node ~from:(now t) dt in
  suspend (fun resume ->
      Sim.schedule t.sim fin (fun () ->
          (* A timer resume is not caused by any message. *)
          t.cur_msg <- -1;
          t.cur_txn <- -1;
          resume ()))

let charge t node dt =
  if dt < 0.0 then invalid_arg "Network.charge: negative time";
  t.node_compute.(node) <- t.node_compute.(node) +. dt;
  t.pending_compute.(node) <- t.pending_compute.(node) +. dt

let flush_charge t node =
  if t.pending_compute.(node) > 0.0 then compute t node 0.0

(* Drop taken slots (consumed through the other view) off the queue front,
   then pop the first live one. Each slot is popped at most twice across
   both views, so the lazy deletion is O(1) amortized. *)
let pop_live q =
  let rec go () =
    match Queue.peek_opt q with
    | None -> None
    | Some sl ->
        ignore (Queue.pop q : slot);
        if sl.sl_taken then go ()
        else begin
          sl.sl_taken <- true;
          Some sl.sl_msg
        end
  in
  go ()

exception Found of msg

let recv t node ?where ?tag () =
  let mb = t.mailboxes.(node) in
  let take () =
    match (where, tag) with
    | Some _, Some _ -> invalid_arg "Network.recv: ~where and ~tag are exclusive"
    | None, Some k -> (
        (* O(1) amortized: oldest message with this tag, straight off the
           tag queue's front. *)
        match Hashtbl.find_opt mb.by_tag k with
        | None -> None
        | Some q -> pop_live q)
    | None, None -> pop_live mb.inbox
    | Some f, None -> (
        (* Arbitrary predicate: scan arrival order, but consume in place by
           marking the slot taken — no drain-and-requeue rotation. *)
        try
          Queue.iter
            (fun sl ->
              if (not sl.sl_taken) && f sl.sl_msg then begin
                sl.sl_taken <- true;
                raise (Found sl.sl_msg)
              end)
            mb.inbox;
          None
        with Found m -> Some m)
  in
  match take () with
  | Some m -> m
  | None ->
      let kind =
        match (where, tag) with
        | None, Some k -> W_tag k
        | Some f, None -> W_pred f
        | None, None -> W_any
        | Some _, Some _ -> assert false
      in
      suspend (fun resume ->
          mb.waiters <- mb.waiters @ [ { w_kind = kind; w_resume = resume } ])

let mailbox_deliver t msg = default_handler t msg

let run t =
  Sim.run t.sim;
  if t.fibers > 0 then
    failwith
      (Printf.sprintf
         "Network.run: deadlock — %d fiber(s) still blocked at t = %.1f us"
         t.fibers (now t))
