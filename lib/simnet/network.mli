(** Simulated mesh network with per-node CPUs and cooperative fibers.

    Every simulated processor has (a) a CPU whose time is consumed by
    message startups, receive overheads and application computation, and
    (b) at most one application {e fiber} — a cooperative thread written in
    direct style using OCaml effects, which can block on network events —
    plus event-driven message handlers used by protocol layers.

    Message timing follows an eager wormhole approximation: a message
    occupies every directed link of its dimension-order route for
    [size / bandwidth], pipelined hop to hop with [hop_latency] for the
    header, and queues when a link is busy. A message between access-tree
    nodes simulated by the same processor never enters the network (it
    costs only [local_overhead] CPU time and is not counted as a startup
    or as congestion). *)

type payload = ..
(** Protocol layers and applications extend this with their message types. *)

type payload += Empty

type msg = {
  m_src : Diva_mesh.Mesh.node;
  m_dst : Diva_mesh.Mesh.node;
  m_size : int;
  m_tag : int;  (** selective-receive key set by [send ~tag]; [-1] = untagged *)
  m_payload : payload;
}

type t

val create :
  ?machine:Machine.t -> ?seed:int -> rows:int -> cols:int -> unit -> t

val create_nd : ?machine:Machine.t -> ?seed:int -> dims:int array -> unit -> t
(** A mesh of arbitrary dimension (the theory paper's general setting). *)

val mesh : t -> Diva_mesh.Mesh.t
val sim : t -> Sim.t
val machine : t -> Machine.t
val rng : t -> Diva_util.Prng.t
(** Root PRNG of the run; layers derive sub-streams with [Prng.split]. *)

val now : t -> float
val num_nodes : t -> int

(** {2 Messaging} *)

val send :
  t ->
  ?tag:int ->
  src:Diva_mesh.Mesh.node ->
  dst:Diva_mesh.Mesh.node ->
  size:int ->
  payload ->
  unit
(** Asynchronous send; charges the sender's CPU with the startup overhead,
    routes the message, charges the receiver's overhead, then invokes the
    destination handler. Callable from fibers and handlers alike. [tag]
    (default [-1], untagged; tags must be [>= 0]) keys the receiver's
    selective receive — see {!recv}. Tags survive the reliable-delivery
    envelope under fault injection. *)

val set_handler : t -> Diva_mesh.Mesh.node -> (t -> msg -> unit) -> unit
(** Replace the node's message handler. The default handler enqueues into
    the node's mailbox (see {!recv}). *)

val recv :
  t -> Diva_mesh.Mesh.node -> ?where:(msg -> bool) -> ?tag:int -> unit -> msg
(** Blocking receive from the node's mailbox (fiber context only; requires
    the default handler). Returns the oldest matching message.
    [~tag:k] matches messages sent with [send ~tag:k] and is O(1)
    amortized (per-tag index); [~where] scans arrival order with an
    arbitrary predicate. The two are mutually exclusive
    ([Invalid_argument] otherwise); with neither, the oldest message of
    any kind is returned. *)

val mailbox_deliver : t -> msg -> unit
(** The default handler: enqueue into the destination's mailbox. Custom
    handlers call this for payloads they do not recognise. *)

(** {2 Fibers} *)

val spawn : t -> Diva_mesh.Mesh.node -> (unit -> unit) -> unit
(** Start the node's application fiber at the current simulation time. *)

val suspend : ((('a -> unit)) -> unit) -> 'a
(** [suspend register] blocks the current fiber; [register resume] is called
    immediately and must arrange for [resume v] to be called exactly once,
    from an event callback, which continues the fiber with [v]. *)

val compute : t -> Diva_mesh.Mesh.node -> float -> unit
(** Occupy the node's CPU for the given time (blocks the fiber). *)

val charge : t -> Diva_mesh.Mesh.node -> float -> unit
(** Accumulate local computation without a scheduler round-trip; the pending
    amount is folded into the next {!flush_charge} / {!compute}. Used for
    cache-hit accesses, which are far too frequent for one event each. *)

val flush_charge : t -> Diva_mesh.Mesh.node -> unit
(** Block the fiber until all pending charged computation has elapsed. *)

val live_fibers : t -> int

val run : t -> unit
(** Run the simulation to completion. Raises [Failure] if fibers are still
    blocked when the event queue drains (deadlock). *)

(** {2 Statistics} *)

val stats : t -> Link_stats.t
val startups : t -> int
(** Total number of message startups (local messages excluded). *)

val node_startups : t -> Diva_mesh.Mesh.node -> int
val compute_time : t -> Diva_mesh.Mesh.node -> float
(** Total application computation time charged to the node so far. *)

val max_compute_time : t -> float
val total_compute_time : t -> float

val compute_times : t -> float array
(** Copy of all per-node computation times (phase snapshots). *)

(** {2 Observability}

    The network owns one {!Diva_obs.Trace.sink} (the disabled
    {!Diva_obs.Trace.null} by default) into which it emits message and
    per-link occupancy events; protocol layers above share the same sink
    via {!trace}. Tracing and metrics sampling only append to in-memory
    buffers, so an instrumented run is bit-identical to a bare one. *)

val trace : t -> Diva_obs.Trace.sink
val set_trace : t -> Diva_obs.Trace.sink -> unit

(** {2 Causal context}

    Every message carries a unique id, the id of the message whose handler
    issued it ([parent]) and the DSM transaction it serves ([txn]); the
    trio appears on every {!Diva_obs.Trace} message event, turning the
    flat event stream into per-transaction span trees
    ({!Diva_obs.Spans}). The context is maintained unconditionally but
    read only by tracing, so traced runs stay bit-identical to untraced
    ones. *)

val fresh_txn : t -> int
(** Allocate a new DSM transaction id (monotone from 0). Called once per
    blocking shared-memory operation. *)

val set_txn : t -> int -> unit
(** Set the current causal transaction: subsequent sends (until the next
    handler dispatch ends or the context is reset) are tagged with it.
    Protocol layers use this when dequeuing a parked operation, so its
    messages are attributed to the operation that queued them. *)

val cur_txn : t -> int
(** The transaction whose extent we are in; [-1] at top level. *)

val cur_msg : t -> int
(** The id of the message whose handler is executing; [-1] at top level.
    A fiber resumed from inside a handler reads this right after waking to
    learn which message completed its blocking operation. *)

val tag_level : t -> int -> unit
(** Tag the next {!send} with an access-tree level (one-shot; reset by the
    send). Purely observational. *)

val attach_metrics : t -> ?interval:float -> Diva_obs.Metrics.t -> unit
(** Register the standard gauges (link congestion and load, busy links and
    CPUs, startups, accumulated compute, live fibers — plus lost messages,
    retransmits and pending envelopes when faults are installed) on the
    registry and sample them every [interval] simulated microseconds
    (default 1000) while the simulation runs. Sample timestamps are the
    exact boundaries [interval], [2*interval], ...; values reflect the
    state after the last event before each boundary. *)

val attach_prof : t -> Diva_obs.Prof.t -> unit
(** Install a self-profiler: route {!run} through the event loop's
    profiled twin, arm the statistical subsystem sampler, and drive the
    profiler's window series from the (observe-only) advance hook — one
    row per [Prof.window_us] of simulated time. A profiled run is
    byte-identical to an unprofiled one. Attach before creating protocol
    layers (the DSM captures the profiler once, at dispatch-closure
    creation); [Runner.install_obs] runs first and satisfies this. *)

val prof : t -> Diva_obs.Prof.t option

val attach_flight : t -> ?interval:float -> Diva_obs.Flight.t -> unit
(** Take a flight-recorder health snapshot (sim time, events executed and
    pending, live fibers, in-flight envelopes, watchdog trips) every
    [interval] simulated microseconds (default 5000). The event ring is
    fed by wrapping the trace sink ({!Diva_obs.Flight.wrap}) before it is
    installed; this only attaches the periodic snapshots. *)

(** {2 Fault injection}

    With a fault schedule installed (see {!Diva_faults}), remote sends are
    wrapped in a reliable-delivery envelope: each message carries a
    sequence number, is acknowledged by the receiver, and retransmits on
    an exponential-backoff timer ([rto_us * 2^min(attempt, 6)]) until the
    ack arrives. Duplicates created by retransmission are filtered by a
    receiver-side seen-set, so handlers still observe each payload exactly
    once. Link slowdowns stretch per-link occupancy; outages, crash
    windows and probabilistic drops lose individual transmissions (traced
    as [Msg_lost]); node pause/crash windows defer all CPU activity to the
    window end.

    Installing {!Diva_faults.Schedule.empty} is a no-op: the run stays
    bit-identical to an uninstrumented one, envelope and all. *)

val set_faults : t -> Diva_faults.Faults.t -> unit
(** Install a fault injector. Must be called before any traffic (and
    before {!attach_metrics} if fault gauges are wanted); at most one
    active injector per network, or [Invalid_argument]. *)

val faults : t -> Diva_faults.Faults.t option
(** The installed injector, if any ([None] for empty schedules). *)

val nudge : t -> src:Diva_mesh.Mesh.node -> unit
(** Retransmit every unacknowledged envelope originated by [src] now, in
    sequence order, resetting their backoff. No-op without faults. Used by
    the DSM watchdog to unblock transactions that have waited longer than
    the schedule's patience. *)
