module Heap = Diva_util.Event_queue

(* An event is either a plain thunk or a packed (function, argument) pair.
   The packed form lets hot schedule sites (message delivery in [Network])
   pass one statically-allocated function plus a small argument record
   instead of building a fresh closure chain per event: the closure's
   environment becomes an explicit record the caller can size exactly. *)
type event = Fn of (unit -> unit) | Call : ('a -> unit) * 'a -> event

type t = {
  queue : event Heap.t;
  mutable clock : float;
  mutable executed : int;
  mutable advance_hook : (float -> float -> unit) option;
}

let create () =
  { queue = Heap.create (); clock = 0.0; executed = 0; advance_hook = None }

let set_advance_hook t f = t.advance_hook <- Some f
let now t = t.clock

let check_future t at =
  if at < t.clock -. 1e-9 then
    invalid_arg
      (Printf.sprintf "Sim.schedule: %.3f is in the past (now = %.3f)" at
         t.clock)

let schedule t at f =
  check_future t at;
  Heap.insert t.queue (Float.max at t.clock) (Fn f)

let schedule_now t f = Heap.insert t.queue t.clock (Fn f)

let schedule_call t at f x =
  check_future t at;
  Heap.insert t.queue (Float.max at t.clock) (Call (f, x))

let schedule_call_now t f x = Heap.insert t.queue t.clock (Call (f, x))

let run t =
  while not (Heap.is_empty t.queue) do
    let at = Heap.min_priority_exn t.queue in
    let ev = Heap.pop_exn t.queue in
    (match t.advance_hook with
    | Some h when at > t.clock -> h t.clock at
    | _ -> ());
    t.clock <- at;
    t.executed <- t.executed + 1;
    match ev with Fn f -> f () | Call (f, x) -> f x
  done

let events_executed t = t.executed
let pending t = Heap.size t.queue
