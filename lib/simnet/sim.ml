module Heap = Diva_util.Event_queue
module Prof = Diva_obs.Prof

(* An event is either a plain thunk or a packed (function, argument) pair.
   The packed form lets hot schedule sites (message delivery in [Network])
   pass one statically-allocated function plus a small argument record
   instead of building a fresh closure chain per event: the closure's
   environment becomes an explicit record the caller can size exactly. *)
type event = Fn of (unit -> unit) | Call : ('a -> unit) * 'a -> event

type t = {
  queue : event Heap.t;
  mutable clock : float;
  mutable executed : int;
  mutable advance_hook : (float -> float -> unit) option;
  mutable prof : Prof.t option;
}

let create () =
  {
    queue = Heap.create ();
    clock = 0.0;
    executed = 0;
    advance_hook = None;
    prof = None;
  }

let set_advance_hook t f = t.advance_hook <- Some f

(* Hooks only observe, so composition order is irrelevant; new hooks are
   prepended. Lets the metrics sampler, the profiler's window series and
   the flight recorder's health snapshots coexist on the one slot. *)
let add_advance_hook t f =
  match t.advance_hook with
  | None -> t.advance_hook <- Some f
  | Some g ->
      t.advance_hook <-
        Some
          (fun a b ->
            f a b;
            g a b)

let set_prof t p = t.prof <- Some p
let now t = t.clock

let check_future t at =
  if at < t.clock -. 1e-9 then
    invalid_arg
      (Printf.sprintf "Sim.schedule: %.3f is in the past (now = %.3f)" at
         t.clock)

let schedule t at f =
  check_future t at;
  Heap.insert t.queue (Float.max at t.clock) (Fn f)

let schedule_now t f = Heap.insert t.queue t.clock (Fn f)

let schedule_call t at f x =
  check_future t at;
  Heap.insert t.queue (Float.max at t.clock) (Call (f, x))

let schedule_call_now t f x = Heap.insert t.queue t.clock (Call (f, x))

let run_plain t =
  while not (Heap.is_empty t.queue) do
    let at = Heap.min_priority_exn t.queue in
    let ev = Heap.pop_exn t.queue in
    (match t.advance_hook with
    | Some h when at > t.clock -> h t.clock at
    | _ -> ());
    t.clock <- at;
    t.executed <- t.executed + 1;
    match ev with Fn f -> f () | Call (f, x) -> f x
  done

(* Profiled twin of [run_plain]: same control flow plus one word store per
   transition so the SIGPROF sampler can attribute its hits. Queue work
   (pop, hook, clock) books to [Event_loop]; the event body itself books
   to [Dispatch] until a deeper layer (network dispatch, protocol handler,
   strategy callback) refines the attribution. Keeping the unprofiled
   loop untouched means profiling costs nothing when off. *)
let run_prof t p =
  Prof.set_sub p Prof.Event_loop;
  while not (Heap.is_empty t.queue) do
    let at = Heap.min_priority_exn t.queue in
    let ev = Heap.pop_exn t.queue in
    (match t.advance_hook with
    | Some h when at > t.clock -> h t.clock at
    | _ -> ());
    t.clock <- at;
    t.executed <- t.executed + 1;
    Prof.set_sub p Prof.Dispatch;
    (match ev with Fn f -> f () | Call (f, x) -> f x);
    (* Deeper layers may have refined the attribution; the loop-trailing
       store doubles as the loop-top one for the next iteration. *)
    Prof.set_sub p Prof.Event_loop
  done;
  Prof.set_sub p Prof.Host

let run t = match t.prof with None -> run_plain t | Some p -> run_prof t p

let events_executed t = t.executed
let pending t = Heap.size t.queue
