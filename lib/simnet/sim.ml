module Heap = Diva_util.Event_queue

type t = {
  queue : (unit -> unit) Heap.t;
  mutable clock : float;
  mutable executed : int;
  mutable advance_hook : (float -> float -> unit) option;
}

let create () =
  { queue = Heap.create (); clock = 0.0; executed = 0; advance_hook = None }

let set_advance_hook t f = t.advance_hook <- Some f
let now t = t.clock

let schedule t at f =
  if at < t.clock -. 1e-9 then
    invalid_arg
      (Printf.sprintf "Sim.schedule: %.3f is in the past (now = %.3f)" at t.clock);
  Heap.insert t.queue (Float.max at t.clock) f

let schedule_now t f = Heap.insert t.queue t.clock f

let run t =
  let continue = ref true in
  while !continue do
    match Heap.pop_min t.queue with
    | None -> continue := false
    | Some (at, f) ->
        (match t.advance_hook with
        | Some h when at > t.clock -> h t.clock at
        | _ -> ());
        t.clock <- at;
        t.executed <- t.executed + 1;
        f ()
  done

let events_executed t = t.executed
