(** Conservative, windowed, domain-sharded discrete-event engine.

    The model is split into a fixed number of {e logical shards}, chosen
    by the model (e.g. one per mesh row) and independent of the number of
    executing domains. Each shard owns a serial event queue and clock.
    Cross-shard events must respect the engine's [lookahead] — the
    minimum model latency between shards (for a mesh: one hop) — and are
    buffered in per-(source, destination) outboxes, drained at window
    barriers in ascending source-shard order.

    Because shard count, in-window execution order, outbox drain order and
    window boundaries are all functions of model state alone, a run is
    {b bit-identical for every domain count}, including 1. Domains only
    decide which OS thread executes each shard's deterministic work;
    [run ~domains:1] uses the calling domain and spawns nothing.

    The handler receives a {!ctx} naming the current shard and time. From
    the handler:
    - {!ctx_schedule} targets the {e current} shard at any [at >= now];
    - {!ctx_post} targets any shard, at [at >= now + lookahead] (same
      shard degenerates to [ctx_schedule], no lookahead needed).

    Handlers must not raise for control flow: an escaping exception aborts
    the run (it is re-raised on the calling domain after every executing
    domain has been joined). *)

type 'a t
(** An engine whose events carry messages of type ['a]. *)

type 'a ctx
(** Execution context passed to the handler: current shard + clock. *)

val create : shards:int -> lookahead:float -> 'a t
(** [create ~shards ~lookahead] with [shards >= 1], [lookahead > 0]. *)

val num_shards : _ t -> int
val lookahead : _ t -> float

val schedule_init : 'a t -> shard:int -> at:float -> 'a -> unit
(** Seed an event before {!run}. [at >= 0]. *)

type telemetry
(** Per-domain wall-clock accounting of one {!run}: busy time (event
    execution + outbox drains), barrier-wait time, events per domain,
    window count, and per-shard event totals. Recording reads the wall
    clock only — nothing in the model observes it — so a telemetered run
    is byte-identical to a bare one for every domain count. *)

val telemetry_create : unit -> telemetry
(** A fresh accumulator; pass it to {!run}, then read it back with
    {!telemetry_json}. Reusing one across runs overwrites it. *)

val telemetry_json : telemetry -> Diva_obs.Json.t
(** [{ "domains", "windows", "wall_s", "stall_frac", "shard_imbalance",
    "domains_detail": [{ "busy_s", "barrier_s", "events" }, ...],
    "shard_events" }]. [stall_frac] is total barrier wait over total
    accounted time; [shard_imbalance] is the busiest shard's event count
    over the mean (1.0 = perfectly balanced decomposition). Embed it in a
    profile via [Diva_obs.Prof.set_par]. *)

val run :
  ?domains:int -> ?telemetry:telemetry -> 'a t ->
  handler:('a ctx -> 'a -> unit) -> unit
(** Execute until every queue and outbox is empty. [domains] defaults to
    1 and is clamped to [1 .. num_shards]. With [telemetry], each domain
    additionally reads the wall clock five times per window to fill the
    accumulator; without it the worker loop is clock-free. *)

val events_executed : _ t -> int
(** Total events executed across all shards (stable across domain
    counts). *)

val ctx_shard : _ ctx -> int
val ctx_now : _ ctx -> float
val ctx_num_shards : _ ctx -> int

val ctx_schedule : 'a ctx -> at:float -> 'a -> unit
(** Schedule on the current shard. Raises [Invalid_argument] if [at] is
    in the shard's past. *)

val ctx_post : 'a ctx -> dst:int -> at:float -> 'a -> unit
(** Schedule on shard [dst]. Raises [Invalid_argument] if [dst] is out of
    range or [at < now + lookahead] when [dst] differs from the current
    shard. *)
