(** Discrete-event simulation core: a virtual clock (in microseconds) and an
    event queue. Events scheduled for the same instant execute in FIFO
    order, so runs are deterministic. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time in microseconds. *)

val schedule : t -> float -> (unit -> unit) -> unit
(** [schedule t at f] runs [f] at simulated time [at]. [at] must not be in
    the past. *)

val schedule_now : t -> (unit -> unit) -> unit

val schedule_call : t -> float -> ('a -> unit) -> 'a -> unit
(** [schedule_call t at f x] runs [f x] at simulated time [at]. Equivalent
    to [schedule t at (fun () -> f x)] but avoids allocating a closure when
    [f] is a statically-known function: hot schedule sites pass one shared
    function plus a packed argument instead of a fresh environment. *)

val schedule_call_now : t -> ('a -> unit) -> 'a -> unit

val run : t -> unit
(** Execute events until the queue is empty. *)

val set_advance_hook : t -> (float -> float -> unit) -> unit
(** [set_advance_hook t h] makes {!run} call [h old_clock new_clock] just
    before the clock jumps forward (strictly), i.e. between the events of
    two distinct instants. The hook must only observe state — it must not
    schedule events or mutate the simulation — so that an instrumented run
    is indistinguishable from a bare one. Used by the metrics sampler. *)

val events_executed : t -> int

val pending : t -> int
(** Number of events still queued. *)
