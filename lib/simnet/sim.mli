(** Discrete-event simulation core: a virtual clock (in microseconds) and an
    event queue. Events scheduled for the same instant execute in FIFO
    order, so runs are deterministic. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time in microseconds. *)

val schedule : t -> float -> (unit -> unit) -> unit
(** [schedule t at f] runs [f] at simulated time [at]. [at] must not be in
    the past. *)

val schedule_now : t -> (unit -> unit) -> unit

val schedule_call : t -> float -> ('a -> unit) -> 'a -> unit
(** [schedule_call t at f x] runs [f x] at simulated time [at]. Equivalent
    to [schedule t at (fun () -> f x)] but avoids allocating a closure when
    [f] is a statically-known function: hot schedule sites pass one shared
    function plus a packed argument instead of a fresh environment. *)

val schedule_call_now : t -> ('a -> unit) -> 'a -> unit

val run : t -> unit
(** Execute events until the queue is empty. *)

val set_advance_hook : t -> (float -> float -> unit) -> unit
(** [set_advance_hook t h] makes {!run} call [h old_clock new_clock] just
    before the clock jumps forward (strictly), i.e. between the events of
    two distinct instants. The hook must only observe state — it must not
    schedule events or mutate the simulation — so that an instrumented run
    is indistinguishable from a bare one. Used by the metrics sampler.
    Replaces any hooks already installed. *)

val add_advance_hook : t -> (float -> float -> unit) -> unit
(** Like {!set_advance_hook} but composes with hooks already installed
    instead of replacing them. Since hooks only observe, their relative
    order is unspecified. Lets the metrics sampler, the profiler's window
    series and the flight recorder's health snapshots share the slot. *)

val set_prof : t -> Diva_obs.Prof.t -> unit
(** Route {!run} through its profiled twin: identical control flow plus
    one subsystem-tag store per queue/dispatch transition, so the
    statistical sampler can attribute CPU time. The unprofiled loop is a
    separate function and pays nothing. *)

val events_executed : t -> int

val pending : t -> int
(** Number of events still queued. *)
