module Network = Diva_simnet.Network
module Prng = Diva_util.Prng
module Trace = Diva_obs.Trace

type owner = Home | Owned_by of Types.proc

type body =
  | Hrreq of { origin : Types.proc }
  | Hfetch
  | Hfdata
  | Hrdata of { reader : Types.proc; epoch : int; v : Value.t }
  | Hwreq of { origin : Types.proc; value : Value.t }
  | Hinv
  | Hinvack
  | Hgrant of { origin : Types.proc }
  | Hlock of { origin : Types.proc }
  | Hlgrant of { origin : Types.proc }
  | Hunlock

type Network.payload += Fh of { var_id : int; body : body }

(* Home-side transactions carry the issuer's causal id: they can be
   dequeued from inside another transaction's completion, and the protocol
   messages they spawn must be attributed to the original one. *)
type txn =
  | Tread of { origin : Types.proc; t_txn : int }
  | Twrite of { origin : Types.proc; value : Value.t; t_txn : int }

type hstate = {
  var : Types.var;
  home : Types.proc;
  mutable owner : owner;
  home_copies : (Types.proc, unit) Hashtbl.t;  (* the home's registry *)
  valid : (Types.proc, unit) Hashtbl.t;  (* per-processor hit flags *)
  mutable epoch : int;
  mutable busy : bool;
  q : txn Queue.t;
  mutable cur : txn option;
  mutable acks : int;
  (* Lock management: FIFO queue at the home. *)
  mutable lock_held : bool;
  lq : Types.proc Queue.t;
}

type t = {
  net : Network.t;
  vars : (int, hstate) Hashtbl.t;
  read_waiters : (int, Value.t -> unit) Hashtbl.t;  (* var_id * P + proc *)
  write_waiters : (int, unit -> unit) Hashtbl.t;
  lock_waiters : (int, unit -> unit) Hashtbl.t;
}

let create net () =
  {
    net;
    vars = Hashtbl.create 1024;
    read_waiters = Hashtbl.create 64;
    write_waiters = Hashtbl.create 64;
    lock_waiters = Hashtbl.create 64;
  }

let get t (var : Types.var) =
  match Hashtbl.find_opt t.vars var.Types.id with
  | Some s -> s
  | None ->
      let nprocs = Network.num_nodes t.net in
      let home = Prng.hash2_int var.Types.seed 1 ~bound:nprocs in
      let s =
        { var; home; owner = Owned_by var.Types.owner;
          home_copies = Hashtbl.create 4; valid = Hashtbl.create 4; epoch = 0;
          busy = false; q = Queue.create (); cur = None; acks = 0;
          lock_held = false; lq = Queue.create () }
      in
      Hashtbl.add s.home_copies var.Types.owner ();
      Hashtbl.add s.valid var.Types.owner ();
      Hashtbl.add t.vars var.Types.id s;
      s

let home t var = (get t var).home
let wkey t var_id p = (var_id * Network.num_nodes t.net) + p

let send t hs ~src ~dst ~size body =
  Network.send t.net ~src ~dst ~size (Fh { var_id = hs.var.Types.id; body })

(* Fixed home has no access tree: copy events carry tnode/level -1. *)
let trace_copy t hs node change =
  let tr = Network.trace t.net in
  if Trace.enabled tr then
    let ts = Network.now t.net in
    let var = hs.var.Types.id and var_name = hs.var.Types.name in
    Trace.emit tr
      (match change with
      | `Add -> Trace.Copy_add { ts; node; var; var_name; tnode = -1; level = -1 }
      | `Drop ->
          Trace.Copy_drop
            { ts; node; var; var_name; tnode = -1; level = -1;
              reason = Trace.Invalidated })

let send_ctl t hs ~src ~dst body = send t hs ~src ~dst ~size:Types.control_size body

let send_data t hs ~src ~dst body =
  send t hs ~src ~dst ~size:(Types.data_size hs.var) body

(* ------------------------------------------------------------------ *)
(* Home-side transaction machine                                        *)
(* ------------------------------------------------------------------ *)

let reply_read t hs origin =
  (* Serialisation point of the read: the home sends the current value. *)
  Hashtbl.replace hs.home_copies origin ();
  send_data t hs ~src:hs.home ~dst:origin
    (Hrdata { reader = origin; epoch = hs.epoch; v = hs.var.Types.value });
  hs.cur <- None;
  hs.busy <- false

let commit_write t hs origin value =
  hs.var.Types.value <- value;
  hs.epoch <- hs.epoch + 1;
  Hashtbl.reset hs.home_copies;
  Hashtbl.add hs.home_copies origin ();
  hs.owner <- Owned_by origin;
  send_ctl t hs ~src:hs.home ~dst:origin (Hgrant { origin });
  hs.cur <- None;
  hs.busy <- false

let rec process t hs =
  if (not hs.busy) && not (Queue.is_empty hs.q) then begin
    let txn = Queue.pop hs.q in
    hs.busy <- true;
    hs.cur <- Some txn;
    Network.set_txn t.net
      (match txn with Tread { t_txn; _ } | Twrite { t_txn; _ } -> t_txn);
    match txn with
    | Tread { origin; _ } -> (
        match hs.owner with
        | Owned_by ow when ow <> origin ->
            (* Move the data (and ownership) back to the main memory. *)
            send_ctl t hs ~src:hs.home ~dst:ow Hfetch
        | Owned_by _ | Home ->
            hs.owner <- Home;
            reply_read t hs origin;
            process t hs)
    | Twrite { origin; value; _ } ->
        let holders =
          Hashtbl.fold (fun p () acc -> if p <> origin then p :: acc else acc)
            hs.home_copies []
        in
        if holders = [] then begin
          commit_write t hs origin value;
          process t hs
        end
        else begin
          hs.acks <- List.length holders;
          List.iter (fun p -> send_ctl t hs ~src:hs.home ~dst:p Hinv) holders
        end
  end

let on_home_msg t hs body =
  match body with
  | Hrreq { origin } ->
      Queue.add (Tread { origin; t_txn = Network.cur_txn t.net }) hs.q;
      process t hs
  | Hwreq { origin; value } ->
      Queue.add (Twrite { origin; value; t_txn = Network.cur_txn t.net }) hs.q;
      process t hs
  | Hfdata -> (
      match hs.cur with
      | Some (Tread { origin; t_txn }) ->
          Network.set_txn t.net t_txn;
          hs.owner <- Home;
          reply_read t hs origin;
          process t hs
      | _ -> assert false)
  | Hinvack -> (
      hs.acks <- hs.acks - 1;
      if hs.acks = 0 then
        match hs.cur with
        | Some (Twrite { origin; value; t_txn }) ->
            Network.set_txn t.net t_txn;
            commit_write t hs origin value;
            process t hs
        | _ -> assert false)
  | Hlock { origin } ->
      if hs.lock_held then Queue.add origin hs.lq
      else begin
        hs.lock_held <- true;
        send_ctl t hs ~src:hs.home ~dst:origin (Hlgrant { origin })
      end
  | Hunlock ->
      if Queue.is_empty hs.lq then hs.lock_held <- false
      else begin
        let nxt = Queue.pop hs.lq in
        send_ctl t hs ~src:hs.home ~dst:nxt (Hlgrant { origin = nxt })
      end
  | Hfetch | Hinv | Hrdata _ | Hgrant _ | Hlgrant _ -> assert false

let on_proc_msg t hs me body =
  match body with
  | Hfetch ->
      (* The home revokes ownership; this processor keeps a (reader) copy. *)
      send_data t hs ~src:me ~dst:hs.home Hfdata
  | Hinv ->
      if Hashtbl.mem hs.valid me then trace_copy t hs me `Drop;
      Hashtbl.remove hs.valid me;
      send_ctl t hs ~src:me ~dst:hs.home Hinvack
  | Hrdata { reader; epoch; v } ->
      assert (reader = me);
      if epoch = hs.epoch then begin
        if not (Hashtbl.mem hs.valid me) then trace_copy t hs me `Add;
        Hashtbl.replace hs.valid me ()
      end;
      let key = wkey t hs.var.Types.id me in
      (match Hashtbl.find_opt t.read_waiters key with
      | Some k ->
          Hashtbl.remove t.read_waiters key;
          k v
      | None -> assert false)
  | Hgrant { origin } ->
      assert (origin = me);
      if not (Hashtbl.mem hs.valid me) then trace_copy t hs me `Add;
      Hashtbl.replace hs.valid me ();
      let key = wkey t hs.var.Types.id me in
      (match Hashtbl.find_opt t.write_waiters key with
      | Some k ->
          Hashtbl.remove t.write_waiters key;
          k ()
      | None -> assert false)
  | Hlgrant { origin } ->
      assert (origin = me);
      let key = wkey t hs.var.Types.id me in
      (match Hashtbl.find_opt t.lock_waiters key with
      | Some k ->
          Hashtbl.remove t.lock_waiters key;
          k ()
      | None -> assert false)
  | Hrreq _ | Hwreq _ | Hfdata | Hinvack | Hlock _ | Hunlock -> assert false

let handle t (msg : Network.msg) =
  match msg.Network.m_payload with
  | Fh { var_id; body } ->
      let hs =
        match Hashtbl.find_opt t.vars var_id with
        | Some s -> s
        | None -> failwith "Fixed_home.handle: message for unknown variable"
      in
      let me = msg.Network.m_dst in
      (match body with
      | Hrreq _ | Hwreq _ | Hfdata | Hinvack | Hlock _ | Hunlock ->
          on_home_msg t hs body
      | Hfetch | Hinv | Hrdata _ | Hgrant _ | Hlgrant _ ->
          on_proc_msg t hs me body);
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Public operations                                                    *)
(* ------------------------------------------------------------------ *)

let cached t p var = Hashtbl.mem (get t var).valid p

let sole_copy t p var =
  let hs = get t var in
  (match hs.owner with Owned_by o -> o = p | Home -> false)
  && (not hs.busy) && Queue.is_empty hs.q

let read t p var ~k =
  let hs = get t var in
  Hashtbl.replace t.read_waiters (wkey t var.Types.id p) k;
  send_ctl t hs ~src:p ~dst:hs.home (Hrreq { origin = p })

let write t p var value ~k =
  let hs = get t var in
  Hashtbl.replace t.write_waiters (wkey t var.Types.id p) k;
  send_ctl t hs ~src:p ~dst:hs.home (Hwreq { origin = p; value })

let lock t p var ~k =
  let hs = get t var in
  Hashtbl.replace t.lock_waiters (wkey t var.Types.id p) k;
  send_ctl t hs ~src:p ~dst:hs.home (Hlock { origin = p })

let unlock t p var =
  let hs = get t var in
  send_ctl t hs ~src:p ~dst:hs.home Hunlock

let ncopies t var = Hashtbl.length (get t var).valid
let copy_holders t var =
  List.sort compare
    (Hashtbl.fold (fun p () acc -> p :: acc) (get t var).valid [])

let retire t (var : Types.var) = Hashtbl.remove t.vars var.Types.id
