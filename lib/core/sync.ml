module Deco = Diva_mesh.Decomposition
module Embedding = Diva_mesh.Embedding
module Network = Diva_simnet.Network

type body =
  | Bup of { rid : int; v : Value.t }  (* rid = -1 for plain barriers *)
  | Bdown of { rid : int; v : Value.t }

type Network.payload += Bar of { tnode : int; body : body }

type reducer_state = {
  r_combine : Value.t -> Value.t -> Value.t;
  r_size : int;
  (* per tree node: running partial value and arrival count *)
  partial : Value.t option array;
  r_arrived : int array;
}

type t = {
  net : Network.t;
  deco : Deco.t;
  emb : Embedding.t;
  arrived : int array;  (* per tree node, plain barrier *)
  waiters : (unit -> unit) option array;  (* per processor *)
  rwaiters : (Value.t -> unit) option array;
  mutable reducers : reducer_state array;
}

type 'a reducer = { rid : int; inj : 'a -> Value.t; proj : Value.t -> 'a }

let create net deco ~rng () =
  let emb = Embedding.regular deco ~rng in
  let n = deco.Deco.num_tree_nodes in
  {
    net;
    deco;
    emb;
    arrived = Array.make n 0;
    waiters = Array.make (Network.num_nodes net) None;
    rwaiters = Array.make (Network.num_nodes net) None;
    reducers = [||];
  }

let reducer (type a) t ~combine ~size =
  let inj, proj = Value.embed () in
  let r_combine a b = inj (combine (proj a : a) (proj b)) in
  let n = t.deco.Deco.num_tree_nodes in
  let state =
    { r_combine; r_size = size; partial = Array.make n None;
      r_arrived = Array.make n 0 }
  in
  t.reducers <- Array.append t.reducers [| state |];
  { rid = Array.length t.reducers - 1; inj; proj }

let send t ~from ~tnode ~size body =
  let src = Embedding.place t.emb from and dst = Embedding.place t.emb tnode in
  Network.tag_level t.net t.deco.Deco.depth.(tnode);
  Network.send t.net ~src ~dst ~size (Bar { tnode; body })

(* Plain-barrier accounting shares the reducer structure with rid = -1 and
   a unit value. *)
let expected_children t tnode = Array.length t.deco.Deco.children.(tnode)

let rec up t tnode rid v =
  let full, combined =
    if rid < 0 then begin
      t.arrived.(tnode) <- t.arrived.(tnode) + 1;
      (t.arrived.(tnode) >= max 1 (expected_children t tnode), v)
    end
    else begin
      let r = t.reducers.(rid) in
      let acc =
        match r.partial.(tnode) with
        | None -> v
        | Some p -> r.r_combine p v
      in
      r.partial.(tnode) <- Some acc;
      r.r_arrived.(tnode) <- r.r_arrived.(tnode) + 1;
      (r.r_arrived.(tnode) >= max 1 (expected_children t tnode), acc)
    end
  in
  if full then begin
    (* Reset for the next epoch before propagating. *)
    if rid < 0 then t.arrived.(tnode) <- 0
    else begin
      let r = t.reducers.(rid) in
      r.partial.(tnode) <- None;
      r.r_arrived.(tnode) <- 0
    end;
    let parent = t.deco.Deco.parent.(tnode) in
    if parent < 0 then down t tnode rid combined
    else begin
      let size =
        if rid < 0 then Types.control_size
        else Types.control_size + t.reducers.(rid).r_size
      in
      send t ~from:tnode ~tnode:parent ~size (Bup { rid; v = combined })
    end
  end

and down t tnode rid v =
  let p = t.deco.Deco.proc.(tnode) in
  if p >= 0 then begin
    if rid < 0 then begin
      match t.waiters.(p) with
      | Some k ->
          t.waiters.(p) <- None;
          k ()
      | None -> assert false
    end
    else begin
      match t.rwaiters.(p) with
      | Some k ->
          t.rwaiters.(p) <- None;
          k v
      | None -> assert false
    end
  end
  else
    Array.iter
      (fun c ->
        let size =
          if rid < 0 then Types.control_size
          else Types.control_size + t.reducers.(rid).r_size
        in
        send t ~from:tnode ~tnode:c ~size (Bdown { rid; v }))
      t.deco.Deco.children.(tnode)

let handle t (msg : Network.msg) =
  match msg.Network.m_payload with
  | Bar { tnode; body } ->
      (match body with
      | Bup { rid; v } -> up t tnode rid v
      | Bdown { rid; v } -> down t tnode rid v);
      true
  | _ -> false

let barrier t p ~k =
  let leaf = t.deco.Deco.leaf_of_proc.(p) in
  if Network.num_nodes t.net = 1 then k ()
  else begin
    t.waiters.(p) <- Some k;
    let parent = t.deco.Deco.parent.(leaf) in
    send t ~from:leaf ~tnode:parent ~size:Types.control_size
      (Bup { rid = -1; v = Value.unit })
  end

let reduce t (r : 'a reducer) p v ~k =
  if Network.num_nodes t.net = 1 then k v
  else begin
    t.rwaiters.(p) <- Some (fun packed -> k (r.proj packed));
    let leaf = t.deco.Deco.leaf_of_proc.(p) in
    let parent = t.deco.Deco.parent.(leaf) in
    let size = Types.control_size + t.reducers.(r.rid).r_size in
    send t ~from:leaf ~tnode:parent ~size (Bup { rid = r.rid; v = r.inj v })
  end
