module Mesh = Diva_mesh.Mesh
module Deco = Diva_mesh.Decomposition
module Embedding = Diva_mesh.Embedding
module Network = Diva_simnet.Network
module Trace = Diva_obs.Trace

type body =
  | Rreq of { origin : int }
  | Rrep of { origins : int list }
  | Rpush  (* speculative copy pushed one level down the tree (prefetch) *)
  | Wreq of { origin : int }
  | Winv
  | Wack
  | Wdata of { origin : int }
  | Lreq
  | Ltok
  | Rmove  (* state transfer of a remapped tree node; no handler action *)

type Network.payload +=
  | At of { var_id : int; from : int; tnode : int; body : body }

(* Per-(variable, tree-node) protocol state. Created lazily: a missing
   entry means the node has never been touched, in which case its copy flag
   and its pointers are derivable from the variable's initial owner. *)
type tstate = {
  mutable has_copy : bool;
  mutable toward : int;  (* neighbour toward the copy component; -1 = copy *)
  mutable comp_edges : int list;  (* neighbours believed to be in the component *)
  mutable read_pending : bool;  (* forwarded a read, reply not yet back *)
  mutable parked : int list;  (* origins combined onto the in-flight reply *)
  mutable inv_waiting : int;  (* outstanding invalidation acks *)
  mutable inv_pred : int;  (* where to ack once [inv_waiting] drains; -1 = here *)
  (* Raymond's token-based mutual exclusion, on the same tree. *)
  mutable tok_toward : int;  (* neighbour toward the token; -1 = token here *)
  mutable lqueue : int list;  (* FIFO of requesting directions (or self) *)
  mutable lasked : bool;
  mutable locked : bool;
  mutable last_use : int;  (* LRU tick *)
  mutable use_count : int;  (* lifetime touches, for frequency eviction *)
  mutable traffic : int;  (* messages served, for the remapping variant *)
}

(* Queued operations remember the causal transaction that issued them:
   they are dequeued from inside some other transaction's handler, and
   their protocol messages must be attributed to the original one. *)
type op =
  | Oread of { o_p : Types.proc; o_txn : int; o_k : Value.t -> unit }
  | Owrite of {
      o_p : Types.proc;
      o_txn : int;
      o_v : Value.t;
      o_k : unit -> unit;
    }

type wtxn = {
  w_origin : int;  (* writer's leaf tree node *)
  w_value : Value.t;
  w_done : unit -> unit;
  mutable w_u : int;  (* component node coordinating the invalidation *)
}

(* Per-variable transaction control: writes are serialized against each
   other and against in-flight reads; cache hits bypass this entirely. *)
type ctl = {
  var : Types.var;
  mutable ncopies : int;
  mutable reading : int;  (* read transactions in flight *)
  mutable writing : bool;
  pending : op Queue.t;
  mutable wtxn : wtxn option;
  readers : (int, (Value.t -> unit) list) Hashtbl.t;  (* origin leaf -> ks *)
  mutable touched : int list;  (* materialised state keys, for [retire] *)
  mutable pushes : int;  (* speculative Rpush messages in flight *)
  mutable retired : bool;  (* retire deferred until the pushes land *)
}

type t = {
  net : Network.t;
  deco : Deco.t;
  embedding : Embedding.kind;
  capacity : int option;
  combining : bool;
  remap_threshold : int option;
  eviction : Strategy.eviction;
  prefetch : bool;
  remap_rng : Diva_util.Prng.t;
  placement_override : (int, int) Hashtbl.t;  (* state key -> mesh node *)
  placement_cache : (int, int) Hashtbl.t;  (* state key -> default placement *)
  mutable remap_count : int;
  vars : (int, ctl) Hashtbl.t;
  states : (int, tstate) Hashtbl.t;  (* var_id * num_tree_nodes + tnode *)
  lock_waiters : (int, unit -> unit) Hashtbl.t;  (* same key, at leaves *)
  mem_used : int array;  (* bytes per processor, only if capacity is set *)
  held : (int, unit) Hashtbl.t array;  (* per processor: state keys of copies *)
  mutable lru_tick : int;
  mutable eviction_count : int;
}

let create net deco ~embedding ?capacity ?(combining = true) ?remap_threshold
    ?(eviction = Strategy.Lru) ?(prefetch = false) () =
  {
    net;
    deco;
    embedding;
    capacity;
    combining;
    remap_threshold;
    eviction;
    prefetch;
    remap_rng = Diva_util.Prng.split (Network.rng net);
    placement_override = Hashtbl.create 64;
    placement_cache = Hashtbl.create 4096;
    remap_count = 0;
    vars = Hashtbl.create 1024;
    states = Hashtbl.create 4096;
    lock_waiters = Hashtbl.create 64;
    mem_used = Array.make (Network.num_nodes net) 0;
    held =
      (match capacity with
      | None -> [||]
      | Some _ -> Array.init (Network.num_nodes net) (fun _ -> Hashtbl.create 8));
    lru_tick = 0;
    eviction_count = 0;
  }

let key t var_id tnode = (var_id * t.deco.Deco.num_tree_nodes) + tnode

(* Placement is consulted on every protocol message (twice per
   [send_tree]), but [Embedding.place_lazy] recomputes the embedding rule
   recursively from the tree root — for the regular rule that is one
   coordinate-array round-trip per ancestor level, per call. Memoize the
   (deterministic) default placement per state key; remapping overrides
   still take precedence and are checked first. *)
let place t (var : Types.var) tnode =
  let k = key t var.Types.id tnode in
  if Hashtbl.length t.placement_override > 0 && Hashtbl.mem t.placement_override k
  then Hashtbl.find t.placement_override k
  else
    match Hashtbl.find t.placement_cache k with
    | p -> p
    | exception Not_found ->
        let p = Embedding.place_lazy t.embedding t.deco ~seed:var.Types.seed tnode in
        Hashtbl.add t.placement_cache k p;
        p
let leaf t p = t.deco.Deco.leaf_of_proc.(p)

let get_ctl t (var : Types.var) =
  match Hashtbl.find t.vars var.Types.id with
  | c -> c
  | exception Not_found ->
      let c =
        { var; ncopies = 1; reading = 0; writing = false;
          pending = Queue.create (); wtxn = None; readers = Hashtbl.create 2;
          touched = []; pushes = 0; retired = false }
      in
      Hashtbl.add t.vars var.Types.id c;
      c

let get_state t (ctl : ctl) tnode =
  let k = key t ctl.var.Types.id tnode in
  match Hashtbl.find t.states k with
  | s -> s
  | exception Not_found ->
      let owner_leaf = leaf t ctl.var.Types.owner in
      let is_home = tnode = owner_leaf in
      let toward =
        if is_home then -1 else Deco.next_hop t.deco ~from:tnode ~target:owner_leaf
      in
      let s =
        { has_copy = is_home; toward; comp_edges = []; read_pending = false;
          parked = []; inv_waiting = 0; inv_pred = -1; tok_toward = toward;
          lqueue = []; lasked = false; locked = false; last_use = 0;
          use_count = 0; traffic = 0 }
      in
      Hashtbl.add t.states k s;
      ctl.touched <- k :: ctl.touched;
      s

let touch t st =
  t.lru_tick <- t.lru_tick + 1;
  st.last_use <- t.lru_tick;
  st.use_count <- st.use_count + 1

let trace_copy_add t (ctl : ctl) tnode =
  let tr = Network.trace t.net in
  if Trace.enabled tr then
    Trace.emit tr
      (Trace.Copy_add
         { ts = Network.now t.net; node = place t ctl.var tnode;
           var = ctl.var.Types.id; var_name = ctl.var.Types.name; tnode;
           level = t.deco.Deco.depth.(tnode) })

let trace_copy_drop t (ctl : ctl) tnode reason =
  let tr = Network.trace t.net in
  if Trace.enabled tr then
    Trace.emit tr
      (Trace.Copy_drop
         { ts = Network.now t.net; node = place t ctl.var tnode;
           var = ctl.var.Types.id; var_name = ctl.var.Types.name; tnode;
           level = t.deco.Deco.depth.(tnode); reason })

let send_tree t (ctl : ctl) ~from ~tnode ~size body =
  let src = place t ctl.var from and dst = place t ctl.var tnode in
  Network.tag_level t.net t.deco.Deco.depth.(tnode);
  Network.send t.net ~src ~dst ~size
    (At { var_id = ctl.var.Types.id; from; tnode; body })

let send_ctl t ctl ~from ~tnode body =
  send_tree t ctl ~from ~tnode ~size:Types.control_size body

let send_data t ctl ~from ~tnode body =
  send_tree t ctl ~from ~tnode ~size:(Types.data_size ctl.var) body

(* ------------------------------------------------------------------ *)
(* Copy bookkeeping and LRU replacement                                 *)
(* ------------------------------------------------------------------ *)

(* A copy is evictable if removing it keeps the component connected (it is
   a component leaf), it is not the last copy, and no transaction is
   touching it. Eviction is silent: the remaining neighbour keeps a stale
   component edge, which the invalidation handler tolerates. *)
let evictable _t (ctl : ctl) st =
  st.has_copy && ctl.ncopies > 1
  && (not ctl.writing)
  && (not st.read_pending)
  && st.parked = []
  && st.inv_waiting = 0
  && List.length st.comp_edges <= 1

(* Scan only the copies held at [proc] (the per-processor registry), not
   the global state table. The victim minimizes the policy's score: the
   LRU tick, or the lifetime touch count (ties broken by the LRU tick, so
   frequency eviction stays deterministic). *)
let score t st =
  match t.eviction with
  | Strategy.Lru -> (st.last_use, 0)
  | Strategy.Freq -> (st.use_count, st.last_use)

let evict t proc =
  let best = ref None in
  Hashtbl.iter
    (fun k () ->
      match Hashtbl.find_opt t.states k with
      | None -> ()
      | Some st ->
          if st.has_copy then begin
            let var_id = k / t.deco.Deco.num_tree_nodes in
            match Hashtbl.find_opt t.vars var_id with
            | Some ctl when evictable t ctl st -> (
                match !best with
                | Some (_, _, _, sc) when sc <= score t st -> ()
                | _ -> best := Some (k, ctl, st, score t st))
            | _ -> ()
          end)
    t.held.(proc);
  match !best with
  | None -> false
  | Some (k, ctl, st, _) ->
      trace_copy_drop t ctl (k mod t.deco.Deco.num_tree_nodes) Trace.Evicted;
      st.has_copy <- false;
      st.toward <- (match st.comp_edges with e :: _ -> e | [] -> assert false);
      st.comp_edges <- [];
      ctl.ncopies <- ctl.ncopies - 1;
      t.mem_used.(proc) <- t.mem_used.(proc) - ctl.var.Types.data_size;
      Hashtbl.remove t.held.(proc) k;
      t.eviction_count <- t.eviction_count + 1;
      true

let account_copy t (ctl : ctl) tnode =
  match t.capacity with
  | None -> ()
  | Some cap ->
      let proc = place t ctl.var tnode in
      t.mem_used.(proc) <- t.mem_used.(proc) + ctl.var.Types.data_size;
      Hashtbl.replace t.held.(proc) (key t ctl.var.Types.id tnode) ();
      let continue = ref true in
      while t.mem_used.(proc) > cap && !continue do
        continue := evict t proc
      done

let unaccount_copy t (ctl : ctl) tnode =
  match t.capacity with
  | None -> ()
  | Some _ ->
      let proc = place t ctl.var tnode in
      t.mem_used.(proc) <- t.mem_used.(proc) - ctl.var.Types.data_size;
      Hashtbl.remove t.held.(proc) (key t ctl.var.Types.id tnode)

let add_copy t ctl tnode st =
  if not st.has_copy then begin
    st.has_copy <- true;
    st.toward <- -1;
    ctl.ncopies <- ctl.ncopies + 1;
    touch t st;
    trace_copy_add t ctl tnode;
    account_copy t ctl tnode
  end

let remove_copy t ctl tnode st =
  if st.has_copy then begin
    st.has_copy <- false;
    ctl.ncopies <- ctl.ncopies - 1;
    trace_copy_drop t ctl tnode Trace.Invalidated;
    unaccount_copy t ctl tnode
  end

let add_edge st nb = if not (List.mem nb st.comp_edges) then st.comp_edges <- nb :: st.comp_edges

(* ------------------------------------------------------------------ *)
(* Transaction gating                                                   *)
(* ------------------------------------------------------------------ *)

let complete_reads _t ctl tnode =
  match Hashtbl.find_opt ctl.readers tnode with
  | None -> ()
  | Some ks ->
      Hashtbl.remove ctl.readers tnode;
      ctl.reading <- ctl.reading - List.length ks;
      let v = ctl.var.Types.value in
      List.iter (fun k -> k v) (List.rev ks)

let rec process_queue t ctl =
  if not ctl.writing then
    match Queue.peek_opt ctl.pending with
    | Some (Oread { o_p; o_txn; o_k }) ->
        ignore (Queue.pop ctl.pending);
        let saved = Network.cur_txn t.net in
        Network.set_txn t.net o_txn;
        start_read t ctl o_p o_k;
        Network.set_txn t.net saved;
        process_queue t ctl
    | Some (Owrite { o_p; o_txn; o_v; o_k }) when ctl.reading = 0 ->
        ignore (Queue.pop ctl.pending);
        let saved = Network.cur_txn t.net in
        Network.set_txn t.net o_txn;
        start_write t ctl o_p o_v o_k;
        Network.set_txn t.net saved
    | Some (Owrite _) | None -> ()

and start_read t ctl p k =
  ctl.reading <- ctl.reading + 1;
  let origin = leaf t p in
  let ks = Option.value ~default:[] (Hashtbl.find_opt ctl.readers origin) in
  Hashtbl.replace ctl.readers origin (k :: ks);
  let st = get_state t ctl origin in
  if st.has_copy then begin
    touch t st;
    complete_reads t ctl origin;
    process_queue t ctl
  end
  else if st.read_pending then
    (* A previous read from this leaf is in flight; its reply will arrive
       here and complete every registered reader. *)
    ()
  else begin
    st.read_pending <- true;
    send_ctl t ctl ~from:origin ~tnode:st.toward (Rreq { origin })
  end

and start_write t ctl p value k =
  ctl.writing <- true;
  let origin = leaf t p in
  ctl.wtxn <- Some { w_origin = origin; w_value = value; w_done = k; w_u = origin };
  let st = get_state t ctl origin in
  if st.has_copy then begin
    touch t st;
    begin_invalidation t ctl origin
  end
  else send_data t ctl ~from:origin ~tnode:st.toward (Wreq { origin })

and begin_invalidation t ctl u =
  (match ctl.wtxn with Some w -> w.w_u <- u | None -> assert false);
  let st = get_state t ctl u in
  let nbrs = st.comp_edges in
  st.comp_edges <- [];
  if nbrs = [] then finish_invalidation t ctl
  else begin
    st.inv_waiting <- List.length nbrs;
    st.inv_pred <- -1;
    List.iter (fun nb -> send_ctl t ctl ~from:u ~tnode:nb Winv) nbrs
  end

and finish_invalidation t ctl =
  let w = match ctl.wtxn with Some w -> w | None -> assert false in
  ctl.var.Types.value <- w.w_value;
  if ctl.ncopies <> 1 then
    failwith
      (Printf.sprintf "access tree: %d copies of %s survive invalidation"
         ctl.ncopies ctl.var.Types.name);
  if w.w_u = w.w_origin then complete_write t ctl
  else begin
    let st = get_state t ctl w.w_u in
    let nxt = Deco.next_hop t.deco ~from:w.w_u ~target:w.w_origin in
    add_edge st nxt;
    send_data t ctl ~from:w.w_u ~tnode:nxt (Wdata { origin = w.w_origin })
  end

and complete_write t ctl =
  let w = match ctl.wtxn with Some w -> w | None -> assert false in
  ctl.wtxn <- None;
  ctl.writing <- false;
  w.w_done ();
  process_queue t ctl

(* ------------------------------------------------------------------ *)
(* Message handlers                                                     *)
(* ------------------------------------------------------------------ *)

let on_rreq t ctl ~tnode ~origin =
  let st = get_state t ctl tnode in
  if st.has_copy then begin
    touch t st;
    let nxt = Deco.next_hop t.deco ~from:tnode ~target:origin in
    add_edge st nxt;
    send_data t ctl ~from:tnode ~tnode:nxt (Rrep { origins = [ origin ] })
  end
  else if st.read_pending && t.combining then st.parked <- origin :: st.parked
  else begin
    if t.combining then st.read_pending <- true;
    send_ctl t ctl ~from:tnode ~tnode:st.toward (Rreq { origin })
  end

(* Tree-structured prefetching: when a read reply installs a copy at a
   tree node, push speculative copies one level further down, into the
   children not already covered. One extra data message per child serves
   every later reader in that child's subtree locally (its pointer chase
   stops at the child). Each in-flight push holds a slot on [ctl.reading]
   so no write can start invalidating while a speculative copy is still
   travelling — the pushed copy always joins a quiescent component. *)
let prefetch_children t ctl tnode st =
  Array.iter
    (fun c ->
      let cs = get_state t ctl c in
      if (not cs.has_copy) && not cs.read_pending then begin
        ctl.reading <- ctl.reading + 1;
        ctl.pushes <- ctl.pushes + 1;
        cs.read_pending <- true;
        add_edge st c;
        send_data t ctl ~from:tnode ~tnode:c Rpush
      end)
    t.deco.Deco.children.(tnode)

let rec on_rrep ?(push = true) t ctl ~from ~tnode ~origins =
  let st = get_state t ctl tnode in
  add_copy t ctl tnode st;
  touch t st;
  add_edge st from;
  st.read_pending <- false;
  let targets =
    List.filter (fun o -> o <> tnode) (origins @ st.parked)
  in
  st.parked <- [];
  (* Multicast along tree branches: one message per distinct direction. *)
  let groups = Hashtbl.create 4 in
  List.iter
    (fun o ->
      let nxt = Deco.next_hop t.deco ~from:tnode ~target:o in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups nxt) in
      Hashtbl.replace groups nxt (o :: cur))
    targets;
  Hashtbl.iter
    (fun nxt os ->
      add_edge st nxt;
      send_data t ctl ~from:tnode ~tnode:nxt (Rrep { origins = os }))
    groups;
  (* Speculative pushes before completions: the pushes take their reading
     slots while no resumed fiber can have issued a write yet. Only reply
     path nodes push (a pushed copy does not push further), bounding the
     speculation to one level beyond the paths actually walked. *)
  if push && t.prefetch then prefetch_children t ctl tnode st;
  (* Completions last: they may resume fibers that issue new operations. *)
  complete_reads t ctl tnode;
  process_queue t ctl

(* A speculative copy lands: exactly a reply with no origins to serve
   (parked requests that raced the push are served the same way an
   in-flight reply serves them). If the variable was retired while the
   push travelled, drop the push and finish the deferred retire once the
   last one lands. *)
and on_rpush t ctl ~from ~tnode =
  ctl.reading <- ctl.reading - 1;
  ctl.pushes <- ctl.pushes - 1;
  if ctl.retired then begin
    if ctl.pushes = 0 then finish_retire t ctl
  end
  else on_rrep ~push:false t ctl ~from ~tnode ~origins:[]

and finish_retire t ctl =
  List.iter
    (fun k ->
      (match (t.capacity, Hashtbl.find_opt t.states k) with
      | Some _, Some st when st.has_copy ->
          let tnode = k mod t.deco.Deco.num_tree_nodes in
          let proc = place t ctl.var tnode in
          t.mem_used.(proc) <- t.mem_used.(proc) - ctl.var.Types.data_size;
          Hashtbl.remove t.held.(proc) k
      | _ -> ());
      Hashtbl.remove t.placement_override k;
      Hashtbl.remove t.states k)
    ctl.touched;
  Hashtbl.remove t.vars ctl.var.Types.id

let on_wreq t ctl ~tnode ~origin =
  let st = get_state t ctl tnode in
  if st.has_copy then begin
    touch t st;
    begin_invalidation t ctl tnode
  end
  else send_data t ctl ~from:tnode ~tnode:st.toward (Wreq { origin })

let on_winv t ctl ~from ~tnode =
  let st = get_state t ctl tnode in
  if not st.has_copy then begin
    (* Stale component edge left behind by a silent LRU eviction. *)
    st.toward <- from;
    send_ctl t ctl ~from:tnode ~tnode:from Wack
  end
  else begin
    remove_copy t ctl tnode st;
    st.toward <- from;
    let out = List.filter (fun nb -> nb <> from) st.comp_edges in
    st.comp_edges <- [];
    if out = [] then send_ctl t ctl ~from:tnode ~tnode:from Wack
    else begin
      st.inv_waiting <- List.length out;
      st.inv_pred <- from;
      List.iter (fun nb -> send_ctl t ctl ~from:tnode ~tnode:nb Winv) out
    end
  end

let on_wack t ctl ~tnode =
  let st = get_state t ctl tnode in
  assert (st.inv_waiting > 0);
  st.inv_waiting <- st.inv_waiting - 1;
  if st.inv_waiting = 0 then
    if st.inv_pred = -1 then finish_invalidation t ctl
    else begin
      let pred = st.inv_pred in
      st.inv_pred <- -1;
      send_ctl t ctl ~from:tnode ~tnode:pred Wack
    end

let on_wdata t ctl ~from ~tnode ~origin =
  let st = get_state t ctl tnode in
  add_copy t ctl tnode st;
  touch t st;
  st.comp_edges <- [ from ];
  if tnode = origin then complete_write t ctl
  else begin
    let nxt = Deco.next_hop t.deco ~from:tnode ~target:origin in
    add_edge st nxt;
    send_data t ctl ~from:tnode ~tnode:nxt (Wdata { origin })
  end

(* ------------------------------------------------------------------ *)
(* Raymond's mutual exclusion on the access tree                        *)
(* ------------------------------------------------------------------ *)

let rec assign_privilege t ctl tnode =
  let st = get_state t ctl tnode in
  if st.tok_toward = -1 && (not st.locked) && st.lqueue <> [] then begin
    let next, rest =
      match st.lqueue with n :: r -> (n, r) | [] -> assert false
    in
    st.lqueue <- rest;
    st.lasked <- false;
    if next = tnode then begin
      st.locked <- true;
      match Hashtbl.find_opt t.lock_waiters (key t ctl.var.Types.id tnode) with
      | Some k ->
          Hashtbl.remove t.lock_waiters (key t ctl.var.Types.id tnode);
          k ()
      | None -> assert false
    end
    else begin
      st.tok_toward <- next;
      send_ctl t ctl ~from:tnode ~tnode:next Ltok;
      make_request t ctl tnode
    end
  end

and make_request t ctl tnode =
  let st = get_state t ctl tnode in
  if st.tok_toward <> -1 && st.lqueue <> [] && not st.lasked then begin
    st.lasked <- true;
    send_ctl t ctl ~from:tnode ~tnode:st.tok_toward Lreq
  end

let on_lreq t ctl ~from ~tnode =
  let st = get_state t ctl tnode in
  st.lqueue <- st.lqueue @ [ from ];
  assign_privilege t ctl tnode;
  make_request t ctl tnode

let on_ltok t ctl ~tnode =
  let st = get_state t ctl tnode in
  st.tok_toward <- -1;
  assign_privilege t ctl tnode;
  make_request t ctl tnode

let lock t p var ~k =
  let ctl = get_ctl t var in
  let tnode = leaf t p in
  let st = get_state t ctl tnode in
  Hashtbl.replace t.lock_waiters (key t var.Types.id tnode) k;
  st.lqueue <- st.lqueue @ [ tnode ];
  assign_privilege t ctl tnode;
  make_request t ctl tnode

let unlock t p var =
  let ctl = get_ctl t var in
  let tnode = leaf t p in
  let st = get_state t ctl tnode in
  if not st.locked then
    invalid_arg "Access_tree.unlock: processor does not hold the lock";
  st.locked <- false;
  assign_privilege t ctl tnode;
  make_request t ctl tnode

(* ------------------------------------------------------------------ *)
(* Public operations                                                    *)
(* ------------------------------------------------------------------ *)

let cached t p var =
  let ctl = get_ctl t var in
  let st = get_state t ctl (leaf t p) in
  if st.has_copy then touch t st;
  st.has_copy

let sole_copy t p var =
  let ctl = get_ctl t var in
  let st = get_state t ctl (leaf t p) in
  st.has_copy && ctl.ncopies = 1 && (not ctl.writing) && ctl.reading = 0
  && Queue.is_empty ctl.pending

let read t p var ~k =
  let ctl = get_ctl t var in
  if ctl.writing || not (Queue.is_empty ctl.pending) then
    Queue.add (Oread { o_p = p; o_txn = Network.cur_txn t.net; o_k = k })
      ctl.pending
  else start_read t ctl p k

let write t p var value ~k =
  let ctl = get_ctl t var in
  if ctl.writing || ctl.reading > 0 || not (Queue.is_empty ctl.pending) then
    Queue.add
      (Owrite { o_p = p; o_txn = Network.cur_txn t.net; o_v = value; o_k = k })
      ctl.pending
  else start_write t ctl p value k

(* The remapping variant of the original FOCS'97 strategy: once a tree node
   has served [threshold] messages it moves to a fresh random processor of
   its submesh. In-flight messages still reach its state (states are keyed
   by tree-node id, not by placement); only the link traffic changes. *)
let maybe_remap t (ctl : ctl) tnode =
  match t.remap_threshold with
  | None -> ()
  | Some threshold ->
      let st = get_state t ctl tnode in
      st.traffic <- st.traffic + 1;
      if st.traffic >= threshold && not (Deco.is_leaf t.deco tnode) then begin
        st.traffic <- 0;
        let sm = t.deco.Deco.submesh.(tnode) in
        let mesh = t.deco.Deco.mesh in
        let coords =
          Array.mapi
            (fun k o -> o + Diva_util.Prng.int t.remap_rng sm.Deco.sizes.(k))
            sm.Deco.origin
        in
        let fresh = Mesh.node_at_nd mesh coords in
        let old = place t ctl.var tnode in
        if fresh <> old then begin
          (* Move the node's state (and copy, if any). *)
          let size =
            if st.has_copy then Types.data_size ctl.var else Types.control_size
          in
          (match t.capacity with
          | Some _ when st.has_copy ->
              let k = key t ctl.var.Types.id tnode in
              t.mem_used.(old) <- t.mem_used.(old) - ctl.var.Types.data_size;
              Hashtbl.remove t.held.(old) k;
              t.mem_used.(fresh) <- t.mem_used.(fresh) + ctl.var.Types.data_size;
              Hashtbl.replace t.held.(fresh) k ()
          | _ -> ());
          Hashtbl.replace t.placement_override (key t ctl.var.Types.id tnode) fresh;
          t.remap_count <- t.remap_count + 1;
          let tr = Network.trace t.net in
          if Trace.enabled tr then
            Trace.emit tr
              (Trace.Remap
                 { ts = Network.now t.net; var = ctl.var.Types.id;
                   var_name = ctl.var.Types.name; tnode;
                   level = t.deco.Deco.depth.(tnode); from_node = old;
                   to_node = fresh });
          Network.tag_level t.net t.deco.Deco.depth.(tnode);
          Network.send t.net ~src:old ~dst:fresh ~size
            (At { var_id = ctl.var.Types.id; from = tnode; tnode; body = Rmove })
        end
      end

let handle t (msg : Network.msg) =
  match msg.Network.m_payload with
  | At { var_id; from; tnode; body } ->
      let ctl =
        match Hashtbl.find t.vars var_id with
        | c -> c
        | exception Not_found ->
            failwith "Access_tree.handle: message for unknown variable"
      in
      (match body with
      | Rreq { origin } -> on_rreq t ctl ~tnode ~origin
      | Rrep { origins } -> on_rrep t ctl ~from ~tnode ~origins
      | Rpush -> on_rpush t ctl ~from ~tnode
      | Wreq { origin } -> on_wreq t ctl ~tnode ~origin
      | Winv -> on_winv t ctl ~from ~tnode
      | Wack -> on_wack t ctl ~tnode
      | Wdata { origin } -> on_wdata t ctl ~from ~tnode ~origin
      | Lreq -> on_lreq t ctl ~from ~tnode
      | Ltok -> on_ltok t ctl ~tnode
      | Rmove -> ());
      (match body with Rmove -> () | _ -> maybe_remap t ctl tnode);
      true
  | _ -> false

let ncopies t var = (get_ctl t var).ncopies

let copy_holders t var =
  let acc = ref [] in
  let nt = t.deco.Deco.num_tree_nodes in
  Hashtbl.iter
    (fun k st -> if st.has_copy && k / nt = var.Types.id then acc := (k mod nt) :: !acc)
    t.states;
  (* The initial owner's leaf may never have been materialised. *)
  let owner_leaf = leaf t var.Types.owner in
  if
    (not (Hashtbl.mem t.states (key t var.Types.id owner_leaf)))
    && not (List.mem owner_leaf !acc)
  then acc := owner_leaf :: !acc;
  List.sort compare !acc

let evictions t = t.eviction_count
let remaps t = t.remap_count

let retire t (var : Types.var) =
  match Hashtbl.find_opt t.vars var.Types.id with
  | None -> ()
  | Some ctl ->
      if
        ctl.writing
        || ctl.reading - ctl.pushes > 0
        || not (Queue.is_empty ctl.pending)
      then invalid_arg "Access_tree.retire: variable has transactions in flight";
      (* Speculative pushes are not application transactions: the state
         must outlive them (their arrival looks up the variable), so the
         actual teardown is deferred to the last push's landing. *)
      if ctl.pushes > 0 then ctl.retired <- true else finish_retire t ctl

let deco t = t.deco

let validate t (var : Types.var) =
  match Hashtbl.find_opt t.vars var.Types.id with
  | None -> Ok ()  (* never accessed: implicit singleton at the owner *)
  | Some ctl ->
      let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
      if ctl.writing || ctl.reading > 0 || not (Queue.is_empty ctl.pending) then
        err "%s: transactions in flight" var.Types.name
      else begin
        let holders = copy_holders t var in
        let nh = List.length holders in
        if nh <> ctl.ncopies then
          err "%s: ncopies %d but %d holders" var.Types.name ctl.ncopies nh
        else if nh = 0 then err "%s: no copies at all" var.Types.name
        else begin
          (* Connectivity: every holder except the shallowest reaches
             another holder via its tree parent chain within the component.
             Equivalently: for each holder other than the minimum-depth
             one, its parent-ward neighbour on the path toward the first
             holder must also be a holder (connected subtrees of a tree are
             exactly sets closed under taking the path to a fixed member).
             We check pairwise paths to the first holder. *)
          let first = List.hd holders in
          let connected =
            List.for_all
              (fun h ->
                h = first
                || List.for_all
                     (fun x -> List.mem x holders)
                     (let rec walk cur acc =
                        if cur = first then acc
                        else
                          let nxt = Deco.next_hop t.deco ~from:cur ~target:first in
                          walk nxt (nxt :: acc)
                      in
                      walk h [ h ]))
              holders
          in
          if not connected then err "%s: copy component disconnected" var.Types.name
          else begin
            (* Every materialised pointer chain reaches the component. *)
            let nt = t.deco.Deco.num_tree_nodes in
            let bad = ref None in
            Hashtbl.iter
              (fun k st ->
                if k / nt = var.Types.id && not st.has_copy then begin
                  let rec chase cur steps =
                    if steps > nt then false
                    else if List.mem cur holders then true
                    else
                      let s = get_state t ctl cur in
                      if s.has_copy then true else chase s.toward (steps + 1)
                  in
                  if not (chase (k mod nt) 0) then bad := Some (k mod nt)
                end)
              t.states;
            match !bad with
            | Some tn -> err "%s: pointer chain from node %d is lost" var.Types.name tn
            | None -> Ok ()
          end
        end
      end

(* ------------------------------------------------------------------ *)
(* STRATEGY instance                                                    *)
(* ------------------------------------------------------------------ *)

module Impl :
  Strategy.STRATEGY with type t = t and type config = Strategy.tree_config =
struct
  type nonrec t = t
  type config = Strategy.tree_config

  let id = "access-tree"

  let create net (c : Strategy.tree_config) =
    let deco =
      Deco.build (Network.mesh net) ~arity:(Deco.arity_of_int c.arity)
        ~leaf_size:c.leaf_size
    in
    create net deco ~embedding:c.embedding ?capacity:c.capacity
      ~combining:c.combining ?remap_threshold:c.remap_threshold
      ~eviction:c.eviction ~prefetch:c.prefetch ()

  let sync_deco t = Some t.deco
  let handle = handle
  let cached = cached
  let sole_copy = sole_copy
  let read = read
  let write = write
  let lock = lock
  let unlock = unlock
  let ncopies = ncopies

  let copy_holder_places t var =
    List.sort_uniq compare (List.map (place t var) (copy_holders t var))

  let evictions = evictions
  let remaps = remaps
  let retire = retire
  let validate = validate
end
