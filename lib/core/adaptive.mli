(** Read/write-frequency-adaptive replication with home migration.

    The fixed-home ownership protocol with two adaptive twists from the
    data-grids replication literature:

    - a reader earns a cached replica only after [replicate_after]
      consecutive home read misses since its last invalidation, so cold
      or write-shared data stays un-replicated and its writes pay no
      invalidation fan-out;
    - every [migrate_after] home transactions the home re-examines the
      per-processor request tally and migrates to a processor that
      accounts for at least half of the window (paying one data-sized
      state-transfer message); requests already in flight toward the old
      home are forwarded. *)

type t

val create :
  Diva_simnet.Network.t -> ?replicate_after:int -> ?migrate_after:int -> unit -> t
(** Defaults come from {!Strategy.adaptive_defaults}. Raises
    [Invalid_argument] if either parameter is < 1. *)

val home : t -> Types.var -> Types.proc
(** The variable's {e current} home processor. *)

val handle : t -> Diva_simnet.Network.msg -> bool

val cached : t -> Types.proc -> Types.var -> bool
val sole_copy : t -> Types.proc -> Types.var -> bool

val read : t -> Types.proc -> Types.var -> k:(Value.t -> unit) -> unit
val write : t -> Types.proc -> Types.var -> Value.t -> k:(unit -> unit) -> unit
val lock : t -> Types.proc -> Types.var -> k:(unit -> unit) -> unit
val unlock : t -> Types.proc -> Types.var -> unit

val ncopies : t -> Types.var -> int
val copy_holders : t -> Types.var -> Types.proc list

val migrations : t -> int
(** Number of home migrations performed so far (reported as [remaps]). *)

val retire : t -> Types.var -> unit

val validate : t -> Types.var -> (unit, string) result
(** Structural invariants at quiescence; see {!Fixed_home.validate}. *)

module Impl :
  Strategy.STRATEGY with type t = t and type config = Strategy.adaptive_config
(** Adaptive replication packed as a first-class strategy. *)
