(* Read/write-frequency-adaptive replication with home migration.

   The protocol is the fixed-home ownership scheme with two adaptive
   twists motivated by the data-grids replication survey:

   - A reader is granted a cached replica only after [replicate_after]
     consecutive home read misses since its last invalidation. Cold or
     write-shared data therefore stays un-replicated and its writes pay
     no invalidation fan-out; genuinely read-hot data converges to the
     fixed-home behaviour after the warm-up streak.

   - Every [migrate_after] home transactions the home re-examines the
     per-processor request tally; if one processor accounts for at least
     half the window, the home migrates to it (paying one data-sized
     state-transfer message). Requests already in flight toward the old
     home are forwarded, paying the detour. *)

module Network = Diva_simnet.Network
module Prng = Diva_util.Prng
module Trace = Diva_obs.Trace

type owner = Home | Owned_by of Types.proc

type body =
  | Arreq of { origin : Types.proc }
  | Afetch
  | Afdata
  | Ardata of { reader : Types.proc; epoch : int; cacheable : bool; v : Value.t }
  | Awreq of { origin : Types.proc; value : Value.t }
  | Ainv
  | Ainvack
  | Agrant of { origin : Types.proc }
  | Alock of { origin : Types.proc }
  | Algrant of { origin : Types.proc }
  | Aunlock
  | Amove  (* home-state transfer to the new home; no handler action *)

type Network.payload += Ad of { var_id : int; body : body }

(* Home-side transactions carry the issuer's causal id (see Fixed_home). *)
type txn =
  | Tread of { origin : Types.proc; t_txn : int }
  | Twrite of { origin : Types.proc; value : Value.t; t_txn : int }

type hstate = {
  var : Types.var;
  mutable home : Types.proc;  (* migrates; requests to a stale home forward *)
  mutable owner : owner;
  home_copies : (Types.proc, unit) Hashtbl.t;  (* the home's registry *)
  valid : (Types.proc, unit) Hashtbl.t;  (* per-processor hit flags *)
  mutable epoch : int;
  mutable busy : bool;
  q : txn Queue.t;
  mutable cur : txn option;
  mutable acks : int;
  streak : (Types.proc, int) Hashtbl.t;
      (* consecutive home read misses since the last invalidation *)
  tally : (Types.proc, int) Hashtbl.t;  (* requests per proc, this window *)
  mutable window : int;  (* home transactions since the last re-examination *)
  (* Lock management: FIFO queue at the home (migrates with it). *)
  mutable lock_held : bool;
  lq : Types.proc Queue.t;
}

type t = {
  net : Network.t;
  replicate_after : int;
  migrate_after : int;
  vars : (int, hstate) Hashtbl.t;
  read_waiters : (int, Value.t -> unit) Hashtbl.t;  (* var_id * P + proc *)
  write_waiters : (int, unit -> unit) Hashtbl.t;
  lock_waiters : (int, unit -> unit) Hashtbl.t;
  mutable migrations : int;
}

let create net ?(replicate_after = Strategy.adaptive_defaults.replicate_after)
    ?(migrate_after = Strategy.adaptive_defaults.migrate_after) () =
  if replicate_after < 1 then invalid_arg "Adaptive.create: replicate_after";
  if migrate_after < 1 then invalid_arg "Adaptive.create: migrate_after";
  {
    net;
    replicate_after;
    migrate_after;
    vars = Hashtbl.create 1024;
    read_waiters = Hashtbl.create 64;
    write_waiters = Hashtbl.create 64;
    lock_waiters = Hashtbl.create 64;
    migrations = 0;
  }

let get t (var : Types.var) =
  match Hashtbl.find_opt t.vars var.Types.id with
  | Some s -> s
  | None ->
      let nprocs = Network.num_nodes t.net in
      (* Same initial placement rule as fixed home, for comparability. *)
      let home = Prng.hash2_int var.Types.seed 1 ~bound:nprocs in
      let s =
        { var; home; owner = Owned_by var.Types.owner;
          home_copies = Hashtbl.create 4; valid = Hashtbl.create 4; epoch = 0;
          busy = false; q = Queue.create (); cur = None; acks = 0;
          streak = Hashtbl.create 4; tally = Hashtbl.create 4; window = 0;
          lock_held = false; lq = Queue.create () }
      in
      Hashtbl.add s.home_copies var.Types.owner ();
      Hashtbl.add s.valid var.Types.owner ();
      Hashtbl.add t.vars var.Types.id s;
      s

let home t var = (get t var).home
let wkey t var_id p = (var_id * Network.num_nodes t.net) + p

let send t hs ~src ~dst ~size body =
  Network.send t.net ~src ~dst ~size (Ad { var_id = hs.var.Types.id; body })

let trace_copy t hs node change =
  let tr = Network.trace t.net in
  if Trace.enabled tr then
    let ts = Network.now t.net in
    let var = hs.var.Types.id and var_name = hs.var.Types.name in
    Trace.emit tr
      (match change with
      | `Add -> Trace.Copy_add { ts; node; var; var_name; tnode = -1; level = -1 }
      | `Drop ->
          Trace.Copy_drop
            { ts; node; var; var_name; tnode = -1; level = -1;
              reason = Trace.Invalidated })

let send_ctl t hs ~src ~dst body = send t hs ~src ~dst ~size:Types.control_size body

let send_data t hs ~src ~dst body =
  send t hs ~src ~dst ~size:(Types.data_size hs.var) body

(* ------------------------------------------------------------------ *)
(* Home-side transaction machine                                        *)
(* ------------------------------------------------------------------ *)

let reply_read t hs origin =
  let s = 1 + Option.value ~default:0 (Hashtbl.find_opt hs.streak origin) in
  Hashtbl.replace hs.streak origin s;
  let cacheable = s >= t.replicate_after in
  (* Non-cacheable readers are not registered: their reply is a one-shot
     value and later writes need not invalidate them. *)
  if cacheable then Hashtbl.replace hs.home_copies origin ();
  send_data t hs ~src:hs.home ~dst:origin
    (Ardata { reader = origin; epoch = hs.epoch; cacheable;
              v = hs.var.Types.value });
  hs.cur <- None;
  hs.busy <- false

let commit_write t hs origin value =
  hs.var.Types.value <- value;
  hs.epoch <- hs.epoch + 1;
  Hashtbl.reset hs.home_copies;
  Hashtbl.add hs.home_copies origin ();
  (* An invalidation ends every replication streak. *)
  Hashtbl.reset hs.streak;
  hs.owner <- Owned_by origin;
  send_ctl t hs ~src:hs.home ~dst:origin (Agrant { origin });
  hs.cur <- None;
  hs.busy <- false

let rec process t hs =
  if (not hs.busy) && not (Queue.is_empty hs.q) then begin
    let txn = Queue.pop hs.q in
    hs.busy <- true;
    hs.cur <- Some txn;
    hs.window <- hs.window + 1;
    let origin =
      match txn with Tread { origin; _ } | Twrite { origin; _ } -> origin
    in
    Hashtbl.replace hs.tally origin
      (1 + Option.value ~default:0 (Hashtbl.find_opt hs.tally origin));
    Network.set_txn t.net
      (match txn with Tread { t_txn; _ } | Twrite { t_txn; _ } -> t_txn);
    match txn with
    | Tread { origin; _ } -> (
        match hs.owner with
        | Owned_by ow when ow <> origin ->
            send_ctl t hs ~src:hs.home ~dst:ow Afetch
        | Owned_by _ | Home ->
            hs.owner <- Home;
            reply_read t hs origin;
            process t hs)
    | Twrite { origin; value; _ } ->
        let holders =
          Hashtbl.fold (fun p () acc -> if p <> origin then p :: acc else acc)
            hs.home_copies []
        in
        if holders = [] then begin
          commit_write t hs origin value;
          process t hs
        end
        else begin
          hs.acks <- List.length holders;
          List.iter (fun p -> send_ctl t hs ~src:hs.home ~dst:p Ainv) holders
        end
  end

(* Re-examine the home placement once per window, only at quiescence (so
   a migration never races a home transaction's own messages). The tally
   argmax scans processor ids in ascending order — deterministic ties. *)
let maybe_migrate t hs =
  if (not hs.busy) && Queue.is_empty hs.q && hs.window >= t.migrate_after
  then begin
    let w = hs.window in
    let best = ref (-1) and bestn = ref 0 in
    for p = 0 to Network.num_nodes t.net - 1 do
      match Hashtbl.find_opt hs.tally p with
      | Some n when n > !bestn ->
          best := p;
          bestn := n
      | _ -> ()
    done;
    hs.window <- 0;
    Hashtbl.reset hs.tally;
    if 2 * !bestn >= w && !best >= 0 && !best <> hs.home then begin
      let old = hs.home in
      hs.home <- !best;
      t.migrations <- t.migrations + 1;
      let tr = Network.trace t.net in
      if Trace.enabled tr then
        Trace.emit tr
          (Trace.Remap
             { ts = Network.now t.net; var = hs.var.Types.id;
               var_name = hs.var.Types.name; tnode = -1; level = -1;
               from_node = old; to_node = !best });
      send_data t hs ~src:old ~dst:!best Amove
    end
  end

let on_home_msg t hs body =
  (match body with
  | Arreq { origin } ->
      Queue.add (Tread { origin; t_txn = Network.cur_txn t.net }) hs.q;
      process t hs
  | Awreq { origin; value } ->
      Queue.add (Twrite { origin; value; t_txn = Network.cur_txn t.net }) hs.q;
      process t hs
  | Afdata -> (
      match hs.cur with
      | Some (Tread { origin; t_txn }) ->
          Network.set_txn t.net t_txn;
          hs.owner <- Home;
          reply_read t hs origin;
          process t hs
      | _ -> assert false)
  | Ainvack -> (
      hs.acks <- hs.acks - 1;
      if hs.acks = 0 then
        match hs.cur with
        | Some (Twrite { origin; value; t_txn }) ->
            Network.set_txn t.net t_txn;
            commit_write t hs origin value;
            process t hs
        | _ -> assert false)
  | Alock { origin } ->
      if hs.lock_held then Queue.add origin hs.lq
      else begin
        hs.lock_held <- true;
        send_ctl t hs ~src:hs.home ~dst:origin (Algrant { origin })
      end
  | Aunlock ->
      if Queue.is_empty hs.lq then hs.lock_held <- false
      else begin
        let nxt = Queue.pop hs.lq in
        send_ctl t hs ~src:hs.home ~dst:nxt (Algrant { origin = nxt })
      end
  | Afetch | Ainv | Ardata _ | Agrant _ | Algrant _ | Amove -> assert false);
  maybe_migrate t hs

let on_proc_msg t hs me body =
  match body with
  | Afetch -> send_data t hs ~src:me ~dst:hs.home Afdata
  | Ainv ->
      if Hashtbl.mem hs.valid me then trace_copy t hs me `Drop;
      Hashtbl.remove hs.valid me;
      send_ctl t hs ~src:me ~dst:hs.home Ainvack
  | Ardata { reader; epoch; cacheable; v } ->
      assert (reader = me);
      if cacheable && epoch = hs.epoch then begin
        if not (Hashtbl.mem hs.valid me) then trace_copy t hs me `Add;
        Hashtbl.replace hs.valid me ()
      end;
      let key = wkey t hs.var.Types.id me in
      (match Hashtbl.find_opt t.read_waiters key with
      | Some k ->
          Hashtbl.remove t.read_waiters key;
          k v
      | None -> assert false)
  | Agrant { origin } ->
      assert (origin = me);
      if not (Hashtbl.mem hs.valid me) then trace_copy t hs me `Add;
      Hashtbl.replace hs.valid me ();
      let key = wkey t hs.var.Types.id me in
      (match Hashtbl.find_opt t.write_waiters key with
      | Some k ->
          Hashtbl.remove t.write_waiters key;
          k ()
      | None -> assert false)
  | Algrant { origin } ->
      assert (origin = me);
      let key = wkey t hs.var.Types.id me in
      (match Hashtbl.find_opt t.lock_waiters key with
      | Some k ->
          Hashtbl.remove t.lock_waiters key;
          k ()
      | None -> assert false)
  | Arreq _ | Awreq _ | Afdata | Ainvack | Alock _ | Aunlock | Amove ->
      assert false

let handle t (msg : Network.msg) =
  match msg.Network.m_payload with
  | Ad { body = Amove; _ } ->
      (* State already moved with the [home] field; the message only pays
         the transfer cost. Tolerated even if the variable was retired
         while the transfer travelled. *)
      true
  | Ad { var_id; body } ->
      let hs =
        match Hashtbl.find_opt t.vars var_id with
        | Some s -> s
        | None -> failwith "Adaptive.handle: message for unknown variable"
      in
      let me = msg.Network.m_dst in
      (match body with
      | Arreq _ | Awreq _ | Afdata | Ainvack | Alock _ | Aunlock ->
          if me <> hs.home then
            (* The home migrated while this request travelled: forward. *)
            send_ctl t hs ~src:me ~dst:hs.home body
          else on_home_msg t hs body
      | Afetch | Ainv | Ardata _ | Agrant _ | Algrant _ ->
          on_proc_msg t hs me body
      | Amove -> assert false);
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Public operations                                                    *)
(* ------------------------------------------------------------------ *)

let cached t p var = Hashtbl.mem (get t var).valid p

let sole_copy t p var =
  let hs = get t var in
  (match hs.owner with Owned_by o -> o = p | Home -> false)
  && (not hs.busy) && Queue.is_empty hs.q

let read t p var ~k =
  let hs = get t var in
  Hashtbl.replace t.read_waiters (wkey t var.Types.id p) k;
  send_ctl t hs ~src:p ~dst:hs.home (Arreq { origin = p })

let write t p var value ~k =
  let hs = get t var in
  Hashtbl.replace t.write_waiters (wkey t var.Types.id p) k;
  send_ctl t hs ~src:p ~dst:hs.home (Awreq { origin = p; value })

let lock t p var ~k =
  let hs = get t var in
  Hashtbl.replace t.lock_waiters (wkey t var.Types.id p) k;
  send_ctl t hs ~src:p ~dst:hs.home (Alock { origin = p })

let unlock t p var =
  let hs = get t var in
  send_ctl t hs ~src:p ~dst:hs.home Aunlock

let ncopies t var = Hashtbl.length (get t var).valid

let copy_holders t var =
  List.sort compare
    (Hashtbl.fold (fun p () acc -> p :: acc) (get t var).valid [])

let migrations t = t.migrations
let retire t (var : Types.var) = Hashtbl.remove t.vars var.Types.id

let validate t (var : Types.var) =
  let hs = get t var in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if hs.busy || not (Queue.is_empty hs.q) then
    err "%s: home transaction still in flight" var.Types.name
  else if Hashtbl.length hs.valid = 0 then
    err "%s: no valid copy anywhere" var.Types.name
  else
    let untracked =
      Hashtbl.fold
        (fun p () acc -> if Hashtbl.mem hs.home_copies p then acc else p :: acc)
        hs.valid []
    in
    match (untracked, hs.owner) with
    | p :: _, _ ->
        err "%s: processor %d holds a copy the home does not track"
          var.Types.name p
    | [], Owned_by ow when not (Hashtbl.mem hs.valid ow) ->
        err "%s: owner %d lacks a valid copy" var.Types.name ow
    | [], _ -> Ok ()

(* ------------------------------------------------------------------ *)
(* STRATEGY instance                                                    *)
(* ------------------------------------------------------------------ *)

module Impl :
  Strategy.STRATEGY
    with type t = t
     and type config = Strategy.adaptive_config = struct
  type nonrec t = t
  type config = Strategy.adaptive_config

  let id = "adaptive"

  let create net (c : Strategy.adaptive_config) =
    create net ~replicate_after:c.replicate_after
      ~migrate_after:c.migrate_after ()

  let sync_deco _ = None
  let handle = handle
  let cached = cached
  let sole_copy = sole_copy
  let read = read
  let write = write
  let lock = lock
  let unlock = unlock
  let ncopies = ncopies
  let copy_holder_places = copy_holders
  let evictions _ = 0
  let remaps = migrations
  let retire = retire
  let validate = validate
end
