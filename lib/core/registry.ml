(* The strategy registry: one table mapping canonical names to configured
   {!Strategy.spec}s, so divasim, bench, chaos, serve and analyze all
   resolve contenders uniformly — and so test harnesses (conformance,
   golden traces, CI smokes) can enumerate every contender without
   knowing any of them. *)

module Deco = Diva_mesh.Decomposition
module Network = Diva_simnet.Network

type entry = { name : string; spec : Strategy.spec; summary : string }

(* 64 KiB per processor: small enough that the paper's applications
   actually pressure the eviction path, large enough that the protocol
   keeps working sets resident. *)
let default_capacity = 65536

let entries =
  [
    {
      name = "access_tree";
      spec = Strategy.Access_tree Strategy.tree_defaults;
      summary = "the paper's 4-ary access tree (FOCS'97), unbounded memory";
    };
    {
      name = "fixed_home";
      spec = Strategy.Fixed_home;
      summary = "CC-NUMA-style fixed random home with ownership";
    };
    {
      name = "prefetch_tree";
      spec = Strategy.Access_tree { Strategy.tree_defaults with prefetch = true };
      summary =
        "access tree pushing speculative copies one level down on reads";
    };
    {
      name = "adaptive_repl";
      spec = Strategy.Adaptive Strategy.adaptive_defaults;
      summary =
        "frequency-adaptive replication with home migration (data grids)";
    };
    {
      name = "capacity_lru";
      spec =
        Strategy.Access_tree
          { Strategy.tree_defaults with capacity = Some default_capacity };
      summary = "access tree under a 64 KiB/node memory bound, LRU eviction";
    };
    {
      name = "capacity_freq";
      spec =
        Strategy.Access_tree
          {
            Strategy.tree_defaults with
            capacity = Some default_capacity;
            eviction = Strategy.Freq;
          };
      summary =
        "access tree under a 64 KiB/node memory bound, frequency eviction";
    };
  ]

let names () = List.map (fun e -> e.name) entries
let contenders () = List.map (fun e -> (e.name, e.spec)) entries

let normalize s =
  String.map (function '-' -> '_' | c -> Char.lowercase_ascii c) s

let find name =
  let n =
    match normalize name with
    | "adaptive" | "adaptive_home" -> "adaptive_repl"
    | "fixedhome" | "home" -> "fixed_home"
    | n -> n
  in
  Option.map (fun e -> e.spec) (List.find_opt (fun e -> e.name = n) entries)

type resolved = {
  inst : Strategy.instance;
  sync_deco : Deco.t;
  tree : Access_tree.t option;
      (* kept unpacked for the tree-specific observability hooks *)
}

let default_deco net = Deco.build (Network.mesh net) ~arity:Deco.Four ~leaf_size:1

let instantiate net (spec : Strategy.spec) =
  match spec with
  | Strategy.Access_tree c ->
      let at = Access_tree.Impl.create net c in
      {
        inst = Strategy.Instance ((module Access_tree.Impl), at);
        sync_deco = Access_tree.deco at;
        tree = Some at;
      }
  | Strategy.Fixed_home ->
      let fh = Fixed_home.Impl.create net () in
      {
        inst = Strategy.Instance ((module Fixed_home.Impl), fh);
        sync_deco = default_deco net;
        tree = None;
      }
  | Strategy.Adaptive c ->
      let ad = Adaptive.Impl.create net c in
      {
        inst = Strategy.Instance ((module Adaptive.Impl), ad);
        sync_deco = default_deco net;
        tree = None;
      }
