(** First-class data-management strategy interface.

    One module signature ({!STRATEGY}) covers every contender; a strategy
    choice is a {!spec} (a configured variant), resolved to a packed
    {!instance} by {!Registry}. The [Dsm] façade drives instances only
    through the generic dispatchers below, so adding a strategy never
    touches the façade. *)

type eviction = Lru | Freq
(** Victim selection under a finite per-node capacity: least recently
    used, or least frequently used (lifetime touch count). *)

type tree_config = {
  arity : int;  (** 2, 4 or 16 *)
  leaf_size : int;  (** terminate the decomposition at submeshes <= this *)
  embedding : Diva_mesh.Embedding.kind;
  capacity : int option;  (** per-processor memory bound in bytes *)
  combining : bool;  (** read combining (on by default) *)
  remap_threshold : int option;
      (** enable the FOCS'97 remapping of hot tree nodes *)
  eviction : eviction;  (** victim policy when [capacity] is set *)
  prefetch : bool;
      (** push speculative copies one level down the tree on read replies *)
}

type adaptive_config = {
  replicate_after : int;
      (** grant a cached replica only after this many consecutive home
          misses by the same processor since its last invalidation *)
  migrate_after : int;
      (** re-examine the home placement every this many home transactions *)
}

type spec =
  | Access_tree of tree_config
  | Fixed_home
  | Adaptive of adaptive_config

val tree_defaults : tree_config
(** The paper's defaults: 4-ary, leaf size 1, regular embedding, unbounded
    memory, combining on, LRU, no prefetch. *)

val adaptive_defaults : adaptive_config

val tree_name : tree_config -> string
val spec_name : spec -> string
(** "2-ary", "4-16-ary", "fixed home", "4-ary+prefetch", ... *)

module type STRATEGY = sig
  type t
  type config

  val id : string
  (** Short family identifier ("access-tree", "fixed-home", ...). *)

  val create : Diva_simnet.Network.t -> config -> t
  (** Init hook: build all protocol state. Must not install network
      handlers — the [Dsm] façade dispatches into {!handle}. *)

  val sync_deco : t -> Diva_mesh.Decomposition.t option
  (** Sync hook: the decomposition tree barriers/reductions should run on
      ([None] = the registry's default four-ary tree). *)

  val handle : t -> Diva_simnet.Network.msg -> bool
  (** Consume a protocol message; [false] if the payload is foreign. *)

  val cached : t -> Types.proc -> Types.var -> bool
  (** Local-read fast path: serve without communication? *)

  val sole_copy : t -> Types.proc -> Types.var -> bool
  (** Local-write fast path: does [p] hold the only copy, with no
      transaction in flight? *)

  val read : t -> Types.proc -> Types.var -> k:(Value.t -> unit) -> unit
  val write : t -> Types.proc -> Types.var -> Value.t -> k:(unit -> unit) -> unit
  val lock : t -> Types.proc -> Types.var -> k:(unit -> unit) -> unit
  val unlock : t -> Types.proc -> Types.var -> unit

  val ncopies : t -> Types.var -> int
  val copy_holder_places : t -> Types.var -> Types.proc list
  (** Mesh processors currently holding a copy, sorted, duplicates
      removed. *)

  val evictions : t -> int
  val remaps : t -> int
  (** Cost accounting beyond message traffic: capacity evictions and
      tree-node remappings / home migrations. *)

  val retire : t -> Types.var -> unit
  val validate : t -> Types.var -> (unit, string) result
end

type instance =
  | Instance : (module STRATEGY with type t = 'a) * 'a -> instance

(** {2 Generic dispatchers} *)

val id : instance -> string
val sync_deco : instance -> Diva_mesh.Decomposition.t option
val handle : instance -> Diva_simnet.Network.msg -> bool
val cached : instance -> Types.proc -> Types.var -> bool
val sole_copy : instance -> Types.proc -> Types.var -> bool
val read : instance -> Types.proc -> Types.var -> k:(Value.t -> unit) -> unit
val write :
  instance -> Types.proc -> Types.var -> Value.t -> k:(unit -> unit) -> unit
val lock : instance -> Types.proc -> Types.var -> k:(unit -> unit) -> unit
val unlock : instance -> Types.proc -> Types.var -> unit
val ncopies : instance -> Types.var -> int
val copy_holder_places : instance -> Types.var -> Types.proc list
val evictions : instance -> int
val remaps : instance -> int
val retire : instance -> Types.var -> unit
val validate : instance -> Types.var -> (unit, string) result
