(** The strategy registry.

    One table mapping canonical names to configured {!Strategy.spec}s, so
    every tool (divasim, bench, chaos, serve, analyze) and every test
    harness resolves contenders uniformly. Adding a strategy here
    automatically enrolls it in the qcheck conformance suite, the chaos
    oracle campaign, and the CI strategy-matrix smoke. *)

type entry = {
  name : string;  (** canonical name, [a-z_] — accepted by [--strategy] *)
  spec : Strategy.spec;
  summary : string;  (** one line for [--help] and docs *)
}

val default_capacity : int
(** Per-processor memory bound (bytes) of the capacity contenders. *)

val entries : entry list
(** Every registered contender, in presentation order: [access_tree],
    [fixed_home], [prefetch_tree], [adaptive_repl], [capacity_lru],
    [capacity_freq]. *)

val names : unit -> string list
val contenders : unit -> (string * Strategy.spec) list

val find : string -> Strategy.spec option
(** Case-insensitive lookup; ['-'] and ['_'] are interchangeable, and the
    aliases [adaptive], [adaptive-home], [fixedhome], [home] resolve to
    their canonical entries. *)

type resolved = {
  inst : Strategy.instance;
  sync_deco : Diva_mesh.Decomposition.t;
      (** the tree barriers/reductions run on *)
  tree : Access_tree.t option;
      (** unpacked handle for tree-specific observability hooks *)
}

val instantiate : Diva_simnet.Network.t -> Strategy.spec -> resolved
(** Build the strategy's protocol state. Draws from the network RNG
    exactly as the pre-registry code did, so seeded runs stay
    bit-identical. *)
