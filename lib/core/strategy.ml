(* First-class data-management strategy interface.

   Every contender — the paper's access tree and fixed home, plus the
   strategy-zoo additions (tree prefetching, adaptive replication with
   home migration, capacity-bounded caching) — implements the one
   STRATEGY signature below and is packed into an existential [instance].
   The [Dsm] façade talks only to instances; the [Registry] maps names to
   configured [spec]s so every tool (divasim, bench, chaos, serve,
   analyze) resolves strategies uniformly. *)

module Deco = Diva_mesh.Decomposition
module Embedding = Diva_mesh.Embedding

(* Victim selection under a finite per-node capacity: classic LRU, or
   least-frequently-used (total touches over the copy's lifetime). *)
type eviction = Lru | Freq

type tree_config = {
  arity : int;  (* 2, 4 or 16 *)
  leaf_size : int;  (* terminate the decomposition at submeshes <= this *)
  embedding : Embedding.kind;
  capacity : int option;  (* per-processor memory bound in bytes *)
  combining : bool;  (* read combining (on by default) *)
  remap_threshold : int option;  (* FOCS'97 remapping of hot tree nodes *)
  eviction : eviction;  (* victim policy when [capacity] is set *)
  prefetch : bool;  (* speculative copies pushed down the tree on reads *)
}

type adaptive_config = {
  replicate_after : int;
      (* grant a cached replica only after this many consecutive home
         misses by the same processor since its last invalidation *)
  migrate_after : int;
      (* re-examine the home placement every this many home transactions *)
}

type spec =
  | Access_tree of tree_config
  | Fixed_home
  | Adaptive of adaptive_config

let tree_defaults =
  {
    arity = 4;
    leaf_size = 1;
    embedding = Embedding.Regular;
    capacity = None;
    combining = true;
    remap_threshold = None;
    eviction = Lru;
    prefetch = false;
  }

let adaptive_defaults = { replicate_after = 2; migrate_after = 64 }

(* Display names: the paper's own names for the paper's strategies
   (golden traces and manifests depend on them), decorated suffixes for
   the zoo additions. *)
let tree_name (c : tree_config) =
  let base =
    Deco.strategy_name ~arity:(Deco.arity_of_int c.arity) ~leaf_size:c.leaf_size
  in
  let base = if c.prefetch then base ^ "+prefetch" else base in
  let base =
    match c.capacity with
    | None -> base
    | Some cap when cap mod 1024 = 0 -> Printf.sprintf "%s+cap%dk" base (cap / 1024)
    | Some cap -> Printf.sprintf "%s+cap%d" base cap
  in
  match c.eviction with Lru -> base | Freq -> base ^ "+freq-evict"

let spec_name = function
  | Fixed_home -> "fixed home"
  | Access_tree c -> tree_name c
  | Adaptive _ -> "adaptive-home"

(* The one signature every strategy implements: init (create), the
   read/write data hooks, lock/unlock, the sync-tree hook, copy-set and
   cost accounting, and the structural test hooks. Causal-id threading is
   free: protocol messages sent from [read]/[write]/[lock] handlers
   inherit the network's current transaction context. *)
module type STRATEGY = sig
  type t
  type config

  val id : string
  (** Short family identifier ("access-tree", "fixed-home", ...). *)

  val create : Diva_simnet.Network.t -> config -> t
  (** Init hook: build all protocol state. Must not install network
      handlers — the [Dsm] façade dispatches into {!handle}. *)

  val sync_deco : t -> Deco.t option
  (** Sync hook: the decomposition tree barriers/reductions should run on
      ([None] = the registry's default four-ary tree). *)

  val handle : t -> Diva_simnet.Network.msg -> bool
  (** Consume a protocol message; [false] if the payload is foreign. *)

  val cached : t -> Types.proc -> Types.var -> bool
  (** Local-read fast path: serve without communication? *)

  val sole_copy : t -> Types.proc -> Types.var -> bool
  (** Local-write fast path: does [p] hold the only copy, with no
      transaction in flight? *)

  val read : t -> Types.proc -> Types.var -> k:(Value.t -> unit) -> unit
  val write : t -> Types.proc -> Types.var -> Value.t -> k:(unit -> unit) -> unit
  val lock : t -> Types.proc -> Types.var -> k:(unit -> unit) -> unit
  val unlock : t -> Types.proc -> Types.var -> unit

  val ncopies : t -> Types.var -> int
  val copy_holder_places : t -> Types.var -> Types.proc list
  (** Mesh processors currently holding a copy, sorted, duplicates
      removed. *)

  val evictions : t -> int
  val remaps : t -> int
  (** Cost accounting beyond message traffic: capacity evictions and
      tree-node remappings / home migrations. *)

  val retire : t -> Types.var -> unit
  val validate : t -> Types.var -> (unit, string) result
end

type instance =
  | Instance : (module STRATEGY with type t = 'a) * 'a -> instance

(* Generic dispatchers over a packed instance. *)

let id (Instance ((module S), _)) = S.id
let sync_deco (Instance ((module S), s)) = S.sync_deco s
let handle (Instance ((module S), s)) msg = S.handle s msg
let cached (Instance ((module S), s)) p var = S.cached s p var
let sole_copy (Instance ((module S), s)) p var = S.sole_copy s p var
let read (Instance ((module S), s)) p var ~k = S.read s p var ~k
let write (Instance ((module S), s)) p var v ~k = S.write s p var v ~k
let lock (Instance ((module S), s)) p var ~k = S.lock s p var ~k
let unlock (Instance ((module S), s)) p var = S.unlock s p var
let ncopies (Instance ((module S), s)) var = S.ncopies s var
let copy_holder_places (Instance ((module S), s)) var = S.copy_holder_places s var
let evictions (Instance ((module S), s)) = S.evictions s
let remaps (Instance ((module S), s)) = S.remaps s
let retire (Instance ((module S), s)) var = S.retire s var
let validate (Instance ((module S), s)) var = S.validate s var
