(** DIVA: transparent access to global variables (shared data objects) from
    the nodes of a simulated mesh network.

    This is the library's main façade. An application creates one [Dsm.t]
    per simulation, declares global variables, and spawns one fiber per
    processor; fibers then call {!read}, {!write}, {!lock}, {!unlock} and
    {!barrier} exactly like the applications in the paper call the DIVA
    runtime. The data management strategy — any {!Registry} contender —
    is chosen at creation time and is completely transparent to the
    application code. *)

type strategy = Strategy.spec =
  | Access_tree of Strategy.tree_config
  | Fixed_home
  | Adaptive of Strategy.adaptive_config

val access_tree :
  ?leaf_size:int ->
  ?embedding:Diva_mesh.Embedding.kind ->
  ?capacity:int ->
  ?combining:bool ->
  ?remap_threshold:int ->
  ?eviction:Strategy.eviction ->
  ?prefetch:bool ->
  arity:int ->
  unit ->
  strategy
(** Convenience constructor with the paper's defaults (leaf size 1, regular
    embedding, unbounded memory, combining on, LRU eviction, no
    prefetching). *)

val adaptive : ?replicate_after:int -> ?migrate_after:int -> unit -> strategy
(** Frequency-adaptive replication with home migration; defaults from
    {!Strategy.adaptive_defaults}. *)

val strategy_name : strategy -> string
(** "2-ary", "4-16-ary", "fixed home", "4-ary+prefetch", ... *)

type t

val create :
  Diva_simnet.Network.t ->
  strategy:strategy ->
  ?read_hit_ops:int ->
  ?write_hit_ops:int ->
  unit ->
  t
(** Builds the data-management layer and installs its message dispatcher on
    every node of the network. [read_hit_ops] / [write_hit_ops] are the
    CPU cost (in integer-operation units) of a locally served access
    (default 10 each). *)

val net : t -> Diva_simnet.Network.t
val num_procs : t -> int

type 'a var

val create_var : t -> ?name:string -> owner:Types.proc -> size:int -> 'a -> 'a var
(** Declare a global variable of [size] bytes whose only copy initially
    resides at [owner]. May be called before the simulation starts or
    dynamically from a fiber (Barnes-Hut allocates tree cells on the fly).
    Creation itself is free, as in the paper's model. *)

val read : t -> Types.proc -> 'a var -> 'a
(** Read the variable from processor [p] (fiber context). A locally cached
    copy is served without communication; otherwise the strategy's read
    transaction runs and the fiber blocks until the value arrives. *)

val write : t -> Types.proc -> 'a var -> 'a -> unit
(** Write the variable from processor [p] (fiber context). *)

val lock : t -> Types.proc -> 'a var -> unit
val unlock : t -> Types.proc -> 'a var -> unit

val barrier : t -> Types.proc -> unit
(** Global barrier over all processors (fiber context). *)

type 'a reducer

val reducer : t -> combine:('a -> 'a -> 'a) -> size:int -> 'a reducer
val reduce : t -> Types.proc -> 'a reducer -> 'a -> 'a
(** All-reduce across processors; acts as a barrier (fiber context). *)

val peek : 'a var -> 'a
(** Current globally consistent value, outside the simulation (tests,
    result verification). *)

val var_name : 'a var -> string

(** {2 Counters} *)

val reads : t -> int
val writes : t -> int
val read_hits : t -> int
val write_hits : t -> int

val ncopies : t -> 'a var -> int
val evictions : t -> int
(** Capacity evictions (always 0 for the home strategies). *)

val remaps : t -> int
(** Tree-node remappings / home migrations (0 unless enabled). *)

val strategy_id : t -> string
(** The strategy family identifier ("access-tree", "fixed-home", ...). *)

(** {2 Testing hooks} *)

val copy_holder_places : t -> 'a var -> Types.proc list
(** Processors currently holding a copy (tree-node placements for the
    access tree strategy). *)

val access_tree_handle : t -> Access_tree.t option
val typed : 'a var -> Types.var
(** Underlying untyped variable record (tests only). *)

val retire_var : t -> 'a var -> unit
(** Release a variable that will never be accessed again; frees all
    protocol state (simulation-memory hygiene for dynamic allocators such
    as the Barnes-Hut tree builder). *)

val validate_var : t -> 'a var -> (unit, string) result
(** Structural invariant check of the strategy's state for this variable,
    meaningful while no transaction is in flight (post-barrier). *)
