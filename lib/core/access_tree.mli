(** The access tree strategy of Maggs et al. (FOCS'97), as implemented in
    the DIVA library and evaluated by the paper.

    Every global variable gets its own {e access tree} — a copy of the
    hierarchical mesh-decomposition tree — embedded randomly (but locality
    preservingly) into the mesh. A simple caching protocol runs on the
    tree: the tree nodes holding a copy of a variable always form a
    connected component; every other tree node keeps a {e data-tracking
    pointer} toward that component.

    - A read from processor [p] chases pointers from [p]'s leaf to the
      nearest copy holder [u]; the reply retraces the tree path, leaving a
      copy on every tree node it passes. Concurrent reads of the same
      variable {e combine}: a request reaching a tree node that is already
      waiting for a reply parks there and is served — via a multicast along
      tree branches — when the reply passes.
    - A write chases pointers to the nearest copy holder [u]; [u]
      invalidates the rest of the component by a multicast along component
      edges (each invalidated node's pointer is flipped toward the sender,
      keeping all pointer chains valid), then the fresh contents are
      installed on every tree node on the path from [u] to the writer.

    All protocol traffic travels along tree edges, each routed on the
    dimension-order mesh path between the placements of its endpoints. A
    message between two tree nodes placed on the same processor never
    enters the network.

    Writes to a variable are serialized against each other and against
    in-flight read transactions of that variable; read cache-hits are not
    serialized. Optionally, per-processor memory is bounded and copies are
    evicted in LRU fashion (only copies whose removal keeps the component
    connected are eligible). *)

type t

val create :
  Diva_simnet.Network.t ->
  Diva_mesh.Decomposition.t ->
  embedding:Diva_mesh.Embedding.kind ->
  ?capacity:int ->
  ?combining:bool ->
  ?remap_threshold:int ->
  ?eviction:Strategy.eviction ->
  ?prefetch:bool ->
  unit ->
  t
(** [create net decomposition ~embedding ()] builds the protocol state.
    [capacity] bounds each processor's memory module in bytes (default:
    unbounded). [combining] (default [true]) enables read combining;
    disabling it is an ablation in which a request arriving at a busy tree
    node is forwarded anyway instead of waiting for the in-flight reply.
    [remap_threshold] enables the {e remapping} of the original FOCS'97
    strategy, which the paper deliberately omits: once a tree node of a
    variable has served that many protocol messages, it is re-embedded onto
    a fresh random processor of its submesh (paying one control message to
    move its state); the [remapping] benchmark ablation tests the paper's
    claim that this overhead is not repaid in practice.
    [eviction] (default {!Strategy.Lru}) selects the victim policy when
    [capacity] is set. [prefetch] (default [false]) pushes speculative
    copies one level down the tree whenever a read reply installs a copy.
    The protocol does not install network handlers itself: the [Dsm]
    façade dispatches incoming messages to {!handle}. *)

val handle : t -> Diva_simnet.Network.msg -> bool
(** Process a protocol message; returns [false] if the payload does not
    belong to this protocol. *)

val place : t -> Types.var -> int -> Diva_mesh.Mesh.node
(** Mesh placement of a tree node of the variable's access tree. *)

val cached : t -> Types.proc -> Types.var -> bool
(** Does the processor's leaf currently hold a copy? (The fast path.) *)

val sole_copy : t -> Types.proc -> Types.var -> bool
(** Does the processor hold the {e only} copy? (Local-write fast path;
    still subject to transaction gating, see {!write}.) *)

val read : t -> Types.proc -> Types.var -> k:(Value.t -> unit) -> unit
(** Start a read transaction; [k] receives the value when it completes.
    Must be called from an event context (e.g. a fiber's suspend). *)

val write : t -> Types.proc -> Types.var -> Value.t -> k:(unit -> unit) -> unit
(** Start a write transaction; [k] runs at commit. *)

val lock : t -> Types.proc -> Types.var -> k:(unit -> unit) -> unit
(** Acquire the variable's lock: Raymond's token-passing mutual exclusion
    run on the variable's own access tree ("elegant algorithms that use
    access trees"). *)

val unlock : t -> Types.proc -> Types.var -> unit
(** Release the lock; must be called by the current holder. *)

val ncopies : t -> Types.var -> int
(** Current number of copies (for tests and reports). *)

val copy_holders : t -> Types.var -> int list
(** Tree nodes currently holding copies (for invariant checks in tests). *)

val deco : t -> Diva_mesh.Decomposition.t
(** The decomposition tree the protocol runs on. *)

val evictions : t -> int
(** Number of capacity evictions performed so far. *)

val remaps : t -> int
(** Number of tree-node remappings performed (0 unless enabled). *)

val retire : t -> Types.var -> unit
(** Drop all protocol state of a variable that will never be accessed
    again (a freed object, e.g. a Barnes-Hut cell of a discarded tree).
    Keeps the simulator's memory bounded on long runs. *)

val validate : t -> Types.var -> (unit, string) result
(** Check the protocol's structural invariants for a variable while no
    transaction is in flight: the copy holders form a connected subtree,
    the copy count matches, and every materialised tracking pointer leads
    to the component. For tests. *)

module Impl :
  Strategy.STRATEGY with type t = t and type config = Strategy.tree_config
(** The access tree packed as a first-class strategy. [Impl.create] builds
    its own decomposition from the config. *)
