(** The fixed home strategy: the standard CC-NUMA-like approach the paper
    compares against.

    Every global variable is assigned a {e home} processor chosen uniformly
    at random; the home keeps track of the variable's copies using the
    classic ownership scheme. At any time either one processor or the home
    ("main memory") owns the variable. A write by a non-owner asks the
    home to invalidate all copies and hands ownership to the writer, whose
    subsequent writes are then local. A read by a processor without a copy
    goes to the home, which first moves the data back from the owner if
    ownership is with a processor, then replies (ownership returns to the
    home). All requests for a variable serialize at its home — the
    bottleneck the paper measures.

    If every write is preceded by a read of the same object by the same
    processor — which holds for all three applications — this strategy
    behaves like a P-ary access tree. Locks are managed by a FIFO queue at
    the home. *)

type t

val create : Diva_simnet.Network.t -> unit -> t

val home : t -> Types.var -> Types.proc
(** The variable's randomly chosen home processor. *)

val handle : t -> Diva_simnet.Network.msg -> bool

val cached : t -> Types.proc -> Types.var -> bool
val sole_copy : t -> Types.proc -> Types.var -> bool
(** True when the processor owns the variable (local-write fast path). *)

val read : t -> Types.proc -> Types.var -> k:(Value.t -> unit) -> unit
val write : t -> Types.proc -> Types.var -> Value.t -> k:(unit -> unit) -> unit
val lock : t -> Types.proc -> Types.var -> k:(unit -> unit) -> unit
val unlock : t -> Types.proc -> Types.var -> unit

val ncopies : t -> Types.var -> int
val copy_holders : t -> Types.var -> Types.proc list
(** Processors currently holding valid copies (tests only). *)

val retire : t -> Types.var -> unit
(** Drop all protocol state of a variable that will never be accessed
    again. *)

val validate : t -> Types.var -> (unit, string) result
(** Check the protocol's structural invariants for a variable while no
    transaction is in flight: the home transaction queue is drained, every
    valid copy is tracked by the home, and the exclusive owner (if any)
    holds a valid copy. For tests. *)

module Impl : Strategy.STRATEGY with type t = t and type config = unit
(** Fixed home packed as a first-class strategy. *)
