module Embedding = Diva_mesh.Embedding
module Network = Diva_simnet.Network
module Machine = Diva_simnet.Machine
module Sim = Diva_simnet.Sim
module Prng = Diva_util.Prng
module Trace = Diva_obs.Trace
module Faults = Diva_faults.Faults

type strategy = Strategy.spec =
  | Access_tree of Strategy.tree_config
  | Fixed_home
  | Adaptive of Strategy.adaptive_config

let access_tree ?(leaf_size = 1) ?(embedding = Embedding.Regular) ?capacity
    ?(combining = true) ?remap_threshold ?(eviction = Strategy.Lru)
    ?(prefetch = false) ~arity () =
  Access_tree
    { Strategy.arity; leaf_size; embedding; capacity; combining;
      remap_threshold; eviction; prefetch }

let adaptive ?(replicate_after = Strategy.adaptive_defaults.Strategy.replicate_after)
    ?(migrate_after = Strategy.adaptive_defaults.Strategy.migrate_after) () =
  Adaptive { Strategy.replicate_after; migrate_after }

let strategy_name = Strategy.spec_name

type t = {
  network : Network.t;
  inst : Strategy.instance;
  tree : Access_tree.t option;  (* tree-specific observability hooks *)
  sync : Sync.t;
  read_hit_cost : float;
  write_hit_cost : float;
  mutable next_var_id : int;
  var_seed : int64;
  mutable n_reads : int;
  mutable n_writes : int;
  mutable n_read_hits : int;
  mutable n_write_hits : int;
}

type 'a var = {
  v : Types.var;
  inj : 'a -> Value.t;
  proj : Value.t -> 'a;
}

let create network ~strategy ?(read_hit_ops = 10) ?(write_hit_ops = 10) () =
  (* RNG draw order is part of the bit-identity contract with the golden
     traces: (1) split off the DSM stream, (2) instantiate the strategy
     (the access tree splits the network stream for its remap RNG),
     (3) split the sync stream, (4) draw the variable seed. *)
  let rng = Prng.split (Network.rng network) in
  let resolved = Registry.instantiate network strategy in
  let sync =
    Sync.create network resolved.Registry.sync_deco ~rng:(Prng.split rng) ()
  in
  let machine = Network.machine network in
  let t =
    {
      network;
      inst = resolved.Registry.inst;
      tree = resolved.Registry.tree;
      sync;
      read_hit_cost = float_of_int read_hit_ops *. machine.Machine.int_op_time;
      write_hit_cost = float_of_int write_hit_ops *. machine.Machine.int_op_time;
      next_var_id = 0;
      var_seed = Prng.bits64 rng;
      n_reads = 0;
      n_writes = 0;
      n_read_hits = 0;
      n_write_hits = 0;
    }
  in
  let dispatch =
    (* Unpack the existential once; the closure is installed on every
       node, so this match must not sit on the per-message path. The
       profiler is likewise looked up once — observability is installed
       before the DSM is created (Runner.install_obs), and attaching a
       profiler to a network with a live DSM is unsupported — so the
       unprofiled dispatch path stays exactly as it was. *)
    let (Strategy.Instance ((module S), s)) = t.inst in
    match Network.prof network with
    | None ->
        fun net msg ->
          if not (S.handle s msg || Sync.handle t.sync msg) then
            Network.mailbox_deliver net msg
    | Some p ->
        let module Prof = Diva_obs.Prof in
        fun net msg ->
          (* Refine the attribution for the strategy handler. *)
          Prof.set_sub p Prof.Strategy;
          let handled = S.handle s msg in
          Prof.set_sub p Prof.Protocol;
          if not (handled || Sync.handle t.sync msg) then
            Network.mailbox_deliver net msg
  in
  for node = 0 to Network.num_nodes network - 1 do
    Network.set_handler network node dispatch
  done;
  t

let net t = t.network
let num_procs t = Network.num_nodes t.network

let create_var t ?name ~owner ~size init =
  if owner < 0 || owner >= num_procs t then invalid_arg "Dsm.create_var: bad owner";
  if size < 0 then invalid_arg "Dsm.create_var: negative size";
  let id = t.next_var_id in
  t.next_var_id <- id + 1;
  let name = match name with Some n -> n | None -> Printf.sprintf "v%d" id in
  let inj, proj = Value.embed () in
  let v =
    {
      Types.id;
      name;
      data_size = size;
      owner;
      seed = Prng.hash2 t.var_seed id;
      value = inj init;
    }
  in
  let tr = Network.trace t.network in
  if Trace.enabled tr then
    Trace.emit tr
      (Trace.Var_decl
         { ts = Network.now t.network; var = id; var_name = name; size; owner });
  { v; inj; proj }

(* Blocking protocol operation with graceful degradation under faults: a
   watchdog fires after [patience] microseconds (doubling on every
   further firing, capped at 2^6) while the fiber stays blocked, and
   forces early retransmission of the issuing processor's stale pending
   envelopes. Re-driving the transport instead of re-issuing the
   transaction keeps exactly-once semantics — a re-issued write could
   commit twice; losses at other protocol nodes along the transaction are
   covered by their own retry timers. Without faults this is exactly
   [Network.suspend]. *)
let blocking_op t p register =
  match Network.faults t.network with
  | None -> Network.suspend register
  | Some f ->
      let net = t.network in
      let settled = ref false in
      let rec arm k =
        Sim.schedule (Network.sim net)
          (Network.now net
          +. (Faults.patience f *. Float.of_int (1 lsl min k 6)))
          (fun () ->
            if not !settled then begin
              Faults.count_dsm_reissue f;
              Network.nudge net ~src:p;
              arm (k + 1)
            end)
      in
      arm 0;
      Network.suspend (fun resume ->
          register (fun v ->
              settled := true;
              resume v))

(* One shared-memory operation span: [ts] is the issue time, [dur] the
   fiber's blocking latency (0 for hits). Emission happens after the
   operation completes, so the event never interleaves with the protocol. *)
let trace_op ?(size = -1) ?(txn = -1) ?(completed_by = -1) t p
    (v : Types.var option) op ~t0 ~hit =
  let tr = Network.trace t.network in
  if Trace.enabled tr then
    let var, var_name, size =
      match v with
      | Some v -> (v.Types.id, v.Types.name, v.Types.data_size)
      | None -> (-1, "", max 0 size)
    in
    Trace.emit tr
      (Trace.Dsm_access
         { ts = t0; dur = Network.now t.network -. t0; node = p; var;
           var_name; op; size; hit; txn; completed_by })

(* Open a causal transaction for a blocking operation: protocol messages
   sent while it is the current context inherit its id. The counter
   advances in untraced runs too (it feeds nothing in the simulation), so
   tracing cannot perturb a run. *)
let open_txn t =
  let txn = Network.fresh_txn t.network in
  Network.set_txn t.network txn;
  txn

let read t p var =
  t.n_reads <- t.n_reads + 1;
  let hit = Strategy.cached t.inst p var.v in
  if hit then begin
    t.n_read_hits <- t.n_read_hits + 1;
    Network.charge t.network p t.read_hit_cost;
    trace_op t p (Some var.v) Trace.Read ~t0:(Network.now t.network) ~hit:true;
    var.proj var.v.Types.value
  end
  else begin
    Network.flush_charge t.network p;
    let t0 = Network.now t.network in
    let txn = open_txn t in
    let packed =
      blocking_op t p (fun resume -> Strategy.read t.inst p var.v ~k:resume)
    in
    trace_op t p (Some var.v) Trace.Read ~t0 ~hit:false ~txn
      ~completed_by:(Network.cur_msg t.network);
    var.proj packed
  end

let write t p var x =
  t.n_writes <- t.n_writes + 1;
  let value = var.inj x in
  let sole = Strategy.sole_copy t.inst p var.v in
  if sole then begin
    t.n_write_hits <- t.n_write_hits + 1;
    Network.charge t.network p t.write_hit_cost;
    trace_op t p (Some var.v) Trace.Write ~t0:(Network.now t.network) ~hit:true;
    var.v.Types.value <- value
  end
  else begin
    Network.flush_charge t.network p;
    let t0 = Network.now t.network in
    let txn = open_txn t in
    blocking_op t p (fun resume -> Strategy.write t.inst p var.v value ~k:resume);
    trace_op t p (Some var.v) Trace.Write ~t0 ~hit:false ~txn
      ~completed_by:(Network.cur_msg t.network)
  end

let lock t p var =
  Network.flush_charge t.network p;
  let t0 = Network.now t.network in
  let txn = open_txn t in
  blocking_op t p (fun resume -> Strategy.lock t.inst p var.v ~k:resume);
  trace_op t p (Some var.v) Trace.Lock ~t0 ~hit:false ~txn
    ~completed_by:(Network.cur_msg t.network)

let unlock t p var =
  Network.charge t.network p t.write_hit_cost;
  (* Non-blocking, but the release messages it triggers (token hand-off,
     next-grant) deserve their own causal id. *)
  let txn = open_txn t in
  trace_op t p (Some var.v) Trace.Unlock ~t0:(Network.now t.network) ~hit:true
    ~txn;
  Strategy.unlock t.inst p var.v

let barrier t p =
  Network.flush_charge t.network p;
  let t0 = Network.now t.network in
  let txn = open_txn t in
  blocking_op t p (fun resume -> Sync.barrier t.sync p ~k:resume);
  trace_op t p None Trace.Barrier ~t0 ~hit:false ~txn
    ~completed_by:(Network.cur_msg t.network)

type 'a reducer = { red : 'a Sync.reducer; red_size : int }

let reducer t ~combine ~size = { red = Sync.reducer t.sync ~combine ~size; red_size = size }

let reduce t p r x =
  Network.flush_charge t.network p;
  let t0 = Network.now t.network in
  let txn = open_txn t in
  let y = blocking_op t p (fun resume -> Sync.reduce t.sync r.red p x ~k:resume) in
  trace_op ~size:r.red_size t p None Trace.Reduce ~t0 ~hit:false ~txn
    ~completed_by:(Network.cur_msg t.network);
  y

let peek var = var.proj var.v.Types.value
let var_name var = var.v.Types.name
let reads t = t.n_reads
let writes t = t.n_writes
let read_hits t = t.n_read_hits
let write_hits t = t.n_write_hits

let ncopies t var = Strategy.ncopies t.inst var.v
let evictions t = Strategy.evictions t.inst
let remaps t = Strategy.remaps t.inst
let copy_holder_places t var = Strategy.copy_holder_places t.inst var.v
let strategy_id t = Strategy.id t.inst
let access_tree_handle t = t.tree
let typed var = var.v
let retire_var t var = Strategy.retire t.inst var.v
let validate_var t var = Strategy.validate t.inst var.v
