(* Tests for the discrete-event simulator and the network model. *)

module Sim = Diva_simnet.Sim
module Machine = Diva_simnet.Machine
module Network = Diva_simnet.Network
module Link_stats = Diva_simnet.Link_stats
module Mesh = Diva_mesh.Mesh

type Network.payload += Ping of int

let test_sim_event_order () =
  let s = Sim.create () in
  let log = ref [] in
  Sim.schedule s 5.0 (fun () -> log := 5 :: !log);
  Sim.schedule s 1.0 (fun () -> log := 1 :: !log);
  Sim.schedule s 3.0 (fun () -> log := 3 :: !log);
  Sim.run s;
  Alcotest.(check (list int)) "time order" [ 1; 3; 5 ] (List.rev !log)

let test_sim_fifo_same_time () =
  let s = Sim.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Sim.schedule s 1.0 (fun () -> log := i :: !log)
  done;
  Sim.run s;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_sim_nested_schedule () =
  let s = Sim.create () in
  let log = ref [] in
  Sim.schedule s 1.0 (fun () ->
      log := `A :: !log;
      Sim.schedule s 2.0 (fun () -> log := `B :: !log));
  Sim.run s;
  Alcotest.(check int) "two events" 2 (List.length !log);
  Alcotest.(check bool) "order" true (List.rev !log = [ `A; `B ])

let test_sim_rejects_past () =
  let s = Sim.create () in
  Sim.schedule s 5.0 (fun () ->
      Alcotest.check_raises "past" (Invalid_argument
        "Sim.schedule: 1.000 is in the past (now = 5.000)")
        (fun () -> Sim.schedule s 1.0 (fun () -> ())));
  Sim.run s

let test_delivery_and_congestion () =
  let net = Network.create ~rows:1 ~cols:3 () in
  let got = ref [] in
  Network.set_handler net 2 (fun _ msg ->
      got := (msg.Network.m_src, msg.Network.m_size) :: !got);
  Network.send net ~src:0 ~dst:2 ~size:100 (Ping 1);
  Network.run net;
  Alcotest.(check (list (pair int int))) "delivered" [ (0, 100) ] !got;
  (* The message crossed two links: congestion 1 message / 100 bytes. *)
  let st = Network.stats net in
  Alcotest.(check int) "congestion msgs" 1 (Link_stats.congestion_msgs st);
  Alcotest.(check int) "congestion bytes" 100 (Link_stats.congestion_bytes st);
  Alcotest.(check int) "total msgs = hops" 2 (Link_stats.total_msgs st);
  Alcotest.(check int) "total bytes" 200 (Link_stats.total_bytes st);
  Alcotest.(check int) "one startup" 1 (Network.startups net)

let test_local_send_free () =
  let net = Network.create ~rows:2 ~cols:2 () in
  let got = ref 0 in
  Network.set_handler net 1 (fun _ _ -> incr got);
  Network.send net ~src:1 ~dst:1 ~size:1000 (Ping 2);
  Network.run net;
  Alcotest.(check int) "delivered locally" 1 !got;
  Alcotest.(check int) "no congestion" 0 (Link_stats.congestion_msgs (Network.stats net));
  Alcotest.(check int) "no startup" 0 (Network.startups net)

let test_timing_uncontended () =
  (* latency = send_overhead + (h-1)*hop_latency + size/bw, plus the
     receiver overhead before the handler runs. *)
  let machine = Machine.gcel in
  let net = Network.create ~machine ~rows:1 ~cols:5 () in
  let at = ref 0.0 in
  Network.set_handler net 4 (fun n _ -> at := Network.now n);
  Network.send net ~src:0 ~dst:4 ~size:1000 (Ping 3);
  Network.run net;
  let expected =
    machine.Machine.send_overhead
    +. (3.0 *. machine.Machine.hop_latency)
    +. Machine.transfer_time machine 1000
    +. machine.Machine.recv_overhead
  in
  Alcotest.(check (float 1e-6)) "uncontended latency" expected !at

let test_link_contention_serializes () =
  (* Two messages over the same link must be served one after another. *)
  let machine = Machine.gcel in
  let net = Network.create ~machine ~rows:1 ~cols:2 () in
  let times = ref [] in
  Network.set_handler net 1 (fun n _ -> times := Network.now n :: !times);
  (* Two sends from node 0 at t=0: the second also waits for the sender's
     CPU (startup) and then for the link. *)
  Network.send net ~src:0 ~dst:1 ~size:10000 (Ping 1);
  Network.send net ~src:0 ~dst:1 ~size:10000 (Ping 2);
  Network.run net;
  match List.rev !times with
  | [ t1; t2 ] ->
      let transfer = Machine.transfer_time machine 10000 in
      Alcotest.(check bool) "second delayed by >= transfer" true
        (t2 -. t1 >= transfer -. 1e-6)
  | _ -> Alcotest.fail "expected two deliveries"

let test_fiber_compute_and_time () =
  let net = Network.create ~rows:1 ~cols:1 () in
  let finished = ref 0.0 in
  Network.spawn net 0 (fun () ->
      Network.compute net 0 100.0;
      Network.compute net 0 50.0;
      finished := Network.now net);
  Network.run net;
  Alcotest.(check (float 1e-9)) "computes add up" 150.0 !finished;
  Alcotest.(check (float 1e-9)) "accounted" 150.0 (Network.compute_time net 0)

let test_fiber_charge_flush () =
  let net = Network.create ~rows:1 ~cols:1 () in
  let finished = ref 0.0 in
  Network.spawn net 0 (fun () ->
      Network.charge net 0 30.0;
      Network.charge net 0 20.0;
      Network.flush_charge net 0;
      finished := Network.now net);
  Network.run net;
  Alcotest.(check (float 1e-9)) "charges folded in" 50.0 !finished;
  Alcotest.(check (float 1e-9)) "accounted" 50.0 (Network.compute_time net 0)

let test_fiber_recv_blocks () =
  let net = Network.create ~rows:1 ~cols:2 () in
  let got = ref (-1) in
  Network.spawn net 1 (fun () ->
      let msg = Network.recv net 1 () in
      (match msg.Network.m_payload with Ping i -> got := i | _ -> ());
      ());
  Network.spawn net 0 (fun () ->
      Network.compute net 0 500.0;
      Network.send net ~src:0 ~dst:1 ~size:8 (Ping 77));
  Network.run net;
  Alcotest.(check int) "received" 77 !got

let test_fiber_recv_filter () =
  let net = Network.create ~rows:1 ~cols:2 () in
  let order = ref [] in
  Network.spawn net 1 (fun () ->
      let m1 =
        Network.recv net 1
          ~where:(fun m -> match m.Network.m_payload with Ping i -> i = 2 | _ -> false)
          ()
      in
      (match m1.Network.m_payload with Ping i -> order := i :: !order | _ -> ());
      let m2 = Network.recv net 1 () in
      match m2.Network.m_payload with Ping i -> order := i :: !order | _ -> ());
  Network.spawn net 0 (fun () ->
      Network.send net ~src:0 ~dst:1 ~size:8 (Ping 1);
      Network.send net ~src:0 ~dst:1 ~size:8 (Ping 2));
  Network.run net;
  Alcotest.(check (list int)) "filtered then oldest" [ 2; 1 ] (List.rev !order)

let test_deadlock_detection () =
  let net = Network.create ~rows:1 ~cols:1 () in
  Network.spawn net 0 (fun () -> ignore (Network.recv net 0 ()));
  Alcotest.check_raises "deadlock"
    (Failure "Network.run: deadlock — 1 fiber(s) still blocked at t = 0.0 us")
    (fun () -> Network.run net)

let test_determinism () =
  (* Two identical runs produce identical statistics and end times. *)
  let run () =
    let net = Network.create ~seed:123 ~rows:4 ~cols:4 () in
    for p = 0 to 15 do
      Network.spawn net p (fun () ->
          for i = 1 to 5 do
            Network.send net ~src:p ~dst:((p + i) mod 16) ~size:(64 * i) (Ping i);
            Network.compute net p 10.0
          done)
    done;
    Network.run net;
    ( Network.now net,
      Link_stats.congestion_bytes (Network.stats net),
      Link_stats.total_bytes (Network.stats net),
      Network.startups net )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

(* A large mailbox burst must stay linear: the inbox is a queue with O(1)
   append (the old [list @ [msg]] representation was quadratic — 50k
   messages took minutes). FIFO order is asserted on every message; the
   generous wall-clock bound only guards against a quadratic regression. *)
let test_mailbox_burst_linear () =
  let n = 50_000 in
  let net = Network.create ~rows:1 ~cols:1 () in
  let t0 = Sys.time () in
  for i = 0 to n - 1 do
    Network.mailbox_deliver net
      { Network.m_src = 0; m_dst = 0; m_size = 8; m_tag = -1; m_payload = Ping i }
  done;
  let ok = ref 0 in
  Network.spawn net 0 (fun () ->
      for i = 0 to n - 1 do
        match (Network.recv net 0 ()).Network.m_payload with
        | Ping j when j = i -> incr ok
        | _ -> ()
      done);
  Network.run net;
  Alcotest.(check int) "all messages in FIFO order" n !ok;
  Alcotest.(check bool) "burst stays linear (< 5 s cpu)" true
    (Sys.time () -. t0 < 5.0)

(* Closure-free scheduling: Sim.schedule_call carries (f, x) instead of a
   fresh closure, and must interleave with ordinary closures in exact
   (time, insertion) order. *)
let test_sim_schedule_call () =
  let s = Sim.create () in
  let log = ref [] in
  let push x = log := x :: !log in
  Sim.schedule_call s 2.0 push 2;
  Sim.schedule s 1.0 (fun () -> push 1);
  Sim.schedule_call s 1.0 push 10;
  Sim.schedule s 1.0 (fun () ->
      (* now-relative variant from inside an event *)
      Sim.schedule_call_now s push 11);
  Sim.run s;
  Alcotest.(check (list int)) "call/closure interleaving" [ 1; 10; 11; 2 ]
    (List.rev !log);
  Alcotest.(check int) "executed" 5 (Sim.events_executed s);
  Alcotest.check_raises "past call"
    (Invalid_argument "Sim.schedule: 0.500 is in the past (now = 2.000)")
    (fun () -> Sim.schedule_call s 0.5 push 99)

(* Selective receive by tag: per-tag FIFO, O(1) amortized, coexisting with
   untagged traffic and the predicate filter on the same mailbox. *)
let test_recv_by_tag () =
  let net = Network.create ~rows:1 ~cols:2 () in
  let got = ref [] in
  Network.spawn net 1 (fun () ->
      (* Tag 7 first although tag 3's messages arrived earlier. *)
      let a = Network.recv net 1 ~tag:7 () in
      let b = Network.recv net 1 ~tag:3 () in
      let c = Network.recv net 1 ~tag:3 () in
      (* Untagged pops arrival order among the remaining messages. *)
      let d = Network.recv net 1 () in
      List.iter
        (fun m ->
          match m.Network.m_payload with
          | Ping i -> got := i :: !got
          | _ -> ())
        [ a; b; c; d ]);
  Network.spawn net 0 (fun () ->
      Network.send net ~src:0 ~dst:1 ~size:8 ~tag:3 (Ping 30);
      Network.send net ~src:0 ~dst:1 ~size:8 ~tag:3 (Ping 31);
      Network.send net ~src:0 ~dst:1 ~size:8 ~tag:7 (Ping 70);
      Network.send net ~src:0 ~dst:1 ~size:8 (Ping 99));
  Network.run net;
  Alcotest.(check (list int)) "tag routing" [ 70; 30; 31; 99 ]
    (List.rev !got)

let test_recv_tag_blocks_until_match () =
  let net = Network.create ~rows:1 ~cols:2 () in
  let order = ref [] in
  Network.spawn net 1 (fun () ->
      let m = Network.recv net 1 ~tag:5 () in
      (match m.Network.m_payload with
      | Ping i -> order := ("tagged", i) :: !order
      | _ -> ());
      let m2 = Network.recv net 1 () in
      match m2.Network.m_payload with
      | Ping i -> order := ("untagged", i) :: !order
      | _ -> ());
  Network.spawn net 0 (fun () ->
      (* The untagged message arrives first; the tag-5 waiter must skip it
         and wake only on the tagged one. *)
      Network.send net ~src:0 ~dst:1 ~size:8 (Ping 1);
      Network.send net ~src:0 ~dst:1 ~size:8 ~tag:5 (Ping 2));
  Network.run net;
  Alcotest.(check (list (pair string int)))
    "waiter wakes on its tag"
    [ ("tagged", 2); ("untagged", 1) ]
    (List.rev !order)

let test_recv_tag_where_exclusive () =
  let net = Network.create ~rows:1 ~cols:1 () in
  Network.spawn net 0 (fun () ->
      match
        Network.recv net 0 ~tag:1 ~where:(fun _ -> true) ()
      with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ());
  Network.run net

(* A tagged burst exercises the per-tag queues' lazy deletion: messages
   consumed by tag must also vanish from the arrival queue (and vice
   versa) without quadratic rescans. *)
let test_recv_tag_burst_linear () =
  let n = 30_000 in
  let net = Network.create ~rows:1 ~cols:1 () in
  let t0 = Sys.time () in
  for i = 0 to n - 1 do
    Network.mailbox_deliver net
      { Network.m_src = 0; m_dst = 0; m_size = 8; m_tag = i mod 4;
        m_payload = Ping i }
  done;
  let ok = ref 0 in
  Network.spawn net 0 (fun () ->
      (* Drain tag 2 completely, then everything else untagged. *)
      for k = 0 to (n / 4) - 1 do
        match (Network.recv net 0 ~tag:2 ()).Network.m_payload with
        | Ping j when j = (4 * k) + 2 -> incr ok
        | _ -> ()
      done;
      for _ = 1 to n - (n / 4) do
        match (Network.recv net 0 ()).Network.m_payload with
        | Ping j when j mod 4 <> 2 -> incr ok
        | _ -> ()
      done);
  Network.run net;
  Alcotest.(check int) "tagged + untagged drain" n !ok;
  Alcotest.(check bool) "burst stays linear (< 5 s cpu)" true
    (Sys.time () -. t0 < 5.0)

let test_snapshot_diff () =
  let net = Network.create ~rows:1 ~cols:2 () in
  Network.send net ~src:0 ~dst:1 ~size:50 (Ping 1);
  Network.run net;
  let snap = Link_stats.snapshot (Network.stats net) in
  Network.send net ~src:0 ~dst:1 ~size:70 (Ping 2);
  Network.run net;
  Alcotest.(check int) "since snapshot bytes" 70
    (Link_stats.congestion_bytes ~since:snap (Network.stats net));
  Alcotest.(check int) "since snapshot msgs" 1
    (Link_stats.congestion_msgs ~since:snap (Network.stats net));
  Alcotest.(check int) "full history" 120
    (Link_stats.congestion_bytes (Network.stats net))

let suite =
  [
    Alcotest.test_case "event order" `Quick test_sim_event_order;
    Alcotest.test_case "fifo same time" `Quick test_sim_fifo_same_time;
    Alcotest.test_case "nested schedule" `Quick test_sim_nested_schedule;
    Alcotest.test_case "rejects past" `Quick test_sim_rejects_past;
    Alcotest.test_case "delivery and congestion" `Quick test_delivery_and_congestion;
    Alcotest.test_case "local send free" `Quick test_local_send_free;
    Alcotest.test_case "uncontended timing" `Quick test_timing_uncontended;
    Alcotest.test_case "link contention" `Quick test_link_contention_serializes;
    Alcotest.test_case "fiber compute" `Quick test_fiber_compute_and_time;
    Alcotest.test_case "fiber charge/flush" `Quick test_fiber_charge_flush;
    Alcotest.test_case "fiber recv blocks" `Quick test_fiber_recv_blocks;
    Alcotest.test_case "fiber recv filter" `Quick test_fiber_recv_filter;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "mailbox burst linear" `Quick test_mailbox_burst_linear;
    Alcotest.test_case "schedule_call" `Quick test_sim_schedule_call;
    Alcotest.test_case "recv by tag" `Quick test_recv_by_tag;
    Alcotest.test_case "recv tag waiter" `Quick test_recv_tag_blocks_until_match;
    Alcotest.test_case "recv tag+where rejected" `Quick
      test_recv_tag_where_exclusive;
    Alcotest.test_case "recv tag burst linear" `Quick test_recv_tag_burst_linear;
    Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
  ]
