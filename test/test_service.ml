(* Open-loop service scenario: arrival processes, SLO order statistics,
   phase schedules, engine determinism and queue growth past saturation,
   saturation sweeps, and composition with faults and event traces. *)

module Service = Diva_service
module Arrival = Service.Arrival
module Slo = Service.Slo
module Spec = Service.Spec
module Engine = Service.Engine
module Sweep = Service.Sweep
module Runner = Diva_harness.Runner
module Trace = Diva_obs.Trace
module Dsm = Diva_core.Dsm

let dims = [| 4; 4 |]
let strategy_4ary = Dsm.access_tree ~arity:4 ()

(* A small spec near (but under) the 4x4 mesh's knee: fast to run, yet
   every queue sees real traffic. *)
let small_spec ?(rate = 1_000.0) ?(phases = [ Spec.phase 1.0 ])
    ?(arrival = Arrival.Poisson) ?(seed = 7) () =
  Spec.make ~keys:128 ~value_size:64 ~clients:5_000 ~rate
    ~horizon_us:200_000.0 ~arrival ~read_ratio:0.9 ~phases ~seed ()

(* ------------------------------------------------------------------ *)
(* Arrival processes                                                    *)
(* ------------------------------------------------------------------ *)

let draw_n g n = Array.init n (fun _ -> Arrival.next g)

let test_arrival_monotone () =
  List.iter
    (fun shape ->
      let g = Arrival.make ~seed:3 ~rate:5_000.0 shape in
      let ts = draw_n g 2_000 in
      Array.iteri
        (fun i t ->
          if i > 0 && t < ts.(i - 1) then
            Alcotest.failf "%s: arrival %d goes backwards (%f < %f)"
              (Arrival.shape_name shape) i t
              ts.(i - 1);
          if not (Float.is_finite t && t > 0.0) then
            Alcotest.failf "%s: arrival %d not positive finite"
              (Arrival.shape_name shape) i)
        ts)
    [ Arrival.Poisson;
      Arrival.Bursty { mult = 8.0; mean_on_us = 500.0; mean_off_us = 2_000.0 };
      Arrival.Diurnal { trough = 0.2; period_us = 10_000.0 } ]

let test_arrival_determinism () =
  List.iter
    (fun shape ->
      let a = draw_n (Arrival.make ~seed:11 ~rate:2_000.0 shape) 500 in
      let b = draw_n (Arrival.make ~seed:11 ~rate:2_000.0 shape) 500 in
      Alcotest.(check bool)
        (Arrival.shape_name shape ^ " deterministic")
        true (a = b);
      let c = draw_n (Arrival.make ~seed:12 ~rate:2_000.0 shape) 500 in
      Alcotest.(check bool)
        (Arrival.shape_name shape ^ " seed-sensitive")
        false (a = c))
    [ Arrival.Poisson;
      Arrival.Bursty { mult = 4.0; mean_on_us = 300.0; mean_off_us = 900.0 };
      Arrival.Diurnal { trough = 0.5; period_us = 5_000.0 } ]

(* Long-run mean rate of each process must track the configured rate:
   exactly for Poisson, and for the modulated shapes the time-averaged
   intensity (computable in closed form) within sampling error. *)
let test_arrival_mean_rate () =
  let rate = 10_000.0 in
  let mean_of shape n =
    let g = Arrival.make ~seed:5 ~rate shape in
    let ts = draw_n g n in
    float_of_int n /. ts.(n - 1) *. 1e6
  in
  let check_close name expected got =
    let rel = Float.abs (got -. expected) /. expected in
    if rel > 0.10 then
      Alcotest.failf "%s: mean rate %.0f/s, expected ~%.0f/s" name got expected
  in
  check_close "poisson" rate (mean_of Arrival.Poisson 20_000);
  (* Two-state modulated: fraction of time in burst = on/(on+off). *)
  let mult = 8.0 and on = 500.0 and off = 1_500.0 in
  let avg = rate *. ((on *. mult) +. off) /. (on +. off) in
  check_close "bursty" avg
    (mean_of (Arrival.Bursty { mult; mean_on_us = on; mean_off_us = off })
       40_000);
  (* Raised cosine between trough and 1 averages (1 + trough) / 2. *)
  let trough = 0.3 in
  check_close "diurnal"
    (rate *. (1.0 +. trough) /. 2.0)
    (mean_of (Arrival.Diurnal { trough; period_us = 4_000.0 }) 40_000)

let test_arrival_validate () =
  let bad rate shape =
    match Arrival.validate ~rate shape with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "expected validation error"
  in
  bad 0.0 Arrival.Poisson;
  bad (-1.0) Arrival.Poisson;
  bad 1_000.0 (Arrival.Bursty { mult = 0.5; mean_on_us = 1.0; mean_off_us = 1.0 });
  bad 1_000.0 (Arrival.Bursty { mult = 2.0; mean_on_us = 0.0; mean_off_us = 1.0 });
  bad 1_000.0 (Arrival.Diurnal { trough = 1.5; period_us = 100.0 });
  bad 1_000.0 (Arrival.Diurnal { trough = 0.5; period_us = 0.0 });
  Alcotest.(check bool)
    "good shapes validate" true
    (Arrival.validate ~rate:1.0 Arrival.Poisson = Ok ())

(* ------------------------------------------------------------------ *)
(* SLO order statistics                                                 *)
(* ------------------------------------------------------------------ *)

let test_slo_exact () =
  (* 1..100 shuffled: nearest-rank percentiles are exactly the ranks. *)
  let a = Array.init 100 (fun i -> float_of_int (((i * 37) mod 100) + 1)) in
  let s = Slo.of_samples a in
  Alcotest.(check int) "n" 100 s.Slo.n;
  Alcotest.(check (float 1e-9)) "p50" 50.0 s.Slo.p50_us;
  Alcotest.(check (float 1e-9)) "p99" 99.0 s.Slo.p99_us;
  Alcotest.(check (float 1e-9)) "max" 100.0 s.Slo.max_us;
  Alcotest.(check (float 1e-9)) "mean" 50.5 s.Slo.mean_us;
  Alcotest.(check bool) "input untouched" true (a.(0) = 1.0 && a.(99) = 64.0)

let test_slo_p999_guard () =
  let samples n = Array.init n (fun i -> float_of_int (i + 1)) in
  let under = Slo.of_samples (samples (Slo.min_p999_samples - 1)) in
  Alcotest.(check bool) "999 samples: guarded" true (under.Slo.p999_us = None);
  let at = Slo.of_samples (samples Slo.min_p999_samples) in
  (match at.Slo.p999_us with
  | Some v -> Alcotest.(check (float 1e-9)) "1000 samples: exact rank" 999.0 v
  | None -> Alcotest.fail "1000 samples must report p999");
  (* The omitted field never reaches machine-readable output as null. *)
  Alcotest.(check bool)
    "guarded field omitted" true
    (List.assoc_opt "lat_p999_us" (Slo.to_fields under) = None);
  Alcotest.(check bool)
    "present when unguarded" true
    (List.assoc_opt "lat_p999_us" (Slo.to_fields at) <> None);
  let empty = Slo.of_samples [||] in
  Alcotest.(check int) "empty n" 0 empty.Slo.n;
  Alcotest.(check (float 1e-9)) "empty p50" 0.0 empty.Slo.p50_us

(* ------------------------------------------------------------------ *)
(* Phase schedule                                                       *)
(* ------------------------------------------------------------------ *)

let test_spec_boundaries () =
  let spec =
    small_spec
      ~phases:[ Spec.phase 2.0; Spec.phase 1.0; Spec.phase 1.0 ]
      ()
  in
  let b = Spec.boundaries spec in
  Alcotest.(check int) "one boundary per phase" 3 (Array.length b);
  Alcotest.(check (float 1e-6)) "fracs normalized" 100_000.0 b.(0);
  Alcotest.(check (float 1e-6)) "second" 150_000.0 b.(1);
  Alcotest.(check (float 1e-9)) "last is exactly the horizon" 200_000.0 b.(2);
  Alcotest.(check int) "t=0 in phase 0" 0 (Spec.index_at b 0.0);
  Alcotest.(check int) "mid in phase 1" 1 (Spec.index_at b 120_000.0);
  Alcotest.(check int) "boundary starts next phase" 1 (Spec.index_at b 100_000.0);
  Alcotest.(check int) "horizon residue in last phase" 2
    (Spec.index_at b 200_000.0);
  Alcotest.(check int) "past horizon clamps" 2 (Spec.index_at b 1e9)

let test_spec_validate () =
  let bad s =
    match Spec.validate s with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "expected spec validation error"
  in
  bad (small_spec ~phases:[] ());
  bad (small_spec ~phases:[ Spec.phase 0.0 ] ());
  bad (small_spec ~phases:[ Spec.phase ~shift:(-1) 1.0 ] ());
  bad { (small_spec ()) with Spec.read_ratio = 1.5 };
  bad { (small_spec ()) with Spec.keys = 0 };
  bad { (small_spec ()) with Spec.horizon_us = 0.0 };
  bad { (small_spec ()) with Spec.rate = -5.0 };
  bad
    (small_spec
       ~phases:
         [ Spec.phase
             ~popularity:
               (Diva_workload.Spec.Hot_cold
                  { hot_fraction = 2.0; hot_weight = 0.9 })
             1.0 ]
       ());
  Alcotest.(check bool)
    "default spec validates" true
    (Spec.validate (small_spec ()) = Ok ())

let test_scenario_phases () =
  let steady = Spec.scenario_phases Spec.Steady ~keys:128 ~procs:16 ~zipf:0.9 in
  Alcotest.(check int) "steady: one phase" 1 (List.length steady);
  let flash =
    Spec.scenario_phases Spec.Flash_crowd ~keys:128 ~procs:16 ~zipf:0.9
  in
  Alcotest.(check int) "flash crowd: three phases" 3 (List.length flash);
  let migrate =
    Spec.scenario_phases Spec.Hot_migrate ~keys:128 ~procs:16 ~zipf:0.9
  in
  Alcotest.(check int) "migrate: four phases" 4 (List.length migrate);
  Alcotest.(check (list int)) "migrate shifts walk the mesh" [ 0; 4; 8; 12 ]
    (List.map (fun p -> p.Spec.ph_shift) migrate);
  List.iter
    (fun sc ->
      let spec =
        small_spec
          ~phases:(Spec.scenario_phases sc ~keys:128 ~procs:16 ~zipf:0.9)
          ()
      in
      match Spec.validate spec with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "scenario %s invalid: %s" (Spec.scenario_name sc) e)
    [ Spec.Steady; Spec.Flash_crowd; Spec.Hot_migrate ]

(* A flash crowd must be visible in the DSM access stream: during the hot
   phase the top handful of keys take the bulk of the accesses, while the
   steady phase stays spread out. Key identity comes from the traced
   variable names the engine assigns ("k<key>"). *)
let test_flash_crowd_concentration () =
  let hot =
    Diva_workload.Spec.Hot_cold { hot_fraction = 0.03; hot_weight = 0.95 }
  in
  let spec =
    small_spec ~rate:800.0
      ~phases:
        [ Spec.phase ~popularity:(Diva_workload.Spec.Zipf 0.2) 0.5;
          Spec.phase ~popularity:hot 0.5 ]
      ()
  in
  let tr = Trace.create () in
  let _ =
    Engine.run
      ~obs:{ Runner.null_obs with Runner.obs_trace = tr }
      ~dims ~strategy:strategy_4ary spec
  in
  let bounds = Spec.boundaries spec in
  let tally = [| Hashtbl.create 64; Hashtbl.create 64 |] in
  List.iter
    (fun e ->
      match e with
      | Trace.Dsm_access { ts; var_name; var; _ }
        when var >= 0 && String.length var_name > 1 && var_name.[0] = 'k' ->
          let key = int_of_string (String.sub var_name 1 (String.length var_name - 1)) in
          let tbl = tally.(Spec.index_at bounds ts) in
          Hashtbl.replace tbl key
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      | _ -> ())
    (Trace.events tr);
  let top_share tbl k =
    let counts = Hashtbl.fold (fun _ c acc -> c :: acc) tbl [] in
    let sorted = List.sort (fun a b -> compare b a) counts in
    let total = List.fold_left ( + ) 0 counts in
    let rec take n acc = function
      | c :: rest when n > 0 -> take (n - 1) (acc + c) rest
      | _ -> acc
    in
    float_of_int (take k 0 sorted) /. float_of_int (max 1 total)
  in
  (* 3% of 128 keys = a 4-key hotset carrying 95% of the draws. *)
  let steady_share = top_share tally.(0) 4
  and hot_share = top_share tally.(1) 4 in
  if hot_share < 0.75 then
    Alcotest.failf "hot phase: top-4 keys carry only %.0f%%"
      (100.0 *. hot_share);
  if steady_share > 0.5 then
    Alcotest.failf "steady phase: top-4 keys carry %.0f%% (too concentrated)"
      (100.0 *. steady_share)

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)
(* ------------------------------------------------------------------ *)

let test_engine_determinism () =
  List.iter
    (fun (name, strategy) ->
      let spec = small_spec ~arrival:(Arrival.Diurnal { trough = 0.3; period_us = 50_000.0 }) () in
      let a = Engine.run ~dims ~strategy spec in
      let b = Engine.run ~dims ~strategy spec in
      Alcotest.(check bool) (name ^ ": bit-identical re-run") true (a = b))
    [ ("fixed-home", Dsm.Fixed_home); ("4-ary", strategy_4ary) ]

let test_engine_accounting () =
  let r = Engine.run ~dims ~strategy:strategy_4ary (small_spec ()) in
  Alcotest.(check bool) "arrivals positive" true (r.Engine.arrivals > 0);
  Alcotest.(check int) "every request eventually served" r.Engine.arrivals
    r.Engine.completions;
  Alcotest.(check int) "one latency sample per request" r.Engine.completions
    r.Engine.slo.Slo.n;
  Alcotest.(check bool) "in-horizon bounded by completions" true
    (r.Engine.in_horizon <= r.Engine.completions);
  Alcotest.(check bool) "makespan reaches past last arrival" true
    (r.Engine.makespan_us > 0.0);
  Alcotest.(check int) "one hwm per node" 16 (Array.length r.Engine.queue_hwm)

(* The open-loop property itself: past the knee the offered load keeps
   arriving on schedule, queues build up and goodput detaches; under light
   load the two agree and queues stay shallow. *)
let test_open_loop_saturation () =
  let light = Engine.run ~dims ~strategy:strategy_4ary (small_spec ~rate:500.0 ()) in
  let heavy = Engine.run ~dims ~strategy:strategy_4ary (small_spec ~rate:8_000.0 ()) in
  let ratio r = r.Engine.goodput_per_s /. r.Engine.offered_per_s in
  Alcotest.(check bool) "light load keeps up" true (ratio light >= 0.95);
  Alcotest.(check bool) "heavy load diverges" true (ratio heavy < 0.7);
  Alcotest.(check bool) "arrivals scale with rate (open loop)" true
    (heavy.Engine.arrivals > 10 * light.Engine.arrivals);
  Alcotest.(check bool) "queues grow past saturation" true
    (Engine.max_queue_hwm heavy > 4 * max 1 (Engine.max_queue_hwm light));
  Alcotest.(check bool) "saturated makespan overshoots the horizon" true
    (heavy.Engine.makespan_us > 1.5 *. Spec.(((small_spec ()).horizon_us)));
  Alcotest.(check bool) "light makespan near the horizon" true
    (light.Engine.makespan_us < 1.2 *. Spec.(((small_spec ()).horizon_us)))

let test_engine_faults_compose () =
  let sched =
    Diva_faults.Schedule.make ~seed:4
      [ Diva_faults.Schedule.Msg_drop
          { prob = 0.02; w = { t0 = 0.0; t1 = 1e9 } } ]
  in
  let obs = { Runner.null_obs with Runner.obs_faults = sched } in
  let spec = small_spec () in
  let a = Engine.run ~obs ~dims ~strategy:strategy_4ary spec in
  let b = Engine.run ~obs ~dims ~strategy:strategy_4ary spec in
  Alcotest.(check bool) "faulted run deterministic" true (a = b);
  let clean = Engine.run ~dims ~strategy:strategy_4ary spec in
  Alcotest.(check int) "same arrivals with or without faults"
    clean.Engine.arrivals a.Engine.arrivals;
  Alcotest.(check bool) "loss leaves a mark" true (a <> clean)

(* Composition with the event-trace pipeline: a traced service run feeds
   the same single-pass streaming analyzer used by `analyze --offline`,
   and tracing never perturbs the run. *)
let test_engine_event_stream () =
  let spec = small_spec ~rate:600.0 () in
  let tr = Trace.create () in
  let captured = ref None in
  let traced =
    Engine.run
      ~obs:{ Runner.null_obs with Runner.obs_trace = tr }
      ~on_net:(fun net ->
        captured := Some (Diva_simnet.Network.machine net))
      ~dims ~strategy:strategy_4ary spec
  in
  let untraced = Engine.run ~dims ~strategy:strategy_4ary spec in
  Alcotest.(check bool) "tracing does not perturb" true (traced = untraced);
  let events = Trace.events tr in
  Alcotest.(check bool) "events emitted" true (events <> []);
  let m =
    match !captured with Some m -> m | None -> Alcotest.fail "no machine"
  in
  let ov =
    { Diva_obs.Analysis.send_overhead = m.Diva_simnet.Machine.send_overhead;
      recv_overhead = m.Diva_simnet.Machine.recv_overhead;
      local_overhead = m.Diva_simnet.Machine.local_overhead }
  in
  let summary, _peak =
    Diva_obs.Streaming.analyze_events ~num_windows:4 ov events
  in
  let batch = Diva_obs.Analysis.summarize ~num_windows:4 ov events in
  Alcotest.(check bool) "streaming analysis matches batch" true
    (summary = batch)

(* ------------------------------------------------------------------ *)
(* Saturation sweep                                                     *)
(* ------------------------------------------------------------------ *)

let test_sweep_knee () =
  let spec = small_spec () in
  let sw =
    Sweep.run ~dims ~strategy:strategy_4ary
      ~rates:[ 8_000.0; 400.0; 800.0 ] (* unsorted on purpose *)
      spec
  in
  Alcotest.(check int) "three rows" 3 (List.length sw.Sweep.sv_rows);
  Alcotest.(check (list (float 1e-9))) "rows sorted ascending"
    [ 400.0; 800.0; 8_000.0 ]
    (List.map (fun r -> r.Sweep.sw_rate) sw.Sweep.sv_rows);
  let diverged = List.map (fun r -> r.Sweep.sw_diverged) sw.Sweep.sv_rows in
  Alcotest.(check (list bool)) "only the saturated point diverges"
    [ false; false; true ] diverged;
  (match sw.Sweep.sv_knee with
  | Some k -> Alcotest.(check (float 1e-9)) "knee is last sustained rate" 800.0 k
  | None -> Alcotest.fail "expected a knee");
  List.iter
    (fun r ->
      Alcotest.(check bool) "ratio consistent" true
        (Float.abs (r.Sweep.sw_ratio -. (r.Sweep.sw_goodput /. r.Sweep.sw_offered))
        < 1e-9))
    sw.Sweep.sv_rows;
  (* All-diverged sweeps report no knee rather than a misleading rate. *)
  let hopeless =
    Sweep.run ~dims ~strategy:strategy_4ary ~rates:[ 8_000.0; 16_000.0 ] spec
  in
  Alcotest.(check bool) "no knee when everything diverges" true
    (hopeless.Sweep.sv_knee = None);
  match Sweep.run ~dims ~strategy:strategy_4ary ~rates:[] spec with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty rate list must be rejected"

let test_sweep_json () =
  let spec = small_spec () in
  let sw = Sweep.run ~dims ~strategy:Dsm.Fixed_home ~rates:[ 500.0; 8_000.0 ] spec in
  let doc = Sweep.to_json ~params:(Spec.to_params spec) [ sw ] in
  let open Diva_obs.Json in
  (match doc with
  | Obj fields ->
      Alcotest.(check bool) "schema tagged" true
        (List.assoc_opt "schema" fields = Some (String "diva-service-sweep/1"));
      (match List.assoc_opt "sweeps" fields with
      | Some (List [ Obj sweep ]) ->
          Alcotest.(check bool) "strategy named" true
            (List.assoc_opt "strategy" sweep = Some (String "fixed home"));
          (match List.assoc_opt "rows" sweep with
          | Some (List rows) ->
              Alcotest.(check int) "row per rate" 2 (List.length rows)
          | _ -> Alcotest.fail "rows missing")
      | _ -> Alcotest.fail "sweeps missing")
  | _ -> Alcotest.fail "sweep doc not an object");
  (* Round-trips through the JSON printer/parser. *)
  match of_string (to_string doc) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "sweep json does not parse: %s" e

let suite =
  [
    Alcotest.test_case "arrivals monotone and finite" `Quick
      test_arrival_monotone;
    Alcotest.test_case "arrival determinism" `Quick test_arrival_determinism;
    Alcotest.test_case "arrival mean rates" `Quick test_arrival_mean_rate;
    Alcotest.test_case "arrival validation" `Quick test_arrival_validate;
    Alcotest.test_case "slo exact order statistics" `Quick test_slo_exact;
    Alcotest.test_case "slo p999 minimum-sample guard" `Quick
      test_slo_p999_guard;
    Alcotest.test_case "phase boundaries" `Quick test_spec_boundaries;
    Alcotest.test_case "spec validation" `Quick test_spec_validate;
    Alcotest.test_case "scenario phase schedules" `Quick test_scenario_phases;
    Alcotest.test_case "flash crowd concentrates accesses" `Quick
      test_flash_crowd_concentration;
    Alcotest.test_case "engine determinism" `Quick test_engine_determinism;
    Alcotest.test_case "engine accounting" `Quick test_engine_accounting;
    Alcotest.test_case "open-loop saturation" `Quick test_open_loop_saturation;
    Alcotest.test_case "faults compose deterministically" `Quick
      test_engine_faults_compose;
    Alcotest.test_case "event stream composes with analysis" `Quick
      test_engine_event_stream;
    Alcotest.test_case "sweep knee detection" `Quick test_sweep_knee;
    Alcotest.test_case "sweep json table" `Quick test_sweep_json;
  ]
