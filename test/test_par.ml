(* Domain-sharded engine: determinism across domain counts is the whole
   contract, so every test here compares runs at several [domains] values
   (byte-for-byte via rendered reports or structural equality) rather than
   asserting absolute numbers. The sandbox may have a single core — these
   tests verify determinism, not speedup. *)

module Par_engine = Diva_simnet.Par_engine
module Traffic = Diva_simnet.Traffic
module Parallel = Diva_util.Parallel
module Chaos = Diva_workload.Chaos

(* --- Parallel.map ---------------------------------------------------- *)

let test_parallel_map_order () =
  let xs = List.init 57 Fun.id in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "map x2, %d domains" domains)
        (List.map (fun x -> 2 * x) xs)
        (Parallel.map ~domains (fun x -> 2 * x) xs))
    [ 1; 2; 4; 8; 100 ];
  Alcotest.(check (list int)) "empty list" [] (Parallel.map ~domains:4 Fun.id [])

exception Boom of int

let test_parallel_map_exception () =
  match
    Parallel.map ~domains:4
      (fun x -> if x mod 10 = 3 then raise (Boom x) else x)
      (List.init 40 Fun.id)
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Boom x ->
      (* Earliest failing element wins, regardless of which domain hit
         its failure first. *)
      Alcotest.(check int) "earliest exception" 3 x

(* --- Par_engine ------------------------------------------------------ *)

(* A ring of shards passing counters around: each event at shard s hops to
   shard (s+1) mod n after exactly the lookahead, decrementing a TTL, and
   every execution appends to a per-shard log. The merged log (shard
   order) must be identical for every domain count. *)
let ring_run ~domains ~shards =
  let logs = Array.make shards [] in
  let eng = Par_engine.create ~shards ~lookahead:1.0 in
  for i = 0 to shards - 1 do
    Par_engine.schedule_init eng ~shard:i ~at:(0.1 *. float_of_int i)
      (100 + i)
  done;
  Par_engine.run ~domains eng ~handler:(fun ctx ttl ->
      let s = Par_engine.ctx_shard ctx in
      logs.(s) <- (Par_engine.ctx_now ctx, ttl) :: logs.(s);
      if ttl > 0 then
        Par_engine.ctx_post ctx
          ~dst:((s + 1) mod Par_engine.ctx_num_shards ctx)
          ~at:(Par_engine.ctx_now ctx +. 1.0)
          (ttl - 1));
  (Array.to_list (Array.map List.rev logs), Par_engine.events_executed eng)

let test_par_engine_ring_identical () =
  let reference = ring_run ~domains:1 ~shards:7 in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "%d domains = serial" domains)
        true
        (ring_run ~domains ~shards:7 = reference))
    [ 2; 3; 4; 8 ];
  let _, events = reference in
  (* 7 seeds, each with TTLs 100..106: total executions = sum (ttl + 1). *)
  Alcotest.(check int) "event count" (7 * 101 + (0 + 1 + 2 + 3 + 4 + 5 + 6))
    events

let test_par_engine_lookahead_enforced () =
  let eng = Par_engine.create ~shards:2 ~lookahead:5.0 in
  Par_engine.schedule_init eng ~shard:0 ~at:0.0 ();
  match
    Par_engine.run eng ~handler:(fun ctx () ->
        Par_engine.ctx_post ctx ~dst:1
          ~at:(Par_engine.ctx_now ctx +. 1.0)
          ())
  with
  | () -> Alcotest.fail "cross-shard post under the lookahead should raise"
  | exception Invalid_argument _ -> ()

let test_par_engine_same_shard_post_is_schedule () =
  (* Same-shard posts have no lookahead constraint. *)
  let eng = Par_engine.create ~shards:2 ~lookahead:5.0 in
  let hits = ref [] in
  Par_engine.schedule_init eng ~shard:0 ~at:0.0 3;
  Par_engine.run eng ~handler:(fun ctx n ->
      hits := Par_engine.ctx_now ctx :: !hits;
      if n > 0 then
        Par_engine.ctx_post ctx ~dst:0
          ~at:(Par_engine.ctx_now ctx +. 0.5)
          (n - 1));
  Alcotest.(check (list (float 1e-9)))
    "sub-lookahead self-posts run" [ 1.5; 1.0; 0.5; 0.0 ] !hits

(* --- Traffic --------------------------------------------------------- *)

let test_traffic_domains_identical () =
  let go domains =
    Traffic.render
      (Traffic.run ~domains ~seed:5 ~rows:16 ~cols:16 ~rate:0.002
         ~horizon:10_000.0 ~pattern:Traffic.Uniform ())
  in
  let serial = go 1 in
  List.iter
    (fun d ->
      Alcotest.(check string)
        (Printf.sprintf "--domains %d byte-identical" d)
        serial (go d))
    [ 2; 4 ];
  (* Repeat determinism: same config, same report. *)
  Alcotest.(check string) "repeat run identical" serial (go 4)

let test_traffic_drains_and_patterns () =
  List.iter
    (fun pattern ->
      let r =
        Traffic.run ~domains:3 ~seed:11 ~rows:8 ~cols:8 ~rate:0.001
          ~horizon:5_000.0 ~pattern ()
      in
      Alcotest.(check int)
        (Traffic.pattern_name pattern ^ " fully drained")
        r.Traffic.r_injected r.Traffic.r_delivered;
      Alcotest.(check bool)
        (Traffic.pattern_name pattern ^ " delivered some")
        true
        (r.Traffic.r_delivered > 0))
    [ Traffic.Uniform; Traffic.Transpose; Traffic.Hotspot ]

(* --- Chaos campaigns under domains ----------------------------------- *)

let test_chaos_domains_identical () =
  (* Fault-injected protocol runs fanned out across domains: the outcome
     list — oracle verdicts, fault counters, simulated times — must be
     exactly the serial one. Manifest equality covers every field. *)
  let cfg =
    {
      Chaos.default with
      Chaos.dims = [| 4; 4 |];
      schedules = 2;
      ops = 20;
      verify_determinism = true;
    }
  in
  let manifest_with domains =
    Chaos.manifest cfg (Chaos.run ~domains cfg)
  in
  let serial = manifest_with 1 in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "chaos --domains %d manifest identical" d)
        true
        (manifest_with d = serial))
    [ 2; 4 ]

let suite =
  [
    Alcotest.test_case "parallel map preserves order" `Quick
      test_parallel_map_order;
    Alcotest.test_case "parallel map propagates earliest exception" `Quick
      test_parallel_map_exception;
    Alcotest.test_case "par_engine ring identical across domains" `Quick
      test_par_engine_ring_identical;
    Alcotest.test_case "par_engine enforces lookahead" `Quick
      test_par_engine_lookahead_enforced;
    Alcotest.test_case "par_engine same-shard post" `Quick
      test_par_engine_same_shard_post_is_schedule;
    Alcotest.test_case "traffic identical across domains" `Quick
      test_traffic_domains_identical;
    Alcotest.test_case "traffic drains under all patterns" `Quick
      test_traffic_drains_and_patterns;
    Alcotest.test_case "chaos campaign identical across domains" `Quick
      test_chaos_domains_identical;
  ]
