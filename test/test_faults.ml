(* Fault injection: schedule format round-trip, the no-fault identity,
   fault determinism, the coherence oracle (including histories that must
   fail), and a chaos campaign across generated schedules. *)

module Schedule = Diva_faults.Schedule
module Faults = Diva_faults.Faults
module Network = Diva_simnet.Network
module Runner = Diva_harness.Runner
module Spec = Diva_workload.Spec
module Generator = Diva_workload.Generator
module Oracle = Diva_workload.Oracle
module Chaos = Diva_workload.Chaos
module Dsm = Diva_core.Dsm

let strategy_4ary = Dsm.access_tree ~arity:4 ()

let sample_schedule =
  Schedule.make ~seed:7 ~rto_us:5000.0 ~patience_us:25000.0
    [
      Schedule.Link_slow
        { link = Some 3; w = { t0 = 0.0; t1 = 5000.0 }; factor = 4.5 };
      Schedule.Link_slow
        { link = None; w = { t0 = 1000.0; t1 = 1500.0 }; factor = 2.0 };
      Schedule.Link_down { link = Some 1; w = { t0 = 2000.0; t1 = 2500.0 } };
      Schedule.Msg_drop { prob = 0.125; w = { t0 = 0.0; t1 = 20000.0 } };
      Schedule.Node_pause { node = 5; w = { t0 = 1000.0; t1 = 3000.0 } };
      Schedule.Node_crash { node = 2; w = { t0 = 4000.0; t1 = 8000.0 } };
    ]

let test_schedule_roundtrip () =
  let s = sample_schedule in
  let a = Schedule.to_string s in
  let s' =
    match Schedule.of_string a with
    | Ok s' -> s'
    | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  in
  Alcotest.(check string) "serialization is stable" a (Schedule.to_string s');
  Alcotest.(check int) "seed" s.Schedule.seed s'.Schedule.seed;
  Alcotest.(check int) "event count"
    (List.length s.Schedule.events)
    (List.length s'.Schedule.events);
  Alcotest.(check bool) "not empty" false (Schedule.is_empty s');
  match Schedule.validate s' with
  | Ok () -> ()
  | Error e -> Alcotest.failf "parsed schedule invalid: %s" e

let test_schedule_validate () =
  let bad events = Schedule.make events in
  let rejects name s =
    match Schedule.validate s with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s accepted" name
  in
  rejects "inverted window"
    (bad [ Schedule.Link_down { link = None; w = { t0 = 10.0; t1 = 5.0 } } ]);
  rejects "factor below one"
    (bad
       [ Schedule.Link_slow
           { link = None; w = { t0 = 0.0; t1 = 1.0 }; factor = 0.5 } ]);
  rejects "probability above one"
    (bad [ Schedule.Msg_drop { prob = 1.5; w = { t0 = 0.0; t1 = 1.0 } } ]);
  rejects "negative node"
    (bad [ Schedule.Node_pause { node = -1; w = { t0 = 0.0; t1 = 1.0 } } ]);
  rejects "zero rto"
    (Schedule.make ~rto_us:0.0
       [ Schedule.Msg_drop { prob = 0.1; w = { t0 = 0.0; t1 = 1.0 } } ])

let test_generate_deterministic () =
  let g () = Schedule.generate ~seed:5 ~num_nodes:16 ~num_links:48 () in
  let a = g () and b = g () in
  Alcotest.(check string) "same seed, same schedule" (Schedule.to_string a)
    (Schedule.to_string b);
  (match Schedule.validate a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "generated schedule invalid: %s" e);
  Alcotest.(check bool) "never empty" false (Schedule.is_empty a);
  let c = Schedule.generate ~seed:6 ~num_nodes:16 ~num_links:48 () in
  Alcotest.(check bool) "different seed, different schedule" true
    (Schedule.to_string a <> Schedule.to_string c)

let check_meas name (a : Runner.measurements) (b : Runner.measurements) =
  Alcotest.(check int) (name ^ ": total msgs") a.Runner.total_msgs
    b.Runner.total_msgs;
  Alcotest.(check int) (name ^ ": total bytes") a.Runner.total_bytes
    b.Runner.total_bytes;
  Alcotest.(check int) (name ^ ": startups") a.Runner.startups b.Runner.startups;
  Alcotest.(check (float 0.0)) (name ^ ": time") a.Runner.time b.Runner.time

(* Installing the empty schedule must leave a run bit-identical to one
   with no fault machinery at all: the reliable envelope stays unarmed. *)
let test_empty_schedule_identity () =
  let faulted = ref None in
  let base =
    Runner.run_matmul ~seed:3 ~rows:4 ~cols:4 ~block:64
      (Runner.Strategy strategy_4ary)
  in
  let with_empty =
    Runner.run_matmul ~seed:3
      ~obs:{ Runner.null_obs with Runner.obs_faults = Schedule.empty }
      ~on_net:(fun net -> faulted := Network.faults net)
      ~rows:4 ~cols:4 ~block:64
      (Runner.Strategy strategy_4ary)
  in
  check_meas "empty schedule" base with_empty;
  Alcotest.(check bool) "no injector installed" true (!faulted = None)

let drop_schedule =
  Schedule.make ~seed:9
    [
      Schedule.Msg_drop { prob = 0.05; w = { t0 = 0.0; t1 = 50_000.0 } };
      Schedule.Link_slow
        { link = None; w = { t0 = 10_000.0; t1 = 20_000.0 }; factor = 3.0 };
      Schedule.Node_pause { node = 5; w = { t0 = 5_000.0; t1 = 15_000.0 } };
    ]

let faulted_matmul strategy =
  let captured = ref None in
  let m =
    Runner.run_matmul ~seed:3
      ~obs:{ Runner.null_obs with Runner.obs_faults = drop_schedule }
      ~on_net:(fun net -> captured := Network.faults net)
      ~rows:4 ~cols:4 ~block:256 strategy
  in
  let f = Option.get !captured in
  (m, [ Faults.lost_total f; Faults.retransmits f; Faults.enveloped f;
        Faults.dsm_reissues f ])

(* Same schedule + seed => bit-identical faulted run, for both strategies;
   and the faults really do bite (losses happen, every one recovered). *)
let test_fault_determinism () =
  List.iter
    (fun (name, strategy) ->
      let m1, c1 = faulted_matmul strategy in
      let m2, c2 = faulted_matmul strategy in
      check_meas (name ^ " faulted rerun") m1 m2;
      Alcotest.(check (list int)) (name ^ ": fault counters") c1 c2;
      let lost, retransmits, enveloped =
        match c1 with
        | [ l; r; e; _ ] -> (l, r, e)
        | _ -> assert false
      in
      Alcotest.(check bool) (name ^ ": messages were lost") true (lost > 0);
      Alcotest.(check bool)
        (name ^ ": every loss retransmitted") true (retransmits >= lost);
      Alcotest.(check bool) (name ^ ": envelope armed") true (enveloped > 0))
    [
      ("fixed-home", Runner.Strategy Dsm.Fixed_home);
      ("4-ary", Runner.Strategy strategy_4ary);
    ]

let test_fault_workload_determinism () =
  let spec =
    Spec.make ~num_vars:24 ~lock_every:4
      ~phases:[ Spec.phase ~read_ratio:0.7 40 ]
      ~seed:11 ()
  in
  let go strategy =
    let captured = ref None in
    let r =
      Generator.run
        ~obs:{ Runner.null_obs with Runner.obs_faults = drop_schedule }
        ~on_net:(fun net -> captured := Network.faults net)
        ~dims:[| 4; 4 |] ~strategy spec
    in
    let f = Option.get !captured in
    (r.Generator.measurements, Faults.lost_total f, Faults.retransmits f)
  in
  List.iter
    (fun (name, strategy) ->
      let m1, l1, r1 = go strategy in
      let m2, l2, r2 = go strategy in
      check_meas (name ^ " workload rerun") m1 m2;
      Alcotest.(check int) (name ^ ": lost") l1 l2;
      Alcotest.(check int) (name ^ ": retransmits") r1 r2)
    [ ("fixed-home", Dsm.Fixed_home); ("4-ary", strategy_4ary) ]

(* ------------------------------------------------------------------ *)
(* Coherence oracle                                                    *)
(* ------------------------------------------------------------------ *)

let ok_or_fail = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "oracle rejected a valid history: %s" e

let expect_violation what = function
  | Error _ -> ()
  | Ok () -> Alcotest.failf "oracle accepted %s" what

let test_oracle_accepts_valid () =
  let o = Oracle.create () in
  Oracle.init_var o ~var:0 ~value:0;
  let v1 = Oracle.next_write_value o in
  Oracle.record_write o ~var:0 ~proc:0 ~value:v1 ~t0:0.0 ~t1:10.0;
  (* Concurrent with the write: either value is linearizable. *)
  Oracle.record_read o ~var:0 ~proc:1 ~value:0 ~t0:5.0 ~t1:20.0;
  Oracle.record_read o ~var:0 ~proc:1 ~value:v1 ~t0:15.0 ~t1:30.0;
  ok_or_fail (Oracle.check o);
  Alcotest.(check int) "ops recorded" 3 (Oracle.ops o)

let test_oracle_stale_read () =
  let o = Oracle.create () in
  Oracle.init_var o ~var:0 ~value:0;
  let v1 = Oracle.next_write_value o in
  let v2 = Oracle.next_write_value o in
  Oracle.record_write o ~var:0 ~proc:0 ~value:v1 ~t0:0.0 ~t1:10.0;
  Oracle.record_write o ~var:0 ~proc:1 ~value:v2 ~t0:20.0 ~t1:30.0;
  (* v1 was definitely overwritten before this read began. *)
  Oracle.record_read o ~var:0 ~proc:2 ~value:v1 ~t0:40.0 ~t1:50.0;
  expect_violation "a stale read" (Oracle.check o)

let test_oracle_unknown_value () =
  let o = Oracle.create () in
  Oracle.init_var o ~var:0 ~value:0;
  Oracle.record_read o ~var:0 ~proc:0 ~value:99 ~t0:0.0 ~t1:1.0;
  expect_violation "a read of a never-written value" (Oracle.check o)

let test_oracle_read_inversion () =
  let o = Oracle.create () in
  Oracle.init_var o ~var:0 ~value:0;
  let v_old = Oracle.next_write_value o in
  let v_new = Oracle.next_write_value o in
  Oracle.record_write o ~var:0 ~proc:0 ~value:v_old ~t0:0.0 ~t1:10.0;
  Oracle.record_write o ~var:0 ~proc:0 ~value:v_new ~t0:20.0 ~t1:30.0;
  (* First read sees the new write; a strictly later read (overlapping
     the new write, so not plain stale) sees the old one. *)
  Oracle.record_read o ~var:0 ~proc:1 ~value:v_new ~t0:21.0 ~t1:23.0;
  Oracle.record_read o ~var:0 ~proc:1 ~value:v_old ~t0:25.0 ~t1:27.0;
  expect_violation "inverted reads" (Oracle.check o)

(* An intentionally broken toy protocol: a reader caches the value once
   and never invalidates, while a writer keeps updating. The oracle must
   reject the resulting history. *)
let test_oracle_catches_broken_protocol () =
  let o = Oracle.create () in
  Oracle.init_var o ~var:0 ~value:0;
  let clock = ref 0.0 in
  let tick () = clock := !clock +. 10.0; !clock in
  let stale_cache = ref 0 in
  (* Reader fills its cache once... *)
  let t0 = tick () in
  stale_cache := 0;
  Oracle.record_read o ~var:0 ~proc:1 ~value:!stale_cache ~t0 ~t1:(tick ());
  (* ...the writer commits three updates... *)
  for _ = 1 to 3 do
    let v = Oracle.next_write_value o in
    let t0 = tick () in
    Oracle.record_write o ~var:0 ~proc:0 ~value:v ~t0 ~t1:(tick ())
  done;
  (* ...and the reader still serves from its stale cache. *)
  let t0 = tick () in
  Oracle.record_read o ~var:0 ~proc:1 ~value:!stale_cache ~t0 ~t1:(tick ());
  expect_violation "the no-invalidation toy protocol" (Oracle.check o)

(* ------------------------------------------------------------------ *)
(* Chaos campaign                                                      *)
(* ------------------------------------------------------------------ *)

(* 20 generated schedules x both strategies, every run oracle-checked.
   Determinism verification is off here (it has its own tests above),
   halving the runtime. *)
let test_chaos_campaign () =
  let cfg =
    {
      Chaos.dims = [| 4; 4 |];
      schedules = 20;
      seed = 123;
      ops = 20;
      num_vars = 16;
      lock_every = 4;
      read_ratio = 0.7;
      verify_determinism = false;
      strategies = Chaos.paper_strategies;
    }
  in
  let outcomes = Chaos.run cfg in
  Alcotest.(check int) "runs" 40 (List.length outcomes);
  List.iter
    (fun o ->
      (match o.Chaos.oracle_error with
      | None -> ()
      | Some e ->
          Alcotest.failf "schedule %d (%s): coherence violation: %s"
            o.Chaos.index o.Chaos.strategy e);
      Alcotest.(check int)
        (Printf.sprintf "schedule %d (%s): all ops recorded" o.Chaos.index
           o.Chaos.strategy)
        (16 * 20) o.Chaos.ops_checked)
    outcomes;
  Alcotest.(check bool) "campaign verdict" true (Chaos.passed outcomes);
  Alcotest.(check bool) "some schedule actually lost messages" true
    (List.exists (fun o -> o.Chaos.lost > 0) outcomes)

(* A short fault campaign over the full strategy registry — prefetching,
   adaptive migration and capacity eviction each face injected faults
   with the linearizability oracle attached, and every run is replayed to
   prove schedule + seed still determine the execution. *)
let test_chaos_registry_zoo () =
  let strategies =
    List.map
      (fun (name, spec) -> (name, (spec : Diva_core.Strategy.spec)))
      (Diva_core.Registry.contenders ())
  in
  let cfg =
    {
      Chaos.default with
      Chaos.dims = [| 4; 4 |];
      schedules = 3;
      seed = 7;
      ops = 20;
      verify_determinism = true;
      strategies;
    }
  in
  let outcomes = Chaos.run cfg in
  Alcotest.(check int) "runs" (3 * List.length strategies)
    (List.length outcomes);
  List.iter
    (fun o ->
      (match o.Chaos.oracle_error with
      | None -> ()
      | Some e ->
          Alcotest.failf "schedule %d (%s): coherence violation: %s"
            o.Chaos.index o.Chaos.strategy e);
      if o.Chaos.deterministic <> Some true then
        Alcotest.failf "schedule %d (%s): non-deterministic replay"
          o.Chaos.index o.Chaos.strategy)
    outcomes;
  Alcotest.(check bool) "campaign verdict" true (Chaos.passed outcomes)

let suite =
  [
    Alcotest.test_case "schedule JSON round-trip" `Quick test_schedule_roundtrip;
    Alcotest.test_case "schedule validation" `Quick test_schedule_validate;
    Alcotest.test_case "schedule generation deterministic" `Quick
      test_generate_deterministic;
    Alcotest.test_case "empty schedule is the identity" `Quick
      test_empty_schedule_identity;
    Alcotest.test_case "faulted matmul deterministic" `Slow
      test_fault_determinism;
    Alcotest.test_case "faulted workload deterministic" `Slow
      test_fault_workload_determinism;
    Alcotest.test_case "oracle accepts valid history" `Quick
      test_oracle_accepts_valid;
    Alcotest.test_case "oracle rejects stale read" `Quick test_oracle_stale_read;
    Alcotest.test_case "oracle rejects unknown value" `Quick
      test_oracle_unknown_value;
    Alcotest.test_case "oracle rejects read inversion" `Quick
      test_oracle_read_inversion;
    Alcotest.test_case "oracle catches broken protocol" `Quick
      test_oracle_catches_broken_protocol;
    Alcotest.test_case "chaos campaign: 20 schedules, both strategies" `Slow
      test_chaos_campaign;
    Alcotest.test_case "chaos campaign: full strategy registry" `Slow
      test_chaos_registry_zoo;
  ]
