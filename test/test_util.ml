(* Unit and property tests for lib/util. *)

module Prng = Diva_util.Prng
module Heap = Diva_util.Event_queue
module Stats = Diva_util.Stats
module Table = Diva_util.Table

let test_prng_determinism () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check int) "different seeds diverge" 0 !same

let test_prng_split_independence () =
  let a = Prng.create ~seed:1 in
  let c = Prng.split a in
  let xs = List.init 32 (fun _ -> Prng.bits64 a) in
  let ys = List.init 32 (fun _ -> Prng.bits64 c) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let test_prng_int_range () =
  let a = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prng.int a 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_coverage () =
  let a = Prng.create ~seed:4 in
  let seen = Array.make 8 false in
  for _ = 1 to 500 do
    seen.(Prng.int a 8) <- true
  done;
  Alcotest.(check bool) "all buckets hit" true (Array.for_all Fun.id seen)

let test_prng_float_range () =
  let a = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Prng.float a 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_hash2_deterministic () =
  Alcotest.(check int64) "stable" (Prng.hash2 42L 7) (Prng.hash2 42L 7);
  Alcotest.(check bool) "distinct inputs" true (Prng.hash2 42L 7 <> Prng.hash2 42L 8)

let test_hash2_int_range () =
  for i = 0 to 999 do
    let v = Prng.hash2_int 99L i ~bound:13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_shuffle_permutation () =
  let a = Prng.create ~seed:6 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle a arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_heap_ordering () =
  let h = Heap.create () in
  let rng = Prng.create ~seed:11 in
  let n = 500 in
  for i = 0 to n - 1 do
    Heap.insert h (Prng.float rng 100.0) i
  done;
  let last = ref neg_infinity in
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Heap.pop_min h with
    | None -> continue := false
    | Some (p, _) ->
        Alcotest.(check bool) "non-decreasing" true (p >= !last);
        last := p;
        incr count
  done;
  Alcotest.(check int) "all popped" n !count

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.insert h 1.0 i
  done;
  for i = 0 to 9 do
    match Heap.pop_min h with
    | Some (_, v) -> Alcotest.(check int) "fifo among ties" i v
    | None -> Alcotest.fail "heap empty early"
  done

let test_heap_interleaved () =
  let h = Heap.create () in
  Heap.insert h 5.0 `A;
  Heap.insert h 1.0 `B;
  Alcotest.(check bool) "min priority" true (Heap.min_priority h = Some 1.0);
  (match Heap.pop_min h with
  | Some (_, `B) -> ()
  | _ -> Alcotest.fail "expected B");
  Heap.insert h 0.5 `C;
  (match Heap.pop_min h with
  | Some (_, `C) -> ()
  | _ -> Alcotest.fail "expected C");
  (match Heap.pop_min h with
  | Some (_, `A) -> ()
  | _ -> Alcotest.fail "expected A");
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (pair (float_bound_inclusive 1000.0) small_int))
    (fun items ->
      let h = Heap.create () in
      List.iter (fun (p, v) -> Heap.insert h p v) items;
      let rec drain acc =
        match Heap.pop_min h with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare popped)

(* Full reference-model check: the pop sequence must equal a stable sort
   of the insertions by priority — value identity included, so FIFO order
   among equal priorities is verified, not just priority order. Priorities
   are drawn from a handful of values to force plenty of ties. *)
let prop_heap_reference_model =
  QCheck.Test.make ~name:"heap matches stable-sorted reference" ~count:300
    QCheck.(list (pair (int_bound 7) small_int))
    (fun items ->
      let items = List.map (fun (p, v) -> (float_of_int p, v)) items in
      let h = Heap.create () in
      List.iter (fun (p, v) -> Heap.insert h p v) items;
      let rec drain acc =
        match Heap.pop_min h with
        | None -> List.rev acc
        | Some (p, v) -> drain ((p, v) :: acc)
      in
      (* List.stable_sort on the priority alone = insertion order among
         ties, which is exactly the queue's documented contract. *)
      let expect =
        List.stable_sort (fun (a, _) (b, _) -> compare a b) items
      in
      drain [] = expect)

(* Interleaved inserts and pops against the same reference, exercising the
   hole-based sift-up/down paths mid-stream rather than only on a full
   drain. *)
let prop_heap_interleaved_model =
  QCheck.Test.make ~name:"heap interleaved ops match reference" ~count:300
    QCheck.(list (pair (option (int_bound 7)) small_int))
    (fun script ->
      let h = Heap.create () in
      let model = ref [] (* (prio, seq, value), kept stable-sorted *) in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun (op, v) ->
          match op with
          | Some p ->
              let p = float_of_int p in
              Heap.insert h p v;
              model :=
                List.stable_sort
                  (fun (a, sa, _) (b, sb, _) -> compare (a, sa) (b, sb))
                  ((p, !seq, v) :: !model);
              incr seq
          | None -> (
              match (Heap.pop_min h, !model) with
              | None, [] -> ()
              | Some (p, v), (mp, _, mv) :: rest ->
                  if p <> mp || v <> mv then ok := false else model := rest
              | _ -> ok := false))
        script;
      !ok && Heap.size h = List.length !model)

(* Growth far past the initial capacity: 20k pseudo-random insertions must
   still drain in exact (priority, insertion) order. *)
let test_heap_growth () =
  let h = Heap.create () in
  let r = Diva_util.Prng.create ~seed:9 in
  let items =
    Array.init 20_000 (fun i -> (float_of_int (Diva_util.Prng.int r 1000), i))
  in
  Array.iter (fun (p, v) -> Heap.insert h p v) items;
  Alcotest.(check int) "size" 20_000 (Heap.size h);
  let expect =
    let a = Array.copy items in
    Array.stable_sort (fun (a, _) (b, _) -> compare a b) a;
    a
  in
  Array.iter
    (fun (ep, ev) ->
      let p = Heap.min_priority_exn h in
      let v = Heap.pop_exn h in
      if p <> ep || v <> ev then
        Alcotest.failf "drain mismatch: got (%g, %d), want (%g, %d)" p v ep ev)
    expect;
  Alcotest.(check bool) "drained" true (Heap.is_empty h)

let test_heap_exn_and_clear () =
  let h = Heap.create () in
  (try
     ignore (Heap.min_priority_exn h);
     Alcotest.fail "min_priority_exn on empty should raise"
   with Invalid_argument _ -> ());
  (try
     ignore (Heap.pop_exn h);
     Alcotest.fail "pop_exn on empty should raise"
   with Invalid_argument _ -> ());
  Heap.insert h 3.0 "x";
  Heap.insert h 1.0 "y";
  Alcotest.(check (float 0.0)) "min_priority_exn" 1.0 (Heap.min_priority_exn h);
  Alcotest.(check string) "pop_exn" "y" (Heap.pop_exn h);
  Heap.insert h 2.0 "z";
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  Alcotest.(check int) "cleared size" 0 (Heap.size h);
  (* FIFO tie-break spans a clear: sequence numbers keep advancing. *)
  Heap.insert h 1.0 "after";
  Alcotest.(check string) "usable after clear" "after" (Heap.pop_exn h)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "percent" 50.0 (Stats.percent 1.0 2.0);
  Alcotest.(check (float 1e-9)) "ratio zero den" 0.0 (Stats.ratio 1.0 0.0);
  Alcotest.(check int) "ilog2 exact" 5 (Stats.ilog2 32);
  Alcotest.(check int) "ilog2 floor" 5 (Stats.ilog2 63);
  Alcotest.(check bool) "pow2 yes" true (Stats.is_power_of_two 64);
  Alcotest.(check bool) "pow2 no" false (Stats.is_power_of_two 48);
  Alcotest.(check bool) "pow2 zero" false (Stats.is_power_of_two 0)

let test_percentile () =
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Stats.percentile 50.0 [||]);
  let one = [| 7.5 |] in
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "single element, p%g" p)
        7.5 (Stats.percentile p one))
    [ 0.0; 50.0; 100.0 ];
  (* Unsorted input; nearest rank on the sorted copy. *)
  let a = [| 30.0; 10.0; 50.0; 20.0; 40.0 |] in
  Alcotest.(check (float 1e-9)) "p0 = min" 10.0 (Stats.percentile 0.0 a);
  Alcotest.(check (float 1e-9)) "p50 = median" 30.0 (Stats.percentile 50.0 a);
  Alcotest.(check (float 1e-9)) "p100 = max" 50.0 (Stats.percentile 100.0 a);
  Alcotest.(check (float 1e-9)) "p95 -> max of 5" 50.0 (Stats.percentile 95.0 a);
  Alcotest.(check (float 1e-9)) "p20 -> 1st of 5" 10.0 (Stats.percentile 20.0 a);
  Alcotest.(check (float 1e-9)) "p21 -> 2nd of 5" 20.0 (Stats.percentile 21.0 a);
  (* Input is left untouched. *)
  Alcotest.(check (array (float 0.0))) "input unmodified"
    [| 30.0; 10.0; 50.0; 20.0; 40.0 |] a;
  (* Out-of-range p clamps rather than raising. *)
  Alcotest.(check (float 1e-9)) "p<0 clamps" 10.0 (Stats.percentile (-3.0) a);
  Alcotest.(check (float 1e-9)) "p>100 clamps" 50.0 (Stats.percentile 140.0 a)

(* Basic Event_queue behaviour (the canonical name; the historical
   [Pairing_heap] alias is gone). *)
let test_event_queue_basics () =
  let h = Diva_util.Event_queue.create () in
  Diva_util.Event_queue.insert h 2.0 "b";
  Diva_util.Event_queue.insert h 1.0 "a";
  (match Diva_util.Event_queue.pop_min h with
  | Some (_, "a") -> ()
  | _ -> Alcotest.fail "min-heap order violated");
  Alcotest.(check int) "size after pop" 1 (Diva_util.Event_queue.size h)

let contains_substring s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_table_render () =
  let t = Table.create ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains rule" true (String.contains s '-');
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains_substring s needle))
    [ "a"; "bb"; "1"; "2"; "333"; "4" ];
  Alcotest.(check string) "fstr small" "3.14" (Table.fstr 3.14159);
  Alcotest.(check string) "fstr mid" "1234.5" (Table.fstr 1234.5);
  Alcotest.(check string) "fstr large" "123457" (Table.fstr 123456.7)

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng seed sensitivity" `Quick test_prng_seed_sensitivity;
    Alcotest.test_case "prng split independence" `Quick test_prng_split_independence;
    Alcotest.test_case "prng int range" `Quick test_prng_int_range;
    Alcotest.test_case "prng int coverage" `Quick test_prng_int_coverage;
    Alcotest.test_case "prng float range" `Quick test_prng_float_range;
    Alcotest.test_case "hash2 deterministic" `Quick test_hash2_deterministic;
    Alcotest.test_case "hash2 int range" `Quick test_hash2_int_range;
    Alcotest.test_case "shuffle is permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap fifo ties" `Quick test_heap_fifo_ties;
    Alcotest.test_case "heap interleaved" `Quick test_heap_interleaved;
    QCheck_alcotest.to_alcotest prop_heap_sorted;
    QCheck_alcotest.to_alcotest prop_heap_reference_model;
    QCheck_alcotest.to_alcotest prop_heap_interleaved_model;
    Alcotest.test_case "heap growth past 10k" `Quick test_heap_growth;
    Alcotest.test_case "heap exn ops and clear" `Quick test_heap_exn_and_clear;
    Alcotest.test_case "stats helpers" `Quick test_stats;
    Alcotest.test_case "stats percentile" `Quick test_percentile;
    Alcotest.test_case "event_queue basics" `Quick test_event_queue_basics;
    Alcotest.test_case "table render" `Quick test_table_render;
  ]

(* --- Value (universal payloads) and Machine -------------------------- *)

let test_value_embedding () =
  let inj_i, proj_i = Diva_core.Value.embed () in
  let inj_s, proj_s = Diva_core.Value.embed () in
  Alcotest.(check int) "roundtrip int" 42 (proj_i (inj_i 42));
  Alcotest.(check string) "roundtrip string" "x" (proj_s (inj_s "x"));
  (* Projecting through the wrong embedding is a type error at runtime. *)
  match proj_i (inj_s "boom") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong embedding accepted"

let test_machine_model () =
  let m = Diva_simnet.Machine.gcel in
  Alcotest.(check (float 1e-9)) "1 byte per us" 1024.0
    (Diva_simnet.Machine.transfer_time m 1024);
  (* The paper's link/processor speed ratio of ~0.86 for 4-byte words. *)
  let word_transfer = Diva_simnet.Machine.transfer_time m 4 in
  let word_adds = 1.0 /. m.Diva_simnet.Machine.int_op_time *. word_transfer in
  Alcotest.(check bool)
    (Printf.sprintf "link/cpu ratio ~0.86 (got %.2f)" word_adds)
    true
    (word_adds > 0.8 && word_adds < 1.4)

let suite =
  suite
  @ [
      Alcotest.test_case "value embedding" `Quick test_value_embedding;
      Alcotest.test_case "machine model" `Quick test_machine_model;
    ]
