(* Regenerate the golden observability files under test/data/ after an
   intentional format change:

     dune exec test/gen_golden.exe

   writes into the source tree (run from the repository root). *)

module Runner = Diva_harness.Runner
module Trace = Diva_obs.Trace
module Streaming = Diva_obs.Streaming

let () =
  let tr = Trace.create () in
  ignore
    (Runner.run_matmul ~seed:17 ~rows:2 ~cols:2 ~block:64
       ~obs:{ Runner.null_obs with Runner.obs_trace = tr }
       (Runner.Strategy (Diva_core.Dsm.access_tree ~arity:4 ())));
  let path = "test/data/golden_chrome_2x2.json" in
  Diva_obs.Chrome_trace.write_file ~path ~num_nodes:4 (Trace.events tr);
  Printf.printf "wrote %s (%d events)\n" path (Trace.count tr);
  (* Same fixed run, encoded as the versioned JSONL event-trace format
     (header + one event per line); the golden test replays the encoding
     byte for byte. The header must match test_streaming.golden_header. *)
  let m = Diva_simnet.Machine.gcel in
  let header =
    Streaming.make_header
      ~params:[ ("block", Diva_obs.Json.Int 64) ]
      ~app:"matmul" ~dims:[| 2; 2 |] ~strategy:"4-ary" ~seed:17
      ~overheads:
        { Diva_obs.Analysis.send_overhead = m.Diva_simnet.Machine.send_overhead;
          recv_overhead = m.Diva_simnet.Machine.recv_overhead;
          local_overhead = m.Diva_simnet.Machine.local_overhead }
      ()
  in
  let path = "test/data/golden_events_2x2.jsonl" in
  let oc = open_out_bin path in
  let sink = Streaming.file_sink oc header in
  List.iter (Trace.emit sink) (Trace.events tr);
  close_out oc;
  Printf.printf "wrote %s (%d events)\n" path (Trace.count tr);
  (* One golden event trace per strategy-zoo contender, same fixed matmul
     run; the byte tests in test_golden_strategies.ml replay these. The
     header names the registry entry, not the display name. *)
  List.iter
    (fun name ->
      let spec =
        match Diva_core.Registry.find name with
        | Some s -> s
        | None -> failwith ("unknown registry strategy: " ^ name)
      in
      let tr = Trace.create () in
      ignore
        (Runner.run_matmul ~seed:17 ~rows:2 ~cols:2 ~block:64
           ~obs:{ Runner.null_obs with Runner.obs_trace = tr }
           (Runner.Strategy spec));
      let header =
        Streaming.make_header
          ~params:[ ("block", Diva_obs.Json.Int 64) ]
          ~app:"matmul" ~dims:[| 2; 2 |] ~strategy:name ~seed:17
          ~overheads:
            { Diva_obs.Analysis.send_overhead =
                m.Diva_simnet.Machine.send_overhead;
              recv_overhead = m.Diva_simnet.Machine.recv_overhead;
              local_overhead = m.Diva_simnet.Machine.local_overhead }
          ()
      in
      let path = Printf.sprintf "test/data/golden_events_2x2_%s.jsonl" name in
      let oc = open_out_bin path in
      let sink = Streaming.file_sink oc header in
      List.iter (Trace.emit sink) (Trace.events tr);
      close_out oc;
      Printf.printf "wrote %s (%d events)\n" path (Trace.count tr))
    [ "prefetch_tree"; "adaptive_repl"; "capacity_lru"; "capacity_freq" ]
