(* Regenerate the golden observability files under test/data/ after an
   intentional format change:

     dune exec test/gen_golden.exe

   writes into the source tree (run from the repository root). *)

module Runner = Diva_harness.Runner
module Trace = Diva_obs.Trace

let () =
  let tr = Trace.create () in
  ignore
    (Runner.run_matmul ~seed:17 ~rows:2 ~cols:2 ~block:64
       ~obs:{ Runner.null_obs with Runner.obs_trace = tr }
       (Runner.Strategy (Diva_core.Dsm.access_tree ~arity:4 ())));
  let path = "test/data/golden_chrome_2x2.json" in
  Diva_obs.Chrome_trace.write_file ~path ~num_nodes:4 (Trace.events tr);
  Printf.printf "wrote %s (%d events)\n" path (Trace.count tr)
