(* Tests for the experiment harness: runner measurements, report tables,
   heatmap rendering. *)

module Network = Diva_simnet.Network
module Link_stats = Diva_simnet.Link_stats
module Dsm = Diva_core.Dsm
module Runner = Diva_harness.Runner
module Report = Diva_harness.Report
module Heatmap = Diva_harness.Heatmap
module Barnes_hut = Diva_apps.Barnes_hut
open Helpers

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_runner_matmul_measurements () =
  let m =
    Runner.run_matmul ~rows:4 ~cols:4 ~block:64
      (Runner.Strategy (Dsm.access_tree ~arity:4 ()))
  in
  Alcotest.(check bool) "time positive" true (m.Runner.time > 0.0);
  Alcotest.(check bool) "congestion <= total" true
    (m.Runner.congestion_bytes <= m.Runner.total_bytes);
  Alcotest.(check bool) "has startups" true (m.Runner.startups > 0);
  Alcotest.(check int) "reads = P * sqrtP * 2" (16 * 4 * 2) m.Runner.dsm_reads

let test_runner_deterministic () =
  let run () =
    Runner.run_bitonic ~rows:4 ~cols:4 ~keys:32
      (Runner.Strategy (Dsm.access_tree ~arity:2 ()))
  in
  Alcotest.(check bool) "identical measurements" true (run () = run ())

let test_runner_bh_phase_sums () =
  let cfg =
    { (Barnes_hut.default_config ~nbodies:64) with Barnes_hut.steps = 3; warmup = 1 }
  in
  let r =
    Runner.run_barnes_hut ~rows:2 ~cols:2 ~cfg (Dsm.access_tree ~arity:2 ())
  in
  (* Phase times sum to the total; phase traffic sums to the total. *)
  let phases =
    [ Barnes_hut.Build; Barnes_hut.Com; Barnes_hut.Partition; Barnes_hut.Force;
      Barnes_hut.Advance; Barnes_hut.Space ]
  in
  let tsum =
    List.fold_left (fun acc ph -> acc +. (r.Runner.bh_phase ph).Runner.time) 0.0 phases
  in
  Alcotest.(check (float 1e-6)) "phase times sum" r.Runner.bh_total.Runner.time tsum;
  let msum =
    List.fold_left
      (fun acc ph -> acc + (r.Runner.bh_phase ph).Runner.total_msgs)
      0 phases
  in
  Alcotest.(check int) "phase traffic sums" r.Runner.bh_total.Runner.total_msgs msum

let test_heatmap_accounts_all_traffic () =
  let net, dsm = make_dsm ~rows:4 ~cols:4 (Dsm.access_tree ~arity:4 ()) in
  let v = Dsm.create_var dsm ~owner:0 ~size:256 0 in
  run_procs net (fun p -> ignore (Dsm.read dsm p v));
  let traffic = Heatmap.node_traffic net in
  let sum = Array.fold_left ( + ) 0 traffic in
  Alcotest.(check int) "outgoing sums to total bytes"
    (Link_stats.total_bytes (Network.stats net))
    sum

let test_heatmap_render_shape () =
  let net, dsm = make_dsm ~rows:3 ~cols:5 (Dsm.access_tree ~arity:2 ()) in
  let v = Dsm.create_var dsm ~owner:7 ~size:64 0 in
  run_procs net (fun p -> ignore (Dsm.read dsm p v));
  let s = Heatmap.render net in
  (* Header line + one line per row, each cols characters wide. *)
  let lines = String.split_on_char '\n' s in
  let grid =
    List.filter
      (fun l -> l <> "" && (not (contains l "traffic")) && not (contains l "link"))
      lines
  in
  Alcotest.(check int) "3 rows" 3 (List.length grid);
  List.iter (fun l -> Alcotest.(check int) "5 cols" 5 (String.length l)) grid

let test_heatmap_hottest_link () =
  let net, dsm = make_dsm ~rows:4 ~cols:4 Dsm.Fixed_home in
  let v = Dsm.create_var dsm ~owner:5 ~size:128 0 in
  run_procs net (fun p -> ignore (Dsm.read dsm p v));
  (match Heatmap.hottest_link ~mode:Heatmap.Bytes net with
  | None -> Alcotest.fail "traffic but no hottest link"
  | Some (link, src, dst, amount) ->
      let per_link = Link_stats.per_link_bytes (Network.stats net) in
      Array.iter
        (fun b -> Alcotest.(check bool) "is the max" true (b <= amount))
        per_link;
      Alcotest.(check int) "amount matches stats" per_link.(link) amount;
      let s, d = Diva_mesh.Mesh.link_endpoints (Network.mesh net) link in
      Alcotest.(check int) "src" s src;
      Alcotest.(check int) "dst" d dst);
  (* Message mode counts crossings, not payload. *)
  match Heatmap.hottest_link ~mode:Heatmap.Msgs net with
  | None -> Alcotest.fail "no hottest link in msgs mode"
  | Some (link, _, _, amount) ->
      Alcotest.(check int) "msgs mode reads message stats"
        (Link_stats.per_link_msgs (Network.stats net)).(link)
        amount

let test_heatmap_link_values_fold () =
  let mesh = Diva_mesh.Mesh.create_nd ~dims:[| 3; 3 |] in
  (* One unit on every directed link: each node accumulates its out-degree. *)
  let values =
    List.init (Diva_mesh.Mesh.num_links mesh) (fun l -> (l, 1.0))
  in
  let nodes = Heatmap.nodes_of_link_values mesh values in
  let total = Array.fold_left ( +. ) 0.0 nodes in
  Alcotest.(check (float 1e-9))
    "fold conserves the values"
    (float_of_int (Diva_mesh.Mesh.num_links mesh))
    total;
  let s = Heatmap.render_grid mesh ~label:"w" nodes in
  Alcotest.(check bool) "labelled" true (contains s "w (max")

(* --- bench regression gate ---------------------------------------- *)

module Gate = Diva_harness.Bench_gate
module Json = Diva_obs.Json

let doc fields = Json.Obj [ ("apps", Json.Obj fields) ]

let matmul_entry time congestion hits =
  ( "matmul",
    Json.Obj
      [ ("time_us", Json.Float time);
        ("congestion_bytes", Json.Int congestion);
        ("dsm_read_hits", Json.Int hits) ] )

let test_gate_identical_passes () =
  let d = doc [ matmul_entry 1000.0 5000 40 ] in
  let vs = Gate.compare_docs ~baseline:d ~current:d () in
  Alcotest.(check int) "no failures" 0 (List.length (Gate.failures vs));
  Alcotest.(check bool) "compared something" true (List.length vs >= 3)

let test_gate_flags_regression () =
  let baseline = doc [ matmul_entry 1000.0 5000 40 ] in
  (* 50% slower: far beyond the 10% tolerance. *)
  let current = doc [ matmul_entry 1500.0 5000 40 ] in
  let vs = Gate.compare_docs ~baseline ~current () in
  (match Gate.failures vs with
  | [ v ] ->
      Alcotest.(check bool) "names the metric" true
        (contains v.Gate.v_path "time_us");
      Alcotest.(check bool) "is a regression" true
        (v.Gate.v_status = Gate.Regressed)
  | vs -> Alcotest.failf "expected exactly one failure, got %d" (List.length vs));
  (* 50% faster is an improvement, never a failure. *)
  let current = doc [ matmul_entry 500.0 5000 40 ] in
  let vs = Gate.compare_docs ~baseline ~current () in
  Alcotest.(check int) "improvement passes" 0 (List.length (Gate.failures vs));
  Alcotest.(check bool) "reported as improved" true
    (List.exists (fun v -> v.Gate.v_status = Gate.Improved) vs)

let test_gate_direction_aware () =
  (* Fewer cache hits is worse even though the number went down. *)
  let baseline = doc [ matmul_entry 1000.0 5000 40 ] in
  let current = doc [ matmul_entry 1000.0 5000 20 ] in
  let vs = Gate.compare_docs ~baseline ~current () in
  match Gate.failures vs with
  | [ v ] ->
      Alcotest.(check bool) "hits regressed" true
        (contains v.Gate.v_path "dsm_read_hits")
  | vs -> Alcotest.failf "expected exactly one failure, got %d" (List.length vs)

let test_gate_structural_drift () =
  let baseline = doc [ matmul_entry 1000.0 5000 40 ] in
  let current =
    doc
      [ ( "matmul",
          Json.Obj
            [ ("time_us", Json.Float 1000.0);
              ("congestion_bytes", Json.Int 5000);
              ("startups", Json.Int 3) ] ) ]
  in
  let vs = Gate.compare_docs ~baseline ~current () in
  let has st path =
    List.exists
      (fun v -> v.Gate.v_status = st && contains v.Gate.v_path path)
      (Gate.failures vs)
  in
  Alcotest.(check bool) "dropped metric is MISSING" true
    (has Gate.Missing "dsm_read_hits");
  Alcotest.(check bool) "new metric is EXTRA" true (has Gate.Extra "startups");
  let r = Gate.render vs in
  Alcotest.(check bool) "render names them" true
    (contains r "MISSING" && contains r "EXTRA")

(* --- bench history ring -------------------------------------------- *)

let with_ring_dir f =
  let dir = Filename.temp_file "diva-ring" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let ring_doc time = doc [ matmul_entry time 5000 40 ]

(* Rotation past capacity: sequence numbers keep climbing, only the newest
   [keep] survive, and drift then gates against the oldest survivor. *)
let test_history_rotation () =
  with_ring_dir (fun dir ->
      for i = 1 to 13 do
        let name =
          Gate.history_append ~keep:10 ~dir
            ~label:(Printf.sprintf "c%d" i)
            (ring_doc (1000.0 +. float_of_int i))
        in
        Alcotest.(check string)
          "sequence numbering"
          (Printf.sprintf "%04d-c%d.json" i i)
          name
      done;
      let entries = Gate.history_entries dir in
      Alcotest.(check int) "pruned to keep" 10 (List.length entries);
      let oldest, _ = List.hd entries in
      Alcotest.(check string) "oldest survivor is entry 4" "0004-c4.json"
        oldest;
      match Gate.drift ~dir ~current:(ring_doc 1004.0) () with
      | Some (name, vs) ->
          Alcotest.(check string) "drift reads the oldest survivor" oldest
            name;
          Alcotest.(check int) "identical to oldest passes" 0
            (List.length (Gate.failures vs))
      | None -> Alcotest.fail "ring should not be empty")

let test_history_labels () =
  with_ring_dir (fun dir ->
      let name =
        Gate.history_append ~dir ~label:"feat/knee sweep!" (ring_doc 1.0)
      in
      Alcotest.(check string) "label sanitized into the filename"
        "0001-feat-knee-sweep-.json" name;
      let name2 = Gate.history_append ~dir ~label:"" (ring_doc 2.0) in
      Alcotest.(check string) "empty label gets a placeholder"
        "0002-run.json" name2)

(* A ring with exactly one entry must gate against that entry — the
   degenerate oldest — not report emptiness. *)
let test_history_single_entry () =
  with_ring_dir (fun dir ->
      Alcotest.(check bool) "empty ring yields None" true
        (Gate.drift ~dir ~current:(ring_doc 1000.0) () = None);
      let name = Gate.history_append ~dir ~label:"seed" (ring_doc 1000.0) in
      (match Gate.drift ~dir ~current:(ring_doc 1000.0) () with
      | Some (n, vs) ->
          Alcotest.(check string) "compares the single entry" name n;
          Alcotest.(check int) "no drift" 0 (List.length (Gate.failures vs))
      | None -> Alcotest.fail "single-entry ring must compare");
      match Gate.drift ~dir ~current:(ring_doc 1500.0) () with
      | Some (_, vs) ->
          Alcotest.(check bool) "drift past tolerance fails" true
            (Gate.failures vs <> [])
      | None -> Alcotest.fail "single-entry ring must compare")

let test_report_tables () =
  let m =
    Runner.run_matmul ~rows:4 ~cols:4 ~block:16 Runner.Hand_optimized
  in
  let m2 =
    Runner.run_matmul ~rows:4 ~cols:4 ~block:16
      (Runner.Strategy Dsm.Fixed_home)
  in
  let s =
    Report.ratio_table ~title:"T" ~param:"block" ~congestion:`Bytes
      ~rows:[ ("16", m, [ ("fh", m2) ]) ]
  in
  Alcotest.(check bool) "has header" true (contains s "fh cong");
  Alcotest.(check bool) "has title" true (contains s "T");
  let a =
    Report.absolute_table ~title:"A" ~param:"n"
      ~rows:[ ("1", [ ("s", m2) ]) ] ()
  in
  Alcotest.(check bool) "absolute has column" true (contains a "s cong(msg)")

let suite =
  [
    Alcotest.test_case "runner matmul measurements" `Quick
      test_runner_matmul_measurements;
    Alcotest.test_case "runner deterministic" `Quick test_runner_deterministic;
    Alcotest.test_case "BH phases sum to total" `Quick test_runner_bh_phase_sums;
    Alcotest.test_case "heatmap accounts all traffic" `Quick
      test_heatmap_accounts_all_traffic;
    Alcotest.test_case "heatmap render shape" `Quick test_heatmap_render_shape;
    Alcotest.test_case "heatmap hottest link" `Quick test_heatmap_hottest_link;
    Alcotest.test_case "heatmap folds link values" `Quick
      test_heatmap_link_values_fold;
    Alcotest.test_case "bench gate: identical passes" `Quick
      test_gate_identical_passes;
    Alcotest.test_case "bench gate: flags regression" `Quick
      test_gate_flags_regression;
    Alcotest.test_case "bench gate: direction aware" `Quick
      test_gate_direction_aware;
    Alcotest.test_case "history ring: rotation past capacity" `Quick
      test_history_rotation;
    Alcotest.test_case "history ring: label sanitization" `Quick
      test_history_labels;
    Alcotest.test_case "history ring: single entry gates" `Quick
      test_history_single_entry;
    Alcotest.test_case "bench gate: structural drift" `Quick
      test_gate_structural_drift;
    Alcotest.test_case "report tables" `Quick test_report_tables;
  ]
