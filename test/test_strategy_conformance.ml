(* The strategy conformance harness.

   Every entry in the strategy registry — the paper's two strategies and
   every zoo contender — is run through the same qcheck properties, so a
   newly registered strategy inherits the whole battery without writing a
   single test:

   - {e linearizable histories}: a random mixed read/write workload per
     seed, checked by the per-variable linearizability oracle;
   - {e read-your-writes under sync}: a barrier-separated writer/reader
     schedule must always observe the latest committed value;
   - {e single owner per write}: a lock-protected read-modify-write
     counter over all processors loses no increment;
   - {e copy-set sanity at quiescence}: the strategy's own [validate]
     invariants hold, and the copy set is a nonempty subset of the mesh;
   - {e deterministic replay}: the same seed reproduces the identical
     run, measured by operation counts, final values and the simulated
     clock — and enabling tracing does not perturb any of it. *)

module Network = Diva_simnet.Network
module Dsm = Diva_core.Dsm
module Registry = Diva_core.Registry
module Prng = Diva_util.Prng
module Oracle = Diva_workload.Oracle
module Trace = Diva_obs.Trace

let rows = 4
let cols = 4
let nprocs = rows * cols
let nvars = 8
let ops_per_proc = 24

type outcome = {
  finals : int array;
  reads : int;
  writes : int;
  read_hits : int;
  write_hits : int;
  makespan : float;
  ncopies : int array;
  holders : int list array;
}

(* One random mixed run: every processor walks its own deterministic
   stream of reads and writes over shared variables, with a couple of
   barriers thrown in; every completed operation is recorded in the
   oracle as a real-time interval. *)
let run_mixed ?(trace = false) ~spec ~seed () =
  let net = Network.create ~seed ~rows ~cols () in
  if trace then Network.set_trace net (Trace.create ());
  let dsm = Dsm.create net ~strategy:spec () in
  let oracle = Oracle.create () in
  let vars =
    Array.init nvars (fun i ->
        Oracle.init_var oracle ~var:i ~value:0;
        Dsm.create_var dsm ~name:(Printf.sprintf "c%d" i)
          ~owner:(i mod nprocs) ~size:32 0)
  in
  for p = 0 to nprocs - 1 do
    Network.spawn net p (fun () ->
        let rng =
          Prng.create
            ~seed:(Int64.to_int (Prng.hash2 (Int64.of_int seed) (p + 1)))
        in
        for i = 1 to ops_per_proc do
          let k = Prng.int rng nvars in
          let v = vars.(k) in
          if Prng.float rng 1.0 < 0.7 then begin
            let t0 = Network.now net in
            let x = Dsm.read dsm p v in
            Oracle.record_read oracle ~var:k ~proc:p ~value:x ~t0
              ~t1:(Network.now net)
          end
          else begin
            let value = Oracle.next_write_value oracle in
            let t0 = Network.now net in
            Dsm.write dsm p v value;
            Oracle.record_write oracle ~var:k ~proc:p ~value ~t0
              ~t1:(Network.now net)
          end;
          if i mod 12 = 0 then Dsm.barrier dsm p
        done;
        Dsm.barrier dsm p)
  done;
  Network.run net;
  let outcome =
    {
      finals = Array.map (fun v -> Dsm.peek v) vars;
      reads = Dsm.reads dsm;
      writes = Dsm.writes dsm;
      read_hits = Dsm.read_hits dsm;
      write_hits = Dsm.write_hits dsm;
      makespan = Network.now net;
      ncopies = Array.map (fun v -> Dsm.ncopies dsm v) vars;
      holders = Array.map (fun v -> Dsm.copy_holder_places dsm v) vars;
    }
  in
  (outcome, oracle, dsm, vars)

(* (1) Per-variable linearizability of random histories. *)
let prop_linearizable (name, spec) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: random histories linearize" name)
    ~count:6
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let _, oracle, _, _ = run_mixed ~spec ~seed () in
      if Oracle.ops oracle = 0 then QCheck.Test.fail_report "empty history";
      match Oracle.check oracle with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_report e)

(* (2) Read-your-writes under sync: barrier-separated rounds in which a
   rotating writer publishes and everyone must observe it. *)
let prop_read_your_writes (name, spec) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: read-your-writes under sync" name)
    ~count:4
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let net = Network.create ~seed ~rows ~cols () in
      let dsm = Dsm.create net ~strategy:spec () in
      let v = Dsm.create_var dsm ~owner:0 ~size:64 0 in
      let ok = ref true in
      for p = 0 to nprocs - 1 do
        Network.spawn net p (fun () ->
            for round = 1 to 6 do
              if round mod nprocs = p then Dsm.write dsm p v (round * 100);
              Dsm.barrier dsm p;
              if Dsm.read dsm p v <> round * 100 then ok := false;
              Dsm.barrier dsm p
            done)
      done;
      Network.run net;
      !ok)

(* (3) Single owner per write: a lock-protected counter over every
   processor loses no increment. *)
let prop_single_owner (name, spec) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: lock-protected counter is exact" name)
    ~count:4
    QCheck.(pair (int_range 0 10_000) (int_range 1 4))
    (fun (seed, incs) ->
      let net = Network.create ~seed ~rows ~cols () in
      let dsm = Dsm.create net ~strategy:spec () in
      let v = Dsm.create_var dsm ~owner:0 ~size:64 0 in
      for p = 0 to nprocs - 1 do
        Network.spawn net p (fun () ->
            for _ = 1 to incs do
              Dsm.lock dsm p v;
              Dsm.write dsm p v (Dsm.read dsm p v + 1);
              Dsm.unlock dsm p v
            done)
      done;
      Network.run net;
      Dsm.peek v = nprocs * incs)

(* (4) Copy-set sanity at quiescence: the strategy's own structural
   invariants hold for every variable, and the copy set is a nonempty
   subset of the mesh processors. *)
let prop_quiescent_invariants (name, spec) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: quiescent copy-set invariants" name)
    ~count:6
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let outcome, _, dsm, vars = run_mixed ~spec ~seed () in
      Array.iteri
        (fun i v ->
          (match Dsm.validate_var dsm v with
          | Ok () -> ()
          | Error e -> QCheck.Test.fail_reportf "validate %d: %s" i e);
          let holders = outcome.holders.(i) in
          if holders = [] then QCheck.Test.fail_reportf "var %d: no holders" i;
          if List.exists (fun p -> p < 0 || p >= nprocs) holders then
            QCheck.Test.fail_reportf "var %d: holder outside the mesh" i;
          if List.sort_uniq compare holders <> holders then
            QCheck.Test.fail_reportf "var %d: holders not sorted-unique" i;
          if outcome.ncopies.(i) < 1 then
            QCheck.Test.fail_reportf "var %d: ncopies < 1" i)
        vars;
      true)

(* (5) Deterministic replay: the same seed reproduces the identical run,
   and enabling tracing perturbs nothing. *)
let prop_deterministic (name, spec) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: seeded replay is bit-identical" name)
    ~count:4
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let o1, _, _, _ = run_mixed ~spec ~seed () in
      let o2, _, _, _ = run_mixed ~spec ~seed () in
      let o3, _, _, _ = run_mixed ~trace:true ~spec ~seed () in
      if o1 <> o2 then QCheck.Test.fail_report "replay diverged";
      if o1 <> o3 then QCheck.Test.fail_report "tracing perturbed the run";
      true)

let suite =
  List.concat_map
    (fun entry ->
      let named = (entry.Registry.name, entry.Registry.spec) in
      List.map QCheck_alcotest.to_alcotest
        [
          prop_linearizable named;
          prop_read_your_writes named;
          prop_single_owner named;
          prop_quiescent_invariants named;
          prop_deterministic named;
        ])
    Registry.entries
