(* Strategy-generic correctness tests of the data-management layer:
   coherence, serialization, locks, barriers, reductions — run against
   every access-tree variant and the fixed home strategy. *)

module Network = Diva_simnet.Network
module Dsm = Diva_core.Dsm
module Access_tree = Diva_core.Access_tree
module Deco = Diva_mesh.Decomposition
open Helpers

let for_all_strategies f =
  List.iter (fun (name, strat) -> f name strat) strategies

let test_read_initial_value () =
  for_all_strategies (fun name strat ->
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let v = Dsm.create_var dsm ~owner:5 ~size:64 "hello" in
      let results = Array.make 16 "" in
      run_procs net (fun p -> results.(p) <- Dsm.read dsm p v);
      Array.iteri
        (fun p r ->
          Alcotest.(check string) (Printf.sprintf "%s: proc %d" name p) "hello" r)
        results)

let test_write_then_read () =
  for_all_strategies (fun name strat ->
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let v = Dsm.create_var dsm ~owner:0 ~size:64 0 in
      run_procs net (fun p ->
          if p = 3 then Dsm.write dsm p v 42;
          Dsm.barrier dsm p;
          let x = Dsm.read dsm p v in
          Alcotest.(check int) (name ^ ": sees write") 42 x);
      Alcotest.(check int) (name ^ ": final value") 42 (Dsm.peek v))

let test_read_own_write () =
  for_all_strategies (fun name strat ->
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let vars = Array.init 16 (fun p -> Dsm.create_var dsm ~owner:p ~size:32 0) in
      run_procs net (fun p ->
          for i = 1 to 10 do
            Dsm.write dsm p vars.(p) i;
            let x = Dsm.read dsm p vars.(p) in
            Alcotest.(check int) (name ^ ": read own write") i x
          done))

let test_invalidation () =
  (* After p writes, every other processor's cached copy is stale and a
     subsequent read returns the new value. *)
  for_all_strategies (fun name strat ->
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let v = Dsm.create_var dsm ~owner:0 ~size:128 0 in
      run_procs net (fun p ->
          (* Round 1: everyone caches the initial value. *)
          let x0 = Dsm.read dsm p v in
          Alcotest.(check int) (name ^ ": initial") 0 x0;
          Dsm.barrier dsm p;
          (* Round 2: processor 7 writes. *)
          if p = 7 then Dsm.write dsm p v 99;
          Dsm.barrier dsm p;
          let x1 = Dsm.read dsm p v in
          Alcotest.(check int) (name ^ ": after invalidation") 99 x1))

let test_ncopies_shrinks_on_write () =
  for_all_strategies (fun name strat ->
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let v = Dsm.create_var dsm ~owner:0 ~size:128 0 in
      run_procs net (fun p ->
          (* Read twice: adaptive replication grants a replica only after a
             streak of misses; for every other strategy the second read is
             a local hit. *)
          ignore (Dsm.read dsm p v);
          ignore (Dsm.read dsm p v);
          Dsm.barrier dsm p;
          if p = 0 then begin
            Alcotest.(check bool)
              (name ^ ": many copies after broadcast read") true
              (Dsm.ncopies dsm v > 1);
            Dsm.write dsm p v 1
          end;
          Dsm.barrier dsm p);
      (* After the write, only the writer-side copies remain; every
         processor's own leaf except the writer's lost its copy. *)
      let holders = Dsm.copy_holder_places dsm v in
      Alcotest.(check bool) (name ^ ": writer holds a copy") true
        (List.mem 0 holders))

let test_alternating_writers () =
  for_all_strategies (fun name strat ->
      let net, dsm = make_dsm ~rows:2 ~cols:2 strat in
      let v = Dsm.create_var dsm ~owner:0 ~size:64 0 in
      run_procs net (fun p ->
          for round = 0 to 7 do
            if round mod 4 = p then Dsm.write dsm p v ((round * 10) + p);
            Dsm.barrier dsm p;
            let x = Dsm.read dsm p v in
            Alcotest.(check int)
              (Printf.sprintf "%s: round %d at %d" name round p)
              ((round * 10) + (round mod 4))
              x;
            Dsm.barrier dsm p
          done))

let test_lock_mutual_exclusion () =
  for_all_strategies (fun name strat ->
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let v = Dsm.create_var dsm ~owner:0 ~size:16 0 in
      let inside = ref 0 and max_inside = ref 0 in
      run_procs net (fun p ->
          for _ = 1 to 3 do
            Dsm.lock dsm p v;
            incr inside;
            max_inside := max !max_inside !inside;
            let x = Dsm.read dsm p v in
            Network.compute net p 50.0;
            Dsm.write dsm p v (x + 1);
            decr inside;
            Dsm.unlock dsm p v
          done);
      Alcotest.(check int) (name ^ ": critical sections exclusive") 1 !max_inside;
      Alcotest.(check int) (name ^ ": counter") 48 (Dsm.peek v))

let test_lock_many_vars () =
  for_all_strategies (fun name strat ->
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let vars = Array.init 8 (fun i -> Dsm.create_var dsm ~owner:i ~size:16 0) in
      run_procs net (fun p ->
          for i = 0 to 7 do
            let v = vars.((p + i) mod 8) in
            Dsm.lock dsm p v;
            let x = Dsm.read dsm p v in
            Dsm.write dsm p v (x + 1);
            Dsm.unlock dsm p v
          done);
      Array.iteri
        (fun i v ->
          Alcotest.(check int) (Printf.sprintf "%s: var %d" name i) 16 (Dsm.peek v))
        vars)

let test_barrier_separates_rounds () =
  for_all_strategies (fun name strat ->
      let net, dsm = make_dsm ~rows:4 ~cols:2 strat in
      let nprocs = Dsm.num_procs dsm in
      let round_of = Array.make nprocs 0 in
      run_procs net (fun p ->
          for r = 1 to 5 do
            (* Everyone must still be in the same round at the barrier. *)
            Array.iter
              (fun other ->
                Alcotest.(check bool) (name ^ ": round skew <= 1") true
                  (abs (other - round_of.(p)) <= 1))
              round_of;
            round_of.(p) <- r;
            Network.compute net p (float_of_int ((p * 37 mod 11) * 100));
            Dsm.barrier dsm p
          done);
      Array.iter (fun r -> Alcotest.(check int) (name ^ ": all finished") 5 r) round_of)

let test_reduce () =
  for_all_strategies (fun name strat ->
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let r = Dsm.reducer dsm ~combine:( + ) ~size:8 in
      let results = Array.make 16 0 in
      run_procs net (fun p -> results.(p) <- Dsm.reduce dsm p r (p + 1));
      Array.iteri
        (fun p x ->
          Alcotest.(check int) (Printf.sprintf "%s: proc %d" name p) 136 x)
        results)

let test_reduce_minmax () =
  for_all_strategies (fun name strat ->
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let combine (a, b) (c, d) = (min a c, max b d) in
      let r = Dsm.reducer dsm ~combine ~size:16 in
      let results = Array.make 16 (0, 0) in
      run_procs net (fun p -> results.(p) <- Dsm.reduce dsm p r (p, p));
      Array.iter
        (fun x -> Alcotest.(check (pair int int)) (name ^ ": minmax") (0, 15) x)
        results)

let test_dynamic_var_creation () =
  for_all_strategies (fun name strat ->
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let cell = ref None in
      run_procs net (fun p ->
          if p = 9 then cell := Some (Dsm.create_var dsm ~owner:9 ~size:64 1234);
          Dsm.barrier dsm p;
          match !cell with
          | Some v ->
              let x = Dsm.read dsm p v in
              Alcotest.(check int) (name ^ ": dynamic var") 1234 x
          | None -> Alcotest.fail "variable not created"))

let test_mixed_types () =
  for_all_strategies (fun name strat ->
      let net, dsm = make_dsm ~rows:2 ~cols:2 strat in
      let vi = Dsm.create_var dsm ~owner:0 ~size:8 17
      and vs = Dsm.create_var dsm ~owner:1 ~size:8 "s"
      and vf = Dsm.create_var dsm ~owner:2 ~size:8 1.5 in
      run_procs net (fun p ->
          Alcotest.(check int) (name ^ ": int") 17 (Dsm.read dsm p vi);
          Alcotest.(check string) (name ^ ": string") "s" (Dsm.read dsm p vs);
          Alcotest.(check (float 0.0)) (name ^ ": float") 1.5 (Dsm.read dsm p vf)))

let test_counters () =
  let net, dsm = make_dsm ~rows:4 ~cols:4 (Dsm.access_tree ~arity:4 ()) in
  let v = Dsm.create_var dsm ~owner:0 ~size:64 0 in
  run_procs net (fun p ->
      ignore (Dsm.read dsm p v);
      ignore (Dsm.read dsm p v));
  Alcotest.(check int) "reads counted" 32 (Dsm.reads dsm);
  (* The second read of each processor must be a cache hit; so is the first
     read of the owner. *)
  Alcotest.(check int) "hits" 17 (Dsm.read_hits dsm);
  Alcotest.(check int) "no writes" 0 (Dsm.writes dsm)

let test_non_power_of_two_mesh () =
  for_all_strategies (fun name strat ->
      let net, dsm = make_dsm ~rows:3 ~cols:5 strat in
      let v = Dsm.create_var dsm ~owner:14 ~size:64 0 in
      run_procs net (fun p ->
          if p = 2 then Dsm.write dsm p v 5;
          Dsm.barrier dsm p;
          Alcotest.(check int) (name ^ ": 3x5 mesh") 5 (Dsm.read dsm p v)))

let test_single_node_mesh () =
  for_all_strategies (fun name strat ->
      let net, dsm = make_dsm ~rows:1 ~cols:1 strat in
      let v = Dsm.create_var dsm ~owner:0 ~size:64 0 in
      run_procs net (fun p ->
          Dsm.write dsm p v 7;
          Dsm.barrier dsm p;
          Alcotest.(check int) (name ^ ": 1x1 mesh") 7 (Dsm.read dsm p v)))

(* Randomized linearizability-style check: procs perform random reads and
   writes on a handful of variables with barriers between rounds; within a
   round at most one processor writes each variable, so after the barrier
   everyone must read the last-written value. *)
let test_random_schedule () =
  for_all_strategies (fun name strat ->
      let rng = Diva_util.Prng.create ~seed:99 in
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let nvars = 5 in
      let vars = Array.init nvars (fun i -> Dsm.create_var dsm ~owner:i ~size:32 0) in
      let reference = Array.make nvars 0 in
      let rounds = 12 in
      (* Pre-draw the schedule: writer per var per round (or none). *)
      let schedule =
        Array.init rounds (fun _ ->
            Array.init nvars (fun _ ->
                let w = Diva_util.Prng.int rng 20 in
                if w < 16 then Some w else None))
      in
      run_procs net (fun p ->
          for r = 0 to rounds - 1 do
            Array.iteri
              (fun i writer ->
                match writer with
                | Some w when w = p -> Dsm.write dsm p vars.(i) ((r * 100) + i)
                | _ -> ())
              schedule.(r);
            Dsm.barrier dsm p;
            (* Every proc reads a couple of random-ish vars. *)
            let i = (p + r) mod nvars in
            let expect =
              match schedule.(r).(i) with
              | Some _ -> (r * 100) + i
              | None -> reference.(i)
            in
            let got = Dsm.read dsm p vars.(i) in
            Alcotest.(check int)
              (Printf.sprintf "%s: round %d proc %d var %d" name r p i)
              expect got;
            Dsm.barrier dsm p;
            if p = 0 then
              Array.iteri
                (fun i w ->
                  match w with Some _ -> reference.(i) <- (r * 100) + i | None -> ())
              schedule.(r);
            Dsm.barrier dsm p
          done))

let suite =
  [
    Alcotest.test_case "read initial value" `Quick test_read_initial_value;
    Alcotest.test_case "write then read" `Quick test_write_then_read;
    Alcotest.test_case "read own write" `Quick test_read_own_write;
    Alcotest.test_case "invalidation" `Quick test_invalidation;
    Alcotest.test_case "copies shrink on write" `Quick test_ncopies_shrinks_on_write;
    Alcotest.test_case "alternating writers" `Quick test_alternating_writers;
    Alcotest.test_case "lock mutual exclusion" `Quick test_lock_mutual_exclusion;
    Alcotest.test_case "locks on many vars" `Quick test_lock_many_vars;
    Alcotest.test_case "barrier separates rounds" `Quick test_barrier_separates_rounds;
    Alcotest.test_case "reduce sum" `Quick test_reduce;
    Alcotest.test_case "reduce minmax" `Quick test_reduce_minmax;
    Alcotest.test_case "dynamic var creation" `Quick test_dynamic_var_creation;
    Alcotest.test_case "mixed value types" `Quick test_mixed_types;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "non-power-of-two mesh" `Quick test_non_power_of_two_mesh;
    Alcotest.test_case "single node mesh" `Quick test_single_node_mesh;
    Alcotest.test_case "random schedule coherence" `Quick test_random_schedule;
  ]
