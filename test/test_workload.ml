(* Workload engine: synthetic generator determinism, trace
   record/round-trip/replay fidelity, sampler distributions, spec
   validation. *)

module Runner = Diva_harness.Runner
module Trace = Diva_obs.Trace
module Spec = Diva_workload.Spec
module Sampler = Diva_workload.Sampler
module Generator = Diva_workload.Generator
module Dsm_trace = Diva_workload.Dsm_trace
module Replay = Diva_workload.Replay
module Latency = Diva_workload.Latency
module Prng = Diva_util.Prng

let strategy_4ary = Diva_core.Dsm.access_tree ~arity:4 ()

let small_spec =
  Spec.make ~num_vars:64 ~var_size:32
    ~phases:[ Spec.phase ~read_ratio:0.8 60 ]
    ~barrier_every:20 ~lock_every:15 ~seed:5 ()

let traced_obs () =
  let tr = Trace.create () in
  (tr, { Runner.null_obs with Runner.obs_trace = tr })

let check_meas name (a : Runner.measurements) (b : Runner.measurements) =
  Alcotest.(check int) (name ^ ": total msgs") a.Runner.total_msgs b.Runner.total_msgs;
  Alcotest.(check int) (name ^ ": total bytes") a.Runner.total_bytes b.Runner.total_bytes;
  Alcotest.(check int) (name ^ ": congestion msgs") a.Runner.congestion_msgs
    b.Runner.congestion_msgs;
  Alcotest.(check int) (name ^ ": congestion bytes") a.Runner.congestion_bytes
    b.Runner.congestion_bytes;
  Alcotest.(check (float 0.0)) (name ^ ": time") a.Runner.time b.Runner.time;
  Alcotest.(check int) (name ^ ": startups") a.Runner.startups b.Runner.startups

(* Same workload spec + seed => identical trace, twice. *)
let test_generator_determinism () =
  let capture () =
    let sink, obs = traced_obs () in
    let r = Generator.run ~obs ~dims:[| 4; 4 |] ~strategy:strategy_4ary small_spec in
    let t =
      Dsm_trace.of_events ~dims:[| 4; 4 |] ~seed:Spec.(small_spec.seed)
        (Trace.events sink)
    in
    (r, Dsm_trace.to_string t)
  in
  let r1, t1 = capture () in
  let r2, t2 = capture () in
  check_meas "rerun" r1.Generator.measurements r2.Generator.measurements;
  Alcotest.(check string) "identical serialized trace" t1 t2;
  Alcotest.(check bool) "trace is non-trivial" true (String.length t1 > 1000)

(* The generator issues exactly the configured number of data ops. *)
let test_generator_op_count () =
  let sink, obs = traced_obs () in
  ignore
    (Generator.run ~obs ~dims:[| 4; 4 |] ~strategy:strategy_4ary small_spec
      : Generator.result);
  let t = Dsm_trace.of_events ~dims:[| 4; 4 |] ~seed:0 (Trace.events sink) in
  let data_ops =
    List.length
      (List.filter
         (fun (o : Dsm_trace.op) ->
           match o.Dsm_trace.o_op with
           | Trace.Read | Trace.Write -> true
           | _ -> false)
         t.Dsm_trace.ops)
  in
  (* 16 procs x 60 ops; lock/unlock/barriers come on top. *)
  Alcotest.(check int) "data ops" (16 * 60) data_ops;
  let locks =
    List.length
      (List.filter
         (fun (o : Dsm_trace.op) -> o.Dsm_trace.o_op = Trace.Lock)
         t.Dsm_trace.ops)
  in
  Alcotest.(check int) "locks (every 15th of 60)" (16 * 4) locks

(* Capturing a matmul run and replaying it closed-loop under the same
   strategy and seed reproduces the original Link_stats totals exactly. *)
let replay_roundtrip strategy =
  let sink, obs = traced_obs () in
  let m0 =
    Runner.run_matmul ~seed:17 ~obs ~rows:4 ~cols:4 ~block:64
      (Runner.Strategy strategy)
  in
  let t = Dsm_trace.of_events ~dims:[| 4; 4 |] ~seed:17 (Trace.events sink) in
  Alcotest.(check int) "all vars declared" 16 (List.length t.Dsm_trace.decls);
  let r = Replay.run ~mode:Replay.Closed_loop ~strategy t in
  check_meas "replay" m0 r.Generator.measurements

let test_replay_matmul_4ary () = replay_roundtrip strategy_4ary
let test_replay_matmul_fixed_home () = replay_roundtrip Diva_core.Dsm.Fixed_home

(* Replay of a synthetic workload is also exact: the generator's fibers do
   no untraced work, so the closed-loop replay is the same program. *)
let test_replay_synthetic () =
  let sink, obs = traced_obs () in
  let r0 = Generator.run ~obs ~dims:[| 4; 4 |] ~strategy:strategy_4ary small_spec in
  let t =
    Dsm_trace.of_events ~dims:[| 4; 4 |] ~seed:Spec.(small_spec.seed)
      (Trace.events sink)
  in
  let r = Replay.run ~strategy:strategy_4ary t in
  check_meas "synthetic replay" r0.Generator.measurements r.Generator.measurements;
  Alcotest.(check int) "same op count" r0.Generator.latency.Latency.ops
    r.Generator.latency.Latency.ops

(* Open-loop replay re-inserts recorded gaps: replaying a think-heavy
   workload open-loop takes at least as long as closed-loop. *)
let test_open_loop_slower () =
  let spec =
    Spec.make ~num_vars:32 ~phases:[ Spec.phase ~think:50.0 30 ] ~seed:7 ()
  in
  let sink, obs = traced_obs () in
  ignore
    (Generator.run ~obs ~dims:[| 2; 2 |] ~strategy:strategy_4ary spec
      : Generator.result);
  let t = Dsm_trace.of_events ~dims:[| 2; 2 |] ~seed:7 (Trace.events sink) in
  let closed = Replay.run ~mode:Replay.Closed_loop ~strategy:strategy_4ary t in
  let open_ = Replay.run ~mode:Replay.Open_loop ~strategy:strategy_4ary t in
  Alcotest.(check bool)
    (Printf.sprintf "open (%.0f us) > closed (%.0f us)"
       open_.Generator.measurements.Runner.time
       closed.Generator.measurements.Runner.time)
    true
    (open_.Generator.measurements.Runner.time
    > closed.Generator.measurements.Runner.time);
  (* And the open-loop run is at least as long as the recording. *)
  Alcotest.(check bool) "open >= recorded duration" true
    (open_.Generator.measurements.Runner.time
    >= List.fold_left
         (fun acc (o : Dsm_trace.op) -> Float.max acc o.Dsm_trace.o_ts)
         0.0 t.Dsm_trace.ops)

(* Serialization round-trips through text and through a file. *)
let test_trace_roundtrip () =
  let sink, obs = traced_obs () in
  ignore
    (Generator.run ~obs ~dims:[| 2; 2 |] ~strategy:strategy_4ary small_spec
      : Generator.result);
  let t =
    Dsm_trace.of_events ~dims:[| 2; 2 |] ~seed:5
      ~meta:[ ("app", "workload"); ("strategy", "4-ary") ]
      (Trace.events sink)
  in
  let s = Dsm_trace.to_string t in
  (match Dsm_trace.of_string s with
  | Error e -> Alcotest.fail e
  | Ok t' ->
      Alcotest.(check string) "text round-trip" s (Dsm_trace.to_string t');
      Alcotest.(check (list (pair string string))) "meta" t.Dsm_trace.meta
        t'.Dsm_trace.meta;
      Alcotest.(check int) "ops" (List.length t.Dsm_trace.ops)
        (List.length t'.Dsm_trace.ops));
  let path = Filename.temp_file "diva_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dsm_trace.write path t;
      (match Dsm_trace.probe path with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("probe: " ^ e));
      match Dsm_trace.read path with
      | Error e -> Alcotest.fail e
      | Ok t' ->
          Alcotest.(check string) "file round-trip" s (Dsm_trace.to_string t'))

let test_trace_errors () =
  let fails = function
    | Error (_ : string) -> ()
    | Ok (_ : Dsm_trace.t) -> Alcotest.fail "expected an error"
  in
  fails (Dsm_trace.of_string "");
  fails (Dsm_trace.of_string "{\"format\":\"something-else\",\"version\":1}");
  fails
    (Dsm_trace.of_string
       "{\"format\":\"diva-dsm-trace\",\"version\":99,\"dims\":[2,2],\"seed\":1}");
  fails (Dsm_trace.of_string "not json at all");
  (match
     Dsm_trace.of_string
       "{\"format\":\"diva-dsm-trace\",\"version\":99,\"dims\":[2,2],\"seed\":1}"
   with
  | Error e ->
      Alcotest.(check bool) "version error names the version" true
        (String.contains e '9')
  | Ok _ -> Alcotest.fail "expected version error");
  match Dsm_trace.probe "/nonexistent/trace.jsonl" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "probe of missing file succeeded"

(* Zipf sampling: rank-0 keys dominate more as the exponent grows; uniform
   sampling covers the key space evenly. *)
let sample_counts spec dims draws =
  let mesh = Diva_mesh.Mesh.create_nd ~dims in
  let sampler = Sampler.create mesh spec in
  let rng = Prng.create ~seed:99 in
  let counts = Array.make Spec.(spec.num_vars) 0 in
  for _ = 1 to draws do
    let k = Sampler.draw sampler ~proc:0 rng in
    counts.(k) <- counts.(k) + 1
  done;
  counts

let test_sampler_zipf_skew () =
  let n = 100 and draws = 20_000 in
  let top_share skew =
    let spec = Spec.make ~num_vars:n ~popularity:(Spec.Zipf skew) () in
    let counts = sample_counts spec [| 2; 2 |] draws in
    float_of_int counts.(0) /. float_of_int draws
  in
  let s0 = top_share 0.0 and s09 = top_share 0.9 and s12 = top_share 1.2 in
  Alcotest.(check bool)
    (Printf.sprintf "zipf 0 ~ uniform (top %.3f)" s0)
    true
    (s0 < 0.03);
  Alcotest.(check bool)
    (Printf.sprintf "skew monotone (%.3f < %.3f < %.3f)" s0 s09 s12)
    true
    (s0 < s09 && s09 < s12);
  Alcotest.(check bool) "zipf 1.2 is heavily skewed" true (s12 > 0.15)

let test_sampler_hot_cold () =
  let n = 100 in
  let spec =
    Spec.make ~num_vars:n
      ~popularity:(Spec.Hot_cold { hot_fraction = 0.1; hot_weight = 0.9 })
      ()
  in
  let counts = sample_counts spec [| 2; 2 |] 20_000 in
  let hot = Array.fold_left ( + ) 0 (Array.sub counts 0 10) in
  let share = float_of_int hot /. 20_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "hot 10%% of keys draw ~90%% of accesses (got %.2f)" share)
    true
    (share > 0.85 && share < 0.95)

let test_sampler_locality () =
  let dims = [| 4; 4 |] in
  let mesh = Diva_mesh.Mesh.create_nd ~dims in
  let procs = 16 in
  let spec = Spec.make ~num_vars:64 ~locality:Spec.Proc_local () in
  let sampler = Sampler.create mesh spec in
  let rng = Prng.create ~seed:3 in
  for p = 0 to procs - 1 do
    for _ = 1 to 50 do
      let k = Sampler.draw sampler ~proc:p rng in
      Alcotest.(check int) "local key homed on proc" p (k mod procs)
    done
  done;
  let spec = Spec.make ~num_vars:64 ~locality:(Spec.Submesh 1) () in
  let sampler = Sampler.create mesh spec in
  for p = 0 to procs - 1 do
    for _ = 1 to 50 do
      let k = Sampler.draw sampler ~proc:p rng in
      Alcotest.(check bool) "submesh key within radius" true
        (Diva_mesh.Mesh.distance mesh p (k mod procs) <= 1)
    done
  done;
  (* Too few keys for Proc_local on 16 procs: clear error. *)
  match
    Sampler.create mesh (Spec.make ~num_vars:8 ~locality:Spec.Proc_local ())
  with
  | exception Invalid_argument _ -> ()
  | (_ : Sampler.t) -> Alcotest.fail "empty candidate set not rejected"

(* The linear-time construction must produce exactly the right candidate
   set: every key homed inside the Manhattan ball and no other. Uniform
   popularity plus enough draws makes the set fully observable. *)
let test_sampler_candidate_sets () =
  let dims = [| 4; 4; 4 |] in
  let mesh = Diva_mesh.Mesh.create_nd ~dims in
  let procs = 64 in
  let num_vars = 256 in
  let r = 1 in
  let sampler =
    Sampler.create mesh (Spec.make ~num_vars ~locality:(Spec.Submesh r) ())
  in
  let rng = Prng.create ~seed:11 in
  for p = 0 to procs - 1 do
    let expected = Hashtbl.create 32 in
    for k = 0 to num_vars - 1 do
      if Diva_mesh.Mesh.distance mesh p (k mod procs) <= r then
        Hashtbl.replace expected k ()
    done;
    let seen = Hashtbl.create 32 in
    for _ = 1 to 2_000 do
      let k = Sampler.draw sampler ~proc:p rng in
      if not (Hashtbl.mem expected k) then
        Alcotest.failf "proc %d drew key %d homed outside radius %d" p k r;
      Hashtbl.replace seen k ()
    done;
    Alcotest.(check int) "uniform draws cover the whole candidate set"
      (Hashtbl.length expected) (Hashtbl.length seen)
  done;
  (* Construction stays cheap at sizes where the old per-proc scan over
     every key would hurt; draws remain correctly homed. *)
  let mesh8 = Diva_mesh.Mesh.create_nd ~dims:[| 8; 8 |] in
  let big =
    Sampler.create mesh8
      (Spec.make ~num_vars:50_000 ~locality:Spec.Proc_local ())
  in
  for p = 0 to 63 do
    let k = Sampler.draw big ~proc:p rng in
    Alcotest.(check int) "big sampler keeps keys home" p (k mod 64)
  done

let test_spec_validation () =
  let bad spec =
    match Spec.validate spec with
    | Error (_ : string) -> ()
    | Ok () -> Alcotest.fail "invalid spec accepted"
  in
  (match Spec.validate (Spec.make ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("default spec rejected: " ^ e));
  bad (Spec.make ~num_vars:0 ());
  bad (Spec.make ~var_size:0 ());
  bad (Spec.make ~popularity:(Spec.Zipf (-1.0)) ());
  bad (Spec.make ~popularity:(Spec.Zipf Float.nan) ());
  bad
    (Spec.make
       ~popularity:(Spec.Hot_cold { hot_fraction = 1.5; hot_weight = 0.5 })
       ());
  bad (Spec.make ~locality:(Spec.Submesh 0) ());
  bad (Spec.make ~phases:[] ());
  bad (Spec.make ~phases:[ Spec.phase ~read_ratio:1.5 10 ] ());
  bad (Spec.make ~phases:[ Spec.phase ~think:(-1.0) 10 ] ());
  bad (Spec.make ~phases:[ Spec.phase ~burst:(0, 10.0) 10 ] ())

(* The latency report is consistent with the run it measures. *)
let test_latency_report () =
  let r = Generator.run ~dims:[| 4; 4 |] ~strategy:strategy_4ary small_spec in
  let l = r.Generator.latency in
  Alcotest.(check int) "every data op sampled" (16 * 60) l.Latency.ops;
  Alcotest.(check bool) "percentiles ordered" true
    (l.Latency.p50 <= l.Latency.p95
    && l.Latency.p95 <= l.Latency.p99
    && l.Latency.p99 <= l.Latency.max);
  Alcotest.(check bool) "max latency below run time" true
    (l.Latency.max <= r.Generator.measurements.Runner.time);
  Alcotest.(check bool) "throughput positive" true (Latency.ops_per_sec l > 0.0);
  let fields = Latency.to_fields l in
  Alcotest.(check bool) "fields carry p99" true
    (List.mem_assoc "lat_p99_us" fields)

(* Golden-trace regression: the committed JSONL trace in test/data must be
   reproduced byte for byte by today's generator, and replay it
   deterministically. Regenerate with
     divasim workload --mesh 4x4 --strategy 4-ary --vars 32 --var-size 32 \
       --ops 40 --read-ratio 0.8 --lock-every 8 --seed 11 --record FILE
   if an intentional behaviour change invalidates it. *)
let golden_path = "data/golden_workload_4x4.jsonl"

let test_golden_trace () =
  let golden = In_channel.with_open_bin golden_path In_channel.input_all in
  let spec =
    Spec.make ~num_vars:32 ~var_size:32 ~lock_every:8
      ~phases:[ Spec.phase ~read_ratio:0.8 40 ]
      ~seed:11 ()
  in
  let sink, obs = traced_obs () in
  ignore
    (Generator.run ~obs ~dims:[| 4; 4 |] ~strategy:strategy_4ary spec
      : Generator.result);
  let t =
    Dsm_trace.of_events ~dims:[| 4; 4 |] ~seed:11
      ~meta:
        [ ("app", "workload");
          ("strategy", Diva_core.Dsm.strategy_name strategy_4ary) ]
      (Trace.events sink)
  in
  Alcotest.(check string) "regenerated trace matches the committed golden"
    golden (Dsm_trace.to_string t);
  let tr =
    match Dsm_trace.read golden_path with
    | Ok t -> t
    | Error e -> Alcotest.failf "cannot read golden trace: %s" e
  in
  let replay () =
    (Replay.run ~strategy:strategy_4ary tr).Generator.measurements
  in
  check_meas "golden replay deterministic" (replay ()) (replay ())

let suite =
  [
    Alcotest.test_case "generator determinism (trace twice)" `Quick
      test_generator_determinism;
    Alcotest.test_case "golden trace regression" `Quick test_golden_trace;
    Alcotest.test_case "generator op counts" `Quick test_generator_op_count;
    Alcotest.test_case "matmul record/replay bit-for-bit (4-ary)" `Quick
      test_replay_matmul_4ary;
    Alcotest.test_case "matmul record/replay bit-for-bit (fixed home)" `Quick
      test_replay_matmul_fixed_home;
    Alcotest.test_case "synthetic record/replay bit-for-bit" `Quick
      test_replay_synthetic;
    Alcotest.test_case "open-loop honours recorded gaps" `Quick
      test_open_loop_slower;
    Alcotest.test_case "trace round-trip (text + file)" `Quick
      test_trace_roundtrip;
    Alcotest.test_case "trace error reporting" `Quick test_trace_errors;
    Alcotest.test_case "sampler zipf skew" `Quick test_sampler_zipf_skew;
    Alcotest.test_case "sampler hot-cold" `Quick test_sampler_hot_cold;
    Alcotest.test_case "sampler locality" `Quick test_sampler_locality;
    Alcotest.test_case "sampler candidate sets" `Quick
      test_sampler_candidate_sets;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "latency report" `Quick test_latency_report;
  ]
