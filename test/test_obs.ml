(* Observability layer: trace aggregation consistency, zero-perturbation,
   exporter well-formedness. *)

module Runner = Diva_harness.Runner
module Trace = Diva_obs.Trace
module Metrics = Diva_obs.Metrics
module Json = Diva_obs.Json

let strategy = Diva_core.Dsm.access_tree ~arity:4 ()

let run_matmul ?(obs = Runner.null_obs) () =
  Runner.run_matmul ~rows:4 ~cols:4 ~block:64 ~obs (Runner.Strategy strategy)

let traced_run () =
  let tr = Trace.create () in
  let m =
    run_matmul
      ~obs:{ Runner.null_obs with Runner.obs_trace = tr }
      ()
  in
  (tr, m)

(* (a) Per-link aggregation of Link_xfer events must reproduce the
   Link_stats counters exactly: the network emits exactly one event per
   link crossing. *)
let test_link_aggregation () =
  let tr, (m : Runner.measurements) = traced_run () in
  let msgs = Hashtbl.create 64 and bytes = Hashtbl.create 64 in
  let bump tbl k v =
    Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  List.iter
    (function
      | Trace.Link_xfer { link; size; _ } ->
          bump msgs link 1;
          bump bytes link size
      | _ -> ())
    (Trace.events tr);
  let max_of tbl = Hashtbl.fold (fun _ v acc -> max v acc) tbl 0 in
  let sum_of tbl = Hashtbl.fold (fun _ v acc -> v + acc) tbl 0 in
  Alcotest.(check int) "congestion msgs" m.Runner.congestion_msgs (max_of msgs);
  Alcotest.(check int) "congestion bytes" m.Runner.congestion_bytes
    (max_of bytes);
  Alcotest.(check int) "total msgs" m.Runner.total_msgs (sum_of msgs);
  Alcotest.(check int) "total bytes" m.Runner.total_bytes (sum_of bytes)

(* DSM access events must agree with the DSM's own operation counters. *)
let test_dsm_events () =
  let tr, (m : Runner.measurements) = traced_run () in
  let reads = ref 0 and hits = ref 0 and copies = ref 0 in
  List.iter
    (function
      | Trace.Dsm_access { op = Trace.Read; hit; _ } ->
          incr reads;
          if hit then incr hits
      | Trace.Copy_add _ -> incr copies
      | _ -> ())
    (Trace.events tr);
  Alcotest.(check int) "read events" m.Runner.dsm_reads !reads;
  Alcotest.(check int) "read hits" m.Runner.dsm_read_hits !hits;
  Alcotest.(check bool) "copies migrate" true (!copies > 0)

(* (b) Tracing and metrics sampling must not perturb the simulation. *)
let test_zero_perturbation () =
  let plain = run_matmul () in
  let metrics = Metrics.create () in
  let tr = Trace.create () in
  let obs =
    { Runner.null_obs with
      Runner.obs_trace = tr;
      obs_metrics = Some metrics;
      obs_sample_interval = 100.0 }
  in
  let instrumented = run_matmul ~obs () in
  Alcotest.(check (float 0.0)) "time" plain.Runner.time
    instrumented.Runner.time;
  Alcotest.(check int) "congestion bytes" plain.Runner.congestion_bytes
    instrumented.Runner.congestion_bytes;
  Alcotest.(check int) "congestion msgs" plain.Runner.congestion_msgs
    instrumented.Runner.congestion_msgs;
  Alcotest.(check int) "total msgs" plain.Runner.total_msgs
    instrumented.Runner.total_msgs;
  Alcotest.(check int) "startups" plain.Runner.startups
    instrumented.Runner.startups;
  Alcotest.(check (float 0.0)) "max compute" plain.Runner.max_compute
    instrumented.Runner.max_compute;
  Alcotest.(check bool) "sampled" true (Metrics.num_rows metrics > 0)

(* Structural JSON scanner: balanced delimiters outside strings, complete
   escapes. Not a parser, but catches any quoting/nesting bug the writer
   could produce. *)
let structurally_valid_json s =
  let depth = ref 0 and in_str = ref false and esc = ref false in
  let ok = ref true in
  String.iter
    (fun c ->
      if !in_str then
        if !esc then esc := false
        else if c = '\\' then esc := true
        else if c = '"' then in_str := false
        else ()
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && (not !in_str) && not !esc

let ts_values s =
  let key = "\"ts\":" in
  let kl = String.length key and n = String.length s in
  let res = ref [] and i = ref 0 in
  while !i + kl <= n do
    if String.sub s !i kl = key then begin
      let j = ref (!i + kl) in
      let start = !j in
      while
        !j < n
        && (match s.[!j] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr j
      done;
      res := float_of_string (String.sub s start (!j - start)) :: !res;
      i := !j
    end
    else incr i
  done;
  List.rev !res

(* (c) The Chrome trace export is well-formed and timestamps are emitted in
   monotone (non-decreasing) order. *)
let test_chrome_export () =
  let tr, _ = traced_run () in
  let s =
    Diva_obs.Chrome_trace.to_string ~num_nodes:16
      ~metadata:[ ("note", Json.String "test \"escape\" \n check") ]
      (Trace.events tr)
  in
  Alcotest.(check bool) "structurally valid" true (structurally_valid_json s);
  let ts = ts_values s in
  Alcotest.(check bool) "has events" true (List.length ts > 100);
  let monotone =
    let rec go = function
      | a :: (b :: _ as rest) -> a <= b && go rest
      | _ -> true
    in
    go ts
  in
  Alcotest.(check bool) "monotone timestamps" true monotone

let test_metrics_csv () =
  let metrics = Metrics.create () in
  let obs =
    { Runner.null_obs with Runner.obs_metrics = Some metrics;
      obs_sample_interval = 500.0 }
  in
  let m = run_matmul ~obs () in
  let csv = Metrics.to_csv metrics in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (match lines with
  | header :: rows ->
      let cols = String.split_on_char ',' header in
      Alcotest.(check string) "first column" "ts_us" (List.hd cols);
      Alcotest.(check bool) "congestion column" true
        (List.mem "congestion_msgs" cols);
      Alcotest.(check bool) "cpu column" true (List.mem "cpus_busy" cols);
      Alcotest.(check int) "row count" (Metrics.num_rows metrics)
        (List.length rows);
      List.iter
        (fun row ->
          Alcotest.(check int) "row width" (List.length cols)
            (List.length (String.split_on_char ',' row)))
        rows;
      (* Covers the whole run: > time/interval rows, monotone stamps. *)
      Alcotest.(check bool) "covers the run" true
        (float_of_int (List.length rows) >= m.Runner.time /. 500.0)
  | [] -> Alcotest.fail "empty csv");
  let stamps = List.map fst (Metrics.rows metrics) in
  let rec mono = function
    | a :: (b :: _ as rest) -> a < b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly increasing stamps" true (mono stamps)

(* Counter tracks and flow arrows added to the Chrome export. *)
let test_chrome_counters_and_flows () =
  let tr, _ = traced_run () in
  let s = Diva_obs.Chrome_trace.to_string ~num_nodes:16 (Trace.events tr) in
  List.iter
    (fun needle ->
      let n = String.length needle and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
      Alcotest.(check bool) needle true (n = 0 || go 0))
    [
      "\"in-flight messages\""; "\"busy links\""; "\"copies held\"";
      "\"ph\":\"C\""; "\"ph\":\"s\""; "\"ph\":\"f\""; "\"bp\":\"e\"";
    ]

(* The Prometheus exposition of the final sample. *)
let test_prometheus_export () =
  let m = Metrics.create () in
  Alcotest.(check string) "empty registry" "" (Metrics.to_prometheus m);
  let c = Metrics.counter m "msgs sent" in
  Metrics.gauge m "busy" (fun () -> 3.0);
  Metrics.incr c ~by:2.0 ();
  Metrics.sample m ~ts:10.0;
  Metrics.incr c ~by:5.0 ();
  Metrics.sample m ~ts:250.0;
  let s = Metrics.to_prometheus m in
  List.iter
    (fun line ->
      Alcotest.(check bool) line true
        (List.mem line (String.split_on_char '\n' s)))
    [
      "# TYPE diva_msgs_sent counter";
      "diva_msgs_sent 7";
      "# TYPE diva_busy gauge";
      "diva_busy 3";
      "# TYPE diva_sample_ts_us gauge";
      "diva_sample_ts_us 250";
    ]

(* Golden file: the Chrome export of a fixed small run must stay
   byte-for-byte stable (regenerate with test/gen_golden.exe after an
   intentional format change). *)
let test_chrome_golden () =
  let tr = Trace.create () in
  ignore
    (Runner.run_matmul ~seed:17 ~rows:2 ~cols:2 ~block:64
       ~obs:{ Runner.null_obs with Runner.obs_trace = tr }
       (Runner.Strategy strategy));
  (* [write_file] (used by gen_golden) terminates the file with a newline. *)
  let got =
    Diva_obs.Chrome_trace.to_string ~num_nodes:4 (Trace.events tr) ^ "\n"
  in
  let path = "data/golden_chrome_2x2.json" in
  let ic = open_in_bin path in
  let want = really_input_string ic (in_channel_length ic) in
  close_in ic;
  if got <> want then
    Alcotest.failf
      "chrome export drifted from %s (%d vs %d bytes); regenerate with dune \
       exec test/gen_golden.exe if intentional"
      path (String.length got) (String.length want)

let test_json_writer () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd\tcontrol:\x01");
        ("i", Json.Int (-3));
        ("f", Json.Float 1.5);
        ("big", Json.Float 301292.0);
        ("nan", Json.Float Float.nan);
        ("l", Json.List [ Json.Null; Json.Bool true ]);
      ]
  in
  Alcotest.(check string) "rendering"
    "{\"s\":\"a\\\"b\\\\c\\nd\\tcontrol:\\u0001\",\"i\":-3,\"f\":1.5,\"big\":301292,\"nan\":null,\"l\":[null,true]}"
    (Json.to_string doc)

let suite =
  [
    Alcotest.test_case "link aggregation = Link_stats" `Quick
      test_link_aggregation;
    Alcotest.test_case "dsm events = dsm counters" `Quick test_dsm_events;
    Alcotest.test_case "tracing does not perturb the run" `Quick
      test_zero_perturbation;
    Alcotest.test_case "chrome export well-formed + monotone" `Quick
      test_chrome_export;
    Alcotest.test_case "metrics csv shape" `Quick test_metrics_csv;
    Alcotest.test_case "chrome counters and flows" `Quick
      test_chrome_counters_and_flows;
    Alcotest.test_case "prometheus export" `Quick test_prometheus_export;
    Alcotest.test_case "chrome export golden file" `Quick test_chrome_golden;
    Alcotest.test_case "json writer escaping" `Quick test_json_writer;
  ]
