(* Unit tests for the strategy-zoo additions: the registry's name
   resolution, the decorated display names, and the observable behaviour
   that distinguishes the new contenders from the paper's pair —
   adaptive home migration actually migrating, and tree prefetching
   actually planting extra copies. *)

module Dsm = Diva_core.Dsm
module Strategy = Diva_core.Strategy
module Registry = Diva_core.Registry

let test_registry_names () =
  Alcotest.(check (list string))
    "presentation order"
    [
      "access_tree";
      "fixed_home";
      "prefetch_tree";
      "adaptive_repl";
      "capacity_lru";
      "capacity_freq";
    ]
    (Registry.names ())

let test_registry_find () =
  let canonical name = Registry.find name in
  List.iter
    (fun (alias, target) ->
      if Registry.find alias <> canonical target then
        Alcotest.failf "alias %S should resolve to %S" alias target)
    [
      ("Access-Tree", "access_tree");
      ("ACCESS_TREE", "access_tree");
      ("adaptive", "adaptive_repl");
      ("adaptive-home", "adaptive_repl");
      ("home", "fixed_home");
      ("fixedhome", "fixed_home");
      ("capacity-LRU", "capacity_lru");
    ];
  (match Registry.find "fixed_home" with
  | Some Dsm.Fixed_home -> ()
  | _ -> Alcotest.fail "fixed_home should resolve to Fixed_home");
  Alcotest.(check bool) "unknown name" true (Registry.find "bogus" = None);
  Alcotest.(check int) "contenders cover every entry"
    (List.length Registry.entries)
    (List.length (Registry.contenders ()))

let test_display_names () =
  let name n =
    match Registry.find n with
    | Some spec -> Dsm.strategy_name spec
    | None -> Alcotest.failf "missing registry entry %s" n
  in
  List.iter
    (fun (entry, expect) ->
      Alcotest.(check string) entry expect (name entry))
    [
      ("access_tree", "4-ary");
      ("fixed_home", "fixed home");
      ("prefetch_tree", "4-ary+prefetch");
      ("adaptive_repl", "adaptive-home");
      ("capacity_lru", "4-ary+cap64k");
      ("capacity_freq", "4-ary+cap64k+freq-evict");
    ]

let test_strategy_ids () =
  List.iter
    (fun (e : Registry.entry) ->
      let net = Helpers.make_net ~seed:3 ~rows:2 ~cols:2 () in
      let dsm = Dsm.create net ~strategy:e.Registry.spec () in
      let expect =
        match e.Registry.spec with
        | Dsm.Access_tree _ -> "access-tree"
        | Dsm.Fixed_home -> "fixed-home"
        | Dsm.Adaptive _ -> "adaptive"
      in
      Alcotest.(check string)
        (e.Registry.name ^ " family id") expect (Dsm.strategy_id dsm))
    Registry.entries

(* A writer on proc 0 and a reader on proc 1 alternate under barriers.
   Whichever processor the variable's home hashes to, the remote side's
   transactions dominate some tally window, so the home migrates at
   least once — and correctness must survive the move. *)
let test_adaptive_migration () =
  let net, dsm =
    Helpers.make_dsm ~seed:5 ~rows:4 ~cols:4 (Dsm.adaptive ~migrate_after:8 ())
  in
  let v = Dsm.create_var dsm ~owner:0 ~size:64 0 in
  Helpers.run_procs net (fun p ->
      for i = 1 to 30 do
        if p = 0 then Dsm.write dsm 0 v i;
        Dsm.barrier dsm p;
        if p = 1 then
          Alcotest.(check int) "reader sees latest" i (Dsm.read dsm 1 v);
        Dsm.barrier dsm p
      done;
      Alcotest.(check int) "final value everywhere" 30 (Dsm.read dsm p v));
  Alcotest.(check bool) "home migrated at least once" true
    (Dsm.remaps dsm >= 1);
  match Dsm.validate_var dsm v with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-run validate: %s" e

(* Four of sixteen processors read a freshly written variable. The plain
   tree installs copies only on the reply paths; with prefetching the
   same run pushes speculative copies one level further down, so strictly
   more copies exist at quiescence. *)
let ncopies_after_partial_broadcast strategy =
  let net, dsm = Helpers.make_dsm ~seed:9 ~rows:4 ~cols:4 strategy in
  let v = Dsm.create_var dsm ~owner:5 ~size:256 0 in
  Helpers.run_procs net (fun p ->
      if p = 5 then Dsm.write dsm p v 42;
      Dsm.barrier dsm p;
      if p < 4 then Alcotest.(check int) "read sees write" 42 (Dsm.read dsm p v);
      Dsm.barrier dsm p);
  (match Dsm.validate_var dsm v with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-run validate: %s" e);
  Dsm.ncopies dsm v

let test_prefetch_plants_copies () =
  let plain = ncopies_after_partial_broadcast (Dsm.access_tree ~arity:4 ()) in
  let prefetched =
    ncopies_after_partial_broadcast (Dsm.access_tree ~arity:4 ~prefetch:true ())
  in
  if prefetched <= plain then
    Alcotest.failf "prefetch should plant extra copies (plain %d, prefetch %d)"
      plain prefetched

let suite =
  [
    Alcotest.test_case "registry names" `Quick test_registry_names;
    Alcotest.test_case "registry aliases resolve" `Quick test_registry_find;
    Alcotest.test_case "display names" `Quick test_display_names;
    Alcotest.test_case "family ids" `Quick test_strategy_ids;
    Alcotest.test_case "adaptive home migrates" `Quick test_adaptive_migration;
    Alcotest.test_case "prefetch plants extra copies" `Quick
      test_prefetch_plants_copies;
  ]
