(* Analytical baselines for capacity-pressure caching.

   A single reader draws an IID Zipf(0.8) reference stream over 64
   variables owned by a remote processor, under a per-processor memory
   bound that holds only a fraction of them. Under the independent
   reference model the steady-state hit ratio has closed forms:

   - LRU: Che's approximation — the characteristic time T solves
     sum_i (1 - exp(-p_i T)) = m and the hit ratio is
     sum_i p_i (1 - exp(-p_i T));
   - frequency (LFU) eviction: the cache converges to the m most popular
     items, so the hit ratio is the top-m popularity mass.

   The effective cache size m is computed from the run itself: tree-root
   copies that land on the reader's processor are pinned (their removal
   would disconnect the copy component), so they permanently subtract
   from the capacity available to leaf copies. *)

module Network = Diva_simnet.Network
module Dsm = Diva_core.Dsm
module Access_tree = Diva_core.Access_tree
module Strategy = Diva_core.Strategy
module Deco = Diva_mesh.Decomposition
module Prng = Diva_util.Prng

let nvars = 64
let size = 256
let cap = 50 * size
let alpha = 0.8
let warm_draws = 3_000
let measured_draws = 12_000

let zipf_probs =
  let w =
    Array.init nvars (fun i -> 1.0 /. (float_of_int (i + 1) ** alpha))
  in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

let sample rng =
  let u = Prng.float rng 1.0 in
  let acc = ref 0.0 and chosen = ref (nvars - 1) in
  (try
     for i = 0 to nvars - 1 do
       acc := !acc +. zipf_probs.(i);
       if u < !acc then begin
         chosen := i;
         raise Exit
       end
     done
   with Exit -> ());
  !chosen

type capacity_run = {
  hit_ratio : float;
  m_eff : int;  (* capacity slots left after pinned root copies *)
  cached : int;  (* variables resident at the reader's leaf *)
  evictions : int;
}

let run_capacity ~eviction () =
  let net = Network.create ~seed:11 ~rows:2 ~cols:2 () in
  let dsm =
    Dsm.create net
      ~strategy:(Dsm.access_tree ~arity:4 ~capacity:cap ~eviction ())
      ()
  in
  let vars =
    Array.init nvars (fun i ->
        Dsm.create_var dsm ~name:(Printf.sprintf "z%d" i) ~owner:3 ~size 0)
  in
  let hit_ratio = ref 0.0 in
  Network.spawn net 0 (fun () ->
      let rng = Prng.create ~seed:42 in
      (* Cold scan so every variable's tree state (and pinned root copy)
         exists before the Zipf phases. *)
      for i = 0 to nvars - 1 do
        ignore (Dsm.read dsm 0 vars.(i))
      done;
      for _ = 1 to warm_draws do
        ignore (Dsm.read dsm 0 vars.(sample rng))
      done;
      let h0 = Dsm.read_hits dsm in
      for _ = 1 to measured_draws do
        ignore (Dsm.read dsm 0 vars.(sample rng))
      done;
      hit_ratio :=
        float_of_int (Dsm.read_hits dsm - h0) /. float_of_int measured_draws);
  Network.run net;
  let at = Option.get (Dsm.access_tree_handle dsm) in
  let leaf0 = (Access_tree.deco at).Deco.leaf_of_proc.(0) in
  let pinned = ref 0 and cached = ref 0 in
  Array.iter
    (fun v ->
      let tv = Dsm.typed v in
      List.iter
        (fun tnode ->
          if Access_tree.place at tv tnode = 0 then
            if tnode = leaf0 then incr cached else incr pinned)
        (Access_tree.copy_holders at tv))
    vars;
  {
    hit_ratio = !hit_ratio;
    m_eff = (cap - (!pinned * size)) / size;
    cached = !cached;
    evictions = Dsm.evictions dsm;
  }

(* Che's approximation: bisect for the characteristic time. *)
let che_hit m =
  if m >= nvars then 1.0
  else begin
    let occupancy tc =
      Array.fold_left
        (fun acc p -> acc +. (1.0 -. exp (-.p *. tc)))
        0.0 zipf_probs
    in
    let lo = ref 0.0 and hi = ref 1.0 in
    while occupancy !hi < float_of_int m do
      hi := !hi *. 2.0
    done;
    for _ = 1 to 80 do
      let mid = 0.5 *. (!lo +. !hi) in
      if occupancy mid < float_of_int m then lo := mid else hi := mid
    done;
    let tc = 0.5 *. (!lo +. !hi) in
    Array.fold_left
      (fun acc p -> acc +. (p *. (1.0 -. exp (-.p *. tc))))
      0.0 zipf_probs
  end

let topm_hit m =
  let m = min m nvars in
  let acc = ref 0.0 in
  for i = 0 to m - 1 do
    acc := !acc +. zipf_probs.(i)
  done;
  !acc

let tolerance = 0.07

let check_run name r predicted =
  Alcotest.(check bool)
    (Printf.sprintf "%s: cache under real pressure" name)
    true (r.evictions > 0 && r.m_eff > 4 && r.m_eff < nvars);
  Alcotest.(check bool)
    (Printf.sprintf "%s: cache full at steady state (cached %d, m_eff %d)"
       name r.cached r.m_eff)
    true
    (abs (r.cached - r.m_eff) <= 1);
  Alcotest.(check bool)
    (Printf.sprintf "%s: measured %.4f within %.2f of closed-form %.4f" name
       r.hit_ratio tolerance predicted)
    true
    (Float.abs (r.hit_ratio -. predicted) <= tolerance)

let test_lru_matches_che () =
  let r = run_capacity ~eviction:Strategy.Lru () in
  check_run "lru" r (che_hit r.m_eff)

let test_freq_matches_topm () =
  let r = run_capacity ~eviction:Strategy.Freq () in
  check_run "freq" r (topm_hit r.m_eff)

(* Under IRM, keeping the provably most popular items cannot lose to
   recency: LFU's hit ratio dominates LRU's (up to sampling noise). *)
let test_freq_dominates_lru () =
  let lru = run_capacity ~eviction:Strategy.Lru () in
  let freq = run_capacity ~eviction:Strategy.Freq () in
  Alcotest.(check bool)
    (Printf.sprintf "freq %.4f >= lru %.4f" freq.hit_ratio lru.hit_ratio)
    true
    (freq.hit_ratio >= lru.hit_ratio -. 0.02)

let suite =
  [
    Alcotest.test_case "lru hit ratio matches Che's approximation" `Quick
      test_lru_matches_che;
    Alcotest.test_case "freq hit ratio matches top-m popularity mass" `Quick
      test_freq_matches_topm;
    Alcotest.test_case "freq eviction dominates lru under IRM" `Quick
      test_freq_dominates_lru;
  ]
