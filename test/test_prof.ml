(* Self-profiler, flight recorder, domain telemetry, prometheus
   exposition and trace merging: the observability additions must be
   provably free — profiled/recorded runs byte-identical to bare ones —
   and their artifacts well-formed and deterministic. *)

module Runner = Diva_harness.Runner
module Trace = Diva_obs.Trace
module Metrics = Diva_obs.Metrics
module Prof = Diva_obs.Prof
module Flight = Diva_obs.Flight
module Streaming = Diva_obs.Streaming
module Json = Diva_obs.Json
module Schedule = Diva_faults.Schedule
module Traffic = Diva_simnet.Traffic
module Par_engine = Diva_simnet.Par_engine

let strategy = Diva_core.Dsm.access_tree ~arity:4 ()

let run_matmul ?(obs = Runner.null_obs) () =
  Runner.run_matmul ~rows:4 ~cols:4 ~block:64 ~obs (Runner.Strategy strategy)

let check_same_measurements what (a : Runner.measurements)
    (b : Runner.measurements) =
  Alcotest.(check (float 0.0)) (what ^ ": time") a.Runner.time b.Runner.time;
  Alcotest.(check int)
    (what ^ ": congestion msgs")
    a.Runner.congestion_msgs b.Runner.congestion_msgs;
  Alcotest.(check int)
    (what ^ ": total msgs") a.Runner.total_msgs b.Runner.total_msgs;
  Alcotest.(check int)
    (what ^ ": total bytes") a.Runner.total_bytes b.Runner.total_bytes;
  Alcotest.(check int) (what ^ ": startups") a.Runner.startups b.Runner.startups;
  Alcotest.(check int)
    (what ^ ": dsm reads") a.Runner.dsm_reads b.Runner.dsm_reads

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "diva_test_%s_%d" name (Unix.getpid ()))

(* ------------------------------------------------------------------ *)
(* Prof                                                                 *)
(* ------------------------------------------------------------------ *)

(* A profiled run must not perturb the simulation: every measurement and
   the full event stream are identical with the profiler attached. *)
let test_prof_zero_perturbation () =
  let tr_plain = Trace.create () in
  let plain =
    run_matmul ~obs:{ Runner.null_obs with Runner.obs_trace = tr_plain } ()
  in
  let p = Prof.create () in
  let tr_prof = Trace.create () in
  let profiled =
    run_matmul
      ~obs:
        { Runner.null_obs with
          Runner.obs_trace = tr_prof;
          obs_prof = Some p }
      ()
  in
  Prof.disarm p;
  check_same_measurements "profiled" plain profiled;
  Alcotest.(check bool) "identical event streams" true
    (Trace.events tr_plain = Trace.events tr_prof);
  Alcotest.(check bool) "window series recorded" true (Prof.num_samples p > 0)

let test_prof_series_and_json () =
  let p = Prof.create ~window_us:100.0 () in
  for i = 1 to 40 do
    Prof.sample p ~sim_us:(float_of_int i *. 100.0) ~events:(i * 10)
  done;
  Alcotest.(check int) "row count" 40 (Prof.num_samples p);
  let doc = Prof.to_json p in
  let rows = Prof.series_rows doc in
  Alcotest.(check int) "series_rows count" 40 (List.length rows);
  let sims = List.map (fun (s, _, _) -> s) rows in
  Alcotest.(check bool) "monotone sim stamps" true
    (List.sort compare sims = sims);
  List.iter
    (fun (_, rate, heap) ->
      Alcotest.(check bool) "rate non-negative" true (rate >= 0.0);
      Alcotest.(check bool) "heap non-negative" true (heap >= 0.0))
    rows;
  (* The Gc.quick_stat amortization must still fill every row: heap_words
     is carried forward, never left at zero after the first row. *)
  (match rows with
  | (_, _, h0) :: _ -> Alcotest.(check bool) "first row has heap" true (h0 > 0.0)
  | [] -> Alcotest.fail "no rows");
  match Prof.report doc with
  | Ok s ->
      Alcotest.(check bool) "report mentions schema" true
        (String.length s > 0
        && String.sub s 0 (String.length "profile") = "profile")
  | Error e -> Alcotest.fail e

let test_prof_subsystems_and_regions () =
  let p = Prof.create () in
  Alcotest.(check string) "starts in host" "host"
    (Prof.subsystem_name (Prof.cur_sub p));
  Prof.set_sub p Prof.Strategy;
  Alcotest.(check string) "set_sub" "strategy"
    (Prof.subsystem_name (Prof.cur_sub p));
  let r = Prof.with_sub p Prof.Analysis (fun () -> Prof.cur_sub p) in
  Alcotest.(check string) "with_sub inside" "analysis" (Prof.subsystem_name r);
  Alcotest.(check string) "with_sub restores" "strategy"
    (Prof.subsystem_name (Prof.cur_sub p));
  ignore (Prof.region p "phase_a" (fun () -> 42));
  ignore (Prof.region p "phase_a" (fun () -> 43));
  ignore (Prof.region p "phase_b" (fun () -> 44));
  match Json.member "regions" (Prof.to_json p) with
  | Some (Json.Obj regions) ->
      Alcotest.(check (list string)) "regions accumulate by name"
        [ "phase_a"; "phase_b" ] (List.map fst regions)
  | _ -> Alcotest.fail "regions section missing"

let test_prof_report_rejects_other_schema () =
  (match Prof.report (Json.Obj [ ("schema", Json.String "bogus/9") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a non-prof document");
  match Prof.report (Json.Obj []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a schema-less document"

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                      *)
(* ------------------------------------------------------------------ *)

let decl i =
  Trace.Var_decl
    { ts = float_of_int i; var = i; var_name = Printf.sprintf "v%d" i;
      size = 8; owner = 0 }

let test_flight_ring_rotation () =
  let fl = Flight.create ~events:8 ~path:(tmp_path "ring") () in
  for i = 0 to 19 do
    Flight.record fl (decl i)
  done;
  Alcotest.(check int) "total recorded" 20 (Flight.event_count fl);
  let kept = Flight.events fl in
  Alcotest.(check int) "ring keeps capacity" 8 (List.length kept);
  let ids =
    List.map
      (function Trace.Var_decl { var; _ } -> var | _ -> -1)
      kept
  in
  Alcotest.(check (list int)) "oldest evicted, order preserved"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ] ids

(* The wrapped sink records into the ring AND feeds the original sink
   unchanged; arming the recorder does not perturb the run. *)
let test_flight_wrap_identity () =
  let plain_tr = Trace.create () in
  let plain =
    run_matmul ~obs:{ Runner.null_obs with Runner.obs_trace = plain_tr } ()
  in
  let fl = Flight.create ~events:64 ~path:(tmp_path "wrap") () in
  (* [wrap] replaces the sink (own buffer); keep only the wrapped value. *)
  let wrapped = Flight.wrap fl (Trace.create ()) in
  let armed =
    run_matmul
      ~obs:
        { Runner.null_obs with
          Runner.obs_trace = wrapped;
          obs_flight = Some fl }
      ()
  in
  check_same_measurements "flight-armed" plain armed;
  Alcotest.(check bool) "wrapped sink buffers the same stream" true
    (Trace.events plain_tr = Trace.events wrapped);
  Alcotest.(check bool) "ring saw the run" true (Flight.event_count fl > 0);
  Alcotest.(check bool) "health snapshots taken" true
    (Flight.snapshots fl <> [])

let test_flight_dump_first_trigger_wins () =
  let path = tmp_path "dump" in
  let fl = Flight.create ~events:4 ~path () in
  Flight.record fl (decl 1);
  Alcotest.(check bool) "not dumped yet" false (Flight.dumped fl);
  Flight.dump fl ~reason:"first failure";
  Alcotest.(check bool) "dumped" true (Flight.dumped fl);
  Flight.dump fl ~reason:"second failure";
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let doc =
    match Json.of_string s with Ok j -> j | Error e -> Alcotest.fail e
  in
  (match Option.bind (Json.member "reason" doc) Json.to_str with
  | Some r -> Alcotest.(check string) "first reason wins" "first failure" r
  | None -> Alcotest.fail "dump has no reason");
  match Flight.report doc with
  | Ok rendered ->
      Alcotest.(check bool) "report renders" true (String.length rendered > 0)
  | Error e -> Alcotest.fail e

let test_flight_dump_on_error () =
  let fl = Flight.create ~path:(tmp_path "err") () in
  Flight.dump_on_error fl ~label:"oracle" (Ok 42);
  Alcotest.(check bool) "Ok does not dump" false (Flight.dumped fl);
  let doc = Flight.to_json fl ~reason:"probe" in
  Alcotest.(check bool) "to_json does not count as dump" false
    (Flight.dumped fl);
  (match Option.bind (Json.member "schema" doc) Json.to_str with
  | Some s -> Alcotest.(check string) "schema" "diva-flight/1" s
  | None -> Alcotest.fail "no schema");
  Flight.dump_on_error fl ~label:"oracle" (Error "copies diverged");
  Alcotest.(check bool) "Error dumps" true (Flight.dumped fl);
  Sys.remove (Flight.path fl)

(* Drop-heavy faults force DSM watchdog trips; with [dump_on_watchdog]
   the first trip must write the dump (Runner wires the trigger), and the
   armed recorder must not change what the simulation computes. *)
let drop_schedule =
  Schedule.make ~seed:9 ~patience_us:5_000.0
    [ Schedule.Msg_drop { prob = 0.5; w = { t0 = 0.0; t1 = 1e9 } } ]

let test_flight_dump_on_watchdog () =
  let plain =
    run_matmul
      ~obs:{ Runner.null_obs with Runner.obs_faults = drop_schedule }
      ()
  in
  let path = tmp_path "watchdog" in
  let fl = Flight.create ~dump_on_watchdog:true ~path () in
  let armed =
    run_matmul
      ~obs:
        { Runner.null_obs with
          Runner.obs_faults = drop_schedule;
          obs_trace = Flight.wrap fl Trace.null;
          obs_flight = Some fl }
      ()
  in
  Alcotest.(check bool) "watchdog tripped and dumped" true (Flight.dumped fl);
  Alcotest.(check bool) "dump file exists" true (Sys.file_exists path);
  (match
     let ic = open_in_bin path in
     let s = really_input_string ic (in_channel_length ic) in
     close_in ic;
     Json.of_string s
   with
  | Ok doc -> (
      match Option.bind (Json.member "reason" doc) Json.to_str with
      | Some r ->
          Alcotest.(check string) "reason" "dsm watchdog trip" r
      | None -> Alcotest.fail "no reason in dump")
  | Error e -> Alcotest.fail e);
  Sys.remove path;
  check_same_measurements "recorder under faults" plain armed

(* With the chaos policy (dump_on_watchdog:false) trips must NOT dump. *)
let test_flight_watchdog_opt_out () =
  let path = tmp_path "no_watchdog" in
  let fl = Flight.create ~dump_on_watchdog:false ~path () in
  ignore
    (run_matmul
       ~obs:
         { Runner.null_obs with
           Runner.obs_faults = drop_schedule;
           obs_trace = Flight.wrap fl Trace.null;
           obs_flight = Some fl }
       ());
  Alcotest.(check bool) "no dump under routine trips" false (Flight.dumped fl);
  Alcotest.(check bool) "no file written" false (Sys.file_exists path)

(* ------------------------------------------------------------------ *)
(* Par_engine telemetry                                                 *)
(* ------------------------------------------------------------------ *)

(* The telemetered run must render byte-identically to the bare one, for
   every domain count; the accumulator itself must be self-consistent. *)
let test_telemetry_identity () =
  let run ?telemetry domains =
    Traffic.render
      (Traffic.run ?telemetry ~domains ~seed:5 ~rows:8 ~cols:8 ~rate:0.002
         ~horizon:5_000.0 ~pattern:Traffic.Uniform ())
  in
  let reference = run 1 in
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "bare, %d domains" domains)
        reference (run domains);
      let tl = Par_engine.telemetry_create () in
      Alcotest.(check string)
        (Printf.sprintf "telemetered, %d domains" domains)
        reference
        (run ~telemetry:tl domains))
    [ 1; 2; 4 ]

let test_telemetry_json () =
  let tl = Par_engine.telemetry_create () in
  ignore
    (Traffic.run ~telemetry:tl ~domains:2 ~seed:5 ~rows:8 ~cols:8 ~rate:0.002
       ~horizon:5_000.0 ~pattern:Traffic.Uniform ());
  let doc = Par_engine.telemetry_json tl in
  let geti k = Option.bind (Json.member k doc) Json.to_int in
  let getf k = Option.bind (Json.member k doc) Json.to_float in
  Alcotest.(check (option int)) "domains" (Some 2) (geti "domains");
  Alcotest.(check bool) "windows counted" true
    (Option.value ~default:0 (geti "windows") > 0);
  (match getf "stall_frac" with
  | Some s -> Alcotest.(check bool) "stall_frac in [0,1]" true (s >= 0.0 && s <= 1.0)
  | None -> Alcotest.fail "no stall_frac");
  (match getf "shard_imbalance" with
  | Some im -> Alcotest.(check bool) "imbalance >= 1" true (im >= 1.0)
  | None -> Alcotest.fail "no shard_imbalance");
  match Json.member "domains_detail" doc with
  | Some (Json.List ds) -> Alcotest.(check int) "one detail per domain" 2 (List.length ds)
  | _ -> Alcotest.fail "no domains_detail"

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                                *)
(* ------------------------------------------------------------------ *)

let test_prometheus_sanitize_and_dedupe () =
  let m = Metrics.create () in
  Metrics.gauge m "host-events-per-sec" (fun () -> 5.0);
  (* Two names that collide after '-' folds to '_'. *)
  Metrics.gauge m "a-b" (fun () -> 1.0);
  Metrics.gauge m "a_b" (fun () -> 2.0);
  Metrics.sample m ~ts:10.0;
  let s = Metrics.to_prometheus m in
  let lines = String.split_on_char '\n' s in
  List.iter
    (fun line -> Alcotest.(check bool) line true (List.mem line lines))
    [
      "diva_host_events_per_sec 5";
      "# TYPE diva_host_events_per_sec gauge";
      "diva_a_b 1";
      "diva_a_b_2 2";
    ];
  (* No duplicate metric names in the exposition. *)
  let names =
    List.filter_map
      (fun l ->
        if l = "" || l.[0] = '#' then None
        else match String.index_opt l ' ' with
          | Some i -> Some (String.sub l 0 i)
          | None -> None)
      lines
  in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_prometheus_labels_escaped () =
  let m = Metrics.create () in
  Metrics.gauge m "busy" (fun () -> 1.0);
  Metrics.sample m ~ts:1.0;
  let s =
    Metrics.to_prometheus
      ~labels:[ ("app", "mat\"mul"); ("strategy", "a\\b\nc") ]
      m
  in
  Alcotest.(check bool) "escaped label line" true
    (let needle =
       "diva_busy{app=\"mat\\\"mul\",strategy=\"a\\\\b\\nc\"} 1"
     in
     let n = String.length needle and len = String.length s in
     let rec go i = i + n <= len && (String.sub s i n = needle || go (i + 1)) in
     go 0)

(* ------------------------------------------------------------------ *)
(* Trace merge / compaction                                             *)
(* ------------------------------------------------------------------ *)

let overheads =
  { Diva_obs.Analysis.send_overhead = 1.0; recv_overhead = 1.0;
    local_overhead = 0.1 }

let write_trace path ~seed events =
  let oc = open_out_bin path in
  let header =
    Streaming.make_header ~app:"test" ~dims:[| 2; 2 |] ~strategy:"4-ary"
      ~seed ~overheads ()
  in
  let sink = Streaming.file_sink oc header in
  List.iter (Trace.emit sink) events;
  close_out oc

let access ~ts ~node =
  Trace.Dsm_access
    { ts; dur = 1.0; node; var = 0; var_name = "v0"; op = Trace.Read;
      size = 8; hit = false; txn = node; completed_by = -1 }

let read_lines path =
  let ic = open_in_bin path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> close_in ic; List.rev acc
  in
  go []

let test_merge_interleaves_runs () =
  let a = tmp_path "merge_a" and b = tmp_path "merge_b" in
  let out = tmp_path "merge_out" in
  write_trace a ~seed:1 [ decl 0; access ~ts:10.0 ~node:0; access ~ts:30.0 ~node:0 ];
  write_trace b ~seed:2 [ decl 0; access ~ts:20.0 ~node:1 ];
  (match Streaming.merge_files ~inputs:[ a; b ] ~output:out () with
  | Ok st ->
      Alcotest.(check int) "runs" 2 st.Streaming.ms_runs;
      Alcotest.(check int) "events" 5 st.Streaming.ms_events;
      Alcotest.(check int) "nothing dropped" 0 st.Streaming.ms_dropped
  | Error e -> Alcotest.fail e);
  (match read_lines out with
  | header :: events ->
      (match Json.of_string header with
      | Ok h ->
          (match Option.bind (Json.member "format" h) Json.to_str with
          | Some f ->
              Alcotest.(check string) "merged format"
                Streaming.merged_format_name f
          | None -> Alcotest.fail "merged header has no format");
          (match Json.member "runs" h with
          | Some (Json.List rs) ->
              Alcotest.(check int) "header lists both runs" 2 (List.length rs)
          | _ -> Alcotest.fail "no runs array")
      | Error e -> Alcotest.fail e);
      let run_of line =
        match Json.of_string line with
        | Ok j -> Option.bind (Json.member "run" j) Json.to_int
        | Error e -> Alcotest.fail e
      in
      (* Time-ordered interleaving: both ts-0 declarations (run 0 wins the
         tie), then 10(run0), 20(run1), 30(run0). *)
      Alcotest.(check (list (option int))) "run prefixes in merge order"
        [ Some 0; Some 1; Some 0; Some 1; Some 0 ]
        (List.map run_of events)
  | [] -> Alcotest.fail "empty merged file");
  (* Determinism: merging again yields the identical file. *)
  let out2 = tmp_path "merge_out2" in
  (match Streaming.merge_files ~inputs:[ a; b ] ~output:out2 () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "deterministic output" true
    (read_lines out = read_lines out2);
  List.iter Sys.remove [ a; b; out; out2 ]

let test_merge_compaction () =
  let a = tmp_path "compact_a" and out = tmp_path "compact_out" in
  (* Declarations and early protocol noise before the first DSM access at
     ts 50; the decls survive compaction, the noise does not. *)
  let noise ts =
    Trace.Msg_send
      { ts; id = 0; parent = -1; txn = -1; inject = ts; level = -1; src = 0;
        dst = 1; size = 8; local = false }
  in
  write_trace a ~seed:3
    [ decl 0; noise 5.0; noise 20.0; access ~ts:50.0 ~node:0;
      noise 60.0 ];
  (match Streaming.merge_files ~compact:true ~inputs:[ a ] ~output:out () with
  | Ok st ->
      Alcotest.(check int) "kept decl + access + late noise" 3
        st.Streaming.ms_events;
      Alcotest.(check int) "dropped pre-quiescence noise" 2
        st.Streaming.ms_dropped
  | Error e -> Alcotest.fail e);
  List.iter Sys.remove [ a; out ]

let test_merge_rejects_bad_input () =
  (match
     Streaming.merge_files
       ~inputs:[ tmp_path "does_not_exist" ]
       ~output:(tmp_path "never_written") ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "merged a missing input");
  Alcotest.(check bool) "output not created" false
    (Sys.file_exists (tmp_path "never_written"))

let suite =
  [
    Alcotest.test_case "profiling does not perturb the run" `Quick
      test_prof_zero_perturbation;
    Alcotest.test_case "window series and prof.json round-trip" `Quick
      test_prof_series_and_json;
    Alcotest.test_case "subsystem attribution and regions" `Quick
      test_prof_subsystems_and_regions;
    Alcotest.test_case "profile report rejects foreign documents" `Quick
      test_prof_report_rejects_other_schema;
    Alcotest.test_case "flight ring rotates past capacity" `Quick
      test_flight_ring_rotation;
    Alcotest.test_case "armed recorder does not perturb the run" `Quick
      test_flight_wrap_identity;
    Alcotest.test_case "dump is first-trigger-wins" `Quick
      test_flight_dump_first_trigger_wins;
    Alcotest.test_case "dump_on_error dumps only on Error" `Quick
      test_flight_dump_on_error;
    Alcotest.test_case "watchdog trip dumps under faults" `Quick
      test_flight_dump_on_watchdog;
    Alcotest.test_case "chaos policy suppresses watchdog dumps" `Quick
      test_flight_watchdog_opt_out;
    Alcotest.test_case "telemetry keeps runs byte-identical" `Quick
      test_telemetry_identity;
    Alcotest.test_case "telemetry json is self-consistent" `Quick
      test_telemetry_json;
    Alcotest.test_case "prometheus sanitizes and dedupes names" `Quick
      test_prometheus_sanitize_and_dedupe;
    Alcotest.test_case "prometheus escapes label values" `Quick
      test_prometheus_labels_escaped;
    Alcotest.test_case "merge interleaves runs deterministically" `Quick
      test_merge_interleaves_runs;
    Alcotest.test_case "merge compaction drops setup noise" `Quick
      test_merge_compaction;
    Alcotest.test_case "merge validates inputs before writing" `Quick
      test_merge_rejects_bad_input;
  ]
