let () =
  Alcotest.run "diva"
    [
      ("util", Test_util.suite);
      ("mesh", Test_mesh.suite);
      ("simnet", Test_simnet.suite);
      ("par", Test_par.suite);
      ("dsm", Test_dsm.suite);
      ("apps", Test_apps.suite);
      ("invariants", Test_invariants.suite);
      ("strategy-conformance", Test_strategy_conformance.suite);
      ("strategy-zoo", Test_strategy_zoo.suite);
      ("capacity-analytics", Test_capacity_analytics.suite);
      ("golden-strategies", Test_golden_strategies.suite);
      ("strategies", Test_strategies.suite);
      ("nbody-geom", Test_nbody_geom.suite);
      ("mesh-3d", Test_mesh3d.suite);
      ("edges", Test_edges.suite);
      ("harness", Test_harness.suite);
      ("obs", Test_obs.suite);
      ("prof", Test_prof.suite);
      ("analysis", Test_analysis.suite);
      ("streaming", Test_streaming.suite);
      ("workload", Test_workload.suite);
      ("faults", Test_faults.suite);
      ("service", Test_service.suite);
    ]
