(* Tests for the bounded-memory streaming analyzer (Diva_obs.Streaming):
   streaming output must be bit-identical to the batch Spans.build +
   Analysis path for every app x strategy (faults included), the JSONL
   trace format must round-trip exactly, peak analysis residency must stay
   bounded while batch memory grows with trace length, and the
   bench-history drift gate must catch compounded slow drifts that each
   individually pass the per-PR tolerance. *)

module Network = Diva_simnet.Network
module Machine = Diva_simnet.Machine
module Dsm = Diva_core.Dsm
module Runner = Diva_harness.Runner
module Barnes_hut = Diva_apps.Barnes_hut
module Workload = Diva_workload
module Schedule = Diva_faults.Schedule
module Json = Diva_obs.Json
module Trace = Diva_obs.Trace
module Spans = Diva_obs.Spans
module Analysis = Diva_obs.Analysis
module Streaming = Diva_obs.Streaming
module Bench_gate = Diva_harness.Bench_gate

let overheads_of (m : Machine.t) =
  { Analysis.send_overhead = m.Machine.send_overhead;
    recv_overhead = m.Machine.recv_overhead;
    local_overhead = m.Machine.local_overhead }

(* Run one app with causal tracing on; return (overheads, events). *)
let traced_events ?(faults = Schedule.empty) run =
  let trace = Trace.create () in
  let obs =
    { Runner.null_obs with Runner.obs_trace = trace; obs_faults = faults }
  in
  let captured = ref None in
  let on_net net = captured := Some net in
  run ~obs ~on_net;
  (overheads_of (Network.machine (Option.get !captured)), Trace.events trace)

let apps =
  [
    ( "matmul",
      fun strategy ~obs ~on_net ->
        ignore
          (Runner.run_matmul ~obs ~on_net ~rows:4 ~cols:4 ~block:64
             (Runner.Strategy strategy)) );
    ( "bitonic",
      fun strategy ~obs ~on_net ->
        ignore
          (Runner.run_bitonic_nd ~obs ~on_net ~dims:[| 4; 4 |] ~keys:32
             (Runner.Strategy strategy)) );
    ( "barnes-hut",
      fun strategy ~obs ~on_net ->
        let cfg =
          { (Barnes_hut.default_config ~nbodies:48) with Barnes_hut.steps = 2 }
        in
        ignore
          (Runner.run_barnes_hut_nd ~obs ~on_net ~dims:[| 2; 2 |] ~cfg strategy)
    );
  ]

let both_strategies =
  [ ("fixed-home", Dsm.Fixed_home); ("4-ary", Dsm.access_tree ~arity:4 ()) ]

let summary_string s = Json.to_string (Analysis.summary_to_json s)

(* The tentpole property: the streaming fold retires each transaction the
   moment it completes, yet every float of the summary — cost sums,
   critical path, windows — matches the full-span batch path bit for
   bit. *)
let test_stream_equals_batch () =
  List.iter
    (fun (app_name, run) ->
      List.iter
        (fun (sname, strategy) ->
          let label = app_name ^ "/" ^ sname in
          let ov, events = traced_events (run strategy) in
          let batch = Analysis.summarize ov events in
          let streamed, peak = Streaming.analyze_events ov events in
          Alcotest.(check string)
            (label ^ " summary") (summary_string batch)
            (summary_string streamed);
          Alcotest.(check bool) (label ^ " peak > 0") true (peak > 0))
        both_strategies)
    apps

(* Same property under injected message loss: duplicate deliveries,
   retransmission link crossings after a transaction already completed,
   ack traffic — none of it may perturb the equality. *)
let test_stream_equals_batch_faulted () =
  let sched =
    Schedule.make ~seed:9
      [ Schedule.Msg_drop { prob = 0.1; w = { t0 = 0.0; t1 = 1e9 } } ]
  in
  let ov, events =
    traced_events ~faults:sched (fun ~obs ~on_net ->
        ignore
          (Runner.run_matmul ~obs ~on_net ~rows:4 ~cols:4 ~block:64
             (Runner.Strategy (Dsm.access_tree ~arity:4 ()))))
  in
  Alcotest.(check bool)
    "schedule actually lost messages" true
    (List.exists (function Trace.Msg_lost _ -> true | _ -> false) events);
  let batch = Analysis.summarize ov events in
  let streamed, _ = Streaming.analyze_events ov events in
  Alcotest.(check string)
    "faulted summary" (summary_string batch) (summary_string streamed)

(* Streaming memory must not scale with run length: an 8x longer workload
   grows the event stream (and batch span tables) proportionally, while
   the analyzer's peak record residency stays at the concurrency level of
   the mesh. *)
let workload_events ops =
  let spec =
    Workload.Spec.make ~num_vars:32 ~var_size:64
      ~popularity:Workload.Spec.Uniform
      ~phases:[ Workload.Spec.phase ~read_ratio:0.7 ops ]
      ~seed:5 ()
  in
  let trace = Trace.create () in
  let obs = { Runner.null_obs with Runner.obs_trace = trace } in
  ignore
    (Workload.Generator.run ~obs ~dims:[| 4; 4 |]
       ~strategy:(Dsm.access_tree ~arity:4 ()) spec);
  Trace.events trace

let test_peak_residency_bounded () =
  let ov = overheads_of Machine.gcel in
  let small = workload_events 50 in
  let large = workload_events 400 in
  Alcotest.(check bool) "event stream grew with run length" true
    (List.length large > 3 * List.length small);
  Alcotest.(check bool) "batch span tables grew with run length" true
    (Spans.num_msgs (Spans.build large) > 3 * Spans.num_msgs (Spans.build small));
  let _, p_small = Streaming.analyze_events ov small in
  let _, p_large = Streaming.analyze_events ov large in
  Alcotest.(check bool)
    (Printf.sprintf "peak residency bounded (small %d, large %d)" p_small
       p_large)
    true
    (p_large <= 2 * p_small);
  (* Eager retirement: once the run is over every transaction has
     completed and every record has been freed. *)
  let t = Streaming.create ov in
  List.iter (Streaming.feed t) large;
  Alcotest.(check int) "all records retired at end of stream" 0
    (Streaming.live_msgs t);
  Alcotest.(check bool) "but residency peaked above zero" true
    (Streaming.peak_msgs t > 0)

(* ------------------------------------------------------------------ *)
(* JSONL trace format                                                   *)
(* ------------------------------------------------------------------ *)

let roundtrip_event e =
  let s = Json.to_string (Trace.event_to_json e) in
  match Json.of_string s with
  | Error err -> Alcotest.failf "reparse failed on %s: %s" s err
  | Ok j -> (
      match Streaming.event_of_json j with
      | Error err -> Alcotest.failf "decode failed on %s: %s" s err
      | Ok e' -> if e' <> e then Alcotest.failf "event drifted through %s" s)

(* Constructors a small fault-free run never emits, with every enum arm. *)
let synthetic_events =
  [
    Trace.Copy_add
      { ts = 1.5; node = 2; var = 0; var_name = "m0"; tnode = 4; level = 1 };
    Trace.Copy_drop
      { ts = 2.0; node = 2; var = 0; var_name = "m0"; tnode = 4; level = 1;
        reason = Trace.Invalidated };
    Trace.Copy_drop
      { ts = 3.0; node = 1; var = 3; var_name = "m3"; tnode = 9; level = 2;
        reason = Trace.Evicted };
    Trace.Remap
      { ts = 12.5; var = 3; var_name = "m3"; tnode = 7; level = 2;
        from_node = 1; to_node = 9 };
    Trace.Msg_lost
      { ts = 4.25; msg = 17; txn = 5; src = 0; dst = 3; size = 64;
        reason = Trace.Loss_random };
    Trace.Msg_lost
      { ts = 4.5; msg = -1; txn = -1; src = 3; dst = 0; size = 0;
        reason = Trace.Loss_link_down };
    Trace.Msg_lost
      { ts = 4.75; msg = 18; txn = 5; src = 0; dst = 3; size = 64;
        reason = Trace.Loss_crashed };
    Trace.Msg_retry
      { ts = 9.0; msg = 17; txn = 5; src = 0; dst = 3; size = 64; attempt = 2 };
    Trace.Dsm_access
      { ts = 10.0; dur = 0.0; node = 1; var = -1; var_name = ""; op = Trace.Lock;
        size = 0; hit = false; txn = 8; completed_by = -1 };
    Trace.Dsm_access
      { ts = 11.0; dur = 2.5; node = 1; var = -1; var_name = ""; op = Trace.Unlock;
        size = 0; hit = false; txn = 9; completed_by = 3 };
    Trace.Dsm_access
      { ts = 12.0; dur = 30.125; node = 0; var = -1; var_name = "";
        op = Trace.Reduce; size = 8; hit = false; txn = 10; completed_by = 4 };
  ]

let test_event_codec_roundtrip () =
  let sched =
    Schedule.make ~seed:9
      [ Schedule.Msg_drop { prob = 0.1; w = { t0 = 0.0; t1 = 1e9 } } ]
  in
  let _, events =
    traced_events ~faults:sched (fun ~obs ~on_net ->
        ignore
          (Runner.run_matmul ~obs ~on_net ~rows:4 ~cols:4 ~block:64
             (Runner.Strategy (Dsm.access_tree ~arity:4 ()))))
  in
  List.iter roundtrip_event events;
  List.iter roundtrip_event synthetic_events

let sample_header () =
  Streaming.make_header
    ~params:[ ("block", Json.Int 64) ]
    ~app:"matmul" ~dims:[| 4; 4 |] ~strategy:"4-ary" ~seed:17
    ~overheads:(overheads_of Machine.gcel) ()

let test_header_roundtrip () =
  let h = sample_header () in
  (match Streaming.parse_header (Json.to_string (Streaming.header_json h)) with
  | Ok h' -> if h' <> h then Alcotest.fail "header drifted through round-trip"
  | Error e -> Alcotest.failf "header parse failed: %s" e);
  let reject what j =
    match Streaming.parse_header (Json.to_string j) with
    | Ok _ -> Alcotest.failf "%s was accepted" what
    | Error _ -> ()
  in
  let fields v =
    match Streaming.header_json h with
    | Json.Obj kvs ->
        Json.Obj
          (List.map
             (fun (k, x) -> if k = "version" then (k, Json.Int v) else (k, x))
             kvs)
    | _ -> assert false
  in
  reject "wrong format" (Json.Obj [ ("format", Json.String "diva-dsm-trace") ]);
  reject "future version" (fields (Streaming.current_version + 1));
  reject "missing overheads"
    (Json.Obj
       [ ("format", Json.String Streaming.format_name);
         ("version", Json.Int Streaming.current_version) ])

(* Full offline path: record a run through the file sink, re-analyze the
   file from scratch, and get the live run's summary back bit for bit. *)
let test_offline_file_roundtrip () =
  let ov, events =
    traced_events (fun ~obs ~on_net ->
        ignore
          (Runner.run_matmul ~obs ~on_net ~rows:4 ~cols:4 ~block:64
             (Runner.Strategy (Dsm.access_tree ~arity:4 ()))))
  in
  let path = Filename.temp_file "diva_events" ".jsonl" in
  let oc = open_out path in
  let sink = Streaming.file_sink oc (sample_header ()) in
  List.iter (Trace.emit sink) events;
  close_out oc;
  (match Streaming.probe path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "probe: %s" e);
  (match Streaming.analyze_file path with
  | Error e -> Alcotest.failf "analyze_file: %s" e
  | Ok (h, summary, peak) ->
      Alcotest.(check string) "header app" "matmul" h.Streaming.h_app;
      Alcotest.(check int) "header seed" 17 h.Streaming.h_seed;
      Alcotest.(check string)
        "offline summary bit-identical"
        (summary_string (Analysis.summarize ov events))
        (summary_string summary);
      Alcotest.(check bool) "peak > 0" true (peak > 0));
  Sys.remove path

(* Golden file: the JSONL encoding of a fixed small run must stay
   byte-for-byte stable (regenerate with test/gen_golden.exe after an
   intentional format change). *)
let golden_header () =
  Streaming.make_header
    ~params:[ ("block", Json.Int 64) ]
    ~app:"matmul" ~dims:[| 2; 2 |] ~strategy:"4-ary" ~seed:17
    ~overheads:(overheads_of Machine.gcel) ()

let test_events_golden () =
  let tr = Trace.create () in
  ignore
    (Runner.run_matmul ~seed:17 ~rows:2 ~cols:2 ~block:64
       ~obs:{ Runner.null_obs with Runner.obs_trace = tr }
       (Runner.Strategy (Dsm.access_tree ~arity:4 ())));
  let b = Buffer.create 65536 in
  Buffer.add_string b (Json.to_string (Streaming.header_json (golden_header ())));
  Buffer.add_char b '\n';
  List.iter
    (fun e ->
      Buffer.add_string b (Json.to_string (Trace.event_to_json e));
      Buffer.add_char b '\n')
    (Trace.events tr);
  let got = Buffer.contents b in
  let path = "data/golden_events_2x2.jsonl" in
  let ic = open_in_bin path in
  let want = really_input_string ic (in_channel_length ic) in
  close_in ic;
  if got <> want then
    Alcotest.failf
      "event trace encoding drifted from %s (%d vs %d bytes); regenerate \
       with dune exec test/gen_golden.exe if intentional"
      path (String.length got) (String.length want)

(* ------------------------------------------------------------------ *)
(* Bench-history drift gate                                             *)
(* ------------------------------------------------------------------ *)

let bench_doc t =
  Json.Obj [ ("apps", Json.Obj [ ("time_us", Json.Float t) ]) ]

(* Three commits each drifting +8% pass every adjacent-pair check under
   the 10% tolerance, but compound to +16.6%: only the comparison against
   the oldest ring entry catches it. *)
let test_history_drift () =
  let d1 = bench_doc 100.0
  and d2 = bench_doc 108.0
  and d3 = bench_doc 116.64 in
  let adjacent_ok a b =
    Bench_gate.failures (Bench_gate.compare_docs ~baseline:a ~current:b ()) = []
  in
  Alcotest.(check bool) "step 1->2 passes per-PR tolerance" true
    (adjacent_ok d1 d2);
  Alcotest.(check bool) "step 2->3 passes per-PR tolerance" true
    (adjacent_ok d2 d3);
  Alcotest.(check bool) "single-baseline gate misses the compound drift" true
    (adjacent_ok d2 d3);
  let dir = Filename.temp_file "diva_hist" "" in
  Sys.remove dir;
  Alcotest.(check bool) "empty ring has no drift" true
    (Bench_gate.drift ~dir ~current:d3 () = None);
  ignore (Bench_gate.history_append ~dir ~label:"one" d1);
  ignore (Bench_gate.history_append ~dir ~label:"two" d2);
  (match Bench_gate.drift ~dir ~current:d3 () with
  | None -> Alcotest.fail "ring has entries but drift found none"
  | Some (name, verdicts) ->
      Alcotest.(check string) "compared against the oldest entry"
        "0001-one.json" name;
      Alcotest.(check bool) "ring catches the compound drift" true
        (Bench_gate.failures verdicts <> []));
  (* Appending with a bounded ring prunes the oldest entries, so the
     drift window slides forward. *)
  ignore (Bench_gate.history_append ~keep:2 ~dir ~label:"three" d3);
  (match Bench_gate.history_entries dir with
  | [ (a, _); (b, _) ] ->
      Alcotest.(check string) "oldest survivor" "0002-two.json" a;
      Alcotest.(check string) "newest entry" "0003-three.json" b
  | es -> Alcotest.failf "expected 2 ring entries, got %d" (List.length es));
  List.iter
    (fun (f, _) -> Sys.remove (Filename.concat dir f))
    (Bench_gate.history_entries dir);
  Sys.rmdir dir

let suite =
  [
    Alcotest.test_case "streaming = batch (apps x strategies)" `Quick
      test_stream_equals_batch;
    Alcotest.test_case "streaming = batch under faults" `Quick
      test_stream_equals_batch_faulted;
    Alcotest.test_case "peak residency bounded" `Quick
      test_peak_residency_bounded;
    Alcotest.test_case "event codec round-trip" `Quick
      test_event_codec_roundtrip;
    Alcotest.test_case "header round-trip and rejection" `Quick
      test_header_roundtrip;
    Alcotest.test_case "offline file analysis round-trip" `Quick
      test_offline_file_roundtrip;
    Alcotest.test_case "events golden file" `Quick test_events_golden;
    Alcotest.test_case "history ring drift gate" `Quick test_history_drift;
  ]
