(* Golden byte tests for the strategy-zoo contenders.

   Each new registry strategy has a committed golden event trace of the
   fixed matmul run (2x2 mesh, block 64, seed 17); the tests re-run the
   simulation and require the re-encoded trace to match byte for byte.
   Together with the pre-existing 4-ary and chrome goldens this pins the
   protocols' entire observable behaviour — any unintended change to
   message order, sizes, timing or trace encoding fails here.

   Regenerate with `dune exec test/gen_golden.exe` after an intentional
   change. *)

module Runner = Diva_harness.Runner
module Registry = Diva_core.Registry
module Trace = Diva_obs.Trace
module Streaming = Diva_obs.Streaming
module Machine = Diva_simnet.Machine
module Json = Diva_obs.Json

let golden_bytes name =
  let spec =
    match Registry.find name with
    | Some s -> s
    | None -> Alcotest.failf "unknown registry strategy %s" name
  in
  let tr = Trace.create () in
  ignore
    (Runner.run_matmul ~seed:17 ~rows:2 ~cols:2 ~block:64
       ~obs:{ Runner.null_obs with Runner.obs_trace = tr }
       (Runner.Strategy spec));
  let m = Machine.gcel in
  let header =
    Streaming.make_header
      ~params:[ ("block", Json.Int 64) ]
      ~app:"matmul" ~dims:[| 2; 2 |] ~strategy:name ~seed:17
      ~overheads:
        { Diva_obs.Analysis.send_overhead = m.Machine.send_overhead;
          recv_overhead = m.Machine.recv_overhead;
          local_overhead = m.Machine.local_overhead }
      ()
  in
  let b = Buffer.create 65536 in
  Buffer.add_string b (Json.to_string (Streaming.header_json header));
  Buffer.add_char b '\n';
  List.iter
    (fun e ->
      Buffer.add_string b (Json.to_string (Trace.event_to_json e));
      Buffer.add_char b '\n')
    (Trace.events tr);
  Buffer.contents b

let check_golden name () =
  let got = golden_bytes name in
  let path = Printf.sprintf "data/golden_events_2x2_%s.jsonl" name in
  let ic = open_in_bin path in
  let want = really_input_string ic (in_channel_length ic) in
  close_in ic;
  if got <> want then
    Alcotest.failf
      "%s event trace drifted from %s (%d vs %d bytes); regenerate with \
       dune exec test/gen_golden.exe if intentional"
      name path (String.length got) (String.length want)

let suite =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ " matmul golden bytes") `Quick
        (check_golden name))
    [ "prefetch_tree"; "adaptive_repl"; "capacity_lru"; "capacity_freq" ]
