(* Shared helpers for the test suites. *)

module Network = Diva_simnet.Network

let run_procs net f =
  for p = 0 to Network.num_nodes net - 1 do
    Network.spawn net p (fun () -> f p)
  done;
  Network.run net

(* Every DSM strategy variant exercised by the strategy-generic suites. *)
let strategies =
  [
    ("2-ary", Diva_core.Dsm.access_tree ~arity:2 ());
    ("4-ary", Diva_core.Dsm.access_tree ~arity:4 ());
    ("16-ary", Diva_core.Dsm.access_tree ~arity:16 ());
    ("2-4-ary", Diva_core.Dsm.access_tree ~arity:2 ~leaf_size:4 ());
    ("4-16-ary", Diva_core.Dsm.access_tree ~arity:4 ~leaf_size:16 ());
    ("4-ary-random-emb",
     Diva_core.Dsm.access_tree ~arity:4 ~embedding:Diva_mesh.Embedding.Random ());
    ("4-ary-no-combining", Diva_core.Dsm.access_tree ~arity:4 ~combining:false ());
    ("fixed-home", Diva_core.Dsm.Fixed_home);
    (* Strategy-zoo contenders. Append only: some suites index this list. *)
    ("4-ary-prefetch", Diva_core.Dsm.access_tree ~arity:4 ~prefetch:true ());
    ("adaptive-home", Diva_core.Dsm.adaptive ());
    ("4-ary-capacity-lru", Diva_core.Dsm.access_tree ~arity:4 ~capacity:512 ());
    ("4-ary-capacity-freq",
     Diva_core.Dsm.access_tree ~arity:4 ~capacity:512
       ~eviction:Diva_core.Strategy.Freq ());
  ]

let make_net ?(seed = 7) ~rows ~cols () = Network.create ~seed ~rows ~cols ()

let make_dsm ?(seed = 7) ~rows ~cols strategy =
  let net = make_net ~seed ~rows ~cols () in
  let dsm = Diva_core.Dsm.create net ~strategy () in
  (net, dsm)
