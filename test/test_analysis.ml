(* Tests for causal span trees (Diva_obs.Spans) and critical-path cost
   attribution (Diva_obs.Analysis): the decomposition must sum exactly to
   the measured blocking latency for every transaction of every app under
   both strategies, and causal chains must be contiguous in time. *)

module Network = Diva_simnet.Network
module Machine = Diva_simnet.Machine
module Dsm = Diva_core.Dsm
module Runner = Diva_harness.Runner
module Barnes_hut = Diva_apps.Barnes_hut
module Trace = Diva_obs.Trace
module Spans = Diva_obs.Spans
module Analysis = Diva_obs.Analysis

let eps = 1e-6

(* Run one app with causal tracing on and return (overheads, spans). *)
let traced_run run =
  let trace = Trace.create () in
  let obs = { Runner.null_obs with Runner.obs_trace = trace } in
  let captured = ref None in
  let on_net net = captured := Some net in
  run ~obs ~on_net;
  let net = Option.get !captured in
  let m = Network.machine net in
  let ov =
    { Analysis.send_overhead = m.Machine.send_overhead;
      recv_overhead = m.Machine.recv_overhead;
      local_overhead = m.Machine.local_overhead }
  in
  (ov, Spans.build (Trace.events trace))

(* Every app of the paper, small enough for the test suite. *)
let apps =
  [
    ( "matmul",
      fun strategy ~obs ~on_net ->
        ignore
          (Runner.run_matmul ~obs ~on_net ~rows:4 ~cols:4 ~block:64
             (Runner.Strategy strategy)) );
    ( "bitonic",
      fun strategy ~obs ~on_net ->
        ignore
          (Runner.run_bitonic_nd ~obs ~on_net ~dims:[| 4; 4 |] ~keys:32
             (Runner.Strategy strategy)) );
    ( "barnes-hut",
      fun strategy ~obs ~on_net ->
        let cfg =
          { (Barnes_hut.default_config ~nbodies:48) with Barnes_hut.steps = 2 }
        in
        ignore
          (Runner.run_barnes_hut_nd ~obs ~on_net ~dims:[| 2; 2 |] ~cfg strategy)
    );
  ]

let both_strategies =
  [ ("fixed-home", Dsm.Fixed_home); ("4-ary", Dsm.access_tree ~arity:4 ()) ]

(* The tentpole invariant: startup + transfer + queue + cpu = t_dur exactly,
   and no term is negative, for every transaction of every app x strategy. *)
let test_decomposition_sums () =
  List.iter
    (fun (app, run) ->
      List.iter
        (fun (sname, strategy) ->
          let ov, spans = traced_run (run strategy) in
          let txns = Spans.txns spans in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s has transactions" app sname)
            true (txns <> []);
          List.iter
            (fun (t : Spans.txn) ->
              let c = Analysis.decompose ov spans t in
              let where =
                Printf.sprintf "%s/%s txn %d" app sname t.Spans.t_id
              in
              List.iter
                (fun (term, v) ->
                  if v < -.eps then
                    Alcotest.failf "%s: negative %s (%g)" where term v)
                [ ("startup", c.Analysis.startup_us);
                  ("transfer", c.Analysis.transfer_us);
                  ("queue", c.Analysis.queue_us);
                  ("cpu", c.Analysis.cpu_us) ];
              let total = Analysis.total_cost c in
              let tol = eps *. Float.max 1.0 t.Spans.t_dur in
              if Float.abs (total -. t.Spans.t_dur) > tol then
                Alcotest.failf "%s: decomposition %g <> latency %g" where
                  total t.Spans.t_dur)
            txns)
        both_strategies)
    apps

(* Handlers are instantaneous in simulated time, so along a completing
   chain each message is issued exactly when its parent is handled, every
   chain message belongs to the transaction, and the chain ends at the
   message that unblocked the fiber. *)
let test_chain_contiguity () =
  List.iter
    (fun (sname, strategy) ->
      let _, spans = traced_run ((List.assoc "matmul" apps) strategy) in
      List.iter
        (fun (t : Spans.txn) ->
          let chain = Spans.chain spans t in
          List.iter
            (fun (m : Spans.msg) ->
              Alcotest.(check int)
                (Printf.sprintf "%s: chain msg in txn" sname)
                t.Spans.t_id m.Spans.txn)
            chain;
          (match List.rev chain with
          | last :: _ ->
              Alcotest.(check int)
                (Printf.sprintf "%s: chain ends at completer" sname)
                t.Spans.t_completed_by last.Spans.id
          | [] -> ());
          let rec pairs = function
            | (a : Spans.msg) :: (b :: _ as rest) ->
                (match a.Spans.handled with
                | Some h ->
                    Alcotest.(check (float eps))
                      (Printf.sprintf "%s: child issued at parent handler"
                         sname)
                      h b.Spans.sent
                | None ->
                    Alcotest.failf "%s: chain crosses an unhandled message"
                      sname);
                pairs rest
            | _ -> ()
          in
          pairs chain)
        (Spans.txns spans))
    both_strategies

(* The critical-path timeline starts at 0 and covers gaps as cpu, so its
   total equals the makespan. *)
let test_critical_path_covers_makespan () =
  let ov, spans =
    traced_run ((List.assoc "matmul" apps) (Dsm.access_tree ~arity:4 ()))
  in
  match Analysis.critical_path ov spans with
  | None -> Alcotest.fail "no critical path on a traced run"
  | Some cp ->
      Alcotest.(check bool) "has transactions" true (cp.Analysis.cp_txns <> []);
      Alcotest.(check (float 1e-3))
        "timeline total = makespan" cp.Analysis.cp_end
        (Analysis.total_cost cp.Analysis.cp_cost)

(* Level rows partition the messages; link-bytes are bytes x crossings. *)
let test_level_profile_partitions () =
  let _, spans =
    traced_run ((List.assoc "matmul" apps) (Dsm.access_tree ~arity:4 ()))
  in
  let rows = Analysis.level_profile spans in
  let msgs = List.fold_left (fun a r -> a + r.Analysis.lv_msgs) 0 rows in
  Alcotest.(check int) "levels partition msgs" (Spans.num_msgs spans) msgs;
  let tagged =
    List.exists (fun r -> r.Analysis.lv_level >= 0 && r.Analysis.lv_msgs > 0)
      rows
  in
  Alcotest.(check bool) "access tree tags levels" true tagged

(* Window attribution is overlap-proportional, so summed over all windows
   it conserves every occupancy's bytes. *)
let test_windows_conserve_bytes () =
  let _, spans =
    traced_run ((List.assoc "bitonic" apps) Dsm.Fixed_home)
  in
  let expect =
    List.fold_left
      (fun a (m : Spans.msg) ->
        a +. float_of_int (m.Spans.size * List.length m.Spans.xfers))
      0.0 (Spans.msgs spans)
  in
  let got =
    List.fold_left
      (fun a w ->
        List.fold_left (fun a (_, b) -> a +. b) a w.Analysis.w_link_bytes)
      0.0
      (Analysis.windows ~n:5 spans)
  in
  Alcotest.(check bool) "windowed bytes conserve link traffic" true
    (Float.abs (got -. expect) <= 1e-6 *. Float.max 1.0 expect)

(* The op table groups the same transactions the decomposition walks. *)
let test_op_table_counts () =
  let ov, spans =
    traced_run ((List.assoc "matmul" apps) Dsm.Fixed_home)
  in
  let rows = Analysis.op_table ov spans in
  let n = List.fold_left (fun a r -> a + r.Analysis.or_count) 0 rows in
  Alcotest.(check int) "op rows partition txns"
    (List.length (Spans.txns spans))
    n;
  List.iter
    (fun r ->
      Alcotest.(check bool) "mean <= max" true
        (r.Analysis.or_mean_us <= r.Analysis.or_max_us +. eps))
    rows

(* analysis.json must be valid JSON and round-trip through the parser. *)
let test_to_json_roundtrip () =
  let ov, spans =
    traced_run ((List.assoc "matmul" apps) (Dsm.access_tree ~arity:4 ()))
  in
  let j =
    Analysis.to_json
      ~meta:[ ("app", Diva_obs.Json.String "matmul") ]
      ~top_k:5 ~num_windows:3 ov spans
  in
  let s = Diva_obs.Json.to_string j in
  match Diva_obs.Json.of_string s with
  | Error e -> Alcotest.failf "analysis.json does not parse: %s" e
  | Ok (Diva_obs.Json.Obj fields) ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " present") true (List.mem_assoc k fields))
        [ "app"; "num_txns"; "num_msgs"; "critical_path"; "levels";
          "top_links"; "windows"; "ops" ]
  | Ok _ -> Alcotest.fail "analysis.json is not an object"

let suite =
  [
    Alcotest.test_case "decomposition sums to latency" `Quick
      test_decomposition_sums;
    Alcotest.test_case "chains are contiguous" `Quick test_chain_contiguity;
    Alcotest.test_case "critical path covers makespan" `Quick
      test_critical_path_covers_makespan;
    Alcotest.test_case "level profile partitions messages" `Quick
      test_level_profile_partitions;
    Alcotest.test_case "windows conserve bytes" `Quick
      test_windows_conserve_bytes;
    Alcotest.test_case "op table partitions transactions" `Quick
      test_op_table_counts;
    Alcotest.test_case "analysis.json round-trips" `Quick
      test_to_json_roundtrip;
  ]
