(* Quickstart: shared variables on a simulated 4x4 mesh.

   Sixteen processors cooperate through two global variables managed by the
   access tree strategy: a counter protected by its lock, and a message
   box written by one processor and read by everyone.

   Run with: dune exec examples/quickstart.exe *)

module Network = Diva_simnet.Network
module Link_stats = Diva_simnet.Link_stats
module Dsm = Diva_core.Dsm

let () =
  (* A 4x4 mesh of processors with GCel-like link and CPU speeds. *)
  let net = Network.create ~rows:4 ~cols:4 () in
  (* Manage global variables with the paper's 4-ary access tree strategy.
     Try [Dsm.Fixed_home] here to feel the difference. *)
  let dsm = Dsm.create net ~strategy:(Dsm.access_tree ~arity:4 ()) () in

  (* Two global variables, initially placed on processors 0 and 5. *)
  let counter = Dsm.create_var dsm ~name:"counter" ~owner:0 ~size:8 0 in
  let message = Dsm.create_var dsm ~name:"message" ~owner:5 ~size:64 "" in

  (* One fiber per processor; reads and writes are fully transparent. *)
  for p = 0 to Network.num_nodes net - 1 do
    Network.spawn net p (fun () ->
        (* Atomically increment the shared counter. *)
        Dsm.lock dsm p counter;
        Dsm.write dsm p counter (Dsm.read dsm p counter + 1);
        Dsm.unlock dsm p counter;
        Dsm.barrier dsm p;
        (* Processor 9 posts a message; everyone reads it. The access tree
           distributes the copies along a multicast tree. *)
        if p = 9 then Dsm.write dsm p message "hello from processor nine";
        Dsm.barrier dsm p;
        let m = Dsm.read dsm p message in
        assert (m = "hello from processor nine"))
  done;
  Network.run net;

  Printf.printf "counter            = %d (expected 16)\n" (Dsm.peek counter);
  Printf.printf "message            = %S\n" (Dsm.peek message);
  Printf.printf "simulated time     = %.3f ms\n" (Network.now net /. 1e3);
  Printf.printf "congestion         = %d messages\n"
    (Link_stats.congestion_msgs (Network.stats net));
  Printf.printf "total load         = %d messages\n"
    (Link_stats.total_msgs (Network.stats net));
  Printf.printf "message startups   = %d\n" (Network.startups net)
