examples/quickstart.ml: Diva_core Diva_simnet Printf
