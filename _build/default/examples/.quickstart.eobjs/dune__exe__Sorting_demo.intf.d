examples/sorting_demo.mli:
