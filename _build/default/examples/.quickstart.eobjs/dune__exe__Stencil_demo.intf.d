examples/stencil_demo.mli:
