examples/nbody_demo.ml: Diva_apps Diva_core Diva_harness List Printf
