examples/matmul_demo.ml: Diva_apps Diva_core Diva_harness Diva_simnet List Printf
