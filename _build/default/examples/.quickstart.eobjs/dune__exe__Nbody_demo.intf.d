examples/nbody_demo.mli:
