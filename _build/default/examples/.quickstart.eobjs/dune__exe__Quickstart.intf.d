examples/quickstart.mli:
