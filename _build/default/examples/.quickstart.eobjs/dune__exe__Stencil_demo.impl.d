examples/stencil_demo.ml: Diva_apps Diva_core Diva_simnet List Printf
