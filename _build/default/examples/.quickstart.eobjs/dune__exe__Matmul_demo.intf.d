examples/matmul_demo.mli:
