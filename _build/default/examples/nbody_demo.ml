(* Barnes-Hut N-body simulation of a Plummer sphere on an 8x8 mesh, with
   the per-phase breakdown the paper analyses (tree building and force
   computation), comparing the 4-ary access tree against the fixed home
   strategy.

   Run with: dune exec examples/nbody_demo.exe *)

module Dsm = Diva_core.Dsm
module Barnes_hut = Diva_apps.Barnes_hut
module Runner = Diva_harness.Runner
module Vec = Diva_apps.Vec

let () =
  let cfg = Barnes_hut.default_config ~nbodies:1000 in
  Printf.printf
    "Barnes-Hut: %d bodies (Plummer), theta %.1f, %d steps (%d measured), 8x8 mesh\n\n"
    cfg.Barnes_hut.nbodies cfg.Barnes_hut.theta cfg.Barnes_hut.steps
    (cfg.Barnes_hut.steps - cfg.Barnes_hut.warmup);
  List.iter
    (fun (name, strategy) ->
      let r = Runner.run_barnes_hut ~rows:8 ~cols:8 ~cfg strategy in
      let tot = r.Runner.bh_total in
      Printf.printf "%s:\n" name;
      Printf.printf "  total     : %8.2f s  congestion %6d msgs\n"
        (tot.Runner.time /. 1e6) tot.Runner.congestion_msgs;
      List.iter
        (fun ph ->
          let m = r.Runner.bh_phase ph in
          Printf.printf "  %-10s: %8.2f s  congestion %6d msgs\n"
            (Barnes_hut.phase_name ph)
            (m.Runner.time /. 1e6) m.Runner.congestion_msgs)
        [ Barnes_hut.Build; Barnes_hut.Force ];
      Printf.printf "  cache hits: %.1f%% of %d reads\n\n"
        (100.0 *. float_of_int tot.Runner.dsm_read_hits
        /. float_of_int (max 1 tot.Runner.dsm_reads))
        tot.Runner.dsm_reads)
    [
      ("4-ary access tree", Dsm.access_tree ~arity:4 ());
      ("fixed home", Dsm.Fixed_home);
    ]
