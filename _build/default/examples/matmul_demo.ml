(* Matrix squaring on an 8x8 mesh: verify the result and compare the
   communication behaviour of the three strategies of the paper.

   Run with: dune exec examples/matmul_demo.exe *)

module Network = Diva_simnet.Network
module Dsm = Diva_core.Dsm
module Matmul = Diva_apps.Matmul
module Runner = Diva_harness.Runner

let () =
  (* First: a verified run. Every processor owns one 8x8 block of a 64x64
     matrix and computes its block of A*A through global variables. *)
  let net = Network.create ~rows:8 ~cols:8 () in
  let dsm = Dsm.create net ~strategy:(Dsm.access_tree ~arity:4 ()) () in
  let app = Matmul.setup dsm { Matmul.block = 64; compute = true } in
  for p = 0 to Network.num_nodes net - 1 do
    Network.spawn net p (fun () -> Matmul.fiber app p)
  done;
  Network.run net;
  Printf.printf "matrix square verified: %b\n\n" (Matmul.verify app);

  (* Second: the paper's comparison. Communication time only (no local
     computation), block size 1024 integers. *)
  Printf.printf "%-16s %14s %14s %10s\n" "strategy" "congestion (B)" "time (ms)"
    "startups";
  List.iter
    (fun choice ->
      let m = Runner.run_matmul ~rows:8 ~cols:8 ~block:1024 choice in
      Printf.printf "%-16s %14d %14.1f %10d\n" (Runner.name choice)
        m.Runner.congestion_bytes (m.Runner.time /. 1e3) m.Runner.startups)
    [
      Runner.Hand_optimized;
      Runner.Strategy (Dsm.access_tree ~arity:4 ());
      Runner.Strategy (Dsm.access_tree ~arity:2 ());
      Runner.Strategy Dsm.Fixed_home;
    ]
