(* Bitonic sorting of 65536 keys on an 8x8 mesh (1024 keys per processor),
   comparing access-tree variants against the fixed home strategy and the
   hand-optimized exchanges.

   Run with: dune exec examples/sorting_demo.exe *)

module Network = Diva_simnet.Network
module Dsm = Diva_core.Dsm
module Bitonic = Diva_apps.Bitonic
module Runner = Diva_harness.Runner

let () =
  (* A verified sort through the DIVA layer. *)
  let net = Network.create ~rows:8 ~cols:8 () in
  let dsm = Dsm.create net ~strategy:(Dsm.access_tree ~arity:2 ~leaf_size:4 ()) () in
  let app = Bitonic.setup dsm { Bitonic.keys = 1024; compute = true } in
  for p = 0 to Network.num_nodes net - 1 do
    Network.spawn net p (fun () -> Bitonic.fiber app p)
  done;
  Network.run net;
  Printf.printf "sorted 65536 keys in %d merge&split steps: verified %b\n\n"
    (Bitonic.steps app) (Bitonic.verify app);

  Printf.printf "%-16s %14s %14s\n" "strategy" "congestion (B)" "time (ms)";
  List.iter
    (fun choice ->
      let m = Runner.run_bitonic ~rows:8 ~cols:8 ~keys:1024 choice in
      Printf.printf "%-16s %14d %14.1f\n" (Runner.name choice)
        m.Runner.congestion_bytes (m.Runner.time /. 1e3))
    [
      Runner.Hand_optimized;
      Runner.Strategy (Dsm.access_tree ~arity:2 ~leaf_size:4 ());
      Runner.Strategy (Dsm.access_tree ~arity:2 ());
      Runner.Strategy (Dsm.access_tree ~arity:4 ());
      Runner.Strategy Dsm.Fixed_home;
    ]
