(* Jacobi heat diffusion on an 8x8 mesh: a nearest-neighbour DSM workload
   beyond the paper's three applications, showing how the access tree
   strategy turns physical locality into cheap low-level tree traffic.

   Run with: dune exec examples/stencil_demo.exe *)

module Network = Diva_simnet.Network
module Link_stats = Diva_simnet.Link_stats
module Dsm = Diva_core.Dsm
module Stencil = Diva_apps.Stencil

let () =
  (* A verified run: 128x128 grid in 16x16 blocks, 10 iterations. *)
  let net = Network.create ~rows:8 ~cols:8 () in
  let dsm = Dsm.create net ~strategy:(Dsm.access_tree ~arity:2 ()) () in
  let app =
    Stencil.setup dsm { Stencil.block_side = 16; iterations = 10; compute = true }
  in
  for p = 0 to Network.num_nodes net - 1 do
    Network.spawn net p (fun () -> Stencil.fiber app p)
  done;
  Network.run net;
  Printf.printf "Jacobi on a 128x128 grid, 10 iterations: verified %b\n\n"
    (Stencil.verify app);

  Printf.printf "%-16s %14s %14s\n" "strategy" "congestion (B)" "time (ms)";
  List.iter
    (fun (name, strategy) ->
      let net = Network.create ~rows:8 ~cols:8 () in
      let dsm = Dsm.create net ~strategy () in
      let app =
        Stencil.setup dsm
          { Stencil.block_side = 16; iterations = 10; compute = true }
      in
      for p = 0 to Network.num_nodes net - 1 do
        Network.spawn net p (fun () -> Stencil.fiber app p)
      done;
      Network.run net;
      Printf.printf "%-16s %14d %14.1f\n" name
        (Link_stats.congestion_bytes (Network.stats net))
        (Network.now net /. 1e3))
    [
      ("2-ary", Dsm.access_tree ~arity:2 ());
      ("4-ary", Dsm.access_tree ~arity:4 ());
      ("fixed home", Dsm.Fixed_home);
    ]
