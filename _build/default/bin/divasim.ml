(* divasim: run one application under one data-management strategy on one
   simulated mesh, and print the paper's metrics.

     divasim matmul  --mesh 16x16 --block 1024 --strategy 4-ary
     divasim bitonic --mesh 8x8   --keys 4096  --strategy fixed-home
     divasim nbody   --mesh 16x16 --bodies 4000 --strategy 2-4-ary --phases
*)

module Dsm = Diva_core.Dsm
module Runner = Diva_harness.Runner
module Barnes_hut = Diva_apps.Barnes_hut
module Embedding = Diva_mesh.Embedding
open Cmdliner

let parse_mesh s =
  let parts = String.split_on_char 'x' (String.lowercase_ascii s) in
  let dims = List.filter_map int_of_string_opt parts in
  if List.length dims = List.length parts && dims <> []
     && List.for_all (fun d -> d > 0) dims
  then Ok (Array.of_list dims)
  else Error (`Msg "mesh must look like 16x16 (or 4x4x4)")

let mesh_conv =
  Arg.conv
    ( parse_mesh,
      fun fmt dims ->
        Format.fprintf fmt "%s"
          (String.concat "x" (List.map string_of_int (Array.to_list dims))) )

(* "4-ary", "2-4-ary", "16-ary", "fixed-home", "hand-optimized"; a "+random"
   suffix selects the fully random embedding. *)
let parse_strategy s =
  let s = String.lowercase_ascii (String.trim s) in
  let embedding, s =
    match Filename.chop_suffix_opt ~suffix:"+random" s with
    | Some base -> (Embedding.Random, base)
    | None -> (Embedding.Regular, s)
  in
  match s with
  | "fixed-home" | "fixedhome" | "home" -> Ok (Runner.Strategy Dsm.Fixed_home)
  | "hand" | "handopt" | "hand-optimized" -> Ok Runner.Hand_optimized
  | _ -> (
      match String.split_on_char '-' s with
      | [ l; "ary" ] -> (
          match int_of_string_opt l with
          | Some l when l = 2 || l = 4 || l = 16 ->
              Ok (Runner.Strategy (Dsm.access_tree ~arity:l ~embedding ()))
          | _ -> Error (`Msg "arity must be 2, 4 or 16"))
      | [ l; k; "ary" ] -> (
          match (int_of_string_opt l, int_of_string_opt k) with
          | Some l, Some k when (l = 2 || l = 4 || l = 16) && k >= 1 ->
              Ok
                (Runner.Strategy
                   (Dsm.access_tree ~arity:l ~leaf_size:k ~embedding ()))
          | _ -> Error (`Msg "bad l-k-ary strategy"))
      | _ ->
          Error
            (`Msg
               "strategy is one of: 2-ary, 4-ary, 16-ary, 2-4-ary, 4-16-ary, \
                fixed-home, hand-optimized (append +random for the random \
                embedding)"))

let strategy_conv =
  Arg.conv
    ( parse_strategy,
      fun fmt c -> Format.fprintf fmt "%s" (Runner.name c) )

let mesh_t =
  Arg.(
    value
    & opt mesh_conv [| 8; 8 |]
    & info [ "mesh" ] ~docv:"RxC" ~doc:"Mesh size (any dimension, e.g. 4x4x4).")

let strategy_t =
  Arg.(
    value
    & opt strategy_conv (Runner.Strategy (Dsm.access_tree ~arity:4 ()))
    & info [ "strategy" ] ~docv:"S" ~doc:"Data management strategy.")

let seed_t =
  Arg.(value & opt int 17 & info [ "seed" ] ~doc:"Random seed of the run.")

let heatmap_t =
  Arg.(
    value & flag
    & info [ "heatmap" ] ~doc:"Print the per-node traffic distribution.")

let on_net_of heatmap =
  if heatmap then
    Some (fun net -> print_string (Diva_harness.Heatmap.render net))
  else None

let print_measurements (m : Runner.measurements) =
  Printf.printf "time                 %.3f s\n" (m.Runner.time /. 1e6);
  Printf.printf "congestion           %d messages / %d bytes\n"
    m.Runner.congestion_msgs m.Runner.congestion_bytes;
  Printf.printf "total load           %d messages / %d bytes\n"
    m.Runner.total_msgs m.Runner.total_bytes;
  Printf.printf "startups             %d\n" m.Runner.startups;
  Printf.printf "max local compute    %.3f s\n" (m.Runner.max_compute /. 1e6);
  if m.Runner.dsm_reads > 0 then
    Printf.printf "reads / cache hits   %d / %d (%.1f%%)\n" m.Runner.dsm_reads
      m.Runner.dsm_read_hits
      (100.0 *. float_of_int m.Runner.dsm_read_hits
      /. float_of_int (max 1 m.Runner.dsm_reads));
  if m.Runner.evictions > 0 then
    Printf.printf "LRU evictions        %d\n" m.Runner.evictions

let matmul_cmd =
  let block =
    Arg.(value & opt int 1024 & info [ "block" ] ~doc:"Integers per block.")
  in
  let compute =
    Arg.(value & flag & info [ "compute" ] ~doc:"Include block arithmetic.")
  in
  let run dims strategy block compute seed heatmap =
    match dims with
    | [| rows; cols |] when rows = cols ->
        let m =
          Runner.run_matmul ~seed ?on_net:(on_net_of heatmap) ~rows ~cols
            ~block ~compute strategy
        in
        Printf.printf "matmul %dx%d, block %d, strategy %s\n" rows cols block
          (Runner.name strategy);
        print_measurements m
    | _ -> failwith "matmul needs a square 2-D mesh"
  in
  Cmd.v (Cmd.info "matmul" ~doc:"Matrix squaring (paper 3.1)")
    Term.(const run $ mesh_t $ strategy_t $ block $ compute $ seed_t $ heatmap_t)

let bitonic_cmd =
  let keys =
    Arg.(value & opt int 4096 & info [ "keys" ] ~doc:"Keys per processor.")
  in
  let run dims strategy keys seed heatmap =
    let m =
      Runner.run_bitonic_nd ~seed ?on_net:(on_net_of heatmap) ~dims ~keys
        strategy
    in
    Printf.printf "bitonic %s, %d keys/proc, strategy %s\n"
      (String.concat "x" (List.map string_of_int (Array.to_list dims)))
      keys (Runner.name strategy);
    print_measurements m
  in
  Cmd.v (Cmd.info "bitonic" ~doc:"Bitonic sorting (paper 3.2)")
    Term.(const run $ mesh_t $ strategy_t $ keys $ seed_t $ heatmap_t)

let nbody_cmd =
  let bodies =
    Arg.(value & opt int 2000 & info [ "bodies" ] ~doc:"Number of bodies.")
  in
  let steps = Arg.(value & opt int 7 & info [ "steps" ] ~doc:"Time steps.") in
  let theta =
    Arg.(value & opt float 1.0 & info [ "theta" ] ~doc:"Opening criterion.")
  in
  let phases =
    Arg.(value & flag & info [ "phases" ] ~doc:"Print the per-phase breakdown.")
  in
  let run dims strategy bodies steps theta phases seed heatmap =
    let strategy =
      match strategy with
      | Runner.Strategy s -> s
      | Runner.Hand_optimized ->
          failwith "no hand-optimized baseline exists for Barnes-Hut"
    in
    let cfg =
      { (Barnes_hut.default_config ~nbodies:bodies) with
        Barnes_hut.steps; theta }
    in
    let r =
      Runner.run_barnes_hut_nd ~seed ?on_net:(on_net_of heatmap) ~dims ~cfg
        strategy
    in
    Printf.printf "barnes-hut %s, %d bodies, theta %.2f, strategy %s\n"
      (String.concat "x" (List.map string_of_int (Array.to_list dims)))
      bodies theta
      (Dsm.strategy_name strategy);
    Printf.printf "-- measured steps, all phases --\n";
    print_measurements r.Runner.bh_total;
    if phases then
      List.iter
        (fun ph ->
          Printf.printf "-- phase: %s --\n" (Barnes_hut.phase_name ph);
          print_measurements (r.Runner.bh_phase ph))
        [ Barnes_hut.Build; Barnes_hut.Com; Barnes_hut.Partition;
          Barnes_hut.Force; Barnes_hut.Advance; Barnes_hut.Space ]
  in
  Cmd.v (Cmd.info "nbody" ~doc:"Barnes-Hut N-body simulation (paper 3.3)")
    Term.(
      const run $ mesh_t $ strategy_t $ bodies $ steps $ theta $ phases
      $ seed_t $ heatmap_t)

let () =
  let doc = "DIVA: simulated data management in mesh networks (SPAA'99)" in
  let info = Cmd.info "divasim" ~doc in
  exit (Cmd.eval (Cmd.group info [ matmul_cmd; bitonic_cmd; nbody_cmd ]))
