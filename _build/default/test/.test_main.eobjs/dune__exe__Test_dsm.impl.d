test/test_dsm.ml: Alcotest Array Diva_core Diva_mesh Diva_simnet Diva_util Helpers List Printf
