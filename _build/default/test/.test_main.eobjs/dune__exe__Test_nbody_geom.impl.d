test/test_nbody_geom.ml: Alcotest Array Diva_apps Diva_util Float List Printf QCheck QCheck_alcotest
