test/helpers.ml: Diva_core Diva_mesh Diva_simnet
