test/test_util.ml: Alcotest Array Diva_core Diva_simnet Diva_util Fun List Printf QCheck QCheck_alcotest String
