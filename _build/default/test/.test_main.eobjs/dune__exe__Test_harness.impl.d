test/test_harness.ml: Alcotest Array Diva_apps Diva_core Diva_harness Diva_simnet Helpers List String
