test/test_apps.ml: Alcotest Array Diva_apps Diva_core Diva_simnet Float Helpers List Printf QCheck QCheck_alcotest
