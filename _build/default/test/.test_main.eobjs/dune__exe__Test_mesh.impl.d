test/test_mesh.ml: Alcotest Array Diva_mesh Diva_util Fun Hashtbl Int64 List
