test/test_strategies.ml: Alcotest Array Diva_apps Diva_core Diva_simnet Hashtbl Helpers List Printf
