test/test_invariants.ml: Alcotest Array Diva_core Diva_simnet Diva_util Helpers List QCheck QCheck_alcotest
