test/test_edges.ml: Alcotest Array Diva_core Diva_mesh Diva_simnet Helpers Printf
