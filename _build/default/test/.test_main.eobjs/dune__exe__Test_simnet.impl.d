test/test_simnet.ml: Alcotest Diva_mesh Diva_simnet List
