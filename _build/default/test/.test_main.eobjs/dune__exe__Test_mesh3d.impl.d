test/test_mesh3d.ml: Alcotest Array Diva_apps Diva_core Diva_mesh Diva_simnet Diva_util Float Fun List Printf
