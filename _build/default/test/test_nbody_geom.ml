(* Unit and property tests for the N-body geometry/physics primitives. *)

module Geom = Diva_apps.Nbody_geom
module Vec = Diva_apps.Vec
module Prng = Diva_util.Prng

let vclose ?(eps = 1e-12) a b = Vec.norm (Vec.sub a b) < eps

let test_vec_algebra () =
  let a = Vec.make 1.0 2.0 3.0 and b = Vec.make (-1.0) 0.5 2.0 in
  Alcotest.(check bool) "add/sub roundtrip" true
    (vclose a (Vec.sub (Vec.add a b) b));
  Alcotest.(check (float 1e-12)) "dot" 6.0 (Vec.dot a b);
  Alcotest.(check (float 1e-12)) "norm2" 14.0 (Vec.norm2 a);
  Alcotest.(check bool) "scale distributes" true
    (vclose (Vec.scale 2.0 (Vec.add a b)) (Vec.add (Vec.scale 2.0 a) (Vec.scale 2.0 b)));
  Alcotest.(check bool) "pointwise min/max" true
    (vclose (Vec.add (Vec.min_pointwise a b) (Vec.max_pointwise a b)) (Vec.add a b))

let test_octant_cases () =
  let c = Vec.zero in
  Alcotest.(check int) "+++" 7 (Geom.octant c (Vec.make 1.0 1.0 1.0));
  Alcotest.(check int) "---" 0 (Geom.octant c (Vec.make (-1.0) (-1.0) (-1.0)));
  Alcotest.(check int) "+--" 1 (Geom.octant c (Vec.make 1.0 (-1.0) (-1.0)));
  Alcotest.(check int) "-+-" 2 (Geom.octant c (Vec.make (-1.0) 1.0 (-1.0)));
  Alcotest.(check int) "--+" 4 (Geom.octant c (Vec.make (-1.0) (-1.0) 1.0));
  (* Boundary goes to the high side. *)
  Alcotest.(check int) "boundary" 7 (Geom.octant c Vec.zero)

let prop_octant_consistent_with_child_centre =
  QCheck.Test.make ~name:"points stay in their octant's child cube" ~count:500
    QCheck.(triple (float_range (-10.) 10.) (float_range (-10.) 10.)
              (float_range (-10.) 10.))
    (fun (x, y, z) ->
      let centre = Vec.make 0.5 (-0.25) 1.0 and half = 16.0 in
      let p = Vec.make x y z in
      let o = Geom.octant centre p in
      let cc = Geom.child_centre centre half o in
      (* p lies in the cube of the child octant it is assigned to. *)
      Geom.in_cube ~centre:cc ~half:(half /. 2.0) p
      || not (Geom.in_cube ~centre ~half p))

let test_child_centres_partition () =
  let centre = Vec.make 1.0 2.0 3.0 and half = 4.0 in
  (* All 8 child centres are distinct and inside the parent cube. *)
  let centres = List.init 8 (Geom.child_centre centre half) in
  List.iter
    (fun c ->
      Alcotest.(check bool) "inside parent" true (Geom.in_cube ~centre ~half c))
    centres;
  let uniq = List.sort_uniq compare centres in
  Alcotest.(check int) "8 distinct octants" 8 (List.length uniq);
  (* Their mean is the parent centre. *)
  let mean = Vec.scale 0.125 (List.fold_left Vec.add Vec.zero centres) in
  Alcotest.(check bool) "centred" true (vclose mean centre)

let test_bounding_cube () =
  let pts = [| Vec.make 0.0 0.0 0.0; Vec.make 2.0 1.0 (-1.0); Vec.make 1.0 3.0 0.5 |] in
  let centre, half = Geom.bounding_cube pts in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "contains all points" true
        (Geom.in_cube ~centre ~half p))
    pts;
  (* Not wastefully large. *)
  Alcotest.(check bool) "tight-ish" true (half < 3.0)

let test_attraction_properties () =
  let p1 = Vec.make 0.0 0.0 0.0 and p2 = Vec.make 2.0 0.0 0.0 in
  let a12 = Geom.attraction ~pos:p1 ~m:3.0 ~at:p2 in
  (* Points toward the mass. *)
  Alcotest.(check bool) "direction" true (a12.Vec.x > 0.0);
  Alcotest.(check (float 1e-12)) "no lateral component" 0.0
    (Float.abs a12.Vec.y +. Float.abs a12.Vec.z);
  (* Linear in the mass. *)
  let a2 = Geom.attraction ~pos:p1 ~m:6.0 ~at:p2 in
  Alcotest.(check (float 1e-9)) "mass linear" (2.0 *. Vec.norm a12) (Vec.norm a2);
  (* Softening keeps the self-limit finite. *)
  let self = Geom.attraction ~pos:p1 ~m:1.0 ~at:p1 in
  Alcotest.(check (float 0.0)) "softened at zero distance" 0.0 (Vec.norm self);
  (* ~1/r^2 decay far away. *)
  let near = Vec.norm (Geom.attraction ~pos:p1 ~m:1.0 ~at:(Vec.make 1.0 0.0 0.0)) in
  let far = Vec.norm (Geom.attraction ~pos:p1 ~m:1.0 ~at:(Vec.make 2.0 0.0 0.0)) in
  Alcotest.(check bool) "decay" true (near > 3.5 *. far && near < 4.5 *. far)

let prop_attraction_antisymmetric =
  QCheck.Test.make ~name:"equal masses attract symmetrically" ~count:200
    QCheck.(pair (triple (float_range (-5.) 5.) (float_range (-5.) 5.)
                    (float_range (-5.) 5.))
              (triple (float_range (-5.) 5.) (float_range (-5.) 5.)
                 (float_range (-5.) 5.)))
    (fun ((x1, y1, z1), (x2, y2, z2)) ->
      let p1 = Vec.make x1 y1 z1 and p2 = Vec.make x2 y2 z2 in
      let a = Geom.attraction ~pos:p1 ~m:1.0 ~at:p2 in
      let b = Geom.attraction ~pos:p2 ~m:1.0 ~at:p1 in
      Vec.norm (Vec.add a b) < 1e-9 *. (1.0 +. Vec.norm a))

let test_plummer_distribution () =
  let rng = Prng.create ~seed:7 in
  let n = 2000 in
  let bodies = Array.init n (fun _ -> Geom.plummer rng) in
  (* Radii bounded by construction, centre of mass near the origin. *)
  Array.iter
    (fun (w, p, _) ->
      Alcotest.(check (float 0.0)) "unit weight" 1.0 w;
      Alcotest.(check bool) "radius bounded" true (Vec.norm p < 8.0))
    bodies;
  let com =
    Vec.scale (1.0 /. float_of_int n)
      (Array.fold_left (fun acc (_, p, _) -> Vec.add acc p) Vec.zero bodies)
  in
  Alcotest.(check bool) "roughly centred" true (Vec.norm com < 0.25);
  (* Half-mass radius of the Plummer model is ~1.3a; loose sanity check. *)
  let radii = Array.map (fun (_, p, _) -> Vec.norm p) bodies in
  Array.sort compare radii;
  let median = radii.(n / 2) in
  Alcotest.(check bool)
    (Printf.sprintf "median radius plausible (%.2f)" median)
    true
    (median > 0.8 && median < 2.0)

let test_uniform_distribution_bounds () =
  let rng = Prng.create ~seed:8 in
  for _ = 1 to 500 do
    let _, p, v = Geom.uniform rng in
    Alcotest.(check bool) "position in cube" true
      (Geom.in_cube ~centre:Vec.zero ~half:1.0 p);
    Alcotest.(check bool) "small velocity" true (Vec.norm v < 0.1)
  done

let suite =
  [
    Alcotest.test_case "vec algebra" `Quick test_vec_algebra;
    Alcotest.test_case "octant cases" `Quick test_octant_cases;
    QCheck_alcotest.to_alcotest prop_octant_consistent_with_child_centre;
    Alcotest.test_case "child centres partition" `Quick test_child_centres_partition;
    Alcotest.test_case "bounding cube" `Quick test_bounding_cube;
    Alcotest.test_case "attraction properties" `Quick test_attraction_properties;
    QCheck_alcotest.to_alcotest prop_attraction_antisymmetric;
    Alcotest.test_case "plummer distribution" `Quick test_plummer_distribution;
    Alcotest.test_case "uniform distribution" `Quick test_uniform_distribution_bounds;
  ]
