(* Error paths and API edge cases across the stack. *)

module Mesh = Diva_mesh.Mesh
module Deco = Diva_mesh.Decomposition
module Network = Diva_simnet.Network
module Machine = Diva_simnet.Machine
module Dsm = Diva_core.Dsm
open Helpers

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

let test_mesh_argument_errors () =
  Alcotest.(check bool) "zero side" true
    (raises_invalid (fun () -> Mesh.create ~rows:0 ~cols:3));
  Alcotest.(check bool) "empty dims" true
    (raises_invalid (fun () -> Mesh.create_nd ~dims:[||]));
  let m = Mesh.create ~rows:2 ~cols:2 in
  Alcotest.(check bool) "node_at out of range" true
    (raises_invalid (fun () -> Mesh.node_at m ~row:2 ~col:0));
  let m3 = Mesh.create_nd ~dims:[| 2; 2; 2 |] in
  Alcotest.(check bool) "rows on 3-D" true
    (raises_invalid (fun () -> Mesh.rows m3));
  Alcotest.(check bool) "coords on 3-D" true
    (raises_invalid (fun () -> Mesh.coords m3 0));
  Alcotest.(check bool) "node_at_nd wrong arity" true
    (raises_invalid (fun () -> Mesh.node_at_nd m [| 1 |]))

let test_decomposition_argument_errors () =
  let m = Mesh.create ~rows:4 ~cols:4 in
  Alcotest.(check bool) "leaf_size 0" true
    (raises_invalid (fun () -> Deco.build m ~arity:Deco.Two ~leaf_size:0));
  Alcotest.(check bool) "arity 3" true
    (raises_invalid (fun () -> ignore (Deco.arity_of_int 3)));
  let d = Deco.build m ~arity:Deco.Two ~leaf_size:1 in
  Alcotest.(check bool) "next_hop self" true
    (raises_invalid (fun () -> Deco.next_hop d ~from:3 ~target:3))

let test_dsm_argument_errors () =
  let _, dsm = make_dsm ~rows:2 ~cols:2 (Dsm.access_tree ~arity:2 ()) in
  Alcotest.(check bool) "bad owner" true
    (raises_invalid (fun () -> Dsm.create_var dsm ~owner:99 ~size:8 0));
  Alcotest.(check bool) "negative size" true
    (raises_invalid (fun () -> Dsm.create_var dsm ~owner:0 ~size:(-1) 0))

let test_unlock_without_lock () =
  let net, dsm = make_dsm ~rows:2 ~cols:2 (Dsm.access_tree ~arity:2 ()) in
  let v = Dsm.create_var dsm ~owner:0 ~size:8 0 in
  let raised = ref false in
  Network.spawn net 1 (fun () ->
      match Dsm.unlock dsm 1 v with
      | exception Invalid_argument _ -> raised := true
      | () -> ());
  Network.run net;
  Alcotest.(check bool) "unlock without holding" true !raised

let test_network_compute_negative () =
  let net = make_net ~rows:1 ~cols:1 () in
  Network.spawn net 0 (fun () ->
      match Network.charge net 0 (-1.0) with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "negative charge accepted");
  Network.run net

let test_zero_size_variable () =
  (* Size-0 variables (pure synchronization objects) must work. *)
  let net, dsm = make_dsm ~rows:2 ~cols:2 (Dsm.access_tree ~arity:2 ()) in
  let v = Dsm.create_var dsm ~owner:0 ~size:0 () in
  run_procs net (fun p ->
      Dsm.lock dsm p v;
      Dsm.unlock dsm p v;
      Dsm.barrier dsm p;
      Dsm.read dsm p v);
  Alcotest.(check unit) "unit value" () (Dsm.peek v)

let test_large_variable_times () =
  (* A 1 MB variable takes about a second per link at 1 byte/us. *)
  let machine = Machine.gcel in
  let net = Network.create ~machine ~rows:1 ~cols:2 () in
  let dsm = Dsm.create net ~strategy:(Dsm.access_tree ~arity:2 ()) () in
  let v = Dsm.create_var dsm ~owner:0 ~size:1_000_000 7 in
  Network.spawn net 1 (fun () -> ignore (Dsm.read dsm 1 v));
  Network.spawn net 0 (fun () -> ());
  Network.run net;
  Alcotest.(check bool)
    (Printf.sprintf "transfer-dominated time (%.0f us)" (Network.now net))
    true
    (Network.now net >= 1_000_000.0)

let test_many_small_variables () =
  let net, dsm = make_dsm ~rows:4 ~cols:4 (Dsm.access_tree ~arity:4 ()) in
  let vars = Array.init 500 (fun i -> Dsm.create_var dsm ~owner:(i mod 16) ~size:8 i) in
  run_procs net (fun p ->
      Array.iteri
        (fun i v ->
          if (i + p) mod 7 = 0 then
            Alcotest.(check int) "value" i (Dsm.read dsm p v))
        vars);
  Array.iteri (fun i v -> Alcotest.(check int) "peek" i (Dsm.peek v)) vars

let test_retire_and_reuse_memory () =
  let net, dsm = make_dsm ~rows:4 ~cols:4 (Dsm.access_tree ~arity:2 ()) in
  let finished = ref false in
  run_procs net (fun p ->
      for round = 1 to 5 do
        (* Allocate short-lived variables, share them, retire them. *)
        let v = Dsm.create_var dsm ~owner:p ~size:64 (p * round) in
        Dsm.barrier dsm p;
        ignore (Dsm.read dsm p v);
        Dsm.barrier dsm p;
        Dsm.retire_var dsm v;
        Dsm.barrier dsm p
      done;
      if p = 0 then finished := true);
  Alcotest.(check bool) "completed" true !finished

let test_sim_events_counted () =
  let net = make_net ~rows:2 ~cols:2 () in
  Network.spawn net 0 (fun () -> Network.compute net 0 5.0);
  Network.run net;
  Alcotest.(check bool) "events executed" true
    (Diva_simnet.Sim.events_executed (Network.sim net) >= 2)

let suite =
  [
    Alcotest.test_case "mesh argument errors" `Quick test_mesh_argument_errors;
    Alcotest.test_case "decomposition argument errors" `Quick
      test_decomposition_argument_errors;
    Alcotest.test_case "dsm argument errors" `Quick test_dsm_argument_errors;
    Alcotest.test_case "unlock without lock" `Quick test_unlock_without_lock;
    Alcotest.test_case "negative charge rejected" `Quick
      test_network_compute_negative;
    Alcotest.test_case "zero-size variable" `Quick test_zero_size_variable;
    Alcotest.test_case "large variable timing" `Quick test_large_variable_times;
    Alcotest.test_case "many small variables" `Quick test_many_small_variables;
    Alcotest.test_case "retire and reuse" `Quick test_retire_and_reuse_memory;
    Alcotest.test_case "sim event counter" `Quick test_sim_events_counted;
  ]
