(* d-dimensional meshes: the theory paper's general setting. Routing,
   decomposition and the full DSM stack must work unchanged on 3-D (and
   higher) meshes. *)

module Mesh = Diva_mesh.Mesh
module Deco = Diva_mesh.Decomposition
module Network = Diva_simnet.Network
module Link_stats = Diva_simnet.Link_stats
module Dsm = Diva_core.Dsm
module Barnes_hut = Diva_apps.Barnes_hut
module Bitonic = Diva_apps.Bitonic
module Vec = Diva_apps.Vec
module Prng = Diva_util.Prng

let run_procs net f =
  for p = 0 to Network.num_nodes net - 1 do
    Network.spawn net p (fun () -> f p)
  done;
  Network.run net

let test_3d_coords_roundtrip () =
  let m = Mesh.create_nd ~dims:[| 3; 4; 5 |] in
  Alcotest.(check int) "num nodes" 60 (Mesh.num_nodes m);
  for v = 0 to 59 do
    Alcotest.(check int) "roundtrip" v (Mesh.node_at_nd m (Mesh.coords_nd m v))
  done

let test_3d_route_properties () =
  let m = Mesh.create_nd ~dims:[| 4; 4; 4 |] in
  let rng = Prng.create ~seed:1 in
  for _ = 1 to 300 do
    let src = Prng.int rng 64 and dst = Prng.int rng 64 in
    let route = Mesh.route m ~src ~dst in
    Alcotest.(check int) "shortest" (Mesh.distance m src dst) (List.length route);
    (* Connectivity. *)
    let cur = ref src in
    List.iter
      (fun l ->
        let a, b = Mesh.link_endpoints m l in
        Alcotest.(check int) "chained" !cur a;
        cur := b)
      route;
    Alcotest.(check int) "reaches dst" dst !cur
  done

let test_3d_route_dimension_order () =
  (* Last dimension is adjusted first; once a dimension changes, later
     (higher-index) dimensions must never change again. *)
  let m = Mesh.create_nd ~dims:[| 3; 3; 3 |] in
  let rng = Prng.create ~seed:2 in
  for _ = 1 to 200 do
    let src = Prng.int rng 27 and dst = Prng.int rng 27 in
    let dims_seen = ref [] in
    Mesh.iter_route m ~src ~dst (fun l ->
        let a, b = Mesh.link_endpoints m l in
        let ca = Mesh.coords_nd m a and cb = Mesh.coords_nd m b in
        let dim = ref (-1) in
        Array.iteri (fun k x -> if x <> cb.(k) then dim := k) ca;
        dims_seen := !dim :: !dims_seen);
    (* dims_seen is collected newest-first; reversed it must be
       non-increasing (dimension d, then d-1, ...). *)
    let order = List.rev !dims_seen in
    let rec non_increasing = function
      | a :: (b :: _ as rest) -> a >= b && non_increasing rest
      | _ -> true
    in
    Alcotest.(check bool) "dimension order" true (non_increasing order)
  done

let test_1d_mesh () =
  (* A path network is just a 1-dimensional mesh. *)
  let m = Mesh.create_nd ~dims:[| 8 |] in
  Alcotest.(check int) "distance" 7 (Mesh.distance m 0 7);
  Alcotest.(check int) "route length" 7 (List.length (Mesh.route m ~src:0 ~dst:7))

let test_3d_decomposition () =
  let m = Mesh.create_nd ~dims:[| 4; 4; 4 |] in
  List.iter
    (fun (arity, leaf_size) ->
      let d = Deco.build m ~arity ~leaf_size in
      (* One leaf per processor; children partition parents. *)
      let leaves = ref 0 in
      for id = 0 to d.Deco.num_tree_nodes - 1 do
        if Deco.is_leaf d id then incr leaves
        else begin
          let total =
            Array.fold_left
              (fun acc k -> acc + Deco.size d.Deco.submesh.(k))
              0 d.Deco.children.(id)
          in
          Alcotest.(check int) "partition" (Deco.size d.Deco.submesh.(id)) total
        end
      done;
      Alcotest.(check int) "leaves" 64 !leaves)
    [ (Deco.Two, 1); (Deco.Four, 1); (Deco.Two, 8) ];
  (* The 2-ary decomposition of a 4x4x4 mesh has height log2(64) = 6. *)
  let d = Deco.build m ~arity:Deco.Two ~leaf_size:1 in
  Alcotest.(check int) "height" 6 (Deco.height d)

let test_3d_snake_locality () =
  let m = Mesh.create_nd ~dims:[| 4; 4; 4 |] in
  let order = Deco.snake_order m in
  let sorted = Array.copy order in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 64 Fun.id) sorted;
  (* The decomposition order is not a Hilbert curve: single steps across
     a split boundary may be long, but consecutive leaves are close on
     average because every contiguous range maps into a subcube. *)
  let total = ref 0 in
  for i = 0 to 62 do
    total := !total + Mesh.distance m order.(i) order.(i + 1)
  done;
  let mean = float_of_int !total /. 63.0 in
  Alcotest.(check bool)
    (Printf.sprintf "consecutive nearby on average (%.2f)" mean)
    true (mean <= 2.5)

let strategies_3d =
  [
    ("2-ary", Dsm.access_tree ~arity:2 ());
    ("4-ary", Dsm.access_tree ~arity:4 ());
    ("2-8-ary", Dsm.access_tree ~arity:2 ~leaf_size:8 ());
    ("fixed-home", Dsm.Fixed_home);
  ]

let test_3d_dsm_coherence () =
  List.iter
    (fun (name, strat) ->
      let net = Network.create_nd ~dims:[| 2; 3; 4 |] () in
      let dsm = Dsm.create net ~strategy:strat () in
      let v = Dsm.create_var dsm ~owner:5 ~size:64 0 in
      run_procs net (fun p ->
          Alcotest.(check int) (name ^ ": initial") 0 (Dsm.read dsm p v);
          Dsm.barrier dsm p;
          if p = 13 then Dsm.write dsm p v 99;
          Dsm.barrier dsm p;
          Alcotest.(check int) (name ^ ": after write") 99 (Dsm.read dsm p v)))
    strategies_3d

let test_3d_locks_and_reduce () =
  let net = Network.create_nd ~dims:[| 2; 2; 4 |] () in
  let dsm = Dsm.create net ~strategy:(Dsm.access_tree ~arity:2 ()) () in
  let v = Dsm.create_var dsm ~owner:0 ~size:16 0 in
  let r = Dsm.reducer dsm ~combine:( + ) ~size:8 in
  let sum = ref 0 in
  run_procs net (fun p ->
      Dsm.lock dsm p v;
      Dsm.write dsm p v (Dsm.read dsm p v + 1);
      Dsm.unlock dsm p v;
      let s = Dsm.reduce dsm p r 1 in
      if p = 0 then sum := s);
  Alcotest.(check int) "counter" 16 (Dsm.peek v);
  Alcotest.(check int) "reduce" 16 !sum

let test_3d_barnes_hut_exact () =
  (* The full application stack on a 3-D network, verified against the
     sequential reference. *)
  let cfg =
    { (Barnes_hut.default_config ~nbodies:32) with
      Barnes_hut.theta = 0.0; steps = 2; warmup = 0 }
  in
  let net = Network.create_nd ~dims:[| 2; 2; 2 |] () in
  let dsm = Dsm.create net ~strategy:(Dsm.access_tree ~arity:2 ()) () in
  let app = Barnes_hut.setup dsm cfg in
  run_procs net (fun p -> Barnes_hut.fiber app p);
  let got = Barnes_hut.final_bodies app in
  let want = Barnes_hut.reference cfg in
  Array.iteri
    (fun i (_, gp, _) ->
      let _, wp, _ = want.(i) in
      let err = Vec.norm (Vec.sub gp wp) /. Float.max 1e-12 (Vec.norm wp) in
      Alcotest.(check bool) (Printf.sprintf "body %d" i) true (err < 1e-6))
    got

let test_3d_bitonic () =
  let net = Network.create_nd ~dims:[| 2; 2; 4 |] () in
  let dsm = Dsm.create net ~strategy:(Dsm.access_tree ~arity:2 ()) () in
  let app = Bitonic.setup dsm { Bitonic.keys = 16; compute = false } in
  run_procs net (fun p -> Bitonic.fiber app p);
  Alcotest.(check bool) "3-D bitonic sorts" true (Bitonic.verify app)

let test_3d_richer_network_lowers_congestion () =
  (* 64 processors as 8x8 (2-D) vs 4x4x4 (3-D): the 3-D mesh has more links
     and shorter routes, so the same broadcast workload congests less. *)
  let congestion net =
    let dsm = Dsm.create net ~strategy:(Dsm.access_tree ~arity:2 ()) () in
    let v = Dsm.create_var dsm ~owner:0 ~size:1024 0 in
    run_procs net (fun p -> ignore (Dsm.read dsm p v));
    Link_stats.congestion_bytes (Network.stats net)
  in
  let c2 = congestion (Network.create ~rows:8 ~cols:8 ()) in
  let c3 = congestion (Network.create_nd ~dims:[| 4; 4; 4 |] ()) in
  Alcotest.(check bool)
    (Printf.sprintf "3-D (%d) <= 2-D (%d)" c3 c2)
    true (c3 <= c2)

let suite =
  [
    Alcotest.test_case "3D coords roundtrip" `Quick test_3d_coords_roundtrip;
    Alcotest.test_case "3D route properties" `Quick test_3d_route_properties;
    Alcotest.test_case "3D dimension order" `Quick test_3d_route_dimension_order;
    Alcotest.test_case "1D mesh" `Quick test_1d_mesh;
    Alcotest.test_case "3D decomposition" `Quick test_3d_decomposition;
    Alcotest.test_case "3D snake locality" `Quick test_3d_snake_locality;
    Alcotest.test_case "3D DSM coherence" `Quick test_3d_dsm_coherence;
    Alcotest.test_case "3D locks and reduce" `Quick test_3d_locks_and_reduce;
    Alcotest.test_case "3D Barnes-Hut exact" `Quick test_3d_barnes_hut_exact;
    Alcotest.test_case "3D bitonic" `Quick test_3d_bitonic;
    Alcotest.test_case "3D lowers congestion" `Quick
      test_3d_richer_network_lowers_congestion;
  ]
