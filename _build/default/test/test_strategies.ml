(* Protocol-level tests of the two strategies' distinctive mechanics, plus
   growth-order checks corresponding to the paper's Figure 2 analysis. *)

module Network = Diva_simnet.Network
module Link_stats = Diva_simnet.Link_stats
module Dsm = Diva_core.Dsm
module Access_tree = Diva_core.Access_tree
module Fixed_home = Diva_core.Fixed_home
module Types = Diva_core.Types
open Helpers

(* --- fixed home ownership mechanics --------------------------------- *)

let test_fh_owner_write_is_local () =
  let net, dsm = make_dsm ~rows:4 ~cols:4 Dsm.Fixed_home in
  let v = Dsm.create_var dsm ~owner:3 ~size:64 0 in
  run_procs net (fun p ->
      if p = 3 then begin
        (* The creator owns the variable: repeated writes must stay local. *)
        for i = 1 to 10 do
          Dsm.write dsm p v i
        done
      end);
  Alcotest.(check int) "value" 10 (Dsm.peek v);
  Alcotest.(check int) "no messages at all" 0
    (Link_stats.total_msgs (Network.stats net))

let test_fh_write_takes_ownership () =
  let net, dsm = make_dsm ~rows:4 ~cols:4 Dsm.Fixed_home in
  let v = Dsm.create_var dsm ~owner:0 ~size:64 0 in
  let before = ref 0 and after = ref 0 in
  run_procs net (fun p ->
      if p = 5 then begin
        ignore (Dsm.read dsm p v);
        Dsm.write dsm p v 1;
        before := Link_stats.total_msgs (Network.stats net);
        (* Now p owns the variable: further writes are free. *)
        for i = 2 to 8 do
          Dsm.write dsm p v i
        done;
        after := Link_stats.total_msgs (Network.stats net)
      end);
  Alcotest.(check int) "value" 8 (Dsm.peek v);
  Alcotest.(check int) "owner writes cost nothing" !before !after

let test_fh_read_moves_ownership_home () =
  (* After a non-owner read, the ownership is back at the home, so the
     ex-owner's next write must go through the home again. *)
  let net, dsm = make_dsm ~rows:4 ~cols:4 Dsm.Fixed_home in
  let v = Dsm.create_var dsm ~owner:0 ~size:64 0 in
  run_procs net (fun p ->
      if p = 0 then Dsm.write dsm p v 7;
      Dsm.barrier dsm p;
      if p = 9 then Alcotest.(check int) "reader sees it" 7 (Dsm.read dsm p v);
      Dsm.barrier dsm p;
      if p = 0 then begin
        let m0 = Link_stats.total_msgs (Network.stats net) in
        Dsm.write dsm p v 8;
        let m1 = Link_stats.total_msgs (Network.stats net) in
        Alcotest.(check bool) "write after remote read costs messages" true
          (m1 > m0)
      end);
  Alcotest.(check int) "value" 8 (Dsm.peek v)

let test_fh_home_assignment_spreads () =
  let net, dsm = make_dsm ~rows:8 ~cols:8 Dsm.Fixed_home in
  ignore net;
  let homes = Hashtbl.create 64 in
  for _ = 1 to 200 do
    let v = Dsm.create_var dsm ~owner:0 ~size:8 0 in
    match Dsm.access_tree_handle dsm with
    | Some _ -> ()
    | None -> Hashtbl.replace homes (Dsm.copy_holder_places dsm v) ()
  done;
  (* The copies all start at the owner, but homes must be spread: check via
     the internal seed-derived placement being diverse is covered by the
     embedding tests; here we only require the API to be consistent. *)
  Alcotest.(check bool) "holders are the owner" true (Hashtbl.length homes = 1)

(* --- access tree component shapes ------------------------------------ *)

let at_of dsm =
  match Dsm.access_tree_handle dsm with
  | Some at -> at
  | None -> Alcotest.fail "expected an access-tree DSM"

let test_at_read_creates_path_component () =
  let net, dsm = make_dsm ~rows:4 ~cols:4 (Dsm.access_tree ~arity:2 ()) in
  let v = Dsm.create_var dsm ~owner:0 ~size:64 42 in
  run_procs net (fun p -> if p = 15 then ignore (Dsm.read dsm p v));
  let at = at_of dsm in
  let holders = Access_tree.copy_holders at (Dsm.typed v) in
  (* The component is the tree path leaf(0) .. leaf(15). *)
  Alcotest.(check bool) "more than one copy" true (List.length holders > 1);
  Alcotest.(check int) "ncopies consistent" (List.length holders)
    (Access_tree.ncopies at (Dsm.typed v));
  (match Access_tree.validate at (Dsm.typed v) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore net

let test_at_write_shrinks_component () =
  let net, dsm = make_dsm ~rows:4 ~cols:4 (Dsm.access_tree ~arity:2 ()) in
  let v = Dsm.create_var dsm ~owner:0 ~size:64 0 in
  let after_reads = ref 0 and after_write = ref 0 in
  run_procs net (fun p ->
      ignore (Dsm.read dsm p v);
      Dsm.barrier dsm p;
      if p = 0 then after_reads := Dsm.ncopies dsm v;
      Dsm.barrier dsm p;
      if p = 10 then Dsm.write dsm p v 1;
      Dsm.barrier dsm p;
      if p = 0 then after_write := Dsm.ncopies dsm v);
  Alcotest.(check bool) "reads grow the component" true (!after_reads >= 16);
  Alcotest.(check bool) "write shrinks it sharply" true
    (!after_write < !after_reads / 2);
  ignore net

let test_at_sole_writer_no_messages () =
  let net, dsm = make_dsm ~rows:4 ~cols:4 (Dsm.access_tree ~arity:4 ()) in
  let v = Dsm.create_var dsm ~owner:6 ~size:64 0 in
  run_procs net (fun p ->
      if p = 6 then
        for i = 1 to 20 do
          Dsm.write dsm p v i;
          Alcotest.(check int) "rmw" i (Dsm.read dsm p v)
        done);
  Alcotest.(check int) "no network traffic" 0
    (Link_stats.total_msgs (Network.stats net))

let test_at_place_deterministic_per_var () =
  let _, dsm = make_dsm ~rows:8 ~cols:8 (Dsm.access_tree ~arity:2 ()) in
  let v1 = Dsm.create_var dsm ~owner:0 ~size:8 0 in
  let v2 = Dsm.create_var dsm ~owner:0 ~size:8 0 in
  let at = at_of dsm in
  (* Roots of different variables land on different nodes with high
     probability; the same variable's root is stable. *)
  let r1 = Access_tree.place at (Dsm.typed v1) 0 in
  let r1' = Access_tree.place at (Dsm.typed v1) 0 in
  Alcotest.(check int) "stable placement" r1 r1';
  let distinct = ref false in
  for i = 0 to 20 do
    let v = Dsm.create_var dsm ~owner:0 ~size:8 0 in
    ignore i;
    if Access_tree.place at (Dsm.typed v) 0 <> r1 then distinct := true
  done;
  Alcotest.(check bool) "roots vary across variables" true !distinct;
  ignore v2

(* --- Figure 2: growth orders of the single-block broadcast ----------- *)

(* All processors of the mesh read one variable. The paper's analysis:
   total communication load is Theta(m * P) for the fixed home strategy but
   Theta(m * sqrt P * log P) for the access tree — so the quotient
   FH-load / AT-load must grow roughly like sqrt P / log P. *)
let broadcast_load strat q =
  let net, dsm = make_dsm ~rows:q ~cols:q strat in
  let v = Dsm.create_var dsm ~owner:0 ~size:1024 0 in
  run_procs net (fun p -> ignore (Dsm.read dsm p v));
  Link_stats.total_bytes (Network.stats net)

let test_fig2_growth_orders () =
  let quotient q =
    float_of_int (broadcast_load Dsm.Fixed_home q)
    /. float_of_int (broadcast_load (Dsm.access_tree ~arity:4 ()) q)
  in
  let q8 = quotient 8 and q16 = quotient 16 in
  Alcotest.(check bool)
    (Printf.sprintf "FH/AT broadcast load grows with P (%.2f -> %.2f)" q8 q16)
    true
    (q16 > q8 *. 1.2);
  Alcotest.(check bool) "AT beats FH already at 8x8" true (q8 > 1.5)

let test_fig2_congestion_orders () =
  (* Same experiment, by congestion: FH Theta(m*P) vs AT Theta(m*sqrtP*logP). *)
  let congestion strat q =
    let net, dsm = make_dsm ~rows:q ~cols:q strat in
    let v = Dsm.create_var dsm ~owner:0 ~size:1024 0 in
    run_procs net (fun p -> ignore (Dsm.read dsm p v));
    ignore dsm;
    Link_stats.congestion_bytes (Network.stats net)
  in
  let fh = congestion Dsm.Fixed_home 16 in
  let at = congestion (Dsm.access_tree ~arity:4 ()) 16 in
  Alcotest.(check bool)
    (Printf.sprintf "broadcast congestion: AT %d well below FH %d" at fh)
    true
    (at * 2 < fh)

(* --- barriers / reductions under stress ------------------------------ *)

let test_many_barriers () =
  List.iter
    (fun (name, strat) ->
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let counter = ref 0 in
      run_procs net (fun p ->
          for r = 1 to 50 do
            if p = r mod 16 then incr counter;
            Dsm.barrier dsm p
          done);
      Alcotest.(check int) (name ^ ": all rounds ran") 50 !counter)
    [ List.nth strategies 1; List.nth strategies 7 ]

let test_reduce_stress () =
  let net, dsm = make_dsm ~rows:4 ~cols:4 (Dsm.access_tree ~arity:4 ()) in
  let r = Dsm.reducer dsm ~combine:( + ) ~size:8 in
  let sums = Array.make 20 0 in
  run_procs net (fun p ->
      for round = 0 to 19 do
        let s = Dsm.reduce dsm p r (p * round) in
        if p = 0 then sums.(round) <- s
      done);
  Array.iteri
    (fun round s ->
      Alcotest.(check int) (Printf.sprintf "round %d" round) (120 * round) s)
    sums;
  ignore net

let test_lock_fifo_like_progress () =
  (* All processors repeatedly contend on one lock; every processor must
     get the lock the same number of times (progress, no starvation). *)
  List.iter
    (fun (name, strat) ->
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let v = Dsm.create_var dsm ~owner:0 ~size:8 0 in
      let acquired = Array.make 16 0 in
      run_procs net (fun p ->
          for _ = 1 to 4 do
            Dsm.lock dsm p v;
            acquired.(p) <- acquired.(p) + 1;
            Network.compute net p 25.0;
            Dsm.unlock dsm p v
          done);
      Array.iteri
        (fun p n ->
          Alcotest.(check int) (Printf.sprintf "%s: proc %d acquisitions" name p) 4 n)
        acquired)
    [ List.nth strategies 0; List.nth strategies 7 ]

let suite =
  [
    Alcotest.test_case "FH owner write local" `Quick test_fh_owner_write_is_local;
    Alcotest.test_case "FH write takes ownership" `Quick
      test_fh_write_takes_ownership;
    Alcotest.test_case "FH read moves ownership home" `Quick
      test_fh_read_moves_ownership_home;
    Alcotest.test_case "FH initial holders" `Quick test_fh_home_assignment_spreads;
    Alcotest.test_case "AT read creates path component" `Quick
      test_at_read_creates_path_component;
    Alcotest.test_case "AT write shrinks component" `Quick
      test_at_write_shrinks_component;
    Alcotest.test_case "AT sole writer silent" `Quick test_at_sole_writer_no_messages;
    Alcotest.test_case "AT per-var placement" `Quick
      test_at_place_deterministic_per_var;
    Alcotest.test_case "Fig2 growth orders (total load)" `Quick
      test_fig2_growth_orders;
    Alcotest.test_case "Fig2 growth orders (congestion)" `Quick
      test_fig2_congestion_orders;
    Alcotest.test_case "many barriers" `Quick test_many_barriers;
    Alcotest.test_case "reduce stress" `Quick test_reduce_stress;
    Alcotest.test_case "lock progress" `Quick test_lock_fifo_like_progress;
  ]

let test_remapping_stays_correct () =
  let strategy = Dsm.access_tree ~arity:2 ~remap_threshold:8 () in
  let net, dsm = make_dsm ~rows:4 ~cols:4 strategy in
  let vars = Array.init 4 (fun i -> Dsm.create_var dsm ~owner:i ~size:64 0) in
  run_procs net (fun p ->
      for r = 1 to 6 do
        Array.iter (fun v -> ignore (Dsm.read dsm p v)) vars;
        Dsm.barrier dsm p;
        if p = r mod 16 then
          Array.iteri (fun i v -> Dsm.write dsm p v ((r * 10) + i)) vars;
        Dsm.barrier dsm p;
        Array.iteri
          (fun i v ->
            Alcotest.(check int) "coherent despite remapping" ((r * 10) + i)
              (Dsm.read dsm p v))
          vars;
        Dsm.barrier dsm p
      done);
  Alcotest.(check bool) "remaps happened" true (Dsm.remaps dsm > 0);
  Array.iter
    (fun v ->
      match Dsm.validate_var dsm v with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    vars

let suite =
  suite
  @ [
      Alcotest.test_case "remapping stays correct" `Quick
        test_remapping_stays_correct;
    ]

let test_handopt_matmul_exact_congestion () =
  (* Analytic check of the traffic accounting: in the hand-optimized
     broadcast, the directed link entering the last column of a row carries
     exactly q-1 block messages, and that is the maximum anywhere. *)
  List.iter
    (fun q ->
      let net = make_net ~rows:q ~cols:q () in
      let app =
        Diva_apps.Matmul_handopt.setup net
          { Diva_apps.Matmul_handopt.block = 64; compute = false }
      in
      run_procs net (fun p -> Diva_apps.Matmul_handopt.fiber app p);
      let st = Network.stats net in
      Alcotest.(check int)
        (Printf.sprintf "congestion messages on %dx%d" q q)
        (q - 1)
        (Link_stats.congestion_msgs st);
      Alcotest.(check int)
        (Printf.sprintf "congestion bytes on %dx%d" q q)
        ((q - 1) * ((64 * 4) + 16))
        (Link_stats.congestion_bytes st))
    [ 4; 8 ]

let test_concurrent_writers_agree () =
  (* All processors write the same variable concurrently (no barrier
     between the writes): afterwards everyone must read the same value,
     and it must be one of the written values. *)
  List.iter
    (fun (name, strat) ->
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let v = Dsm.create_var dsm ~owner:0 ~size:32 (-1) in
      let seen = Array.make 16 (-2) in
      run_procs net (fun p ->
          Dsm.write dsm p v (1000 + p);
          Dsm.barrier dsm p;
          seen.(p) <- Dsm.read dsm p v);
      let final = seen.(0) in
      Alcotest.(check bool) (name ^ ": value was written") true
        (final >= 1000 && final < 1016);
      Array.iteri
        (fun p x ->
          Alcotest.(check int) (Printf.sprintf "%s: proc %d agrees" name p) final x)
        seen;
      Alcotest.(check int) (name ^ ": peek agrees") final (Dsm.peek v);
      match Dsm.validate_var dsm v with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    strategies

let test_concurrent_rmw_with_locks_many_procs () =
  (* Heavier lock stress on a bigger mesh. *)
  let net, dsm = make_dsm ~rows:8 ~cols:8 (Dsm.access_tree ~arity:4 ()) in
  let v = Dsm.create_var dsm ~owner:17 ~size:16 0 in
  run_procs net (fun p ->
      for _ = 1 to 2 do
        Dsm.lock dsm p v;
        let x = Dsm.read dsm p v in
        Network.compute net p 10.0;
        Dsm.write dsm p v (x + 1);
        Dsm.unlock dsm p v
      done);
  Alcotest.(check int) "128 atomic increments" 128 (Dsm.peek v)

let suite =
  suite
  @ [
      Alcotest.test_case "handopt matmul exact congestion" `Quick
        test_handopt_matmul_exact_congestion;
      Alcotest.test_case "concurrent writers agree" `Quick
        test_concurrent_writers_agree;
      Alcotest.test_case "lock stress 8x8" `Quick
        test_concurrent_rmw_with_locks_many_procs;
    ]
