(* End-to-end application tests: every application must produce correct
   results under every data-management strategy and under the
   hand-optimized baselines. *)

module Network = Diva_simnet.Network
module Link_stats = Diva_simnet.Link_stats
module Dsm = Diva_core.Dsm
module Matmul = Diva_apps.Matmul
module Matmul_handopt = Diva_apps.Matmul_handopt
module Bitonic = Diva_apps.Bitonic
module Bitonic_handopt = Diva_apps.Bitonic_handopt
module Barnes_hut = Diva_apps.Barnes_hut
module Vec = Diva_apps.Vec
open Helpers

let test_matmul_all_strategies () =
  List.iter
    (fun (name, strat) ->
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let app = Matmul.setup dsm { Matmul.block = 16; compute = true } in
      run_procs net (fun p -> Matmul.fiber app p);
      Alcotest.(check bool) (name ^ ": matmul verifies") true (Matmul.verify app);
      Alcotest.(check int) (name ^ ": reads counted") (16 * 4 * 2)
        (Matmul.blocks_read app))
    strategies

let test_matmul_handopt () =
  let net = make_net ~rows:4 ~cols:4 () in
  let app = Matmul_handopt.setup net { Matmul_handopt.block = 16; compute = true } in
  run_procs net (fun p -> Matmul_handopt.fiber app p);
  Alcotest.(check bool) "handopt matmul verifies" true (Matmul_handopt.verify app)

let test_matmul_handopt_congestion_optimal () =
  (* The hand-optimized strategy must beat every dynamic strategy on
     congestion (it is provably optimal). *)
  let congestion strat =
    match strat with
    | None ->
        let net = make_net ~rows:8 ~cols:8 () in
        let app =
          Matmul_handopt.setup net { Matmul_handopt.block = 64; compute = false }
        in
        run_procs net (fun p -> Matmul_handopt.fiber app p);
        Link_stats.congestion_bytes (Network.stats net)
    | Some s ->
        let net, dsm = make_dsm ~rows:8 ~cols:8 s in
        let app = Matmul.setup dsm { Matmul.block = 64; compute = false } in
        run_procs net (fun p -> Matmul.fiber app p);
        Link_stats.congestion_bytes (Network.stats net)
  in
  let hand = congestion None in
  let tree = congestion (Some (Dsm.access_tree ~arity:4 ())) in
  let home = congestion (Some Dsm.Fixed_home) in
  Alcotest.(check bool) "handopt <= access tree" true (hand <= tree);
  Alcotest.(check bool) "handopt <= fixed home" true (hand <= home);
  (* And the paper's headline: the access tree beats the fixed home. *)
  Alcotest.(check bool) "access tree < fixed home" true (tree < home)

let test_bitonic_all_strategies () =
  List.iter
    (fun (name, strat) ->
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let app = Bitonic.setup dsm { Bitonic.keys = 8; compute = true } in
      run_procs net (fun p -> Bitonic.fiber app p);
      Alcotest.(check bool) (name ^ ": bitonic sorts") true (Bitonic.verify app))
    strategies

let test_bitonic_2x4 () =
  (* Non-square but power-of-two processor count. *)
  let net, dsm = make_dsm ~rows:2 ~cols:4 (Dsm.access_tree ~arity:2 ()) in
  let app = Bitonic.setup dsm { Bitonic.keys = 16; compute = false } in
  run_procs net (fun p -> Bitonic.fiber app p);
  Alcotest.(check bool) "bitonic 2x4 sorts" true (Bitonic.verify app)

let test_bitonic_handopt () =
  let net = make_net ~rows:4 ~cols:4 () in
  let app = Bitonic_handopt.setup net { Bitonic_handopt.keys = 32; compute = true } in
  run_procs net (fun p -> Bitonic_handopt.fiber app p);
  Alcotest.(check bool) "handopt bitonic sorts" true (Bitonic_handopt.verify app)

let test_bitonic_steps () =
  let net, dsm = make_dsm ~rows:4 ~cols:4 (Dsm.access_tree ~arity:2 ()) in
  let app = Bitonic.setup dsm { Bitonic.keys = 4; compute = false } in
  ignore net;
  (* 16 wires: log P = 4 phases, 1+2+3+4 = 10 steps. *)
  Alcotest.(check int) "circuit depth" 10 (Bitonic.steps app)

let test_merge_split () =
  let a = [| 1; 3; 5; 7 |] and b = [| 2; 4; 6; 8 |] in
  Alcotest.(check (array int)) "lower half" [| 1; 2; 3; 4 |]
    (Bitonic.merge_split ~keep_lower:true a b);
  Alcotest.(check (array int)) "upper half" [| 5; 6; 7; 8 |]
    (Bitonic.merge_split ~keep_lower:false a b);
  (* Duplicates must be preserved across the two halves. *)
  let c = [| 1; 1; 2; 2 |] and d = [| 1; 2; 2; 3 |] in
  let low = Bitonic.merge_split ~keep_lower:true c d in
  let high = Bitonic.merge_split ~keep_lower:false c d in
  let merged = Array.append low high in
  let expect = Array.append c d in
  Array.sort compare expect;
  Alcotest.(check (array int)) "multiset preserved" expect merged

(* --- Barnes-Hut ----------------------------------------------------- *)

let bh_config ?(n = 48) ?(theta = 1.0) ?(steps = 3) ?(warmup = 1) () =
  { (Barnes_hut.default_config ~nbodies:n) with
    Barnes_hut.theta; steps; warmup }

let rel_err a b =
  let d = Vec.norm (Vec.sub a b) in
  let s = Float.max (Vec.norm a) (Vec.norm b) in
  if s < 1e-12 then d else d /. s

let test_bh_exact_matches_reference () =
  (* theta = 0 never approximates, so the simulated parallel run must
     reproduce the sequential O(N^2) integration up to rounding. *)
  let cfg = bh_config ~n:40 ~theta:0.0 ~steps:2 ~warmup:0 () in
  let net, dsm = make_dsm ~rows:2 ~cols:2 (Dsm.access_tree ~arity:4 ()) in
  let app = Barnes_hut.setup dsm cfg in
  run_procs net (fun p -> Barnes_hut.fiber app p);
  let got = Barnes_hut.final_bodies app in
  let want = Barnes_hut.reference cfg in
  Array.iteri
    (fun i (_, gp, gv) ->
      let _, wp, wv = want.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "body %d position (err %g)" i (rel_err gp wp))
        true
        (rel_err gp wp < 1e-6);
      Alcotest.(check bool) (Printf.sprintf "body %d velocity" i) true
        (rel_err gv wv < 1e-6))
    got

let test_bh_exact_all_strategies () =
  let cfg = bh_config ~n:32 ~theta:0.0 ~steps:2 ~warmup:0 () in
  let want = Barnes_hut.reference cfg in
  List.iter
    (fun (name, strat) ->
      let net, dsm = make_dsm ~rows:2 ~cols:2 strat in
      let app = Barnes_hut.setup dsm cfg in
      run_procs net (fun p -> Barnes_hut.fiber app p);
      let got = Barnes_hut.final_bodies app in
      Array.iteri
        (fun i (_, gp, _) ->
          let _, wp, _ = want.(i) in
          Alcotest.(check bool)
            (Printf.sprintf "%s: body %d" name i)
            true
            (rel_err gp wp < 1e-6))
        got)
    strategies

let test_bh_theta_approximation_close () =
  (* With theta = 0.5 the approximation error over a few steps stays small
     relative to the motion. *)
  let cfg = bh_config ~n:64 ~theta:0.5 ~steps:3 ~warmup:0 () in
  let net, dsm = make_dsm ~rows:4 ~cols:4 (Dsm.access_tree ~arity:4 ()) in
  let app = Barnes_hut.setup dsm cfg in
  run_procs net (fun p -> Barnes_hut.fiber app p);
  let got = Barnes_hut.final_bodies app in
  let want = Barnes_hut.reference cfg in
  let worst = ref 0.0 in
  Array.iteri
    (fun i (_, gp, _) ->
      let _, wp, _ = want.(i) in
      worst := Float.max !worst (rel_err gp wp))
    got;
  Alcotest.(check bool)
    (Printf.sprintf "approximation close (worst %g)" !worst)
    true (!worst < 0.05)

let test_bh_mass_conserved () =
  let cfg = bh_config ~n:48 ~steps:2 ~warmup:0 () in
  let net, dsm = make_dsm ~rows:4 ~cols:4 Dsm.Fixed_home in
  let app = Barnes_hut.setup dsm cfg in
  run_procs net (fun p -> Barnes_hut.fiber app p);
  let total = Array.fold_left (fun acc (m, _, _) -> acc +. m) 0.0
      (Barnes_hut.final_bodies app)
  in
  Alcotest.(check (float 1e-9)) "total mass" 1.0 total

let test_bh_intervals_structure () =
  let cfg = bh_config ~n:32 ~steps:3 ~warmup:1 () in
  let net, dsm = make_dsm ~rows:2 ~cols:2 (Dsm.access_tree ~arity:2 ()) in
  let app = Barnes_hut.setup dsm cfg in
  run_procs net (fun p -> Barnes_hut.fiber app p);
  let ivs = Barnes_hut.intervals app in
  (* 2 measured steps x 6 phases. *)
  Alcotest.(check int) "interval count" 12 (List.length ivs);
  List.iter
    (fun iv ->
      Alcotest.(check bool) "non-negative duration" true
        (iv.Barnes_hut.i_time >= 0.0);
      Alcotest.(check bool) "measured steps only" true
        (iv.Barnes_hut.i_step >= 1))
    ivs;
  (* The force phase must dominate the build phase in computation. *)
  let sum_phase ph f =
    List.fold_left
      (fun acc iv -> if iv.Barnes_hut.i_phase = ph then acc +. f iv else acc)
      0.0 ivs
  in
  let compute_of iv = Array.fold_left ( +. ) 0.0 iv.Barnes_hut.i_compute in
  Alcotest.(check bool) "force compute dominates" true
    (sum_phase Barnes_hut.Force compute_of > sum_phase Barnes_hut.Build compute_of);
  Alcotest.(check bool) "cells were created" true (Barnes_hut.cells_created app > 0)

let test_bh_determinism () =
  let run () =
    let cfg = bh_config ~n:40 ~steps:2 ~warmup:0 () in
    let net, dsm = make_dsm ~rows:2 ~cols:4 (Dsm.access_tree ~arity:4 ()) in
    let app = Barnes_hut.setup dsm cfg in
    run_procs net (fun p -> Barnes_hut.fiber app p);
    (Barnes_hut.final_bodies app, Network.now net,
     Link_stats.congestion_msgs (Network.stats net))
  in
  let a1, t1, c1 = run () in
  let a2, t2, c2 = run () in
  Alcotest.(check bool) "same bodies" true (a1 = a2);
  Alcotest.(check (float 0.0)) "same end time" t1 t2;
  Alcotest.(check int) "same congestion" c1 c2

let test_bh_uniform_distribution () =
  let cfg =
    { (bh_config ~n:40 ~theta:0.0 ~steps:1 ~warmup:0 ()) with
      Barnes_hut.distribution = `Uniform }
  in
  let net, dsm = make_dsm ~rows:2 ~cols:2 (Dsm.access_tree ~arity:4 ()) in
  let app = Barnes_hut.setup dsm cfg in
  run_procs net (fun p -> Barnes_hut.fiber app p);
  let got = Barnes_hut.final_bodies app in
  let want = Barnes_hut.reference cfg in
  Array.iteri
    (fun i (_, gp, _) ->
      let _, wp, _ = want.(i) in
      Alcotest.(check bool) (Printf.sprintf "uniform body %d" i) true
        (rel_err gp wp < 1e-6))
    got

let test_bh_access_tree_beats_fixed_home_congestion () =
  let cfg = bh_config ~n:128 ~steps:3 ~warmup:1 () in
  let congestion strat =
    let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
    let app = Barnes_hut.setup dsm cfg in
    run_procs net (fun p -> Barnes_hut.fiber app p);
    Link_stats.congestion_msgs (Network.stats net)
  in
  let tree = congestion (Dsm.access_tree ~arity:4 ()) in
  let home = congestion Dsm.Fixed_home in
  Alcotest.(check bool)
    (Printf.sprintf "4-ary (%d) < fixed home (%d)" tree home)
    true (tree < home)

(* --- property tests --------------------------------------------------- *)

let prop_bitonic_sorts_random =
  QCheck.Test.make ~name:"bitonic sorts random configurations" ~count:12
    QCheck.(triple (int_range 0 2) (int_range 1 64) (int_range 0 6))
    (fun (mesh_i, keys, strat_i) ->
      let rows, cols = List.nth [ (2, 2); (2, 4); (4, 4) ] mesh_i in
      let _, strat = List.nth strategies strat_i in
      let net, dsm = make_dsm ~rows ~cols strat in
      let app = Bitonic.setup dsm { Bitonic.keys; compute = false } in
      run_procs net (fun p -> Bitonic.fiber app p);
      Bitonic.verify app)

let prop_matmul_random_blocks =
  QCheck.Test.make ~name:"matmul verifies for random block sizes" ~count:8
    QCheck.(pair (int_range 1 8) (int_range 0 6))
    (fun (side, strat_i) ->
      let block = side * side in
      let _, strat = List.nth strategies strat_i in
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let app = Matmul.setup dsm { Matmul.block; compute = true } in
      run_procs net (fun p -> Matmul.fiber app p);
      Matmul.verify app)

let prop_bh_mass_and_sanity =
  QCheck.Test.make ~name:"BH conserves mass for random configurations"
    ~count:6
    QCheck.(pair (int_range 16 150) (int_range 0 1000))
    (fun (n, seed) ->
      let cfg =
        { (Barnes_hut.default_config ~nbodies:n) with
          Barnes_hut.steps = 2; warmup = 0; seed = seed + 1 }
      in
      let net, dsm = make_dsm ~rows:2 ~cols:4 (Dsm.access_tree ~arity:4 ()) in
      let app = Barnes_hut.setup dsm cfg in
      run_procs net (fun p -> Barnes_hut.fiber app p);
      let bodies = Barnes_hut.final_bodies app in
      let mass = Array.fold_left (fun a (m, _, _) -> a +. m) 0.0 bodies in
      let finite =
        Array.for_all
          (fun (_, p, v) ->
            Float.is_finite (Vec.norm p) && Float.is_finite (Vec.norm v))
          bodies
      in
      Float.abs (mass -. 1.0) < 1e-9 && finite)

let test_bh_costzones_balance () =
  (* With many bodies per processor, the costzones partitioning must keep
     the force-phase computation roughly balanced. *)
  let cfg =
    { (Barnes_hut.default_config ~nbodies:1024) with
      Barnes_hut.steps = 3; warmup = 1 }
  in
  let net, dsm = make_dsm ~rows:4 ~cols:4 (Dsm.access_tree ~arity:4 ()) in
  let app = Barnes_hut.setup dsm cfg in
  run_procs net (fun p -> Barnes_hut.fiber app p);
  let force =
    List.filter
      (fun iv -> iv.Barnes_hut.i_phase = Barnes_hut.Force)
      (Barnes_hut.intervals app)
  in
  List.iter
    (fun iv ->
      let c = iv.Barnes_hut.i_compute in
      let mean =
        Array.fold_left ( +. ) 0.0 c /. float_of_int (Array.length c)
      in
      let worst = Array.fold_left Float.max 0.0 c in
      Alcotest.(check bool)
        (Printf.sprintf "balanced (max %.0f vs mean %.0f)" worst mean)
        true
        (worst < 3.0 *. mean))
    force

let suite =
  [
    Alcotest.test_case "matmul all strategies" `Quick test_matmul_all_strategies;
    Alcotest.test_case "matmul handopt" `Quick test_matmul_handopt;
    Alcotest.test_case "matmul congestion optimality" `Quick
      test_matmul_handopt_congestion_optimal;
    Alcotest.test_case "bitonic all strategies" `Quick test_bitonic_all_strategies;
    Alcotest.test_case "bitonic 2x4 mesh" `Quick test_bitonic_2x4;
    Alcotest.test_case "bitonic handopt" `Quick test_bitonic_handopt;
    Alcotest.test_case "bitonic circuit depth" `Quick test_bitonic_steps;
    Alcotest.test_case "merge&split" `Quick test_merge_split;
    Alcotest.test_case "BH exact vs reference" `Quick test_bh_exact_matches_reference;
    Alcotest.test_case "BH exact all strategies" `Quick test_bh_exact_all_strategies;
    Alcotest.test_case "BH theta approximation" `Quick
      test_bh_theta_approximation_close;
    Alcotest.test_case "BH mass conserved" `Quick test_bh_mass_conserved;
    Alcotest.test_case "BH intervals" `Quick test_bh_intervals_structure;
    Alcotest.test_case "BH determinism" `Quick test_bh_determinism;
    Alcotest.test_case "BH uniform distribution" `Quick test_bh_uniform_distribution;
    Alcotest.test_case "BH congestion ordering" `Quick
      test_bh_access_tree_beats_fixed_home_congestion;
    QCheck_alcotest.to_alcotest prop_bitonic_sorts_random;
    QCheck_alcotest.to_alcotest prop_matmul_random_blocks;
    QCheck_alcotest.to_alcotest prop_bh_mass_and_sanity;
    Alcotest.test_case "BH costzones balance" `Quick test_bh_costzones_balance;
  ]

(* --- Jacobi stencil (extension app) ----------------------------------- *)

module Stencil = Diva_apps.Stencil

let test_stencil_all_strategies () =
  List.iter
    (fun (name, strat) ->
      let net, dsm = make_dsm ~rows:4 ~cols:4 strat in
      let app =
        Stencil.setup dsm { Stencil.block_side = 4; iterations = 5; compute = true }
      in
      run_procs net (fun p -> Stencil.fiber app p);
      Alcotest.(check bool) (name ^ ": stencil verifies") true (Stencil.verify app))
    strategies

let test_stencil_single_block () =
  (* 1x1 mesh: everything local, still correct. *)
  let net, dsm = make_dsm ~rows:1 ~cols:1 (Dsm.access_tree ~arity:2 ()) in
  let app =
    Stencil.setup dsm { Stencil.block_side = 6; iterations = 3; compute = false }
  in
  run_procs net (fun p -> Stencil.fiber app p);
  Alcotest.(check bool) "1x1 stencil verifies" true (Stencil.verify app)

let prop_stencil_random =
  QCheck.Test.make ~name:"stencil verifies for random configurations" ~count:8
    QCheck.(triple (int_range 1 6) (int_range 1 6) (int_range 0 6))
    (fun (block_side, iterations, strat_i) ->
      let _, strat = List.nth strategies strat_i in
      let net, dsm = make_dsm ~rows:2 ~cols:2 strat in
      let app = Stencil.setup dsm { Stencil.block_side; iterations; compute = false } in
      run_procs net (fun p -> Stencil.fiber app p);
      Stencil.verify app)

let test_stencil_locality_favours_access_tree () =
  (* Nearest-neighbour traffic: the access tree keeps it in the low tree
     levels, the fixed home scatters it across random homes. *)
  let congestion strat =
    let net, dsm = make_dsm ~rows:8 ~cols:8 strat in
    let app =
      Stencil.setup dsm { Stencil.block_side = 16; iterations = 8; compute = false }
    in
    run_procs net (fun p -> Stencil.fiber app p);
    Link_stats.congestion_bytes (Network.stats net)
  in
  let at = congestion (Dsm.access_tree ~arity:2 ()) in
  let fh = congestion Dsm.Fixed_home in
  Alcotest.(check bool)
    (Printf.sprintf "AT congestion %d < FH %d" at fh)
    true (at < fh)

let suite =
  suite
  @ [
      Alcotest.test_case "stencil all strategies" `Quick test_stencil_all_strategies;
      Alcotest.test_case "stencil 1x1" `Quick test_stencil_single_block;
      QCheck_alcotest.to_alcotest prop_stencil_random;
      Alcotest.test_case "stencil locality" `Quick
        test_stencil_locality_favours_access_tree;
    ]

(* --- cross-implementation agreement ----------------------------------- *)

let test_bitonic_dsm_matches_handopt () =
  (* Both implementations sort the same deterministic input; their final
     wire contents must be identical. *)
  let net1, dsm = make_dsm ~rows:4 ~cols:4 (Dsm.access_tree ~arity:2 ()) in
  let a1 = Bitonic.setup dsm { Bitonic.keys = 64; compute = false } in
  run_procs net1 (fun p -> Bitonic.fiber a1 p);
  let net2 = make_net ~rows:4 ~cols:4 () in
  let a2 = Bitonic_handopt.setup net2 { Bitonic_handopt.keys = 64; compute = false } in
  run_procs net2 (fun p -> Bitonic_handopt.fiber a2 p);
  Alcotest.(check bool) "dsm sorts" true (Bitonic.verify a1);
  Alcotest.(check bool) "handopt sorts" true (Bitonic_handopt.verify a2)

let test_matmul_dsm_matches_handopt () =
  let net1, dsm = make_dsm ~rows:4 ~cols:4 (Dsm.access_tree ~arity:4 ()) in
  let a1 = Matmul.setup dsm { Matmul.block = 16; compute = true } in
  run_procs net1 (fun p -> Matmul.fiber a1 p);
  let net2 = make_net ~rows:4 ~cols:4 () in
  let a2 = Matmul_handopt.setup net2 { Matmul_handopt.block = 16; compute = true } in
  run_procs net2 (fun p -> Matmul_handopt.fiber a2 p);
  (* Both verify against the same sequential oracle, hence agree. *)
  Alcotest.(check bool) "dsm verifies" true (Matmul.verify a1);
  Alcotest.(check bool) "handopt verifies" true (Matmul_handopt.verify a2)

let suite =
  suite
  @ [
      Alcotest.test_case "bitonic dsm vs handopt" `Quick
        test_bitonic_dsm_matches_handopt;
      Alcotest.test_case "matmul dsm vs handopt" `Quick
        test_matmul_dsm_matches_handopt;
    ]
