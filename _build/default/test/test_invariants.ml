(* Property-based tests (qcheck): protocol invariants under random
   schedules, LRU replacement, and the theory paper's 3-competitive bound
   for the tree strategy. *)

module Network = Diva_simnet.Network
module Dsm = Diva_core.Dsm
module Tree_model = Diva_core.Tree_model
module Prng = Diva_util.Prng
open Helpers

(* One random DSM workload: [ops] is a list of (proc, var index, kind)
   executed round-by-round with barriers, one op per proc per round. *)
let run_random_workload ~strategy ~rows ~cols ~nvars ~rounds ~seed =
  let net, dsm = make_dsm ~rows ~cols strategy in
  let nprocs = Network.num_nodes net in
  let rng = Prng.create ~seed in
  let vars = Array.init nvars (fun _ ->
      Dsm.create_var dsm ~owner:(Prng.int rng nprocs) ~size:64 0)
  in
  (* Pre-draw the whole schedule so all fibers agree on it. *)
  let schedule =
    Array.init rounds (fun _ ->
        Array.init nprocs (fun _ ->
            let v = Prng.int rng nvars in
            let kind = Prng.int rng 4 in
            (v, kind)))
  in
  (* In each round, at most one processor writes each variable (writers are
     the lowest-numbered processor that drew "write" for that var). *)
  run_procs net (fun p ->
      for r = 0 to rounds - 1 do
        let v, kind = schedule.(r).(p) in
        let i_am_writer =
          kind = 0
          && (let first = ref (-1) in
              Array.iteri
                (fun q (v', k') ->
                  if v' = v && k' = 0 && !first < 0 then first := q)
                schedule.(r);
              !first = p)
        in
        if i_am_writer then Dsm.write dsm p vars.(v) ((r * 1000) + v)
        else ignore (Dsm.read dsm p vars.(v));
        Dsm.barrier dsm p
      done);
  (dsm, vars)

let prop_access_tree_invariants =
  QCheck.Test.make ~name:"access-tree invariants after random schedules"
    ~count:25
    QCheck.(
      quad (int_range 0 4) (int_range 1 5) (int_range 1 8) (int_range 0 1000))
    (fun (strat_i, nvars, rounds, seed) ->
      let strategy =
        List.nth
          [
            Dsm.access_tree ~arity:2 ();
            Dsm.access_tree ~arity:4 ();
            Dsm.access_tree ~arity:16 ();
            Dsm.access_tree ~arity:2 ~leaf_size:4 ();
            Dsm.access_tree ~arity:4 ~combining:false ();
          ]
          strat_i
      in
      let dsm, vars =
        run_random_workload ~strategy ~rows:4 ~cols:4 ~nvars ~rounds ~seed
      in
      Array.for_all
        (fun v ->
          match Dsm.validate_var dsm v with
          | Ok () -> true
          | Error e -> QCheck.Test.fail_reportf "invariant: %s" e)
        vars)

let prop_lru_keeps_invariants =
  QCheck.Test.make ~name:"LRU replacement keeps invariants and coherence"
    ~count:15
    QCheck.(pair (int_range 200 2000) (int_range 0 1000))
    (fun (capacity, seed) ->
      let strategy = Dsm.access_tree ~arity:2 ~capacity () in
      let dsm, vars =
        run_random_workload ~strategy ~rows:4 ~cols:4 ~nvars:6 ~rounds:6 ~seed
      in
      Array.for_all
        (fun v ->
          match Dsm.validate_var dsm v with
          | Ok () -> true
          | Error e -> QCheck.Test.fail_reportf "invariant: %s" e)
        vars)

let test_lru_evicts_and_stays_correct () =
  (* Tiny capacity forces constant replacement; reads must still return the
     latest written value. *)
  let strategy = Dsm.access_tree ~arity:2 ~capacity:200 () in
  let net, dsm = make_dsm ~rows:4 ~cols:4 strategy in
  let vars = Array.init 10 (fun i -> Dsm.create_var dsm ~owner:i ~size:64 i) in
  run_procs net (fun p ->
      for r = 1 to 5 do
        for i = 0 to 9 do
          ignore (Dsm.read dsm p vars.(i))
        done;
        Dsm.barrier dsm p;
        if p = r then Array.iteri (fun i v -> Dsm.write dsm p v ((r * 100) + i)) vars;
        Dsm.barrier dsm p;
        Array.iteri
          (fun i v ->
            Alcotest.(check int) "coherent despite evictions" ((r * 100) + i)
              (Dsm.read dsm p v))
          vars;
        Dsm.barrier dsm p
      done);
  Alcotest.(check bool) "evictions happened" true (Dsm.evictions dsm > 0)

(* --- the theory substrate: 3-competitiveness on trees ---------------- *)

let gen_ops rng n len =
  List.init len (fun _ ->
      let v = Prng.int rng n in
      if Prng.int rng 3 = 0 then Tree_model.Write v else Tree_model.Read v)

let prop_tree_strategy_3_competitive =
  QCheck.Test.make
    ~name:"tree strategy is 3-competitive per edge (Maggs et al.)" ~count:300
    QCheck.(triple (int_range 2 24) (int_range 1 120) (int_range 0 100000))
    (fun (n, len, seed) ->
      let rng = Prng.create ~seed in
      let tree = Tree_model.random_tree rng ~n in
      let owner = Prng.int rng n in
      let ops = gen_ops rng n len in
      let online = Tree_model.online_edge_costs tree ~owner ops in
      let ok = ref true in
      for edge = 1 to n - 1 do
        let opt = Tree_model.optimal_edge_cost tree ~owner ops ~edge in
        if online.(edge) > (3 * opt) + 3 then begin
          ok := false;
          QCheck.Test.fail_reportf
            "edge %d: online %d > 3*opt(%d)+3 (n=%d len=%d seed=%d)" edge
            online.(edge) opt n len seed
        end
      done;
      !ok)

let prop_tree_online_at_least_opt =
  QCheck.Test.make ~name:"online never beats the offline optimum" ~count:300
    QCheck.(triple (int_range 2 24) (int_range 1 120) (int_range 0 100000))
    (fun (n, len, seed) ->
      let rng = Prng.create ~seed in
      let tree = Tree_model.random_tree rng ~n in
      let owner = Prng.int rng n in
      let ops = gen_ops rng n len in
      let online = Tree_model.online_edge_costs tree ~owner ops in
      let ok = ref true in
      for edge = 1 to n - 1 do
        let opt = Tree_model.optimal_edge_cost tree ~owner ops ~edge in
        if online.(edge) < opt then ok := false
      done;
      !ok)

let test_tree_model_cases () =
  (* A path 0 - 1 - 2; owner at 0. *)
  let tree = Tree_model.tree_of_parents [| -1; 0; 1 |] in
  (* A single read at node 2 pulls the data across both edges once. *)
  let online = Tree_model.online_edge_costs tree ~owner:0 [ Read 2 ] in
  Alcotest.(check int) "edge 1 crossed once" 1 online.(1);
  Alcotest.(check int) "edge 2 crossed once" 1 online.(2);
  (* Repeated reads at 2 are then free. *)
  let online = Tree_model.online_edge_costs tree ~owner:0 [ Read 2; Read 2 ] in
  Alcotest.(check int) "second read free" 1 online.(2);
  (* A write at 0 then read at 2 costs one more crossing. *)
  let online =
    Tree_model.online_edge_costs tree ~owner:0 [ Read 2; Write 0; Read 2 ]
  in
  Alcotest.(check int) "re-fetch after invalidation" 2 online.(2);
  (* Optimum agrees on these simple cases. *)
  Alcotest.(check int) "opt single read" 1
    (Tree_model.optimal_edge_cost tree ~owner:0 [ Read 2 ] ~edge:2);
  Alcotest.(check int) "opt read/write/read" 2
    (Tree_model.optimal_edge_cost tree ~owner:0 [ Read 2; Write 0; Read 2 ]
       ~edge:2);
  (* A remote write pays the round trip online but only one crossing
     offline (this is where the factor > 1 comes from). *)
  let online = Tree_model.online_edge_costs tree ~owner:0 [ Write 2 ] in
  Alcotest.(check int) "online write round-trip" 2 online.(2);
  Alcotest.(check int) "opt write single crossing" 1
    (Tree_model.optimal_edge_cost tree ~owner:0 [ Write 2 ] ~edge:2)

let test_no_combining_still_correct () =
  (* Heavy same-variable read contention without combining. *)
  let strategy = Dsm.access_tree ~arity:2 ~combining:false () in
  let net, dsm = make_dsm ~rows:4 ~cols:4 strategy in
  let v = Dsm.create_var dsm ~owner:0 ~size:256 123 in
  run_procs net (fun p ->
      Alcotest.(check int) "read broadcast" 123 (Dsm.read dsm p v);
      Dsm.barrier dsm p;
      if p = 15 then Dsm.write dsm p v 456;
      Dsm.barrier dsm p;
      Alcotest.(check int) "after write" 456 (Dsm.read dsm p v))

let prop_combining_reduces_traffic =
  QCheck.Test.make ~name:"read combining never increases total load" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let load combining =
        let net, dsm =
          make_dsm ~seed ~rows:4 ~cols:4 (Dsm.access_tree ~arity:2 ~combining ())
        in
        let v = Dsm.create_var dsm ~owner:0 ~size:512 0 in
        run_procs net (fun p -> ignore (Dsm.read dsm p v));
        Diva_simnet.Link_stats.total_bytes (Network.stats net)
      in
      load true <= load false)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_access_tree_invariants;
    QCheck_alcotest.to_alcotest prop_lru_keeps_invariants;
    Alcotest.test_case "LRU evicts and stays correct" `Quick
      test_lru_evicts_and_stays_correct;
    QCheck_alcotest.to_alcotest prop_tree_strategy_3_competitive;
    QCheck_alcotest.to_alcotest prop_tree_online_at_least_opt;
    Alcotest.test_case "tree model base cases" `Quick test_tree_model_cases;
    Alcotest.test_case "no-combining correctness" `Quick
      test_no_combining_still_correct;
    QCheck_alcotest.to_alcotest prop_combining_reduces_traffic;
  ]
