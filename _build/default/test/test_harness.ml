(* Tests for the experiment harness: runner measurements, report tables,
   heatmap rendering. *)

module Network = Diva_simnet.Network
module Link_stats = Diva_simnet.Link_stats
module Dsm = Diva_core.Dsm
module Runner = Diva_harness.Runner
module Report = Diva_harness.Report
module Heatmap = Diva_harness.Heatmap
module Barnes_hut = Diva_apps.Barnes_hut
open Helpers

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_runner_matmul_measurements () =
  let m =
    Runner.run_matmul ~rows:4 ~cols:4 ~block:64
      (Runner.Strategy (Dsm.access_tree ~arity:4 ()))
  in
  Alcotest.(check bool) "time positive" true (m.Runner.time > 0.0);
  Alcotest.(check bool) "congestion <= total" true
    (m.Runner.congestion_bytes <= m.Runner.total_bytes);
  Alcotest.(check bool) "has startups" true (m.Runner.startups > 0);
  Alcotest.(check int) "reads = P * sqrtP * 2" (16 * 4 * 2) m.Runner.dsm_reads

let test_runner_deterministic () =
  let run () =
    Runner.run_bitonic ~rows:4 ~cols:4 ~keys:32
      (Runner.Strategy (Dsm.access_tree ~arity:2 ()))
  in
  Alcotest.(check bool) "identical measurements" true (run () = run ())

let test_runner_bh_phase_sums () =
  let cfg =
    { (Barnes_hut.default_config ~nbodies:64) with Barnes_hut.steps = 3; warmup = 1 }
  in
  let r =
    Runner.run_barnes_hut ~rows:2 ~cols:2 ~cfg (Dsm.access_tree ~arity:2 ())
  in
  (* Phase times sum to the total; phase traffic sums to the total. *)
  let phases =
    [ Barnes_hut.Build; Barnes_hut.Com; Barnes_hut.Partition; Barnes_hut.Force;
      Barnes_hut.Advance; Barnes_hut.Space ]
  in
  let tsum =
    List.fold_left (fun acc ph -> acc +. (r.Runner.bh_phase ph).Runner.time) 0.0 phases
  in
  Alcotest.(check (float 1e-6)) "phase times sum" r.Runner.bh_total.Runner.time tsum;
  let msum =
    List.fold_left
      (fun acc ph -> acc + (r.Runner.bh_phase ph).Runner.total_msgs)
      0 phases
  in
  Alcotest.(check int) "phase traffic sums" r.Runner.bh_total.Runner.total_msgs msum

let test_heatmap_accounts_all_traffic () =
  let net, dsm = make_dsm ~rows:4 ~cols:4 (Dsm.access_tree ~arity:4 ()) in
  let v = Dsm.create_var dsm ~owner:0 ~size:256 0 in
  run_procs net (fun p -> ignore (Dsm.read dsm p v));
  let traffic = Heatmap.node_traffic net in
  let sum = Array.fold_left ( + ) 0 traffic in
  Alcotest.(check int) "outgoing sums to total bytes"
    (Link_stats.total_bytes (Network.stats net))
    sum

let test_heatmap_render_shape () =
  let net, dsm = make_dsm ~rows:3 ~cols:5 (Dsm.access_tree ~arity:2 ()) in
  let v = Dsm.create_var dsm ~owner:7 ~size:64 0 in
  run_procs net (fun p -> ignore (Dsm.read dsm p v));
  let s = Heatmap.render net in
  (* Header line + one line per row, each cols characters wide. *)
  let lines = String.split_on_char '\n' s in
  let grid = List.filter (fun l -> l <> "" && not (contains l "traffic")) lines in
  Alcotest.(check int) "3 rows" 3 (List.length grid);
  List.iter (fun l -> Alcotest.(check int) "5 cols" 5 (String.length l)) grid

let test_report_tables () =
  let m =
    Runner.run_matmul ~rows:4 ~cols:4 ~block:16 Runner.Hand_optimized
  in
  let m2 =
    Runner.run_matmul ~rows:4 ~cols:4 ~block:16
      (Runner.Strategy Dsm.Fixed_home)
  in
  let s =
    Report.ratio_table ~title:"T" ~param:"block" ~congestion:`Bytes
      ~rows:[ ("16", m, [ ("fh", m2) ]) ]
  in
  Alcotest.(check bool) "has header" true (contains s "fh cong");
  Alcotest.(check bool) "has title" true (contains s "T");
  let a =
    Report.absolute_table ~title:"A" ~param:"n"
      ~rows:[ ("1", [ ("s", m2) ]) ] ()
  in
  Alcotest.(check bool) "absolute has column" true (contains a "s cong(msg)")

let suite =
  [
    Alcotest.test_case "runner matmul measurements" `Quick
      test_runner_matmul_measurements;
    Alcotest.test_case "runner deterministic" `Quick test_runner_deterministic;
    Alcotest.test_case "BH phases sum to total" `Quick test_runner_bh_phase_sums;
    Alcotest.test_case "heatmap accounts all traffic" `Quick
      test_heatmap_accounts_all_traffic;
    Alcotest.test_case "heatmap render shape" `Quick test_heatmap_render_shape;
    Alcotest.test_case "report tables" `Quick test_report_tables;
  ]
