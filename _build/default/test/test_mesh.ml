(* Tests for the mesh topology, hierarchical decomposition and embeddings. *)

module Mesh = Diva_mesh.Mesh
module Deco = Diva_mesh.Decomposition
module Embedding = Diva_mesh.Embedding
module Prng = Diva_util.Prng

let test_coords_roundtrip () =
  let m = Mesh.create ~rows:5 ~cols:7 in
  for v = 0 to Mesh.num_nodes m - 1 do
    let r, c = Mesh.coords m v in
    Alcotest.(check int) "roundtrip" v (Mesh.node_at m ~row:r ~col:c)
  done

let test_route_length () =
  let m = Mesh.create ~rows:8 ~cols:8 in
  let rng = Prng.create ~seed:1 in
  for _ = 1 to 200 do
    let src = Prng.int rng 64 and dst = Prng.int rng 64 in
    let route = Mesh.route m ~src ~dst in
    Alcotest.(check int) "shortest path" (Mesh.distance m src dst)
      (List.length route)
  done

let test_route_connected () =
  let m = Mesh.create ~rows:6 ~cols:4 in
  let rng = Prng.create ~seed:2 in
  for _ = 1 to 200 do
    let src = Prng.int rng 24 and dst = Prng.int rng 24 in
    let route = Mesh.route m ~src ~dst in
    let cur = ref src in
    List.iter
      (fun l ->
        let a, b = Mesh.link_endpoints m l in
        Alcotest.(check int) "chained" !cur a;
        cur := b)
      route;
    Alcotest.(check int) "reaches dst" dst !cur
  done

let test_route_dimension_order () =
  (* Dimension 1 first: all column moves must precede all row moves. *)
  let m = Mesh.create ~rows:8 ~cols:8 in
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 100 do
    let src = Prng.int rng 64 and dst = Prng.int rng 64 in
    let route = Mesh.route m ~src ~dst in
    let moves =
      List.map
        (fun l ->
          let a, b = Mesh.link_endpoints m l in
          let ra, ca = Mesh.coords m a and rb, cb = Mesh.coords m b in
          if ra = rb && ca <> cb then `Col else `Row)
        route
    in
    let rec check seen_row = function
      | [] -> true
      | `Row :: rest -> check true rest
      | `Col :: rest -> (not seen_row) && check false rest
    in
    Alcotest.(check bool) "XY order" true (check false moves)
  done

let test_route_self () =
  let m = Mesh.create ~rows:3 ~cols:3 in
  Alcotest.(check (list int)) "empty" [] (Mesh.route m ~src:4 ~dst:4)

(* --- decomposition ------------------------------------------------- *)

let check_partition (d : Deco.t) id =
  (* Children submeshes partition the parent's submesh. *)
  let sm = d.Deco.submesh.(id) in
  let kids = d.Deco.children.(id) in
  if Array.length kids > 0 then begin
    let total =
      Array.fold_left (fun acc k -> acc + Deco.size d.Deco.submesh.(k)) 0 kids
    in
    Alcotest.(check int) "sizes add up" (Deco.size sm) total;
    Array.iter
      (fun k ->
        let ksm = d.Deco.submesh.(k) in
        Alcotest.(check bool) "child inside parent" true
          (Deco.mem sm ksm.Deco.origin))
      kids
  end

let test_decomposition_partition () =
  List.iter
    (fun (rows, cols, arity, leaf) ->
      let m = Mesh.create ~rows ~cols in
      let d = Deco.build m ~arity ~leaf_size:leaf in
      for id = 0 to d.Deco.num_tree_nodes - 1 do
        check_partition d id
      done)
    [
      (4, 3, Deco.Two, 1); (8, 8, Deco.Four, 1); (16, 16, Deco.Sixteen, 1);
      (8, 8, Deco.Two, 4); (8, 16, Deco.Four, 16); (5, 7, Deco.Two, 1);
      (1, 1, Deco.Two, 1); (2, 1, Deco.Two, 1);
    ]

let test_decomposition_leaves () =
  List.iter
    (fun (rows, cols, arity, leaf) ->
      let m = Mesh.create ~rows ~cols in
      let d = Deco.build m ~arity ~leaf_size:leaf in
      (* Every processor has exactly one leaf, and it is a real leaf. *)
      let count = ref 0 in
      for id = 0 to d.Deco.num_tree_nodes - 1 do
        if Deco.is_leaf d id then begin
          incr count;
          Alcotest.(check int) "leaf has no children" 0
            (Array.length d.Deco.children.(id));
          Alcotest.(check int) "leaf_of_proc inverse" id
            d.Deco.leaf_of_proc.(d.Deco.proc.(id))
        end
      done;
      Alcotest.(check int) "one leaf per proc" (rows * cols) !count)
    [ (4, 4, Deco.Two, 1); (8, 8, Deco.Four, 1); (16, 16, Deco.Four, 16);
      (4, 8, Deco.Sixteen, 1); (3, 5, Deco.Two, 4) ]

let test_decomposition_parent_child_consistency () =
  let m = Mesh.create ~rows:8 ~cols:8 in
  let d = Deco.build m ~arity:Deco.Four ~leaf_size:4 in
  for id = 1 to d.Deco.num_tree_nodes - 1 do
    let p = d.Deco.parent.(id) in
    Alcotest.(check bool) "parent lists child" true
      (Array.exists (fun k -> k = id) d.Deco.children.(p));
    Alcotest.(check int) "depth" (d.Deco.depth.(p) + 1) d.Deco.depth.(id)
  done

let test_arity_matches () =
  (* On a 16x16 mesh every internal node of the 4-ary tree has exactly 4
     children (power-of-two square mesh). *)
  let m = Mesh.create ~rows:16 ~cols:16 in
  let d = Deco.build m ~arity:Deco.Four ~leaf_size:1 in
  for id = 0 to d.Deco.num_tree_nodes - 1 do
    if not (Deco.is_leaf d id) then
      Alcotest.(check int) "4 children" 4 (Array.length d.Deco.children.(id))
  done;
  let d16 = Deco.build m ~arity:Deco.Sixteen ~leaf_size:1 in
  for id = 0 to d16.Deco.num_tree_nodes - 1 do
    if not (Deco.is_leaf d16 id) then
      Alcotest.(check int) "16 children" 16 (Array.length d16.Deco.children.(id))
  done

let test_terminated_leaf_size () =
  (* 2-4-ary: terminated submeshes have size <= 4 and their tree node has
     one child per processor. *)
  let m = Mesh.create ~rows:8 ~cols:8 in
  let d = Deco.build m ~arity:Deco.Two ~leaf_size:4 in
  for id = 0 to d.Deco.num_tree_nodes - 1 do
    let kids = d.Deco.children.(id) in
    if Array.length kids > 0 && Deco.is_leaf d kids.(0) then begin
      Alcotest.(check bool) "terminated size <= 4" true
        (Deco.size d.Deco.submesh.(id) <= 4);
      Alcotest.(check int) "one child per proc" (Deco.size d.Deco.submesh.(id))
        (Array.length kids)
    end
  done

let test_height_decreases_with_arity () =
  let m = Mesh.create ~rows:32 ~cols:32 in
  let h2 = Deco.height (Deco.build m ~arity:Deco.Two ~leaf_size:1) in
  let h4 = Deco.height (Deco.build m ~arity:Deco.Four ~leaf_size:1) in
  let h16 = Deco.height (Deco.build m ~arity:Deco.Sixteen ~leaf_size:1) in
  Alcotest.(check bool) "2-ary taller than 4-ary" true (h2 > h4);
  Alcotest.(check bool) "4-ary taller than 16-ary" true (h4 > h16);
  Alcotest.(check int) "2-ary height of 32x32" 10 h2;
  Alcotest.(check int) "4-ary height of 32x32" 5 h4

let test_snake_order () =
  List.iter
    (fun (rows, cols) ->
      let m = Mesh.create ~rows ~cols in
      let order = Deco.snake_order m in
      Alcotest.(check int) "covers all" (rows * cols) (Array.length order);
      let sorted = Array.copy order in
      Array.sort compare sorted;
      Alcotest.(check (array int)) "permutation" (Array.init (rows * cols) Fun.id)
        sorted;
      (* Locality: consecutive processors in snake order are close. *)
      let maxd = ref 0 in
      for i = 0 to Array.length order - 2 do
        maxd := max !maxd (Mesh.distance m order.(i) order.(i + 1))
      done;
      Alcotest.(check bool) "consecutive are nearby" true
        (!maxd <= (rows + cols) / 2))
    [ (8, 8); (16, 16); (4, 8) ]

let test_next_hop_and_subtree () =
  let m = Mesh.create ~rows:8 ~cols:8 in
  let d = Deco.build m ~arity:Deco.Two ~leaf_size:1 in
  let rng = Prng.create ~seed:4 in
  for _ = 1 to 500 do
    let a = Prng.int rng d.Deco.num_tree_nodes in
    let b = Prng.int rng d.Deco.num_tree_nodes in
    if a <> b then begin
      (* Walking next_hop from a must reach b in at most 2*height steps. *)
      let rec walk cur steps =
        if cur = b then steps
        else if steps > 2 * (Deco.height d + 1) then -1
        else walk (Deco.next_hop d ~from:cur ~target:b) (steps + 1)
      in
      Alcotest.(check bool) "walk reaches target" true (walk a 0 >= 0)
    end
  done

let test_strategy_names () =
  Alcotest.(check string) "2-ary" "2-ary"
    (Deco.strategy_name ~arity:Deco.Two ~leaf_size:1);
  Alcotest.(check string) "2-4-ary" "2-4-ary"
    (Deco.strategy_name ~arity:Deco.Two ~leaf_size:4);
  Alcotest.(check string) "4-16-ary" "4-16-ary"
    (Deco.strategy_name ~arity:Deco.Four ~leaf_size:16)

(* --- embedding ----------------------------------------------------- *)

let test_embedding_in_submesh kind () =
  List.iter
    (fun (rows, cols, arity) ->
      let m = Mesh.create ~rows ~cols in
      let d = Deco.build m ~arity ~leaf_size:1 in
      let rng = Prng.create ~seed:5 in
      for _ = 1 to 5 do
        let e = Embedding.make kind d ~rng in
        for id = 0 to d.Deco.num_tree_nodes - 1 do
          let place = Embedding.place e id in
          Alcotest.(check bool) "inside its submesh" true
            (Deco.mem d.Deco.submesh.(id) (Mesh.coords_nd m place));
          if Deco.is_leaf d id then
            Alcotest.(check int) "leaf on its own proc" d.Deco.proc.(id) place
        done
      done)
    [ (8, 8, Deco.Two); (16, 16, Deco.Four); (4, 6, Deco.Two) ]

let test_lazy_embedding_in_submesh () =
  List.iter
    (fun kind ->
      let m = Mesh.create ~rows:16 ~cols:16 in
      let d = Deco.build m ~arity:Deco.Four ~leaf_size:1 in
      for seed = 1 to 20 do
        for id = 0 to d.Deco.num_tree_nodes - 1 do
          let place = Embedding.place_lazy kind d ~seed:(Int64.of_int seed) id in
          Alcotest.(check bool) "inside its submesh" true
            (Deco.mem d.Deco.submesh.(id) (Mesh.coords_nd m place));
          Alcotest.(check int) "deterministic" place
            (Embedding.place_lazy kind d ~seed:(Int64.of_int seed) id)
        done
      done)
    [ Embedding.Regular; Embedding.Random ]

let test_lazy_regular_roots_spread () =
  (* Different variables must get different root placements. *)
  let m = Mesh.create ~rows:16 ~cols:16 in
  let d = Deco.build m ~arity:Deco.Four ~leaf_size:1 in
  let roots = Hashtbl.create 64 in
  for seed = 1 to 256 do
    Hashtbl.replace roots
      (Embedding.place_lazy Embedding.Regular d ~seed:(Int64.of_int seed) 0)
      ()
  done;
  Alcotest.(check bool) "roots spread over the mesh" true
    (Hashtbl.length roots > 100)

let test_regular_embedding_short_edges () =
  (* The regular embedding's tree edges should be shorter on average than
     the fully random embedding's (that is its purpose). *)
  let m = Mesh.create ~rows:16 ~cols:16 in
  let d = Deco.build m ~arity:Deco.Two ~leaf_size:1 in
  let total kind =
    let sum = ref 0 in
    for seed = 1 to 50 do
      for id = 1 to d.Deco.num_tree_nodes - 1 do
        let pl = Embedding.place_lazy kind d ~seed:(Int64.of_int seed) id in
        let pp =
          Embedding.place_lazy kind d ~seed:(Int64.of_int seed) d.Deco.parent.(id)
        in
        sum := !sum + Mesh.distance m pl pp
      done
    done;
    !sum
  in
  Alcotest.(check bool) "regular shorter than random" true
    (total Embedding.Regular < total Embedding.Random)

let suite =
  [
    Alcotest.test_case "coords roundtrip" `Quick test_coords_roundtrip;
    Alcotest.test_case "route length" `Quick test_route_length;
    Alcotest.test_case "route connected" `Quick test_route_connected;
    Alcotest.test_case "route dimension order" `Quick test_route_dimension_order;
    Alcotest.test_case "route self" `Quick test_route_self;
    Alcotest.test_case "decomposition partition" `Quick test_decomposition_partition;
    Alcotest.test_case "decomposition leaves" `Quick test_decomposition_leaves;
    Alcotest.test_case "parent/child consistency" `Quick
      test_decomposition_parent_child_consistency;
    Alcotest.test_case "arity matches" `Quick test_arity_matches;
    Alcotest.test_case "terminated leaf size" `Quick test_terminated_leaf_size;
    Alcotest.test_case "height vs arity" `Quick test_height_decreases_with_arity;
    Alcotest.test_case "snake order" `Quick test_snake_order;
    Alcotest.test_case "next_hop walks" `Quick test_next_hop_and_subtree;
    Alcotest.test_case "strategy names" `Quick test_strategy_names;
    Alcotest.test_case "regular embedding in submesh" `Quick
      (test_embedding_in_submesh Embedding.Regular);
    Alcotest.test_case "random embedding in submesh" `Quick
      (test_embedding_in_submesh Embedding.Random);
    Alcotest.test_case "lazy embedding in submesh" `Quick
      test_lazy_embedding_in_submesh;
    Alcotest.test_case "lazy regular roots spread" `Quick
      test_lazy_regular_roots_spread;
    Alcotest.test_case "regular embedding short edges" `Quick
      test_regular_embedding_short_edges;
  ]
