lib/harness/heatmap.mli: Diva_simnet
