lib/harness/runner.ml: Array Diva_apps Diva_core Diva_simnet Float List
