lib/harness/heatmap.ml: Array Buffer Char Diva_mesh Diva_simnet Printf
