lib/harness/runner.mli: Diva_apps Diva_core Diva_simnet
