lib/harness/report.ml: Diva_util List Printf Runner
