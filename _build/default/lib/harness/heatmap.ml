module Network = Diva_simnet.Network
module Link_stats = Diva_simnet.Link_stats
module Mesh = Diva_mesh.Mesh

let node_traffic net =
  let mesh = Network.mesh net in
  let bytes = Link_stats.per_link_bytes (Network.stats net) in
  let traffic = Array.make (Mesh.num_nodes mesh) 0 in
  Array.iteri
    (fun l b ->
      if b > 0 then begin
        let src, _ = Mesh.link_endpoints mesh l in
        traffic.(src) <- traffic.(src) + b
      end)
    bytes;
  traffic

let render net =
  let mesh = Network.mesh net in
  let traffic = node_traffic net in
  let maxv = Array.fold_left max 1 traffic in
  let digit v =
    if v = 0 then '.'
    else Char.chr (Char.code '0' + min 9 (v * 10 / (maxv + 1)))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "outgoing traffic per node (max %d bytes):\n" maxv);
  if Mesh.num_dims mesh = 2 then
    for r = 0 to Mesh.rows mesh - 1 do
      for c = 0 to Mesh.cols mesh - 1 do
        Buffer.add_char buf (digit traffic.(Mesh.node_at mesh ~row:r ~col:c))
      done;
      Buffer.add_char buf '\n'
    done
  else
    Array.iteri
      (fun v x -> Buffer.add_string buf (Printf.sprintf "node %d: %d\n" v x))
      traffic;
  Buffer.contents buf
