(** Formatting of experiment results in the shape the paper reports them:
    congestion and time of each dynamic strategy as a {e ratio} to the
    hand-optimized baseline, plus the access-tree : fixed-home quotient
    ("the access tree strategy is about a factor of 2 faster"). *)

val ratio_table :
  title:string ->
  param:string ->
  congestion:[ `Bytes | `Messages ] ->
  rows:
    (string * Runner.measurements * (string * Runner.measurements) list) list ->
  string
(** [ratio_table ~title ~param ~congestion ~rows] renders one figure-style
    table. Each row is (parameter value, baseline measurements, strategy
    measurements); columns show each strategy's congestion ratio and time
    ratio versus the baseline. *)

val absolute_table :
  title:string ->
  param:string ->
  ?extra:(string * (Runner.measurements -> string)) list ->
  rows:(string * (string * Runner.measurements) list) list ->
  unit ->
  string
(** Absolute congestion (in messages) and time (in seconds) per strategy —
    the format of the Barnes-Hut figures, which have no baseline. *)
