(** Text rendering of the network's traffic distribution: a quick visual
    check of where the congestion sits (e.g. the hot row/column crossings
    of the fixed home strategy vs the spread-out access-tree traffic). *)

val node_traffic : Diva_simnet.Network.t -> int array
(** Bytes sent over the outgoing links of each node. *)

val render : Diva_simnet.Network.t -> string
(** For a 2-D mesh: a grid of digits 0-9, each node's outgoing traffic
    normalised to the maximum ('.' for zero). Other dimensions fall back
    to a flat listing. *)
