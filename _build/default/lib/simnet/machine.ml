type t = {
  link_bandwidth : float;
  hop_latency : float;
  send_overhead : float;
  recv_overhead : float;
  local_overhead : float;
  int_op_time : float;
  flop_time : float;
}

(* 1 Mbyte/s = 1 byte/us links; 0.29 integer additions/us = 3.45 us/add;
   the ~1 Kbyte threshold for full bandwidth motivates ~1 ms of per-message
   software overhead, split between sender and receiver. *)
let gcel =
  {
    link_bandwidth = 1.0;
    hop_latency = 5.0;
    send_overhead = 500.0;
    recv_overhead = 500.0;
    local_overhead = 150.0;
    int_op_time = 3.45;
    flop_time = 3.45;
  }

let transfer_time t size = float_of_int size /. t.link_bandwidth
