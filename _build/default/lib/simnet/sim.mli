(** Discrete-event simulation core: a virtual clock (in microseconds) and an
    event queue. Events scheduled for the same instant execute in FIFO
    order, so runs are deterministic. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time in microseconds. *)

val schedule : t -> float -> (unit -> unit) -> unit
(** [schedule t at f] runs [f] at simulated time [at]. [at] must not be in
    the past. *)

val schedule_now : t -> (unit -> unit) -> unit

val run : t -> unit
(** Execute events until the queue is empty. *)

val events_executed : t -> int
