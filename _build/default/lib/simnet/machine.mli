(** Cost model of the simulated machine. All times are in microseconds, all
    sizes in bytes.

    The default, {!gcel}, is calibrated to the Parsytec GCel figures the
    paper reports: about 1 Mbyte/s per link direction (1 byte/us), a
    processor speed of about 0.29 integer additions per microsecond, hence a
    link/processor speed ratio of about 0.86 for 4-byte words, and a
    per-message software overhead large enough that messages of about
    1 Kbyte are needed to reach full link bandwidth. *)

type t = {
  link_bandwidth : float;  (** bytes per microsecond, per link direction *)
  hop_latency : float;  (** header latency per hop (wormhole pipeline) *)
  send_overhead : float;  (** sender CPU time per message startup *)
  recv_overhead : float;  (** receiver CPU time per message *)
  local_overhead : float;
      (** cost of a protocol hop between two access-tree nodes that are
          simulated by the same processor (no network message involved) *)
  int_op_time : float;  (** time of one integer operation *)
  flop_time : float;  (** time of one floating-point operation *)
}

val gcel : t

val transfer_time : t -> int -> float
(** Pure occupancy of one link by a message of the given size. *)
