(** Per-directed-link traffic counters. The paper's central metric is the
    congestion: the maximum amount of data (or number of messages)
    transmitted by the same link during an execution. Snapshots allow
    per-phase measurements (used for the Barnes-Hut phase breakdowns). *)

type t

val create : num_links:int -> t

val record : t -> link:int -> bytes:int -> unit
(** Account one message of [bytes] crossing [link]. *)

type snapshot

val snapshot : t -> snapshot

val diff : base:snapshot -> snapshot -> snapshot
(** Per-link difference (traffic of the interval between two snapshots). *)

val add : snapshot -> snapshot -> snapshot
(** Per-link sum (accumulate the same phase across several steps). *)

val zero : snapshot -> snapshot
(** An all-zero snapshot of the same shape. *)

val snap_congestion_msgs : snapshot -> int
val snap_congestion_bytes : snapshot -> int
val snap_total_msgs : snapshot -> int
val snap_total_bytes : snapshot -> int

val congestion_msgs : ?since:snapshot -> t -> int
(** Maximum number of messages across any directed link. *)

val congestion_bytes : ?since:snapshot -> t -> int
(** Maximum number of bytes across any directed link. *)

val total_msgs : ?since:snapshot -> t -> int
(** Total communication load in messages (sum over links of link-message
    counts, i.e. messages weighted by path length). *)

val total_bytes : ?since:snapshot -> t -> int

val per_link_msgs : t -> int array
(** Copy of the per-directed-link message counters (index = link id). *)

val per_link_bytes : t -> int array
