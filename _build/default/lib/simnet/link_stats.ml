type t = { msgs : int array; bytes : int array }
type snapshot = { s_msgs : int array; s_bytes : int array }

let create ~num_links = { msgs = Array.make num_links 0; bytes = Array.make num_links 0 }

let record t ~link ~bytes =
  t.msgs.(link) <- t.msgs.(link) + 1;
  t.bytes.(link) <- t.bytes.(link) + bytes

let snapshot t = { s_msgs = Array.copy t.msgs; s_bytes = Array.copy t.bytes }

let diff ~base s =
  {
    s_msgs = Array.mapi (fun i v -> v - base.s_msgs.(i)) s.s_msgs;
    s_bytes = Array.mapi (fun i v -> v - base.s_bytes.(i)) s.s_bytes;
  }

let add a b =
  {
    s_msgs = Array.mapi (fun i v -> v + b.s_msgs.(i)) a.s_msgs;
    s_bytes = Array.mapi (fun i v -> v + b.s_bytes.(i)) a.s_bytes;
  }

let zero s =
  {
    s_msgs = Array.make (Array.length s.s_msgs) 0;
    s_bytes = Array.make (Array.length s.s_bytes) 0;
  }

let amax a = Array.fold_left max 0 a
let asum a = Array.fold_left ( + ) 0 a
let snap_congestion_msgs s = amax s.s_msgs
let snap_congestion_bytes s = amax s.s_bytes
let snap_total_msgs s = asum s.s_msgs
let snap_total_bytes s = asum s.s_bytes

let zero_snapshot t =
  { s_msgs = Array.make (Array.length t.msgs) 0;
    s_bytes = Array.make (Array.length t.bytes) 0 }

let max_diff cur base =
  let m = ref 0 in
  Array.iteri (fun i v -> m := max !m (v - base.(i))) cur;
  !m

let sum_diff cur base =
  let s = ref 0 in
  Array.iteri (fun i v -> s := !s + v - base.(i)) cur;
  !s

let congestion_msgs ?since t =
  let base = match since with Some s -> s | None -> zero_snapshot t in
  max_diff t.msgs base.s_msgs

let congestion_bytes ?since t =
  let base = match since with Some s -> s | None -> zero_snapshot t in
  max_diff t.bytes base.s_bytes

let total_msgs ?since t =
  let base = match since with Some s -> s | None -> zero_snapshot t in
  sum_diff t.msgs base.s_msgs

let total_bytes ?since t =
  let base = match since with Some s -> s | None -> zero_snapshot t in
  sum_diff t.bytes base.s_bytes

let per_link_msgs t = Array.copy t.msgs
let per_link_bytes t = Array.copy t.bytes
