lib/simnet/sim.mli:
