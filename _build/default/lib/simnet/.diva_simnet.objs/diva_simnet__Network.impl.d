lib/simnet/network.ml: Array Diva_mesh Diva_util Effect Float Link_stats List Machine Option Printf Sim
