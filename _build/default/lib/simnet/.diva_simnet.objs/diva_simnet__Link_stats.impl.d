lib/simnet/link_stats.ml: Array
