lib/simnet/link_stats.mli:
