lib/simnet/network.mli: Diva_mesh Diva_util Link_stats Machine Sim
