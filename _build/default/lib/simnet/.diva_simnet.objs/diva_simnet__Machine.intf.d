lib/simnet/machine.mli:
