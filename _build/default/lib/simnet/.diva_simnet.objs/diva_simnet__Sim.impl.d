lib/simnet/sim.ml: Diva_util Float Printf
