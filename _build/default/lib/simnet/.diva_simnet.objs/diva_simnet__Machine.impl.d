lib/simnet/machine.ml:
