type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let hash2 seed x =
  mix64 (Int64.add (mix64 (Int64.add seed (Int64.of_int x))) golden_gamma)

let hash2_int seed x ~bound =
  if bound <= 0 then invalid_arg "Prng.hash2_int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (hash2 seed x) 2) in
  v mod bound

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
