(** Small numeric helpers shared by the harness and the tests. *)

val mean : float array -> float
val maxf : float array -> float
val sumf : float array -> float

val percent : float -> float -> float
(** [percent num den] is [100 * num / den] (0 if [den] = 0). *)

val ratio : float -> float -> float
(** [ratio num den] is [num / den] (0 if [den] = 0). *)

val log2 : float -> float

val is_power_of_two : int -> bool

val ilog2 : int -> int
(** [ilog2 n] for n >= 1 is the floor of log2 n. *)
