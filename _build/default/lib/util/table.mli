(** Minimal aligned text tables for the benchmark harness output. *)

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
val render : t -> string
(** Render with columns padded to their widest cell, separated by two
    spaces, with a rule under the header. *)

val fstr : float -> string
(** Compact float formatting used throughout the reports: 2 decimals under
    100, 1 decimal under 10000, otherwise no decimals. *)
