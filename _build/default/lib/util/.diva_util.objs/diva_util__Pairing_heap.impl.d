lib/util/pairing_heap.ml: Array
