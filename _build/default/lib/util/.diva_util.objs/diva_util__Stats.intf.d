lib/util/stats.mli:
