lib/util/table.mli:
