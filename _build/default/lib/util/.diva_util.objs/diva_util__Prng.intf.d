lib/util/prng.mli:
