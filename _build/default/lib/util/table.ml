type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> width.(i) <- max width.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 256 in
  let put row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < List.length row - 1 then
          Buffer.add_string buf (String.make (width.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  put t.header;
  let total = Array.fold_left ( + ) 0 width + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter put rows;
  Buffer.contents buf

let fstr v =
  let av = Float.abs v in
  if av < 100.0 then Printf.sprintf "%.2f" v
  else if av < 10000.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.0f" v
