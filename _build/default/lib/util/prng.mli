(** Deterministic pseudo-random number generation.

    The simulator must be fully reproducible: every run with the same seed
    produces the same embeddings, workloads and schedules. We therefore avoid
    the global [Stdlib.Random] state and thread explicit generator values.
    The generator is splitmix64, which is fast, has a 64-bit state, and
    supports cheap independent sub-streams via {!split}. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator determined by [seed]. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give every variable / experiment its own stream so that adding
    draws in one place does not perturb the others. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future draws). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound-1]. [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val hash2 : int64 -> int -> int64
(** Stateless mix of a seed and an integer; used for per-object
    deterministic placement without storing generator state. *)

val hash2_int : int64 -> int -> bound:int -> int
(** [hash2_int seed x ~bound] maps to [0, bound-1] uniformly. *)
