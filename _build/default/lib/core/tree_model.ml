module Prng = Diva_util.Prng

type tree = { parents : int array; children : int array array }

let tree_of_parents parents =
  if Array.length parents = 0 || parents.(0) <> -1 then
    invalid_arg "Tree_model.tree_of_parents: node 0 must be the root";
  let n = Array.length parents in
  let kids = Array.make n [] in
  for v = n - 1 downto 1 do
    let p = parents.(v) in
    if p < 0 || p >= n then invalid_arg "Tree_model.tree_of_parents: bad parent";
    kids.(p) <- v :: kids.(p)
  done;
  { parents; children = Array.map Array.of_list kids }

let random_tree rng ~n =
  if n < 1 then invalid_arg "Tree_model.random_tree";
  let parents = Array.make n (-1) in
  for v = 1 to n - 1 do
    parents.(v) <- Prng.int rng v
  done;
  tree_of_parents parents

let num_nodes t = Array.length t.parents

type op = Read of int | Write of int

(* Unique tree path between two nodes, as a list of nodes from [a] to [b]
   inclusive (via depths and parent pointers). *)
let path t a b =
  let depth v =
    let rec go v d = if v < 0 then d - 1 else go t.parents.(v) (d + 1) in
    go v 0
  in
  let rec lift v k = if k = 0 then v else lift t.parents.(v) (k - 1) in
  let da = depth a and db = depth b in
  let a' = if da > db then lift a (da - db) else a in
  let b' = if db > da then lift b (db - da) else b in
  let rec meet x y = if x = y then x else meet t.parents.(x) t.parents.(y) in
  let l = meet a' b' in
  let rec up v acc = if v = l then List.rev (v :: acc) else up t.parents.(v) (v :: acc) in
  let left = up a [] in
  let rec down v acc = if v = l then acc else down t.parents.(v) (v :: acc) in
  let right = down b [] in
  left @ right

(* Edges on the path, identified by their child endpoint. *)
let path_edges t a b =
  let nodes = path t a b in
  let rec pairs = function
    | x :: (y :: _ as rest) ->
        let edge = if t.parents.(x) = y then x else y in
        edge :: pairs rest
    | _ -> []
  in
  pairs nodes

let online_edge_costs t ~owner ops =
  let n = num_nodes t in
  let cost = Array.make n 0 in
  let has_copy = Array.make n false in
  has_copy.(owner) <- true;
  (* Nearest component node on the tree path from [v] (the component is
     connected, so walking the path from [v] to any member finds it). *)
  let nearest v =
    if has_copy.(v) then v
    else begin
      let member = ref (-1) in
      Array.iteri (fun i c -> if c && !member < 0 then member := i) has_copy;
      let rec first = function
        | [] -> assert false
        | x :: rest -> if has_copy.(x) then x else first rest
      in
      first (path t v !member)
    end
  in
  let charge a b = List.iter (fun e -> cost.(e) <- cost.(e) + 1) (path_edges t a b) in
  List.iter
    (fun op ->
      match op with
      | Read v ->
          let u = nearest v in
          if u <> v then begin
            charge u v;
            List.iter (fun x -> has_copy.(x) <- true) (path t u v)
          end
      | Write v ->
          let u = nearest v in
          if u <> v then begin
            (* The new value travels to u, and the fresh copy travels back. *)
            charge v u;
            charge u v
          end;
          Array.fill has_copy 0 n false;
          List.iter (fun x -> has_copy.(x) <- true) (path t u v))
    ops;
  cost

let in_subtree t ~edge v =
  (* The side of [edge]'s child endpoint. *)
  let rec go x = if x = edge then true else if x < 0 then false else go t.parents.(x) in
  go v

(* Offline optimum per edge. In this model a crossing costs 1 whenever the
   contents must reach a side that lacks a copy, invalidations are free,
   keeping a copy is free and never hurts, and pre-placing a copy costs the
   same crossing it might save — so the lazy policy that keeps every copy
   it can is exactly optimal, and the optimum is a simple fold. *)
let optimal_edge_cost t ~owner ops ~edge =
  let side v = if in_subtree t ~edge v then 0 else 1 in
  let has = Array.make 2 false in
  has.(side owner) <- true;
  let cost = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Read v ->
          let s = side v in
          if not has.(s) then begin
            incr cost;
            has.(s) <- true
          end
      | Write v ->
          let s = side v in
          if not has.(s) then incr cost;
          has.(s) <- true;
          has.(1 - s) <- false)
    ops;
  !cost
