(** The abstract tree-network model of the underlying theory paper (Maggs
    et al., FOCS'97): the access-tree caching protocol on an arbitrary tree
    network, with exact per-edge accounting of data transmissions, plus a
    dynamic program computing the {e offline optimal} per-edge cost of a
    request sequence.

    The theory proves the protocol 3-competitive with respect to the
    congestion of every single edge; the property tests check this bound
    empirically on random trees and random access sequences. This module is
    purely combinatorial (no discrete-event simulation): it counts how many
    times the variable's contents cross each tree edge. *)

type tree

val tree_of_parents : int array -> tree
(** [tree_of_parents parents] builds a tree on nodes [0..n-1]; [parents.(0)]
    must be [-1] (the root). Any node may issue accesses. *)

val random_tree : Diva_util.Prng.t -> n:int -> tree
val num_nodes : tree -> int

type op = Read of int | Write of int  (** accessing node *)

val online_edge_costs : tree -> owner:int -> op list -> int array
(** Data crossings of every edge (indexed by the child endpoint) when the
    access-tree protocol serves the sequence: reads pull a copy along the
    tree path from the nearest copy holder; writes send the new value to
    the nearest copy holder, invalidate the rest of the component, and
    install copies back along the path to the writer. *)

val optimal_edge_cost : tree -> owner:int -> op list -> edge:int -> int
(** Offline optimum number of data crossings of [edge] for the sequence: a
    3-state dynamic program over which side(s) of the edge hold copies. *)
