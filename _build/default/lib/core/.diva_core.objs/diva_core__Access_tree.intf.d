lib/core/access_tree.mli: Diva_mesh Diva_simnet Types Value
