lib/core/fixed_home.mli: Diva_simnet Types Value
