lib/core/value.ml:
