lib/core/types.ml: Value
