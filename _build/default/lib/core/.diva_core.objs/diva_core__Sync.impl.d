lib/core/sync.ml: Array Diva_mesh Diva_simnet Types Value
