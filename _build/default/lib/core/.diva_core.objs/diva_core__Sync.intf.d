lib/core/sync.mli: Diva_mesh Diva_simnet Diva_util Types
