lib/core/dsm.mli: Access_tree Diva_mesh Diva_simnet Types
