lib/core/access_tree.ml: Array Diva_mesh Diva_simnet Diva_util Hashtbl List Option Printf Queue Types Value
