lib/core/fixed_home.ml: Diva_simnet Diva_util Hashtbl List Queue Types Value
