lib/core/value.mli:
