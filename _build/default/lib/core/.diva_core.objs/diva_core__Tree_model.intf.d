lib/core/tree_model.mli: Diva_util
