lib/core/tree_model.ml: Array Diva_util List
