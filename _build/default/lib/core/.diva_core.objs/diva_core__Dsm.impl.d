lib/core/dsm.ml: Access_tree Diva_mesh Diva_simnet Diva_util Fixed_home List Printf Sync Types Value
