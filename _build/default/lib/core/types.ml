(* Internal shared types of the data-management layer. *)

type proc = int

type var = {
  id : int;
  name : string;
  data_size : int;  (* bytes of the variable's contents *)
  owner : proc;  (* processor holding the initial (only) copy *)
  seed : int64;  (* determines the variable's random placements *)
  mutable value : Value.t;  (* current globally-consistent contents *)
}

(* Message header accounting: every protocol message carries a few words of
   type/variable/tree-node identification. Control messages are just the
   header; data messages add the variable contents. *)
let control_size = 16

let data_size var = var.data_size + control_size
