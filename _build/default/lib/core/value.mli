(** Universal container for the contents of global variables.

    The data-management layer moves variable contents around without caring
    about their type; applications store arbitrary OCaml values through a
    per-type embedding. The implementation is the classic safe universal
    type built on local exception constructors — no [Obj] magic. *)

type t

val embed : unit -> ('a -> t) * (t -> 'a)
(** [embed ()] returns an [(inject, project)] pair for one type. [project]
    raises [Invalid_argument] when applied to a value injected by a
    different embedding. *)

val unit : t
(** A ready-made value for variables used only for locking. *)
