type t = exn

let embed (type a) () =
  let module M = struct
    exception E of a
  end in
  ( (fun x -> M.E x),
    function
    | M.E x -> x
    | _ -> invalid_arg "Value.project: wrong embedding" )

exception Unit_value

let unit = Unit_value
