(** Barrier synchronization and global reductions, implemented — like the
    DIVA library's own synchronization routines — with combining trees on a
    mesh-decomposition tree: arrivals are combined bottom-up, the release
    (or the combined value) is multicast top-down along tree edges. All
    traffic is charged to the simulated network. *)

type t

val create :
  Diva_simnet.Network.t ->
  Diva_mesh.Decomposition.t ->
  rng:Diva_util.Prng.t ->
  unit ->
  t
(** The synchronization tree is a single access tree over the given
    decomposition, embedded with the regular embedding. *)

val handle : t -> Diva_simnet.Network.msg -> bool

val barrier : t -> Types.proc -> k:(unit -> unit) -> unit
(** Arrive at the barrier; [k] runs when all processors have arrived. *)

type 'a reducer

val reducer : t -> combine:('a -> 'a -> 'a) -> size:int -> 'a reducer
(** A reusable all-reduce instance over values of one type; [size] is the
    wire size of one partial value in bytes. *)

val reduce : t -> 'a reducer -> Types.proc -> 'a -> k:('a -> unit) -> unit
(** Contribute a value; [k] receives the combined value of all processors.
    Acts as a barrier. *)
