module Dsm = Diva_core.Dsm
module Network = Diva_simnet.Network
module Machine = Diva_simnet.Machine
module Deco = Diva_mesh.Decomposition
module Prng = Diva_util.Prng
module Stats = Diva_util.Stats

type config = { keys : int; compute : bool }

type t = {
  dsm : Dsm.t;
  cfg : config;
  nwires : int;
  logp : int;
  wire_to_proc : int array;  (* snake order *)
  proc_to_wire : int array;
  vars : int array Dsm.var array;  (* indexed by wire *)
  initial : int array array;  (* for verification *)
}

let setup dsm cfg =
  let net = Dsm.net dsm in
  let nwires = Network.num_nodes net in
  if not (Stats.is_power_of_two nwires) then
    invalid_arg "Bitonic.setup: number of processors must be a power of two";
  let logp = Stats.ilog2 nwires in
  let wire_to_proc = Deco.snake_order (Network.mesh net) in
  let proc_to_wire = Array.make nwires 0 in
  Array.iteri (fun w p -> proc_to_wire.(p) <- w) wire_to_proc;
  let rng = Prng.create ~seed:5099 in
  let initial =
    Array.init nwires (fun _ -> Array.init cfg.keys (fun _ -> Prng.int rng 1_000_000))
  in
  let vars =
    Array.init nwires (fun w ->
        Dsm.create_var dsm
          ~name:(Printf.sprintf "K[%d]" w)
          ~owner:wire_to_proc.(w) ~size:(cfg.keys * 4)
          (Array.copy initial.(w)))
  in
  { dsm; cfg; nwires; logp; wire_to_proc; proc_to_wire; vars; initial }

let steps t = t.logp * (t.logp + 1) / 2

(* Merge two sorted blocks and keep the lower or upper half. *)
let merge_split ~keep_lower a b =
  let m = Array.length a in
  let out = Array.make m 0 in
  if keep_lower then begin
    let ia = ref 0 and ib = ref 0 in
    for o = 0 to m - 1 do
      if !ib >= m || (!ia < m && a.(!ia) <= b.(!ib)) then begin
        out.(o) <- a.(!ia);
        incr ia
      end
      else begin
        out.(o) <- b.(!ib);
        incr ib
      end
    done
  end
  else begin
    let ia = ref (m - 1) and ib = ref (m - 1) in
    for o = m - 1 downto 0 do
      if !ib < 0 || (!ia >= 0 && a.(!ia) > b.(!ib)) then begin
        out.(o) <- a.(!ia);
        decr ia
      end
      else begin
        out.(o) <- b.(!ib);
        decr ib
      end
    done
  end;
  out

let fiber t p =
  let dsm = t.dsm in
  let net = Dsm.net dsm in
  let machine = Network.machine net in
  let w = t.proc_to_wire.(p) in
  let m = t.cfg.keys in
  (* Initial local sort. *)
  let mine = ref (Dsm.read dsm p t.vars.(w)) in
  let sorted = Array.copy !mine in
  Array.sort compare sorted;
  mine := sorted;
  if t.cfg.compute then begin
    let ops = m * max 1 (Stats.ilog2 (max 2 m)) in
    Network.charge net p (float_of_int ops *. machine.Machine.int_op_time)
  end;
  Dsm.write dsm p t.vars.(w) !mine;
  Dsm.barrier dsm p;
  (* log P phases; phase i has i+1 merge&split steps. *)
  for i = 0 to t.logp - 1 do
    for j = i downto 0 do
      let partner = w lxor (1 lsl j) in
      let ascending = w land (1 lsl (i + 1)) = 0 || i = t.logp - 1 in
      let keep_lower = if ascending then w < partner else w > partner in
      let theirs = Dsm.read dsm p t.vars.(partner) in
      let merged = merge_split ~keep_lower !mine theirs in
      if t.cfg.compute then
        Network.charge net p
          (float_of_int (2 * m) *. machine.Machine.int_op_time);
      Dsm.barrier dsm p;
      mine := merged;
      Dsm.write dsm p t.vars.(w) merged;
      Dsm.barrier dsm p
    done
  done

let verify t =
  let all = Array.concat (Array.to_list (Array.map (fun v -> Dsm.peek v) t.vars)) in
  let sorted_input = Array.concat (Array.to_list t.initial) in
  Array.sort compare sorted_input;
  (* Per-wire blocks are sorted and globally ordered. *)
  let ok = ref (all = sorted_input) in
  for w = 0 to t.nwires - 2 do
    let a = Dsm.peek t.vars.(w) and b = Dsm.peek t.vars.(w + 1) in
    let m = Array.length a in
    if m > 0 && a.(m - 1) > b.(0) then ok := false
  done;
  !ok
