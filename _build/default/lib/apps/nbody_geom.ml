module Prng = Diva_util.Prng

let softening = 0.05

let octant centre (p : Vec.t) =
  (if p.Vec.x >= centre.Vec.x then 1 else 0)
  lor (if p.Vec.y >= centre.Vec.y then 2 else 0)
  lor (if p.Vec.z >= centre.Vec.z then 4 else 0)

let child_centre centre half o =
  let q = half /. 2.0 in
  Vec.add centre
    (Vec.make
       (if o land 1 <> 0 then q else -.q)
       (if o land 2 <> 0 then q else -.q)
       (if o land 4 <> 0 then q else -.q))

let in_cube ~centre ~half (p : Vec.t) =
  Float.abs (p.Vec.x -. centre.Vec.x) <= half
  && Float.abs (p.Vec.y -. centre.Vec.y) <= half
  && Float.abs (p.Vec.z -. centre.Vec.z) <= half

let bounding_cube positions =
  let lo =
    Array.fold_left Vec.min_pointwise (Vec.make infinity infinity infinity)
      positions
  in
  let hi =
    Array.fold_left Vec.max_pointwise
      (Vec.make neg_infinity neg_infinity neg_infinity)
      positions
  in
  let centre = Vec.scale 0.5 (Vec.add lo hi) in
  let ext = Vec.sub hi lo in
  let half = 0.5 *. 1.0001 *. Float.max ext.Vec.x (Float.max ext.Vec.y ext.Vec.z) in
  (centre, Float.max half 1e-9)

let attraction ~pos ~m ~at:q =
  let r = Vec.sub q pos in
  let d2 = Vec.norm2 r +. (softening *. softening) in
  Vec.scale (m /. (d2 *. sqrt d2)) r

let on_sphere rng r =
  let z = (2.0 *. Prng.float rng 1.0) -. 1.0 in
  let phi = Prng.float rng (2.0 *. Float.pi) in
  let s = sqrt (1.0 -. (z *. z)) in
  Vec.make (r *. s *. cos phi) (r *. s *. sin phi) (r *. z)

let plummer rng =
  (* Aarseth-style Plummer sphere sampling (bounded radius). *)
  let rec radius () =
    let x = 0.0001 +. Prng.float rng 0.9999 in
    let r = 1.0 /. sqrt ((x ** (-2.0 /. 3.0)) -. 1.0) in
    if r < 8.0 then r else radius ()
  in
  let r = radius () in
  let pos = on_sphere rng r in
  (* Velocity magnitude by von Neumann rejection against q^2 (1-q^2)^3.5. *)
  let rec q () =
    let x = Prng.float rng 1.0 and y = Prng.float rng 0.1 in
    if y < x *. x *. ((1.0 -. (x *. x)) ** 3.5) then x else q ()
  in
  let ve = sqrt 2.0 /. ((1.0 +. (r *. r)) ** 0.25) in
  let vel = on_sphere rng (q () *. ve) in
  (1.0, pos, vel)

let uniform rng =
  let v () = Prng.float rng 2.0 -. 1.0 in
  (1.0, Vec.make (v ()) (v ()) (v ()),
   Vec.scale 0.05 (Vec.make (v ()) (v ()) (v ())))
