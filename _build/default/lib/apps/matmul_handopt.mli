(** Hand-optimized message-passing matrix squaring — the paper's baseline
    with provably minimal total communication load and congestion.

    Every processor sends its block simultaneously along the four shortest
    paths towards the ends of its row and its column; every processor it
    passes keeps a copy and forwards it. Each processor therefore receives
    each row/column block exactly once over a neighbouring link, and the
    congestion is [m * sqrt P] (in words). *)

type config = { block : int; compute : bool }

type t

val setup : Diva_simnet.Network.t -> config -> t
val fiber : t -> Diva_core.Types.proc -> unit
val verify : t -> bool
