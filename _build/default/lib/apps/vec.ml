type t = { x : float; y : float; z : float }

let zero = { x = 0.0; y = 0.0; z = 0.0 }
let make x y z = { x; y; z }
let add a b = { x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y; z = a.z -. b.z }
let scale s a = { x = s *. a.x; y = s *. a.y; z = s *. a.z }
let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)
let norm2 a = dot a a
let norm a = sqrt (norm2 a)
let min_pointwise a b = { x = min a.x b.x; y = min a.y b.y; z = min a.z b.z }
let max_pointwise a b = { x = max a.x b.x; y = max a.y b.y; z = max a.z b.z }
