module Dsm = Diva_core.Dsm
module Network = Diva_simnet.Network
module Machine = Diva_simnet.Machine
module Prng = Diva_util.Prng
module Types = Diva_core.Types

type config = { block : int; compute : bool }

type t = {
  dsm : Dsm.t;
  cfg : config;
  q : int;  (* sqrt P = blocks per row/column *)
  b : int;  (* block side length *)
  vars : int array Dsm.var array array;
  initial : int array array array;  (* [i][j] -> initial block, for verify *)
  mutable reads : int;
}

let isqrt n =
  let r = int_of_float (sqrt (float_of_int n)) in
  let rec adjust r = if r * r > n then adjust (r - 1) else r in
  let r = adjust (r + 1) in
  if r * r <> n then invalid_arg "Matmul: not a perfect square" else r

let setup dsm cfg =
  let mesh = Network.mesh (Dsm.net dsm) in
  if Diva_mesh.Mesh.num_dims mesh <> 2
     || Diva_mesh.Mesh.rows mesh <> Diva_mesh.Mesh.cols mesh
  then invalid_arg "Matmul.setup: requires a square 2-D mesh";
  let q = Diva_mesh.Mesh.rows mesh in
  let b = isqrt cfg.block in
  let rng = Prng.create ~seed:2027 in
  let initial =
    Array.init q (fun _ ->
        Array.init q (fun _ -> Array.init cfg.block (fun _ -> Prng.int rng 100)))
  in
  let vars =
    Array.init q (fun i ->
        Array.init q (fun j ->
            let owner = (i * q) + j in
            Dsm.create_var dsm
              ~name:(Printf.sprintf "A[%d,%d]" i j)
              ~owner ~size:(cfg.block * 4)
              (Array.copy initial.(i).(j))))
  in
  { dsm; cfg; q; b; vars; initial; reads = 0 }

(* H += X * Y for b*b blocks stored row-major. *)
let block_mult_add ~b h x y =
  for r = 0 to b - 1 do
    for c = 0 to b - 1 do
      let acc = ref h.((r * b) + c) in
      for k = 0 to b - 1 do
        acc := !acc + (x.((r * b) + k) * y.((k * b) + c))
      done;
      h.((r * b) + c) <- !acc
    done
  done

let fiber t p =
  let dsm = t.dsm in
  let net = Dsm.net dsm in
  let machine = Network.machine net in
  let i = p / t.q and j = p mod t.q in
  let h = Array.make t.cfg.block 0 in
  (* Read phase: staggered so that at most two processors read the same
     block in the same step. *)
  for k' = 0 to t.q - 1 do
    let k = (k' + i + j) mod t.q in
    let x = Dsm.read dsm p t.vars.(i).(k) in
    let y = Dsm.read dsm p t.vars.(k).(j) in
    t.reads <- t.reads + 2;
    if t.cfg.compute then begin
      block_mult_add ~b:t.b h x y;
      (* one multiply and one add per inner-loop element *)
      let ops = 2 * t.b * t.b * t.b in
      Network.charge net p (float_of_int ops *. machine.Machine.int_op_time)
    end
  done;
  Dsm.barrier dsm p;
  (* Write phase: only small invalidation traffic for both strategies,
     because each processor still holds a copy of its own block. *)
  Dsm.write dsm p t.vars.(i).(j) h;
  Dsm.barrier dsm p

let verify t =
  let q = t.q and b = t.b and m = t.cfg.block in
  let expect = Array.init q (fun _ -> Array.init q (fun _ -> Array.make m 0)) in
  for i = 0 to q - 1 do
    for j = 0 to q - 1 do
      for k = 0 to q - 1 do
        block_mult_add ~b expect.(i).(j) t.initial.(i).(k) t.initial.(k).(j)
      done
    done
  done;
  let ok = ref true in
  for i = 0 to q - 1 do
    for j = 0 to q - 1 do
      if Dsm.peek t.vars.(i).(j) <> expect.(i).(j) then ok := false
    done
  done;
  !ok

let blocks_read t = t.reads
