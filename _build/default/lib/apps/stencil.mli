(** Jacobi iteration (2-D heat diffusion) over the DIVA layer — a classic
    distributed-shared-memory workload with pure nearest-neighbour
    locality, added beyond the paper's three applications to exercise the
    library the way a downstream user would.

    The n×n grid is block-partitioned over the processors exactly like the
    matrix of {!Matmul}; every processor publishes its four block
    boundaries as global variables, reads its neighbours' boundaries each
    iteration, and updates its block locally. Because neighbouring blocks
    are neighbouring processors, the access-tree strategy serves almost
    all traffic in the lowest levels of the tree. *)

type config = {
  block_side : int;  (** side length of each processor's block *)
  iterations : int;
  compute : bool;  (** charge the stencil arithmetic *)
}

type t

val setup : Diva_core.Dsm.t -> config -> t
(** Requires a square mesh. The grid is initialised with a deterministic
    hot spot; boundary condition is fixed at 0. *)

val fiber : t -> Diva_core.Types.proc -> unit

val verify : t -> bool
(** Compare against a sequential Jacobi iteration of the same grid
    (exact equality: same float operations in the same order per cell). *)

val result : t -> float array array
(** The final grid, assembled from the blocks (row-major blocks of
    row-major cells). *)
