module Dsm = Diva_core.Dsm
module Network = Diva_simnet.Network
module Machine = Diva_simnet.Machine
module Link_stats = Diva_simnet.Link_stats
module Deco = Diva_mesh.Decomposition
module Prng = Diva_util.Prng
module Types = Diva_core.Types

type config = {
  nbodies : int;
  theta : float;
  dt : float;
  steps : int;
  warmup : int;
  distribution : [ `Uniform | `Plummer ];
  seed : int;
}

let default_config ~nbodies =
  { nbodies; theta = 1.0; dt = 0.025; steps = 7; warmup = 2;
    distribution = `Plummer; seed = 4242 }

type phase = Build | Com | Partition | Force | Advance | Space

let phase_name = function
  | Build -> "build"
  | Com -> "com"
  | Partition -> "partition"
  | Force -> "force"
  | Advance -> "advance"
  | Space -> "space"

let phases = [| Build; Com; Partition; Force; Advance; Space |]

type interval = {
  i_step : int;
  i_phase : phase;
  i_time : float;
  i_traffic : Link_stats.snapshot;
  i_compute : float array;
}

(* Global-variable contents. *)
type body = { mass : float; pos : Vec.t; vel : Vec.t; cost : int }

type cell = {
  center : Vec.t;
  half : float;
  children : child array;  (* always 8 *)
  com : Vec.t;
  cmass : float;
  ccost : int;
  ready : bool;
}

and child = Nil | B of body Dsm.var | C of cell Dsm.var

let body_bytes = 64
let cell_bytes = 96

type mark = { m_time : float; m_snap : Link_stats.snapshot; m_compute : float array }

type t = {
  dsm : Dsm.t;
  cfg : config;
  bodies : body Dsm.var array;
  root_ref : cell Dsm.var Dsm.var;
  init_space : Vec.t * float;  (* centre, half side *)
  initial : (float * Vec.t * Vec.t) array;
  bbox_reducer : (Vec.t * Vec.t) Dsm.reducer;
  mutable marks : mark list;  (* newest first, recorded by proc 0 *)
  mutable n_cells : int;
}

(* ------------------------------------------------------------------ *)
(* Initial conditions                                                   *)
(* ------------------------------------------------------------------ *)

let generate cfg =
  let rng = Prng.create ~seed:cfg.seed in
  let scale = 1.0 /. float_of_int cfg.nbodies in
  Array.init cfg.nbodies (fun _ ->
      let w, pos, vel =
        match cfg.distribution with
        | `Uniform -> Nbody_geom.uniform rng
        | `Plummer -> Nbody_geom.plummer rng
      in
      (w *. scale, pos, vel))

let bounding_space = Nbody_geom.bounding_cube
let octant = Nbody_geom.octant
let child_centre = Nbody_geom.child_centre

let empty_cell centre half =
  { center = centre; half; children = Array.make 8 Nil; com = Vec.zero;
    cmass = 0.0; ccost = 0; ready = false }

let attraction = Nbody_geom.attraction

(* ------------------------------------------------------------------ *)
(* Setup                                                                *)
(* ------------------------------------------------------------------ *)

let setup dsm cfg =
  if cfg.nbodies < 1 then invalid_arg "Barnes_hut.setup: need at least one body";
  let initial = generate cfg in
  let nprocs = Dsm.num_procs dsm in
  let order = Deco.snake_order (Network.mesh (Dsm.net dsm)) in
  let bodies =
    Array.init cfg.nbodies (fun i ->
        let mass, pos, vel = initial.(i) in
        let owner = order.(i * nprocs / cfg.nbodies) in
        Dsm.create_var dsm ~name:(Printf.sprintf "body%d" i) ~owner
          ~size:body_bytes { mass; pos; vel; cost = 1 })
  in
  let init_space = bounding_space (Array.map (fun (_, p, _) -> p) initial) in
  let centre, half = init_space in
  let root0 = Dsm.create_var dsm ~name:"root0" ~owner:0 ~size:cell_bytes
      (empty_cell centre half)
  in
  let root_ref = Dsm.create_var dsm ~name:"root_ref" ~owner:0 ~size:16 root0 in
  let bbox_reducer =
    Dsm.reducer dsm
      ~combine:(fun (lo1, hi1) (lo2, hi2) ->
        (Vec.min_pointwise lo1 lo2, Vec.max_pointwise hi1 hi2))
      ~size:48
  in
  { dsm; cfg; bodies; root_ref; init_space; initial; bbox_reducer;
    marks = []; n_cells = 0 }

(* ------------------------------------------------------------------ *)
(* The per-processor program                                            *)
(* ------------------------------------------------------------------ *)

let flops net p n =
  let machine = Network.machine net in
  Network.charge net p (float_of_int n *. machine.Machine.flop_time)

let mark t p =
  if p = 0 then begin
    let net = Dsm.net t.dsm in
    t.marks <-
      { m_time = Network.now net;
        m_snap = Link_stats.snapshot (Network.stats net);
        m_compute = Network.compute_times net }
      :: t.marks
  end

let var_id v = (Dsm.typed v).Types.id

let fiber t p =
  let dsm = t.dsm in
  let net = Dsm.net dsm in
  let nprocs = Dsm.num_procs dsm in
  let cfg = t.cfg in
  (* Fiber-local state carried across time steps. *)
  let order = Deco.snake_order (Network.mesh net) in
  let my_bodies =
    ref
      (List.filteri
         (fun i _ -> order.(i * nprocs / cfg.nbodies) = p)
         (Array.to_list t.bodies))
  in
  let space = ref t.init_space in
  let prev_cells : cell Dsm.var list ref = ref [] in
  let cur_cells : (cell Dsm.var * int) list ref = ref [] in
  let new_cell ?children centre half depth =
    let c = empty_cell centre half in
    let c = match children with None -> c | Some kids -> { c with children = kids } in
    let v = Dsm.create_var dsm ~owner:p ~size:cell_bytes c in
    cur_cells := (v, depth) :: !cur_cells;
    t.n_cells <- t.n_cells + 1;
    v
  in
  mark t p;
  for _step = 0 to cfg.steps - 1 do
    (* ---------------- Phase 1: build the tree ---------------------- *)
    if p = 0 then begin
      let centre, half = !space in
      let root = new_cell centre half 0 in
      Dsm.write dsm p t.root_ref root
    end;
    Dsm.barrier dsm p;
    let root = Dsm.read dsm p t.root_ref in
    (* Builds a local chain of cells separating two bodies that fall into
       the same octant of a freshly split leaf. *)
    let rec separate centre half depth (b1, p1) (b2, p2) =
      let o1 = octant centre p1 and o2 = octant centre p2 in
      let kids = Array.make 8 Nil in
      if o1 = o2 && depth < 60 then
        kids.(o1) <-
          C (separate (child_centre centre half o1) (half /. 2.0) (depth + 1)
               (b1, p1) (b2, p2))
      else begin
        (* At the depth cap two coincident bodies share a slot; the second
           one is dropped into the next free octant. *)
        kids.(o1) <- B b1;
        let o2 = if o1 = o2 then (o2 + 1) mod 8 else o2 in
        kids.(o2) <- B b2
      end;
      new_cell ~children:kids centre half depth
    in
    let insert bv =
      let bpos = (Dsm.read dsm p bv).pos in
      let rec descend cv depth =
        let c = Dsm.read dsm p cv in
        flops net p 8;
        let o = octant c.center bpos in
        match c.children.(o) with
        | C sub -> descend sub (depth + 1)
        | Nil | B _ -> (
            Dsm.lock dsm p cv;
            let c = Dsm.read dsm p cv in
            (* Re-check under the lock: the slot may have changed. *)
            match c.children.(o) with
            | C sub ->
                Dsm.unlock dsm p cv;
                descend sub (depth + 1)
            | Nil ->
                let kids = Array.copy c.children in
                kids.(o) <- B bv;
                Dsm.write dsm p cv { c with children = kids };
                Dsm.unlock dsm p cv
            | B other ->
                let opos = (Dsm.read dsm p other).pos in
                let sub =
                  separate (child_centre c.center c.half o) (c.half /. 2.0)
                    (depth + 1) (bv, bpos) (other, opos)
                in
                let kids = Array.copy c.children in
                kids.(o) <- C sub;
                Dsm.write dsm p cv { c with children = kids };
                Dsm.unlock dsm p cv)
      in
      descend root 0
    in
    List.iter insert !my_bodies;
    Dsm.barrier dsm p;
    mark t p;
    (* ---------------- Phase 2: centres of mass --------------------- *)
    let deeper_first = List.sort (fun (_, d1) (_, d2) -> compare d2 d1) !cur_cells in
    let com_of_child = function
      | Nil -> None
      | B bv ->
          let b = Dsm.read dsm p bv in
          Some (b.mass, b.pos, max 1 b.cost)
      | C sub ->
          (* Busy-wait with exponential backoff until the child's owner has
             published its centre of mass. *)
          let rec poll backoff =
            let s = Dsm.read dsm p sub in
            if s.ready then (s.cmass, s.com, s.ccost)
            else begin
              Network.compute net p backoff;
              poll (Float.min (2.0 *. backoff) 10_000.0)
            end
          in
          Some (poll 300.0)
    in
    List.iter
      (fun (cv, _) ->
        let c = Dsm.read dsm p cv in
        let m = ref 0.0 and acc = ref Vec.zero and cost = ref 0 in
        Array.iter
          (fun ch ->
            match com_of_child ch with
            | None -> ()
            | Some (cm, cp, cc) ->
                m := !m +. cm;
                acc := Vec.add !acc (Vec.scale cm cp);
                cost := !cost + cc)
          c.children;
        flops net p 40;
        let com = if !m > 0.0 then Vec.scale (1.0 /. !m) !acc else c.center in
        Dsm.write dsm p cv
          { c with com; cmass = !m; ccost = !cost; ready = true })
      deeper_first;
    Dsm.barrier dsm p;
    mark t p;
    (* ---------------- Phase 3: costzones partitioning -------------- *)
    let total_work = (Dsm.read dsm p root).ccost in
    let lo = p * total_work / nprocs and hi = (p + 1) * total_work / nprocs in
    let mine = ref [] in
    let rec collect cv offset =
      let c = Dsm.read dsm p cv in
      if offset + c.ccost <= lo || offset >= hi then offset + c.ccost
      else
        Array.fold_left
          (fun off ch ->
            match ch with
            | Nil -> off
            | B bv ->
                let b = Dsm.read dsm p bv in
                let w = max 1 b.cost in
                if off >= lo && off < hi then mine := bv :: !mine;
                off + w
            | C sub -> collect sub off)
          offset c.children
    in
    ignore (collect root 0);
    my_bodies := List.rev !mine;
    Dsm.barrier dsm p;
    mark t p;
    (* ---------------- Phase 4: force computation ------------------- *)
    let accs =
      List.map
        (fun bv ->
          let b = Dsm.read dsm p bv in
          let acc = ref Vec.zero and interactions = ref 0 in
          let rec walk cv =
            let c = Dsm.read dsm p cv in
            flops net p 8;
            let d = Vec.norm (Vec.sub c.com b.pos) in
            if 2.0 *. c.half < cfg.theta *. d then begin
              acc := Vec.add !acc (attraction ~pos:b.pos ~m:c.cmass ~at:c.com);
              incr interactions;
              flops net p 30
            end
            else
              Array.iter
                (fun ch ->
                  match ch with
                  | Nil -> ()
                  | B bv' ->
                      if var_id bv' <> var_id bv then begin
                        let b' = Dsm.read dsm p bv' in
                        acc :=
                          Vec.add !acc (attraction ~pos:b.pos ~m:b'.mass ~at:b'.pos);
                        incr interactions;
                        flops net p 30
                      end
                  | C sub -> walk sub)
                c.children
          in
          walk root;
          (bv, b, !acc, !interactions))
        !my_bodies
    in
    Dsm.barrier dsm p;
    mark t p;
    (* ---------------- Phase 5: advance bodies ---------------------- *)
    List.iter
      (fun (bv, b, acc, interactions) ->
        let vel = Vec.add b.vel (Vec.scale cfg.dt acc) in
        let pos = Vec.add b.pos (Vec.scale cfg.dt vel) in
        flops net p 12;
        Dsm.write dsm p bv { b with pos; vel; cost = interactions })
      accs;
    Dsm.barrier dsm p;
    mark t p;
    (* ---------------- Phase 6: new size of space ------------------- *)
    let box =
      List.fold_left
        (fun (lo, hi) bv ->
          let b = Dsm.read dsm p bv in
          (Vec.min_pointwise lo b.pos, Vec.max_pointwise hi b.pos))
        (Vec.make infinity infinity infinity,
         Vec.make neg_infinity neg_infinity neg_infinity)
        !my_bodies
    in
    let glo, ghi = Dsm.reduce dsm p t.bbox_reducer box in
    let centre = Vec.scale 0.5 (Vec.add glo ghi) in
    let ext = Vec.sub ghi glo in
    let half =
      0.5 *. 1.0001 *. Float.max ext.Vec.x (Float.max ext.Vec.y ext.Vec.z)
    in
    space := (centre, Float.max half 1e-9);
    (* Retire the cells of the previous step's tree: nobody will ever
       access them again. *)
    List.iter (fun cv -> Dsm.retire_var dsm cv) !prev_cells;
    prev_cells := List.map fst !cur_cells;
    cur_cells := [];
    mark t p
  done

(* ------------------------------------------------------------------ *)
(* Results                                                              *)
(* ------------------------------------------------------------------ *)

let intervals t =
  let marks = Array.of_list (List.rev t.marks) in
  let acc = ref [] in
  let nphases = Array.length phases in
  for step = 0 to t.cfg.steps - 1 do
    if step >= t.cfg.warmup then
      for ph = 0 to nphases - 1 do
        let a = marks.((step * nphases) + ph) in
        let b = marks.((step * nphases) + ph + 1) in
        acc :=
          {
            i_step = step;
            i_phase = phases.(ph);
            i_time = b.m_time -. a.m_time;
            i_traffic = Link_stats.diff ~base:a.m_snap b.m_snap;
            i_compute =
              Array.mapi (fun i v -> v -. a.m_compute.(i)) b.m_compute;
          }
          :: !acc
      done
  done;
  List.rev !acc

let cells_created t = t.n_cells

let final_bodies t =
  Array.map
    (fun bv ->
      let b = Dsm.peek bv in
      (b.mass, b.pos, b.vel))
    t.bodies

let reference cfg =
  let bodies = generate cfg in
  let n = cfg.nbodies in
  let mass = Array.map (fun (m, _, _) -> m) bodies in
  let pos = Array.map (fun (_, p, _) -> p) bodies in
  let vel = Array.map (fun (_, _, v) -> v) bodies in
  for _ = 1 to cfg.steps do
    let acc = Array.make n Vec.zero in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then
          acc.(i) <- Vec.add acc.(i) (attraction ~pos:pos.(i) ~m:mass.(j) ~at:pos.(j))
      done
    done;
    for i = 0 to n - 1 do
      vel.(i) <- Vec.add vel.(i) (Vec.scale cfg.dt acc.(i));
      pos.(i) <- Vec.add pos.(i) (Vec.scale cfg.dt vel.(i))
    done
  done;
  Array.init n (fun i -> (mass.(i), pos.(i), vel.(i)))
