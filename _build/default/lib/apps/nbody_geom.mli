(** Geometry and physics primitives of the Barnes-Hut simulation, factored
    out of the parallel application so they can be unit-tested in
    isolation: octant arithmetic, bounding cubes, softened gravity, and the
    deterministic initial-condition generators. *)

val softening : float
(** Plummer softening length used by both the parallel code and the
    sequential reference. *)

val octant : Vec.t -> Vec.t -> int
(** [octant centre p] is the index (0..7) of the octant of [p] relative to
    [centre]: bit 0 = x, bit 1 = y, bit 2 = z ([>=] goes to the high side). *)

val child_centre : Vec.t -> float -> int -> Vec.t
(** [child_centre centre half o] is the centre of octant [o] of a cube of
    half-side [half] centred at [centre]. *)

val in_cube : centre:Vec.t -> half:float -> Vec.t -> bool

val bounding_cube : Vec.t array -> Vec.t * float
(** Smallest (slightly padded) cube containing all points: (centre,
    half side). *)

val attraction : pos:Vec.t -> m:float -> at:Vec.t -> Vec.t
(** Softened gravitational acceleration exerted on a unit mass at [pos] by
    a point mass [m] located at [at]. *)

val plummer : Diva_util.Prng.t -> float * Vec.t * Vec.t
(** One Plummer-model body: (mass-weight 1.0 to be scaled by caller, pos,
    vel). Radius is rejection-bounded at 8. *)

val uniform : Diva_util.Prng.t -> float * Vec.t * Vec.t
(** One body uniform in the [-1,1]^3 cube with a small random velocity. *)
