(** Barnes-Hut N-body simulation over the DIVA layer — the paper's third
    (non-oblivious) application (§3.3), adapted from SPLASH-2.

    Every body and every octree cell is a global variable; the tree is
    rebuilt in every time step by all processors concurrently, with
    per-cell locks, and each of the six phases of a step is separated by a
    barrier:

    + load the bodies into the tree;
    + upward pass to find the centers of mass (owners of cells poll their
      children's readiness);
    + costzones partitioning of the bodies among the processors, using the
      work counts of the previous step;
    + force computation (read-only, ~99 % cache hits);
    + advance body positions and velocities;
    + compute the new size of space (an all-reduce).

    Processor numbers follow the snake order of the mesh decomposition, so
    the costzones' physical locality becomes topological locality. *)

type config = {
  nbodies : int;
  theta : float;  (** opening criterion (SPLASH default 1.0) *)
  dt : float;
  steps : int;  (** total simulated steps *)
  warmup : int;  (** leading steps excluded from the measurement *)
  distribution : [ `Uniform | `Plummer ];
  seed : int;
}

val default_config : nbodies:int -> config
(** 7 steps of which the first 2 are warmup, exactly as in the paper. *)

type phase = Build | Com | Partition | Force | Advance | Space

val phase_name : phase -> string

(** Per-phase measurement of one step (recorded at barrier boundaries). *)
type interval = {
  i_step : int;
  i_phase : phase;
  i_time : float;  (** simulated duration of the phase *)
  i_traffic : Diva_simnet.Link_stats.snapshot;  (** per-link traffic *)
  i_compute : float array;  (** per-processor computation time *)
}

type t

val setup : Diva_core.Dsm.t -> config -> t
val fiber : t -> Diva_core.Types.proc -> unit

val intervals : t -> interval list
(** All recorded phase intervals of the measured (non-warmup) steps. *)

val cells_created : t -> int

val final_bodies : t -> (float * Vec.t * Vec.t) array
(** (mass, position, velocity) of every body after the run. *)

val generate : config -> (float * Vec.t * Vec.t) array
(** The deterministic initial conditions for a configuration. *)

val reference : config -> (float * Vec.t * Vec.t) array
(** Sequential O(N^2) integration with exact pairwise forces and the same
    integrator — the ground truth the simulated run is tested against. *)
