(** Minimal 3-D vectors for the N-body simulation. *)

type t = { x : float; y : float; z : float }

val zero : t
val make : float -> float -> float -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float
val norm : t -> float
val norm2 : t -> float
val min_pointwise : t -> t -> t
val max_pointwise : t -> t -> t
