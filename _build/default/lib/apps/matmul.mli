(** Matrix squaring (A := A * A) on a square mesh, through the DIVA layer —
    the paper's first application (§3.1).

    The n×n integer matrix is partitioned into P equally sized blocks;
    processor [p_ij] owns block [A_ij] (a global variable) and computes its
    new value in sqrt(P) staggered read steps followed by a write phase,
    the two phases separated by a barrier. Squaring (rather than C := A*B)
    forces the data-management strategy to invalidate the copies created in
    the read phase. *)

type config = {
  block : int;  (** integers per block (the paper's "block size") *)
  compute : bool;
      (** actually multiply the blocks (and charge the arithmetic);
          benchmarks disable this to measure communication time, exactly as
          the paper does *)
}

type t

val setup : Diva_core.Dsm.t -> config -> t
(** Create the P block variables, each initialised at its owner with a
    deterministic pseudo-random block. Requires a square mesh and [block]
    a perfect square. *)

val fiber : t -> Diva_core.Types.proc -> unit
(** The per-processor program (read phase, barrier, write phase, barrier). *)

val verify : t -> bool
(** After the run (with [compute = true]): does every block equal the
    corresponding block of the sequentially squared input matrix? *)

val blocks_read : t -> int
(** Total block reads issued (sanity statistics). *)

(** {2 Shared helpers (also used by the hand-optimized baseline)} *)

val isqrt : int -> int
(** Exact integer square root; raises [Invalid_argument] otherwise. *)

val block_mult_add : b:int -> int array -> int array -> int array -> unit
(** [block_mult_add ~b h x y] adds the product of two [b]x[b] row-major
    blocks to [h]. *)
