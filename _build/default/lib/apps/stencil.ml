module Dsm = Diva_core.Dsm
module Network = Diva_simnet.Network
module Machine = Diva_simnet.Machine
module Mesh = Diva_mesh.Mesh

type config = { block_side : int; iterations : int; compute : bool }

type dir = North | South | East | West

type t = {
  dsm : Dsm.t;
  cfg : config;
  q : int;
  (* edges.(p) is the processor's published boundaries, in the order
     north, south, west, east (the rows/columns its neighbours read). *)
  edges : float array Dsm.var array array;
  initial : float array array;  (* per proc, b*b row-major *)
  final : float array array;  (* filled in by the fibers *)
}

let dir_index = function North -> 0 | South -> 1 | West -> 2 | East -> 3

let initial_cell gi gj = float_of_int (((gi * 31) + (gj * 17)) mod 97)

let edge_of_block ~b block = function
  | North -> Array.init b (fun c -> block.(c))
  | South -> Array.init b (fun c -> block.(((b - 1) * b) + c))
  | West -> Array.init b (fun r -> block.(r * b))
  | East -> Array.init b (fun r -> block.((r * b) + b - 1))

let setup dsm cfg =
  let mesh = Network.mesh (Dsm.net dsm) in
  if Mesh.num_dims mesh <> 2 || Mesh.rows mesh <> Mesh.cols mesh then
    invalid_arg "Stencil.setup: requires a square 2-D mesh";
  let q = Mesh.rows mesh in
  let b = cfg.block_side in
  if b < 1 then invalid_arg "Stencil.setup: block_side must be >= 1";
  let initial =
    Array.init (q * q) (fun p ->
        let i = p / q and j = p mod q in
        Array.init (b * b) (fun k ->
            initial_cell ((i * b) + (k / b)) ((j * b) + (k mod b))))
  in
  let edges =
    Array.init (q * q) (fun p ->
        Array.init 4 (fun d ->
            let dir = [| North; South; West; East |].(d) in
            Dsm.create_var dsm
              ~name:(Printf.sprintf "edge%d.%d" p d)
              ~owner:p ~size:(b * 8)
              (edge_of_block ~b initial.(p) dir)))
  in
  { dsm; cfg; q; edges; initial; final = Array.make (q * q) [||] }

(* One Jacobi update of a block given the four incoming boundary lines
   (0.0 outside the global grid). *)
let update ~b block ~north ~south ~west ~east =
  let get r c =
    if r < 0 then north.(c)
    else if r >= b then south.(c)
    else if c < 0 then west.(r)
    else if c >= b then east.(r)
    else block.((r * b) + c)
  in
  Array.init (b * b) (fun k ->
      let r = k / b and c = k mod b in
      0.25 *. (get (r - 1) c +. get (r + 1) c +. get r (c - 1) +. get r (c + 1)))

let zeros b = Array.make b 0.0

let fiber t p =
  let dsm = t.dsm in
  let net = Dsm.net dsm in
  let machine = Network.machine net in
  let q = t.q and b = t.cfg.block_side in
  let i = p / q and j = p mod q in
  let neighbour di dj = ((i + di) * q) + (j + dj) in
  let block = ref (Array.copy t.initial.(p)) in
  for _it = 1 to t.cfg.iterations do
    (* Read the facing boundary of each neighbour (previous iteration). *)
    let north =
      if i > 0 then Dsm.read dsm p t.edges.(neighbour (-1) 0).(dir_index South)
      else zeros b
    in
    let south =
      if i < q - 1 then Dsm.read dsm p t.edges.(neighbour 1 0).(dir_index North)
      else zeros b
    in
    let west =
      if j > 0 then Dsm.read dsm p t.edges.(neighbour 0 (-1)).(dir_index East)
      else zeros b
    in
    let east =
      if j < q - 1 then Dsm.read dsm p t.edges.(neighbour 0 1).(dir_index West)
      else zeros b
    in
    block := update ~b !block ~north ~south ~west ~east;
    if t.cfg.compute then
      Network.charge net p
        (float_of_int (5 * b * b) *. machine.Machine.flop_time);
    Dsm.barrier dsm p;
    List.iter
      (fun dir ->
        Dsm.write dsm p t.edges.(p).(dir_index dir) (edge_of_block ~b !block dir))
      [ North; South; West; East ];
    Dsm.barrier dsm p
  done;
  t.final.(p) <- !block

(* Sequential reference over the assembled grid, same formula. *)
let reference t =
  let q = t.q and b = t.cfg.block_side in
  let n = q * b in
  let grid = ref (Array.init (n * n) (fun k -> initial_cell (k / n) (k mod n))) in
  for _ = 1 to t.cfg.iterations do
    let g = !grid in
    let get r c = if r < 0 || r >= n || c < 0 || c >= n then 0.0 else g.((r * n) + c) in
    grid :=
      Array.init (n * n) (fun k ->
          let r = k / n and c = k mod n in
          0.25 *. (get (r - 1) c +. get (r + 1) c +. get r (c - 1) +. get r (c + 1)))
  done;
  !grid

let result t = Array.map Array.copy t.final

let verify t =
  let q = t.q and b = t.cfg.block_side in
  let n = q * b in
  let want = reference t in
  let ok = ref true in
  for p = 0 to (q * q) - 1 do
    let i = p / q and j = p mod q in
    for k = 0 to (b * b) - 1 do
      let gr = (i * b) + (k / b) and gc = (j * b) + (k mod b) in
      if t.final.(p).(k) <> want.((gr * n) + gc) then ok := false
    done
  done;
  !ok
