lib/apps/matmul_handopt.ml: Array Diva_mesh Diva_simnet Diva_util Matmul
