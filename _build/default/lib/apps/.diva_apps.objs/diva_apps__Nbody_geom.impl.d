lib/apps/nbody_geom.ml: Array Diva_util Float Vec
