lib/apps/bitonic.mli: Diva_core
