lib/apps/stencil.mli: Diva_core
