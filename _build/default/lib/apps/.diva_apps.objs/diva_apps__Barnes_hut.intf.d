lib/apps/barnes_hut.mli: Diva_core Diva_simnet Vec
