lib/apps/bitonic.ml: Array Diva_core Diva_mesh Diva_simnet Diva_util Printf
