lib/apps/bitonic_handopt.mli: Diva_core Diva_simnet
