lib/apps/vec.mli:
