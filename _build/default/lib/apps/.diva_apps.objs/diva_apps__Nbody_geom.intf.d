lib/apps/nbody_geom.mli: Diva_util Vec
