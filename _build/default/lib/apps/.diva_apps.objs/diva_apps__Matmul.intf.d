lib/apps/matmul.mli: Diva_core
