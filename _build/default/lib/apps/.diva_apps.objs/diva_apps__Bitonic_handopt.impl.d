lib/apps/bitonic_handopt.ml: Array Bitonic Diva_mesh Diva_simnet Diva_util
