lib/apps/vec.ml:
