lib/apps/barnes_hut.ml: Array Diva_core Diva_mesh Diva_simnet Diva_util Float List Nbody_geom Printf Vec
