lib/apps/stencil.ml: Array Diva_core Diva_mesh Diva_simnet List Printf
