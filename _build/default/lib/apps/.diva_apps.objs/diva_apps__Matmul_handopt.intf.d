lib/apps/matmul_handopt.mli: Diva_core Diva_simnet
