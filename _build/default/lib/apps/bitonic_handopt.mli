(** Hand-optimized message-passing bitonic sort: every merge&split step
    simply exchanges the two partner blocks with two direct messages along
    the dimension-order path — optimal congestion for the snake-order
    embedding of the circuit into the mesh. No barriers are needed; the
    pairwise messages synchronize the partners. *)

type config = { keys : int; compute : bool }

type t

val setup : Diva_simnet.Network.t -> config -> t
val fiber : t -> Diva_core.Types.proc -> unit
val verify : t -> bool
