(** Batcher's bitonic sorting over the DIVA layer — the paper's second
    application (§3.2).

    Every processor simulates one wire of the sorting circuit and holds a
    block of [keys] keys in a global variable; the compare-exchange
    operation becomes a merge&split (the lower wire keeps the lower half).
    Wires are mapped to processors through the snake order of the 2-ary
    mesh decomposition, so that the mergers' locality becomes topological
    locality — the locality the access tree strategy exploits. *)

type config = {
  keys : int;  (** keys per processor *)
  compute : bool;  (** charge the merge / initial-sort arithmetic *)
}

type t

val setup : Diva_core.Dsm.t -> config -> t
(** Requires a power-of-two number of processors. *)

val fiber : t -> Diva_core.Types.proc -> unit
val verify : t -> bool
(** Concatenation over wires 0..P-1 is globally sorted and is a
    permutation of the input. *)

val steps : t -> int
(** Number of merge&split steps = depth of the circuit. *)

val merge_split : keep_lower:bool -> int array -> int array -> int array
(** Merge two sorted blocks of equal length and keep the lower (or upper)
    half — the paper's merge&split operation (shared with the baseline). *)
