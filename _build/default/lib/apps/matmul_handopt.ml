module Network = Diva_simnet.Network
module Machine = Diva_simnet.Machine
module Mesh = Diva_mesh.Mesh
module Prng = Diva_util.Prng

type config = { block : int; compute : bool }

type dir = North | South | East | West

(* A block travelling away from its origin in one direction; [hops_left]
   counts how many further processors must still receive it. *)
type Network.payload +=
  | Block of { oi : int; oj : int; dir : dir; hops_left : int; data : int array }

type t = {
  net : Network.t;
  cfg : config;
  q : int;
  b : int;
  initial : int array array array;
  result : int array array array;  (* written by the fibers *)
}

let setup net cfg =
  let mesh = Network.mesh net in
  if Mesh.num_dims mesh <> 2 || Mesh.rows mesh <> Mesh.cols mesh then
    invalid_arg "Matmul_handopt.setup: requires a square 2-D mesh";
  let q = Mesh.rows mesh in
  let b = Matmul.isqrt cfg.block in
  let rng = Prng.create ~seed:2027 in
  let initial =
    Array.init q (fun _ ->
        Array.init q (fun _ -> Array.init cfg.block (fun _ -> Prng.int rng 100)))
  in
  { net; cfg; q; b; initial; result = Array.init q (fun _ -> Array.make q [||]) }

let msg_size cfg = (cfg.block * 4) + 16

let forward t p (oi, oj, dir, hops_left, data) =
  if hops_left > 0 then begin
    let mesh = Network.mesh t.net in
    let r, c = Mesh.coords mesh p in
    let nr, nc =
      match dir with
      | North -> (r - 1, c)
      | South -> (r + 1, c)
      | East -> (r, c + 1)
      | West -> (r, c - 1)
    in
    Network.send t.net ~src:p ~dst:(Mesh.node_at mesh ~row:nr ~col:nc)
      ~size:(msg_size t.cfg)
      (Block { oi; oj; dir; hops_left = hops_left - 1; data })
  end

let fiber t p =
  let net = t.net in
  let machine = Network.machine net in
  let mesh = Network.mesh net in
  let i, j = Mesh.coords mesh p in
  let q = t.q in
  let row_blocks = Array.make q [||] and col_blocks = Array.make q [||] in
  row_blocks.(j) <- t.initial.(i).(j);
  col_blocks.(i) <- t.initial.(i).(j);
  (* Launch my block in all four directions. *)
  forward t p (i, j, North, i, t.initial.(i).(j));
  forward t p (i, j, South, q - 1 - i, t.initial.(i).(j));
  forward t p (i, j, West, j, t.initial.(i).(j));
  forward t p (i, j, East, q - 1 - j, t.initial.(i).(j));
  (* Receive the 2(q-1) blocks of my row and my column, keeping a copy and
     forwarding each onwards. *)
  let expected = 2 * (q - 1) in
  for _ = 1 to expected do
    let msg = Network.recv net p () in
    match msg.Network.m_payload with
    | Block { oi; oj; dir; hops_left; data } ->
        if oi = i then row_blocks.(oj) <- data else col_blocks.(oi) <- data;
        forward t p (oi, oj, dir, hops_left, data)
    | _ -> failwith "Matmul_handopt: unexpected message"
  done;
  (* All operands are local now; compute the block product sum. *)
  let h = Array.make t.cfg.block 0 in
  if t.cfg.compute then begin
    for k = 0 to q - 1 do
      Matmul.block_mult_add ~b:t.b h row_blocks.(k) col_blocks.(k)
    done;
    let ops = 2 * t.b * t.b * t.b * q in
    Network.compute net p (float_of_int ops *. machine.Machine.int_op_time)
  end;
  t.result.(i).(j) <- h

let verify t =
  if not t.cfg.compute then true
  else begin
    let q = t.q and b = t.b and m = t.cfg.block in
    let expect = Array.init q (fun _ -> Array.init q (fun _ -> Array.make m 0)) in
    for i = 0 to q - 1 do
      for j = 0 to q - 1 do
        for k = 0 to q - 1 do
          Matmul.block_mult_add ~b expect.(i).(j) t.initial.(i).(k)
            t.initial.(k).(j)
        done
      done
    done;
    let ok = ref true in
    for i = 0 to q - 1 do
      for j = 0 to q - 1 do
        if t.result.(i).(j) <> expect.(i).(j) then ok := false
      done
    done;
    !ok
  end
