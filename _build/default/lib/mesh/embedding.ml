module Prng = Diva_util.Prng

type t = { decomposition : Decomposition.t; place : int array }
type kind = Regular | Random

let place t id = t.place.(id)

(* Walk the tree top-down so that a child's placement can depend on its
   parent's. [pick] receives the child id and the parent's placement. *)
let top_down (d : Decomposition.t) ~root_place ~pick =
  let n = d.Decomposition.num_tree_nodes in
  let place = Array.make n (-1) in
  place.(0) <- root_place;
  (* Preorder ids guarantee parents are placed before their children. *)
  for id = 1 to n - 1 do
    let p = d.Decomposition.proc.(id) in
    if p >= 0 then place.(id) <- p
    else place.(id) <- pick id place.(d.Decomposition.parent.(id))
  done;
  { decomposition = d; place }

(* The paper's regular rule, per dimension: the child node sits at the
   parent's position within the parent's submesh, taken modulo the child's
   submesh sides. *)
let regular_child (d : Decomposition.t) id parent_place =
  let mesh = d.Decomposition.mesh in
  let sm = d.Decomposition.submesh.(id) in
  let psm = d.Decomposition.submesh.(d.Decomposition.parent.(id)) in
  let pc = Mesh.coords_nd mesh parent_place in
  let c =
    Array.mapi
      (fun k o ->
        let rel = pc.(k) - psm.Decomposition.origin.(k) in
        o + (rel mod sm.Decomposition.sizes.(k)))
      sm.Decomposition.origin
  in
  Mesh.node_at_nd mesh c

let regular (d : Decomposition.t) ~rng =
  let mesh = d.Decomposition.mesh in
  let root_place = Prng.int rng (Mesh.num_nodes mesh) in
  top_down d ~root_place ~pick:(fun id pp -> regular_child d id pp)

let uniform_in_rng (d : Decomposition.t) rng id =
  let mesh = d.Decomposition.mesh in
  let sm = d.Decomposition.submesh.(id) in
  let c =
    Array.mapi (fun k o -> o + Prng.int rng sm.Decomposition.sizes.(k))
      sm.Decomposition.origin
  in
  Mesh.node_at_nd mesh c

let random (d : Decomposition.t) ~rng =
  let root_place = uniform_in_rng d rng 0 in
  top_down d ~root_place ~pick:(fun id _ -> uniform_in_rng d rng id)

let tree_edge_route t ~child =
  let d = t.decomposition in
  let parent = d.Decomposition.parent.(child) in
  if parent < 0 then invalid_arg "Embedding.tree_edge_route: root has no parent";
  Mesh.route d.Decomposition.mesh ~src:t.place.(child) ~dst:t.place.(parent)

let make kind d ~rng =
  match kind with Regular -> regular d ~rng | Random -> random d ~rng

let place_lazy kind (d : Decomposition.t) ~seed id =
  let mesh = d.Decomposition.mesh in
  let p = d.Decomposition.proc.(id) in
  if p >= 0 then p
  else
    match kind with
    | Random ->
        let sm = d.Decomposition.submesh.(id) in
        let ndims = Array.length sm.Decomposition.sizes in
        let c =
          Array.mapi
            (fun k o ->
              o
              + Prng.hash2_int seed ((ndims * id) + k)
                  ~bound:sm.Decomposition.sizes.(k))
            sm.Decomposition.origin
        in
        Mesh.node_at_nd mesh c
    | Regular ->
        let rec place id =
          if id = 0 then Prng.hash2_int seed 0 ~bound:(Mesh.num_nodes mesh)
          else regular_child d id (place d.Decomposition.parent.(id))
        in
        place id
