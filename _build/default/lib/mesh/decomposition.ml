type submesh = { origin : int array; sizes : int array }
type arity = Two | Four | Sixteen

let arity_of_int = function
  | 2 -> Two
  | 4 -> Four
  | 16 -> Sixteen
  | n -> invalid_arg (Printf.sprintf "Decomposition.arity_of_int: %d" n)

let int_of_arity = function Two -> 2 | Four -> 4 | Sixteen -> 16

type t = {
  mesh : Mesh.t;
  arity : arity;
  leaf_size : int;
  parent : int array;
  children : int array array;
  submesh : submesh array;
  proc : int array;
  leaf_of_proc : int array;
  depth : int array;
  subtree_end : int array;
  num_tree_nodes : int;
}

let size sm = Array.fold_left ( * ) 1 sm.sizes

let mem sm coords =
  Array.length coords = Array.length sm.origin
  && (let ok = ref true in
      Array.iteri
        (fun k x -> if x < sm.origin.(k) || x >= sm.origin.(k) + sm.sizes.(k) then ok := false)
        coords;
      !ok)

(* One 2-ary split: halve the longest side (ties toward the first
   dimension), the ceil-half first. Returns [sm] itself if it cannot be
   split (size 1). *)
let split2 sm =
  if size sm = 1 then [ sm ]
  else begin
    let dim = ref 0 in
    Array.iteri (fun k s -> if s > sm.sizes.(!dim) then dim := k) sm.sizes;
    let k = !dim in
    let first = (sm.sizes.(k) + 1) / 2 in
    let sizes_a = Array.copy sm.sizes and sizes_b = Array.copy sm.sizes in
    sizes_a.(k) <- first;
    sizes_b.(k) <- sm.sizes.(k) - first;
    let origin_b = Array.copy sm.origin in
    origin_b.(k) <- sm.origin.(k) + first;
    [ { sm with sizes = sizes_a }; { origin = origin_b; sizes = sizes_b } ]
  end

(* [split_level levels sm] applies [levels] rounds of 2-ary splitting,
   producing the children of one tree level of a 2^levels-ary tree. *)
let rec split_level levels sm =
  if levels = 0 || size sm = 1 then [ sm ]
  else List.concat_map (split_level (levels - 1)) (split2 sm)

(* Processors of a submesh in 2-ary decomposition (snake) order. *)
let rec proc_order mesh sm =
  if size sm = 1 then [ Mesh.node_at_nd mesh sm.origin ]
  else List.concat_map (proc_order mesh) (split2 sm)

let full_submesh mesh =
  let d = Mesh.dims mesh in
  { origin = Array.make (Array.length d) 0; sizes = d }

let snake_order mesh = Array.of_list (proc_order mesh (full_submesh mesh))

(* Intermediate recursive form, flattened to arrays in a preorder pass. *)
type node = { n_sm : submesh; n_proc : int; n_kids : node list }

let build mesh ~arity ~leaf_size =
  if leaf_size < 1 then invalid_arg "Decomposition.build: leaf_size must be >= 1";
  let levels = match arity with Two -> 1 | Four -> 2 | Sixteen -> 4 in
  let rec go sm =
    if size sm = 1 then
      { n_sm = sm; n_proc = Mesh.node_at_nd mesh sm.origin; n_kids = [] }
    else if size sm <= leaf_size then begin
      (* Terminated submesh: one child leaf per processor, in snake order. *)
      let leaf p =
        { n_sm = { origin = Mesh.coords_nd mesh p;
                   sizes = Array.make (Mesh.num_dims mesh) 1 };
          n_proc = p; n_kids = [] }
      in
      { n_sm = sm; n_proc = -1; n_kids = List.map leaf (proc_order mesh sm) }
    end
    else
      { n_sm = sm; n_proc = -1; n_kids = List.map go (split_level levels sm) }
  in
  let full = full_submesh mesh in
  let tree = go full in
  let rec count n = List.fold_left (fun acc k -> acc + count k) 1 n.n_kids in
  let n = count tree in
  let parent = Array.make n (-1)
  and proc = Array.make n (-1)
  and depth = Array.make n 0
  and submesh = Array.make n full
  and children = Array.make n [||] in
  let subtree_end = Array.make n 0 in
  let next = ref 0 in
  let rec assign par dep node =
    let id = !next in
    incr next;
    parent.(id) <- par;
    proc.(id) <- node.n_proc;
    depth.(id) <- dep;
    submesh.(id) <- node.n_sm;
    (* Explicit left-to-right fold: ids must be assigned in preorder. *)
    let kids =
      List.fold_left (fun acc k -> assign id (dep + 1) k :: acc) [] node.n_kids
    in
    children.(id) <- Array.of_list (List.rev kids);
    subtree_end.(id) <- !next;
    id
  in
  ignore (assign (-1) 0 tree);
  let leaf_of_proc = Array.make (Mesh.num_nodes mesh) (-1) in
  Array.iteri (fun id p -> if p >= 0 then leaf_of_proc.(p) <- id) proc;
  Array.iteri
    (fun p leaf ->
      if leaf < 0 then
        invalid_arg (Printf.sprintf "Decomposition.build: processor %d has no leaf" p))
    leaf_of_proc;
  { mesh; arity; leaf_size; parent; children; submesh; proc; leaf_of_proc;
    depth; subtree_end; num_tree_nodes = n }

let root _ = 0
let is_leaf t id = t.proc.(id) >= 0
let height t = Array.fold_left max 0 t.depth
let in_subtree t x ~root = x >= root && x < t.subtree_end.(root)

let next_hop t ~from ~target =
  if from = target then invalid_arg "Decomposition.next_hop: from = target";
  if in_subtree t target ~root:from then begin
    (* The child whose preorder range contains [target]. Children ranges are
       sorted, so a linear scan over the (few) children suffices. *)
    let kids = t.children.(from) in
    let rec find i =
      if i >= Array.length kids then
        invalid_arg "Decomposition.next_hop: malformed tree"
      else if in_subtree t target ~root:kids.(i) then kids.(i)
      else find (i + 1)
    in
    find 0
  end
  else t.parent.(from)

let neighbours t id =
  let kids = Array.to_list t.children.(id) in
  if t.parent.(id) >= 0 then t.parent.(id) :: kids else kids

let strategy_name ~arity ~leaf_size =
  let l = int_of_arity arity in
  if leaf_size <= 1 then Printf.sprintf "%d-ary" l
  else Printf.sprintf "%d-%d-ary" l leaf_size
