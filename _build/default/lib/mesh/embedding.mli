(** Embedding of an access tree (a copy of the decomposition tree) into the
    mesh: a map from tree-node ids to mesh nodes.

    Two embeddings are provided. {!regular} is the "practical improvement"
    the paper uses: the root is placed uniformly at random, and every other
    tree node is placed deterministically relative to its parent's position
    ([row mod m1], [col mod m2] within its own submesh), which shortens the
    expected distance between neighbouring tree nodes. {!random} is the
    original embedding of the theoretical analysis: every tree node is
    placed independently and uniformly at random within its submesh.
    Processor leaves always map to their own processor. *)

type t = private {
  decomposition : Decomposition.t;
  place : int array;  (** tree-node id -> mesh node simulating it *)
}

val regular : Decomposition.t -> rng:Diva_util.Prng.t -> t
val random : Decomposition.t -> rng:Diva_util.Prng.t -> t

val place : t -> int -> Mesh.node
(** Mesh node simulating the given tree node. *)

val tree_edge_route : t -> child:int -> Mesh.link list
(** Mesh route of the tree edge from [child]'s placement up to its parent's
    placement (dimension-order path). *)

type kind = Regular | Random

val make : kind -> Decomposition.t -> rng:Diva_util.Prng.t -> t

(** {2 Lazy placement}

    The data-management layer embeds one access tree {e per global
    variable}; materialising a placement array per variable would be
    wasteful for applications with hundreds of thousands of variables
    (Barnes-Hut). These functions compute the placement of a single tree
    node on demand, deterministically from a per-variable seed. *)

val place_lazy : kind -> Decomposition.t -> seed:int64 -> int -> Mesh.node
(** [place_lazy kind d ~seed id] is the mesh node simulating tree node [id]
    under the given embedding, where [seed] determines the random choices
    (the root placement for {!Regular}; every placement for {!Random}).
    Consistent with {!regular} / {!random} in distribution, not in the
    actual draws. *)
