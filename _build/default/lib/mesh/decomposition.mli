(** Hierarchical decomposition of a mesh and its decomposition tree.

    The 2-ary decomposition recursively halves the longest side of the mesh
    (splitting off the ceil-half first; ties are broken toward the first
    dimension), exactly as in Figure 1 of the paper for 2-D meshes and as
    in the underlying theory for d-dimensional ones. The 4-ary
    decomposition skips the odd levels of the 2-ary one, and the 16-ary
    decomposition skips the odd levels of the 4-ary one.

    An [l]-[k]-ary decomposition additionally terminates at submeshes of
    size <= [k]: a tree node representing a submesh of size [k' <= k] gets
    [k'] children, one per processor of the submesh. The plain [l]-ary tree
    is the special case [k = 1]. The access trees of all global variables
    are copies of this decomposition tree. *)

type submesh = { origin : int array; sizes : int array }

type arity = Two | Four | Sixteen

val arity_of_int : int -> arity
(** 2, 4 or 16. *)

val int_of_arity : arity -> int

type t = private {
  mesh : Mesh.t;
  arity : arity;
  leaf_size : int;
  parent : int array;  (** tree-node id -> parent id; the root has parent -1 *)
  children : int array array;  (** tree-node id -> children ids, in order *)
  submesh : submesh array;  (** tree-node id -> its submesh *)
  proc : int array;  (** tree-node id -> mesh node if processor leaf, else -1 *)
  leaf_of_proc : int array;  (** mesh node -> its leaf tree-node id *)
  depth : int array;  (** tree-node id -> depth (root = 0) *)
  subtree_end : int array;
      (** tree-node id -> end (exclusive) of its preorder id range; node [x]
          is in the subtree of [a] iff [a <= x < subtree_end a] *)
  num_tree_nodes : int;
}

val build : Mesh.t -> arity:arity -> leaf_size:int -> t
(** [build mesh ~arity ~leaf_size] constructs the decomposition tree. The
    root has id 0 and node ids are assigned in preorder. *)

val root : t -> int
val is_leaf : t -> int -> bool
val height : t -> int

val size : submesh -> int

val mem : submesh -> int array -> bool
(** [mem sm coords] tests whether the coordinate vector lies in the
    submesh. *)

val in_subtree : t -> int -> root:int -> bool
(** [in_subtree t x ~root] tests whether tree node [x] lies in the subtree
    rooted at [root] (inclusive). *)

val next_hop : t -> from:int -> target:int -> int
(** The tree neighbour of [from] that lies on the unique tree path from
    [from] to [target]. [from] and [target] must differ. *)

val neighbours : t -> int -> int list
(** Parent (if any) followed by children. *)

val snake_order : Mesh.t -> Mesh.node array
(** Processors in left-to-right order of the leaves of the pure 2-ary
    decomposition tree. The applications use this numbering (as the paper
    does for bitonic sorting and the Barnes-Hut costzones) because it turns
    topological proximity in the mesh into proximity of processor numbers. *)

val strategy_name : arity:arity -> leaf_size:int -> string
(** Display name: "2-ary", "2-4-ary", "4-16-ary", ... following the paper's
    naming of the variants. *)
