lib/mesh/decomposition.mli: Mesh
