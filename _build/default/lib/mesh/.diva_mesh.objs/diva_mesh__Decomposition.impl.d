lib/mesh/decomposition.ml: Array List Mesh Printf
