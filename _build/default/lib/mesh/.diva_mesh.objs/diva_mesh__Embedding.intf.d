lib/mesh/embedding.mli: Decomposition Diva_util Mesh
