lib/mesh/mesh.mli:
