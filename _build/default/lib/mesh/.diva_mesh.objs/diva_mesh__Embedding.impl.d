lib/mesh/embedding.ml: Array Decomposition Diva_util Mesh
