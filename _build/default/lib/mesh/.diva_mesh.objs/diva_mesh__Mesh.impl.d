lib/mesh/mesh.ml: Array List Printf
